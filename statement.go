package logbase

// The composable query-statement API: one serializable statement form
// — Q(table).Range(...).Join(other, On{...}).GroupBy(n).Agg(Count) —
// replacing the positional Query/QueryAt/AggQuery entry points, and
// executed identically by the embedded engine, the cluster client, and
// the textproto QUERY command. Join-free statements compile onto the
// scatter-gather aggregate path (and are answered from a matching
// materialized view when one is registered); statements with joins run
// the greedy-ordered relational-algebra executor (internal/query) at
// one pinned snapshot, broadcasting the small side's matched keys as a
// set push-down and re-resolving routing when the cluster splits or
// migrates tablets mid-join.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/query"
)

// Statement is the serializable composable query form; build it with Q
// and the chaining methods (Group, Range, FilterKey, FilterValue, At,
// Join, GroupBy, GroupByExpr, Agg, AggOf), then run it with Store.Exec.
type Statement = query.Statement

// On is one equi-join condition (left expr on an earlier relation ==
// right expr on the joined relation; Via names a secondary index).
type On = query.On

// Expr projects a join/grouping/aggregation attribute out of a row.
type Expr = query.Expr

// StatementFilter is the serializable per-relation select push-down.
type StatementFilter = query.RelFilter

// Q starts a query statement over table:
//
//	res, err := st.Exec(ctx, logbase.Q("orders").Group("g").
//	    Range(lo, hi).
//	    Join("customers", "g", logbase.On{Left: logbase.ValField(0), Right: logbase.KeyExpr()}).
//	    GroupBy(4).Agg(logbase.Count))
func Q(table string) *Statement { return query.NewStatement(table) }

// Expr constructors: the whole key/value, or one comma-separated field
// of either.
var (
	KeyExpr  = query.KeyExpr
	KeyField = query.KeyField
	ValExpr  = query.ValExpr
	ValField = query.ValField
)

// aggStatement maps the legacy positional AggQuery form onto its
// statement equivalent (the adapter the deprecated entry points call
// through).
func aggStatement(table, group string, kind AggKind, start, end []byte, ts int64, groupPrefix int) *Statement {
	stmt := Q(table).Group(group).Range(start, end).At(ts)
	if kind == Count {
		stmt.Agg(Count)
	} else {
		stmt.AggOf(kind, table, ValExpr())
	}
	if groupPrefix > 0 {
		stmt.GroupBy(groupPrefix)
	}
	return stmt
}

// execStatement is the shared Exec implementation: validate, try the
// materialized-view matcher, then either compile join-free statements
// onto the scatter-gather aggregate path or run the join executor over
// a snapshot pinned once for every relation (timestamps are issued
// globally, so one ts is consistent across tables).
func execStatement(ctx context.Context, st Store, views *viewSet, stmt *Statement) (QueryResult, error) {
	if err := ctxErr(ctx); err != nil {
		return QueryResult{}, err
	}
	if err := stmt.Validate(); err != nil {
		return QueryResult{}, err
	}
	if len(stmt.Joins) == 0 {
		if res, ok := views.serveStmt(stmt); ok {
			return res, nil
		}
		q, err := stmt.CompileSingle()
		if err != nil {
			return QueryResult{}, err
		}
		return st.QueryAt(ctx, stmt.Base.Table, stmt.Base.Group, stmt.AtTS, q)
	}
	return ExecWith(ctx, st, stmt, ExecOptions{})
}

// ExecOptions tune statement execution: a forced join order and
// switches disabling the set-predicate broadcast and the select
// push-down. The zero value is the real engine; the overrides exist so
// benchmarks and oracle tests can run the worst-case naive plan
// through the identical machinery.
type ExecOptions = query.ExecOptions

// ExecWith executes a statement on st through the join executor with
// explicit options, bypassing the materialized-view matcher and the
// scatter-gather fast path (Store.Exec is the normal entry point).
func ExecWith(ctx context.Context, st Store, stmt *Statement, opts ExecOptions) (QueryResult, error) {
	if err := ctxErr(ctx); err != nil {
		return QueryResult{}, err
	}
	if err := stmt.Validate(); err != nil {
		return QueryResult{}, err
	}
	snap, err := st.SnapshotAt(ctx, stmt.Base.Table, stmt.AtTS)
	if err != nil {
		return QueryResult{}, err
	}
	sf := &storeFetcher{st: st, rels: stmt.Rels(), ts: snap.TS()}
	return query.ExecStatement(ctx, stmt, sf.ts, sf, opts)
}

// Statement fetches mirror the routing-retry discipline of the plain
// cluster read paths (cluster/client.go): stale-routing errors re-
// resolve and restart the relation fetch, which is exact because the
// snapshot timestamp is pinned.
const (
	stmtFetchRetries = 12
	stmtFetchBackoff = 500 * time.Microsecond
)

// retryableFetch reports whether a relation fetch failed on stale
// routing metadata (tablet split/moved/frozen, server bounced) rather
// than a real error.
func retryableFetch(err error) bool {
	return errors.Is(err, core.ErrUnknownTablet) || errors.Is(err, cluster.ErrServerDown)
}

// storeFetcher adapts a Store to the join executor's Fetcher: each
// relation fetch pins a fresh snapshot handle at the SAME statement
// timestamp and streams the relation through the ordered scan path, so
// a join side that lands mid-split simply restarts against the new
// topology and converges.
type storeFetcher struct {
	st   Store
	rels []query.Rel
	ts   int64
}

func (sf *storeFetcher) Fetch(ctx context.Context, rel int, f query.Filter) ([]core.Row, error) {
	r := sf.rels[rel]
	var lastErr error
	for attempt := 0; attempt <= stmtFetchRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * stmtFetchBackoff)
		}
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		snap, err := sf.st.SnapshotAt(ctx, r.Table, sf.ts)
		if err != nil {
			if retryableFetch(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		var rows []core.Row
		err = snap.Scan(ctx, r.Group, f, func(row core.Row) bool {
			rows = append(rows, row)
			return true
		})
		if err == nil {
			return rows, nil
		}
		if !retryableFetch(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// secondarySource is the optional secondary-index surface (both *DB
// and *ClusterClient provide it; it is not part of Store).
type secondarySource interface {
	LookupSecondary(name string, secKey []byte) ([]Row, error)
}

// FetchSecondary fetches join partners by registered secondary-index
// lookups. Lookups serve the latest committed versions; rows newer
// than the statement snapshot are re-read at the pinned timestamp, and
// the executor re-verifies the join condition and the relation's own
// filter on everything returned.
func (sf *storeFetcher) FetchSecondary(ctx context.Context, rel int, index string, vals [][]byte) ([]core.Row, error) {
	src, ok := sf.st.(secondarySource)
	if !ok {
		return nil, fmt.Errorf("logbase: store %T does not support secondary-index (VIA) joins", sf.st)
	}
	r := sf.rels[rel]
	seen := map[string]bool{}
	var rows []core.Row
	for _, v := range vals {
		got, err := src.LookupSecondary(index, v)
		if err != nil {
			return nil, err
		}
		for _, row := range got {
			if row.TS > sf.ts {
				pinned, err := sf.st.GetAt(ctx, r.Table, r.Group, row.Key, sf.ts)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue
					}
					return nil, err
				}
				row = pinned
			}
			if !seen[string(row.Key)] {
				seen[string(row.Key)] = true
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// serveStmt answers a join-free statement from a matching registered
// materialized view — the compiled-plan form of the legacy AggQuery
// matcher, so every entry point (Exec, AggQuery, the wire QUERY) gets
// view answering without choosing it. A statement matches when it has
// exactly the shape a view maintains: one aggregate over the base
// relation (COUNT(*) or an aggregate of the whole value), no
// predicates, and key-prefix grouping or none.
func (vs *viewSet) serveStmt(stmt *Statement) (QueryResult, bool) {
	if len(stmt.Joins) != 0 || len(stmt.Aggs) != 1 {
		return QueryResult{}, false
	}
	f := stmt.Base.Filter
	if f.Key != nil || f.Value != nil {
		return QueryResult{}, false
	}
	a := stmt.Aggs[0]
	if a.Table != stmt.Base.Table {
		return QueryResult{}, false
	}
	if a.Kind == Count {
		// A Count with a projection counts only rows whose projection
		// parses numerically — not the view's row count.
		if !a.Expr.IsZero() {
			return QueryResult{}, false
		}
	} else if !a.Expr.WholeValue() {
		return QueryResult{}, false
	}
	prefix := 0
	if stmt.By != nil {
		if stmt.By.Table != stmt.Base.Table || stmt.By.Expr != KeyExpr() || stmt.By.Prefix <= 0 {
			return QueryResult{}, false
		}
		prefix = stmt.By.Prefix
	}
	return vs.serve(stmt.Base.Table, stmt.Base.Group, a.Kind, f.Start, f.End, stmt.AtTS, prefix)
}

// Exec executes a composable query statement (build with Q) on the
// embedded engine.
func (db *DB) Exec(ctx context.Context, stmt *Statement) (QueryResult, error) {
	return execStatement(ctx, db, &db.views, stmt)
}

// Exec executes a composable query statement (build with Q) across the
// cluster: join-free statements scatter-gather, joins pin one global
// snapshot and fetch each relation through the routed scan path,
// re-resolving on splits and migrations.
func (cc *ClusterClient) Exec(ctx context.Context, stmt *Statement) (QueryResult, error) {
	return execStatement(ctx, cc, &cc.views, stmt)
}
