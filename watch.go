package logbase

// Changefeeds: because the log is the ONLY repository, a changefeed is
// nothing more than a resumable cursor over the committed record
// stream — there is no second pipeline to build or keep consistent.
// Watch returns a pull-based feed that first catches up through the
// retained log segments (historical events, oldest first) and then
// switches seamlessly to a live tail fed from the group-commit flush
// path, in total LSN order, without missing or duplicating events
// across the handoff.
//
// Cursor contract: every event carries a Cursor; after consuming event
// e a client may resume with fromLSN = e.Cursor+1 and observe exactly
// the events after e. Events from multi-record transactions share the
// transaction's commit LSN as their cursor, so a resume point can never
// split a transaction. Compaction may reclaim log records behind every
// feed's cursor; a resume below that horizon fails with
// ErrCursorTruncated, telling the consumer to re-bootstrap (fromLSN 0
// replays the compacted — coalesced but state-correct — history).

import (
	"context"
	"errors"

	"repro/internal/cdc"
)

// errUnknownTable matches db.table's wording for a missing table.
func errUnknownTable(name string) error {
	return errors.New("logbase: unknown table " + name)
}

// ChangeEvent is one committed mutation observed by a changefeed.
type ChangeEvent = cdc.Event

// ChangeKind discriminates Put and Delete events.
type ChangeKind = cdc.EventKind

// Changefeed event kinds.
const (
	ChangePut    = cdc.Put
	ChangeDelete = cdc.Delete
)

// ChangeFeed is a pull-based changefeed: call Next until it returns an
// error, then Close. See cdc.Feed.
type ChangeFeed = cdc.Feed

// WatchOptions tunes a changefeed subscription.
type WatchOptions = cdc.Options

// ErrCursorTruncated reports that a feed's resume LSN has fallen behind
// the compaction reclaim horizon: the exact event history below that
// point no longer exists in the log, so the consumer must re-bootstrap
// (snapshot scan + Watch from 0, or an mview re-registration).
var ErrCursorTruncated = cdc.ErrCursorTruncated

// ErrFeedClosed is returned by Next after the feed is closed.
var ErrFeedClosed = cdc.ErrFeedClosed

// ErrSlowConsumer reports that a live feed's buffer overflowed because
// the consumer fell too far behind the write rate. The feed is closed;
// resume a fresh Watch from the last delivered Cursor+1.
var ErrSlowConsumer = cdc.ErrSlowConsumer

// Watch subscribes a changefeed over table: committed Put/Delete events
// for keys in [start, end) (nil bounds = open; group "" = all column
// groups), streamed in LSN order. fromLSN 0 starts at the beginning of
// the retained log; fromLSN > 0 resumes after a previously observed
// cursor (pass cursor+1). The feed catches up through retained log
// segments, then tails the live append path. Cancel via ctx or Close.
func (db *DB) Watch(ctx context.Context, table, group string, start, end []byte, fromLSN uint64, opts ...WatchOptions) (ChangeFeed, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if _, err := db.watchTable(table, group); err != nil {
		return nil, err
	}
	var o cdc.Options
	if len(opts) > 0 {
		o = opts[0]
	}
	_, sp := db.tracer.Root(ctx, "db.watch")
	sp.Label("table", table)
	defer sp.Finish()
	return db.server.Watch(table, group, start, end, fromLSN, o)
}

// watchTable validates the table (and, when non-empty, the group) for a
// feed subscription. Unlike db.table it accepts group "" — a feed may
// span all column groups.
func (db *DB) watchTable(table, group string) (tableMeta, error) {
	if group != "" {
		return db.table(table, group)
	}
	db.tmu.RLock()
	tm, ok := db.tables[table]
	db.tmu.RUnlock()
	if !ok {
		return tableMeta{}, errUnknownTable(table)
	}
	return tm, nil
}
