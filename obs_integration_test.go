package logbase_test

// End-to-end observability tests: one traced operation produces ONE
// trace tree spanning client → per-tablet servers → WAL reads, the
// slow-op log honours its threshold, and routing upheavals (a tablet
// split racing a scan) annotate the same tree instead of losing it.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	logbase "repro"
	"repro/internal/fault"
)

// treeLog is a concurrency-safe slow-op sink.
type treeLog struct {
	mu    sync.Mutex
	trees []string
}

func (l *treeLog) add(tree string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trees = append(l.trees, tree)
}

func (l *treeLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.trees...)
}

func (l *treeLog) containing(substr string) []string {
	var out []string
	for _, tr := range l.all() {
		if strings.Contains(tr, substr) {
			out = append(out, tr)
		}
	}
	return out
}

// TestClusterScanTraceTree: a cluster scan with push-down options
// yields one tree stitching the client root, every per-tablet server
// scan, and the WAL read batches under them — retrievable through the
// slow-op log at threshold 0.
func TestClusterScanTraceTree(t *testing.T) {
	log := &treeLog{}
	c, err := logbase.NewCluster(t.TempDir(), logbase.ClusterConfig{
		NumServers:      2,
		Tables:          []logbase.TableSpec{{Name: "t", Groups: []string{"g"}, Tablets: 4}},
		SlowOpLog:       log.add,
		SlowOpThreshold: 0,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl := logbase.NewClusterClient(c)
	defer cl.Close()

	const n = 120
	for i := 0; i < n; i++ {
		key := []byte{byte(i * 256 / n), byte(i)}
		if err := cl.Put(bg, "t", "g", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}

	rows := 0
	it := cl.Scan(bg, "t", "g", nil, nil, logbase.WithLimit(n))
	for it.Next() {
		rows++
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if rows != n {
		t.Fatalf("scan returned %d rows, want %d", rows, n)
	}

	scans := log.containing("client.scan")
	if len(scans) != 1 {
		t.Fatalf("want exactly 1 client.scan tree, got %d (all: %v)", len(scans), log.all())
	}
	tree := scans[0]
	if !strings.HasPrefix(tree, "trace=") {
		t.Errorf("tree missing trace id: %q", tree)
	}
	for _, srv := range []string{`server=ts00`, `server=ts01`} {
		if !strings.Contains(tree, "tablet.scan dur=") || !strings.Contains(tree, srv) {
			t.Errorf("tree missing per-server tablet.scan (%s):\n%s", srv, tree)
		}
	}
	if strings.Count(tree, "tablet.scan") < 2 {
		t.Errorf("want >=2 tablet.scan spans in one tree:\n%s", tree)
	}
	if !strings.Contains(tree, "wal.readbatch") {
		t.Errorf("tree missing wal.readbatch span:\n%s", tree)
	}
	// Point ops trace too, as their own roots.
	if len(log.containing("client.put")) != n {
		t.Errorf("want %d client.put trees, got %d", n, len(log.containing("client.put")))
	}
}

// TestTraceSurvivesMidScanSplit: a tablet split landing mid-scan makes
// the scatter resume by range — the SAME trace tree records the resume
// annotation and the scan still returns every row.
func TestTraceSurvivesMidScanSplit(t *testing.T) {
	log := &treeLog{}
	c, err := logbase.NewCluster(t.TempDir(), logbase.ClusterConfig{
		NumServers:      2,
		Tables:          []logbase.TableSpec{{Name: "t", Groups: []string{"g"}, Tablets: 2}},
		SlowOpLog:       log.add,
		SlowOpThreshold: 0,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	wcl := c.NewClient()
	// Enough keys that every tablet spans several index leaves —
	// SplitTablet needs leaf boundaries to pick a population midpoint.
	const n = 600
	for i := 0; i < n; i++ {
		key := []byte{byte(i * 256 / n), byte(i >> 8), byte(i)}
		if err := wcl.Put("t", "g", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	router, err := c.Router("t")
	if err != nil {
		t.Fatalf("Router: %v", err)
	}
	tabs := router.Tablets()
	victim := tabs[len(tabs)-1].ID

	// Drive the low-level scatter directly so the split lands at a
	// deterministic point: after the first row streams (the routing plan
	// is already fixed), before the scan reaches the victim tablet.
	cl := c.NewClient()
	ctx, sp := c.Tracer().Root(context.Background(), "client.scan")
	cl.SetSpan(sp)
	rows, split := 0, false
	err = cl.ScanOpts(ctx, "t", "g", nil, nil, logbase.ReadOptions{}, func(r logbase.Row) bool {
		rows++
		if !split {
			split = true
			if _, _, serr := c.SplitTablet(victim); serr != nil {
				t.Errorf("SplitTablet: %v", serr)
			}
		}
		return true
	})
	cl.SetSpan(nil)
	sp.Finish()
	if err != nil {
		t.Fatalf("ScanOpts across split: %v", err)
	}
	if rows != n {
		t.Fatalf("scan across split returned %d rows, want %d", rows, n)
	}

	scans := log.containing("client.scan")
	if len(scans) != 1 {
		t.Fatalf("want 1 scan tree, got %d", len(scans))
	}
	tree := scans[0]
	if !strings.Contains(tree, "resume=tablet="+victim) {
		t.Errorf("tree missing split-resume annotation for %s:\n%s", victim, tree)
	}
	if strings.Count(tree, "tablet.scan") < 3 {
		// Two tablets planned + at least the resumed halves of the split.
		t.Errorf("want tablet.scan spans from before AND after the split:\n%s", tree)
	}
	if cl.Tracer() != c.Tracer() {
		t.Error("client tracer accessor disagrees with cluster")
	}
}

// TestEmbeddedSlowOpThreshold: the embedded DB honours
// Options.SlowOpThreshold — an unreachable threshold logs nothing, a
// zero threshold logs complete trees for every entry point.
func TestEmbeddedSlowOpThreshold(t *testing.T) {
	quiet := &treeLog{}
	db, err := logbase.Open(t.TempDir(), logbase.Options{
		SlowOpLog:       quiet.add,
		SlowOpThreshold: time.Hour,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.CreateTable("t", "g")
	if err := db.Put(bg, "t", "g", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := quiet.all(); len(got) != 0 {
		t.Fatalf("threshold 1h still logged %d trees: %v", len(got), got)
	}
	db.Close()

	log := &treeLog{}
	db, err = logbase.Open(t.TempDir(), logbase.Options{
		SlowOpLog: log.add, // threshold 0: every traced op
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.CreateTable("t", "g")
	for i := 0; i < 10; i++ {
		if err := db.Put(bg, "t", "g", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := db.Get(bg, "t", "g", []byte{3}); err != nil {
		t.Fatalf("Get: %v", err)
	}
	it := db.Scan(bg, "t", "g", nil, nil)
	for it.Next() {
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Scan: %v", err)
	}

	if n := len(log.containing("db.put")); n != 10 {
		t.Errorf("want 10 db.put trees, got %d", n)
	}
	if n := len(log.containing("db.read")); n != 1 {
		t.Errorf("want 1 db.read tree, got %d", n)
	}
	scans := log.containing("db.scan")
	if len(scans) != 1 {
		t.Fatalf("want 1 db.scan tree, got %d", len(scans))
	}
	if !strings.Contains(scans[0], "tablet.scan") {
		t.Errorf("embedded scan tree missing tablet.scan child:\n%s", scans[0])
	}
	// Slow-op counter in the shared registry matches emissions.
	var slow float64
	for _, m := range db.Metrics().Snapshot() {
		if m.Name == "logbase_slow_ops_total" {
			slow = m.Value
		}
	}
	if int(slow) != len(log.all()) {
		t.Errorf("logbase_slow_ops_total=%v, emitted %d trees", slow, len(log.all()))
	}
	if db.Tracer() == nil {
		t.Error("DB.Tracer() nil with SlowOpLog set")
	}

	if db.Metrics() == nil {
		t.Error("DB.Metrics() nil")
	}
}

// TestFaultObservabilityMetrics pins the fault-injection, scrub and
// retry surfaces into the metrics registry: injected faults are
// countable, scrub repairs increment their counter, client stale-route
// retries are visible, and the breaker gauge is registered.
func TestFaultObservabilityMetrics(t *testing.T) {
	// Embedded: a wired registry exposes the injection gauge, and
	// transient replica-read faults count as injected.
	reg := fault.New(7)
	db, err := logbase.Open(t.TempDir(), logbase.Options{SegmentSize: 1 << 18, Faults: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.CreateTable("t", "g")
	reg.Arm("dfs.dn0.read", fault.Policy{Times: 2})
	for i := 0; i < 20; i++ {
		if err := db.Put(bg, "t", "g", []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Get(bg, "t", "g", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	snap := map[string]float64{}
	for _, m := range db.Metrics().Snapshot() {
		snap[m.Name] += m.Value
	}
	if snap["logbase_faults_injected_total"] < 1 {
		t.Errorf("logbase_faults_injected_total = %v, want >= 1", snap["logbase_faults_injected_total"])
	}
	if _, ok := snap["logbase_scrub_repaired_total"]; !ok {
		t.Error("logbase_scrub_repaired_total not registered")
	}

	// Cluster: a scrub repair increments its counter, a stale-routed
	// client retry increments the retry counter, and the breaker gauge
	// is scrapeable.
	c, err := logbase.NewCluster(t.TempDir(), logbase.ClusterConfig{
		NumServers: 2,
		Tables:     []logbase.TableSpec{{Name: "t", Groups: []string{"g"}, Tablets: 4}},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl := logbase.NewClusterClient(c)
	defer cl.Close()
	keys := make([][]byte, 40)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("row%03d", i))
		if err := cl.Put(bg, "t", "g", keys[i], []byte("v")); err != nil {
			t.Fatalf("cluster Put: %v", err)
		}
		if _, err := cl.Get(bg, "t", "g", keys[i]); err != nil {
			t.Fatalf("cluster Get: %v", err) // warm the owner cache
		}
	}
	victim := c.LiveServers()[0]
	survivor := c.LiveServers()[1]
	path := c.Server(victim).Log().SegmentPath(c.Server(victim).Log().ActiveSegment())
	blocks, err := c.FS().Blocks(path)
	if err != nil || len(blocks) == 0 || blocks[0].Size < 128 {
		// The victim may hold no data at this scale; corrupt the
		// survivor's log instead.
		path = c.Server(survivor).Log().SegmentPath(c.Server(survivor).Log().ActiveSegment())
		if blocks, err = c.FS().Blocks(path); err != nil || len(blocks) == 0 {
			t.Fatalf("no populated segment to corrupt: %v", err)
		}
	}
	if err := c.FS().CorruptBlockReplica(path, 0, blocks[0].Replicas[0], 64); err != nil {
		t.Fatalf("CorruptBlockReplica: %v", err)
	}
	if _, err := c.ScrubAll(); err != nil {
		t.Fatalf("ScrubAll: %v", err)
	}
	// Freeze one tablet as a migration cutover would: writes bounce
	// with the retryable frozen error and spin the unified
	// refresh-and-retry loop (epoch is unchanged, so no silent cache
	// refresh short-circuits it) until the attempt budget runs out.
	router, err := c.Router("t")
	if err != nil {
		t.Fatalf("Router: %v", err)
	}
	frozenKey := keys[0]
	tab, ok := router.Lookup(frozenKey)
	if !ok {
		t.Fatalf("no tablet for %q", frozenKey)
	}
	owner := c.Assignments()[tab.ID]
	if err := c.Server(owner).FreezeTablet(tab.ID); err != nil {
		t.Fatalf("FreezeTablet: %v", err)
	}
	if err := cl.Put(bg, "t", "g", frozenKey, []byte("w")); err == nil {
		t.Fatal("Put to frozen tablet succeeded without cutover")
	}
	if err := c.Server(owner).UnfreezeTablet(tab.ID); err != nil {
		t.Fatalf("UnfreezeTablet: %v", err)
	}
	if err := cl.Put(bg, "t", "g", frozenKey, []byte("w")); err != nil {
		t.Fatalf("Put after unfreeze: %v", err)
	}
	csnap := map[string]float64{}
	seen := map[string]bool{}
	for _, m := range c.Metrics().Snapshot() {
		csnap[m.Name] += m.Value
		seen[m.Name] = true
	}
	if csnap["logbase_scrub_repaired_total"] < 1 {
		t.Errorf("logbase_scrub_repaired_total = %v after repair, want >= 1", csnap["logbase_scrub_repaired_total"])
	}
	if csnap["logbase_retry_attempts_total"] < 1 {
		t.Errorf("logbase_retry_attempts_total = %v after failover reroute, want >= 1", csnap["logbase_retry_attempts_total"])
	}
	if !seen["logbase_breaker_open"] {
		t.Error("logbase_breaker_open gauge not registered")
	}
}
