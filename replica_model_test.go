package logbase_test

// Model-based test for snapshot-consistent replica reads: a single
// writer churns puts/deletes on a replicated cluster while the
// replicas ship the log, and every round pins a snapshot and replays
// ALL pins so far — pinned scans and point reads against the live
// cluster (served by replicas once their watermark covers the pin)
// must match a naive in-memory oracle, through a mid-stream tablet
// split and a live migration. Delete semantics are the engine's: a
// delete drops the key's whole index history, so earlier pins stop
// seeing the key too.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	logbase "repro"
)

// replVer is one oracle version; a key's history is cleared by delete.
type replVer struct {
	ts  int64
	val []byte
}

// replOracle answers pinned reads the way the log-only engine does.
type replOracle map[string][]replVer

func (o replOracle) at(key string, ts int64) ([]byte, bool) {
	var best *replVer
	for i := range o[key] {
		v := &o[key][i]
		if v.ts <= ts && (best == nil || v.ts > best.ts) {
			best = v
		}
	}
	if best == nil {
		return nil, false
	}
	return best.val, true
}

func (o replOracle) scanAt(ts int64) []logbase.Row {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []logbase.Row
	for _, k := range keys {
		if v, ok := o.at(k, ts); ok {
			out = append(out, logbase.Row{Key: []byte(k), Value: v})
		}
	}
	return out
}

func runReplicaModelScenario(t *testing.T, seed int64) bool {
	t.Helper()
	c, err := logbase.NewCluster(t.TempDir(), logbase.ClusterConfig{
		NumServers: 2,
		Replicas:   1,
		Tables:     []logbase.TableSpec{{Name: "t", Groups: []string{"g"}, Tablets: 2}},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cc := logbase.NewClusterClient(c)
	defer cc.Close()

	rng := rand.New(rand.NewSource(seed))
	oracle := replOracle{}
	var pins []int64
	const keySpace = 120
	for round := 0; round < 4; round++ {
		// Churn: single writer, so the coordinator's last timestamp right
		// after an operation IS that operation's commit timestamp.
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("row/%04d", rng.Intn(keySpace))
			if rng.Intn(12) == 0 {
				if err := cc.Delete(bg, "t", "g", []byte(k)); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(oracle, k) // a delete drops the whole history
			} else {
				v := fmt.Sprintf("val-%d-%d-%d", round, i, rng.Intn(50))
				if err := cc.Put(bg, "t", "g", []byte(k), []byte(v)); err != nil {
					t.Fatalf("Put: %v", err)
				}
				oracle[k] = append(oracle[k], replVer{ts: c.Coord().LastTimestamp(), val: []byte(v)})
			}
		}

		// Mid-stream topology churn the replicas must mirror: a split
		// after round 0, a migration after round 1.
		assign := map[string]string{}
		for tab, owner := range c.Assignments() {
			assign[tab] = owner
		}
		tabs := make([]string, 0, len(assign))
		for tab := range assign {
			tabs = append(tabs, tab)
		}
		sort.Strings(tabs)
		switch round {
		case 0:
			// Split the first tablet with enough keys (a thin one under a
			// skewed key draw refuses, which is fine).
			split := false
			for _, tab := range tabs {
				if _, _, err := c.SplitTablet(tab); err == nil {
					split = true
					break
				}
			}
			if !split {
				t.Fatalf("seed %d: no tablet of %v was splittable", seed, tabs)
			}
		case 1:
			tab := tabs[rng.Intn(len(tabs))]
			dest := "ts00"
			if assign[tab] == dest {
				dest = "ts01"
			}
			if err := c.MoveTablet(tab, dest); err != nil {
				t.Fatalf("MoveTablet(%s -> %s): %v", tab, dest, err)
			}
		}

		// Pin this round's frontier, wait for the replicas to cover it,
		// then replay EVERY pin so far: the engine's answers at old pins
		// must track the oracle, retroactive delete semantics included.
		pin := c.Coord().LastTimestamp()
		if err := c.WaitForReplicaTS(pin, 10*time.Second); err != nil {
			t.Fatalf("WaitForReplicaTS: %v", err)
		}
		pins = append(pins, pin)
		for _, p := range pins {
			want := oracle.scanAt(p)
			got := drain(t, cc.Scan(bg, "t", "g", nil, nil, logbase.WithSnapshot(p)))
			if len(got) != len(want) {
				t.Logf("seed %d round %d pin %d: scan %d rows, oracle %d", seed, round, p, len(got), len(want))
				return false
			}
			for j := range want {
				if !bytes.Equal(got[j].Key, want[j].Key) || !bytes.Equal(got[j].Value, want[j].Value) {
					t.Logf("seed %d round %d pin %d: row %d = %q=%q, oracle %q=%q",
						seed, round, p, j, got[j].Key, got[j].Value, want[j].Key, want[j].Value)
					return false
				}
			}
			for i := 0; i < 15; i++ {
				k := fmt.Sprintf("row/%04d", rng.Intn(keySpace))
				row, err := cc.GetAt(bg, "t", "g", []byte(k), p)
				if wantV, ok := oracle.at(k, p); ok {
					if err != nil || !bytes.Equal(row.Value, wantV) {
						t.Logf("seed %d pin %d: GetAt(%s) = %q, %v; oracle %q", seed, p, k, row.Value, err, wantV)
						return false
					}
				} else if !errors.Is(err, logbase.ErrNotFound) {
					t.Logf("seed %d pin %d: GetAt(%s) err = %v, oracle not-found", seed, p, k, err)
					return false
				}
			}
		}
	}

	// The routing must actually have used the standbys: pinned reads at
	// covered timestamps land on replicas, not the primaries.
	var served int64
	for _, stats := range cc.ReplicaStats() {
		for _, st := range stats {
			served += st.ReadsServed
		}
	}
	if served == 0 {
		t.Logf("seed %d: no replica served any read", seed)
		return false
	}
	return true
}

func TestReplicaSnapshotModelCluster(t *testing.T) {
	f := func(seed int64) bool { return runReplicaModelScenario(t, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 3, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}
