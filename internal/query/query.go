// Package query is LogBase's snapshot-consistent analytical executor
// (the HTAP read path): because the log is the only data repository and
// every committed version stays addressable through the multiversion
// index, a consistent snapshot at any timestamp is free — no copy, no
// ETL, no lock against the OLTP write path. A Snapshot pins a read
// timestamp over a set of tablets and executes declarative Query specs
// through a small operator pipeline (parallel shard scan → residual
// filter → aggregation), with key-range and time-range predicates
// pushed below the log fetch and per-record log reads amortised into
// batched sequential sweeps.
//
// Aggregate results are mergeable partials (count/sum/min/max carry
// enough state to combine), which is what lets the cluster layer
// scatter one query across all tablet servers at a single global
// timestamp and gather the partial results into one exact answer.
package query

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/readopt"
)

// Filter is the predicate set of a query. Start/End, MinTS/MaxTS, and
// Key are pushed down into the index scan (rows they reject cost no
// log I/O); Value runs after the log fetch but still inside the scan
// workers; Pred is the residual client-side predicate for anything the
// serializable set cannot express.
//
// Key and Value are the SAME serializable push-down structs
// (readopt.Predicate) the Store read path ships to tablet servers —
// one predicate vocabulary across the OLTP scan API, the wire
// protocol, and the analytical executor.
type Filter struct {
	// Start and End bound the key range [Start, End); nil = open.
	Start, End []byte
	// MinTS / MaxTS, when non-zero, keep only rows whose visible version
	// was committed in [MinTS, MaxTS] — "what changed in this window".
	MinTS, MaxTS int64
	// Key keeps only rows whose key matches (prefix/contains/range);
	// evaluated on index entries, before any log read.
	Key *readopt.Predicate
	// Value keeps only rows whose value matches; evaluated after the
	// log read, inside the scan workers.
	Value *readopt.Predicate
	// Pred keeps rows it returns true for; nil keeps everything.
	Pred func(core.Row) bool
}

// scanOptions compiles the filter's push-down portion into engine
// ScanOptions for one shard [start, end) at snapshot ts — the shared
// conversion point with the Store read path (core.ReadScanOptions).
func (f Filter) scanOptions(start, end []byte, ts int64, workers, batch int) core.ScanOptions {
	opt := core.ReadScanOptions(start, end, ts, readopt.Options{
		MinTS: f.MinTS, MaxTS: f.MaxTS,
		Key: f.Key, Value: f.Value,
		BatchSize: batch,
	})
	opt.Workers = workers
	return opt
}

// AggKind enumerates the aggregation operators.
type AggKind int

const (
	Count AggKind = iota
	Sum
	Min
	Max
	Avg
)

// String names the operator (COUNT, SUM, ...).
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// ParseAggKind maps an operator name (any case handled by caller;
// expects upper) back to its kind.
func ParseAggKind(s string) (AggKind, error) {
	for _, k := range []AggKind{Count, Sum, Min, Max, Avg} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("query: unknown aggregate %q", s)
}

// Agg is one aggregate over a numeric projection of the row. Extract
// returns the value and whether the row participates (false behaves
// like SQL NULL). A nil Extract counts every row with value 0 — the
// COUNT(*) shape.
type Agg struct {
	// Name labels the aggregate in results; defaults to Kind.String().
	Name    string
	Kind    AggKind
	Extract func(core.Row) (float64, bool)
}

// FloatValue is an Extract for rows whose value is a decimal ASCII
// number (the common bench/CLI encoding); non-numeric rows are skipped.
func FloatValue(r core.Row) (float64, bool) {
	v, err := strconv.ParseFloat(string(r.Value), 64)
	return v, err == nil
}

// Query is a declarative analytical query: which rows (Filter), how
// they group (GroupBy), and what is computed per group (Aggs).
type Query struct {
	Filter Filter
	// GroupBy maps a row to its group key; nil aggregates everything
	// into the single group "".
	GroupBy func(core.Row) string
	// Aggs are the aggregates computed per group. Empty still counts
	// rows (Result.Rows / GroupResult.Rows).
	Aggs []Agg
	// Workers caps per-tablet scan parallelism; 0 = DefaultWorkers().
	Workers int
}

// DefaultWorkers is the scan fan-out used when a query does not pin
// one.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// AggState is a mergeable partial aggregate: enough state to produce
// any AggKind and to combine with a partial computed elsewhere (another
// shard, another tablet server).
type AggState struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Add folds one value into the partial.
func (a *AggState) Add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Merge folds another partial into this one.
func (a *AggState) Merge(b AggState) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.Count == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	a.Sum += b.Sum
}

// Value finalises the partial as kind. Min/Max/Avg over zero
// participating rows return 0 (check Count to distinguish).
func (a AggState) Value(kind AggKind) float64 {
	switch kind {
	case Count:
		return float64(a.Count)
	case Sum:
		return a.Sum
	case Min:
		return a.Min
	case Max:
		return a.Max
	case Avg:
		if a.Count == 0 {
			return 0
		}
		return a.Sum / float64(a.Count)
	}
	return 0
}

// GroupResult is one output group: its key, the number of rows that
// fell into it, and one partial per Query.Aggs entry.
type GroupResult struct {
	Key  string
	Rows int64
	Aggs []AggState
}

// Result is a completed (or partial, pre-merge) query result.
type Result struct {
	// TS is the pinned snapshot timestamp the result is consistent at.
	TS int64
	// Rows is the total number of rows aggregated.
	Rows int64
	// Groups is sorted by Key; a query without GroupBy has exactly one
	// group with key "" (when any row matched).
	Groups []GroupResult
}

// Group returns the group with the given key.
func (r Result) Group(key string) (GroupResult, bool) {
	i := sort.Search(len(r.Groups), func(i int) bool { return r.Groups[i].Key >= key })
	if i < len(r.Groups) && r.Groups[i].Key == key {
		return r.Groups[i], true
	}
	return GroupResult{}, false
}

// Value returns aggregate i of the single-group result (key ""); zero
// if no rows matched.
func (r Result) Value(i int, kind AggKind) float64 {
	g, ok := r.Group("")
	if !ok || i >= len(g.Aggs) {
		return 0
	}
	return g.Aggs[i].Value(kind)
}

// Merge combines a partial result computed over a disjoint row set at
// the same snapshot (the gather half of scatter-gather).
func (r *Result) Merge(o Result) {
	if r.TS == 0 {
		r.TS = o.TS
	}
	r.Rows += o.Rows
	if len(o.Groups) == 0 {
		return
	}
	merged := make(map[string]*GroupResult, len(r.Groups)+len(o.Groups))
	order := make([]string, 0, len(r.Groups)+len(o.Groups))
	take := func(gs []GroupResult) {
		for i := range gs {
			g := gs[i]
			dst, ok := merged[g.Key]
			if !ok {
				cp := GroupResult{Key: g.Key, Rows: g.Rows, Aggs: append([]AggState(nil), g.Aggs...)}
				merged[g.Key] = &cp
				order = append(order, g.Key)
				continue
			}
			dst.Rows += g.Rows
			for j := range g.Aggs {
				if j < len(dst.Aggs) {
					dst.Aggs[j].Merge(g.Aggs[j])
				}
			}
		}
	}
	take(r.Groups)
	take(o.Groups)
	sort.Strings(order)
	out := make([]GroupResult, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	r.Groups = out
}
