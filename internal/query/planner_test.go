package query

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/readopt"
)

func TestExprEval(t *testing.T) {
	r := core.Row{Key: []byte("o42"), Value: []byte("c7,i9,3")}
	cases := []struct {
		e    Expr
		want string
		ok   bool
	}{
		{KeyExpr(), "o42", true},
		{ValExpr(), "c7,i9,3", true},
		{ValField(0), "c7", true},
		{ValField(1), "i9", true},
		{ValField(2), "3", true},
		{ValField(3), "", false},
		{KeyField(0), "o42", true},
		{KeyField(1), "", false},
		{Expr{}, "", false},
	}
	for _, c := range cases {
		got, ok := c.e.Eval(r)
		if ok != c.ok || (ok && string(got) != c.want) {
			t.Errorf("%s.Eval = %q, %v; want %q, %v", c.e.EncodeWire(), got, ok, c.want, c.ok)
		}
	}
}

func TestExprWireRoundTrip(t *testing.T) {
	for _, e := range []Expr{KeyExpr(), ValExpr(), KeyField(0), ValField(12)} {
		got, err := ParseExpr(e.EncodeWire())
		if err != nil || got != e {
			t.Errorf("round trip %q: got %+v, err %v", e.EncodeWire(), got, err)
		}
	}
	for _, bad := range []string{"", "ROW", "KEY[", "KEY[x]", "VAL[-1]"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q): expected error", bad)
		}
	}
}

// threeTable is the orders ⋈ customers ⋈ items fixture: orders carries
// both foreign keys in its value, customers and items are joined on
// their primary keys.
func threeTable() *Statement {
	return NewStatement("orders").Group("g").
		Join("customers", "g", On{LeftTable: "orders", Left: ValField(0), Right: KeyExpr()}).
		Join("items", "g", On{LeftTable: "orders", Left: ValField(1), Right: KeyExpr()}).
		Agg(Count)
}

func TestStatementWireRoundTrip(t *testing.T) {
	s := threeTable().
		Range([]byte("i0"), []byte("i5")).
		At(99).
		GroupByExpr("customers", ValField(1), 3).
		AggOf(Sum, "items", ValField(2))
	s.Base.Filter = RelFilter{
		Start: []byte("o1"), End: []byte("o9 z"),
		Key:   readopt.Prefix([]byte("o")),
		Value: readopt.Contains([]byte("x%y")),
	}
	s.Joins[0].On.Via = "by_cust"

	tokens := s.EncodeTokens()
	got, err := ParseStatementTokens(tokens)
	if err != nil {
		t.Fatalf("parse %q: %v", strings.Join(tokens, " "), err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip:\n got %#v\nwant %#v\nwire %q", got, s, strings.Join(tokens, " "))
	}
}

func TestStatementValidate(t *testing.T) {
	for name, s := range map[string]*Statement{
		"no table":      NewStatement("").Group("g"),
		"no group":      NewStatement("t"),
		"self join":     NewStatement("t").Group("g").Join("t", "g", On{Left: KeyExpr(), Right: KeyExpr()}),
		"unknown left":  NewStatement("t").Group("g").Join("u", "g", On{LeftTable: "nope", Left: KeyExpr(), Right: KeyExpr()}),
		"half cond":     NewStatement("t").Group("g").Join("u", "g", On{Left: KeyExpr()}),
		"bad by":        NewStatement("t").Group("g").GroupByExpr("nope", KeyExpr(), 0),
		"bad agg table": NewStatement("t").Group("g").AggOf(Sum, "nope", ValExpr()),
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
	if err := threeTable().Validate(); err != nil {
		t.Fatalf("threeTable should validate: %v", err)
	}
}

func TestCompileSingleMatchesLegacyShapes(t *testing.T) {
	s := NewStatement("t").Group("g").Range([]byte("a"), []byte("m")).GroupBy(2).Agg(Count).AggOf(Sum, "t", ValExpr())
	q, err := s.CompileSingle()
	if err != nil {
		t.Fatal(err)
	}
	if string(q.Filter.Start) != "a" || string(q.Filter.End) != "m" {
		t.Fatalf("filter bounds = [%q, %q)", q.Filter.Start, q.Filter.End)
	}
	if got := q.GroupBy(core.Row{Key: []byte("abcd")}); got != "ab" {
		t.Fatalf("GroupBy = %q, want ab", got)
	}
	if q.Aggs[0].Extract != nil {
		t.Fatal("COUNT(*) agg should have nil Extract")
	}
	if v, ok := q.Aggs[1].Extract(core.Row{Value: []byte("4.5")}); !ok || v != 4.5 {
		t.Fatalf("SUM extract = %v, %v", v, ok)
	}
	if _, ok := q.Aggs[1].Extract(core.Row{Value: []byte("nope")}); ok {
		t.Fatal("non-numeric value should not participate")
	}
	if _, err := threeTable().CompileSingle(); err == nil {
		t.Fatal("CompileSingle with joins should error")
	}
}

// TestGreedyOrderPrefersFilteredStart: on an asymmetric fixture where
// only one relation carries a bounded filter, greedy must start there
// regardless of declaration order.
func TestGreedyOrderPrefersFilteredStart(t *testing.T) {
	s := threeTable()
	// items is the only filtered relation: start there.
	s.Joins[1].Rel.Filter = RelFilter{Start: []byte("i100"), End: []byte("i200")}
	plan, err := PlanJoins(s)
	if err != nil {
		t.Fatal(err)
	}
	// items(2) first; orders(0) is the only connected candidate; then
	// customers(1) broadcasts off orders' bound value field.
	if want := []int{2, 0, 1}; !reflect.DeepEqual(plan.Order(), want) {
		t.Fatalf("order = %v (%s), want %v", plan.Order(), plan.Describe(s), want)
	}
	// Fetching orders given bound items: orders' side of the condition
	// is a value FIELD — no push-down shape — so it scans and probes.
	if plan.Steps[1].Strategy != StrategyHash {
		t.Fatalf("orders step = %s, want hash", plan.Describe(s))
	}
	// Fetching customers given bound orders: customers' side is the
	// whole key — the key-set broadcast into the clustered fast path.
	if plan.Steps[2].Strategy != StrategyBroadcast || plan.Steps[2].Broadcast != 0 {
		t.Fatalf("customers step = %s, want broadcast j0", plan.Describe(s))
	}
}

// TestGreedyOrderPrefersKeyPredicate: a key predicate outweighs a
// single range bound as the starting selectivity proxy.
func TestGreedyOrderPrefersKeyPredicate(t *testing.T) {
	s := NewStatement("a").Group("g").
		Join("b", "g", On{LeftTable: "a", Left: ValField(0), Right: KeyExpr()}).
		Join("c", "g", On{LeftTable: "b", Left: ValField(0), Right: KeyExpr()})
	s.Joins[0].Rel.Filter = RelFilter{Start: []byte("b0")}              // one bound
	s.Joins[1].Rel.Filter = RelFilter{Key: readopt.Prefix([]byte("c"))} // key pred: stronger
	plan, err := PlanJoins(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Order()[0] != 2 {
		t.Fatalf("order = %v (%s), want start at c", plan.Order(), plan.Describe(s))
	}
}

// TestGreedyFilteredCandidateBeatsDeclarationOrder: among candidates
// tied on condition count and strategy, the one with the stronger
// push-down filter is fetched first; with no filters the tie falls to
// declaration order.
func TestGreedyFilteredCandidateBeatsDeclarationOrder(t *testing.T) {
	s := threeTable()
	s.Base.Filter = RelFilter{Start: []byte("o0"), End: []byte("o9")}
	// Unfiltered: customers and items tie off bound orders; both
	// broadcast; declaration order breaks the tie.
	plan, err := PlanJoins(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(plan.Order(), want) {
		t.Fatalf("order = %v (%s), want %v", plan.Order(), plan.Describe(s), want)
	}
	// Filter items: it now beats customers for the second slot.
	s.Joins[1].Rel.Filter = RelFilter{Key: readopt.Prefix([]byte("i"))}
	if plan, err = PlanJoins(s); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 2, 1}; !reflect.DeepEqual(plan.Order(), want) {
		t.Fatalf("order = %v (%s), want %v", plan.Order(), plan.Describe(s), want)
	}
}

func TestPlanRejectsDisconnected(t *testing.T) {
	s := NewStatement("a").Group("g").
		Join("b", "g", On{LeftTable: "a", Left: ValField(0), Right: KeyExpr()})
	// Rewire b's condition to reference a, then add an island: c joins
	// nothing in the bound set reachable from a's component... simplest
	// disconnection: make c's left side point at itself via a table
	// that exists but with a condition left-table of c is invalid, so
	// instead build two joins where the second's left is the second
	// itself — Validate rejects that. True disconnection needs >=2
	// joins: a-b connected, c joined ON b but planner starts at c.
	// Force it with PlanOrdered instead: order {0} only is invalid.
	if _, err := PlanOrdered(s, []int{0}); err == nil {
		t.Fatal("short order should error")
	}
	if _, err := PlanOrdered(s, []int{0, 0}); err == nil {
		t.Fatal("duplicate order should error")
	}
}

// memFetcher serves ExecStatement from in-memory relations and counts
// the rows each Fetch ships (the data-movement proxy the broadcast
// strategy must shrink).
type memFetcher struct {
	rels    [][]core.Row
	sec     map[string]map[string][]core.Row // index -> attr -> rows
	shipped int
}

func (m *memFetcher) Fetch(_ context.Context, rel int, f Filter) ([]core.Row, error) {
	var out []core.Row
	for _, r := range m.rels[rel] {
		if f.Start != nil && bytes.Compare(r.Key, f.Start) < 0 {
			continue
		}
		if f.End != nil && bytes.Compare(r.Key, f.End) >= 0 {
			continue
		}
		if !f.Key.Match(r.Key) || !f.Value.Match(r.Value) {
			continue
		}
		out = append(out, r)
	}
	m.shipped += len(out)
	return out, nil
}

func (m *memFetcher) FetchSecondary(_ context.Context, rel int, index string, vals [][]byte) ([]core.Row, error) {
	var out []core.Row
	for _, v := range vals {
		out = append(out, m.sec[index][string(v)]...)
	}
	m.shipped += len(out)
	return out, nil
}

func newJoinFixture() *memFetcher {
	m := &memFetcher{rels: make([][]core.Row, 3)}
	// orders: o<i> -> c<i%3>,i<i%2>,<qty>
	for i := 0; i < 12; i++ {
		m.rels[0] = append(m.rels[0], core.Row{
			Key:   []byte(fmt.Sprintf("o%02d", i)),
			Value: []byte(fmt.Sprintf("c%d,i%d,%d", i%3, i%2, i)),
		})
	}
	for i := 0; i < 3; i++ {
		m.rels[1] = append(m.rels[1], core.Row{
			Key:   []byte(fmt.Sprintf("c%d", i)),
			Value: []byte(fmt.Sprintf("region%d", i%2)),
		})
	}
	for i := 0; i < 2; i++ {
		m.rels[2] = append(m.rels[2], core.Row{
			Key:   []byte(fmt.Sprintf("i%d", i)),
			Value: []byte(fmt.Sprintf("%d", 100+i)),
		})
	}
	return m
}

// TestExecStatementGreedyMatchesNaive: the greedy broadcast plan and
// every forced naive order agree exactly, and the greedy plan ships
// fewer rows than the worst naive order.
func TestExecStatementGreedyMatchesNaive(t *testing.T) {
	s := threeTable().
		AggOf(Sum, "orders", ValField(2)).
		GroupByExpr("customers", ValExpr(), 0)
	s.Base.Filter = RelFilter{Start: []byte("o00"), End: []byte("o06")}

	greedy := newJoinFixture()
	want, err := ExecStatement(context.Background(), s, 7, greedy, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want.TS != 7 || want.Rows != 6 {
		t.Fatalf("greedy result: TS=%d Rows=%d, want TS=7 Rows=6", want.TS, want.Rows)
	}

	worstShipped := 0
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		naive := newJoinFixture()
		got, err := ExecStatement(context.Background(), s, 7, naive, ExecOptions{
			Order: order, NoBroadcast: true, NoPushdown: true,
		})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v:\n got %+v\nwant %+v", order, got, want)
		}
		if naive.shipped > worstShipped {
			worstShipped = naive.shipped
		}
	}
	if greedy.shipped >= worstShipped {
		t.Fatalf("greedy shipped %d rows, worst naive %d — broadcast should shrink data movement", greedy.shipped, worstShipped)
	}
}

// TestExecStatementSecondary: a VIA join fetches through the secondary
// index and still re-verifies the relation's own filter.
func TestExecStatementSecondary(t *testing.T) {
	s := NewStatement("orders").Group("g").
		Join("customers", "g", On{LeftTable: "orders", Left: ValField(0), Right: KeyExpr(), Via: "cust_pk"})
	s.Base.Filter = RelFilter{Start: []byte("o00"), End: []byte("o03")}
	s.Agg(Count)

	m := newJoinFixture()
	m.sec = map[string]map[string][]core.Row{"cust_pk": {}}
	for _, r := range m.rels[1] {
		m.sec["cust_pk"][string(r.Key)] = append(m.sec["cust_pk"][string(r.Key)], r)
	}
	// Force the secondary strategy: right side is a key FIELD, not the
	// whole key, so broadcast does not apply.
	s.Joins[0].On.Right = KeyField(0)

	plan, err := PlanJoins(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[1].Strategy != StrategySecondary {
		t.Fatalf("plan = %s, want secondary", plan.Describe(s))
	}
	res, err := ExecStatement(context.Background(), s, 1, m, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 {
		t.Fatalf("Rows = %d, want 3", res.Rows)
	}
}

// TestExecStatementBroadcastCapFallsBack: past BroadcastCap distinct
// values the executor falls back to the relation's own scan and the
// result is unchanged.
func TestExecStatementBroadcastCapFallsBack(t *testing.T) {
	m := &memFetcher{rels: make([][]core.Row, 2)}
	n := BroadcastCap + 10
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%05d", i)
		m.rels[0] = append(m.rels[0], core.Row{Key: []byte("a" + k), Value: []byte(k)})
		m.rels[1] = append(m.rels[1], core.Row{Key: []byte(k), Value: []byte("1")})
	}
	s := NewStatement("a").Group("g").
		Join("b", "g", On{LeftTable: "a", Left: ValExpr(), Right: KeyExpr()}).
		Agg(Count)
	res, err := ExecStatement(context.Background(), s, 1, m, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Rows) != n {
		t.Fatalf("Rows = %d, want %d", res.Rows, n)
	}
}
