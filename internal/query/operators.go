package query

// The executor is a small pull-based operator pipeline over row
// batches: scan (parallel shard scan feeding a channel) → filter
// (residual predicate) → aggregate (terminal). Batches, not rows, flow
// between operators so the pipeline overhead stays far below the
// per-row storage cost.

import (
	"context"
	"errors"
	"sort"

	"repro/internal/core"
)

// Operator is a pull-based batch iterator: Next returns the next batch
// of rows, a nil batch at end of stream, or an error. Close releases
// the operator's resources (safe to call more than once) and must be
// called when abandoning a pipeline early.
type Operator interface {
	Next() ([]core.Row, error)
	Close()
}

// errScanDone is the sentinel a closed scan returns into the producing
// ParallelScan to stop it; it never escapes the operator.
var errScanDone = errors.New("query: scan consumer closed")

// scanOp adapts a push-based ParallelScan into the pull model: the scan
// runs in one goroutine, emitting batches into a channel the pipeline
// drains.
type scanOp struct {
	batches chan []core.Row
	done    chan struct{}
	err     error
	fin     chan struct{}
	closed  bool
}

// newScanOp starts the scan for q over one tablet of src at the pinned
// snapshot ts. Cancelling ctx stops the producing ParallelScan within
// one batch boundary and surfaces ctx.Err() from Next.
func newScanOp(ctx context.Context, src Source, tablet, group string, ts int64, q Query) *scanOp {
	op := &scanOp{
		batches: make(chan []core.Row, 4),
		done:    make(chan struct{}),
		fin:     make(chan struct{}),
	}
	workers := q.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	opt := q.Filter.scanOptions(q.Filter.Start, q.Filter.End, ts, workers, 0)
	go func() {
		defer close(op.fin)
		err := src.ParallelScan(ctx, tablet, group, opt, func(rows []core.Row) error {
			// ParallelScan serialises emit calls; hand the batch over,
			// unless the consumer has gone away or the context died.
			select {
			case op.batches <- rows:
				return nil
			case <-op.done:
				return errScanDone
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && !errors.Is(err, errScanDone) {
			op.err = err
		}
		close(op.batches)
	}()
	return op
}

func (op *scanOp) Next() ([]core.Row, error) {
	rows, ok := <-op.batches
	if !ok {
		<-op.fin
		return nil, op.err
	}
	return rows, nil
}

func (op *scanOp) Close() {
	if !op.closed {
		op.closed = true
		close(op.done)
		// Drain so the producer goroutine can exit.
		for range op.batches {
		}
		<-op.fin
	}
}

// filterOp applies the residual value predicate.
type filterOp struct {
	in   Operator
	pred func(core.Row) bool
}

func newFilterOp(in Operator, pred func(core.Row) bool) Operator {
	if pred == nil {
		return in
	}
	return &filterOp{in: in, pred: pred}
}

func (op *filterOp) Next() ([]core.Row, error) {
	for {
		rows, err := op.in.Next()
		if rows == nil || err != nil {
			return nil, err
		}
		kept := rows[:0]
		for _, r := range rows {
			if op.pred(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			return kept, nil
		}
	}
}

func (op *filterOp) Close() { op.in.Close() }

// aggregate is the terminal operator: it drains in and folds every row
// into per-group partial aggregates.
func aggregate(in Operator, ts int64, q Query) (Result, error) {
	defer in.Close()
	res := Result{TS: ts}
	var groups map[string]*GroupResult
	// Without GroupBy every row lands in the "" group; skip the map.
	single := &GroupResult{Aggs: make([]AggState, len(q.Aggs))}
	if q.GroupBy != nil {
		groups = make(map[string]*GroupResult)
	}
	for {
		rows, err := in.Next()
		if err != nil {
			return Result{TS: ts}, err
		}
		if rows == nil {
			break
		}
		for _, r := range rows {
			g := single
			if q.GroupBy != nil {
				key := q.GroupBy(r)
				var ok bool
				if g, ok = groups[key]; !ok {
					g = &GroupResult{Key: key, Aggs: make([]AggState, len(q.Aggs))}
					groups[key] = g
				}
			}
			g.Rows++
			res.Rows++
			for i, a := range q.Aggs {
				v, ok := 0.0, true
				if a.Extract != nil {
					v, ok = a.Extract(r)
				}
				if ok {
					g.Aggs[i].Add(v)
				}
			}
		}
	}
	if q.GroupBy == nil {
		if single.Rows > 0 {
			res.Groups = []GroupResult{*single}
		}
		return res, nil
	}
	res.Groups = make([]GroupResult, 0, len(groups))
	for _, g := range groups {
		res.Groups = append(res.Groups, *g)
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	return res, nil
}
