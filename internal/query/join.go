package query

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/readopt"
)

// BroadcastCap bounds the set predicate shipped to the far side of a
// broadcast join. Past this many distinct values the plan degrades to
// a hash join over the relation's own filter — shipping an enormous
// IN-set costs more than the scan it would save.
const BroadcastCap = 4096

// Fetcher is the storage surface ExecStatement joins over: fetch one
// statement relation under a push-down filter, or fetch the rows whose
// registered secondary-index attribute equals any of vals. The
// embedded engine and the cluster client each provide one; the
// executor itself stays storage-agnostic.
type Fetcher interface {
	Fetch(ctx context.Context, rel int, f Filter) ([]core.Row, error)
	FetchSecondary(ctx context.Context, rel int, index string, vals [][]byte) ([]core.Row, error)
}

// ExecOptions tune statement execution. The zero value is the real
// engine; Order and the No* switches exist for the naive nested-loop
// oracle the model tests and the benchgate join pair compare against.
type ExecOptions struct {
	// Order forces the relation execution order (nil = greedy plan).
	Order []int
	// NoBroadcast disables the set-predicate broadcast: joined
	// relations are fetched by plain scans and probed client-side.
	NoBroadcast bool
	// NoPushdown additionally fetches every relation unfiltered and
	// applies its RelFilter client-side — the worst-case data-movement
	// plan.
	NoPushdown bool
}

// condSides orients condition j relative to relation rel: the already-
// bound relation on the other side, the expr evaluated there, and the
// expr evaluated on rel's rows.
func condSides(s *Statement, j, rel int) (otherRel int, otherExpr, relExpr Expr, err error) {
	left, right := condRels(s, j)
	switch rel {
	case right:
		return left, s.Joins[j].On.Left, s.Joins[j].On.Right, nil
	case left:
		return right, s.Joins[j].On.Right, s.Joins[j].On.Left, nil
	}
	return 0, Expr{}, Expr{}, fmt.Errorf("query: condition %d does not touch relation %d", j, rel)
}

// ExecStatement executes a statement with joins at snapshot ts: plan
// (greedy unless opts.Order pins it), fetch the start relation, then
// fold each planned relation in — broadcasting the bound side's
// distinct join values as a set push-down, looking up a secondary
// index, or hash-probing a scanned side — and aggregate the surviving
// tuples. Join-free statements work too, but the scatter-gather
// CompileSingle path parallelises those better.
func ExecStatement(ctx context.Context, s *Statement, ts int64, fetch Fetcher, opts ExecOptions) (Result, error) {
	var plan Plan
	var err error
	if opts.Order != nil {
		plan, err = PlanOrdered(s, opts.Order)
	} else {
		plan, err = PlanJoins(s)
	}
	if err != nil {
		return Result{}, err
	}
	rels := s.Rels()

	// fetchRel applies (or, under NoPushdown, simulates client-side)
	// the relation's own filter.
	fetchRel := func(rel int) ([]core.Row, error) {
		if !opts.NoPushdown {
			return fetch.Fetch(ctx, rel, rels[rel].Filter.toFilter())
		}
		rows, err := fetch.Fetch(ctx, rel, Filter{})
		if err != nil {
			return nil, err
		}
		kept := rows[:0]
		for _, r := range rows {
			if rels[rel].Filter.Match(r.Key, r.Value) {
				kept = append(kept, r)
			}
		}
		return kept, nil
	}

	// Tuples are row vectors indexed by statement relation; positions
	// bind as the plan progresses.
	start := plan.Steps[0].Rel
	rows, err := fetchRel(start)
	if err != nil {
		return Result{}, err
	}
	tuples := make([][]core.Row, 0, len(rows))
	for _, r := range rows {
		t := make([]core.Row, len(rels))
		t[start] = r
		tuples = append(tuples, t)
	}

	for _, step := range plan.Steps[1:] {
		if len(tuples) == 0 {
			break
		}
		rel := step.Rel
		strategy := step.Strategy
		if opts.NoBroadcast && strategy == StrategyBroadcast {
			strategy = StrategyHash
		}

		// distinctBoundValues projects the bound side of condition j
		// out of every live tuple.
		distinctBoundValues := func(j int) ([][]byte, error) {
			otherRel, otherExpr, _, err := condSides(s, j, rel)
			if err != nil {
				return nil, err
			}
			seen := map[string]bool{}
			var vals [][]byte
			for _, t := range tuples {
				v, ok := otherExpr.Eval(t[otherRel])
				if !ok {
					continue
				}
				if !seen[string(v)] {
					seen[string(v)] = true
					vals = append(vals, append([]byte(nil), v...))
				}
			}
			return vals, nil
		}

		var rows []core.Row
		verify := false // re-check the relation's own filter client-side
		switch strategy {
		case StrategyBroadcast:
			vals, err := distinctBoundValues(step.Broadcast)
			if err != nil {
				return Result{}, err
			}
			_, _, relExpr, _ := condSides(s, step.Broadcast, rel)
			if len(vals) > BroadcastCap {
				rows, err = fetchRel(rel)
			} else {
				f := rels[rel].Filter.toFilter()
				set := readopt.InSet(vals)
				if relExpr.WholeKey() {
					// The set replaces any user key predicate in the
					// push-down slot (re-verified below) and clamps the
					// scan bounds to the set's span.
					f.Key = set
					if lo, hi, ok := set.SetBounds(); ok {
						if f.Start == nil || bytes.Compare(lo, f.Start) > 0 {
							f.Start = lo
						}
						if f.End == nil || bytes.Compare(hi, f.End) < 0 {
							f.End = hi
						}
					}
				} else {
					f.Value = set
				}
				verify = true
				rows, err = fetch.Fetch(ctx, rel, f)
			}
			if err != nil {
				return Result{}, err
			}
		case StrategySecondary:
			var via string
			var viaCond int
			for _, j := range step.Conds {
				if rel == j+1 && s.Joins[j].On.Via != "" {
					via, viaCond = s.Joins[j].On.Via, j
					break
				}
			}
			vals, err := distinctBoundValues(viaCond)
			if err != nil {
				return Result{}, err
			}
			verify = true
			if rows, err = fetch.FetchSecondary(ctx, rel, via, vals); err != nil {
				return Result{}, err
			}
		default:
			if rows, err = fetchRel(rel); err != nil {
				return Result{}, err
			}
		}
		if verify {
			kept := rows[:0]
			for _, r := range rows {
				if rels[rel].Filter.Match(r.Key, r.Value) {
					kept = append(kept, r)
				}
			}
			rows = kept
		}

		tuples, err = joinStep(s, tuples, rows, rel, step.Conds)
		if err != nil {
			return Result{}, err
		}
	}

	return aggregateTuples(s, ts, tuples), nil
}

// joinStep folds the fetched rows of relation rel into the live
// tuples: a hash probe on the step's conditions, or a cross product
// when a forced order left none checkable yet (conditions then apply
// at the later step that binds their other side).
func joinStep(s *Statement, tuples [][]core.Row, rows []core.Row, rel int, conds []int) ([][]core.Row, error) {
	extend := func(t []core.Row, r core.Row) []core.Row {
		nt := append([]core.Row(nil), t...)
		nt[rel] = r
		return nt
	}
	if len(conds) == 0 {
		var out [][]core.Row
		for _, t := range tuples {
			for _, r := range rows {
				out = append(out, extend(t, r))
			}
		}
		return out, nil
	}

	// Composite hash key over every condition, length-prefixed so
	// adjacent values cannot alias.
	compositeKey := func(evals func(j int) ([]byte, bool)) (string, bool) {
		var b []byte
		for _, j := range conds {
			v, ok := evals(j)
			if !ok {
				return "", false
			}
			b = binary.AppendUvarint(b, uint64(len(v)))
			b = append(b, v...)
		}
		return string(b), true
	}

	index := make(map[string][]core.Row, len(rows))
	for _, r := range rows {
		key, ok := compositeKey(func(j int) ([]byte, bool) {
			_, _, relExpr, err := condSides(s, j, rel)
			if err != nil {
				return nil, false
			}
			return relExpr.Eval(r)
		})
		if !ok {
			continue
		}
		index[key] = append(index[key], r)
	}

	var out [][]core.Row
	for _, t := range tuples {
		key, ok := compositeKey(func(j int) ([]byte, bool) {
			otherRel, otherExpr, _, err := condSides(s, j, rel)
			if err != nil {
				return nil, false
			}
			return otherExpr.Eval(t[otherRel])
		})
		if !ok {
			continue
		}
		for _, r := range index[key] {
			out = append(out, extend(t, r))
		}
	}
	return out, nil
}

// aggregateTuples groups and aggregates the joined tuples, producing
// the same mergeable Result shape as the single-relation path.
func aggregateTuples(s *Statement, ts int64, tuples [][]core.Row) Result {
	res := Result{TS: ts, Rows: int64(len(tuples))}
	if len(tuples) == 0 {
		return res
	}
	byRel := -1
	if s.By != nil {
		byRel = s.RelIndex(s.By.Table)
	}
	aggRels := make([]int, len(s.Aggs))
	for i, a := range s.Aggs {
		aggRels[i] = s.RelIndex(a.Table)
	}
	groups := map[string]*GroupResult{}
	for _, t := range tuples {
		key := ""
		if byRel >= 0 {
			if v, ok := s.By.Expr.Eval(t[byRel]); ok {
				if s.By.Prefix > 0 && len(v) > s.By.Prefix {
					v = v[:s.By.Prefix]
				}
				key = string(v)
			}
		}
		g := groups[key]
		if g == nil {
			g = &GroupResult{Key: key, Aggs: make([]AggState, len(s.Aggs))}
			groups[key] = g
		}
		g.Rows++
		for i, a := range s.Aggs {
			if a.Expr.IsZero() {
				g.Aggs[i].Add(0)
				continue
			}
			v, ok := a.Expr.Eval(t[aggRels[i]])
			if !ok {
				continue
			}
			f, err := strconv.ParseFloat(string(v), 64)
			if err != nil {
				continue
			}
			g.Aggs[i].Add(f)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Groups = append(res.Groups, *groups[k])
	}
	return res
}
