package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ExprSrc names which half of a row an Expr projects from.
type ExprSrc uint8

const (
	// SrcKey projects from the row key.
	SrcKey ExprSrc = iota + 1
	// SrcValue projects from the row value.
	SrcValue
)

// Expr is a serializable attribute projection over a row: the whole
// key, the whole value, or one comma-separated field of either. It is
// the join/grouping/aggregation vocabulary of a Statement — like
// readopt.Predicate it is data, not code, so a statement carrying
// exprs crosses the wire unchanged.
//
// The zero Expr is "no projection" (IsZero reports true); aggregates
// use it for the COUNT(*) shape.
type Expr struct {
	Src ExprSrc
	// Field selects the Field'th comma-separated field (0-based);
	// -1 projects the whole key/value.
	Field int
}

// KeyExpr projects the whole row key.
func KeyExpr() Expr { return Expr{Src: SrcKey, Field: -1} }

// KeyField projects the i'th comma-separated field of the key.
func KeyField(i int) Expr { return Expr{Src: SrcKey, Field: i} }

// ValExpr projects the whole row value.
func ValExpr() Expr { return Expr{Src: SrcValue, Field: -1} }

// ValField projects the i'th comma-separated field of the value.
func ValField(i int) Expr { return Expr{Src: SrcValue, Field: i} }

// IsZero reports whether e is the zero "no projection" expr.
func (e Expr) IsZero() bool { return e.Src == 0 }

// WholeKey reports whether e projects the entire row key — the shape
// whose equi-join values can be broadcast as a key-set push-down.
func (e Expr) WholeKey() bool { return e.Src == SrcKey && e.Field < 0 }

// WholeValue reports whether e projects the entire row value.
func (e Expr) WholeValue() bool { return e.Src == SrcValue && e.Field < 0 }

// Eval projects the attribute out of r. ok=false means the row has no
// such attribute (a field index past the last separator) and behaves
// like SQL NULL: the row joins with nothing and aggregates skip it.
func (e Expr) Eval(r core.Row) ([]byte, bool) {
	var b []byte
	switch e.Src {
	case SrcKey:
		b = r.Key
	case SrcValue:
		b = r.Value
	default:
		return nil, false
	}
	if e.Field < 0 {
		return b, true
	}
	field := e.Field
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == ',' {
			if field == 0 {
				return b[start:i], true
			}
			field--
			start = i + 1
		}
	}
	return nil, false
}

// EncodeWire renders the expr as one wire token: KEY, VAL, KEY[i], or
// VAL[i].
func (e Expr) EncodeWire() string {
	src := "KEY"
	if e.Src == SrcValue {
		src = "VAL"
	}
	if e.Field < 0 {
		return src
	}
	return fmt.Sprintf("%s[%d]", src, e.Field)
}

// ParseExpr parses one wire token produced by EncodeWire.
func ParseExpr(tok string) (Expr, error) {
	up := strings.ToUpper(tok)
	src, rest := ExprSrc(0), ""
	switch {
	case strings.HasPrefix(up, "KEY"):
		src, rest = SrcKey, up[3:]
	case strings.HasPrefix(up, "VAL"):
		src, rest = SrcValue, up[3:]
	default:
		return Expr{}, fmt.Errorf("query: bad expr %q (want KEY, VAL, KEY[i], VAL[i])", tok)
	}
	if rest == "" {
		return Expr{Src: src, Field: -1}, nil
	}
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return Expr{}, fmt.Errorf("query: bad expr %q", tok)
	}
	i, err := strconv.Atoi(rest[1 : len(rest)-1])
	if err != nil || i < 0 {
		return Expr{}, fmt.Errorf("query: bad expr field in %q", tok)
	}
	return Expr{Src: src, Field: i}, nil
}
