package query

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/partition"
	"repro/internal/readopt"
)

const (
	testTablet = "t/0000"
	testGroup  = "g"
)

func newServer(t *testing.T) *core.Server {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	s, err := core.NewServer(fs, "ts1", core.Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s.AddTablet(partition.Tablet{ID: testTablet, Table: "t"}, []string{testGroup})
	return s
}

// load writes n rows keyed user%06d with the row index as decimal value
// at timestamps 1..n, returning the snapshot timestamp after the load.
func load(t *testing.T, s *core.Server, n int) int64 {
	t.Helper()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user%06d", i))
		if err := s.Write(testTablet, testGroup, key, int64(i+1), []byte(strconv.Itoa(i))); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	return int64(n)
}

func TestAggregates(t *testing.T) {
	s := newServer(t)
	const n = 1000
	ts := load(t, s, n)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})
	res, err := snap.Run(context.Background(), testGroup, Query{
		Aggs: []Agg{
			{Kind: Count},
			{Kind: Sum, Extract: FloatValue},
			{Kind: Min, Extract: FloatValue},
			{Kind: Max, Extract: FloatValue},
			{Kind: Avg, Extract: FloatValue},
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TS != ts || res.Rows != n {
		t.Fatalf("res.TS=%d rows=%d, want %d/%d", res.TS, res.Rows, ts, n)
	}
	wantSum := float64(n*(n-1)) / 2
	checks := []struct {
		i    int
		kind AggKind
		want float64
	}{
		{0, Count, n},
		{1, Sum, wantSum},
		{2, Min, 0},
		{3, Max, n - 1},
		{4, Avg, wantSum / n},
	}
	for _, c := range checks {
		if got := res.Value(c.i, c.kind); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v = %g, want %g", c.kind, got, c.want)
		}
	}
}

func TestSnapshotIgnoresLaterWrites(t *testing.T) {
	s := newServer(t)
	const n = 400
	ts := load(t, s, n)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})

	q := Query{Aggs: []Agg{{Kind: Sum, Extract: FloatValue}}, Workers: 4}
	before, err := snap.Run(context.Background(), testGroup, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Commit new rows AND overwrite existing ones after the snapshot.
	for i := 0; i < 100; i++ {
		if err := s.Write(testTablet, testGroup, []byte(fmt.Sprintf("user%06d", i)), int64(n+i+1), []byte("999999")); err != nil {
			t.Fatalf("overwrite: %v", err)
		}
		if err := s.Write(testTablet, testGroup, []byte(fmt.Sprintf("zuser%06d", i)), int64(n+200+i), []byte("1")); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}

	after, err := snap.Run(context.Background(), testGroup, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after.Rows != before.Rows || after.Value(0, Sum) != before.Value(0, Sum) {
		t.Fatalf("snapshot drifted: before rows=%d sum=%g, after rows=%d sum=%g",
			before.Rows, before.Value(0, Sum), after.Rows, after.Value(0, Sum))
	}
	// And an unpinned (current) snapshot must see the new state.
	now := NewSnapshot(int64(1<<40), Target{Source: s, Tablet: testTablet})
	cur, err := now.Run(context.Background(), testGroup, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cur.Rows != n+100 || cur.Value(0, Sum) == before.Value(0, Sum) {
		t.Fatalf("current snapshot rows=%d sum=%g, want %d rows and a different sum", cur.Rows, cur.Value(0, Sum), n+100)
	}
}

func TestGroupByAndFilters(t *testing.T) {
	s := newServer(t)
	const n = 900
	ts := load(t, s, n)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})

	res, err := snap.Run(context.Background(), testGroup, Query{
		Filter: Filter{
			Start: []byte("user000100"),
			End:   []byte("user000700"),
			Pred: func(r core.Row) bool {
				v, _ := strconv.Atoi(string(r.Value))
				return v%3 == 0
			},
		},
		// Group on the hundreds digit of the key.
		GroupBy: func(r core.Row) string { return string(r.Key[:len("user0001")]) },
		Aggs:    []Agg{{Kind: Count}, {Kind: Sum, Extract: FloatValue}},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Groups) != 6 {
		t.Fatalf("got %d groups, want 6: %+v", len(res.Groups), res.Groups)
	}
	var totalRows int64
	for i, g := range res.Groups {
		want := fmt.Sprintf("user000%d", i+1)
		if g.Key != want {
			t.Errorf("group %d key = %q, want %q (sorted)", i, g.Key, want)
		}
		if g.Rows < 33 || g.Rows > 34 {
			t.Errorf("group %q rows = %d, want 33..34", g.Key, g.Rows)
		}
		totalRows += g.Rows
	}
	if totalRows != res.Rows || res.Rows != 200 {
		t.Fatalf("rows = %d (groups sum %d), want 200", res.Rows, totalRows)
	}
}

func TestTimeRangeFilter(t *testing.T) {
	s := newServer(t)
	const n = 500
	ts := load(t, s, n)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})
	// "What changed in the last 50 ticks" — classic log-as-database
	// incremental query.
	res, err := snap.Run(context.Background(), testGroup, Query{
		Filter:  Filter{MinTS: ts - 49},
		Aggs:    []Agg{{Kind: Count}},
		Workers: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rows != 50 {
		t.Fatalf("rows = %d, want 50", res.Rows)
	}
}

func TestSnapshotScanOrderedAndStoppable(t *testing.T) {
	s := newServer(t)
	ts := load(t, s, 300)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})
	var keys [][]byte
	err := snap.Scan(context.Background(), testGroup, Filter{}, func(r core.Row) bool {
		keys = append(keys, append([]byte(nil), r.Key...))
		return len(keys) < 100
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(keys) != 100 {
		t.Fatalf("scan returned %d keys, want 100 (early stop)", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
}

func TestMultiTargetMerge(t *testing.T) {
	// Two tablets on one server: Run must scatter across both and merge.
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	s, err := core.NewServer(fs, "ts1", core.Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s.AddTablet(partition.Tablet{ID: "t/a", Table: "t"}, []string{testGroup})
	s.AddTablet(partition.Tablet{ID: "t/b", Table: "t"}, []string{testGroup})
	for i := 0; i < 100; i++ {
		tab := "t/a"
		if i%2 == 1 {
			tab = "t/b"
		}
		if err := s.Write(tab, testGroup, []byte(fmt.Sprintf("k%04d", i)), int64(i+1), []byte("1")); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	snap := NewSnapshot(200, Target{Source: s, Tablet: "t/a"}, Target{Source: s, Tablet: "t/b"})
	res, err := snap.Run(context.Background(), testGroup, Query{Aggs: []Agg{{Kind: Sum, Extract: FloatValue}}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rows != 100 || res.Value(0, Sum) != 100 {
		t.Fatalf("merged rows=%d sum=%g, want 100/100", res.Rows, res.Value(0, Sum))
	}
}

func TestResultMerge(t *testing.T) {
	a := Result{TS: 9, Rows: 3, Groups: []GroupResult{
		{Key: "a", Rows: 2, Aggs: []AggState{{Count: 2, Sum: 10, Min: 4, Max: 6}}},
		{Key: "b", Rows: 1, Aggs: []AggState{{Count: 1, Sum: 7, Min: 7, Max: 7}}},
	}}
	b := Result{TS: 9, Rows: 2, Groups: []GroupResult{
		{Key: "b", Rows: 1, Aggs: []AggState{{Count: 1, Sum: 1, Min: 1, Max: 1}}},
		{Key: "c", Rows: 1, Aggs: []AggState{{Count: 1, Sum: 5, Min: 5, Max: 5}}},
	}}
	a.Merge(b)
	if a.Rows != 5 || len(a.Groups) != 3 {
		t.Fatalf("merged rows=%d groups=%d", a.Rows, len(a.Groups))
	}
	gb, ok := a.Group("b")
	if !ok || gb.Rows != 2 || gb.Aggs[0].Sum != 8 || gb.Aggs[0].Min != 1 || gb.Aggs[0].Max != 7 {
		t.Fatalf("group b merged wrong: %+v", gb)
	}
	if avg := gb.Aggs[0].Value(Avg); avg != 4 {
		t.Fatalf("avg = %g, want 4", avg)
	}
}

// errSource fails its scan; the pipeline must surface the error.
type errSource struct{}

func (errSource) ParallelScan(context.Context, string, string, core.ScanOptions, func([]core.Row) error) error {
	return errors.New("disk on fire")
}

func (errSource) SplitRange(string, string, []byte, []byte, int) ([][]byte, error) {
	return nil, nil
}

func TestScanErrorPropagates(t *testing.T) {
	snap := NewSnapshot(1, Target{Source: errSource{}, Tablet: "x"})
	if _, err := snap.Run(context.Background(), testGroup, Query{Aggs: []Agg{{Kind: Count}}}); err == nil || err.Error() != "disk on fire" {
		t.Fatalf("err = %v, want disk on fire", err)
	}
}

func TestParseAggKind(t *testing.T) {
	for _, k := range []AggKind{Count, Sum, Min, Max, Avg} {
		got, err := ParseAggKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAggKind(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseAggKind("MEDIAN"); err == nil {
		t.Error("ParseAggKind(MEDIAN) succeeded")
	}
}

func TestSerializablePredicateFilters(t *testing.T) {
	s := newServer(t)
	const n = 600
	ts := load(t, s, n)
	snap := NewSnapshot(ts, Target{Source: s, Tablet: testTablet})

	// Key predicate (shared readopt struct): index-level push-down.
	res, err := snap.Run(context.Background(), testGroup, Query{
		Filter:  Filter{Key: readopt.Prefix([]byte("user0001"))},
		Aggs:    []Agg{{Kind: Count}},
		Workers: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rows != 100 {
		t.Fatalf("key-pred rows = %d, want 100", res.Rows)
	}

	// Value predicate: post-fetch, still inside the scan workers.
	res, err = snap.Run(context.Background(), testGroup, Query{
		Filter: Filter{Value: readopt.Contains([]byte("7"))},
		Aggs:   []Agg{{Kind: Count}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(0)
	for i := 0; i < n; i++ {
		if bytes.Contains([]byte(strconv.Itoa(i)), []byte("7")) {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("value-pred rows = %d, want %d", res.Rows, want)
	}

	// Snapshot.Scan honours the same predicates.
	seen := 0
	err = snap.Scan(context.Background(), testGroup, Filter{Key: readopt.Range([]byte("user000100"), []byte("user000200"))}, func(r core.Row) bool {
		seen++
		return true
	})
	if err != nil || seen != 100 {
		t.Fatalf("scan with range pred saw %d rows (%v), want 100", seen, err)
	}
}
