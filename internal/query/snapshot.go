package query

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// Source is the storage surface a snapshot reads. *core.Server
// implements it; tests use fakes.
type Source interface {
	ParallelScan(ctx context.Context, tabletID, group string, opt core.ScanOptions, emit func([]core.Row) error) error
	// SplitRange returns up to n-1 strictly increasing keys partitioning
	// [start, end) into roughly equal-population shards.
	SplitRange(tabletID, group string, start, end []byte, n int) ([][]byte, error)
}

// Target is one tablet (on one server) covered by a snapshot.
type Target struct {
	Source Source
	Tablet string
}

// Snapshot pins a read timestamp over a set of tablets. Every query it
// runs sees exactly the versions committed at or before TS — writes
// that commit after the snapshot was taken are invisible, no matter how
// long the query runs. Snapshots are free: the log keeps every
// committed version, so pinning is just remembering a number.
type Snapshot struct {
	ts      int64
	targets []Target
}

// NewSnapshot pins ts over targets.
func NewSnapshot(ts int64, targets ...Target) *Snapshot {
	return &Snapshot{ts: ts, targets: targets}
}

// TS returns the pinned snapshot timestamp.
func (s *Snapshot) TS() int64 { return s.ts }

// JoinFanoutErrs collapses per-shard errors from a cancel-on-first-
// failure fan-out: sibling shards cancelled after the first real error
// report context.Canceled, which is noise — the caller wants the error
// that triggered the cancellation. Falls back to joining everything if
// only cancellations remain.
func JoinFanoutErrs(errs []error) error {
	var real []error
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) {
			real = append(real, e)
		}
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	return errors.Join(errs...)
}

// Run executes q against column group `group` of every target and
// merges the per-target partials. Targets execute concurrently (the
// scatter half of scatter-gather); within each target the scan itself
// fans out over keyspace shards per q.Workers. Cancelling ctx aborts
// every shard within one batch boundary and returns ctx.Err().
func (s *Snapshot) Run(ctx context.Context, group string, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(s.targets) == 0 {
		return Result{TS: s.ts}, nil
	}
	if len(s.targets) == 1 {
		return s.runTarget(ctx, s.targets[0], group, q)
	}
	// Cancel-on-first-error: a failed target stops its siblings within
	// one batch boundary instead of letting them scan to completion.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partials := make([]Result, len(s.targets))
	errs := make([]error, len(s.targets))
	var wg sync.WaitGroup
	for i, tgt := range s.targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			partials[i], errs[i] = s.runTarget(cctx, tgt, group, q)
			if errs[i] != nil {
				cancel()
			}
		}(i, tgt)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{TS: s.ts}, err
	}
	if err := JoinFanoutErrs(errs); err != nil {
		return Result{TS: s.ts}, err
	}
	res := Result{TS: s.ts}
	for _, p := range partials {
		res.Merge(p)
	}
	return res, nil
}

// runTarget executes q over one tablet: the keyspace is split into
// shards on index leaf boundaries and each shard runs its own operator
// pipeline (scan → filter → aggregate) in parallel, folding rows into
// shard-local partial aggregates that merge at the end. Aggregation
// happening inside the shards — not behind a single consumer — is what
// lets the executor scale with workers instead of serialising on a
// merge point.
func (s *Snapshot) runTarget(ctx context.Context, tgt Target, group string, q Query) (Result, error) {
	workers := q.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	bounds := [][]byte{q.Filter.Start}
	if workers > 1 {
		splits, err := tgt.Source.SplitRange(tgt.Tablet, group, q.Filter.Start, q.Filter.End, workers)
		if err != nil {
			return Result{TS: s.ts}, err
		}
		bounds = append(bounds, splits...)
	}
	bounds = append(bounds, q.Filter.End)

	runShard := func(sctx context.Context, start, end []byte) (Result, error) {
		shardQ := q
		shardQ.Filter.Start, shardQ.Filter.End = start, end
		shardQ.Workers = 1 // the shard IS the unit of parallelism
		var op Operator = newScanOp(sctx, tgt.Source, tgt.Tablet, group, s.ts, shardQ)
		op = newFilterOp(op, q.Filter.Pred)
		return aggregate(op, s.ts, shardQ)
	}
	if len(bounds) == 2 {
		return runShard(ctx, bounds[0], bounds[1])
	}
	// Cancel-on-first-error: shards poll their context per batch, so a
	// failed shard stops the rest almost immediately.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partials := make([]Result, len(bounds)-1)
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i], errs[i] = runShard(cctx, bounds[i], bounds[i+1])
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{TS: s.ts}, err
	}
	if err := JoinFanoutErrs(errs); err != nil {
		return Result{TS: s.ts}, err
	}
	res := Result{TS: s.ts}
	for _, p := range partials {
		res.Merge(p)
	}
	return res, nil
}

// Scan streams the snapshot-visible rows matching f, in key order
// within each target (targets are visited sequentially, in order).
// This is the non-aggregating surface: time-travel reads, exports,
// verification against the OLTP path. fn returning false stops the
// scan; cancelling ctx aborts it within one batch boundary.
func (s *Snapshot) Scan(ctx context.Context, group string, f Filter, fn func(core.Row) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stopped := errors.New("stop")
	for _, tgt := range s.targets {
		// Workers deliberately 1: key order inside the target.
		opt := f.scanOptions(f.Start, f.End, s.ts, 1, 0)
		err := tgt.Source.ParallelScan(ctx, tgt.Tablet, group, opt, func(rows []core.Row) error {
			for _, r := range rows {
				if f.Pred != nil && !f.Pred(r) {
					continue
				}
				if !fn(r) {
					return stopped
				}
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, stopped) {
				return nil
			}
			return err
		}
	}
	return nil
}
