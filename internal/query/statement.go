package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/readopt"
)

// RelFilter is the serializable per-relation select push-down: key
// bounds plus the shared readopt predicate vocabulary. It is the
// statement-form mirror of Filter without the client-side Pred closure
// (statements must cross the wire).
type RelFilter struct {
	// Start and End bound the relation's key range [Start, End); nil =
	// open.
	Start, End []byte
	// Key keeps only rows whose key matches; evaluated on index
	// entries at the tablet server, before any log read.
	Key *readopt.Predicate
	// Value keeps only rows whose value matches; evaluated after the
	// log read, still at the tablet server.
	Value *readopt.Predicate
}

// toFilter widens the push-down set into an executor Filter.
func (f RelFilter) toFilter() Filter {
	return Filter{Start: f.Start, End: f.End, Key: f.Key, Value: f.Value}
}

// Match evaluates the filter client-side (the executor's fallback when
// push-down is disabled, and the re-check after a secondary lookup).
func (f RelFilter) Match(key, value []byte) bool {
	if f.Start != nil && string(key) < string(f.Start) {
		return false
	}
	if f.End != nil && string(key) >= string(f.End) {
		return false
	}
	return f.Key.Match(key) && f.Value.Match(value)
}

// Rel names one relation of a statement: a (table, column group) pair
// plus its select push-down.
type Rel struct {
	Table, Group string
	Filter       RelFilter
}

// On is one equi-join condition: Left, evaluated on rows of LeftTable
// (an earlier relation; "" = the immediately preceding one), must
// equal Right, evaluated on rows of the joined relation. Via names an
// optional registered secondary index on the joined relation whose
// indexed attribute is exactly Right — the planner then fetches join
// partners by index lookup instead of scanning.
type On struct {
	LeftTable string
	Left      Expr
	Right     Expr
	Via       string
}

// Join is one joined relation and its equi-join condition.
type Join struct {
	Rel
	On On
}

// GroupSpec is the statement's GROUP BY: an attribute of one relation,
// optionally truncated to its first Prefix bytes (the legacy
// groupPrefix shape is {Table: base, Expr: KeyExpr(), Prefix: n}).
type GroupSpec struct {
	Table  string
	Expr   Expr
	Prefix int
}

// AggSpec is one aggregate over an attribute of one relation. A zero
// Expr is the COUNT(*) shape: every tuple participates with value 0.
// Non-zero exprs must project decimal ASCII numbers; tuples whose
// projection is missing or non-numeric are skipped (SQL NULL).
type AggSpec struct {
	// Name labels the aggregate in results; defaults to Kind.String().
	Name  string
	Kind  AggKind
	Table string
	Expr  Expr
}

// Statement is the serializable, composable query form: one base
// relation, any number of equi-joined relations, a snapshot timestamp,
// grouping, and aggregates. It compiles to a Query (single relation)
// or a greedy-ordered join plan (see PlanJoins/ExecStatement), and it
// is the ONE query representation shared by the embedded engine, the
// cluster client, and the textproto wire form.
//
// Build statements with NewStatement and the chaining methods; the
// filter-shaping methods (Range, FilterKey, FilterValue) apply to the
// most recently added relation, so push-down composes per relation:
//
//	NewStatement("orders").Group("g").Range(lo, hi).
//	    Join("customers", "g", On{Left: ValField(0), Right: KeyExpr()}).
//	    GroupBy(4).Agg(Count)
type Statement struct {
	Base    Rel
	Joins   []Join
	AtTS    int64
	By      *GroupSpec
	Aggs    []AggSpec
	Workers int
}

// NewStatement starts a statement over table (set the column group
// with Group).
func NewStatement(table string) *Statement {
	return &Statement{Base: Rel{Table: table}}
}

// lastRel returns the relation most recently added to the statement.
func (s *Statement) lastRel() *Rel {
	if len(s.Joins) > 0 {
		return &s.Joins[len(s.Joins)-1].Rel
	}
	return &s.Base
}

// Group sets the column group of the most recently added relation.
func (s *Statement) Group(g string) *Statement {
	s.lastRel().Group = g
	return s
}

// Range bounds the most recently added relation to keys in [start,
// end); nil bounds are open.
func (s *Statement) Range(start, end []byte) *Statement {
	r := s.lastRel()
	r.Filter.Start, r.Filter.End = start, end
	return s
}

// FilterKey adds a key predicate to the most recently added relation.
func (s *Statement) FilterKey(p *readopt.Predicate) *Statement {
	s.lastRel().Filter.Key = p
	return s
}

// FilterValue adds a value predicate to the most recently added
// relation.
func (s *Statement) FilterValue(p *readopt.Predicate) *Statement {
	s.lastRel().Filter.Value = p
	return s
}

// At pins the statement at snapshot timestamp ts (0 = latest at
// execution time).
func (s *Statement) At(ts int64) *Statement {
	s.AtTS = ts
	return s
}

// Join adds an equi-joined relation. on.LeftTable defaults to the
// relation added immediately before this one.
func (s *Statement) Join(table, group string, on On) *Statement {
	if on.LeftTable == "" {
		on.LeftTable = s.lastRel().Table
	}
	s.Joins = append(s.Joins, Join{Rel: Rel{Table: table, Group: group}, On: on})
	return s
}

// GroupBy groups by the first n bytes of the base relation's key (the
// legacy groupPrefix shape); n <= 0 groups by the whole key.
func (s *Statement) GroupBy(n int) *Statement {
	s.By = &GroupSpec{Table: s.Base.Table, Expr: KeyExpr(), Prefix: n}
	return s
}

// GroupByExpr groups by an attribute of the named relation, truncated
// to prefix bytes when prefix > 0.
func (s *Statement) GroupByExpr(table string, e Expr, prefix int) *Statement {
	s.By = &GroupSpec{Table: table, Expr: e, Prefix: prefix}
	return s
}

// Agg appends a COUNT(*)-shaped aggregate over the whole statement.
func (s *Statement) Agg(kind AggKind) *Statement {
	s.Aggs = append(s.Aggs, AggSpec{Kind: kind, Table: s.Base.Table})
	return s
}

// AggOf appends an aggregate over an attribute of the named relation.
func (s *Statement) AggOf(kind AggKind, table string, e Expr) *Statement {
	s.Aggs = append(s.Aggs, AggSpec{Kind: kind, Table: table, Expr: e})
	return s
}

// Rels returns the statement's relations in declaration order: the
// base at index 0, then one per join.
func (s *Statement) Rels() []Rel {
	out := make([]Rel, 0, 1+len(s.Joins))
	out = append(out, s.Base)
	for _, j := range s.Joins {
		out = append(out, j.Rel)
	}
	return out
}

// RelIndex resolves a table name to its relation index (-1 if the
// statement does not mention it).
func (s *Statement) RelIndex(table string) int {
	if table == s.Base.Table {
		return 0
	}
	for i, j := range s.Joins {
		if j.Table == table {
			return i + 1
		}
	}
	return -1
}

// Validate checks the statement is well-formed: named groups, distinct
// tables, every join's left side declared earlier, and grouping /
// aggregate tables resolved.
func (s *Statement) Validate() error {
	if s.Base.Table == "" {
		return fmt.Errorf("query: statement has no base table")
	}
	seen := map[string]bool{}
	for i, r := range s.Rels() {
		if r.Group == "" {
			return fmt.Errorf("query: relation %s has no column group", r.Table)
		}
		if seen[r.Table] {
			return fmt.Errorf("query: table %s appears twice (self-joins are not supported)", r.Table)
		}
		seen[r.Table] = true
		if i == 0 {
			continue
		}
		j := s.Joins[i-1]
		left := s.RelIndex(j.On.LeftTable)
		if left < 0 || left >= i {
			return fmt.Errorf("query: join on %s references %q, which is not an earlier relation", j.Table, j.On.LeftTable)
		}
		if j.On.Left.IsZero() || j.On.Right.IsZero() {
			return fmt.Errorf("query: join on %s needs both sides of the equi-condition", j.Table)
		}
	}
	if s.By != nil {
		if s.RelIndex(s.By.Table) < 0 {
			return fmt.Errorf("query: GROUP BY references unknown table %q", s.By.Table)
		}
		if s.By.Expr.IsZero() {
			return fmt.Errorf("query: GROUP BY needs an expr")
		}
	}
	for _, a := range s.Aggs {
		if s.RelIndex(a.Table) < 0 {
			return fmt.Errorf("query: aggregate %s references unknown table %q", a.Kind, a.Table)
		}
	}
	return nil
}

// CompileSingle compiles a join-free statement into the scatter-gather
// Query form (the path that fans out over tablet shards). Statements
// with joins execute through ExecStatement instead.
func (s *Statement) CompileSingle() (Query, error) {
	if err := s.Validate(); err != nil {
		return Query{}, err
	}
	if len(s.Joins) > 0 {
		return Query{}, fmt.Errorf("query: CompileSingle on a statement with %d joins", len(s.Joins))
	}
	q := Query{Filter: s.Base.Filter.toFilter(), Workers: s.Workers}
	if s.By != nil {
		by := *s.By
		q.GroupBy = func(r core.Row) string {
			v, ok := by.Expr.Eval(r)
			if !ok {
				return ""
			}
			if by.Prefix > 0 && len(v) > by.Prefix {
				v = v[:by.Prefix]
			}
			return string(v)
		}
	}
	for _, a := range s.Aggs {
		agg := Agg{Name: a.Name, Kind: a.Kind}
		if !a.Expr.IsZero() {
			expr := a.Expr
			agg.Extract = func(r core.Row) (float64, bool) {
				v, ok := expr.Eval(r)
				if !ok {
					return 0, false
				}
				f, err := strconv.ParseFloat(string(v), 64)
				return f, err == nil
			}
		}
		q.Aggs = append(q.Aggs, agg)
	}
	return q, nil
}

// Wire form: a statement serialises to space-separated tokens with the
// same %-escaping as readopt operands, e.g.
//
//	orders g FROM o100 TO o200 FILTER VAL CONTAINS west
//	  JOIN customers g ON orders VAL[0] KEY
//	  JOIN items g ON orders VAL[1] KEY VIA sku
//	  AT 1234 BY orders KEY 4 AGG COUNT orders * AGG SUM items VAL[2]
//
// (shown wrapped; the wire form is one line). The textproto QUERY
// command speaks exactly this grammar after its legacy positional
// prefix.

// EncodeTokens renders the statement in its wire form.
func (s *Statement) EncodeTokens() []string {
	var out []string
	encodeRel := func(r Rel) {
		out = append(out, r.Table, r.Group)
		if r.Filter.Start != nil {
			out = append(out, "FROM", readopt.EscapeOperand(r.Filter.Start))
		}
		if r.Filter.End != nil {
			out = append(out, "TO", readopt.EscapeOperand(r.Filter.End))
		}
		if r.Filter.Key != nil {
			out = append(out, "FILTER", "KEY")
			out = append(out, strings.Fields(r.Filter.Key.EncodeWire())...)
		}
		if r.Filter.Value != nil {
			out = append(out, "FILTER", "VAL")
			out = append(out, strings.Fields(r.Filter.Value.EncodeWire())...)
		}
	}
	encodeRel(s.Base)
	for _, j := range s.Joins {
		out = append(out, "JOIN")
		out = append(out, j.Table, j.Group)
		out = append(out, "ON", j.On.LeftTable, j.On.Left.EncodeWire(), j.On.Right.EncodeWire())
		if j.On.Via != "" {
			out = append(out, "VIA", j.On.Via)
		}
		rel := j.Rel
		rel.Table, rel.Group = "", "" // already emitted
		if rel.Filter.Start != nil {
			out = append(out, "FROM", readopt.EscapeOperand(rel.Filter.Start))
		}
		if rel.Filter.End != nil {
			out = append(out, "TO", readopt.EscapeOperand(rel.Filter.End))
		}
		if rel.Filter.Key != nil {
			out = append(out, "FILTER", "KEY")
			out = append(out, strings.Fields(rel.Filter.Key.EncodeWire())...)
		}
		if rel.Filter.Value != nil {
			out = append(out, "FILTER", "VAL")
			out = append(out, strings.Fields(rel.Filter.Value.EncodeWire())...)
		}
	}
	if s.AtTS != 0 {
		out = append(out, "AT", strconv.FormatInt(s.AtTS, 10))
	}
	if s.By != nil {
		out = append(out, "BY", s.By.Table, s.By.Expr.EncodeWire(), strconv.Itoa(s.By.Prefix))
	}
	for _, a := range s.Aggs {
		expr := "*"
		if !a.Expr.IsZero() {
			expr = a.Expr.EncodeWire()
		}
		out = append(out, "AGG", a.Kind.String(), a.Table, expr)
	}
	return out
}

// ParseStatementTokens parses the wire form produced by EncodeTokens.
func ParseStatementTokens(tokens []string) (*Statement, error) {
	if len(tokens) < 2 {
		return nil, fmt.Errorf("query: statement needs <table> <group>")
	}
	s := NewStatement(tokens[0]).Group(tokens[1])
	tokens = tokens[2:]

	parseFilter := func(f *RelFilter, tokens []string) ([]string, error) {
		for len(tokens) > 0 {
			switch strings.ToUpper(tokens[0]) {
			case "FROM":
				if len(tokens) < 2 {
					return nil, fmt.Errorf("query: FROM needs a key")
				}
				k, err := readopt.UnescapeOperand(tokens[1])
				if err != nil {
					return nil, err
				}
				f.Start, tokens = k, tokens[2:]
			case "TO":
				if len(tokens) < 2 {
					return nil, fmt.Errorf("query: TO needs a key")
				}
				k, err := readopt.UnescapeOperand(tokens[1])
				if err != nil {
					return nil, err
				}
				f.End, tokens = k, tokens[2:]
			case "FILTER":
				if len(tokens) < 2 {
					return nil, fmt.Errorf("query: FILTER needs KEY or VAL")
				}
				target := strings.ToUpper(tokens[1])
				p, rest, err := readopt.ParsePredicate(tokens[2:])
				if err != nil {
					return nil, err
				}
				switch target {
				case "KEY":
					f.Key = p
				case "VAL":
					f.Value = p
				default:
					return nil, fmt.Errorf("query: FILTER target %q (want KEY or VAL)", tokens[1])
				}
				tokens = rest
			default:
				return tokens, nil
			}
		}
		return tokens, nil
	}

	var err error
	if tokens, err = parseFilter(&s.Base.Filter, tokens); err != nil {
		return nil, err
	}
	for len(tokens) > 0 {
		switch strings.ToUpper(tokens[0]) {
		case "JOIN":
			if len(tokens) < 7 || !strings.EqualFold(tokens[3], "ON") {
				return nil, fmt.Errorf("query: JOIN wants <table> <group> ON <ltable> <lexpr> <rexpr>")
			}
			left, err := ParseExpr(tokens[5])
			if err != nil {
				return nil, err
			}
			right, err := ParseExpr(tokens[6])
			if err != nil {
				return nil, err
			}
			on := On{LeftTable: tokens[4], Left: left, Right: right}
			rest := tokens[7:]
			if len(rest) >= 2 && strings.EqualFold(rest[0], "VIA") {
				on.Via, rest = rest[1], rest[2:]
			}
			s.Join(tokens[1], tokens[2], on)
			if rest, err = parseFilter(&s.Joins[len(s.Joins)-1].Rel.Filter, rest); err != nil {
				return nil, err
			}
			tokens = rest
		case "AT":
			if len(tokens) < 2 {
				return nil, fmt.Errorf("query: AT needs a timestamp")
			}
			ts, err := strconv.ParseInt(tokens[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad AT timestamp %q", tokens[1])
			}
			s.AtTS, tokens = ts, tokens[2:]
		case "BY":
			if len(tokens) < 4 {
				return nil, fmt.Errorf("query: BY wants <table> <expr> <prefix>")
			}
			e, err := ParseExpr(tokens[2])
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(tokens[3])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("query: bad BY prefix %q", tokens[3])
			}
			s.By = &GroupSpec{Table: tokens[1], Expr: e, Prefix: n}
			tokens = tokens[4:]
		case "AGG":
			if len(tokens) < 4 {
				return nil, fmt.Errorf("query: AGG wants <kind> <table> <expr|*>")
			}
			kind, err := ParseAggKind(strings.ToUpper(tokens[1]))
			if err != nil {
				return nil, err
			}
			a := AggSpec{Kind: kind, Table: tokens[2]}
			if tokens[3] != "*" {
				if a.Expr, err = ParseExpr(tokens[3]); err != nil {
					return nil, err
				}
			}
			s.Aggs = append(s.Aggs, a)
			tokens = tokens[4:]
		default:
			return nil, fmt.Errorf("query: unexpected token %q", tokens[0])
		}
	}
	return s, s.Validate()
}
