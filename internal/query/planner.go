package query

import (
	"fmt"
	"strings"
)

// Greedy statistics-free join ordering. Cost-based optimizers need
// cardinality statistics the log-only store does not keep; the greedy
// heuristic instead orders relations by what the statement itself
// reveals — push-down selectivity (bounded ranges, key/value
// predicates) and bound-attribute count (how many join conditions
// connect a candidate to the relations already placed). The
// janus-datalog exemplar measures this family of planners at ~1000x
// faster planning with ~13% better plans than cost-based search for
// pattern queries, which is the workload shape here: short equi-join
// chains over selectively filtered relations.

// Strategy names how one plan step fetches its relation.
type Strategy int

const (
	// StrategyScan fetches the relation by scanning its own filter
	// (always the first step; later steps when nothing better applies
	// fall to StrategyHash).
	StrategyScan Strategy = iota
	// StrategyBroadcast ships the already-bound side's distinct join
	// values to the relation's tablet servers as a readopt set
	// predicate — the small side's matched keys (or values) broadcast
	// into the clustered scan fast path.
	StrategyBroadcast
	// StrategySecondary fetches join partners by registered secondary
	// index lookups (the join's Via).
	StrategySecondary
	// StrategyHash scans the relation with its own filter and probes a
	// hash table built over the bound side.
	StrategyHash
)

// String names the strategy (scan, broadcast, secondary, hash).
func (s Strategy) String() string {
	switch s {
	case StrategyScan:
		return "scan"
	case StrategyBroadcast:
		return "broadcast"
	case StrategySecondary:
		return "secondary"
	case StrategyHash:
		return "hash"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// PlanStep is one relation in execution order: which statement
// relation it fetches, which join conditions become checkable once it
// is bound, and how it is fetched. Broadcast is the join index whose
// equi-attribute is shipped as the set push-down (-1 = none).
type PlanStep struct {
	Rel       int
	Conds     []int
	Strategy  Strategy
	Broadcast int
}

// Plan is a greedy-ordered execution plan over a statement's
// relations.
type Plan struct {
	Steps []PlanStep
}

// Order returns the relation indices in execution order.
func (p Plan) Order() []int {
	out := make([]int, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.Rel
	}
	return out
}

// Describe renders the plan for explain output and tests, e.g.
// "orders(scan) -> customers(broadcast j0) -> items(hash j1)".
func (p Plan) Describe(s *Statement) string {
	rels := s.Rels()
	var sb strings.Builder
	for i, st := range p.Steps {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(rels[st.Rel].Table)
		sb.WriteByte('(')
		sb.WriteString(st.Strategy.String())
		if st.Broadcast >= 0 {
			fmt.Fprintf(&sb, " j%d", st.Broadcast)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// filterScore is the push-down selectivity proxy: lower = the
// statement's own filters restrict the relation more, so fewer rows
// leave the tablet servers. No statistics — just what the filters
// declare.
func filterScore(f RelFilter) int {
	s := 4
	if f.Start != nil {
		s--
	}
	if f.End != nil {
		s--
	}
	if f.Key != nil {
		s -= 2
	}
	if f.Value != nil {
		s--
	}
	return s
}

// condRels returns the two relation indices a join condition connects:
// the earlier relation its Left expr reads, and the joined relation
// itself.
func condRels(s *Statement, j int) (left, right int) {
	return s.RelIndex(s.Joins[j].On.LeftTable), j + 1
}

// condExprFor returns the side of condition j evaluated on relation
// rel (ok=false if the condition does not touch rel).
func condExprFor(s *Statement, j, rel int) (Expr, bool) {
	left, right := condRels(s, j)
	switch rel {
	case left:
		return s.Joins[j].On.Left, true
	case right:
		return s.Joins[j].On.Right, true
	}
	return Expr{}, false
}

// stepFor decides the fetch strategy for relation rel given the
// conditions that become checkable when it binds. Preference order:
// broadcast (the bound side's values push down as a set predicate, on
// the key when rel's side is the whole key — the clustered-scan fast
// path — or on the value), then a Via secondary-index lookup, then a
// plain hash probe.
func stepFor(s *Statement, rel int, conds []int) PlanStep {
	st := PlanStep{Rel: rel, Conds: conds, Strategy: StrategyHash, Broadcast: -1}
	if len(conds) == 0 {
		st.Strategy = StrategyScan
		return st
	}
	// Whole-key broadcast beats whole-value broadcast: it is evaluated
	// on index entries, before any log read.
	for _, j := range conds {
		if e, ok := condExprFor(s, j, rel); ok && e.WholeKey() {
			st.Strategy, st.Broadcast = StrategyBroadcast, j
			return st
		}
	}
	for _, j := range conds {
		if e, ok := condExprFor(s, j, rel); ok && e.WholeValue() {
			st.Strategy, st.Broadcast = StrategyBroadcast, j
			return st
		}
	}
	for _, j := range conds {
		if rel == j+1 && s.Joins[j].On.Via != "" {
			st.Strategy = StrategySecondary
			return st
		}
	}
	return st
}

// PlanJoins orders the statement's relations greedily: start at the
// most-filtered relation, then repeatedly take the connected candidate
// with the most bound join conditions, breaking ties toward
// broadcastable fetches, then toward the better filterScore, then
// toward declaration order. Disconnected statements (a relation no
// condition ties to the bound set) are rejected — cross products are
// never planned implicitly.
func PlanJoins(s *Statement) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	rels := s.Rels()
	n := len(rels)

	// Start relation: best filterScore, ties to declaration order.
	start := 0
	for i := 1; i < n; i++ {
		if filterScore(rels[i].Filter) < filterScore(rels[start].Filter) {
			start = i
		}
	}

	bound := make([]bool, n)
	bound[start] = true
	plan := Plan{Steps: []PlanStep{{Rel: start, Strategy: StrategyScan, Broadcast: -1}}}
	for placed := 1; placed < n; placed++ {
		best, bestStep := -1, PlanStep{}
		for cand := 0; cand < n; cand++ {
			if bound[cand] {
				continue
			}
			var conds []int
			for j := range s.Joins {
				left, right := condRels(s, j)
				if (cand == left && bound[right]) || (cand == right && bound[left]) {
					conds = append(conds, j)
				}
			}
			if len(conds) == 0 {
				continue
			}
			step := stepFor(s, cand, conds)
			if best < 0 || betterStep(s, rels, step, bestStep) {
				best, bestStep = cand, step
			}
		}
		if best < 0 {
			return Plan{}, fmt.Errorf("query: statement is disconnected — no join condition ties a remaining relation to the bound set (cross joins are not supported)")
		}
		bound[best] = true
		plan.Steps = append(plan.Steps, bestStep)
	}
	return plan, nil
}

// betterStep is the greedy comparison: more bound conditions first,
// then broadcastable over not, then filterScore, then declaration
// order.
func betterStep(s *Statement, rels []Rel, a, b PlanStep) bool {
	if len(a.Conds) != len(b.Conds) {
		return len(a.Conds) > len(b.Conds)
	}
	ab := a.Strategy == StrategyBroadcast
	bb := b.Strategy == StrategyBroadcast
	if ab != bb {
		return ab
	}
	fa, fb := filterScore(rels[a.Rel].Filter), filterScore(rels[b.Rel].Filter)
	if fa != fb {
		return fa < fb
	}
	return a.Rel < b.Rel
}

// PlanOrdered builds the plan for a caller-forced execution order (the
// naive/benchmark path and plan pinning). Unlike PlanJoins it accepts
// disconnected prefixes: a step with no checkable condition becomes a
// cross product, exactly what a worst-order nested-loop plan does.
func PlanOrdered(s *Statement, order []int) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	n := len(s.Rels())
	if len(order) != n {
		return Plan{}, fmt.Errorf("query: order names %d relations, statement has %d", len(order), n)
	}
	bound := make([]bool, n)
	var plan Plan
	for i, rel := range order {
		if rel < 0 || rel >= n || bound[rel] {
			return Plan{}, fmt.Errorf("query: bad relation %d in forced order", rel)
		}
		var conds []int
		for j := range s.Joins {
			left, right := condRels(s, j)
			if (rel == left && bound[right]) || (rel == right && bound[left]) {
				conds = append(conds, j)
			}
		}
		step := stepFor(s, rel, conds)
		if i == 0 {
			step = PlanStep{Rel: rel, Strategy: StrategyScan, Broadcast: -1}
		}
		bound[rel] = true
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}
