package wal

import (
	"fmt"
	"io"
	"sort"
)

// Batch-read tuning: frames closer than readBatchGap are coalesced into
// one DFS read, and a coalesced run is capped at readBatchMaxRun so a
// dense batch never materialises a whole segment at once.
const (
	readBatchGap    = 64 << 10
	readBatchMaxRun = 4 << 20
)

// ReadBatch fetches the records at ptrs, returning them in input order.
// Pointers are grouped by segment and visited in offset order; runs of
// nearby frames are coalesced into single large reads, so a batch costs
// a few sequential sweeps instead of one random access per record. This
// is the amortisation behind the analytical scan path (paper §3.6.4:
// post-compaction scans read clustered data sequentially; ReadBatch
// recovers most of that locality even on uncompacted logs whenever the
// requested rows were appended near each other).
func (l *Log) ReadBatch(ptrs []Ptr) ([]Record, error) {
	out := make([]Record, len(ptrs))
	if len(ptrs) == 0 {
		return out, nil
	}
	// Pin every segment the batch touches for the duration of the call:
	// a compaction installing concurrently may doom these segments, and
	// the pins keep the files on disk until the reads finish.
	pinned := make([]uint32, 0, 4)
	for _, p := range ptrs {
		if len(pinned) == 0 || pinned[len(pinned)-1] != p.Seg {
			pinned = append(pinned, p.Seg)
		}
	}
	l.Pin(pinned...)
	defer l.Unpin(pinned...)
	// Index-ordered scans hand us pointers already in log order (keys
	// were appended in key order); detect that and skip the sort.
	sorted := true
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i].Seg < ptrs[i-1].Seg ||
			(ptrs[i].Seg == ptrs[i-1].Seg && ptrs[i].Off < ptrs[i-1].Off) {
			sorted = false
			break
		}
	}
	order := make([]int, len(ptrs))
	for i := range order {
		order[i] = i
	}
	if !sorted {
		sort.Slice(order, func(a, b int) bool {
			pa, pb := ptrs[order[a]], ptrs[order[b]]
			if pa.Seg != pb.Seg {
				return pa.Seg < pb.Seg
			}
			return pa.Off < pb.Off
		})
	}
	// One grow-only scratch buffer serves every coalesced run: Decode
	// copies key and value out of it, so reuse is safe and the batch
	// allocates O(max run) instead of O(total bytes).
	var scratch []byte
	for i := 0; i < len(order); {
		seg := ptrs[order[i]].Seg
		r, err := l.reader(seg)
		if err != nil {
			return nil, err
		}
		// Extend the run while frames stay in this segment, near-adjacent,
		// and under the run size cap.
		start := ptrs[order[i]].Off
		end := start + int64(ptrs[order[i]].Len)
		j := i + 1
		for j < len(order) {
			p := ptrs[order[j]]
			if p.Seg != seg || p.Off > end+readBatchGap {
				break
			}
			e := p.Off + int64(p.Len)
			if e-start > readBatchMaxRun {
				break
			}
			if e > end {
				end = e
			}
			j++
		}
		if int64(cap(scratch)) < end-start {
			scratch = make([]byte, end-start)
		}
		buf := scratch[:end-start]
		if _, err := r.ReadAt(buf, start); err != nil && err != io.EOF {
			return nil, fmt.Errorf("wal: batch read seg %d: %w", seg, err)
		}
		for k := i; k < j; k++ {
			p := ptrs[order[k]]
			rec, _, derr := Decode(buf[p.Off-start : p.Off-start+int64(p.Len)])
			if derr != nil {
				return nil, fmt.Errorf("wal: decode %v: %w", p, derr)
			}
			out[order[k]] = rec
		}
		i = j
	}
	return out, nil
}
