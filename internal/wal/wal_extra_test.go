package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestScannerRecordLargerThanChunk(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 4 << 20})
	big := bytes.Repeat([]byte("B"), scanChunkSize+1000) // exceeds read-ahead
	if _, err := l.Append(
		&Record{Kind: KindWrite, Key: []byte("small1"), Value: []byte("v")},
		&Record{Kind: KindWrite, Key: []byte("big"), Value: big},
		&Record{Kind: KindWrite, Key: []byte("small2"), Value: []byte("v")},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s := l.NewScanner(Position{})
	var keys []string
	for s.Next() {
		rec := s.Record()
		keys = append(keys, string(rec.Key))
		if string(rec.Key) == "big" && !bytes.Equal(rec.Value, big) {
			t.Error("oversized record corrupted by chunked scan")
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(keys) != 3 || keys[1] != "big" {
		t.Errorf("keys = %v", keys)
	}
}

func TestScannerManySmallSegments(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 200})
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := l.Append(&Record{Kind: KindWrite, Key: []byte(fmt.Sprintf("%03d", i)), Value: make([]byte, 40)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if segs := len(l.Segments()); segs < 20 {
		t.Fatalf("only %d segments", segs)
	}
	s := l.NewScanner(Position{})
	count := 0
	for s.Next() {
		count++
	}
	if s.Err() != nil || count != n {
		t.Errorf("count=%d err=%v", count, s.Err())
	}
}

func TestBatcherFullBatchReleasesEarly(t *testing.T) {
	l, _ := newTestLog(t, Options{})
	// Huge delay: only the batch-full signal can finish the test fast.
	b := NewBatcher(l, 4, 5*time.Second)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Append(&Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: []byte("v")}); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("full batch did not release the leader early (%v)", elapsed)
	}
}

func TestBatcherStressWithRotation(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 2048})
	b := NewBatcher(l, 16, time.Millisecond)
	var wg sync.WaitGroup
	const writers, per = 12, 40
	ptrs := make(chan Ptr, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ps, err := b.Append(&Record{Kind: KindWrite, Key: []byte(fmt.Sprintf("w%02d-%03d", w, i)), Value: make([]byte, 64)})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				ptrs <- ps[0]
			}
		}(w)
	}
	wg.Wait()
	close(ptrs)
	seen := map[Ptr]bool{}
	for p := range ptrs {
		if seen[p] {
			t.Fatalf("duplicate ptr %v", p)
		}
		seen[p] = true
		if _, err := l.Read(p); err != nil {
			t.Fatalf("Read(%v): %v", p, err)
		}
	}
	if len(seen) != writers*per {
		t.Errorf("%d records, want %d", len(seen), writers*per)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindWrite: "write", KindDelete: "delete",
		KindCommit: "commit", KindCheckpoint: "checkpoint",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestPositionLessAndPtrString(t *testing.T) {
	a := Position{Seg: 1, Off: 100}
	b := Position{Seg: 1, Off: 200}
	c := Position{Seg: 2, Off: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("Position.Less ordering broken")
	}
	p := Ptr{Seg: 3, Off: 42, Len: 7}
	if p.String() != "seg3@42+7" {
		t.Errorf("Ptr.String = %q", p.String())
	}
	if p.Zero() || (Ptr{}).Zero() == false {
		t.Error("Ptr.Zero broken")
	}
}

func TestAppendCoalescesIntoOneDFSWrite(t *testing.T) {
	l, fs := newTestLog(t, Options{})
	_ = fs
	recs := make([]*Record, 50)
	for i := range recs {
		recs[i] = &Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: make([]byte, 100)}
	}
	// Count datanode write ops before/after: one batch append must not
	// issue one DFS write per record.
	before := fs.DataNode(0).Disk().Stats().WriteOps
	if _, err := l.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	after := fs.DataNode(0).Disk().Stats().WriteOps
	if ops := after - before; ops > 10 {
		t.Errorf("batch append issued %d write ops on one datanode; coalescing broken", ops)
	}
}
