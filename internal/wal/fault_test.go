package wal

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dfs"
	"repro/internal/fault"
)

func newFaultLog(t *testing.T, seed int64) (*Log, *dfs.DFS, *fault.Registry, string) {
	t.Helper()
	dir := t.TempDir()
	reg := fault.New(seed)
	fs, err := dfs.New(dir, dfs.Config{NumDataNodes: 3, BlockSize: 4096, Faults: reg})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	l, err := Open(fs, "wal", Options{SegmentSize: 1 << 20, Faults: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, fs, reg, dir
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		r := &Record{Kind: KindWrite, Table: "t", Tablet: "t/0", Group: "cg",
			Key: []byte(fmt.Sprintf("k%04d", i)), TS: int64(i), Value: []byte("v")}
		if _, err := l.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func scanAll(l *Log) (keys []string, err error) {
	s := l.NewScanner(Position{})
	for s.Next() {
		keys = append(keys, string(s.Record().Key))
	}
	return keys, s.Err()
}

// A torn append that "crashes" the process leaves partial bytes on
// disk; reopening the log must truncate the torn frame and keep every
// acknowledged record — the classic torn-tail contract.
func TestWALTornTailCrashTruncatesOnReopen(t *testing.T) {
	l, fs, reg, _ := newFaultLog(t, 1)
	appendN(t, l, 0, 10)

	reg.Arm("wal.append", fault.Policy{Times: 1, Partial: 0.5, Crash: true})
	_, err := l.Append(&Record{Kind: KindWrite, Table: "t", Tablet: "t/0", Group: "cg",
		Key: []byte("torn"), TS: 99, Value: []byte("v")})
	if !fault.Crashed(err) {
		t.Fatalf("torn crash append err = %v, want crash", err)
	}
	path := l.SegmentPath(1)
	pre, _ := fs.Size(path)

	// "Crash": abandon l, reopen from disk.
	l2, err := Open(fs, "wal", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if post, _ := fs.Size(path); post >= pre {
		t.Fatalf("torn tail not truncated: size %d -> %d", pre, post)
	}
	keys, err := scanAll(l2)
	if err != nil {
		t.Fatalf("scan after reopen: %v", err)
	}
	if len(keys) != 10 || keys[0] != "k0000" || keys[9] != "k0009" {
		t.Fatalf("acknowledged records damaged: %v", keys)
	}

	// A second crash-free cycle: append into a fresh segment, reopen
	// again — the once-torn segment is now sealed and must stay clean.
	l2.SetNextLSN(1000)
	appendN(t, l2, 100, 3)
	l3, err := Open(fs, "wal", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	keys, err = scanAll(l3)
	if err != nil {
		t.Fatalf("scan after second reopen: %v", err)
	}
	if len(keys) != 13 {
		t.Fatalf("got %d records after second cycle, want 13 (%v)", len(keys), keys)
	}
}

// A torn append on a live (non-crashing) process is repaired in place:
// the error surfaces to the writer, the segment is truncated back to
// the last durable boundary, and the log keeps serving appends with no
// garbage between records.
func TestWALTornAppendRepairedInPlace(t *testing.T) {
	l, _, reg, _ := newFaultLog(t, 1)
	appendN(t, l, 0, 5)

	reg.Arm("wal.append", fault.Policy{Times: 1, Partial: 0.3})
	_, err := l.Append(&Record{Kind: KindWrite, Table: "t", Tablet: "t/0", Group: "cg",
		Key: []byte("torn"), TS: 99, Value: []byte("v")})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append err = %v, want injected", err)
	}
	appendN(t, l, 5, 5)
	keys, serr := scanAll(l)
	if serr != nil {
		t.Fatalf("scan after in-place repair: %v", serr)
	}
	want := []string{"k0000", "k0001", "k0002", "k0003", "k0004", "k0005", "k0006", "k0007", "k0008", "k0009"}
	if len(keys) != len(want) {
		t.Fatalf("keys after repair = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

// An fsync-lost suffix (whole batch dropped, nothing on disk) must
// likewise leave the log serving cleanly.
func TestWALLostSuffixAppend(t *testing.T) {
	l, _, reg, _ := newFaultLog(t, 1)
	appendN(t, l, 0, 3)
	reg.Arm("wal.append", fault.Policy{Times: 1, Err: errors.New("fsync lost")})
	if _, err := l.Append(&Record{Kind: KindWrite, Table: "t", Tablet: "t/0", Group: "cg",
		Key: []byte("lost"), TS: 9, Value: []byte("v")}); err == nil {
		t.Fatal("lost-suffix append succeeded")
	}
	appendN(t, l, 3, 3)
	keys, err := scanAll(l)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(keys) != 6 {
		t.Fatalf("got %d records, want 6: %v", len(keys), keys)
	}
}

// Interior corruption — a flipped bit inside a durable record — must
// fail the scan loudly with the exact segment and offset, not silently
// truncate the suffix. This is the mid-file half of the torn-vs-corrupt
// distinction.
func TestWALInteriorCorruptionFailsLoudly(t *testing.T) {
	l, fs, _, _ := newFaultLog(t, 1)
	appendN(t, l, 0, 20)

	// Flip one payload byte of an early record on every replica.
	path := l.SegmentPath(1)
	blocks, err := fs.Blocks(path)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	const corruptOff = segHeaderSize + 40 // inside the first record's payload
	for _, nid := range blocks[0].Replicas {
		if err := fs.CorruptBlockReplica(path, 0, nid, corruptOff); err != nil {
			t.Fatalf("CorruptBlockReplica dn%d: %v", nid, err)
		}
	}

	_, serr := scanAll(l)
	if serr == nil {
		t.Fatal("scan over interior corruption reported no error")
	}
	var ce *CorruptionError
	if !errors.As(serr, &ce) {
		t.Fatalf("scan err = %v (%T), want *CorruptionError", serr, serr)
	}
	if !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("scan err = %v, want ErrCorrupt underneath", serr)
	}
	if ce.Segment != 1 {
		t.Fatalf("CorruptionError.Segment = %d, want 1", ce.Segment)
	}
	if ce.Off < segHeaderSize || ce.Off > corruptOff {
		t.Fatalf("CorruptionError.Off = %d, want in [%d,%d]", ce.Off, segHeaderSize, corruptOff)
	}

	// Reopening must also refuse: the damage is in the last segment,
	// before the tail, so open-time tail repair cannot explain it away.
	if _, err := Open(fs, "wal", Options{}); err == nil {
		t.Fatal("Open over interior corruption succeeded")
	}
}

// A write-path bit flip (FlipBit on wal.append) is acknowledged but
// lands corrupt on all replicas — the scan must detect it by CRC.
func TestWALWriteBitFlipDetectedByScan(t *testing.T) {
	l, _, reg, _ := newFaultLog(t, 7)
	appendN(t, l, 0, 5)
	reg.Arm("wal.append", fault.Policy{Times: 1, FlipBit: true})
	appendN(t, l, 5, 1) // silently corrupted in flight
	reg.Disarm("wal.append")
	appendN(t, l, 6, 4)

	_, serr := scanAll(l)
	var ce *CorruptionError
	if !errors.As(serr, &ce) || !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("scan err = %v, want CorruptionError/ErrCorrupt", serr)
	}
}

// Replica-targeted read faults: a bit flip on one datanode's read path
// corrupts that copy's returned bytes only; reads routed to the other
// replicas still see clean data.
func TestWALReadFaultSingleReplica(t *testing.T) {
	l, fs, reg, _ := newFaultLog(t, 3)
	appendN(t, l, 0, 10)
	path := l.SegmentPath(1)
	blocks, err := fs.Blocks(path)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	bad := blocks[0].Replicas[0]
	reg.Arm(fmt.Sprintf("dfs.dn%d.read", bad), fault.Policy{Err: errors.New("io error")})

	// The DFS falls back to the healthy replicas transparently.
	keys, serr := scanAll(l)
	if serr != nil {
		t.Fatalf("scan with one failing replica: %v", serr)
	}
	if len(keys) != 10 {
		t.Fatalf("got %d records, want 10", len(keys))
	}
	if reg.Injected() == 0 {
		t.Fatal("replica read fault never fired")
	}
}
