// Package wal implements LogBase's log repository (paper §3.4): the
// write-ahead log that doubles as the system's only data store.
//
// The log is an infinite sequential repository made of contiguous
// segments, each an append-only file in the DFS. A log record is a
// <LogKey, Data> pair: LogKey carries the log sequence number (LSN),
// table name and tablet; Data carries the RowKey (primary key + column
// group + write timestamp) and the value. Delete operations persist an
// "invalidated" record whose value is null; transaction commits persist
// a commit record. Records are length-prefixed and CRC-framed so a torn
// tail write is detected and truncated during recovery scans.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind discriminates log record types.
type Kind uint8

const (
	// KindWrite is an insert or update of one row/column-group version.
	KindWrite Kind = iota + 1
	// KindDelete is an invalidated entry: a delete persisted with a null
	// value so the deletion survives recovery (paper §3.6.3).
	KindDelete
	// KindCommit marks a transaction as committed; writes of a
	// transaction are visible only if their commit record exists
	// (paper §3.7.2).
	KindCommit
	// KindCheckpoint records a consistent checkpoint: the index files it
	// refers to cover the log up to this record's position (paper §3.8).
	KindCheckpoint
)

func (k Kind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindDelete:
		return "delete"
	case KindCommit:
		return "commit"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one log entry.
type Record struct {
	Kind Kind
	// LSN is assigned by the log at append time.
	LSN uint64
	// Table and Tablet identify the partition the write belongs to.
	Table  string
	Tablet string
	// Group is the column group the write updates.
	Group string
	// Key is the row's primary key.
	Key []byte
	// TS is the version timestamp (the writing transaction's commit
	// timestamp, or the write's wall timestamp for auto-commit writes).
	TS int64
	// Value is the written content; nil for KindDelete.
	Value []byte
	// TxnID links writes to their commit record; zero for auto-commit.
	TxnID uint64
}

// Ptr locates a record in the log: segment file number, byte offset in
// that segment, and total framed length (paper §3.5: "file number, the
// offset in the file, the record's size").
type Ptr struct {
	Seg uint32
	Off int64
	Len uint32
}

// Zero reports whether the pointer is the zero value.
func (p Ptr) Zero() bool { return p == Ptr{} }

func (p Ptr) String() string { return fmt.Sprintf("seg%d@%d+%d", p.Seg, p.Off, p.Len) }

// Position is a scan cursor: everything at or after it is "the tail".
type Position struct {
	Seg uint32
	Off int64
}

// Less orders positions by (segment, offset).
func (p Position) Less(q Position) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// Framing: u32 payloadLen | u32 crc32(payload) | payload.
const frameHeaderSize = 8

var (
	// ErrCorrupt reports a CRC mismatch or malformed payload.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTorn reports a truncated record at the log tail.
	ErrTorn = errors.New("wal: torn record at tail")
)

// CorruptionError pins log corruption to an exact location. A torn
// frame at the tail of the last segment is expected after a crash and
// is silently truncated; everything else — a CRC mismatch anywhere, or
// a torn frame in a sealed (non-last) segment — means durable records
// may be damaged, and recovery must fail loudly with the location
// rather than silently dropping the suffix.
type CorruptionError struct {
	// Segment and Off locate the first bad frame.
	Segment uint32
	Off     int64
	// Err is the underlying defect (ErrCorrupt or ErrTorn).
	Err error
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: segment %d corrupt at offset %d: %v", e.Segment, e.Off, e.Err)
}

func (e *CorruptionError) Unwrap() error { return e.Err }

func putString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		panic("wal: string field too long")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func putBytes(buf []byte, b []byte, present bool) []byte {
	if !present {
		return binary.LittleEndian.AppendUint32(buf, math.MaxUint32)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// encodePayload serialises the record body (without framing).
func encodePayload(r *Record) []byte {
	buf := make([]byte, 0, 64+len(r.Key)+len(r.Value))
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, r.TxnID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TS))
	buf = putString(buf, r.Table)
	buf = putString(buf, r.Tablet)
	buf = putString(buf, r.Group)
	buf = putBytes(buf, r.Key, r.Key != nil)
	buf = putBytes(buf, r.Value, r.Value != nil && r.Kind != KindDelete)
	return buf
}

// Encode frames the record for appending: header + payload.
func Encode(r *Record) []byte {
	payload := encodePayload(r)
	out := make([]byte, 0, frameHeaderSize+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) u8() uint8 {
	if p.err != nil || p.off+1 > len(p.b) {
		p.fail()
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *payloadReader) u16() uint16 {
	if p.err != nil || p.off+2 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil || p.off+4 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u64() uint64 {
	if p.err != nil || p.off+8 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *payloadReader) str() string {
	n := int(p.u16())
	if p.err != nil || p.off+n > len(p.b) {
		p.fail()
		return ""
	}
	s := string(p.b[p.off : p.off+n])
	p.off += n
	return s
}

func (p *payloadReader) bytes() []byte {
	n := p.u32()
	if n == math.MaxUint32 {
		return nil
	}
	if p.err != nil || p.off+int(n) > len(p.b) {
		p.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, p.b[p.off:])
	p.off += int(n)
	return out
}

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = ErrCorrupt
	}
}

// decodePayload parses a record body.
func decodePayload(payload []byte) (Record, error) {
	pr := &payloadReader{b: payload}
	var r Record
	r.Kind = Kind(pr.u8())
	r.LSN = pr.u64()
	r.TxnID = pr.u64()
	r.TS = int64(pr.u64())
	r.Table = pr.str()
	r.Tablet = pr.str()
	r.Group = pr.str()
	r.Key = pr.bytes()
	r.Value = pr.bytes()
	if pr.err != nil {
		return Record{}, pr.err
	}
	if pr.off != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-pr.off)
	}
	switch r.Kind {
	case KindWrite, KindDelete, KindCommit, KindCheckpoint:
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, r.Kind)
	}
	return r, nil
}

// Decode parses one framed record from b, returning the record and the
// total number of bytes consumed. A short buffer returns ErrTorn; a CRC
// mismatch returns ErrCorrupt.
func Decode(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if len(b) < frameHeaderSize+int(n) {
		return Record{}, 0, ErrTorn
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderSize + int(n), nil
}
