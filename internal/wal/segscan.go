package wal

import (
	"errors"
	"fmt"

	"repro/internal/dfs"
)

// segScanChunkSize is the SegmentScanner read-ahead unit. Larger than
// the log Scanner's: the clustered scan path k-way-merges several
// segment streams, and each stream switch moves the disk head, so
// fewer, bigger refills keep the merge transfer-bound instead of
// seek-bound.
const segScanChunkSize = 2 << 20

// SegmentScanner streams one segment's records sequentially, without
// touching the per-key index — the clustered read path over sorted
// segments (paper §3.6.4: post-compaction scans are sequential reads).
// It pins the segment for its lifetime, so a concurrent compaction
// cannot delete the file underneath it; always Close.
//
// Refills are contiguous (the partial frame at the buffer tail is
// carried over, never re-read), so a full stream costs one seek per
// refill at most and pure sequential transfer otherwise.
type SegmentScanner struct {
	l   *Log
	num uint32
	r   *dfs.Reader
	end int64 // record-area end (footer excluded)
	off int64

	win readWindow

	pinned bool

	rec Record
	ptr Ptr
	err error
}

// OpenSegmentScanner returns a scanner over segment num starting at
// byte offset from (0 or anything below the header means "from the
// first record"). from must be a record boundary — typically
// SegmentMeta.SeekOffset or a Ptr.Off.
func (l *Log) OpenSegmentScanner(num uint32, from int64) (*SegmentScanner, error) {
	l.mu.Lock()
	st, ok := l.segs[num]
	if !ok {
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: segment %d not live", num)
	}
	st.pins++
	end := st.dataEnd
	r, err := l.readerLocked(num)
	l.mu.Unlock()
	if err != nil {
		l.Unpin(num)
		return nil, err
	}
	if from < segHeaderSize {
		from = segHeaderSize
	}
	return &SegmentScanner{l: l, num: num, r: r, end: end, off: from, pinned: true}, nil
}

// Close releases the segment pin. Idempotent.
func (s *SegmentScanner) Close() {
	if s.pinned {
		s.l.Unpin(s.num)
		s.pinned = false
	}
}

func (s *SegmentScanner) window(want int) ([]byte, error) {
	return s.win.at(s.r, s.off, s.end, want, segScanChunkSize)
}

// Next advances to the next record, returning false at the end of the
// record area or on error (check Err). Exhaustion does NOT unpin — the
// merge may still resolve Ptrs into the segment; Close does.
func (s *SegmentScanner) Next() bool {
	if s.err != nil || s.off >= s.end {
		return false
	}
	frame, err := s.window(frameHeaderSize)
	if err != nil {
		s.err = err
		return false
	}
	if len(frame) >= frameHeaderSize {
		n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
		if len(frame) < frameHeaderSize+n {
			if frame, err = s.window(frameHeaderSize + n); err != nil {
				s.err = err
				return false
			}
		}
	}
	rec, consumed, derr := Decode(frame)
	if derr != nil {
		if errors.Is(derr, ErrTorn) {
			return false
		}
		s.err = fmt.Errorf("wal: seg %d @%d: %w", s.num, s.off, derr)
		return false
	}
	s.rec = rec
	s.ptr = Ptr{Seg: s.num, Off: s.off, Len: uint32(consumed)}
	s.off += int64(consumed)
	return true
}

// Record returns the current record.
func (s *SegmentScanner) Record() Record { return s.rec }

// Ptr returns the current record's location.
func (s *SegmentScanner) Ptr() Ptr { return s.ptr }

// Err returns the first error encountered.
func (s *SegmentScanner) Err() error { return s.err }
