package wal

import (
	"io"
)

// readWindow is the contiguous read-ahead buffer shared by the log
// Scanner and the SegmentScanner. Refills carry the unconsumed tail (a
// partial frame) to the front and read the next chunk from exactly
// where the previous physical read ended, so a sweep is contiguous I/O
// — no per-chunk seek charge on the modelled disk, and no re-read of
// the tail bytes.
type readWindow struct {
	buf      []byte
	bufStart int64
}

// reset discards the buffer (called on segment switch).
func (w *readWindow) reset() {
	w.buf = nil
	w.bufStart = 0
}

// at returns at least want bytes starting at off (or everything up to
// end), refilling from r in chunk-sized contiguous reads.
func (w *readWindow) at(r io.ReaderAt, off, end int64, want, chunk int) ([]byte, error) {
	have := func() []byte {
		rel := off - w.bufStart
		if w.buf == nil || rel < 0 || rel >= int64(len(w.buf)) {
			return nil
		}
		return w.buf[rel:]
	}
	if b := have(); len(b) >= want {
		return b, nil
	}
	var tail []byte
	readFrom := off
	if rel := off - w.bufStart; w.buf != nil && rel >= 0 && rel < int64(len(w.buf)) {
		tail = w.buf[rel:]
		readFrom = w.bufStart + int64(len(w.buf))
	}
	n := int64(chunk)
	if need := int64(want) - int64(len(tail)); need > n {
		n = need
	}
	if rem := end - readFrom; n > rem {
		n = rem
	}
	buf := make([]byte, int64(len(tail))+n)
	copy(buf, tail)
	m, err := r.ReadAt(buf[len(tail):], readFrom)
	if err != nil && err != io.EOF {
		return nil, err
	}
	w.buf = buf[:len(tail)+m]
	w.bufStart = off
	return have(), nil
}
