package wal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dfs"
)

func footerTestLog(t *testing.T) (*dfs.DFS, *Log) {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 2, BlockSize: 1 << 20})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	l, err := Open(fs, "log/t", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return fs, l
}

func sortedRecord(i int) *Record {
	return &Record{
		Kind: KindWrite, Table: "tab", Tablet: "tab/0000", Group: "g",
		Key: []byte(fmt.Sprintf("key%06d", i)), TS: int64(i + 1),
		Value: bytes.Repeat([]byte{byte(i)}, 100), LSN: uint64(i + 1),
	}
}

func writeSortedSegment(t *testing.T, l *Log, n int) []uint32 {
	t.Helper()
	sw := l.NewSegmentWriter(true)
	for i := 0; i < n; i++ {
		if _, err := sw.Append(sortedRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sw.Segments()
}

func TestSegmentFooterRoundtrip(t *testing.T) {
	fs, l := footerTestLog(t)
	nums := writeSortedSegment(t, l, 1000)
	if len(nums) != 1 {
		t.Fatalf("wrote %d segments, want 1", len(nums))
	}
	check := func(l *Log, where string) {
		meta := l.SegmentMeta(nums[0])
		if meta == nil {
			t.Fatalf("%s: no footer meta", where)
		}
		if meta.Rows != 1000 {
			t.Errorf("%s: rows = %d, want 1000", where, meta.Rows)
		}
		if got := string(meta.Min.Key); got != "key000000" {
			t.Errorf("%s: min key %q", where, got)
		}
		if got := string(meta.Max.Key); got != "key000999" {
			t.Errorf("%s: max key %q", where, got)
		}
		if meta.MinLSN != 1 || meta.MaxLSN != 1000 {
			t.Errorf("%s: LSN range [%d,%d], want [1,1000]", where, meta.MinLSN, meta.MaxLSN)
		}
		if len(meta.Sparse) == 0 {
			t.Errorf("%s: empty sparse index", where)
		}
		if meta.Sparse[0].Off != segHeaderSize {
			t.Errorf("%s: first sparse sample at %d, want %d", where, meta.Sparse[0].Off, segHeaderSize)
		}
	}
	check(l, "writer")

	// A reopened log must decode the footer from disk.
	l2, err := Open(fs, "log/t", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	check(l2, "reopen")

	// The footer bytes must be invisible to record scans.
	sc := l2.NewScanner(Position{})
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan over footed segment: %v", err)
	}
	if n != 1000 {
		t.Errorf("scan saw %d records, want 1000", n)
	}
}

func TestSegmentMetaSeekOffset(t *testing.T) {
	_, l := footerTestLog(t)
	nums := writeSortedSegment(t, l, 2000)
	meta := l.SegmentMeta(nums[0])
	if meta == nil {
		t.Fatal("no meta")
	}
	target := RecordKey{Table: "tab", Group: "g", Key: []byte("key001500")}
	off := meta.SeekOffset(target)
	if off <= segHeaderSize {
		t.Fatalf("SeekOffset did not advance: %d", off)
	}
	// Streaming from the offset must still observe key001500.
	sc, err := l.OpenSegmentScanner(nums[0], off)
	if err != nil {
		t.Fatalf("OpenSegmentScanner: %v", err)
	}
	defer sc.Close()
	found := false
	first := true
	for sc.Next() {
		k := string(sc.Record().Key)
		if first && k > "key001500" {
			t.Fatalf("stream started past the target: %q", k)
		}
		first = false
		if k == "key001500" {
			found = true
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("segment scan: %v", err)
	}
	if !found {
		t.Fatal("target key not reachable from SeekOffset")
	}
}

func TestSegmentMetaCovers(t *testing.T) {
	m := &SegmentMeta{
		Min: RecordKey{Table: "t", Group: "g", Key: []byte("b")},
		Max: RecordKey{Table: "t", Group: "g", Key: []byte("m")},
	}
	cases := []struct {
		start, end string
		want       bool
	}{
		{"", "", true},
		{"a", "c", true},
		{"m", "", true},
		{"n", "", false},
		{"", "b", false}, // end exclusive: [.., "b") cannot include "b"
		{"", "c", true},
		{"c", "d", true},
	}
	for _, c := range cases {
		var start, end []byte
		if c.start != "" {
			start = []byte(c.start)
		}
		if c.end != "" {
			end = []byte(c.end)
		}
		if got := m.Covers("t", "g", start, end); got != c.want {
			t.Errorf("Covers[%q,%q) = %v, want %v", c.start, c.end, got, c.want)
		}
	}
	if m.Covers("t", "other", nil, nil) {
		t.Error("Covers matched the wrong column group")
	}
	if m.Covers("u", "g", nil, nil) {
		t.Error("Covers matched the wrong table")
	}
}

func TestSegmentPinningDefersDeletion(t *testing.T) {
	fs, l := footerTestLog(t)
	nums := writeSortedSegment(t, l, 100)
	num := nums[0]
	path := l.SegmentPath(num)

	sc, err := l.OpenSegmentScanner(num, 0)
	if err != nil {
		t.Fatalf("OpenSegmentScanner: %v", err)
	}
	if err := l.RemoveSegments(num); err != nil {
		t.Fatalf("RemoveSegments: %v", err)
	}
	// Removed from the live set immediately...
	for _, si := range l.Segments() {
		if si.Num == num {
			t.Fatal("doomed segment still listed live")
		}
	}
	// ...but the file survives and the pinned scanner still reads it.
	if !fs.Exists(path) {
		t.Fatal("pinned segment file deleted under the scanner")
	}
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan of doomed segment: %v", err)
	}
	if n != 100 {
		t.Fatalf("scan of doomed segment saw %d records, want 100", n)
	}
	sc.Close()
	if fs.Exists(path) {
		t.Fatal("doomed segment not deleted after the last unpin")
	}
	// Idempotent close.
	sc.Close()
}

func TestReadBatchPinsDoomedSegment(t *testing.T) {
	fs, l := footerTestLog(t)
	recs := make([]*Record, 50)
	for i := range recs {
		recs[i] = sortedRecord(i)
	}
	ptrs, err := l.Append(recs...)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Rotate()
	num := ptrs[0].Seg
	// Pin (as a long scan would), doom the segment, then batch-read.
	l.Pin(num)
	if err := l.RemoveSegments(num); err != nil {
		t.Fatalf("RemoveSegments: %v", err)
	}
	got, err := l.ReadBatch(ptrs)
	if err != nil {
		t.Fatalf("ReadBatch on doomed pinned segment: %v", err)
	}
	for i, r := range got {
		if string(r.Key) != string(recs[i].Key) {
			t.Fatalf("record %d key %q, want %q", i, r.Key, recs[i].Key)
		}
	}
	l.Unpin(num)
	if fs.Exists(l.SegmentPath(num)) {
		t.Fatal("segment survived after last unpin")
	}
}
