package wal

// Segment footer metadata (paper §3.6.5): compaction writes each sorted
// segment with a footer describing what is inside — the min/max
// clustering key (table, column group, record key), row and LSN ranges,
// and a sparse block index sampling one record position every
// sparseIndexStride bytes. The clustered scan planner uses the min/max
// keys to pick only the segments covering a requested range and the
// sparse index to start streaming near the range's first key instead of
// at the segment head.
//
// Layout: the footer payload is appended after the last record, then a
// fixed-size trailer [u32 payloadLen | u32 crc32(payload) | 8-byte
// magic] closes the file. Readers find the footer by reading the
// trailer at end-of-file; segments without the trailing magic (all
// unsorted segments, and pre-footer logs) simply have no footer. The
// record area of a footed segment ends where the footer begins
// (segState.dataEnd), so log scans never try to decode footer bytes as
// records.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

var footerMagic = []byte{'L', 'B', 'S', 'F', 'T', 'R', '0', '1'}

const footerTrailerSize = 16 // u32 len + u32 crc + 8-byte magic

// sparseIndexStride is the sparse block index granularity: one entry
// per this many record bytes.
const sparseIndexStride = 64 << 10

// RecordKey is the clustering key compaction sorts by: (table, column
// group, record key).
type RecordKey struct {
	Table string
	Group string
	Key   []byte
}

// Compare orders clustering keys lexicographically by (Table, Group,
// Key).
func (k RecordKey) Compare(o RecordKey) int {
	if k.Table != o.Table {
		if k.Table < o.Table {
			return -1
		}
		return 1
	}
	if k.Group != o.Group {
		if k.Group < o.Group {
			return -1
		}
		return 1
	}
	return bytes.Compare(k.Key, o.Key)
}

// SparseEntry is one sparse block index sample: the clustering key and
// timestamp of the record starting at Off.
type SparseEntry struct {
	Key RecordKey
	TS  int64
	Off int64
}

// SegmentMeta is the decoded footer of one sorted segment.
type SegmentMeta struct {
	// Min and Max bound the clustering keys present (inclusive).
	Min, Max RecordKey
	// Rows is the number of records in the segment.
	Rows uint32
	// MinLSN and MaxLSN bound the record LSNs present.
	MinLSN, MaxLSN uint64
	// Sparse samples record positions roughly every sparseIndexStride
	// bytes, ascending by clustering key and offset. The first record of
	// the segment is always sampled.
	Sparse []SparseEntry
}

// Covers reports whether [lo, hi) intersects the segment's key range
// for the given table and group. A nil hi.Key with hiOpen means "to the
// end of the (table, group) space".
func (m *SegmentMeta) Covers(table, group string, start, end []byte) bool {
	lo := RecordKey{Table: table, Group: group, Key: start}
	if m.Max.Compare(lo) < 0 {
		return false
	}
	if end != nil {
		hi := RecordKey{Table: table, Group: group, Key: end}
		// end is exclusive: a segment whose min is >= hi is out.
		if m.Min.Compare(hi) >= 0 {
			return false
		}
		return true
	}
	// Open upper bound: out only when the segment ends before (table,
	// group, start) or starts after the whole (table, group) space.
	if m.Min.Table > table || (m.Min.Table == table && m.Min.Group > group) {
		return false
	}
	return true
}

// SeekOffset returns the best byte offset at which to start a
// sequential scan that must observe every record with clustering key >=
// target: the largest sampled position whose key is <= target (the
// record area start if none).
func (m *SegmentMeta) SeekOffset(target RecordKey) int64 {
	off := int64(segHeaderSize)
	for _, se := range m.Sparse {
		if se.Key.Compare(target) > 0 {
			break
		}
		off = se.Off
	}
	return off
}

func putRecordKey(buf []byte, k RecordKey) []byte {
	buf = putString(buf, k.Table)
	buf = putString(buf, k.Group)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k.Key)))
	return append(buf, k.Key...)
}

func (p *payloadReader) recordKey() RecordKey {
	var k RecordKey
	k.Table = p.str()
	k.Group = p.str()
	n := p.u32()
	if p.err != nil || p.off+int(n) > len(p.b) {
		p.fail()
		return RecordKey{}
	}
	k.Key = append([]byte(nil), p.b[p.off:p.off+int(n)]...)
	p.off += int(n)
	return k
}

// encodeFooter serialises the footer: payload + trailer.
func encodeFooter(m *SegmentMeta) []byte {
	buf := make([]byte, 0, 256+len(m.Sparse)*48)
	buf = binary.LittleEndian.AppendUint16(buf, 1) // version
	buf = putRecordKey(buf, m.Min)
	buf = putRecordKey(buf, m.Max)
	buf = binary.LittleEndian.AppendUint32(buf, m.Rows)
	buf = binary.LittleEndian.AppendUint64(buf, m.MinLSN)
	buf = binary.LittleEndian.AppendUint64(buf, m.MaxLSN)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Sparse)))
	for _, se := range m.Sparse {
		buf = putRecordKey(buf, se.Key)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(se.TS))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(se.Off))
	}
	out := make([]byte, 0, len(buf)+footerTrailerSize)
	out = append(out, buf...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(buf)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(buf))
	return append(out, footerMagic...)
}

func decodeFooterPayload(payload []byte) (*SegmentMeta, error) {
	pr := &payloadReader{b: payload}
	if v := pr.u16(); v != 1 {
		return nil, fmt.Errorf("%w: footer version %d", ErrCorrupt, v)
	}
	m := &SegmentMeta{}
	m.Min = pr.recordKey()
	m.Max = pr.recordKey()
	m.Rows = pr.u32()
	m.MinLSN = pr.u64()
	m.MaxLSN = pr.u64()
	n := pr.u32()
	if pr.err == nil && int(n) <= len(payload) {
		m.Sparse = make([]SparseEntry, 0, n)
		for i := uint32(0); i < n && pr.err == nil; i++ {
			var se SparseEntry
			se.Key = pr.recordKey()
			se.TS = int64(pr.u64())
			se.Off = int64(pr.u64())
			m.Sparse = append(m.Sparse, se)
		}
	}
	if pr.err != nil {
		return nil, fmt.Errorf("%w: segment footer", ErrCorrupt)
	}
	return m, nil
}

// readFooter reads and decodes the footer of the segment file behind r
// (total size fileSize). Returns (nil, dataEnd=fileSize, nil) when the
// file carries no footer.
func readFooter(r io.ReaderAt, fileSize int64) (*SegmentMeta, int64, error) {
	if fileSize < segHeaderSize+footerTrailerSize {
		return nil, fileSize, nil
	}
	trailer := make([]byte, footerTrailerSize)
	if _, err := r.ReadAt(trailer, fileSize-footerTrailerSize); err != nil && err != io.EOF {
		return nil, fileSize, err
	}
	if !bytes.Equal(trailer[8:], footerMagic) {
		return nil, fileSize, nil
	}
	plen := int64(binary.LittleEndian.Uint32(trailer))
	sum := binary.LittleEndian.Uint32(trailer[4:])
	dataEnd := fileSize - footerTrailerSize - plen
	if dataEnd < segHeaderSize {
		return nil, fileSize, fmt.Errorf("%w: footer length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := r.ReadAt(payload, dataEnd); err != nil && err != io.EOF {
		return nil, fileSize, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fileSize, fmt.Errorf("%w: footer checksum", ErrCorrupt)
	}
	m, err := decodeFooterPayload(payload)
	if err != nil {
		return nil, fileSize, err
	}
	return m, dataEnd, nil
}
