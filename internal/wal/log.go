package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/dfs"
)

// Options configures a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes. Zero means 64 MB
	// (the paper's default, matching HDFS chunk size).
	SegmentSize int64
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	return o
}

// Segment header: magic (6) + flags (1) + reserved (1).
var segMagic = []byte{'L', 'B', 'S', 'E', 'G', 1}

const (
	segHeaderSize  = 8
	segFlagSorted  = 1 << 0 // segment produced by compaction; clustered by (table, group, key, ts)
	segFlagCompact = 1 << 1 // reserved for per-segment table/group defaults
)

// SegmentInfo describes one live segment.
type SegmentInfo struct {
	Num    uint32
	Size   int64
	Sorted bool
}

// Log is a single tablet server's log instance (one per server, shared
// by all its tablets, per the paper's single-log design choice). It is
// safe for concurrent use; appends are serialised internally.
type Log struct {
	fs   *dfs.DFS
	dir  string
	opts Options

	mu      sync.Mutex
	segs    map[uint32]*segState
	order   []uint32 // live segments in append order
	cur     uint32   // segment currently open for append (0 = none)
	curW    *dfs.Writer
	nextSeg uint32
	nextLSN uint64
	readers map[uint32]*dfs.Reader
}

type segState struct {
	size   int64
	sorted bool
}

// Open opens (or creates) the log stored under dir in fs. Existing
// segments are discovered and kept; the next append goes to a fresh
// segment (matching restart behaviour: a recovering server never
// rewrites an old tail in place).
func Open(fs *dfs.DFS, dir string, opts Options) (*Log, error) {
	l := &Log{
		fs:      fs,
		dir:     dir,
		opts:    opts.withDefaults(),
		segs:    make(map[uint32]*segState),
		readers: make(map[uint32]*dfs.Reader),
		nextSeg: 1,
		nextLSN: 1,
	}
	for _, path := range fs.List(dir + "/seg-") {
		var num uint32
		if _, err := fmt.Sscanf(path[len(dir)+1:], "seg-%08d", &num); err != nil {
			continue
		}
		size, err := fs.Size(path)
		if err != nil {
			return nil, err
		}
		sorted, err := l.readSegFlags(path)
		if err != nil {
			return nil, err
		}
		l.segs[num] = &segState{size: size, sorted: sorted}
		l.order = append(l.order, num)
		if num >= l.nextSeg {
			l.nextSeg = num + 1
		}
	}
	sort.Slice(l.order, func(i, j int) bool { return l.order[i] < l.order[j] })
	return l, nil
}

func (l *Log) readSegFlags(path string) (sorted bool, err error) {
	r, err := l.fs.Open(path)
	if err != nil {
		return false, err
	}
	defer r.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := r.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return false, err
	}
	for i, m := range segMagic {
		if hdr[i] != m {
			return false, fmt.Errorf("wal: %s: bad segment magic", path)
		}
	}
	return hdr[6]&segFlagSorted != 0, nil
}

// SegmentPath returns the DFS path of segment num.
func (l *Log) SegmentPath(num uint32) string {
	return fmt.Sprintf("%s/seg-%08d", l.dir, num)
}

// Dir returns the log's DFS directory.
func (l *Log) Dir() string { return l.dir }

// newSegmentLocked creates a fresh segment file and writes its header.
func (l *Log) newSegmentLocked(sorted bool) (uint32, *dfs.Writer, error) {
	num := l.nextSeg
	l.nextSeg++
	w, err := l.fs.Create(l.SegmentPath(num))
	if err != nil {
		return 0, nil, err
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	if sorted {
		hdr[6] |= segFlagSorted
	}
	if _, err := w.Write(hdr); err != nil {
		return 0, nil, err
	}
	l.segs[num] = &segState{size: segHeaderSize, sorted: sorted}
	l.order = append(l.order, num)
	return num, w, nil
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// SetNextLSN bumps the LSN counter; recovery calls this after replaying
// the tail so new writes continue the sequence.
func (l *Log) SetNextLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.nextLSN {
		l.nextLSN = lsn
	}
}

// Append durably appends the records in order, assigning consecutive
// LSNs, and returns one Ptr per record. The records' LSN fields are
// updated in place. Records never span segment files. Consecutive
// frames destined for the same segment are coalesced into one DFS
// write, which is what makes group commit amortise the persistence
// cost (paper §3.7.2).
func (l *Log) Append(recs ...*Record) ([]Ptr, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ptrs := make([]Ptr, 0, len(recs))
	var batch []byte
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := l.curW.Write(batch); err != nil {
			return fmt.Errorf("wal: append seg %d: %w", l.cur, err)
		}
		batch = batch[:0]
		return nil
	}
	for _, r := range recs {
		r.LSN = l.nextLSN
		l.nextLSN++
		frame := Encode(r)
		if l.curW == nil || l.segs[l.cur].size+int64(len(frame)) > l.opts.SegmentSize {
			if err := flush(); err != nil {
				return nil, err
			}
			num, w, err := l.newSegmentLocked(false)
			if err != nil {
				return nil, err
			}
			l.cur, l.curW = num, w
		}
		st := l.segs[l.cur]
		off := st.size
		batch = append(batch, frame...)
		st.size += int64(len(frame))
		ptrs = append(ptrs, Ptr{Seg: l.cur, Off: off, Len: uint32(len(frame))})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return ptrs, nil
}

// Rotate forces the next append into a new segment.
func (l *Log) Rotate() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.curW != nil {
		l.curW.Close()
		l.curW = nil
		l.cur = 0
	}
}

func (l *Log) reader(num uint32) (*dfs.Reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r, ok := l.readers[num]; ok {
		return r, nil
	}
	if _, ok := l.segs[num]; !ok {
		return nil, fmt.Errorf("wal: segment %d not live", num)
	}
	r, err := l.fs.Open(l.SegmentPath(num))
	if err != nil {
		return nil, err
	}
	l.readers[num] = r
	return r, nil
}

// Read fetches the record at ptr. This is the single-seek read path the
// in-memory index enables (paper §3.5).
func (l *Log) Read(ptr Ptr) (Record, error) {
	r, err := l.reader(ptr.Seg)
	if err != nil {
		return Record{}, err
	}
	buf := make([]byte, ptr.Len)
	if _, err := r.ReadAt(buf, ptr.Off); err != nil && err != io.EOF {
		return Record{}, fmt.Errorf("wal: read %v: %w", ptr, err)
	}
	rec, _, err := Decode(buf)
	if err != nil {
		return Record{}, fmt.Errorf("wal: decode %v: %w", ptr, err)
	}
	return rec, nil
}

// Segments lists live segments in append order.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.order))
	for _, num := range l.order {
		st := l.segs[num]
		out = append(out, SegmentInfo{Num: num, Size: st.size, Sorted: st.sorted})
	}
	return out
}

// Size returns the total live log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, st := range l.segs {
		n += st.size
	}
	return n
}

// End returns the position one past the last durable byte.
func (l *Log) End() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == 0 {
		if len(l.order) == 0 {
			return Position{}
		}
		last := l.order[len(l.order)-1]
		return Position{Seg: last, Off: l.segs[last].size}
	}
	return Position{Seg: l.cur, Off: l.segs[l.cur].size}
}

// SegmentWriter writes records (with pre-assigned LSNs) into brand-new
// segments, used by compaction to lay down sorted runs while the main
// log keeps serving appends.
type SegmentWriter struct {
	l      *Log
	sorted bool
	cur    uint32
	w      *dfs.Writer
	size   int64
	nums   []uint32
}

// NewSegmentWriter starts a writer for fresh (not yet installed)
// segments. The segments are live for reads as soon as written but only
// become part of the scan order; InstallCompaction swaps them in as the
// canonical set.
func (l *Log) NewSegmentWriter(sorted bool) *SegmentWriter {
	return &SegmentWriter{l: l, sorted: sorted}
}

// Append writes rec (keeping its existing LSN) and returns its pointer.
func (s *SegmentWriter) Append(rec *Record) (Ptr, error) {
	frame := Encode(rec)
	if s.w == nil || s.size+int64(len(frame)) > s.l.opts.SegmentSize {
		s.l.mu.Lock()
		num, w, err := s.l.newSegmentLocked(s.sorted)
		s.l.mu.Unlock()
		if err != nil {
			return Ptr{}, err
		}
		if s.w != nil {
			s.w.Close()
		}
		s.cur, s.w, s.size = num, w, segHeaderSize
		s.nums = append(s.nums, num)
	}
	off := s.size
	if _, err := s.w.Write(frame); err != nil {
		return Ptr{}, fmt.Errorf("wal: compaction append seg %d: %w", s.cur, err)
	}
	s.size += int64(len(frame))
	s.l.mu.Lock()
	s.l.segs[s.cur].size = s.size
	s.l.mu.Unlock()
	return Ptr{Seg: s.cur, Off: off, Len: uint32(len(frame))}, nil
}

// Segments returns the segment numbers written so far.
func (s *SegmentWriter) Segments() []uint32 { return append([]uint32(nil), s.nums...) }

// Close finishes the writer.
func (s *SegmentWriter) Close() error {
	if s.w != nil {
		return s.w.Close()
	}
	return nil
}

// RemoveSegments drops the given segments from the live set and deletes
// their files; compaction calls this to discard superseded segments
// after the new sorted segments and rebuilt indexes are ready.
func (l *Log) RemoveSegments(nums ...uint32) error {
	l.mu.Lock()
	remove := make(map[uint32]bool, len(nums))
	for _, n := range nums {
		remove[n] = true
	}
	var kept []uint32
	for _, n := range l.order {
		if !remove[n] {
			kept = append(kept, n)
		}
	}
	l.order = kept
	var errs []error
	for _, n := range nums {
		if _, ok := l.segs[n]; !ok {
			continue
		}
		delete(l.segs, n)
		if r, ok := l.readers[n]; ok {
			r.Close()
			delete(l.readers, n)
		}
		if l.cur == n {
			l.curW.Close()
			l.cur, l.curW = 0, nil
		}
		path := l.SegmentPath(n)
		l.mu.Unlock()
		if err := l.fs.Delete(path); err != nil {
			errs = append(errs, err)
		}
		l.mu.Lock()
	}
	l.mu.Unlock()
	return errors.Join(errs...)
}

// Scanner iterates records in log order starting at a position. The
// recovery redo pass and compaction both use it. Reads are buffered in
// large chunks so scanning is sequential I/O, not one access per
// record.
type Scanner struct {
	l    *Log
	segs []uint32
	idx  int
	r    *dfs.Reader
	size int64
	off  int64

	buf      []byte
	bufStart int64

	rec Record
	ptr Ptr
	err error
}

// scanChunkSize is the scanner's read-ahead unit.
const scanChunkSize = 256 << 10

// NewScanner returns a scanner positioned at from (zero value = start of
// log). Only segments >= from.Seg are visited.
func (l *Log) NewScanner(from Position) *Scanner {
	l.mu.Lock()
	var segs []uint32
	for _, n := range l.order {
		if n >= from.Seg {
			segs = append(segs, n)
		}
	}
	l.mu.Unlock()
	s := &Scanner{l: l, segs: segs}
	if len(segs) > 0 && segs[0] == from.Seg && from.Off > segHeaderSize {
		s.off = from.Off
	}
	return s
}

// window returns the bytes at the current offset, refilling the
// read-ahead buffer so at least want bytes are available (or everything
// up to end of segment).
func (s *Scanner) window(want int) ([]byte, error) {
	have := func() []byte {
		rel := s.off - s.bufStart
		if s.buf == nil || rel < 0 || rel >= int64(len(s.buf)) {
			return nil
		}
		return s.buf[rel:]
	}
	if w := have(); len(w) >= want {
		return w, nil
	}
	n := int64(scanChunkSize)
	if int64(want) > n {
		n = int64(want)
	}
	if rem := s.size - s.off; n > rem {
		n = rem
	}
	buf := make([]byte, n)
	m, err := s.r.ReadAt(buf, s.off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	s.buf = buf[:m]
	s.bufStart = s.off
	return have(), nil
}

// Next advances to the next record, returning false at end of log or on
// error (check Err).
func (s *Scanner) Next() bool {
	for {
		if s.r == nil {
			if s.idx >= len(s.segs) {
				return false
			}
			num := s.segs[s.idx]
			r, err := s.l.reader(num)
			if err != nil {
				s.err = err
				return false
			}
			s.l.mu.Lock()
			size := s.l.segs[num].size
			s.l.mu.Unlock()
			s.r = r
			s.size = size
			if s.off < segHeaderSize {
				s.off = segHeaderSize
			}
		}
		if s.off >= s.size {
			s.r = nil
			s.idx++
			s.off = 0
			s.buf = nil
			continue
		}
		frame, err := s.window(frameHeaderSize)
		if err != nil {
			s.err = err
			return false
		}
		if len(frame) >= frameHeaderSize {
			n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
			if len(frame) < frameHeaderSize+n {
				if frame, err = s.window(frameHeaderSize + n); err != nil {
					s.err = err
					return false
				}
			}
		}
		rec, consumed, derr := Decode(frame)
		if derr != nil {
			if errors.Is(derr, ErrTorn) && s.idx == len(s.segs)-1 {
				// Torn tail write: recovery truncates here.
				return false
			}
			s.err = fmt.Errorf("wal: seg %d @%d: %w", s.segs[s.idx], s.off, derr)
			return false
		}
		s.rec = rec
		s.ptr = Ptr{Seg: s.segs[s.idx], Off: s.off, Len: uint32(consumed)}
		s.off += int64(consumed)
		return true
	}
}

// Record returns the current record.
func (s *Scanner) Record() Record { return s.rec }

// Ptr returns the current record's location.
func (s *Scanner) Ptr() Ptr { return s.ptr }

// Err returns the first error encountered.
func (s *Scanner) Err() error { return s.err }
