package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/dfs"
	"repro/internal/fault"
)

// Options configures a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes. Zero means 64 MB
	// (the paper's default, matching HDFS chunk size).
	SegmentSize int64
	// Faults, when non-nil, is consulted at the "wal.append" point on
	// every batched segment write: injections can tear the batch
	// (Partial), drop it whole (an fsync-lost suffix), or flip a bit
	// on its way to disk. Nil injects nothing.
	Faults *fault.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	return o
}

// Segment header: magic (6) + flags (1) + reserved (1).
var segMagic = []byte{'L', 'B', 'S', 'E', 'G', 1}

const (
	segHeaderSize  = 8
	segFlagSorted  = 1 << 0 // segment produced by compaction; clustered by (table, group, key, ts)
	segFlagCompact = 1 << 1 // reserved for per-segment table/group defaults
)

// SegmentHeaderSize is the fixed per-segment header length; a segment
// of exactly this size holds no records.
const SegmentHeaderSize = segHeaderSize

// SegmentInfo describes one live segment.
type SegmentInfo struct {
	Num    uint32
	Size   int64
	Sorted bool
	// Garbage is the accumulated byte count of records in this segment
	// known to be superseded (deleted keys, versions beyond the
	// retention bound, stale same-timestamp rewrites). The auto
	// compactor picks rewrite candidates by Garbage/Size.
	Garbage int64
}

// Empty reports whether the segment holds no records (header only).
func (si SegmentInfo) Empty() bool { return si.Size <= SegmentHeaderSize }

// Log is a single tablet server's log instance (one per server, shared
// by all its tablets, per the paper's single-log design choice). It is
// safe for concurrent use; appends are serialised internally.
type Log struct {
	fs   *dfs.DFS
	dir  string
	opts Options

	mu      sync.Mutex
	segs    map[uint32]*segState
	order   []uint32 // live segments in append order
	cur     uint32   // segment currently open for append (0 = none)
	curW    *dfs.Writer
	nextSeg uint32
	nextLSN uint64
	readers map[uint32]*dfs.Reader
	hook    func([]Record)
}

type segState struct {
	size    int64 // full file bytes (records + footer)
	dataEnd int64 // end of the record area (== size when no footer)
	sorted  bool
	meta    *SegmentMeta // footer metadata; sorted segments only
	garbage int64        // superseded record bytes (see SegmentInfo.Garbage)
	pins    int          // active scanners/readers holding the segment
	doomed  bool         // removed from the live set; deletion deferred until pins==0
}

// Open opens (or creates) the log stored under dir in fs. Existing
// segments are discovered and kept; the next append goes to a fresh
// segment (matching restart behaviour: a recovering server never
// rewrites an old tail in place).
func Open(fs *dfs.DFS, dir string, opts Options) (*Log, error) {
	l := &Log{
		fs:      fs,
		dir:     dir,
		opts:    opts.withDefaults(),
		segs:    make(map[uint32]*segState),
		readers: make(map[uint32]*dfs.Reader),
		nextSeg: 1,
		nextLSN: 1,
	}
	for _, path := range fs.List(dir + "/seg-") {
		var num uint32
		if _, err := fmt.Sscanf(path[len(dir)+1:], "seg-%08d", &num); err != nil {
			continue
		}
		size, err := fs.Size(path)
		if err != nil {
			return nil, err
		}
		sorted, meta, dataEnd, err := l.readSegHeaderFooter(path, size)
		if err != nil {
			return nil, err
		}
		l.segs[num] = &segState{size: size, dataEnd: dataEnd, sorted: sorted, meta: meta}
		l.order = append(l.order, num)
		if num >= l.nextSeg {
			l.nextSeg = num + 1
		}
	}
	sort.Slice(l.order, func(i, j int) bool { return l.order[i] < l.order[j] })
	if err := l.repairTailOnOpen(); err != nil {
		return nil, err
	}
	return l, nil
}

// repairTailOnOpen physically truncates a torn frame at the end of the
// last (previously active) segment. A crash mid-append leaves the torn
// bytes on disk; recovery's scan would skip them, but they must also
// be cut from the file — the next session appends to a *new* segment,
// and a torn frame in a then-sealed segment would read as interior
// corruption on any later recovery. Interior corruption found here
// (a CRC mismatch before the tail) fails the open loudly.
func (l *Log) repairTailOnOpen() error {
	if len(l.order) == 0 {
		return nil
	}
	num := l.order[len(l.order)-1]
	st := l.segs[num]
	if st.sorted || st.size <= segHeaderSize {
		// Sorted segments were sealed by compaction and footer-checked
		// above; they cannot carry an active tail.
		return nil
	}
	path := l.SegmentPath(num)
	r, err := l.fs.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	verr := VerifySegment(r, st.size, num, false)
	if verr == nil {
		return nil
	}
	var ce *CorruptionError
	if errors.As(verr, &ce) && errors.Is(ce.Err, ErrTorn) && ce.Off > 0 {
		if err := l.fs.Truncate(path, ce.Off); err != nil {
			return fmt.Errorf("wal: truncate torn tail of seg %d: %w", num, err)
		}
		st.size, st.dataEnd = ce.Off, ce.Off
		return nil
	}
	return verr
}

// readSegHeaderFooter validates a segment's header and, for sorted
// segments, decodes the trailing footer.
func (l *Log) readSegHeaderFooter(path string, size int64) (sorted bool, meta *SegmentMeta, dataEnd int64, err error) {
	r, err := l.fs.Open(path)
	if err != nil {
		return false, nil, 0, err
	}
	defer r.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := r.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return false, nil, 0, err
	}
	for i, m := range segMagic {
		if hdr[i] != m {
			return false, nil, 0, fmt.Errorf("wal: %s: bad segment magic", path)
		}
	}
	sorted = hdr[6]&segFlagSorted != 0
	dataEnd = size
	if sorted {
		meta, dataEnd, err = readFooter(r, size)
		if err != nil {
			return false, nil, 0, fmt.Errorf("wal: %s: %w", path, err)
		}
	}
	return sorted, meta, dataEnd, nil
}

// SegmentPath returns the DFS path of segment num.
func (l *Log) SegmentPath(num uint32) string {
	return fmt.Sprintf("%s/seg-%08d", l.dir, num)
}

// Dir returns the log's DFS directory.
func (l *Log) Dir() string { return l.dir }

// newSegmentLocked creates a fresh segment file and writes its header.
func (l *Log) newSegmentLocked(sorted bool) (uint32, *dfs.Writer, error) {
	num := l.nextSeg
	l.nextSeg++
	w, err := l.fs.Create(l.SegmentPath(num))
	if err != nil {
		return 0, nil, err
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	if sorted {
		hdr[6] |= segFlagSorted
	}
	if _, err := w.Write(hdr); err != nil {
		return 0, nil, err
	}
	l.segs[num] = &segState{size: segHeaderSize, dataEnd: segHeaderSize, sorted: sorted}
	l.order = append(l.order, num)
	return num, w, nil
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// SetNextLSN bumps the LSN counter; recovery calls this after replaying
// the tail so new writes continue the sequence.
func (l *Log) SetNextLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.nextLSN {
		l.nextLSN = lsn
	}
}

// Append durably appends the records in order, assigning consecutive
// LSNs, and returns one Ptr per record. The records' LSN fields are
// updated in place. Records never span segment files. Consecutive
// frames destined for the same segment are coalesced into one DFS
// write, which is what makes group commit amortise the persistence
// cost (paper §3.7.2).
func (l *Log) Append(recs ...*Record) ([]Ptr, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ptrs := make([]Ptr, 0, len(recs))
	var batch []byte
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := l.flushBatchLocked(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for _, r := range recs {
		r.LSN = l.nextLSN
		l.nextLSN++
		frame := Encode(r)
		if l.curW == nil || l.segs[l.cur].size+int64(len(frame)) > l.opts.SegmentSize {
			if err := flush(); err != nil {
				return nil, err
			}
			num, w, err := l.newSegmentLocked(false)
			if err != nil {
				return nil, err
			}
			l.cur, l.curW = num, w
		}
		st := l.segs[l.cur]
		off := st.size
		batch = append(batch, frame...)
		st.size += int64(len(frame))
		st.dataEnd = st.size
		ptrs = append(ptrs, Ptr{Seg: l.cur, Off: off, Len: uint32(len(frame))})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if l.hook != nil {
		published := make([]Record, len(recs))
		for i, r := range recs {
			published[i] = *r
		}
		l.hook(published)
	}
	return ptrs, nil
}

// flushBatchLocked writes one coalesced frame batch to the current
// segment, consulting the "wal.append" fault point. Injected outcomes
// model the real failure shapes: Partial writes a prefix of the batch
// (a torn tail), a bare Err drops the whole batch (an fsync-lost
// suffix), FlipBit corrupts a bit in flight (latent on-disk damage
// that only a CRC check or scrub will notice). On any non-crash write
// failure the segment is repaired in place — truncated back to the
// last durable record boundary — so the log keeps serving; a crash
// outcome leaves the torn bytes on disk, exactly as a dead process
// would.
func (l *Log) flushBatchLocked(batch []byte) error {
	st := l.segs[l.cur]
	start := st.size - int64(len(batch))
	fail := func(written int, err error) error {
		if !fault.Crashed(err) {
			l.repairTornLocked(l.cur, start)
		} else {
			// The process is "dead": record reality (start + the torn
			// prefix) so a same-process reopen in the crash harness
			// does not consult in-memory state past the tear.
			st.size = start + int64(written)
			st.dataEnd = st.size
		}
		return fmt.Errorf("wal: append seg %d: %w", l.cur, err)
	}
	if o := l.opts.Faults.Fire("wal.append"); o.Injected() {
		p := batch
		if o.FlipBit {
			p = append([]byte(nil), batch...)
			fault.Corrupt(p, o.Token)
		}
		if o.Partial > 0 && o.Partial < 1 {
			torn := int(float64(len(p)) * o.Partial)
			if torn == 0 {
				torn = 1
			}
			if _, werr := l.curW.Write(p[:torn]); werr != nil {
				return fail(0, werr)
			}
			err := o.Err
			if err == nil {
				err = fault.ErrInjected
			}
			return fail(torn, fmt.Errorf("torn after %d/%d bytes: %w", torn, len(p), err))
		}
		if o.Err != nil {
			return fail(0, o.Err)
		}
		if _, err := l.curW.Write(p); err != nil {
			return fail(0, err)
		}
		return nil
	}
	if _, err := l.curW.Write(batch); err != nil {
		return fail(0, err)
	}
	return nil
}

// repairTornLocked restores a segment to its last durable record
// boundary after a failed batch write: the DFS file is truncated to
// cut any torn prefix of the failed batch, and the in-memory state is
// rolled back to match. The caller's append returns an error, so
// nothing in the failed batch was acknowledged.
func (l *Log) repairTornLocked(num uint32, dataEnd int64) {
	st, ok := l.segs[num]
	if !ok {
		return
	}
	path := l.SegmentPath(num)
	if size, err := l.fs.Size(path); err == nil && size > dataEnd {
		// Truncation failing here is unrecoverable in place: rotate so
		// the garbage tail is never appended after. The torn frame then
		// sits at the end of a sealed segment, which recovery treats as
		// loud corruption — strictly safer than serving on top of it.
		if terr := l.fs.Truncate(path, dataEnd); terr != nil {
			st.size = size
			st.dataEnd = dataEnd
			if l.cur == num && l.curW != nil {
				l.curW.Close()
				l.cur, l.curW = 0, nil
			}
			return
		}
	}
	st.size = dataEnd
	st.dataEnd = dataEnd
}

// SetAppendHook installs a callback invoked with every durably appended
// record batch, while the append lock is still held — so invocations
// across concurrent writers are serialised in strict LSN order, which
// is what a changefeed's live tail needs. The hook must be fast, must
// not block, and must not call back into the Log. Pass nil to remove.
func (l *Log) SetAppendHook(hook func([]Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = hook
}

// Rotate forces the next append into a new segment.
func (l *Log) Rotate() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.curW != nil {
		l.curW.Close()
		l.curW = nil
		l.cur = 0
	}
}

// ActiveSegment returns the segment currently open for append (0 =
// none). The auto compactor excludes it from rewrite candidates.
func (l *Log) ActiveSegment() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

func (l *Log) reader(num uint32) (*dfs.Reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readerLocked(num)
}

func (l *Log) readerLocked(num uint32) (*dfs.Reader, error) {
	if r, ok := l.readers[num]; ok {
		return r, nil
	}
	// Doomed segments stay readable until their last pin drops: an
	// in-flight iterator holding Ptrs into a compacted-away segment
	// finishes against the still-present file.
	if _, ok := l.segs[num]; !ok {
		return nil, fmt.Errorf("wal: segment %d not live", num)
	}
	r, err := l.fs.Open(l.SegmentPath(num))
	if err != nil {
		return nil, err
	}
	l.readers[num] = r
	return r, nil
}

// Pin takes a reference on each given segment, deferring its physical
// deletion (RemoveSegments) until the matching Unpin. Unknown segments
// are ignored. Scanners and batch readers pin the segments they touch
// so compaction never deletes a file under an in-flight read.
func (l *Log) Pin(nums ...uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, n := range nums {
		if st, ok := l.segs[n]; ok {
			st.pins++
		}
	}
}

// Unpin releases references taken by Pin, physically deleting any
// doomed segment whose last pin drops.
func (l *Log) Unpin(nums ...uint32) {
	l.mu.Lock()
	var doomed []uint32
	for _, n := range nums {
		st, ok := l.segs[n]
		if !ok {
			continue
		}
		if st.pins > 0 {
			st.pins--
		}
		if st.doomed && st.pins == 0 {
			doomed = append(doomed, n)
		}
	}
	l.mu.Unlock()
	for _, n := range doomed {
		l.finalizeRemove(n)
	}
}

// PinAll pins every live segment and returns their numbers (pass them
// to Unpin when done). Long scans use it to hold the whole snapshot
// they started on.
func (l *Log) PinAll() []uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint32, 0, len(l.order))
	for _, n := range l.order {
		l.segs[n].pins++
		out = append(out, n)
	}
	return out
}

// Read fetches the record at ptr. This is the single-seek read path the
// in-memory index enables (paper §3.5).
func (l *Log) Read(ptr Ptr) (Record, error) {
	l.Pin(ptr.Seg)
	defer l.Unpin(ptr.Seg)
	r, err := l.reader(ptr.Seg)
	if err != nil {
		return Record{}, err
	}
	buf := make([]byte, ptr.Len)
	if _, err := r.ReadAt(buf, ptr.Off); err != nil && err != io.EOF {
		return Record{}, fmt.Errorf("wal: read %v: %w", ptr, err)
	}
	rec, _, err := Decode(buf)
	if err != nil {
		return Record{}, fmt.Errorf("wal: decode %v: %w", ptr, err)
	}
	return rec, nil
}

// Segments lists live segments in append order.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.order))
	for _, num := range l.order {
		st := l.segs[num]
		out = append(out, SegmentInfo{Num: num, Size: st.size, Sorted: st.sorted, Garbage: st.garbage})
	}
	return out
}

// SegmentMeta returns the footer metadata of a sorted segment (nil for
// unsorted, unknown, or doomed segments).
func (l *Log) SegmentMeta(num uint32) *SegmentMeta {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.segs[num]; ok && !st.doomed {
		return st.meta
	}
	return nil
}

// AddGarbage credits n superseded record bytes to a segment. Callers
// (the tablet server) invoke it as versions become unreachable —
// deletes, retention-bound overflows, stale same-timestamp rewrites —
// so Garbage/Size approximates how much of a segment a rewrite would
// reclaim.
func (l *Log) AddGarbage(num uint32, n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.segs[num]; ok {
		st.garbage += n
		if st.garbage > st.size {
			st.garbage = st.size
		}
	}
}

// SetGarbage replaces a segment's garbage counter — the recovery-time
// audit recomputes what Open could not know (counters are in-memory
// and die with the process).
func (l *Log) SetGarbage(num uint32, n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.segs[num]; ok {
		if n > st.size {
			n = st.size
		}
		st.garbage = n
	}
}

// Size returns the total live log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, num := range l.order {
		n += l.segs[num].size
	}
	return n
}

// End returns the position one past the last durable byte.
func (l *Log) End() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == 0 {
		if len(l.order) == 0 {
			return Position{}
		}
		last := l.order[len(l.order)-1]
		return Position{Seg: last, Off: l.segs[last].size}
	}
	return Position{Seg: l.cur, Off: l.segs[l.cur].size}
}

// SegmentWriter writes records (with pre-assigned LSNs) into brand-new
// segments, used by compaction to lay down sorted runs while the main
// log keeps serving appends. Sorted writers append a footer (min/max
// clustering key, row/LSN counts, sparse block index) to every segment
// they finish.
type SegmentWriter struct {
	l      *Log
	sorted bool
	cur    uint32
	w      *dfs.Writer
	size   int64
	nums   []uint32

	meta       SegmentMeta
	lastSample int64 // record-area bytes at the last sparse sample
}

// NewSegmentWriter starts a writer for fresh (not yet installed)
// segments. The segments are live for reads as soon as written but only
// become part of the scan order; InstallCompaction swaps them in as the
// canonical set.
func (l *Log) NewSegmentWriter(sorted bool) *SegmentWriter {
	return &SegmentWriter{l: l, sorted: sorted}
}

// Append writes rec (keeping its existing LSN) and returns its pointer.
func (s *SegmentWriter) Append(rec *Record) (Ptr, error) {
	frame := Encode(rec)
	if s.w == nil || s.size+int64(len(frame)) > s.l.opts.SegmentSize {
		if err := s.finishSegment(); err != nil {
			return Ptr{}, err
		}
		s.l.mu.Lock()
		num, w, err := s.l.newSegmentLocked(s.sorted)
		s.l.mu.Unlock()
		if err != nil {
			return Ptr{}, err
		}
		s.cur, s.w, s.size = num, w, segHeaderSize
		s.meta = SegmentMeta{}
		s.lastSample = -1
		s.nums = append(s.nums, num)
	}
	off := s.size
	if _, err := s.w.Write(frame); err != nil {
		return Ptr{}, fmt.Errorf("wal: compaction append seg %d: %w", s.cur, err)
	}
	s.size += int64(len(frame))
	if s.sorted {
		s.noteRecord(rec, off)
	}
	s.l.mu.Lock()
	st := s.l.segs[s.cur]
	st.size = s.size
	st.dataEnd = s.size
	s.l.mu.Unlock()
	return Ptr{Seg: s.cur, Off: off, Len: uint32(len(frame))}, nil
}

// noteRecord folds one appended record into the pending footer.
func (s *SegmentWriter) noteRecord(rec *Record, off int64) {
	k := RecordKey{Table: rec.Table, Group: rec.Group, Key: rec.Key}
	if s.meta.Rows == 0 {
		s.meta.Min, s.meta.Max = k, k
		s.meta.MinLSN, s.meta.MaxLSN = rec.LSN, rec.LSN
	} else {
		if k.Compare(s.meta.Min) < 0 {
			s.meta.Min = k
		}
		if k.Compare(s.meta.Max) > 0 {
			s.meta.Max = k
		}
		if rec.LSN < s.meta.MinLSN {
			s.meta.MinLSN = rec.LSN
		}
		if rec.LSN > s.meta.MaxLSN {
			s.meta.MaxLSN = rec.LSN
		}
	}
	s.meta.Rows++
	if s.lastSample < 0 || off-s.lastSample >= sparseIndexStride {
		kc := RecordKey{Table: k.Table, Group: k.Group, Key: append([]byte(nil), k.Key...)}
		s.meta.Sparse = append(s.meta.Sparse, SparseEntry{Key: kc, TS: rec.TS, Off: off})
		s.lastSample = off
	}
}

// finishSegment closes the current output segment, writing its footer.
func (s *SegmentWriter) finishSegment() error {
	if s.w == nil {
		return nil
	}
	if s.sorted && s.meta.Rows > 0 {
		footer := encodeFooter(&s.meta)
		if _, err := s.w.Write(footer); err != nil {
			return fmt.Errorf("wal: segment %d footer: %w", s.cur, err)
		}
		s.l.mu.Lock()
		st := s.l.segs[s.cur]
		st.size += int64(len(footer))
		m := s.meta // value copy; the writer's meta resets on rotation
		st.meta = &m
		s.l.mu.Unlock()
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// Segments returns the segment numbers written so far.
func (s *SegmentWriter) Segments() []uint32 { return append([]uint32(nil), s.nums...) }

// Close finishes the writer, sealing the last segment (and writing its
// footer for sorted writers).
func (s *SegmentWriter) Close() error {
	return s.finishSegment()
}

// RemoveSegments drops the given segments from the live set; files are
// deleted immediately when unpinned, otherwise deletion is deferred to
// the last Unpin (in-flight scanners and readers finish safely against
// the doomed file, while new scans no longer see it).
func (l *Log) RemoveSegments(nums ...uint32) error {
	l.mu.Lock()
	remove := make(map[uint32]bool, len(nums))
	for _, n := range nums {
		remove[n] = true
	}
	var kept []uint32
	for _, n := range l.order {
		if !remove[n] {
			kept = append(kept, n)
		}
	}
	l.order = kept
	var deletable []uint32
	for _, n := range nums {
		st, ok := l.segs[n]
		if !ok || st.doomed {
			continue
		}
		st.doomed = true
		if l.cur == n {
			l.curW.Close()
			l.cur, l.curW = 0, nil
		}
		if st.pins == 0 {
			deletable = append(deletable, n)
		}
	}
	l.mu.Unlock()
	var errs []error
	for _, n := range deletable {
		if err := l.finalizeRemove(n); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// finalizeRemove deletes a doomed, unpinned segment's file and forgets
// its state.
func (l *Log) finalizeRemove(num uint32) error {
	l.mu.Lock()
	st, ok := l.segs[num]
	if !ok || !st.doomed || st.pins != 0 {
		l.mu.Unlock()
		return nil
	}
	delete(l.segs, num)
	if r, ok := l.readers[num]; ok {
		r.Close()
		delete(l.readers, num)
	}
	l.mu.Unlock()
	return l.fs.Delete(l.SegmentPath(num))
}

// Scanner iterates records in log order starting at a position. The
// recovery redo pass and compaction both use it. Reads are buffered in
// large chunks so scanning is sequential I/O: each refill continues
// exactly where the previous read ended (the partial frame at the
// buffer tail is carried over, not re-read), so a sweep costs one seek
// per segment plus pure transfer. The scanner pins the segments it will
// visit; they unpin automatically at end-of-log, or on Close for
// early-exiting callers.
type Scanner struct {
	l    *Log
	segs []uint32
	idx  int
	r    *dfs.Reader
	size int64
	off  int64

	win readWindow

	pinned []uint32

	rec Record
	ptr Ptr
	err error
}

// scanChunkSize is the scanner's read-ahead unit.
const scanChunkSize = 256 << 10

// NewScanner returns a scanner positioned at from (zero value = start of
// log). Only segments >= from.Seg are visited. Call Close when
// abandoning the scan before the end of the log; a scan driven to
// completion releases its segment pins automatically.
func (l *Log) NewScanner(from Position) *Scanner {
	l.mu.Lock()
	var segs []uint32
	for _, n := range l.order {
		if n >= from.Seg {
			segs = append(segs, n)
			l.segs[n].pins++
		}
	}
	l.mu.Unlock()
	s := &Scanner{l: l, segs: segs, pinned: append([]uint32(nil), segs...)}
	if len(segs) > 0 && segs[0] == from.Seg && from.Off > segHeaderSize {
		s.off = from.Off
	}
	return s
}

// Close releases the scanner's segment pins. Idempotent; Next returning
// false calls it automatically.
func (s *Scanner) Close() {
	if s.pinned != nil {
		s.l.Unpin(s.pinned...)
		s.pinned = nil
	}
}

// window returns the bytes at the current offset via the shared
// contiguous read-ahead buffer (readWindow).
func (s *Scanner) window(want int) ([]byte, error) {
	return s.win.at(s.r, s.off, s.size, want, scanChunkSize)
}

// Next advances to the next record, returning false at end of log or on
// error (check Err).
func (s *Scanner) Next() bool {
	for {
		if s.r == nil {
			if s.idx >= len(s.segs) {
				s.Close()
				return false
			}
			num := s.segs[s.idx]
			r, err := s.l.reader(num)
			if err != nil {
				s.err = err
				s.Close()
				return false
			}
			s.l.mu.Lock()
			size := s.l.segs[num].dataEnd
			s.l.mu.Unlock()
			s.r = r
			s.size = size
			if s.off < segHeaderSize {
				s.off = segHeaderSize
			}
		}
		if s.off >= s.size {
			s.r = nil
			s.idx++
			s.off = 0
			s.win.reset()
			continue
		}
		frame, err := s.window(frameHeaderSize)
		if err != nil {
			s.err = err
			s.Close()
			return false
		}
		if len(frame) >= frameHeaderSize {
			n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
			if len(frame) < frameHeaderSize+n {
				if frame, err = s.window(frameHeaderSize + n); err != nil {
					s.err = err
					s.Close()
					return false
				}
			}
		}
		rec, consumed, derr := Decode(frame)
		if derr != nil {
			if errors.Is(derr, ErrTorn) && s.idx == len(s.segs)-1 {
				// Torn tail write in the active (last) segment: the
				// in-flight append died mid-frame and was never
				// acknowledged. Recovery truncates here.
				s.Close()
				return false
			}
			// Anything else — a CRC mismatch anywhere, or a torn frame
			// in a sealed segment — is interior corruption: durable,
			// possibly acknowledged records are damaged. Surface the
			// exact location and fail loudly; silently skipping would
			// drop every record after this point.
			s.err = &CorruptionError{Segment: s.segs[s.idx], Off: s.off, Err: derr}
			s.Close()
			return false
		}
		s.rec = rec
		s.ptr = Ptr{Seg: s.segs[s.idx], Off: s.off, Len: uint32(consumed)}
		s.off += int64(consumed)
		return true
	}
}

// Record returns the current record.
func (s *Scanner) Record() Record { return s.rec }

// Ptr returns the current record's location.
func (s *Scanner) Ptr() Ptr { return s.ptr }

// Err returns the first error encountered.
func (s *Scanner) Err() error { return s.err }
