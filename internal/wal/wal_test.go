package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfs"
)

func newTestLog(t *testing.T, opts Options) (*Log, *dfs.DFS) {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	l, err := Open(fs, "wal", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, fs
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindWrite, LSN: 1, Table: "t", Tablet: "t/0", Group: "cg", Key: []byte("k"), TS: 42, Value: []byte("v"), TxnID: 9},
		{Kind: KindDelete, LSN: 2, Table: "t", Tablet: "t/0", Group: "cg", Key: []byte("gone"), TS: 43},
		{Kind: KindCommit, LSN: 3, TxnID: 9, TS: 44},
		{Kind: KindCheckpoint, LSN: 4, Table: "t"},
		{Kind: KindWrite, LSN: 5, Key: []byte{}, Value: []byte{}}, // empty but present
	}
	for i, want := range recs {
		frame := Encode(&want)
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("rec %d: Decode: %v", i, err)
		}
		if n != len(frame) {
			t.Errorf("rec %d: consumed %d of %d", i, n, len(frame))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rec %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDeleteValueIsNil(t *testing.T) {
	r := Record{Kind: KindDelete, Key: []byte("k"), Value: []byte("ignored")}
	got, _, err := Decode(Encode(&r))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Value != nil {
		t.Errorf("delete record kept value %q; invalidated entries must have null data", got.Value)
	}
}

func TestDecodeQuickRoundTrip(t *testing.T) {
	f := func(table, tablet, group string, key, value []byte, ts int64, txn uint64) bool {
		if len(table) > 1000 || len(tablet) > 1000 || len(group) > 1000 {
			return true
		}
		want := Record{Kind: KindWrite, Table: table, Tablet: tablet, Group: group,
			Key: key, TS: ts, Value: value, TxnID: txn}
		got, _, err := Decode(Encode(&want))
		if err != nil {
			return false
		}
		// nil/empty normalisation: encode preserves nil-ness only via presence flag.
		return got.Table == want.Table && got.Tablet == want.Tablet && got.Group == want.Group &&
			bytes.Equal(got.Key, want.Key) && bytes.Equal(got.Value, want.Value) &&
			got.TS == want.TS && got.TxnID == want.TxnID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	r := Record{Kind: KindWrite, Key: []byte("k"), Value: []byte("v")}
	frame := Encode(&r)

	if _, _, err := Decode(frame[:3]); !errors.Is(err, ErrTorn) {
		t.Errorf("short header err = %v, want ErrTorn", err)
	}
	if _, _, err := Decode(frame[:len(frame)-1]); !errors.Is(err, ErrTorn) {
		t.Errorf("truncated payload err = %v, want ErrTorn", err)
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped byte err = %v, want ErrCorrupt", err)
	}
}

func TestAppendAssignsLSNsAndPtrs(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 1 << 20})
	var recs []*Record
	for i := 0; i < 10; i++ {
		recs = append(recs, &Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: []byte("v")})
	}
	ptrs, err := l.Append(recs...)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Errorf("rec %d LSN = %d, want %d", i, r.LSN, i+1)
		}
		got, err := l.Read(ptrs[i])
		if err != nil {
			t.Fatalf("Read %v: %v", ptrs[i], err)
		}
		if !bytes.Equal(got.Key, r.Key) || got.LSN != r.LSN {
			t.Errorf("rec %d read back %+v", i, got)
		}
	}
	if l.NextLSN() != 11 {
		t.Errorf("NextLSN = %d, want 11", l.NextLSN())
	}
}

func TestSegmentRotation(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 512})
	for i := 0; i < 50; i++ {
		if _, err := l.Append(&Record{Kind: KindWrite, Key: []byte(fmt.Sprintf("key-%03d", i)), Value: make([]byte, 100)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs := l.Segments()
	if len(segs) < 5 {
		t.Errorf("only %d segments after 50x~140B appends with 512B rotation", len(segs))
	}
	for _, s := range segs {
		if s.Size > 512+256 { // one record may straddle the threshold decision
			t.Errorf("segment %d size %d exceeds limit", s.Num, s.Size)
		}
		if s.Sorted {
			t.Errorf("append segment %d marked sorted", s.Num)
		}
	}
}

func TestScannerFullLog(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 300})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(&Record{Kind: KindWrite, Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("val")}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s := l.NewScanner(Position{})
	var got int
	for s.Next() {
		rec := s.Record()
		if rec.LSN != uint64(got+1) {
			t.Errorf("scan order broken: LSN %d at position %d", rec.LSN, got)
		}
		// Ptr must round-trip through Read.
		back, err := l.Read(s.Ptr())
		if err != nil {
			t.Fatalf("Read(%v): %v", s.Ptr(), err)
		}
		if back.LSN != rec.LSN {
			t.Errorf("ptr mismatch: %d vs %d", back.LSN, rec.LSN)
		}
		got++
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan error: %v", err)
	}
	if got != n {
		t.Errorf("scanned %d records, want %d", got, n)
	}
}

func TestScannerFromPosition(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 1 << 20})
	var ptrs []Ptr
	for i := 0; i < 20; i++ {
		p, err := l.Append(&Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: []byte("v")})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		ptrs = append(ptrs, p[0])
	}
	mid := ptrs[10]
	s := l.NewScanner(Position{Seg: mid.Seg, Off: mid.Off})
	var lsns []uint64
	for s.Next() {
		lsns = append(lsns, s.Record().LSN)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(lsns) != 10 || lsns[0] != 11 {
		t.Errorf("tail scan got LSNs %v, want 11..20", lsns)
	}
}

func TestScannerStopsAtTornTail(t *testing.T) {
	l, fs := newTestLog(t, Options{SegmentSize: 1 << 20})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(&Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: []byte("v")}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Simulate a torn write: raw garbage shorter than a frame header's
	// promised length at the end of the current segment.
	segs := l.Segments()
	last := segs[len(segs)-1]
	w, err := fs.OpenAppend(l.SegmentPath(last.Num))
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	w.Write([]byte{200, 0, 0, 0, 1, 2, 3}) // claims 200-byte payload, provides 3
	l.mu.Lock()
	l.segs[last.Num].size += 7
	l.mu.Unlock()

	s := l.NewScanner(Position{})
	var n int
	for s.Next() {
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatalf("torn tail must not error, got %v", err)
	}
	if n != 5 {
		t.Errorf("scanned %d records, want 5 (tail truncated)", n)
	}
}

func TestReopenDiscoversSegments(t *testing.T) {
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	l1, err := Open(fs, "wal", Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		l1.Append(&Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: make([]byte, 50)})
	}
	nSegs := len(l1.Segments())

	l2, err := Open(fs, "wal", Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(l2.Segments()) != nSegs {
		t.Errorf("reopen found %d segments, want %d", len(l2.Segments()), nSegs)
	}
	s := l2.NewScanner(Position{})
	var n int
	var maxLSN uint64
	for s.Next() {
		n++
		if s.Record().LSN > maxLSN {
			maxLSN = s.Record().LSN
		}
	}
	if n != 20 || maxLSN != 20 {
		t.Errorf("reopened scan: %d records, max LSN %d", n, maxLSN)
	}
	// New appends go to a fresh segment numbered after the old ones.
	l2.SetNextLSN(maxLSN + 1)
	ptrs, err := l2.Append(&Record{Kind: KindWrite, Key: []byte("new"), Value: []byte("v")})
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if ptrs[0].Seg <= l1.Segments()[nSegs-1].Num {
		t.Errorf("append reused old segment %d", ptrs[0].Seg)
	}
	rec, err := l2.Read(ptrs[0])
	if err != nil || rec.LSN != 21 {
		t.Errorf("post-reopen record = %+v err=%v, want LSN 21", rec, err)
	}
}

func TestSegmentWriterAndRemove(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 400})
	for i := 0; i < 20; i++ {
		l.Append(&Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: make([]byte, 60)})
	}
	oldSegs := l.Segments()

	// "Compaction": rewrite records 10..19 into sorted segments.
	sw := l.NewSegmentWriter(true)
	var newPtrs []Ptr
	s := l.NewScanner(Position{})
	for s.Next() {
		rec := s.Record()
		if rec.LSN > 10 {
			p, err := sw.Append(&rec)
			if err != nil {
				t.Fatalf("SegmentWriter.Append: %v", err)
			}
			newPtrs = append(newPtrs, p)
		}
	}
	sw.Close()
	var oldNums []uint32
	for _, si := range oldSegs {
		oldNums = append(oldNums, si.Num)
	}
	if err := l.RemoveSegments(oldNums...); err != nil {
		t.Fatalf("RemoveSegments: %v", err)
	}

	// The new sorted segments must be flagged and readable.
	segs := l.Segments()
	if len(segs) != len(sw.Segments()) {
		t.Fatalf("live segments %v, want %v", segs, sw.Segments())
	}
	for _, si := range segs {
		if !si.Sorted {
			t.Errorf("compacted segment %d not flagged sorted", si.Num)
		}
	}
	for _, p := range newPtrs {
		if _, err := l.Read(p); err != nil {
			t.Errorf("Read(%v) after install: %v", p, err)
		}
	}
	// Old pointers must now fail.
	if _, err := l.Read(Ptr{Seg: oldNums[0], Off: 8, Len: 16}); err == nil {
		t.Error("read of removed segment succeeded")
	}
}

func TestSortedFlagSurvivesReopen(t *testing.T) {
	fs, _ := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	l1, _ := Open(fs, "wal", Options{})
	sw := l1.NewSegmentWriter(true)
	sw.Append(&Record{Kind: KindWrite, LSN: 1, Key: []byte("a"), Value: []byte("v")})
	sw.Close()

	l2, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	segs := l2.Segments()
	if len(segs) != 1 || !segs[0].Sorted {
		t.Errorf("segments after reopen = %+v, want one sorted", segs)
	}
}

func TestBatcherGroupCommit(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 1 << 20})
	b := NewBatcher(l, 16, 2*time.Millisecond)

	const writers = 16
	var wg sync.WaitGroup
	lsns := make(chan uint64, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := &Record{Kind: KindWrite, Key: []byte{byte(i)}, Value: []byte("v")}
			ptrs, err := b.Append(rec)
			if err != nil {
				t.Errorf("batched append: %v", err)
				return
			}
			got, err := l.Read(ptrs[0])
			if err != nil || !bytes.Equal(got.Key, rec.Key) {
				t.Errorf("read own write: %+v err=%v", got, err)
				return
			}
			lsns <- rec.LSN
		}(i)
	}
	wg.Wait()
	close(lsns)
	seen := map[uint64]bool{}
	for lsn := range lsns {
		if seen[lsn] {
			t.Errorf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != writers {
		t.Errorf("%d distinct LSNs, want %d", len(seen), writers)
	}
}

func TestBatcherMultiRecordAtomicOrder(t *testing.T) {
	l, _ := newTestLog(t, Options{})
	b := NewBatcher(l, 8, time.Millisecond)
	recs := []*Record{
		{Kind: KindWrite, Key: []byte("a"), Value: []byte("1")},
		{Kind: KindWrite, Key: []byte("b"), Value: []byte("2")},
		{Kind: KindCommit, TxnID: 7},
	}
	ptrs, err := b.Append(recs...)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(ptrs) != 3 {
		t.Fatalf("got %d ptrs", len(ptrs))
	}
	// The group's records must be consecutive in LSN order.
	if recs[1].LSN != recs[0].LSN+1 || recs[2].LSN != recs[1].LSN+1 {
		t.Errorf("group not consecutive: %d %d %d", recs[0].LSN, recs[1].LSN, recs[2].LSN)
	}
}

func TestLogSizeAndEnd(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 1 << 20})
	if l.Size() != 0 {
		t.Errorf("empty log size = %d", l.Size())
	}
	l.Append(&Record{Kind: KindWrite, Key: []byte("k"), Value: []byte("v")})
	end := l.End()
	if end.Seg == 0 && end.Off == 0 {
		t.Error("End() still zero after append")
	}
	if l.Size() <= segHeaderSize {
		t.Errorf("size = %d, want > header", l.Size())
	}
}

func TestConcurrentAppendsDistinctPtrs(t *testing.T) {
	l, _ := newTestLog(t, Options{SegmentSize: 2048})
	var mu sync.Mutex
	all := map[Ptr]bool{}
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = 10 + rng.Intn(100)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ptrs, err := l.Append(&Record{Kind: KindWrite, Key: []byte{byte(g), byte(i)}, Value: make([]byte, sizes[g])})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				mu.Lock()
				if all[ptrs[0]] {
					t.Errorf("duplicate ptr %v", ptrs[0])
				}
				all[ptrs[0]] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	// Every pointer resolves to its record.
	for p := range all {
		if _, err := l.Read(p); err != nil {
			t.Errorf("Read(%v): %v", p, err)
		}
	}
}
