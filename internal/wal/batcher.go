package wal

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Batcher implements group commit (paper §3.7.2): concurrent appenders
// are coalesced into one log write to amortise the persistence cost.
// Every Append call still blocks until its records are durable.
//
// The batcher owns one background goroutine that collects entries from
// concurrent appenders until the batch is full or the delay expires,
// then flushes them as a single log append. Close stops the goroutine
// (flushing anything buffered); a closed batcher degrades to direct
// appends so shutdown races never lose durability.
type Batcher struct {
	log *Log
	// maxBatch is the largest number of entries coalesced into one log
	// write.
	maxBatch int
	// maxDelay bounds how long the collector waits for followers.
	maxDelay time.Duration

	// ch is unbuffered on purpose: a send only completes when the
	// collector goroutine receives it, so after Close has drained, no
	// entry can be stranded in a buffer with nobody left to flush it.
	ch        chan batchEntry
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// flushDur / flushRecords, when set via SetMetrics, record each
	// group-commit flush's latency and coalesced record count.
	flushDur     *obs.Histogram
	flushRecords *obs.Histogram
}

type batchEntry struct {
	recs []*Record
	done chan batchResult
}

type batchResult struct {
	ptrs []Ptr
	err  error
}

// NewBatcher wraps log with group commit. maxBatch <= 1 degenerates to
// direct appends (no goroutine is started); maxDelay zero means 200µs.
func NewBatcher(log *Log, maxBatch int, maxDelay time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 200 * time.Microsecond
	}
	b := &Batcher{
		log:      log,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		ch:       make(chan batchEntry),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if b.maxBatch > 1 {
		go b.run()
	} else {
		close(b.done)
	}
	return b
}

// run is the collector loop: wait for a first entry, give followers a
// short window to pile on, flush the batch, repeat.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		select {
		case e := <-b.ch:
			b.collect(e)
		case <-b.quit:
			// Drain entries from appenders that won the send race against
			// Close, then exit.
			for {
				select {
				case e := <-b.ch:
					b.flush([]batchEntry{e})
				default:
					return
				}
			}
		}
	}
}

// collect gathers followers behind the first entry until the batch is
// full or the delay window closes, then flushes.
func (b *Batcher) collect(first batchEntry) {
	batch := []batchEntry{first}
	count := len(first.recs)
	timer := time.NewTimer(b.maxDelay)
	defer timer.Stop()
	for count < b.maxBatch {
		select {
		case e := <-b.ch:
			batch = append(batch, e)
			count += len(e.recs)
		case <-timer.C:
			b.flush(batch)
			return
		case <-b.quit:
			b.flush(batch)
			return
		}
	}
	b.flush(batch)
}

// SetMetrics wires flush instrumentation. Call before the first
// Append: the collector goroutine reads these fields only after
// receiving an entry, and the channel send orders that read after any
// writes the appending side (transitively) performed.
func (b *Batcher) SetMetrics(flushDur, flushRecords *obs.Histogram) {
	b.flushDur = flushDur
	b.flushRecords = flushRecords
}

// flush appends every entry's records as one log write and hands each
// appender its pointers.
func (b *Batcher) flush(batch []batchEntry) {
	var all []*Record
	for _, e := range batch {
		all = append(all, e.recs...)
	}
	var t0 time.Time
	if b.flushDur != nil {
		t0 = time.Now()
	}
	ptrs, err := b.log.Append(all...)
	if b.flushDur != nil {
		b.flushDur.Observe(time.Since(t0))
		b.flushRecords.ObserveValue(int64(len(all)))
	}
	off := 0
	for _, e := range batch {
		var res batchResult
		if err != nil {
			res.err = err
		} else {
			res.ptrs = ptrs[off : off+len(e.recs)]
		}
		off += len(e.recs)
		e.done <- res
	}
}

// Append durably appends recs (as one atomic group within the batch)
// and returns their pointers.
func (b *Batcher) Append(recs ...*Record) ([]Ptr, error) {
	if b.maxBatch <= 1 {
		return b.log.Append(recs...)
	}
	entry := batchEntry{recs: recs, done: make(chan batchResult, 1)}
	select {
	case b.ch <- entry:
		res := <-entry.done
		return res.ptrs, res.err
	case <-b.quit:
		// Batcher shut down: append directly so the write stays durable.
		return b.log.Append(recs...)
	}
}

// Close stops the collector goroutine, flushing anything in flight.
// Appends issued after Close fall through to direct log appends.
// Idempotent and safe to call concurrently with Append.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.quit) })
	<-b.done
}
