package wal

import (
	"sync"
	"time"
)

// Batcher implements group commit (paper §3.7.2): concurrent appenders
// are coalesced into one log write to amortise the persistence cost.
// Every Append call still blocks until its records are durable.
type Batcher struct {
	log *Log
	// MaxBatch is the largest number of records coalesced into one log
	// write.
	maxBatch int
	// MaxDelay bounds how long the leader waits for followers.
	maxDelay time.Duration

	mu      sync.Mutex
	pending []batchEntry
	leader  bool
	// full is closed by the follower that fills the batch, releasing
	// the leader before its delay expires.
	full chan struct{}
}

type batchEntry struct {
	recs []*Record
	done chan batchResult
}

type batchResult struct {
	ptrs []Ptr
	err  error
}

// NewBatcher wraps log with group commit. maxBatch <= 1 degenerates to
// direct appends; maxDelay zero means 200µs.
func NewBatcher(log *Log, maxBatch int, maxDelay time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 200 * time.Microsecond
	}
	return &Batcher{log: log, maxBatch: maxBatch, maxDelay: maxDelay}
}

// Append durably appends recs (as one atomic group within the batch)
// and returns their pointers.
func (b *Batcher) Append(recs ...*Record) ([]Ptr, error) {
	if b.maxBatch == 1 {
		return b.log.Append(recs...)
	}
	entry := batchEntry{recs: recs, done: make(chan batchResult, 1)}

	b.mu.Lock()
	b.pending = append(b.pending, entry)
	if b.leader {
		// A leader is already collecting; wait for it to flush us. If we
		// just filled the batch, release the leader immediately.
		if len(b.pending) >= b.maxBatch && b.full != nil {
			close(b.full)
			b.full = nil
		}
		b.mu.Unlock()
		res := <-entry.done
		return res.ptrs, res.err
	}
	b.leader = true
	full := make(chan struct{})
	b.full = full
	b.mu.Unlock()

	// Leader: give followers a short window to pile on.
	deadline := time.NewTimer(b.maxDelay)
	select {
	case <-deadline.C:
	case <-full:
	}
	deadline.Stop()

	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.leader = false
	b.full = nil
	b.mu.Unlock()

	var all []*Record
	for _, e := range batch {
		all = append(all, e.recs...)
	}
	ptrs, err := b.log.Append(all...)
	off := 0
	for _, e := range batch {
		var res batchResult
		if err != nil {
			res.err = err
		} else {
			res.ptrs = ptrs[off : off+len(e.recs)]
		}
		off += len(e.recs)
		e.done <- res
	}

	// Our own entry is somewhere in the batch we just flushed.
	res := <-entry.done
	return res.ptrs, res.err
}
