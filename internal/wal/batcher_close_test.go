package wal

import (
	"sync"
	"testing"
	"time"
)

// Close must stop the collector goroutine without losing any append
// that raced with it, and appends after Close must still be durable
// (direct path).
func TestBatcherCloseFlushesAndDegradesToDirect(t *testing.T) {
	l, _ := newTestLog(t, Options{})
	b := NewBatcher(l, 8, time.Millisecond)

	var wg sync.WaitGroup
	const writers, per = 8, 50
	ptrs := make(chan Ptr, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ps, err := b.Append(&Record{Kind: KindWrite, Key: []byte{byte(w), byte(i)}, Value: []byte("v")})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				ptrs <- ps[0]
			}
		}(w)
	}
	// Close while appenders are still running: racing appends either
	// get flushed by the drain or fall through to direct appends —
	// never lost, never stuck.
	b.Close()
	wg.Wait()
	close(ptrs)
	n := 0
	for p := range ptrs {
		if _, err := l.Read(p); err != nil {
			t.Fatalf("Read(%v): %v", p, err)
		}
		n++
	}
	if n != writers*per {
		t.Fatalf("returned %d ptrs, want %d", n, writers*per)
	}

	// Idempotent Close; appends after Close remain durable.
	b.Close()
	ps, err := b.Append(&Record{Kind: KindWrite, Key: []byte("late"), Value: []byte("v")})
	if err != nil {
		t.Fatalf("Append after Close: %v", err)
	}
	if rec, err := l.Read(ps[0]); err != nil || string(rec.Key) != "late" {
		t.Fatalf("post-Close append unreadable: %+v err=%v", rec, err)
	}
}

// A degenerate batcher (maxBatch 1) starts no goroutine; Close must
// still be safe.
func TestBatcherDegenerateClose(t *testing.T) {
	l, _ := newTestLog(t, Options{})
	b := NewBatcher(l, 1, time.Millisecond)
	if _, err := b.Append(&Record{Kind: KindWrite, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	b.Close()
	b.Close()
}
