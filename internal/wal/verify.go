package wal

import (
	"errors"
	"io"
)

// VerifySegment checks a raw segment image of the given size read via
// r: the header magic, every record frame's length and CRC, and — for
// sorted segments — the footer trailer and its CRC. activeTail marks
// the segment that was open for append when the image was taken; only
// there is a trailing torn frame expected (and accepted). The first
// defect is returned as a *CorruptionError locating it; a clean image
// returns nil.
//
// The scrubber runs this per replica so a single corrupt copy is
// pinned to one datanode while the healthy copies vouch for the data.
func VerifySegment(r io.ReaderAt, size int64, seg uint32, activeTail bool) error {
	hdr := make([]byte, segHeaderSize)
	if n, err := r.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return err
	} else if n < segHeaderSize {
		return &CorruptionError{Segment: seg, Off: 0, Err: ErrTorn}
	}
	for i, m := range segMagic {
		if hdr[i] != m {
			return &CorruptionError{Segment: seg, Off: int64(i), Err: ErrCorrupt}
		}
	}
	dataEnd := size
	if hdr[6]&segFlagSorted != 0 {
		var err error
		if _, dataEnd, err = readFooter(r, size); err != nil {
			return &CorruptionError{Segment: seg, Off: size - footerTrailerSize, Err: err}
		}
	}
	var win readWindow
	off := int64(segHeaderSize)
	for off < dataEnd {
		frame, err := win.at(r, off, dataEnd, frameHeaderSize, scanChunkSize)
		if err != nil {
			return err
		}
		if len(frame) >= frameHeaderSize {
			n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
			if len(frame) < frameHeaderSize+n {
				if frame, err = win.at(r, off, dataEnd, frameHeaderSize+n, scanChunkSize); err != nil {
					return err
				}
			}
		}
		_, consumed, derr := Decode(frame)
		if derr != nil {
			if errors.Is(derr, ErrTorn) && activeTail {
				return nil
			}
			return &CorruptionError{Segment: seg, Off: off, Err: derr}
		}
		off += int64(consumed)
	}
	return nil
}
