package wal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dfs"
)

func TestReadBatch(t *testing.T) {
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	// Small segments force the batch to span several files.
	l, err := Open(fs, "log", Options{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 200
	ptrs := make([]Ptr, 0, n)
	for i := 0; i < n; i++ {
		rec := &Record{
			Kind:  KindWrite,
			Table: "t", Tablet: "t/0", Group: "g",
			Key: []byte(fmt.Sprintf("k%04d", i)), TS: int64(i),
			Value: bytes.Repeat([]byte{byte(i)}, 100),
		}
		p, err := l.Append(rec)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		ptrs = append(ptrs, p[0])
	}
	if len(l.Segments()) < 2 {
		t.Fatalf("want multiple segments, got %d", len(l.Segments()))
	}

	// Scramble the request order; results must come back in input order.
	req := make([]Ptr, n)
	for i := range req {
		req[i] = ptrs[(i*37)%n]
	}
	recs, err := l.ReadBatch(req)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		want := (i * 37) % n
		if string(rec.Key) != fmt.Sprintf("k%04d", want) || rec.TS != int64(want) {
			t.Fatalf("recs[%d] = key %q ts %d, want k%04d/%d", i, rec.Key, rec.TS, want, want)
		}
		if !bytes.Equal(rec.Value, bytes.Repeat([]byte{byte(want)}, 100)) {
			t.Fatalf("recs[%d] has wrong value", i)
		}
	}

	// Batch results must match one-at-a-time reads exactly.
	for i, p := range req[:20] {
		one, err := l.Read(p)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if one.LSN != recs[i].LSN || !bytes.Equal(one.Value, recs[i].Value) {
			t.Fatalf("batch/single mismatch at %d", i)
		}
	}
}

func TestReadBatchEmptyAndDuplicates(t *testing.T) {
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	l, err := Open(fs, "log", Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if recs, err := l.ReadBatch(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty batch: recs=%v err=%v", recs, err)
	}
	p, err := l.Append(&Record{Kind: KindWrite, Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	recs, err := l.ReadBatch([]Ptr{p[0], p[0], p[0]})
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	for i, r := range recs {
		if string(r.Value) != "v" {
			t.Fatalf("dup read %d = %q", i, r.Value)
		}
	}
}
