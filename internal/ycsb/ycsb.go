// Package ycsb re-implements the parts of the Yahoo! Cloud Serving
// Benchmark the paper's evaluation uses (§4.1, §4.3): key generators
// (Zipfian with coefficient ~1.0 over a 2·10^9 key domain, plus uniform
// and latest), a parallel loading phase, and mixed read/update phases
// with throughput and per-operation latency reporting.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// MaxKeyDomain is the paper's YCSB key domain bound (2e9).
const MaxKeyDomain = 2_000_000_000

// Generator produces item indexes in [0, n).
type Generator interface {
	Next(rng *rand.Rand) int64
}

// Uniform picks keys uniformly.
type Uniform struct{ N int64 }

// Next implements Generator.
func (u Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.N) }

// Zipfian is the standard YCSB/Gray et al. Zipfian generator: item 0 is
// the hottest. Theta 0.99 reproduces YCSB's "zipfian constant ~1.0"
// (exactly 1.0 makes the zeta series diverge).
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian builds a generator over [0, n) with the given theta
// (<= 0 means 0.99).
func NewZipfian(n int64, theta float64) *Zipfian {
	if theta <= 0 {
		theta = 0.99
	}
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	// Exact up to a cutoff, then the Euler–Maclaurin integral
	// approximation — exact summation to 2e9 would take minutes.
	const cutoff = 1_000_000
	var sum float64
	m := n
	if m > cutoff {
		m = cutoff
	}
	for i := int64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > cutoff {
		a, b := float64(cutoff), float64(n)
		sum += (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads the Zipfian head over the whole key domain
// (YCSB's default request distribution).
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian builds the scrambled variant over [0, n).
func NewScrambledZipfian(n int64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, theta), n: n}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	v := s.z.Next(rng)
	return int64(fnv64(uint64(v)) % uint64(s.n))
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// HotRange concentrates a fraction of draws on one contiguous band of
// the key domain: with probability Hot the draw is uniform in [Lo, Hi),
// otherwise uniform over [0, N). Unlike (scrambled) Zipfian — whose hot
// items spread over the whole keyspace — the hot band lands inside ONE
// key-range tablet, which is exactly the workload that pins a tablet
// server until the cluster splits and migrates the hot tablet.
type HotRange struct {
	N      int64   // key domain [0, N)
	Lo, Hi int64   // hot band [Lo, Hi), 0 <= Lo < Hi <= N
	Hot    float64 // probability a draw lands in the hot band
}

// Next implements Generator.
func (h HotRange) Next(rng *rand.Rand) int64 {
	if h.Hi > h.Lo && rng.Float64() < h.Hot {
		return h.Lo + rng.Int63n(h.Hi-h.Lo)
	}
	return rng.Int63n(h.N)
}

// Latest favours recently inserted items (the paper's workloads are
// write-heavy on fresh data).
type Latest struct {
	z *Zipfian
}

// NewLatest builds a latest-skewed generator over [0, n).
func NewLatest(n int64) *Latest { return &Latest{z: NewZipfian(n, 0.99)} }

// Next implements Generator.
func (l *Latest) Next(rng *rand.Rand) int64 {
	v := l.z.n - 1 - l.z.Next(rng)
	if v < 0 {
		return 0
	}
	return v
}

// Key renders item index i as the benchmark key (zero-padded so lexical
// order matches numeric order).
func Key(i int64) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// DB is the benchmark's view of a store; the harness adapts LogBase,
// HBase and LRS to it.
type DB interface {
	Insert(key, value []byte) error
	Update(key, value []byte) error
	Read(key []byte) error
}

// Histogram records latencies with ~1.6% relative precision using
// log-spaced buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets [256]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	// 16 sub-buckets per power of two of microseconds.
	us := float64(d) / float64(time.Microsecond)
	b := int(16 * math.Log2(us+1))
	if b < 0 {
		b = 0
	}
	if b > 255 {
		b = 255
	}
	return b
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the latency at quantile p in [0, 1].
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(p * float64(h.count))
	var cum int64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			us := math.Pow(2, float64(b)/16) - 1
			return time.Duration(us * float64(time.Microsecond))
		}
	}
	return h.max
}

// Workload describes one benchmark phase mix.
type Workload struct {
	// Records is the number of pre-loaded rows.
	Records int64
	// UpdateFraction is the probability an operation is an update
	// (0.75 and 0.95 in the paper's Figure 12).
	UpdateFraction float64
	// ValueSize is the row payload size (1 KB in the paper).
	ValueSize int
	// Dist picks keys; nil means Zipfian(records, 0.99), the paper's
	// default ("Zipfian distribution with the co-efficient set to 1.0").
	Dist Generator
}

// Result summarises one run.
type Result struct {
	Ops        int64
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	UpdateLat  *Histogram
	ReadLat    *Histogram
}

// Load bulk-inserts records over workers parallel clients, returning
// the elapsed wall time (Figure 11's metric).
func Load(db DB, records int64, valueSize, workers int, seed int64) (time.Duration, error) {
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := records / int64(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			value := make([]byte, valueSize)
			rng.Read(value)
			lo := int64(w) * per
			hi := lo + per
			if w == workers-1 {
				hi = records
			}
			for i := lo; i < hi; i++ {
				if err := db.Insert(Key(i), value); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return time.Since(start), nil
}

// Run executes ops operations of the workload mix over workers parallel
// clients (each client submits a constant workload: a completed
// operation is immediately followed by a new one, §4.1).
func Run(db DB, w Workload, ops int64, workers int, seed int64) (Result, error) {
	if workers <= 0 {
		workers = 1
	}
	dist := w.Dist
	if dist == nil {
		dist = NewZipfian(w.Records, 0.99)
	}
	res := Result{UpdateLat: &Histogram{}, ReadLat: &Histogram{}}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := ops / int64(workers)
	start := time.Now()
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 7919*int64(c)))
			value := make([]byte, w.ValueSize)
			rng.Read(value)
			n := per
			if c == workers-1 {
				n = ops - per*int64(workers-1)
			}
			for i := int64(0); i < n; i++ {
				key := Key(dist.Next(rng))
				opStart := time.Now()
				if rng.Float64() < w.UpdateFraction {
					if err := db.Update(key, value); err != nil {
						errCh <- err
						return
					}
					res.UpdateLat.Record(time.Since(opStart))
				} else {
					if err := db.Read(key); err != nil {
						errCh <- fmt.Errorf("read %s: %w", key, err)
						return
					}
					res.ReadLat.Record(time.Since(opStart))
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Ops = res.UpdateLat.Count() + res.ReadLat.Count()
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}

// Skew quantifies a sample of generator outputs: the fraction of draws
// landing in the hottest 1% of the key space (tests assert Zipfian ≫
// uniform).
func Skew(g Generator, n int64, draws int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	counts := map[int64]int{}
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	type kv struct {
		k int64
		n int
	}
	var all []kv
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	top := int(float64(n) / 100)
	if top < 1 {
		top = 1
	}
	hot := 0
	for i := 0; i < len(all) && i < top; i++ {
		hot += all[i].n
	}
	return float64(hot) / float64(draws)
}
