package ycsb

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, 0.99)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkewVsUniform(t *testing.T) {
	const n = 10000
	zs := Skew(NewZipfian(n, 0.99), n, 200000, 42)
	us := Skew(Uniform{N: n}, n, 200000, 42)
	if zs < 0.3 {
		t.Errorf("Zipfian hot-1%% share = %.3f, want heavy skew", zs)
	}
	if us > 0.05 {
		t.Errorf("uniform hot-1%% share = %.3f, want ~0.01", us)
	}
	if zs < 5*us {
		t.Errorf("skew contrast too small: zipf %.3f vs uniform %.3f", zs, us)
	}
}

func TestZipfianHeadOrdered(t *testing.T) {
	// Item 0 must be the single hottest item.
	z := NewZipfian(1000, 0.99)
	rng := rand.New(rand.NewSource(7))
	counts := map[int64]int{}
	for i := 0; i < 100000; i++ {
		counts[z.Next(rng)]++
	}
	for k, c := range counts {
		if k != 0 && c > counts[0] {
			t.Errorf("item %d (%d draws) hotter than item 0 (%d)", k, c, counts[0])
		}
	}
}

func TestZipfianLargeDomain(t *testing.T) {
	// The paper's 2e9 domain must construct quickly and stay in range.
	start := time.Now()
	z := NewZipfian(MaxKeyDomain, 0.99)
	if time.Since(start) > 2*time.Second {
		t.Errorf("construction over 2e9 domain took %v", time.Since(start))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= MaxKeyDomain {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(1000, 0.99)
	rng := rand.New(rand.NewSource(5))
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 300 {
		t.Errorf("scrambled zipfian touched only %d distinct keys", len(seen))
	}
}

func TestLatestFavoursRecent(t *testing.T) {
	l := NewLatest(1000)
	rng := rand.New(rand.NewSource(9))
	recent := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if l.Next(rng) >= 900 {
			recent++
		}
	}
	if frac := float64(recent) / draws; frac < 0.5 {
		t.Errorf("latest generator drew only %.2f from the newest 10%%", frac)
	}
}

func TestKeyOrdering(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a%MaxKeyDomain), int64(b%MaxKeyDomain)
		ka, kb := Key(x), Key(y)
		switch {
		case x < y:
			return bytes.Compare(ka, kb) < 0
		case x > y:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", mean)
	}
	p50 := h.Percentile(0.5)
	if p50 < 300*time.Microsecond || p50 > 700*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

// memDB is an in-memory DB for runner tests.
type memDB struct {
	mu    sync.Mutex
	data  map[string][]byte
	errOn string
}

func newMemDB() *memDB { return &memDB{data: map[string][]byte{}} }

func (m *memDB) Insert(key, value []byte) error { return m.Update(key, value) }

func (m *memDB) Update(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.errOn != "" && string(key) == m.errOn {
		return errors.New("injected failure")
	}
	m.data[string(key)] = append([]byte(nil), value...)
	return nil
}

func (m *memDB) Read(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[string(key)]; !ok {
		return errors.New("not found")
	}
	return nil
}

func TestLoadInsertsEverything(t *testing.T) {
	db := newMemDB()
	elapsed, err := Load(db, 1000, 64, 4, 1)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if elapsed <= 0 {
		t.Error("zero elapsed")
	}
	if len(db.data) != 1000 {
		t.Errorf("loaded %d records, want 1000", len(db.data))
	}
}

func TestRunMixedCountsAndThroughput(t *testing.T) {
	db := newMemDB()
	if _, err := Load(db, 500, 64, 2, 1); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, Workload{Records: 500, UpdateFraction: 0.75, ValueSize: 64}, 4000, 4, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops != 4000 {
		t.Errorf("Ops = %d", res.Ops)
	}
	updates := res.UpdateLat.Count()
	frac := float64(updates) / float64(res.Ops)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("update fraction = %.3f, want ~0.75", frac)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	db := newMemDB()
	Load(db, 100, 8, 1, 1)
	db.errOn = string(Key(0)) // hottest zipfian key
	_, err := Run(db, Workload{Records: 100, UpdateFraction: 1.0, ValueSize: 8}, 1000, 2, 3)
	if err == nil {
		t.Error("injected failure not propagated")
	}
}

func TestHotRangeConcentratesDraws(t *testing.T) {
	const n = 10_000
	g := HotRange{N: n, Lo: 1000, Hi: 2000, Hot: 0.9}
	rng := rand.New(rand.NewSource(42))
	in := 0
	const draws = 50_000
	for i := 0; i < draws; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("draw %d outside domain", v)
		}
		if v >= 1000 && v < 2000 {
			in++
		}
	}
	// Expected fraction: 0.9 + 0.1*(1000/10000) = 0.91.
	frac := float64(in) / draws
	if frac < 0.88 || frac > 0.94 {
		t.Fatalf("hot-band fraction = %.3f, want ~0.91", frac)
	}
	// Degenerate band falls back to uniform.
	u := HotRange{N: n, Hot: 1.0}
	for i := 0; i < 100; i++ {
		if v := u.Next(rng); v < 0 || v >= n {
			t.Fatalf("degenerate band draw %d outside domain", v)
		}
	}
}
