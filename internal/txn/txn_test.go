package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/partition"
)

const (
	tabA   = "t/0000"
	tabB   = "t/0001" // served by a second server: forces 2PC
	groupG = "cg"
)

type fixture struct {
	svc *coord.Service
	m   *Manager
	s1  *core.Server
	s2  *core.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	s1, err := core.NewServer(fs, "s1", core.Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s2, err := core.NewServer(fs, "s2", core.Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s1.AddTablet(partition.Tablet{ID: tabA, Table: "t"}, []string{groupG})
	s2.AddTablet(partition.Tablet{ID: tabB, Table: "t"}, []string{groupG})
	svc := coord.New()
	f := &fixture{svc: svc, s1: s1, s2: s2}
	f.m = NewManager(svc, ResolverFunc(func(tablet string) (*core.Server, error) {
		switch tablet {
		case tabA:
			return s1, nil
		case tabB:
			return s2, nil
		}
		return nil, fmt.Errorf("no server for %s", tablet)
	}))
	return f
}

// seed installs an initial committed version of key -> value.
func (f *fixture) seed(t *testing.T, tablet string, key, value string) {
	t.Helper()
	tx := f.m.Begin()
	if err := tx.Put(tablet, groupG, []byte(key), []byte(value)); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("seed commit: %v", err)
	}
}

func TestCommitAndReadBack(t *testing.T) {
	f := newFixture(t)
	tx := f.m.Begin()
	tx.Put(tabA, groupG, []byte("k"), []byte("v1"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	tx2 := f.m.Begin()
	v, err := tx2.Get(tabA, groupG, []byte("k"))
	if err != nil || string(v) != "v1" {
		t.Errorf("Get = %q err=%v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Errorf("read-only commit: %v", err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	f := newFixture(t)
	tx := f.m.Begin()
	tx.Put(tabA, groupG, []byte("k"), []byte("mine"))
	v, err := tx.Get(tabA, groupG, []byte("k"))
	if err != nil || string(v) != "mine" {
		t.Errorf("own write invisible: %q err=%v", v, err)
	}
	tx.Delete(tabA, groupG, []byte("k"))
	if _, err := tx.Get(tabA, groupG, []byte("k")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("own delete invisible: err=%v", err)
	}
	tx.Abort()
}

func TestAbortDiscardsWrites(t *testing.T) {
	f := newFixture(t)
	tx := f.m.Begin()
	tx.Put(tabA, groupG, []byte("k"), []byte("v"))
	tx.Abort()
	tx2 := f.m.Begin()
	if _, err := tx2.Get(tabA, groupG, []byte("k")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("aborted write visible: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after abort err = %v", err)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "x", "0")

	t1 := f.m.Begin()
	t2 := f.m.Begin()
	// Both read the same version.
	if _, err := t1.Get(tabA, groupG, []byte("x")); err != nil {
		t.Fatalf("t1 get: %v", err)
	}
	if _, err := t2.Get(tabA, groupG, []byte("x")); err != nil {
		t.Fatalf("t2 get: %v", err)
	}
	t1.Put(tabA, groupG, []byte("x"), []byte("t1"))
	t2.Put(tabA, groupG, []byte("x"), []byte("t2"))
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	// The surviving value is t1's.
	t3 := f.m.Begin()
	v, _ := t3.Get(tabA, groupG, []byte("x"))
	if string(v) != "t1" {
		t.Errorf("value = %q, want t1", v)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	// r1[x0] w2[x2] c2 w1[x1] c1 must NOT commit both.
	f := newFixture(t)
	f.seed(t, tabA, "cnt", "10")

	t1 := f.m.Begin()
	v1, _ := t1.Get(tabA, groupG, []byte("cnt"))

	t2 := f.m.Begin()
	v2, _ := t2.Get(tabA, groupG, []byte("cnt"))
	t2.Put(tabA, groupG, []byte("cnt"), append(v2, '+'))
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit: %v", err)
	}

	t1.Put(tabA, groupG, []byte("cnt"), append(v1, '!'))
	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("lost update not prevented: err = %v", err)
	}
}

func TestDirtyReadPrevented(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "d", "clean")
	t1 := f.m.Begin()
	t1.Put(tabA, groupG, []byte("d"), []byte("dirty"))
	// Concurrent reader must not see t1's uncommitted write.
	t2 := f.m.Begin()
	v, err := t2.Get(tabA, groupG, []byte("d"))
	if err != nil || string(v) != "clean" {
		t.Errorf("dirty read: got %q err=%v", v, err)
	}
	t1.Abort()
}

func TestFuzzyReadPrevented(t *testing.T) {
	// r1[x0] ... w2[x2] c2 ... r1[x] must return x0 again.
	f := newFixture(t)
	f.seed(t, tabA, "f", "v0")
	t1 := f.m.Begin()
	first, _ := t1.Get(tabA, groupG, []byte("f"))

	t2 := f.m.Begin()
	t2.Put(tabA, groupG, []byte("f"), []byte("v2"))
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2: %v", err)
	}

	second, err := t1.Get(tabA, groupG, []byte("f"))
	if err != nil || string(second) != string(first) {
		t.Errorf("fuzzy read: first %q then %q", first, second)
	}
}

func TestReadSkewPrevented(t *testing.T) {
	// r1[x0] w2[x2] w2[y2] c2 r1[y] must see y0, not y2.
	f := newFixture(t)
	f.seed(t, tabA, "x", "x0")
	f.seed(t, tabA, "y", "y0")

	t1 := f.m.Begin()
	if _, err := t1.Get(tabA, groupG, []byte("x")); err != nil {
		t.Fatal(err)
	}
	t2 := f.m.Begin()
	t2.Put(tabA, groupG, []byte("x"), []byte("x2"))
	t2.Put(tabA, groupG, []byte("y"), []byte("y2"))
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2: %v", err)
	}
	y, err := t1.Get(tabA, groupG, []byte("y"))
	if err != nil || string(y) != "y0" {
		t.Errorf("read skew: y = %q err=%v, want y0", y, err)
	}
}

func TestPhantomPrevented(t *testing.T) {
	// A snapshot range scan repeated within a transaction must not see
	// rows committed meanwhile.
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		f.seed(t, tabA, fmt.Sprintf("p/%d", i), "v")
	}
	t1 := f.m.Begin()
	count := func() int {
		n := 0
		t1.Scan(context.Background(), tabA, groupG, []byte("p/"), []byte("p/\xff"), func(core.Row) bool { n++; return true })
		return n
	}
	before := count()

	t2 := f.m.Begin()
	t2.Put(tabA, groupG, []byte("p/99"), []byte("phantom"))
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2: %v", err)
	}
	after := count()
	if before != 5 || after != 5 {
		t.Errorf("phantom: scan saw %d then %d rows", before, after)
	}
}

func TestDirtyWritePrevented(t *testing.T) {
	// w1[x1] w2[x2] with interleaved commits: the write locks serialise
	// the writers and the loser restarts; the final value is a committed
	// one, never an interleaved mess.
	f := newFixture(t)
	f.seed(t, tabA, "w", "base")
	var wg sync.WaitGroup
	results := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f.m.RunTxn(10, func(tx *Txn) error {
				if _, err := tx.Get(tabA, groupG, []byte("w")); err != nil {
					return err
				}
				return tx.Put(tabA, groupG, []byte("w"), []byte(fmt.Sprintf("writer-%d", i)))
			})
		}(i)
	}
	wg.Wait()
	if results[0] != nil || results[1] != nil {
		t.Fatalf("writers failed: %v / %v", results[0], results[1])
	}
	tx := f.m.Begin()
	v, _ := tx.Get(tabA, groupG, []byte("w"))
	if string(v) != "writer-0" && string(v) != "writer-1" {
		t.Errorf("final value %q is not a committed write", v)
	}
}

func TestWriteSkewAllowed(t *testing.T) {
	// r1[x0] r2[y0] w1[y1] w2[x2] c1 c2 — snapshot isolation permits
	// this (the paper proves LogBase "still suffers from write skew").
	f := newFixture(t)
	f.seed(t, tabA, "x", "1")
	f.seed(t, tabA, "y", "1")

	t1 := f.m.Begin()
	t2 := f.m.Begin()
	if _, err := t1.Get(tabA, groupG, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Get(tabA, groupG, []byte("y")); err != nil {
		t.Fatal(err)
	}
	t1.Put(tabA, groupG, []byte("y"), []byte("0")) // disjoint write sets
	t2.Put(tabA, groupG, []byte("x"), []byte("0"))
	if err := t1.Commit(); err != nil {
		t.Errorf("t1: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Errorf("write skew was blocked (stronger than snapshot isolation): %v", err)
	}
}

func TestCrossServer2PC(t *testing.T) {
	f := newFixture(t)
	tx := f.m.Begin()
	tx.Put(tabA, groupG, []byte("a"), []byte("on-s1"))
	tx.Put(tabB, groupG, []byte("b"), []byte("on-s2"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("distributed commit: %v", err)
	}
	check := f.m.Begin()
	va, err := check.Get(tabA, groupG, []byte("a"))
	if err != nil || string(va) != "on-s1" {
		t.Errorf("a = %q err=%v", va, err)
	}
	vb, err := check.Get(tabB, groupG, []byte("b"))
	if err != nil || string(vb) != "on-s2" {
		t.Errorf("b = %q err=%v", vb, err)
	}
	// Both servers must have persisted a commit record for the txn: a
	// recovery on either side keeps the writes.
	for i, srv := range []*core.Server{f.s1, f.s2} {
		if got := srv.Stats().Writes.Load(); got == 0 {
			t.Errorf("server %d applied no writes", i+1)
		}
	}
}

func TestCrossServerConflict(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "shared", "0")
	f.seed(t, tabB, "other", "0")

	t1 := f.m.Begin()
	t1.Get(tabA, groupG, []byte("shared"))
	t1.Put(tabA, groupG, []byte("shared"), []byte("t1"))
	t1.Put(tabB, groupG, []byte("other"), []byte("t1"))

	t2 := f.m.Begin()
	t2.Get(tabA, groupG, []byte("shared"))
	t2.Put(tabA, groupG, []byte("shared"), []byte("t2"))

	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2 err = %v, want conflict", err)
	}
}

func TestRunTxnRetries(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "acct", "100")
	// 8 concurrent increments; every one must eventually apply exactly
	// once (MVOCC restarts losers).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := f.m.RunTxn(50, func(tx *Txn) error {
				v, err := tx.Get(tabA, groupG, []byte("acct"))
				if err != nil {
					return err
				}
				return tx.Put(tabA, groupG, []byte("acct"), append([]byte(nil), append(v, 'i')...))
			})
			if err != nil {
				t.Errorf("RunTxn: %v", err)
			}
		}()
	}
	wg.Wait()
	tx := f.m.Begin()
	v, _ := tx.Get(tabA, groupG, []byte("acct"))
	if len(v) != 3+8 {
		t.Errorf("value %q: %d increments applied, want 8", v, len(v)-3)
	}
	commits, _, restarts := f.m.Stats()
	if commits < 9 {
		t.Errorf("commits = %d", commits)
	}
	t.Logf("commits=%d restarts=%d", commits, restarts)
}

func TestReadOnlyNeverBlocks(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "r", "v")
	// A writer holding locks must not block readers (MVOCC separation).
	t1 := f.m.Begin()
	t1.Get(tabA, groupG, []byte("r"))
	t1.Put(tabA, groupG, []byte("r"), []byte("new"))
	// Reader proceeds and commits while t1 is still open.
	t2 := f.m.Begin()
	if _, err := t2.Get(tabA, groupG, []byte("r")); err != nil {
		t.Fatalf("reader blocked/failed: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Errorf("read-only commit: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Errorf("writer commit: %v", err)
	}
}

func TestTxnDeleteCommits(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "del", "v")
	err := f.m.RunTxn(3, func(tx *Txn) error {
		if _, err := tx.Get(tabA, groupG, []byte("del")); err != nil {
			return err
		}
		return tx.Delete(tabA, groupG, []byte("del"))
	})
	if err != nil {
		t.Fatalf("delete txn: %v", err)
	}
	tx := f.m.Begin()
	if _, err := tx.Get(tabA, groupG, []byte("del")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("deleted key visible: %v", err)
	}
}
