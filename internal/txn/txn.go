// Package txn implements LogBase's transaction layer (paper §3.7):
// multiversion optimistic concurrency control with write locks embedded
// in the validation phase (MVOCC), providing snapshot isolation for
// read-modify-write transactions spanning multiple records and servers.
//
// A transaction reads from a consistent snapshot (the latest committed
// timestamp at Begin). Writes are buffered. At commit the manager
// acquires write locks over the write set in sorted key order (deadlock
// avoidance by ordered acquisition), validates that no write-set record
// changed since it was read ("first committer wins"), fetches a commit
// timestamp from the global timestamp authority, persists the writes
// plus a commit record, reflects them in the indexes, and releases the
// locks. Read-only transactions never lock, never validate and always
// commit — the separation MVOCC is chosen for.
package txn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
)

// ErrConflict reports a validation failure: another transaction
// committed a newer version of a write-set record. The caller restarts
// the transaction (RunTxn does this automatically).
var ErrConflict = errors.New("txn: validation conflict, transaction restarted")

// ErrTxnDone reports use of a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// Resolver maps a tablet to the server currently serving it.
type Resolver interface {
	ServerFor(tablet string) (*core.Server, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(tablet string) (*core.Server, error)

// ServerFor implements Resolver.
func (f ResolverFunc) ServerFor(tablet string) (*core.Server, error) { return f(tablet) }

// Manager coordinates transactions. One Manager may serve many
// concurrent transactions; it is safe for concurrent use.
type Manager struct {
	svc     *coord.Service
	resolve Resolver
	nextID  atomic.Uint64

	commits  atomic.Int64
	aborts   atomic.Int64
	restarts atomic.Int64
}

// NewManager creates a transaction manager using svc as timestamp
// authority and lock service (the ZooKeeper roles, paper §3.7.1).
func NewManager(svc *coord.Service, resolve Resolver) *Manager {
	return &Manager{svc: svc, resolve: resolve}
}

// Stats returns (commits, aborts, restarts) counters.
func (m *Manager) Stats() (int64, int64, int64) {
	return m.commits.Load(), m.aborts.Load(), m.restarts.Load()
}

// Txn is one transaction. Not safe for concurrent use (one goroutine
// per transaction, as in any session-bound client).
type Txn struct {
	m      *Manager
	sess   *coord.Session // per-transaction: locks must not be shared
	id     uint64
	readTS int64
	done   bool

	// reads records the version each read observed (0 = absent), keyed
	// by lockKey; validation compares write-set entries against these.
	reads map[string]int64
	// writes buffers the write set in arrival order; later writes to
	// the same key overwrite earlier ones.
	writes map[string]*write
	order  []string
}

type write struct {
	w core.TxnWrite
}

func lockKey(tablet, group string, key []byte) string {
	return tablet + "\x00" + group + "\x00" + string(key)
}

// LockKey exposes the validation-phase lock naming so the cluster's
// migration cutover can ask the lock service whether a prepared
// transaction is still in flight.
func LockKey(tablet, group string, key []byte) string {
	return lockKey(tablet, group, key)
}

// Begin starts a transaction reading from the latest consistent
// snapshot.
func (m *Manager) Begin() *Txn {
	return &Txn{
		m:      m,
		sess:   m.svc.NewSession(),
		id:     m.nextID.Add(1),
		readTS: m.svc.LastTimestamp(),
		reads:  make(map[string]int64),
		writes: make(map[string]*write),
	}
}

// ReadTS returns the transaction's snapshot timestamp.
func (t *Txn) ReadTS() int64 { return t.readTS }

// Get reads a key at the transaction's snapshot, observing the
// transaction's own buffered writes first.
func (t *Txn) Get(tablet, group string, key []byte) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	lk := lockKey(tablet, group, key)
	if w, ok := t.writes[lk]; ok {
		if w.w.Delete {
			return nil, core.ErrNotFound
		}
		return w.w.Value, nil
	}
	srv, err := t.m.resolve.ServerFor(tablet)
	if err != nil {
		return nil, err
	}
	row, err := srv.GetAt(tablet, group, key, t.readTS)
	if errors.Is(err, core.ErrNotFound) {
		t.noteRead(lk, 0)
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	t.noteRead(lk, row.TS)
	return row.Value, nil
}

// noteRead records the first observed version of a key (later reads in
// the same transaction see the same snapshot, so the first one stands).
func (t *Txn) noteRead(lk string, ts int64) {
	if _, ok := t.reads[lk]; !ok {
		t.reads[lk] = ts
	}
}

// Scan streams the snapshot-visible version of keys in [start, end) of
// one tablet's column group, overlaid with the transaction's own
// buffered writes (read-your-writes: buffered puts shadow or insert
// rows with TS = the read snapshot, buffered deletes hide rows).
// Cancelling ctx aborts the scan within one batch boundary.
func (t *Txn) Scan(ctx context.Context, tablet, group string, start, end []byte, fn func(core.Row) bool) error {
	if t.done {
		return ErrTxnDone
	}
	srv, err := t.m.resolve.ServerFor(tablet)
	if err != nil {
		return err
	}
	// Collect this transaction's buffered writes inside the range,
	// sorted by key, for a merge against the snapshot stream.
	var buf []*write
	for _, w := range t.writes {
		ww := w.w
		if ww.Tablet != tablet || ww.Group != group {
			continue
		}
		if start != nil && bytes.Compare(ww.Key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(ww.Key, end) >= 0 {
			continue
		}
		buf = append(buf, w)
	}
	if len(buf) == 0 {
		return srv.Scan(ctx, tablet, group, start, end, t.readTS, fn)
	}
	sort.Slice(buf, func(i, j int) bool { return bytes.Compare(buf[i].w.Key, buf[j].w.Key) < 0 })

	i := 0
	stopped := false
	// emitBufferedBelow streams buffered non-delete writes with keys
	// strictly below bound (nil = all remaining).
	emitBufferedBelow := func(bound []byte) bool {
		for i < len(buf) && (bound == nil || bytes.Compare(buf[i].w.Key, bound) < 0) {
			w := buf[i].w
			i++
			if w.Delete {
				continue
			}
			if !fn(core.Row{Key: w.Key, TS: t.readTS, Value: w.Value}) {
				return false
			}
		}
		return true
	}
	err = srv.Scan(ctx, tablet, group, start, end, t.readTS, func(r core.Row) bool {
		if !emitBufferedBelow(r.Key) {
			stopped = true
			return false
		}
		if i < len(buf) && bytes.Equal(buf[i].w.Key, r.Key) {
			w := buf[i].w
			i++
			if w.Delete {
				return true // buffered delete hides the snapshot row
			}
			if !fn(core.Row{Key: r.Key, TS: t.readTS, Value: w.Value}) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(r) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	emitBufferedBelow(nil)
	return nil
}

// Put buffers a write. There are no blind writes in the paper's MVOCC
// (validation compares "the versions ... that T has read before"), so a
// Put without a prior Get records the current version as its read
// version.
func (t *Txn) Put(tablet, group string, key, value []byte) error {
	return t.bufferWrite(core.TxnWrite{Tablet: tablet, Group: group, Key: key, Value: value})
}

// Delete buffers a transactional delete.
func (t *Txn) Delete(tablet, group string, key []byte) error {
	return t.bufferWrite(core.TxnWrite{Tablet: tablet, Group: group, Key: key, Delete: true})
}

func (t *Txn) bufferWrite(w core.TxnWrite) error {
	if t.done {
		return ErrTxnDone
	}
	lk := lockKey(w.Tablet, w.Group, w.Key)
	if _, ok := t.reads[lk]; !ok {
		srv, err := t.m.resolve.ServerFor(w.Tablet)
		if err != nil {
			return err
		}
		ver, err := srv.CurrentVersion(w.Tablet, w.Group, w.Key)
		if err != nil {
			return err
		}
		// The version visible at our snapshot is what we logically read;
		// if a newer version already exists, validation will fail — which
		// is correct first-committer-wins behaviour.
		if ver > t.readTS {
			t.reads[lk] = -1 // sentinel: guaranteed conflict
		} else {
			t.reads[lk] = ver
		}
	}
	if _, ok := t.writes[lk]; !ok {
		t.order = append(t.order, lk)
	}
	t.writes[lk] = &write{w: w}
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.sess.Close()
	t.m.aborts.Add(1)
}

// Commit runs the MVOCC validation and write phases. On conflict it
// returns ErrConflict and the transaction must be retried from Begin
// (all effects are discarded). Read-only transactions commit
// immediately.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	defer t.sess.Close()
	if len(t.writes) == 0 {
		t.m.commits.Add(1)
		return nil
	}

	// Validation phase with embedded write locks, acquired in sorted
	// key order to avoid deadlock (paper §3.7.1).
	keys := append([]string(nil), t.order...)
	sort.Strings(keys)
	sess := t.sess
	for _, lk := range keys {
		if err := sess.Lock(lk); err != nil {
			return err
		}
	}
	unlock := func() {
		for _, lk := range keys {
			sess.Unlock(lk)
		}
	}

	// Validate: every write-set record must still be at the version this
	// transaction read.
	for _, lk := range keys {
		w := t.writes[lk]
		srv, err := t.m.resolve.ServerFor(w.w.Tablet)
		if err != nil {
			unlock()
			return err
		}
		cur, err := srv.CurrentVersion(w.w.Tablet, w.w.Group, w.w.Key)
		if err != nil {
			unlock()
			return err
		}
		if cur != t.reads[lk] {
			unlock()
			t.m.restarts.Add(1)
			return fmt.Errorf("%w: %q v%d != read v%d", ErrConflict, w.w.Key, cur, t.reads[lk])
		}
	}

	// Write phase: commit timestamp from the authority, then persist.
	commitTS := t.m.svc.NextTimestamp()
	byServer := map[*core.Server][]core.TxnWrite{}
	var servers []*core.Server
	for _, lk := range t.order {
		w := t.writes[lk]
		srv, err := t.m.resolve.ServerFor(w.w.Tablet)
		if err != nil {
			unlock()
			return err
		}
		if _, ok := byServer[srv]; !ok {
			servers = append(servers, srv)
		}
		byServer[srv] = append(byServer[srv], w.w)
	}

	if len(servers) == 1 {
		// Fast path: one participant, writes + commit in one atomic
		// batch (smart partitioning makes this the common case, §3.2).
		if err := servers[0].ApplyTxn(t.id, commitTS, byServer[servers[0]]); err != nil {
			unlock()
			return err
		}
	} else {
		// Two-phase commit across participants: prepare everywhere
		// (durable, invisible), then commit everywhere. A participant
		// crash between phases leaves invisible writes that compaction
		// vacuums; coordinator-crash repair is out of the paper's scope
		// (it minimises distributed transactions by design).
		prepared := make(map[*core.Server]*core.Prepared, len(servers))
		for _, srv := range servers {
			p, err := srv.PrepareTxn(t.id, commitTS, byServer[srv])
			if err != nil {
				unlock()
				return err
			}
			prepared[srv] = p
		}
		for _, srv := range servers {
			// A participant whose tablet froze for a migration cutover
			// between prepare and commit refuses the commit record. The
			// refusal is transient by construction: the migration sees
			// this transaction's prepared records as pending-with-held-
			// locks in its final catch-up and aborts the cutover, so a
			// short retry converges — and keeps the commit atomic across
			// participants that already committed.
			err := srv.CommitTxn(t.id, commitTS, prepared[srv])
			for r := 0; err != nil && errors.Is(err, core.ErrTabletFrozen) && r < commitFrozenRetries; r++ {
				time.Sleep(time.Millisecond)
				err = srv.CommitTxn(t.id, commitTS, prepared[srv])
			}
			if err != nil {
				unlock()
				return err
			}
		}
	}
	unlock()
	t.m.commits.Add(1)
	return nil
}

// commitFrozenRetries bounds the per-participant commit retry during a
// migration-cutover race; the cutover detects the live prepared
// transaction and unfreezes within a few milliseconds.
const commitFrozenRetries = 100

// RunTxn executes fn inside a transaction, retrying on ErrConflict (the
// paper's "T is restarted") up to maxRetries times.
func (m *Manager) RunTxn(maxRetries int, fn func(*Txn) error) error {
	if maxRetries < 1 {
		maxRetries = 1
	}
	var err error
	for attempt := 0; attempt < maxRetries; attempt++ {
		t := m.Begin()
		if err = fn(t); err != nil {
			t.Abort()
			if !retryableTopology(err) {
				return err
			}
			continue
		}
		err = t.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) && !retryableTopology(err) {
			return err
		}
	}
	return err
}

// retryableTopology reports whether an error means the cluster topology
// shifted under the transaction (a tablet split, moved, or froze for a
// migration cutover): re-running the transaction re-resolves routing
// and converges, exactly like the plain client's stale-routing retry.
func retryableTopology(err error) bool {
	return errors.Is(err, core.ErrUnknownTablet)
}
