package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestSnapshotStableAcrossManyCommits(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "k", "v0")
	reader := f.m.Begin()
	first, err := reader.Get(tabA, groupG, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	// 20 committed overwrites while the reader stays open.
	for i := 1; i <= 20; i++ {
		if err := f.m.RunTxn(3, func(tx *Txn) error {
			return tx.Put(tabA, groupG, []byte("k"), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	again, err := reader.Get(tabA, groupG, []byte("k"))
	if err != nil || string(again) != string(first) {
		t.Errorf("snapshot drifted: %q -> %q", first, again)
	}
	if err := reader.Commit(); err != nil {
		t.Errorf("read-only commit: %v", err)
	}
}

func TestInsertInsertConflictOnSameKey(t *testing.T) {
	// Two transactions blind-inserting the same brand-new key: the
	// second committer must restart (its recorded read version 0 no
	// longer matches).
	f := newFixture(t)
	t1 := f.m.Begin()
	t2 := f.m.Begin()
	t1.Put(tabA, groupG, []byte("fresh"), []byte("one"))
	t2.Put(tabA, groupG, []byte("fresh"), []byte("two"))
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("t2 err = %v, want conflict", err)
	}
}

func TestDeletePutConflict(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "d", "v")
	t1 := f.m.Begin()
	t2 := f.m.Begin()
	t1.Get(tabA, groupG, []byte("d"))
	t2.Get(tabA, groupG, []byte("d"))
	t1.Delete(tabA, groupG, []byte("d"))
	t2.Put(tabA, groupG, []byte("d"), []byte("survivor"))
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 delete: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("t2 after delete err = %v, want conflict", err)
	}
	check := f.m.Begin()
	if _, err := check.Get(tabA, groupG, []byte("d")); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("delete lost: %v", err)
	}
}

func TestUseAfterCommitRejected(t *testing.T) {
	f := newFixture(t)
	tx := f.m.Begin()
	tx.Put(tabA, groupG, []byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(tabA, groupG, []byte("k")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Get after commit err = %v", err)
	}
	if err := tx.Put(tabA, groupG, []byte("k"), nil); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Put after commit err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit err = %v", err)
	}
}

func TestManyDisjointTxnsNoInterference(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	const writers = 10
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("own-%02d", w))
			for i := 0; i < 10; i++ {
				err := f.m.RunTxn(5, func(tx *Txn) error {
					return tx.Put(tabA, groupG, key, []byte(fmt.Sprintf("%d", i)))
				})
				if err != nil {
					t.Errorf("writer %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commits, aborts, restarts := f.m.Stats()
	if restarts != 0 {
		t.Errorf("disjoint transactions restarted %d times", restarts)
	}
	if commits < writers*10 {
		t.Errorf("commits = %d", commits)
	}
	_ = aborts
}

func TestReadTSVisibility(t *testing.T) {
	f := newFixture(t)
	f.seed(t, tabA, "k", "v1")
	tx := f.m.Begin()
	if tx.ReadTS() <= 0 {
		t.Errorf("ReadTS = %d", tx.ReadTS())
	}
	// A transaction begun later sees a later snapshot.
	f.seed(t, tabA, "k", "v2")
	tx2 := f.m.Begin()
	if tx2.ReadTS() <= tx.ReadTS() {
		t.Errorf("snapshots not advancing: %d then %d", tx.ReadTS(), tx2.ReadTS())
	}
	tx.Abort()
	tx2.Abort()
}
