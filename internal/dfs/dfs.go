// Package dfs implements an HDFS-like distributed file system used by
// LogBase as its shared log and index repository (paper §3.4).
//
// Files are append-only sequences of fixed-size blocks. Every block is
// synchronously replicated to n datanodes before a write returns
// (mirroring HDFS's write pipeline, "equivalent to RAID-1" in the
// paper's terms), with rack-aware placement: the second replica lands on
// a different rack from the first, the third on the same rack as the
// second. Datanodes can be killed to exercise failure handling; the
// namenode re-replicates under-replicated blocks from surviving
// replicas.
//
// The whole cluster runs in one process. Datanodes persist blocks on a
// simdisk.Disk so that I/O costs (seek vs sequential transfer) follow
// the disk model used throughout the reproduction.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/simdisk"
)

// Config controls cluster geometry and replication.
type Config struct {
	// NumDataNodes is the number of datanodes to start.
	NumDataNodes int
	// Racks is the number of racks datanodes are spread over
	// (round-robin). Zero means 2.
	Racks int
	// ReplicationFactor is the number of synchronous replicas per block.
	// Zero means 3 (the HDFS and paper default). Clamped to the number
	// of datanodes.
	ReplicationFactor int
	// BlockSize is the maximum block size in bytes. Zero means 64 MB
	// (the paper/HDFS default); simulations typically use much less.
	BlockSize int64
	// DiskModel is applied to every datanode's disk.
	DiskModel simdisk.Model
	// Clock, when non-nil, is shared by all datanode disks so one
	// virtual-time reading covers the cluster.
	Clock *simdisk.Clock
}

func (c Config) withDefaults() Config {
	if c.Racks <= 0 {
		c.Racks = 2
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 3
	}
	if c.ReplicationFactor > c.NumDataNodes {
		c.ReplicationFactor = c.NumDataNodes
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 20
	}
	return c
}

// ErrNotFound is returned when a path does not exist in the namespace.
var ErrNotFound = errors.New("dfs: file not found")

// ErrExists is returned by Create when the path already exists.
var ErrExists = errors.New("dfs: file already exists")

// ErrNoDataNodes is returned when no datanode is alive to host a block.
var ErrNoDataNodes = errors.New("dfs: no live datanodes")

type blockID uint64

// blockMeta records where a block's replicas live and how full it is.
type blockMeta struct {
	id       blockID
	size     int64
	replicas []int // datanode ids
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	blocks []*blockMeta
}

func (fm *fileMeta) size() int64 {
	var n int64
	for _, b := range fm.blocks {
		n += b.size
	}
	return n
}

// DFS is a single-process distributed file system: one namenode plus a
// set of datanodes. It is safe for concurrent use.
type DFS struct {
	cfg Config

	mu        sync.Mutex
	files     map[string]*fileMeta
	nextBlock blockID
	nodes     []*DataNode
	nextPlace int // round-robin cursor for first-replica placement
}

// New starts a DFS with cfg.NumDataNodes datanodes whose disks live
// under dir.
func New(dir string, cfg Config) (*DFS, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDataNodes <= 0 {
		return nil, errors.New("dfs: need at least one datanode")
	}
	d := &DFS{cfg: cfg, files: make(map[string]*fileMeta)}
	for i := 0; i < cfg.NumDataNodes; i++ {
		disk, err := simdisk.New(fmt.Sprintf("%s/dn%02d", dir, i), cfg.DiskModel, cfg.Clock)
		if err != nil {
			return nil, err
		}
		dn := &DataNode{id: i, rack: i % cfg.Racks, disk: disk}
		dn.alive.Store(true)
		d.nodes = append(d.nodes, dn)
	}
	return d, nil
}

// Config returns the (defaulted) configuration the cluster runs with.
func (d *DFS) Config() Config { return d.cfg }

// DataNode returns datanode i.
func (d *DFS) DataNode(i int) *DataNode { return d.nodes[i] }

// NumDataNodes returns the cluster size.
func (d *DFS) NumDataNodes() int { return len(d.nodes) }

// placeReplicas chooses datanodes for a new block, rack-aware: first
// replica round-robin over live nodes, second on a different rack,
// remaining on the second's rack when possible, falling back to any
// live node.
func (d *DFS) placeReplicas() ([]int, error) {
	live := d.liveNodesLocked()
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	want := d.cfg.ReplicationFactor
	if want > len(live) {
		want = len(live)
	}
	first := live[d.nextPlace%len(live)]
	d.nextPlace++
	chosen := []int{first.id}
	used := map[int]bool{first.id: true}

	pick := func(pred func(*DataNode) bool) bool {
		for _, n := range live {
			if !used[n.id] && pred(n) {
				chosen = append(chosen, n.id)
				used[n.id] = true
				return true
			}
		}
		return false
	}
	if len(chosen) < want {
		// Second replica: different rack if one exists.
		if !pick(func(n *DataNode) bool { return n.rack != first.rack }) {
			pick(func(*DataNode) bool { return true })
		}
	}
	for len(chosen) < want {
		secondRack := d.nodes[chosen[len(chosen)-1]].rack
		if !pick(func(n *DataNode) bool { return n.rack == secondRack }) && !pick(func(*DataNode) bool { return true }) {
			break
		}
	}
	return chosen, nil
}

func (d *DFS) liveNodesLocked() []*DataNode {
	var live []*DataNode
	for _, n := range d.nodes {
		if n.Alive() {
			live = append(live, n)
		}
	}
	return live
}

// Create creates a new empty file and returns a writer positioned at
// offset zero. The file becomes visible immediately.
func (d *DFS) Create(path string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	d.files[path] = &fileMeta{}
	return &Writer{d: d, path: path}, nil
}

// OpenAppend opens an existing file for appending.
func (d *DFS) OpenAppend(path string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &Writer{d: d, path: path, off: fm.size()}, nil
}

// Open returns a reader for the file.
func (d *DFS) Open(path string) (*Reader, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &Reader{d: d, path: path}, nil
}

// Exists reports whether path is in the namespace.
func (d *DFS) Exists(path string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[path]
	return ok
}

// Size returns the logical size of the file.
func (d *DFS) Size(path string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return fm.size(), nil
}

// Delete removes the file and its blocks from all replicas.
func (d *DFS) Delete(path string) error {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(d.files, path)
	blocks := fm.blocks
	nodes := d.nodes
	d.mu.Unlock()

	for _, b := range blocks {
		for _, nid := range b.replicas {
			nodes[nid].deleteBlock(b.id) // best effort; dead nodes ignore
		}
	}
	return nil
}

// Rename atomically renames a file within the namespace.
func (d *DFS) Rename(from, to string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, from)
	}
	if _, ok := d.files[to]; ok {
		return fmt.Errorf("%w: %s", ErrExists, to)
	}
	delete(d.files, from)
	d.files[to] = fm
	return nil
}

// List returns all paths with the given prefix, sorted.
func (d *DFS) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for p := range d.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// KillDataNode marks a datanode dead. Its replicas become unreadable
// until RecoverReplication copies them elsewhere.
func (d *DFS) KillDataNode(id int) { d.nodes[id].setAlive(false) }

// RestartDataNode brings a datanode back with its disk contents intact.
func (d *DFS) RestartDataNode(id int) { d.nodes[id].setAlive(true) }

// UnderReplicated returns the number of blocks with fewer than the
// configured number of live replicas.
func (d *DFS) UnderReplicated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, fm := range d.files {
		for _, b := range fm.blocks {
			if d.liveReplicasLocked(b) < min(d.cfg.ReplicationFactor, len(d.liveNodesLocked())) {
				n++
			}
		}
	}
	return n
}

func (d *DFS) liveReplicasLocked(b *blockMeta) int {
	n := 0
	for _, nid := range b.replicas {
		if d.nodes[nid].Alive() {
			n++
		}
	}
	return n
}

// RecoverReplication copies every under-replicated block from a live
// replica to a live node that does not yet hold it. It returns the
// number of new replicas created. In a real HDFS this runs continuously
// off heartbeats; the simulation invokes it explicitly (or from the
// cluster master's failure handler).
func (d *DFS) RecoverReplication() (int, error) {
	d.mu.Lock()
	type job struct {
		b    *blockMeta
		src  int
		dsts []int
	}
	var jobs []job
	for _, fm := range d.files {
		for _, b := range fm.blocks {
			want := min(d.cfg.ReplicationFactor, len(d.liveNodesLocked()))
			live := d.liveReplicasLocked(b)
			if live == 0 || live >= want {
				continue
			}
			src := -1
			holds := map[int]bool{}
			for _, nid := range b.replicas {
				holds[nid] = true
				if d.nodes[nid].Alive() && src < 0 {
					src = nid
				}
			}
			var dsts []int
			for _, n := range d.liveNodesLocked() {
				if len(dsts) >= want-live {
					break
				}
				if !holds[n.id] {
					dsts = append(dsts, n.id)
				}
			}
			jobs = append(jobs, job{b: b, src: src, dsts: dsts})
		}
	}
	d.mu.Unlock()

	created := 0
	for _, j := range jobs {
		data, err := d.nodes[j.src].readBlock(j.b.id, 0, int(j.b.size))
		if err != nil {
			return created, fmt.Errorf("dfs: re-replicate block %d: %w", j.b.id, err)
		}
		for _, dst := range j.dsts {
			if err := d.nodes[dst].writeBlock(j.b.id, 0, data); err != nil {
				return created, fmt.Errorf("dfs: re-replicate block %d to dn%d: %w", j.b.id, dst, err)
			}
			d.mu.Lock()
			j.b.replicas = append(j.b.replicas, dst)
			d.mu.Unlock()
			created++
		}
	}
	return created, nil
}

// appendLocked-free helper: append p to the file, splitting across
// blocks, replicating each fragment synchronously.
func (d *DFS) appendAt(path string, p []byte) (int64, error) {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	start := fm.size()
	d.mu.Unlock()

	off := start
	for len(p) > 0 {
		d.mu.Lock()
		var last *blockMeta
		if n := len(fm.blocks); n > 0 {
			last = fm.blocks[n-1]
		}
		if last == nil || last.size >= d.cfg.BlockSize {
			replicas, err := d.placeReplicas()
			if err != nil {
				d.mu.Unlock()
				return 0, err
			}
			d.nextBlock++
			last = &blockMeta{id: d.nextBlock, replicas: replicas}
			fm.blocks = append(fm.blocks, last)
		}
		room := d.cfg.BlockSize - last.size
		n := int64(len(p))
		if n > room {
			n = room
		}
		frag := p[:n]
		blockOff := last.size
		replicas := append([]int(nil), last.replicas...)
		id := last.id
		d.mu.Unlock()

		// Synchronous pipeline: every live replica must accept the write
		// before it returns, but the replicas run concurrently (HDFS
		// streams through the pipeline; the client does not pay 3x wall
		// time). A dead replica is dropped from the block's replica set
		// — it is stale from now on (HDFS's generation-stamp rule);
		// restarting the node does not resurrect it, only re-replication
		// does.
		var stale []int
		var live []*DataNode
		for _, nid := range replicas {
			node := d.nodes[nid]
			if !node.Alive() {
				stale = append(stale, nid)
				continue
			}
			live = append(live, node)
		}
		if len(live) == 0 {
			return 0, ErrNoDataNodes
		}
		errs := make([]error, len(live))
		var wg sync.WaitGroup
		for i, node := range live {
			wg.Add(1)
			go func(i int, node *DataNode) {
				defer wg.Done()
				if err := node.writeBlock(id, blockOff, frag); err != nil {
					errs[i] = fmt.Errorf("dfs: write block %d on dn%d: %w", id, node.id, err)
				}
			}(i, node)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		d.mu.Lock()
		if len(stale) > 0 {
			kept := last.replicas[:0]
			for _, nid := range last.replicas {
				drop := false
				for _, s := range stale {
					if nid == s {
						drop = true
						break
					}
				}
				if !drop {
					kept = append(kept, nid)
				}
			}
			last.replicas = kept
		}
		last.size += n
		d.mu.Unlock()
		p = p[n:]
		off += n
	}
	return start, nil
}

// readAt reads into p starting at off, returning the number of bytes
// read. Short reads at end-of-file return io.EOF. Block metadata is
// value-snapshotted under the namenode lock: appendAt mutates each
// block's size and replica set in place, and a reader racing a
// concurrent append must see a consistent point-in-time view (reads
// target committed offsets, so acting on the snapshot is safe even as
// the file keeps growing).
func (d *DFS) readAt(path string, p []byte, off int64) (int, error) {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	size := fm.size()
	blocks := make([]blockMeta, len(fm.blocks))
	for i, b := range fm.blocks {
		blocks[i] = blockMeta{id: b.id, size: b.size, replicas: append([]int(nil), b.replicas...)}
	}
	blockSize := d.cfg.BlockSize
	d.mu.Unlock()

	if off >= size {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < size {
		bi := int(off / blockSize)
		if bi >= len(blocks) {
			break
		}
		b := blocks[bi]
		blockOff := off % blockSize
		n := int64(len(p) - total)
		if rem := b.size - blockOff; n > rem {
			n = rem
		}
		if n <= 0 {
			break
		}
		var (
			data []byte
			err  error
		)
		read := false
		for _, nid := range b.replicas {
			node := d.nodes[nid]
			if !node.Alive() {
				continue
			}
			data, err = node.readBlock(b.id, blockOff, int(n))
			if err == nil {
				read = true
				break
			}
		}
		if !read {
			if err == nil {
				err = ErrNoDataNodes
			}
			return total, fmt.Errorf("dfs: read block %d: %w", b.id, err)
		}
		copy(p[total:], data)
		total += len(data)
		off += int64(len(data))
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// Writer appends to one file. Not safe for concurrent use (one writer
// per file, matching HDFS's single-writer lease model).
type Writer struct {
	d    *DFS
	path string
	off  int64
}

// Write appends p and returns its length.
func (w *Writer) Write(p []byte) (int, error) {
	if _, err := w.d.appendAt(w.path, p); err != nil {
		return 0, err
	}
	w.off += int64(len(p))
	return len(p), nil
}

// Offset returns the file offset at which the next Write will land.
func (w *Writer) Offset() int64 { return w.off }

// Sync is a no-op placeholder: replication is already synchronous, so
// data is durable (in the simulated sense) when Write returns.
func (w *Writer) Sync() error { return nil }

// Close releases the writer.
func (w *Writer) Close() error { return nil }

// Reader reads a file at arbitrary offsets. Safe for concurrent use.
type Reader struct {
	d    *DFS
	path string
}

// ReadAt implements io.ReaderAt over the replicated file.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	return r.d.readAt(r.path, p, off)
}

// Size returns the file's current logical size.
func (r *Reader) Size() (int64, error) { return r.d.Size(r.path) }

// Close releases the reader.
func (r *Reader) Close() error { return nil }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
