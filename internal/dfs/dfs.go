// Package dfs implements an HDFS-like distributed file system used by
// LogBase as its shared log and index repository (paper §3.4).
//
// Files are append-only sequences of fixed-size blocks. Every block is
// synchronously replicated to n datanodes before a write returns
// (mirroring HDFS's write pipeline, "equivalent to RAID-1" in the
// paper's terms), with rack-aware placement: the second replica lands on
// a different rack from the first, the third on the same rack as the
// second. Datanodes can be killed to exercise failure handling; the
// namenode re-replicates under-replicated blocks from surviving
// replicas.
//
// The whole cluster runs in one process. Datanodes persist blocks on a
// simdisk.Disk so that I/O costs (seek vs sequential transfer) follow
// the disk model used throughout the reproduction.
package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/simdisk"
)

// Config controls cluster geometry and replication.
type Config struct {
	// NumDataNodes is the number of datanodes to start.
	NumDataNodes int
	// Racks is the number of racks datanodes are spread over
	// (round-robin). Zero means 2.
	Racks int
	// ReplicationFactor is the number of synchronous replicas per block.
	// Zero means 3 (the HDFS and paper default). Clamped to the number
	// of datanodes.
	ReplicationFactor int
	// BlockSize is the maximum block size in bytes. Zero means 64 MB
	// (the paper/HDFS default); simulations typically use much less.
	BlockSize int64
	// DiskModel is applied to every datanode's disk.
	DiskModel simdisk.Model
	// Clock, when non-nil, is shared by all datanode disks so one
	// virtual-time reading covers the cluster.
	Clock *simdisk.Clock
	// Faults, when non-nil, is consulted at the block I/O points
	// ("dfs.dn<i>.read", "dfs.dn<i>.write") and threaded into every
	// datanode disk ("disk.dn<i>.read"/".write"). Nil injects nothing.
	Faults *fault.Registry
}

func (c Config) withDefaults() Config {
	if c.Racks <= 0 {
		c.Racks = 2
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 3
	}
	if c.ReplicationFactor > c.NumDataNodes {
		c.ReplicationFactor = c.NumDataNodes
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 20
	}
	return c
}

// ErrNotFound is returned when a path does not exist in the namespace.
var ErrNotFound = errors.New("dfs: file not found")

// ErrExists is returned by Create when the path already exists.
var ErrExists = errors.New("dfs: file already exists")

// ErrNoDataNodes is returned when no datanode is alive to host a block.
var ErrNoDataNodes = errors.New("dfs: no live datanodes")

type blockID uint64

// blockMeta records where a block's replicas live and how full it is.
type blockMeta struct {
	id       blockID
	size     int64
	replicas []int // datanode ids
	// wmu serialises bulk copies of this block (re-replication) against
	// in-flight appends: without it a new replica could be installed
	// missing bytes an append wrote between the copy and the install.
	// Lock ordering: wmu before d.mu, never the reverse.
	wmu sync.Mutex
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	blocks []*blockMeta
}

func (fm *fileMeta) size() int64 {
	var n int64
	for _, b := range fm.blocks {
		n += b.size
	}
	return n
}

// DFS is a single-process distributed file system: one namenode plus a
// set of datanodes. It is safe for concurrent use.
type DFS struct {
	cfg Config

	mu        sync.Mutex
	files     map[string]*fileMeta
	nextBlock blockID
	nodes     []*DataNode
	nextPlace int // round-robin cursor for first-replica placement
}

// New starts a DFS with cfg.NumDataNodes datanodes whose disks live
// under dir.
func New(dir string, cfg Config) (*DFS, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDataNodes <= 0 {
		return nil, errors.New("dfs: need at least one datanode")
	}
	d := &DFS{cfg: cfg, files: make(map[string]*fileMeta)}
	for i := 0; i < cfg.NumDataNodes; i++ {
		disk, err := simdisk.New(fmt.Sprintf("%s/dn%02d", dir, i), cfg.DiskModel, cfg.Clock)
		if err != nil {
			return nil, err
		}
		disk.SetFaults(cfg.Faults, fmt.Sprintf("disk.dn%d", i))
		dn := &DataNode{id: i, rack: i % cfg.Racks, disk: disk, faults: cfg.Faults}
		dn.alive.Store(true)
		d.nodes = append(d.nodes, dn)
	}
	return d, nil
}

// Config returns the (defaulted) configuration the cluster runs with.
func (d *DFS) Config() Config { return d.cfg }

// DataNode returns datanode i.
func (d *DFS) DataNode(i int) *DataNode { return d.nodes[i] }

// NumDataNodes returns the cluster size.
func (d *DFS) NumDataNodes() int { return len(d.nodes) }

// placeReplicas chooses datanodes for a new block, rack-aware: first
// replica round-robin over live nodes, second on a different rack,
// remaining on the second's rack when possible, falling back to any
// live node.
func (d *DFS) placeReplicas() ([]int, error) {
	live := d.liveNodesLocked()
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	want := d.cfg.ReplicationFactor
	if want > len(live) {
		want = len(live)
	}
	first := live[d.nextPlace%len(live)]
	d.nextPlace++
	chosen := []int{first.id}
	used := map[int]bool{first.id: true}

	pick := func(pred func(*DataNode) bool) bool {
		for _, n := range live {
			if !used[n.id] && pred(n) {
				chosen = append(chosen, n.id)
				used[n.id] = true
				return true
			}
		}
		return false
	}
	if len(chosen) < want {
		// Second replica: different rack if one exists.
		if !pick(func(n *DataNode) bool { return n.rack != first.rack }) {
			pick(func(*DataNode) bool { return true })
		}
	}
	for len(chosen) < want {
		secondRack := d.nodes[chosen[len(chosen)-1]].rack
		if !pick(func(n *DataNode) bool { return n.rack == secondRack }) && !pick(func(*DataNode) bool { return true }) {
			break
		}
	}
	return chosen, nil
}

func (d *DFS) liveNodesLocked() []*DataNode {
	var live []*DataNode
	for _, n := range d.nodes {
		if n.Alive() {
			live = append(live, n)
		}
	}
	return live
}

// Create creates a new empty file and returns a writer positioned at
// offset zero. The file becomes visible immediately.
func (d *DFS) Create(path string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	d.files[path] = &fileMeta{}
	return &Writer{d: d, path: path}, nil
}

// OpenAppend opens an existing file for appending.
func (d *DFS) OpenAppend(path string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &Writer{d: d, path: path, off: fm.size()}, nil
}

// Open returns a reader for the file.
func (d *DFS) Open(path string) (*Reader, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &Reader{d: d, path: path}, nil
}

// Exists reports whether path is in the namespace.
func (d *DFS) Exists(path string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[path]
	return ok
}

// Size returns the logical size of the file.
func (d *DFS) Size(path string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return fm.size(), nil
}

// Delete removes the file and its blocks from all replicas.
func (d *DFS) Delete(path string) error {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(d.files, path)
	blocks := fm.blocks
	nodes := d.nodes
	d.mu.Unlock()

	for _, b := range blocks {
		for _, nid := range b.replicas {
			nodes[nid].deleteBlock(b.id) // best effort; dead nodes ignore
		}
	}
	return nil
}

// Rename atomically renames a file within the namespace.
func (d *DFS) Rename(from, to string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, from)
	}
	if _, ok := d.files[to]; ok {
		return fmt.Errorf("%w: %s", ErrExists, to)
	}
	delete(d.files, from)
	d.files[to] = fm
	return nil
}

// List returns all paths with the given prefix, sorted.
func (d *DFS) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for p := range d.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// KillDataNode marks a datanode dead. Its replicas become unreadable
// until RecoverReplication copies them elsewhere.
func (d *DFS) KillDataNode(id int) { d.nodes[id].setAlive(false) }

// RestartDataNode brings a datanode back with its disk contents intact.
func (d *DFS) RestartDataNode(id int) { d.nodes[id].setAlive(true) }

// UnderReplicated returns the number of blocks with fewer than the
// configured number of live replicas.
func (d *DFS) UnderReplicated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, fm := range d.files {
		for _, b := range fm.blocks {
			if d.liveReplicasLocked(b) < min(d.cfg.ReplicationFactor, len(d.liveNodesLocked())) {
				n++
			}
		}
	}
	return n
}

func (d *DFS) liveReplicasLocked(b *blockMeta) int {
	n := 0
	for _, nid := range b.replicas {
		if d.nodes[nid].Alive() {
			n++
		}
	}
	return n
}

// RecoverReplication copies every under-replicated block from a live
// replica to a live node that does not yet hold it. It returns the
// number of new replicas created. In a real HDFS this runs continuously
// off heartbeats; the simulation invokes it explicitly (or from the
// cluster master's failure handler).
func (d *DFS) RecoverReplication() (int, error) {
	d.mu.Lock()
	type job struct {
		b    *blockMeta
		src  int
		dsts []int
	}
	var jobs []job
	for _, fm := range d.files {
		for _, b := range fm.blocks {
			want := min(d.cfg.ReplicationFactor, len(d.liveNodesLocked()))
			live := d.liveReplicasLocked(b)
			if live == 0 || live >= want {
				continue
			}
			src := -1
			holds := map[int]bool{}
			for _, nid := range b.replicas {
				holds[nid] = true
				if d.nodes[nid].Alive() && src < 0 {
					src = nid
				}
			}
			var dsts []int
			for _, n := range d.liveNodesLocked() {
				if len(dsts) >= want-live {
					break
				}
				if !holds[n.id] {
					dsts = append(dsts, n.id)
				}
			}
			jobs = append(jobs, job{b: b, src: src, dsts: dsts})
		}
	}
	d.mu.Unlock()

	created := 0
	for _, j := range jobs {
		n, err := d.replicateBlock(j.b, j.src, j.dsts)
		created += n
		if err != nil {
			return created, err
		}
	}
	return created, nil
}

// replicateBlock copies block b from src to each dst and installs the
// new replicas. It holds the block's write mutex for the whole
// copy-and-install so an append racing the copy either lands before it
// (and is included in the copied bytes) or after the install (and is
// pipelined to the new replica like any other) — never in between.
func (d *DFS) replicateBlock(b *blockMeta, src int, dsts []int) (int, error) {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	d.mu.Lock()
	size := b.size
	d.mu.Unlock()
	data, err := d.nodes[src].readBlock(b.id, 0, int(size))
	if err != nil {
		return 0, fmt.Errorf("dfs: re-replicate block %d: %w", b.id, err)
	}
	created := 0
	for _, dst := range dsts {
		if err := d.nodes[dst].writeBlock(b.id, 0, data); err != nil {
			return created, fmt.Errorf("dfs: re-replicate block %d to dn%d: %w", b.id, dst, err)
		}
		d.mu.Lock()
		b.replicas = append(b.replicas, dst)
		d.mu.Unlock()
		created++
	}
	return created, nil
}

// appendLocked-free helper: append p to the file, splitting across
// blocks, replicating each fragment synchronously.
func (d *DFS) appendAt(path string, p []byte) (int64, error) {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	start := fm.size()
	d.mu.Unlock()

	off := start
	for len(p) > 0 {
		d.mu.Lock()
		var last *blockMeta
		if n := len(fm.blocks); n > 0 {
			last = fm.blocks[n-1]
		}
		if last == nil || last.size >= d.cfg.BlockSize {
			replicas, err := d.placeReplicas()
			if err != nil {
				d.mu.Unlock()
				return 0, err
			}
			d.nextBlock++
			last = &blockMeta{id: d.nextBlock, replicas: replicas}
			fm.blocks = append(fm.blocks, last)
		}
		room := d.cfg.BlockSize - last.size
		n := int64(len(p))
		if n > room {
			n = room
		}
		frag := p[:n]
		blockOff := last.size
		id := last.id
		d.mu.Unlock()

		// Serialise against a re-replication copying this block; the
		// replica set is re-read under the block mutex so a replica the
		// copier just installed receives this write too.
		last.wmu.Lock()
		d.mu.Lock()
		replicas := append([]int(nil), last.replicas...)
		d.mu.Unlock()

		// Synchronous pipeline: every live replica must accept the write
		// before it returns, but the replicas run concurrently (HDFS
		// streams through the pipeline; the client does not pay 3x wall
		// time). A dead replica is dropped from the block's replica set
		// — it is stale from now on (HDFS's generation-stamp rule);
		// restarting the node does not resurrect it, only re-replication
		// does.
		var stale []int
		var live []*DataNode
		for _, nid := range replicas {
			node := d.nodes[nid]
			if !node.Alive() {
				stale = append(stale, nid)
				continue
			}
			live = append(live, node)
		}
		if len(live) == 0 {
			last.wmu.Unlock()
			return 0, ErrNoDataNodes
		}
		errs := make([]error, len(live))
		var wg sync.WaitGroup
		for i, node := range live {
			wg.Add(1)
			go func(i int, node *DataNode) {
				defer wg.Done()
				if err := node.writeBlock(id, blockOff, frag); err != nil {
					errs[i] = fmt.Errorf("dfs: write block %d on dn%d: %w", id, node.id, err)
				}
			}(i, node)
		}
		wg.Wait()
		// A replica that died mid-write is dropped from the pipeline
		// like one found dead before it (generation-stamp rule): the
		// write still succeeds as long as one replica accepted it. Any
		// other per-replica error fails the append.
		ok := 0
		for i, err := range errs {
			switch {
			case err == nil:
				ok++
			case errors.Is(err, errDeadNode):
				stale = append(stale, live[i].id)
			default:
				last.wmu.Unlock()
				return 0, err
			}
		}
		if ok == 0 {
			last.wmu.Unlock()
			return 0, ErrNoDataNodes
		}
		d.mu.Lock()
		if len(stale) > 0 {
			kept := last.replicas[:0]
			for _, nid := range last.replicas {
				drop := false
				for _, s := range stale {
					if nid == s {
						drop = true
						break
					}
				}
				if !drop {
					kept = append(kept, nid)
				}
			}
			last.replicas = kept
		}
		last.size += n
		d.mu.Unlock()
		last.wmu.Unlock()
		p = p[n:]
		off += n
	}
	return start, nil
}

// readAt reads into p starting at off, returning the number of bytes
// read. Short reads at end-of-file return io.EOF. Block metadata is
// value-snapshotted under the namenode lock: appendAt mutates each
// block's size and replica set in place, and a reader racing a
// concurrent append must see a consistent point-in-time view (reads
// target committed offsets, so acting on the snapshot is safe even as
// the file keeps growing).
func (d *DFS) readAt(path string, p []byte, off int64) (int, error) {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	size := fm.size()
	type blockSnap struct {
		id       blockID
		size     int64
		replicas []int
	}
	blocks := make([]blockSnap, len(fm.blocks))
	for i, b := range fm.blocks {
		blocks[i] = blockSnap{id: b.id, size: b.size, replicas: append([]int(nil), b.replicas...)}
	}
	blockSize := d.cfg.BlockSize
	d.mu.Unlock()

	if off >= size {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < size {
		bi := int(off / blockSize)
		if bi >= len(blocks) {
			break
		}
		b := blocks[bi]
		blockOff := off % blockSize
		n := int64(len(p) - total)
		if rem := b.size - blockOff; n > rem {
			n = rem
		}
		if n <= 0 {
			break
		}
		var (
			data []byte
			err  error
		)
		read := false
		for _, nid := range b.replicas {
			node := d.nodes[nid]
			if !node.Alive() {
				continue
			}
			data, err = node.readBlock(b.id, blockOff, int(n))
			if err == nil {
				read = true
				break
			}
		}
		if !read {
			if err == nil {
				err = ErrNoDataNodes
			}
			return total, fmt.Errorf("dfs: read block %d: %w", b.id, err)
		}
		copy(p[total:], data)
		total += len(data)
		off += int64(len(data))
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// Writer appends to one file. Not safe for concurrent use (one writer
// per file, matching HDFS's single-writer lease model).
type Writer struct {
	d    *DFS
	path string
	off  int64
}

// Write appends p and returns its length.
func (w *Writer) Write(p []byte) (int, error) {
	if _, err := w.d.appendAt(w.path, p); err != nil {
		return 0, err
	}
	w.off += int64(len(p))
	return len(p), nil
}

// Offset returns the file offset at which the next Write will land.
func (w *Writer) Offset() int64 { return w.off }

// Sync is a no-op placeholder: replication is already synchronous, so
// data is durable (in the simulated sense) when Write returns.
func (w *Writer) Sync() error { return nil }

// Close releases the writer.
func (w *Writer) Close() error { return nil }

// Reader reads a file at arbitrary offsets. Safe for concurrent use.
type Reader struct {
	d    *DFS
	path string
}

// ReadAt implements io.ReaderAt over the replicated file.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	return r.d.readAt(r.path, p, off)
}

// Size returns the file's current logical size.
func (r *Reader) Size() (int64, error) { return r.d.Size(r.path) }

// Close releases the reader.
func (r *Reader) Close() error { return nil }

// Truncate cuts the file back to size bytes, discarding the suffix on
// every live replica. This is the block-recovery step a writer performs
// after a torn append: the unacknowledged tail is removed so the file
// ends at the last durable record boundary (HDFS does the equivalent
// during lease/pipeline recovery).
func (d *DFS) Truncate(path string, size int64) error {
	d.mu.Lock()
	fm, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if size < 0 || size > fm.size() {
		d.mu.Unlock()
		return fmt.Errorf("dfs: truncate %s to %d: out of range", path, size)
	}
	type cut struct {
		id       blockID
		size     int64
		replicas []int
		drop     bool
	}
	var cuts []cut
	var off int64
	var kept []*blockMeta
	for _, b := range fm.blocks {
		end := off + b.size
		switch {
		case end <= size: // untouched
			kept = append(kept, b)
		case off >= size: // entirely beyond the cut: drop
			cuts = append(cuts, cut{id: b.id, replicas: b.replicas, drop: true})
		default: // straddles the cut: shrink
			b.size = size - off
			kept = append(kept, b)
			cuts = append(cuts, cut{id: b.id, size: b.size, replicas: b.replicas})
		}
		off = end
	}
	fm.blocks = kept
	nodes := d.nodes
	d.mu.Unlock()

	for _, c := range cuts {
		for _, nid := range c.replicas {
			if !nodes[nid].Alive() {
				continue
			}
			if c.drop {
				nodes[nid].deleteBlock(c.id)
			} else if err := nodes[nid].truncateBlock(c.id, c.size); err != nil {
				return fmt.Errorf("dfs: truncate %s block %d on dn%d: %w", path, c.id, nid, err)
			}
		}
	}
	return nil
}

// BlockInfo is the scrub-facing view of one block of a file.
type BlockInfo struct {
	// Index is the block's position in the file.
	Index int
	// Offset is the file offset at which the block starts.
	Offset int64
	// Size is the number of committed bytes in the block.
	Size int64
	// Replicas lists the datanodes holding a current copy.
	Replicas []int
}

// Blocks returns the block layout of a file — which datanodes hold each
// block — for replica-aware verification (scrubbing).
func (d *DFS) Blocks(path string) ([]BlockInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]BlockInfo, len(fm.blocks))
	var off int64
	for i, b := range fm.blocks {
		out[i] = BlockInfo{
			Index:    i,
			Offset:   off,
			Size:     b.size,
			Replicas: append([]int(nil), b.replicas...),
		}
		off += b.size
	}
	return out, nil
}

// ReadBlockReplica reads the full content of block blockIdx of path as
// stored on datanode nid, bypassing the usual any-replica fallback so a
// scrubber can inspect each copy individually.
func (d *DFS) ReadBlockReplica(path string, blockIdx, nid int) ([]byte, error) {
	d.mu.Lock()
	b, err := d.blockAtLocked(path, blockIdx)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	id, size := b.id, b.size
	holds := false
	for _, r := range b.replicas {
		if r == nid {
			holds = true
			break
		}
	}
	d.mu.Unlock()
	if !holds {
		return nil, fmt.Errorf("dfs: dn%d holds no replica of %s block %d", nid, path, blockIdx)
	}
	return d.nodes[nid].readBlock(id, 0, int(size))
}

// RepairBlockReplica overwrites datanode to's copy of block blockIdx
// with the bytes stored on datanode from — the re-replication step a
// scrubber takes after identifying a corrupt replica.
func (d *DFS) RepairBlockReplica(path string, blockIdx, from, to int) error {
	d.mu.Lock()
	b, err := d.blockAtLocked(path, blockIdx)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	id, size := b.id, b.size
	d.mu.Unlock()
	data, err := d.nodes[from].readBlock(id, 0, int(size))
	if err != nil {
		return fmt.Errorf("dfs: repair %s block %d: read dn%d: %w", path, blockIdx, from, err)
	}
	if err := d.nodes[to].writeBlock(id, 0, data); err != nil {
		return fmt.Errorf("dfs: repair %s block %d: write dn%d: %w", path, blockIdx, to, err)
	}
	return nil
}

// CorruptBlockReplica flips one bit of datanode nid's copy of block
// blockIdx at byte byteOff — persistent, on-disk corruption, the thing
// scrubbing exists to find. Fault-injection surface for tests.
func (d *DFS) CorruptBlockReplica(path string, blockIdx, nid int, byteOff int64) error {
	d.mu.Lock()
	b, err := d.blockAtLocked(path, blockIdx)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	id, size := b.id, b.size
	d.mu.Unlock()
	if byteOff < 0 || byteOff >= size {
		return fmt.Errorf("dfs: corrupt %s block %d: offset %d out of range [0,%d)", path, blockIdx, byteOff, size)
	}
	data, err := d.nodes[nid].readBlock(id, byteOff, 1)
	if err != nil {
		return err
	}
	data[0] ^= 0x01
	return d.nodes[nid].writeBlock(id, byteOff, data)
}

// blockAtLocked returns block blockIdx of path; d.mu must be held.
func (d *DFS) blockAtLocked(path string, blockIdx int) (*blockMeta, error) {
	fm, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if blockIdx < 0 || blockIdx >= len(fm.blocks) {
		return nil, fmt.Errorf("dfs: %s has no block %d", path, blockIdx)
	}
	return fm.blocks[blockIdx], nil
}

// ReplicasAgree reports whether all live replicas of every block of
// path hold byte-identical content (a cheap whole-file integrity probe
// used by tests; Scrub does the CRC-level verification).
func (d *DFS) ReplicasAgree(path string) (bool, error) {
	blocks, err := d.Blocks(path)
	if err != nil {
		return false, err
	}
	for _, b := range blocks {
		var ref []byte
		have := false
		for _, nid := range b.Replicas {
			if !d.nodes[nid].Alive() {
				continue
			}
			data, err := d.ReadBlockReplica(path, b.Index, nid)
			if err != nil {
				return false, err
			}
			if !have {
				ref, have = data, true
			} else if !bytes.Equal(ref, data) {
				return false, nil
			}
		}
	}
	return true, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
