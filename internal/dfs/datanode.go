package dfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/simdisk"
)

// DataNode stores block replicas on a simulated disk. A dead datanode
// rejects all I/O until restarted; its on-disk state survives restarts.
type DataNode struct {
	id     int
	rack   int
	disk   *simdisk.Disk
	faults *fault.Registry
	alive  atomic.Bool

	mu    sync.Mutex
	files map[blockID]*simdisk.File
}

func (n *DataNode) setAlive(v bool) {
	n.alive.Store(v)
	if !v {
		n.mu.Lock()
		for _, f := range n.files {
			f.Close()
		}
		n.files = nil
		n.mu.Unlock()
	}
}

// Alive reports whether the node is accepting I/O.
func (n *DataNode) Alive() bool { return n.alive.Load() }

// ID returns the node's cluster-wide id.
func (n *DataNode) ID() int { return n.id }

// Rack returns the rack the node is placed on.
func (n *DataNode) Rack() int { return n.rack }

// Disk exposes the node's disk for stats inspection in tests/benches.
func (n *DataNode) Disk() *simdisk.Disk { return n.disk }

var errDeadNode = fmt.Errorf("dfs: datanode is dead")

func (n *DataNode) blockFile(id blockID, create bool) (*simdisk.File, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.files == nil {
		n.files = make(map[blockID]*simdisk.File)
	}
	if f, ok := n.files[id]; ok {
		return f, nil
	}
	name := fmt.Sprintf("blk_%012d", id)
	var (
		f   *simdisk.File
		err error
	)
	if n.disk.Exists(name) {
		f, err = n.disk.Open(name)
	} else if create {
		f, err = n.disk.Create(name)
	} else {
		return nil, fmt.Errorf("dfs: dn%d: block %d not found", n.id, id)
	}
	if err != nil {
		return nil, err
	}
	n.files[id] = f
	return f, nil
}

func (n *DataNode) writeBlock(id blockID, off int64, p []byte) error {
	// The replica-level fault point: killing this node via OnFire, a
	// torn fragment (Partial), a persistent bit flip (FlipBit), or a
	// plain write error on this one replica while the others succeed.
	if o := n.faults.Fire(fmt.Sprintf("dfs.dn%d.write", n.id)); o.Injected() {
		if o.Delay > 0 {
			n.disk.Clock().Advance(o.Delay)
		}
		if !n.Alive() { // OnFire may have killed this very node
			return errDeadNode
		}
		if o.FlipBit {
			corrupted := append([]byte(nil), p...)
			fault.Corrupt(corrupted, o.Token)
			p = corrupted
		}
		if o.Partial > 0 && o.Partial < 1 {
			torn := int(float64(len(p)) * o.Partial)
			if err := n.writeBlockBytes(id, off, p[:torn]); err != nil {
				return err
			}
			err := o.Err
			if err == nil {
				err = fault.ErrInjected
			}
			return fmt.Errorf("dfs: dn%d block %d torn after %d/%d bytes: %w",
				n.id, id, torn, len(p), err)
		}
		if o.Err != nil {
			return o.Err
		}
	}
	if !n.Alive() {
		return errDeadNode
	}
	return n.writeBlockBytes(id, off, p)
}

func (n *DataNode) writeBlockBytes(id blockID, off int64, p []byte) error {
	f, err := n.blockFile(id, true)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(p, off)
	return err
}

func (n *DataNode) readBlock(id blockID, off int64, length int) ([]byte, error) {
	if o := n.faults.Fire(fmt.Sprintf("dfs.dn%d.read", n.id)); o.Injected() {
		if o.Delay > 0 {
			n.disk.Clock().Advance(o.Delay)
		}
		if o.Err != nil {
			return nil, o.Err
		}
		if o.FlipBit {
			buf, err := n.readBlockBytes(id, off, length)
			if err == nil && len(buf) > 0 {
				fault.Corrupt(buf, o.Token)
			}
			return buf, err
		}
	}
	return n.readBlockBytes(id, off, length)
}

func (n *DataNode) readBlockBytes(id blockID, off int64, length int) ([]byte, error) {
	if !n.Alive() {
		return nil, errDeadNode
	}
	f, err := n.blockFile(id, false)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, length)
	m, err := f.ReadAt(buf, off)
	if err != nil && m < length {
		return nil, err
	}
	return buf[:m], nil
}

func (n *DataNode) truncateBlock(id blockID, size int64) error {
	if !n.Alive() {
		return errDeadNode
	}
	f, err := n.blockFile(id, false)
	if err != nil {
		return err
	}
	return f.Truncate(size)
}

func (n *DataNode) deleteBlock(id blockID) {
	if !n.Alive() {
		return
	}
	n.mu.Lock()
	if f, ok := n.files[id]; ok {
		f.Close()
		delete(n.files, id)
	}
	n.mu.Unlock()
	name := fmt.Sprintf("blk_%012d", id)
	if n.disk.Exists(name) {
		n.disk.Remove(name) //nolint:errcheck // best-effort GC
	}
}
