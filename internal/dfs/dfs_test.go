package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/simdisk"
)

func newTestDFS(t *testing.T, cfg Config) *DFS {
	t.Helper()
	if cfg.NumDataNodes == 0 {
		cfg.NumDataNodes = 4
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	d, err := New(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestCreateWriteReadBack(t *testing.T) {
	d := newTestDFS(t, Config{})
	w, err := d.Create("logs/seg1")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	data := []byte("the log is the database")
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := d.Open("logs/seg1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read %q, want %q", got, data)
	}
}

func TestCreateExisting(t *testing.T) {
	d := newTestDFS(t, Config{})
	if _, err := d.Create("f"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := d.Create("f"); !errors.Is(err, ErrExists) {
		t.Errorf("second Create err = %v, want ErrExists", err)
	}
}

func TestOpenMissing(t *testing.T) {
	d := newTestDFS(t, Config{})
	if _, err := d.Open("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open missing err = %v, want ErrNotFound", err)
	}
	if _, err := d.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size missing err = %v, want ErrNotFound", err)
	}
	if err := d.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete missing err = %v, want ErrNotFound", err)
	}
}

func TestMultiBlockFile(t *testing.T) {
	d := newTestDFS(t, Config{BlockSize: 256})
	w, err := d.Create("big")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var want bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		chunk := make([]byte, 100)
		rng.Read(chunk)
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	size, err := d.Size("big")
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != 2000 {
		t.Fatalf("size = %d, want 2000", size)
	}

	r, _ := d.Open("big")
	got := make([]byte, 2000)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("multi-block content mismatch")
	}

	// Cross-block random reads.
	for trial := 0; trial < 50; trial++ {
		off := rng.Int63n(1900)
		n := 1 + rng.Intn(100)
		buf := make([]byte, n)
		m, err := r.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d,%d): %v", off, n, err)
		}
		if !bytes.Equal(buf[:m], want.Bytes()[off:off+int64(m)]) {
			t.Fatalf("random read at %d len %d mismatch", off, n)
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	d := newTestDFS(t, Config{})
	w, _ := d.Create("f")
	w.Write([]byte("abc"))
	r, _ := d.Open("f")
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Errorf("short read: n=%d err=%v, want 3/EOF", n, err)
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("read past EOF err=%v, want EOF", err)
	}
}

func TestReplicationFactor(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 5, ReplicationFactor: 3, BlockSize: 128})
	w, _ := d.Create("f")
	w.Write(make([]byte, 500)) // 4 blocks

	d.mu.Lock()
	fm := d.files["f"]
	for _, b := range fm.blocks {
		if len(b.replicas) != 3 {
			t.Errorf("block %d has %d replicas, want 3", b.id, len(b.replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.replicas {
			if seen[r] {
				t.Errorf("block %d replicated twice on dn%d", b.id, r)
			}
			seen[r] = true
		}
	}
	d.mu.Unlock()
}

func TestRackAwarePlacement(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 6, Racks: 2, ReplicationFactor: 3, BlockSize: 64})
	w, _ := d.Create("f")
	w.Write(make([]byte, 64*8))

	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range d.files["f"].blocks {
		racks := map[int]bool{}
		for _, nid := range b.replicas {
			racks[d.nodes[nid].Rack()] = true
		}
		if len(racks) < 2 {
			t.Errorf("block %d replicas all on one rack: %v", b.id, b.replicas)
		}
	}
}

func TestAppendAfterReopen(t *testing.T) {
	d := newTestDFS(t, Config{})
	w, _ := d.Create("f")
	w.Write([]byte("first,"))
	w.Close()

	w2, err := d.OpenAppend("f")
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if w2.Offset() != 6 {
		t.Errorf("append offset = %d, want 6", w2.Offset())
	}
	w2.Write([]byte("second"))

	r, _ := d.Open("f")
	buf := make([]byte, 12)
	r.ReadAt(buf, 0)
	if string(buf) != "first,second" {
		t.Errorf("content = %q", buf)
	}
}

func TestDeleteRemovesBlocks(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, ReplicationFactor: 3, BlockSize: 128})
	w, _ := d.Create("f")
	w.Write(make([]byte, 512))
	if err := d.Delete("f"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if d.Exists("f") {
		t.Error("file exists after delete")
	}
	for i := 0; i < 3; i++ {
		names, err := d.DataNode(i).Disk().List()
		if err != nil {
			t.Fatalf("List dn%d: %v", i, err)
		}
		if len(names) != 0 {
			t.Errorf("dn%d still holds blocks %v after delete", i, names)
		}
	}
}

func TestRename(t *testing.T) {
	d := newTestDFS(t, Config{})
	w, _ := d.Create("tmp/x")
	w.Write([]byte("payload"))
	if err := d.Rename("tmp/x", "final/x"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if d.Exists("tmp/x") || !d.Exists("final/x") {
		t.Error("rename did not move the file")
	}
	r, _ := d.Open("final/x")
	buf := make([]byte, 7)
	r.ReadAt(buf, 0)
	if string(buf) != "payload" {
		t.Errorf("content after rename = %q", buf)
	}
}

func TestList(t *testing.T) {
	d := newTestDFS(t, Config{})
	for _, p := range []string{"log/2", "log/1", "idx/a"} {
		if _, err := d.Create(p); err != nil {
			t.Fatalf("Create %s: %v", p, err)
		}
	}
	got := d.List("log/")
	if len(got) != 2 || got[0] != "log/1" || got[1] != "log/2" {
		t.Errorf("List(log/) = %v", got)
	}
	if n := len(d.List("")); n != 3 {
		t.Errorf("List(\"\") returned %d entries, want 3", n)
	}
}

func TestReadSurvivesSingleFailure(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 4, ReplicationFactor: 3, BlockSize: 256})
	w, _ := d.Create("f")
	payload := bytes.Repeat([]byte("q"), 1000)
	w.Write(payload)

	d.KillDataNode(0)
	d.KillDataNode(1)

	r, _ := d.Open("f")
	got := make([]byte, 1000)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt with 2 nodes dead: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("content mismatch after failures")
	}
}

func TestRecoverReplication(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 5, ReplicationFactor: 3, BlockSize: 256})
	w, _ := d.Create("f")
	payload := bytes.Repeat([]byte("r"), 1024)
	w.Write(payload)

	d.KillDataNode(2)
	if ur := d.UnderReplicated(); ur == 0 {
		t.Skip("killed node held no replicas; placement avoided it")
	}
	n, err := d.RecoverReplication()
	if err != nil {
		t.Fatalf("RecoverReplication: %v", err)
	}
	if n == 0 {
		t.Error("no replicas created despite under-replication")
	}
	if ur := d.UnderReplicated(); ur != 0 {
		t.Errorf("still %d under-replicated blocks", ur)
	}
	// Content must remain intact read from the new replica set.
	r, _ := d.Open("f")
	got := make([]byte, 1024)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("content mismatch after re-replication")
	}
}

func TestWriteSkipsDeadReplica(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, ReplicationFactor: 3, BlockSize: 1 << 20})
	w, _ := d.Create("f")
	w.Write([]byte("before"))
	d.KillDataNode(0)
	if _, err := w.Write([]byte("-after")); err != nil {
		t.Fatalf("Write with dead replica: %v", err)
	}
	r, _ := d.Open("f")
	buf := make([]byte, 12)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "before-after" {
		t.Errorf("content = %q", buf)
	}
}

func TestAllNodesDead(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 2, ReplicationFactor: 2})
	w, _ := d.Create("f")
	d.KillDataNode(0)
	d.KillDataNode(1)
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("Write succeeded with all datanodes dead")
	}
}

func TestConcurrentFiles(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 4, BlockSize: 512})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := fmt.Sprintf("file-%d", g)
			w, err := d.Create(path)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := w.Write(bytes.Repeat([]byte{byte(g)}, 64)); err != nil {
					errs <- err
					return
				}
			}
			r, err := d.Open(path)
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 64*50)
			if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
				errs <- err
				return
			}
			for _, b := range buf {
				if b != byte(g) {
					errs <- fmt.Errorf("file %d corrupted", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDiskCostPropagates(t *testing.T) {
	clock := &simdisk.Clock{}
	cfg := Config{
		NumDataNodes:      3,
		ReplicationFactor: 3,
		BlockSize:         1024,
		DiskModel:         simdisk.Model{SeekLatency: 1e6, WriteBytesPerSec: 1 << 10},
		Clock:             clock,
	}
	d, err := New(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w, _ := d.Create("f")
	w.Write([]byte("cost me"))
	if clock.Elapsed() == 0 {
		t.Error("write charged no virtual time despite seek latency model")
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 2, BlockSize: 1024})
	cfg := d.Config()
	if cfg.ReplicationFactor != 2 { // clamped from default 3 to cluster size
		t.Errorf("replication factor = %d, want 2 (clamped)", cfg.ReplicationFactor)
	}
	if cfg.Racks != 2 {
		t.Errorf("racks = %d, want default 2", cfg.Racks)
	}
}
