package dfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRestartedDataNodeServesOldBlocks(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, ReplicationFactor: 3, BlockSize: 256})
	w, _ := d.Create("f")
	payload := bytes.Repeat([]byte("p"), 700)
	w.Write(payload)

	d.KillDataNode(0)
	d.RestartDataNode(0)
	// The restarted node still holds its replicas on disk; reads served
	// from it must be correct.
	d.KillDataNode(1)
	d.KillDataNode(2)
	r, _ := d.Open("f")
	got := make([]byte, len(payload))
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt from restarted node: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("restarted node served corrupt data")
	}
}

func TestWritesAfterRestartGoEverywhere(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, ReplicationFactor: 3, BlockSize: 1 << 20})
	w, _ := d.Create("f")
	w.Write([]byte("one"))
	d.KillDataNode(0)
	w.Write([]byte("two")) // skips dead replica
	d.RestartDataNode(0)
	w.Write([]byte("three")) // resumes writing to it

	// Node 0 has a hole ("two" missing) — reading via other replicas
	// must still return the full content.
	r, _ := d.Open("f")
	buf := make([]byte, 11)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "onetwothree" {
		t.Errorf("content = %q", buf)
	}
}

func TestOpenAppendMissing(t *testing.T) {
	d := newTestDFS(t, Config{})
	if _, err := d.OpenAppend("ghost"); err == nil {
		t.Error("OpenAppend on missing file succeeded")
	}
}

func TestRenameErrors(t *testing.T) {
	d := newTestDFS(t, Config{})
	d.Create("a")
	d.Create("b")
	if err := d.Rename("missing", "x"); err == nil {
		t.Error("rename of missing file succeeded")
	}
	if err := d.Rename("a", "b"); err == nil {
		t.Error("rename onto existing file succeeded")
	}
}

func TestUnderReplicatedCounts(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 4, ReplicationFactor: 3, BlockSize: 128})
	w, _ := d.Create("f")
	w.Write(make([]byte, 128*4)) // 4 blocks
	if ur := d.UnderReplicated(); ur != 0 {
		t.Fatalf("healthy cluster reports %d under-replicated", ur)
	}
	d.KillDataNode(0)
	d.KillDataNode(1)
	if ur := d.UnderReplicated(); ur == 0 {
		t.Error("two dead nodes, zero under-replicated blocks")
	}
	if _, err := d.RecoverReplication(); err != nil {
		t.Fatalf("RecoverReplication: %v", err)
	}
	if ur := d.UnderReplicated(); ur != 0 {
		t.Errorf("%d blocks still under-replicated after recovery", ur)
	}
}

func TestQuickReadBackAnyOffset(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, BlockSize: 97}) // awkward block size
	w, _ := d.Create("f")
	content := make([]byte, 3000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	w.Write(content)
	r, _ := d.Open("f")
	f := func(off uint16, n uint8) bool {
		o := int64(off) % 3000
		ln := int(n)%64 + 1
		buf := make([]byte, ln)
		m, err := r.ReadAt(buf, o)
		if err != nil && err != io.EOF {
			return false
		}
		want := content[o:]
		if len(want) > m {
			want = want[:m]
		}
		return bytes.Equal(buf[:m], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestManySmallFilesGC(t *testing.T) {
	d := newTestDFS(t, Config{NumDataNodes: 3, ReplicationFactor: 2, BlockSize: 64})
	for i := 0; i < 30; i++ {
		w, err := d.Create(string(rune('a' + i%26)))
		if err != nil {
			// duplicate name: fine, skip
			continue
		}
		w.Write(make([]byte, 100))
	}
	for _, p := range d.List("") {
		if err := d.Delete(p); err != nil {
			t.Fatalf("Delete %s: %v", p, err)
		}
	}
	// All block files must be gone from every datanode.
	for i := 0; i < 3; i++ {
		names, _ := d.DataNode(i).Disk().List()
		if len(names) != 0 {
			t.Errorf("dn%d leaked %d block files", i, len(names))
		}
	}
}
