package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
)

func newFaultDFS(t *testing.T, nodes int, reg *fault.Registry) *DFS {
	t.Helper()
	fs, err := New(t.TempDir(), Config{NumDataNodes: nodes, BlockSize: 1 << 20, Faults: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fs
}

// Re-replication of an under-replicated block racing a concurrent
// append to the same (still-filling) block: every byte acknowledged by
// a Write must be readable afterwards, and the cluster must converge
// to full replication with all replicas byte-identical.
func TestRecoverReplicationRacesConcurrentAppend(t *testing.T) {
	fs := newFaultDFS(t, 4, nil)
	w, err := fs.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	chunk := bytes.Repeat([]byte("x"), 512)
	if _, err := w.Write(chunk); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	fs.KillDataNode(blocks[0].Replicas[0]) // block 0 becomes under-replicated

	var wrote int
	var wg sync.WaitGroup
	wg.Add(2)
	werrCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			if _, err := w.Write(chunk); err != nil {
				werrCh <- fmt.Errorf("append %d: %w", i, err)
				return
			}
			wrote++
		}
		werrCh <- nil
	}()
	rerrCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			if _, err := fs.RecoverReplication(); err != nil {
				rerrCh <- err
				return
			}
		}
		rerrCh <- nil
	}()
	wg.Wait()
	if err := <-werrCh; err != nil {
		t.Fatal(err)
	}
	if err := <-rerrCh; err != nil {
		t.Fatalf("RecoverReplication racing append: %v", err)
	}

	// Converge (the racing recovery may have copied a partial block; a
	// quiesced pass must finish the job) and verify every replica of
	// every block agrees with the committed contents.
	if _, err := fs.RecoverReplication(); err != nil {
		t.Fatalf("final RecoverReplication: %v", err)
	}
	if n := fs.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated = %d after recovery", n)
	}
	size, _ := fs.Size("f")
	want := int64((1 + wrote) * len(chunk))
	if size != want {
		t.Fatalf("file size %d, want %d", size, want)
	}
	r, _ := fs.Open("f")
	got := make([]byte, size)
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, b := range got {
		if b != 'x' {
			t.Fatalf("byte %d = %q, want 'x'", i, b)
		}
	}
	ok, err := fs.ReplicasAgree("f")
	if err != nil {
		t.Fatalf("ReplicasAgree: %v", err)
	}
	if !ok {
		t.Fatal("replicas diverge after re-replication raced an append")
	}
}

// ReplicationFactor temporarily unsatisfiable: with all but one node
// dead, writes still succeed on the survivor; when nodes return,
// re-replication restores the configured factor.
func TestReplicationFactorUnsatisfiableThenRecovers(t *testing.T) {
	fs := newFaultDFS(t, 3, nil)
	w, err := fs.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("before")); err != nil {
		t.Fatalf("write before failures: %v", err)
	}
	fs.KillDataNode(0)
	fs.KillDataNode(1)
	if _, err := w.Write([]byte("-during")); err != nil {
		t.Fatalf("write with one survivor: %v", err)
	}
	// Force a block placed while only one node is live.
	w2, err := fs.Create("g")
	if err != nil {
		t.Fatalf("Create g: %v", err)
	}
	if _, err := w2.Write([]byte("solo")); err != nil {
		t.Fatalf("write new file with one survivor: %v", err)
	}
	blocks, _ := fs.Blocks("g")
	if len(blocks[0].Replicas) != 1 {
		t.Fatalf("solo block has %d replicas, want 1", len(blocks[0].Replicas))
	}

	// All nodes dead: writes must fail with ErrNoDataNodes, not hang.
	fs.KillDataNode(2)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("write with no nodes = %v, want ErrNoDataNodes", err)
	}

	// Nodes return; replication converges back to the factor.
	fs.RestartDataNode(0)
	fs.RestartDataNode(1)
	fs.RestartDataNode(2)
	if n := fs.UnderReplicated(); n == 0 {
		t.Fatal("expected under-replicated blocks before recovery")
	}
	if _, err := fs.RecoverReplication(); err != nil {
		t.Fatalf("RecoverReplication: %v", err)
	}
	if n := fs.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated = %d after nodes returned", n)
	}
	for _, path := range []string{"f", "g"} {
		for _, b := range mustBlocks(t, fs, path) {
			if len(b.Replicas) < 3 {
				t.Fatalf("%s block %d has %d replicas, want 3", path, b.Index, len(b.Replicas))
			}
		}
		ok, err := fs.ReplicasAgree(path)
		if err != nil || !ok {
			t.Fatalf("%s replicas agree = %v, %v", path, ok, err)
		}
	}
	r, _ := fs.Open("f")
	buf := make([]byte, 13)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("read back f: %v", err)
	}
	if string(buf) != "before-during" {
		t.Fatalf("f content %q", buf)
	}
}

func mustBlocks(t *testing.T, fs *DFS, path string) []BlockInfo {
	t.Helper()
	blocks, err := fs.Blocks(path)
	if err != nil {
		t.Fatalf("Blocks(%s): %v", path, err)
	}
	return blocks
}

// A datanode kill *schedule*: the node dies mid-workload at an armed
// write point; appends keep succeeding on the remaining replicas and
// the dead node is dropped from the affected block's replica set.
func TestDataNodeKillScheduleDuringAppends(t *testing.T) {
	reg := fault.New(11)
	fs := newFaultDFS(t, 3, reg)
	var killOnce sync.Once
	reg.Arm("dfs.dn1.write", fault.Policy{After: 5, Times: 1, OnFire: func() {
		killOnce.Do(func() { fs.KillDataNode(1) })
	}})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Write(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatalf("write %d (after scheduled kill): %v", i, err)
		}
	}
	if fs.DataNode(1).Alive() {
		t.Fatal("kill schedule never fired")
	}
	r, _ := fs.Open("f")
	buf := make([]byte, 20*64)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	for i := 0; i < 20; i++ {
		if buf[i*64] != byte(i) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
}

// Truncate cuts across block boundaries and drops whole trailing
// blocks on every live replica.
func TestTruncateAcrossBlocks(t *testing.T) {
	fs, err := New(t.TempDir(), Config{NumDataNodes: 3, BlockSize: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w, _ := fs.Create("f")
	data := make([]byte, 350)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := fs.Truncate("f", 150); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if size, _ := fs.Size("f"); size != 150 {
		t.Fatalf("size after truncate = %d, want 150", size)
	}
	blocks, _ := fs.Blocks("f")
	if len(blocks) != 2 || blocks[1].Size != 50 {
		t.Fatalf("blocks after truncate: %+v", blocks)
	}
	r, _ := fs.Open("f")
	got := make([]byte, 150)
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i))
		}
	}
	// Appends continue at the cut.
	w2, _ := fs.OpenAppend("f")
	if _, err := w2.Write([]byte{0xFF}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	one := make([]byte, 1)
	if _, err := r.ReadAt(one, 150); err != nil || one[0] != 0xFF {
		t.Fatalf("read appended byte: %v %x", err, one)
	}
	if err := fs.Truncate("f", 1000); err == nil {
		t.Fatal("truncate beyond EOF succeeded")
	}
}

// CorruptBlockReplica + ReadBlockReplica + RepairBlockReplica: the
// primitive scrub cycle at the DFS layer.
func TestCorruptAndRepairBlockReplica(t *testing.T) {
	fs := newFaultDFS(t, 3, nil)
	w, _ := fs.Create("f")
	if _, err := w.Write(bytes.Repeat([]byte("a"), 256)); err != nil {
		t.Fatalf("write: %v", err)
	}
	blocks := mustBlocks(t, fs, "f")
	victim, healthy := blocks[0].Replicas[0], blocks[0].Replicas[1]
	if err := fs.CorruptBlockReplica("f", 0, victim, 10); err != nil {
		t.Fatalf("CorruptBlockReplica: %v", err)
	}
	if ok, _ := fs.ReplicasAgree("f"); ok {
		t.Fatal("replicas agree despite corruption")
	}
	bad, err := fs.ReadBlockReplica("f", 0, victim)
	if err != nil {
		t.Fatalf("ReadBlockReplica: %v", err)
	}
	if bad[10] == 'a' {
		t.Fatal("corruption did not land")
	}
	if err := fs.RepairBlockReplica("f", 0, healthy, victim); err != nil {
		t.Fatalf("RepairBlockReplica: %v", err)
	}
	if ok, _ := fs.ReplicasAgree("f"); !ok {
		t.Fatal("replicas still diverge after repair")
	}
	if _, err := fs.ReadBlockReplica("f", 0, 99); err == nil {
		t.Fatal("ReadBlockReplica accepted bogus node")
	}
}
