package readopt

import (
	"bytes"
	"testing"
)

func TestPredicateMatch(t *testing.T) {
	cases := []struct {
		name string
		p    *Predicate
		in   []byte
		want bool
	}{
		{"nil matches", nil, []byte("anything"), true},
		{"prefix hit", Prefix([]byte("user/")), []byte("user/007"), true},
		{"prefix miss", Prefix([]byte("user/")), []byte("item/007"), false},
		{"contains hit", Contains([]byte("cart")), []byte("/cart/add"), true},
		{"contains miss", Contains([]byte("cart")), []byte("/home"), false},
		{"range inside", Range([]byte("b"), []byte("d")), []byte("c"), true},
		{"range low edge", Range([]byte("b"), []byte("d")), []byte("b"), true},
		{"range high edge", Range([]byte("b"), []byte("d")), []byte("d"), false},
		{"range below", Range([]byte("b"), []byte("d")), []byte("a"), false},
		{"range open low", Range(nil, []byte("d")), []byte("a"), true},
		{"range open high", Range([]byte("b"), nil), []byte("zzz"), true},
		{"set hit", InSet([][]byte{[]byte("c3"), []byte("a1"), []byte("b2")}), []byte("b2"), true},
		{"set miss", InSet([][]byte{[]byte("c3"), []byte("a1")}), []byte("b2"), false},
		{"set empty", InSet(nil), []byte("x"), false},
		{"set dup input", InSet([][]byte{[]byte("k"), []byte("k")}), []byte("k"), true},
	}
	for _, c := range cases {
		if got := c.p.Match(c.in); got != c.want {
			t.Errorf("%s: Match(%q) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestPredicateWireRoundTrip(t *testing.T) {
	preds := []*Predicate{
		Prefix([]byte("user/007/")),
		Prefix([]byte("sp ace%and*star")),
		Contains([]byte{0x00, 0x01, 0xff}),
		Range([]byte("a"), []byte("q")),
		Range(nil, []byte("q")),
		Range([]byte("a"), nil),
		InSet([][]byte{[]byte("k one"), []byte("k*two"), {0x00, 0xff}}),
		InSet(nil),
	}
	for _, p := range preds {
		wire := p.EncodeWire()
		got, rest, err := ParsePredicate(append(splitTokens(wire), "TAIL"))
		if err != nil {
			t.Fatalf("parse %q: %v", wire, err)
		}
		if len(rest) != 1 || rest[0] != "TAIL" {
			t.Fatalf("parse %q left %v", wire, rest)
		}
		if got.Kind != p.Kind || !bytes.Equal(got.A, p.A) || !bytes.Equal(got.B, p.B) {
			t.Fatalf("round trip %q: got %+v, want %+v", wire, got, p)
		}
		if len(got.Set) != len(p.Set) {
			t.Fatalf("round trip %q: set %d members, want %d", wire, len(got.Set), len(p.Set))
		}
		for i := range p.Set {
			if !bytes.Equal(got.Set[i], p.Set[i]) {
				t.Fatalf("round trip %q: set[%d] = %q, want %q", wire, i, got.Set[i], p.Set[i])
			}
		}
	}
}

func TestSetBounds(t *testing.T) {
	p := InSet([][]byte{[]byte("m"), []byte("b"), []byte("x")})
	lo, hi, ok := p.SetBounds()
	if !ok || !bytes.Equal(lo, []byte("b")) || !bytes.Equal(hi, []byte("x\x00")) {
		t.Fatalf("SetBounds = %q, %q, %v", lo, hi, ok)
	}
	if _, _, ok := Prefix([]byte("p")).SetBounds(); ok {
		t.Fatal("SetBounds on PREFIX should report !ok")
	}
	if _, _, ok := InSet(nil).SetBounds(); ok {
		t.Fatal("SetBounds on empty set should report !ok")
	}
}

func splitTokens(s string) []string {
	var out []string
	for _, f := range bytes.Fields([]byte(s)) {
		out = append(out, string(f))
	}
	return out
}

func TestParsePredicateErrors(t *testing.T) {
	for _, tokens := range [][]string{
		nil,
		{"PREFIX"},
		{"RANGE", "a"},
		{"NOPE", "x"},
		{"PREFIX", "%zz"},
		{"PREFIX", "abc%2"},
		{"SET"},
		{"SET", "x"},
		{"SET", "2", "only-one"},
	} {
		if _, _, err := ParsePredicate(tokens); err == nil {
			t.Errorf("ParsePredicate(%v): expected error", tokens)
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := PrefixEnd([]byte("abc")); !bytes.Equal(got, []byte("abd")) {
		t.Fatalf("PrefixEnd(abc) = %q", got)
	}
	if got := PrefixEnd([]byte{'a', 0xff}); !bytes.Equal(got, []byte{'b'}) {
		t.Fatalf("PrefixEnd(a\\xff) = %q", got)
	}
	if got := PrefixEnd([]byte{0xff, 0xff}); got != nil {
		t.Fatalf("PrefixEnd(all-ff) = %q, want nil", got)
	}
	if got := PrefixEnd(nil); got != nil {
		t.Fatalf("PrefixEnd(nil) = %q, want nil", got)
	}
}

func TestClampRange(t *testing.T) {
	o := Options{Prefix: []byte("user/")}
	start, end := o.ClampRange(nil, nil)
	if !bytes.Equal(start, []byte("user/")) || !bytes.Equal(end, []byte("user0")) {
		t.Fatalf("ClampRange open = [%q, %q)", start, end)
	}
	// Tighter caller bounds survive.
	start, end = o.ClampRange([]byte("user/7"), []byte("user/9"))
	if !bytes.Equal(start, []byte("user/7")) || !bytes.Equal(end, []byte("user/9")) {
		t.Fatalf("ClampRange tighter = [%q, %q)", start, end)
	}
	// No prefix: bounds unchanged.
	start, end = Options{}.ClampRange([]byte("a"), nil)
	if !bytes.Equal(start, []byte("a")) || end != nil {
		t.Fatalf("ClampRange no prefix = [%q, %v)", start, end)
	}
}
