// Package readopt defines the composable push-down read options shared
// by every layer of the read path: the public Store API collects them,
// the wire protocol (internal/textproto) serialises them, the cluster
// routing client ships them to tablet servers, and the tablet server
// (internal/core) evaluates them against the multiversion index — so a
// limited or filtered scan stops issuing log reads at the server
// instead of dragging every row across the cluster.
//
// Everything here is data, not code: predicates are a small closed set
// (prefix / contains / range / set) with a textual wire form, NOT Go
// closures, which is what lets them cross a process boundary.
package readopt

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PredKind enumerates the serializable predicate operators.
type PredKind uint8

const (
	// PredPrefix matches operands beginning with A.
	PredPrefix PredKind = iota + 1
	// PredContains matches operands containing the subslice A.
	PredContains
	// PredRange matches operands in [A, B); nil bounds are open.
	PredRange
	// PredSet matches operands equal to any member of Set. This is the
	// broadcast form the join executor ships to the far side of a
	// distributed equi-join: the small side's matched keys, evaluated on
	// index entries at the tablet server before any log read.
	PredSet
)

// String names the operator in the wire form (PREFIX, CONTAINS, RANGE).
func (k PredKind) String() string {
	switch k {
	case PredPrefix:
		return "PREFIX"
	case PredContains:
		return "CONTAINS"
	case PredRange:
		return "RANGE"
	case PredSet:
		return "SET"
	}
	return fmt.Sprintf("PredKind(%d)", uint8(k))
}

// Predicate is one serializable predicate over a byte string (a row key
// or a row value). The zero Predicate is invalid; build them with
// Prefix, Contains, or Range.
type Predicate struct {
	Kind PredKind
	// A is the prefix, the contained subslice, or the range low bound.
	A []byte
	// B is the range high bound (exclusive; nil = open). Unused by
	// PredPrefix and PredContains.
	B []byte
	// Set holds the PredSet membership list, sorted and deduplicated by
	// the InSet constructor. Unused by the other kinds.
	Set [][]byte
}

// Prefix matches byte strings starting with p.
func Prefix(p []byte) *Predicate { return &Predicate{Kind: PredPrefix, A: cp(p)} }

// Contains matches byte strings containing sub.
func Contains(sub []byte) *Predicate { return &Predicate{Kind: PredContains, A: cp(sub)} }

// Range matches byte strings in [lo, hi); nil bounds are open.
func Range(lo, hi []byte) *Predicate { return &Predicate{Kind: PredRange, A: cp(lo), B: cp(hi)} }

// InSet matches byte strings equal to any member of vals. The set is
// copied, sorted, and deduplicated, so Match can binary-search and the
// wire form is canonical regardless of the caller's ordering.
func InSet(vals [][]byte) *Predicate {
	set := make([][]byte, 0, len(vals))
	for _, v := range vals {
		set = append(set, cp(v))
	}
	sort.Slice(set, func(i, j int) bool { return bytes.Compare(set[i], set[j]) < 0 })
	dedup := set[:0]
	for _, v := range set {
		if len(dedup) == 0 || !bytes.Equal(dedup[len(dedup)-1], v) {
			dedup = append(dedup, v)
		}
	}
	return &Predicate{Kind: PredSet, Set: dedup}
}

func cp(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Match evaluates the predicate against b. A nil predicate matches
// everything (callers may hold a *Predicate that was never set).
func (p *Predicate) Match(b []byte) bool {
	if p == nil {
		return true
	}
	switch p.Kind {
	case PredPrefix:
		return bytes.HasPrefix(b, p.A)
	case PredContains:
		return bytes.Contains(b, p.A)
	case PredRange:
		if len(p.A) > 0 && bytes.Compare(b, p.A) < 0 {
			return false
		}
		return p.B == nil || bytes.Compare(b, p.B) < 0
	case PredSet:
		i := sort.Search(len(p.Set), func(i int) bool { return bytes.Compare(p.Set[i], b) >= 0 })
		return i < len(p.Set) && bytes.Equal(p.Set[i], b)
	}
	return false
}

// SetBounds returns the smallest range [lo, hi) covering every member
// of a PredSet (ok=false for other kinds or an empty set). Callers use
// it to clamp the scan bounds shipped alongside the predicate.
func (p *Predicate) SetBounds() (lo, hi []byte, ok bool) {
	if p == nil || p.Kind != PredSet || len(p.Set) == 0 {
		return nil, nil, false
	}
	lo = p.Set[0]
	last := p.Set[len(p.Set)-1]
	hi = append(cp(last), 0)
	return lo, hi, true
}

// Wire form: predicates serialise to space-separated tokens with %-
// escaped operands, e.g.
//
//	PREFIX user/007/
//	CONTAINS %20checkout
//	RANGE user/000 user/100
//
// A RANGE open bound is the literal "*". Escaping covers space, '%',
// '*', and control bytes, so any key material round-trips.

// EncodeWire renders the predicate in its wire form.
func (p *Predicate) EncodeWire() string {
	switch p.Kind {
	case PredPrefix, PredContains:
		return p.Kind.String() + " " + EscapeOperand(p.A)
	case PredRange:
		lo, hi := "*", "*"
		if len(p.A) > 0 {
			lo = EscapeOperand(p.A)
		}
		if p.B != nil {
			hi = EscapeOperand(p.B)
		}
		return "RANGE " + lo + " " + hi
	case PredSet:
		var sb strings.Builder
		fmt.Fprintf(&sb, "SET %d", len(p.Set))
		for _, v := range p.Set {
			sb.WriteByte(' ')
			sb.WriteString(EscapeOperand(v))
		}
		return sb.String()
	}
	return ""
}

// ParsePredicate consumes one predicate from the front of tokens and
// returns it with the unconsumed tail. Operands are unescaped.
func ParsePredicate(tokens []string) (*Predicate, []string, error) {
	if len(tokens) == 0 {
		return nil, tokens, fmt.Errorf("readopt: empty predicate")
	}
	switch strings.ToUpper(tokens[0]) {
	case "PREFIX", "CONTAINS":
		if len(tokens) < 2 {
			return nil, tokens, fmt.Errorf("readopt: %s needs an operand", strings.ToUpper(tokens[0]))
		}
		a, err := UnescapeOperand(tokens[1])
		if err != nil {
			return nil, tokens, err
		}
		kind := PredPrefix
		if strings.ToUpper(tokens[0]) == "CONTAINS" {
			kind = PredContains
		}
		return &Predicate{Kind: kind, A: a}, tokens[2:], nil
	case "RANGE":
		if len(tokens) < 3 {
			return nil, tokens, fmt.Errorf("readopt: RANGE needs two operands")
		}
		var lo, hi []byte
		var err error
		if tokens[1] != "*" {
			if lo, err = UnescapeOperand(tokens[1]); err != nil {
				return nil, tokens, err
			}
		}
		if tokens[2] != "*" {
			if hi, err = UnescapeOperand(tokens[2]); err != nil {
				return nil, tokens, err
			}
			if hi == nil {
				hi = []byte{}
			}
		}
		return &Predicate{Kind: PredRange, A: lo, B: hi}, tokens[3:], nil
	case "SET":
		if len(tokens) < 2 {
			return nil, tokens, fmt.Errorf("readopt: SET needs a count")
		}
		n, err := strconv.Atoi(tokens[1])
		if err != nil || n < 0 {
			return nil, tokens, fmt.Errorf("readopt: bad SET count %q", tokens[1])
		}
		if len(tokens) < 2+n {
			return nil, tokens, fmt.Errorf("readopt: SET %d wants %d operands, have %d", n, n, len(tokens)-2)
		}
		vals := make([][]byte, 0, n)
		for _, tok := range tokens[2 : 2+n] {
			v, err := UnescapeOperand(tok)
			if err != nil {
				return nil, tokens, err
			}
			vals = append(vals, v)
		}
		return InSet(vals), tokens[2+n:], nil
	}
	return nil, tokens, fmt.Errorf("readopt: unknown predicate %q", tokens[0])
}

// EscapeOperand %-escapes bytes that would break space-separated
// tokenisation (space, '%', '*', control bytes, and 0x7f+).
func EscapeOperand(b []byte) string {
	var sb strings.Builder
	for _, c := range b {
		if c <= 0x20 || c == '%' || c == '*' || c >= 0x7f {
			fmt.Fprintf(&sb, "%%%02x", c)
		} else {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// UnescapeOperand reverses EscapeOperand.
func UnescapeOperand(s string) ([]byte, error) {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			out = append(out, s[i])
			continue
		}
		if i+3 > len(s) {
			return nil, fmt.Errorf("readopt: truncated %%-escape in %q", s)
		}
		var c byte
		if _, err := fmt.Sscanf(s[i+1:i+3], "%02x", &c); err != nil {
			return nil, fmt.Errorf("readopt: bad %%-escape in %q", s)
		}
		out = append(out, c)
		i += 2
	}
	return out, nil
}

// Options is the resolved push-down read option set: what a Scan,
// FullScan, or Read evaluates at the tablet server. The zero value
// means "everything, forward, at the latest snapshot".
type Options struct {
	// Limit caps the number of rows returned (after all filtering);
	// 0 = unlimited. The server stops issuing log reads once the limit
	// is reached.
	Limit int
	// Reverse returns rows in descending key order (descending
	// timestamp order for version reads).
	Reverse bool
	// Snapshot pins the scan at this timestamp; 0 = the latest
	// committed timestamp at call time.
	Snapshot int64
	// Prefix restricts the scan to keys with this prefix (an
	// intersection with the positional [start, end) bounds).
	Prefix []byte
	// MinTS / MaxTS, when non-zero, keep only rows whose visible
	// version was committed in [MinTS, MaxTS].
	MinTS, MaxTS int64
	// Key keeps only rows whose key matches; evaluated on index
	// entries, before any log read.
	Key *Predicate
	// Value keeps only rows whose value matches; evaluated after the
	// log read, still inside the tablet server.
	Value *Predicate
	// BatchSize is the row-batch granularity between server and
	// consumer (0 = the engine default).
	BatchSize int
	// AllVersions makes Read return every stored version of the key
	// (oldest first; newest first with Reverse) instead of the single
	// visible one.
	AllVersions bool
	// Primary forces the read onto the primary tablet server even when
	// a read replica's watermark covers its snapshot (explicit
	// read-your-writes; replica routing is the default for pinned
	// snapshot reads).
	Primary bool
	// MaxLag bounds replica staleness: route to a replica only if its
	// shipping cursor trails the primary log by at most MaxLag records
	// RIGHT NOW (snapshot consistency at the pinned timestamp is
	// guaranteed regardless — this additionally bounds how far behind
	// the serving replica may currently be). 0 = no bound.
	MaxLag int64
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix (nil = the prefix is all 0xff bytes or empty, i.e. no
// upper bound).
func PrefixEnd(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			end := append([]byte(nil), prefix[:i+1]...)
			end[i]++
			return end
		}
	}
	return nil
}

// ClampRange intersects [start, end) with the option's Prefix,
// returning the effective scan bounds.
func (o Options) ClampRange(start, end []byte) ([]byte, []byte) {
	if len(o.Prefix) == 0 {
		return start, end
	}
	if len(start) == 0 || bytes.Compare(o.Prefix, start) > 0 {
		start = o.Prefix
	}
	if pe := PrefixEnd(o.Prefix); pe != nil && (end == nil || bytes.Compare(pe, end) < 0) {
		end = pe
	}
	return start, end
}
