package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/hbase"
	"repro/internal/simdisk"
	"repro/internal/tpcw"
	"repro/internal/ycsb"
)

// assessableNodes filters the node sweep to sizes this host can
// actually run in parallel: simulated tablet servers share physical
// cores, so wall-clock throughput cannot scale past NumCPU and scaling
// claims are only assessed up to that bound (all sizes are still
// measured and reported).
func assessableNodes(nodes []int) []int {
	limit := runtime.NumCPU()
	if limit < 2 {
		limit = 2
	}
	var out []int
	for _, n := range nodes {
		if n <= limit {
			out = append(out, n)
		}
	}
	return out
}

// StoreDB adapts any logbase.Store to ycsb.DB: ONE driver that runs
// unmodified against the embedded *logbase.DB and the cluster
// *logbase.ClusterClient — the point of the unified interface.
type StoreDB struct {
	St    logbase.Store
	Table string
	Group string
}

// Insert implements ycsb.DB.
func (d *StoreDB) Insert(key, value []byte) error {
	return d.St.Put(context.Background(), d.Table, d.Group, key, value)
}

// Update implements ycsb.DB.
func (d *StoreDB) Update(key, value []byte) error {
	return d.St.Put(context.Background(), d.Table, d.Group, key, value)
}

// Read implements ycsb.DB.
func (d *StoreDB) Read(key []byte) error {
	_, err := d.St.Get(context.Background(), d.Table, d.Group, key)
	return err
}

// newYCSBCluster builds an n-server LogBase cluster for the YCSB runs.
// The DFS carries the disk cost model so experiments can assert on
// deterministic modelled I/O time alongside wall-clock throughput.
func newYCSBCluster(n int) (*cluster.Cluster, string, error) {
	dir, err := tempDir("ycsb")
	if err != nil {
		return nil, "", err
	}
	c, err := cluster.New(dir, cluster.Config{
		NumServers: n,
		Tables:     []cluster.TableSpec{{Name: "usertable", Groups: []string{"f0"}}},
		// Group commit on: the YCSB runs drive each server from many
		// concurrent clients, exactly the workload §3.7.2 batches.
		Server: core.Config{
			SegmentSize:      16 << 20,
			GroupCommit:      true,
			GroupCommitBatch: 64,
			GroupCommitDelay: 100 * time.Microsecond,
		},
		DFS: dfs.Config{BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: &simdisk.Clock{}},
	})
	return c, dir, err
}

// hbCluster is the HBase side of the YCSB comparison: one region store
// per "server", routed by key hash (region assignment).
type hbCluster struct {
	stores []*hbase.Store
	clock  *simdisk.Clock
}

func newHBCluster(n int, dataBytesPerNode int64) (*hbCluster, string, error) {
	dir, err := tempDir("ycsb-hb")
	if err != nil {
		return nil, "", err
	}
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{NumDataNodes: n, BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: clock})
	if err != nil {
		return nil, "", err
	}
	hc := &hbCluster{clock: clock}
	memtable := dataBytesPerNode / 16
	if memtable < 64<<10 {
		memtable = 64 << 10
	}
	for i := 0; i < n; i++ {
		st, err := hbase.Open(fs, fmt.Sprintf("region%02d", i), hbase.Config{
			MemtableBytes:   memtable,
			BlockSize:       64 << 10,
			BlockCacheBytes: 1 << 20,
			SegmentSize:     16 << 20,
		})
		if err != nil {
			return nil, "", err
		}
		hc.stores = append(hc.stores, st)
	}
	return hc, dir, nil
}

func (h *hbCluster) route(key []byte) *hbase.Store {
	f := fnv.New32a()
	f.Write(key)
	return h.stores[int(f.Sum32())%len(h.stores)]
}

func (h *hbCluster) Insert(key, value []byte) error {
	return h.route(key).Put(key, time.Now().UnixNano(), value)
}
func (h *hbCluster) Update(key, value []byte) error { return h.Insert(key, value) }
func (h *hbCluster) Read(key []byte) error {
	_, err := h.route(key).GetLatest(key)
	return err
}

// Fig11YCSBLoad reproduces Figure 11: parallel data loading time across
// cluster sizes. Paper shape: LogBase loads in about half HBase's time,
// and per-node load time stays flat as the system grows (data size is
// proportional to system size).
func Fig11YCSBLoad(s Scale) (Table, error) {
	t := Table{
		ID:     "fig11",
		Title:  "YCSB parallel load time (modelled disk ms / wall ms; rows scale with nodes)",
		Header: []string{"nodes", "LogBase disk", "HBase disk", "LogBase wall", "HBase wall"},
		Shape:  "LogBase ~half of HBase's load cost at every size (one write vs WAL+flush)",
	}
	hold := true
	for _, n := range s.Nodes {
		rows := int64(n) * int64(s.Rows) / 8
		c, dir, err := newYCSBCluster(n)
		if err != nil {
			return t, err
		}
		lbDB := &StoreDB{St: logbase.NewClusterClient(c), Table: "usertable", Group: "f0"}
		c.Clock().Reset()
		lbTime, err := ycsb.Load(lbDB, rows, s.ValueSize, n, 1)
		lbDisk := c.Clock().Elapsed()
		c.Close() // stop per-server group-commit batcher goroutines
		os.RemoveAll(dir)
		if err != nil {
			return t, err
		}
		hc, hdir, err := newHBCluster(n, rows/int64(n)*int64(s.ValueSize))
		if err != nil {
			return t, err
		}
		hc.clock.Reset()
		hbTime, err := ycsb.Load(hc, rows, s.ValueSize, n, 1)
		for _, st := range hc.stores {
			st.Flush()
		}
		hbDisk := hc.clock.Elapsed()
		os.RemoveAll(hdir)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(lbDisk), ms(hbDisk), ms(lbTime), ms(hbTime)})
		// The deterministic check: modelled load cost (the paper's
		// "LogBase ... only spends about half of the time" is an I/O
		// argument; tiny wall times at bench scale are noise-bound).
		if lbDisk >= hbDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// ycsbMixedRun loads then runs one mixed workload on an n-node LogBase
// cluster, returning the result and the modelled disk time of the mixed
// phase.
func ycsbMixedRun(s Scale, n int, updateFrac float64) (ycsb.Result, time.Duration, error) {
	c, dir, err := newYCSBCluster(n)
	if err != nil {
		return ycsb.Result{}, 0, err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	rows := int64(n) * int64(s.Rows) / 8
	db := &StoreDB{St: logbase.NewClusterClient(c), Table: "usertable", Group: "f0"}
	if _, err := ycsb.Load(db, rows, s.ValueSize, n, 1); err != nil {
		return ycsb.Result{}, 0, err
	}
	ops := int64(n) * int64(s.Ops) / 4
	c.Clock().Reset()
	res, err := ycsb.Run(db, ycsb.Workload{
		Records:        rows,
		UpdateFraction: updateFrac,
		ValueSize:      s.ValueSize,
	}, ops, n, 2)
	return res, c.Clock().Elapsed(), err
}

// Fig12MixedThroughput reproduces Figure 12: overall throughput for the
// 75%- and 95%-update mixes across cluster sizes. Paper shape:
// throughput grows near-linearly with nodes and the 95%-update mix
// outpaces the 75% mix (writes are cheaper than reads).
func Fig12MixedThroughput(s Scale) (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "YCSB mixed throughput (ops/sec)",
		Header: []string{"nodes", "75% update", "95% update"},
		Shape:  "scales with nodes; 95%-update mix above 75%-update mix",
	}
	assess := assessableNodes(s.Nodes)
	hold := true
	var scaling []float64
	for _, n := range s.Nodes {
		r75, d75, err := ycsbMixedRun(s, n, 0.75)
		if err != nil {
			return t, err
		}
		r95, d95, err := ycsbMixedRun(s, n, 0.95)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", r75.Throughput),
			fmt.Sprintf("%.0f", r95.Throughput),
		})
		// The mix comparison ("higher throughput with higher update
		// percentage since writes are cheaper than reads") is asserted
		// on modelled disk cost per op — deterministic on any host.
		per75 := float64(d75) / float64(r75.Ops+1)
		per95 := float64(d95) / float64(r95.Ops+1)
		if per95 > per75*1.05 {
			hold = false
		}
		for _, a := range assess {
			if a == n {
				scaling = append(scaling, r75.Throughput)
			}
		}
	}
	if len(scaling) > 1 && scaling[len(scaling)-1] < scaling[0] {
		hold = false
	}
	t.Shape += fmt.Sprintf(" (scaling assessed up to %d in-process nodes; this host has %d CPUs)",
		maxOrZero(assess), runtime.NumCPU())
	t.Hold = hold
	return t, nil
}

func maxOrZero(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Fig13UpdateLatency reproduces Figure 13. Paper shape: flat (slightly
// varying) update latency as the system scales — elastic scaling.
func Fig13UpdateLatency(s Scale) (Table, error) {
	return latencyTable(s, "fig13", "YCSB update latency (mean µs)", true)
}

// Fig14ReadLatency reproduces Figure 14. Paper shape: flat read latency
// across system sizes, reads slower than updates.
func Fig14ReadLatency(s Scale) (Table, error) {
	return latencyTable(s, "fig14", "YCSB read latency (mean µs)", false)
}

func latencyTable(s Scale, id, title string, update bool) (Table, error) {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"nodes", "75% update", "95% update"},
		Shape:  "latency stays flat as nodes are added (elastic scaling)",
	}
	assess := assessableNodes(s.Nodes)
	var lats []time.Duration
	for _, n := range s.Nodes {
		r75, _, err := ycsbMixedRun(s, n, 0.75)
		if err != nil {
			return t, err
		}
		r95, _, err := ycsbMixedRun(s, n, 0.95)
		if err != nil {
			return t, err
		}
		pick := func(r ycsb.Result) time.Duration {
			if update {
				return r.UpdateLat.Mean()
			}
			return r.ReadLat.Mean()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", float64(pick(r75))/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(pick(r95))/float64(time.Microsecond)),
		})
		for _, a := range assess {
			if a == n {
				lats = append(lats, pick(r75))
			}
		}
	}
	// Flat: max within 8x of min over the sizes this host can actually
	// parallelise (oversubscribed sizes inflate latency by queueing on
	// cores, which the paper's real machines never see).
	t.Hold = true
	if len(lats) > 1 {
		minL, maxL := lats[0], lats[0]
		for _, l := range lats {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		t.Hold = maxL <= 8*minL
	}
	t.Shape += fmt.Sprintf(" (flatness assessed up to %d in-process nodes; this host has %d CPUs)",
		maxOrZero(assess), runtime.NumCPU())
	return t, nil
}

// Fig15TPCWLatency reproduces Figure 15. Paper shape: near-flat
// latency across sizes for browsing and shopping mixes; ordering mix
// highest.
func Fig15TPCWLatency(s Scale) (Table, error) {
	t := Table{
		ID:     "fig15",
		Title:  "TPC-W transaction latency (mean µs)",
		Header: []string{"nodes", "browsing", "shopping", "ordering"},
		Shape:  "flat latency as nodes grow; ordering (50% update) highest",
	}
	hold := true
	for _, n := range s.Nodes {
		res, err := tpcwRun(s, n)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", float64(res[0].Latency.Mean())/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(res[1].Latency.Mean())/float64(time.Microsecond)),
			fmt.Sprintf("%.0f", float64(res[2].Latency.Mean())/float64(time.Microsecond)),
		})
		if res[0].Latency.Mean() > res[2].Latency.Mean()*4 {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig16TPCWThroughput reproduces Figure 16. Paper shape: throughput
// scales ~linearly for browsing and shopping mixes; browsing > shopping
// > ordering.
func Fig16TPCWThroughput(s Scale) (Table, error) {
	t := Table{
		ID:     "fig16",
		Title:  "TPC-W transaction throughput (TPS)",
		Header: []string{"nodes", "browsing", "shopping", "ordering"},
		Shape:  "scales with nodes; browsing >= shopping >= ordering",
	}
	assess := assessableNodes(s.Nodes)
	hold := true
	var scaling []float64
	for i, n := range s.Nodes {
		res, err := tpcwRun(s, n)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", res[0].Throughput),
			fmt.Sprintf("%.0f", res[1].Throughput),
			fmt.Sprintf("%.0f", res[2].Throughput),
		})
		// Within-size mix ordering, asserted at the least-oversubscribed
		// size (read-mostly browsing must beat write-heavy ordering).
		if i == 0 && res[0].Throughput < res[2].Throughput*0.8 {
			hold = false
		}
		for _, a := range assess {
			if a == n {
				scaling = append(scaling, res[0].Throughput)
			}
		}
	}
	if len(scaling) > 1 && scaling[len(scaling)-1] < scaling[0]*0.8 {
		hold = false
	}
	t.Shape += fmt.Sprintf(" (scaling assessed up to %d in-process nodes; this host has %d CPUs)",
		maxOrZero(assess), runtime.NumCPU())
	t.Hold = hold
	return t, nil
}

func tpcwRun(s Scale, n int) ([3]tpcw.Result, error) {
	var out [3]tpcw.Result
	dir, err := tempDir("tpcw")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	c, err := cluster.New(dir, cluster.Config{
		NumServers: n,
		Tables:     tpcw.Tables(),
		Server:     core.Config{SegmentSize: 16 << 20},
		DFS:        dfs.Config{BlockSize: 4 << 20},
	})
	if err != nil {
		return out, err
	}
	defer c.Close()
	st := logbase.NewClusterClient(c)
	items := int64(n) * int64(s.Rows) / 16
	customers := items / 2
	if err := tpcw.Load(st, items, customers, n); err != nil {
		return out, err
	}
	txns := int64(n) * int64(s.Ops) / 8
	for i, mix := range tpcw.Mixes {
		res, err := tpcw.Run(st, mix, items, customers, txns, n, int64(i))
		if err != nil {
			return out, err
		}
		out[i] = res
	}
	return out, nil
}

// Fig22LRSThroughput reproduces Figure 22: write and read throughput of
// LogBase vs LRS across cluster sizes. Paper shape: both scale;
// LogBase at or slightly above LRS (the LSM index costs a bit on both
// paths).
func Fig22LRSThroughput(s Scale) (Table, error) {
	t := Table{
		ID:     "fig22",
		Title:  "Throughput across nodes: LogBase vs LRS (ops/sec)",
		Header: []string{"nodes", "LB write", "LRS write", "LB read", "LRS read"},
		Shape:  "both scale with nodes; LogBase >= LRS on both paths",
	}
	hold := true
	for _, n := range s.Nodes {
		rows := int64(n) * int64(s.Rows) / 8

		// LogBase cluster.
		c, dir, err := newYCSBCluster(n)
		if err != nil {
			return t, err
		}
		lbDB := &StoreDB{St: logbase.NewClusterClient(c), Table: "usertable", Group: "f0"}
		if _, err := ycsb.Load(lbDB, rows, s.ValueSize, n, 1); err != nil {
			return t, err
		}
		lbW, err := ycsb.Run(lbDB, ycsb.Workload{Records: rows, UpdateFraction: 1.0, ValueSize: s.ValueSize}, int64(s.Ops), n, 3)
		if err != nil {
			return t, err
		}
		lbR, err := ycsb.Run(lbDB, ycsb.Workload{Records: rows, UpdateFraction: 0.0, ValueSize: s.ValueSize}, int64(s.Ops), n, 4)
		c.Close()
		os.RemoveAll(dir)
		if err != nil {
			return t, err
		}

		// LRS cluster.
		lc, ldir, err := newLRSCluster(n)
		if err != nil {
			return t, err
		}
		if _, err := ycsb.Load(lc, rows, s.ValueSize, n, 1); err != nil {
			return t, err
		}
		lrW, err := ycsb.Run(lc, ycsb.Workload{Records: rows, UpdateFraction: 1.0, ValueSize: s.ValueSize}, int64(s.Ops), n, 3)
		if err != nil {
			return t, err
		}
		lrR, err := ycsb.Run(lc, ycsb.Workload{Records: rows, UpdateFraction: 0.0, ValueSize: s.ValueSize}, int64(s.Ops), n, 4)
		os.RemoveAll(ldir)
		if err != nil {
			return t, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", lbW.Throughput),
			fmt.Sprintf("%.0f", lrW.Throughput),
			fmt.Sprintf("%.0f", lbR.Throughput),
			fmt.Sprintf("%.0f", lrR.Throughput),
		})
		if lbW.Throughput < lrW.Throughput*0.5 || lbR.Throughput < lrR.Throughput*0.5 {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}
