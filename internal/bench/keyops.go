package bench

// Key-operation measurements for the CI perf-regression gate
// (cmd/benchgate). Every number the gate compares is MODELLED disk time
// from the simdisk virtual clock: deterministic for a given code path
// (single-threaded drivers, group commit off), so a >30% delta against
// the checked-in baseline is a real I/O-path regression, not runner
// noise. Wall times ride along for humans but are never gated.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/simdisk"
	"repro/internal/ycsb"
)

// KeyOp is one gated measurement.
type KeyOp struct {
	Name string `json:"name"`
	Ops  int64  `json:"ops"`
	// DiskUSPerOp is modelled disk microseconds per operation — the
	// gated, machine-independent number.
	DiskUSPerOp float64 `json:"disk_us_per_op"`
	// WallUSPerOp is informational only.
	WallUSPerOp float64 `json:"wall_us_per_op"`
	// RowsShipped counts the rows the tablet servers fetched from the
	// log to serve the op (the scan-pushdown experiments; 0 elsewhere).
	// Deterministic, and gated alongside the disk number.
	RowsShipped int64 `json:"rows_shipped,omitempty"`
	// AllocsPerOp / BytesPerOp are heap allocations per operation
	// (runtime.MemStats deltas across the measured run). Like wall
	// time they are informational — recorded in BENCH_results.json so
	// allocation regressions show up in CI artifacts, never gated.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// allocMeter samples runtime.MemStats around a measured run so every
// KeyOp carries allocations-per-op alongside its timing numbers.
type allocMeter struct{ m0 runtime.MemStats }

func startAllocMeter() *allocMeter {
	a := &allocMeter{}
	runtime.ReadMemStats(&a.m0)
	return a
}

// perOp returns (allocs/op, bytes/op) since the meter started.
func (a *allocMeter) perOp(ops int64) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-a.m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-a.m0.TotalAlloc) / float64(ops)
}

// newKeyOpsCluster builds the deterministic fixture: modelled disks,
// group commit off (batch composition depends on scheduling), driven
// single-threaded by the callers.
func newKeyOpsCluster(n int) (*cluster.Cluster, string, error) {
	dir, err := tempDir("keyops")
	if err != nil {
		return nil, "", err
	}
	c, err := cluster.New(dir, cluster.Config{
		NumServers: n,
		Tables:     []cluster.TableSpec{{Name: "usertable", Groups: []string{"f0"}}},
		Server:     core.Config{SegmentSize: 16 << 20},
		DFS:        dfs.Config{BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: &simdisk.Clock{}},
	})
	return c, dir, err
}

// KeyOps measures the gated operations at the given scale: Put,
// WriteBatch, FullScan, Query, and the elastic hot-range scenario.
func KeyOps(s Scale) ([]KeyOp, error) {
	var out []KeyOp
	measure := func(name string, c *cluster.Cluster, ops int64, fn func() error) error {
		c.Clock().Reset()
		am := startAllocMeter()
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(ops)
		disk := c.Clock().Elapsed()
		out = append(out, KeyOp{
			Name:        name,
			Ops:         ops,
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(ops),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(ops),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		})
		return nil
	}

	c, dir, err := newKeyOpsCluster(2)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	st := logbase.NewClusterClient(c)
	ctx := context.Background()
	n := int64(s.Rows)
	val := value(s.ValueSize, 7)

	// Put: per-record writes, the OLTP hot path.
	if err := measure("put", c, n, func() error {
		for i := int64(0); i < n; i++ {
			if err := st.Put(ctx, "usertable", "f0", ycsb.Key(i), val); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// WriteBatch: the bulk-load append sweep, fresh key range.
	if err := measure("writebatch", c, n, func() error {
		b := st.Batch()
		for i := int64(0); i < n; i++ {
			b.Put("usertable", "f0", ycsb.Key(n+i), val)
			if b.Len() >= 1024 {
				if err := b.Flush(ctx); err != nil {
					return err
				}
			}
		}
		return b.Flush(ctx)
	}); err != nil {
		return nil, err
	}

	// FullScan: the batch-analytics read path over both key ranges.
	if err := measure("fullscan", c, 2*n, func() error {
		it := st.FullScan(ctx, "usertable", "f0")
		defer it.Close()
		rows := int64(0)
		for it.Next() {
			rows++
		}
		if err := it.Err(); err != nil {
			return err
		}
		if rows != 2*n {
			return fmt.Errorf("fullscan saw %d rows, want %d", rows, 2*n)
		}
		return it.Close()
	}); err != nil {
		return nil, err
	}

	// Query: snapshot-parallel COUNT, single worker for determinism.
	if err := measure("query", c, 2*n, func() error {
		res, err := st.Query(ctx, "usertable", "f0", logbase.Query{
			Aggs:    []logbase.Agg{{Kind: logbase.Count}},
			Workers: 1,
		})
		if err != nil {
			return err
		}
		if res.Rows != 2*n {
			return fmt.Errorf("query counted %d rows, want %d", res.Rows, 2*n)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Scan push-down vs client-side filtering over the same loaded
	// rows: the data-movement experiment the read API redesign is
	// gated on.
	scanOps, err := ScanPushdownKeyOps(c, "usertable", "f0")
	if err != nil {
		return nil, err
	}
	out = append(out, scanOps...)

	// Clustered scan fast path vs the index-driven path on a fully
	// compacted log (asserts the >=2x modelled-disk win), plus the
	// autocompact churn (asserts SortedFraction >= 0.5 with only the
	// background compactor running).
	clusterOps, err := ScanClusteredKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, clusterOps...)
	acOps, _, err := AutoCompactKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, acOps...)

	// Observability overhead: instrumented vs disabled Put/Scan must
	// agree on modelled disk cost within 5%.
	obsOps, err := ObsOverheadKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, obsOps...)

	// Fault-injection overhead: a wired-but-disarmed registry vs nil
	// must agree on modelled disk cost within 5%.
	faultOps, err := FaultOverheadKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, faultOps...)

	// Join planner: greedy order + broadcast push-down vs the
	// worst-order naive nested-loop plan on a three-table join (asserts
	// the >=2x modelled-disk win and identical results).
	joinOps, err := JoinKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, joinOps...)

	// Changefeed: catch-up sweep cost plus the live-tail ceiling (a
	// subscribed feed must add ~zero modelled disk over bare writes).
	cdcOps, err := CDCTailKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, cdcOps...)

	// Read replicas: catch-up sweep, the live-shipping ceiling on the
	// write path, and the scan pair (pinned scan on the replica must
	// charge the primary zero modelled disk).
	repOps, err := ReplicaKeyOps(s)
	if err != nil {
		return nil, err
	}
	out = append(out, repOps...)

	// Hot-range elastic scenario: skewed single-threaded workload with
	// deterministic balancer ticks, measuring the post-rebalance phase.
	hr, err := hotRangeKeyOp(s)
	if err != nil {
		return nil, err
	}
	out = append(out, hr)
	return out, nil
}

func hotRangeKeyOp(s Scale) (KeyOp, error) {
	c, dir, err := newKeyOpsCluster(2)
	if err != nil {
		return KeyOp{}, err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	st := logbase.NewClusterClient(c)
	db := &StoreDB{St: st, Table: "usertable", Group: "f0"}
	records := int64(s.Rows)
	if _, err := ycsb.Load(db, records, s.ValueSize, 1, 1); err != nil {
		return KeyOp{}, err
	}
	b := c.StartBalancer(cluster.BalancerConfig{Interval: time.Hour, MinOps: 64, Cooldown: 2})
	defer b.Stop()
	w := hotRangeWorkload(records, s.ValueSize)
	ops := int64(s.Ops)
	for round := 0; round < 8; round++ {
		if _, err := ycsb.Run(db, w, ops/4, 1, int64(round)); err != nil {
			return KeyOp{}, err
		}
		b.Tick()
	}
	c.Clock().Reset()
	am := startAllocMeter()
	start := time.Now()
	if _, err := ycsb.Run(db, w, ops, 1, 99); err != nil {
		return KeyOp{}, err
	}
	wall := time.Since(start)
	allocs, bytes := am.perOp(ops)
	disk := c.Clock().Elapsed()
	return KeyOp{
		Name:        "hotrange",
		Ops:         ops,
		DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(ops),
		WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(ops),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
	}, nil
}
