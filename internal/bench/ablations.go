package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/wal"
)

// AblationLogPerGroup quantifies the paper's §3.4 design choice: one
// log instance per server versus one log per column group. Writes that
// alternate across G logs on the same physical disks seek between log
// heads, while a single log stays sequential — the reason LogBase
// chooses one log for write-heavy workloads.
func AblationLogPerGroup(s Scale) (Table, error) {
	t := Table{
		ID:     "abl-log-per-group",
		Title:  "Single log vs log-per-column-group (modelled disk ms for interleaved writes)",
		Header: []string{"column groups", "single log", "one log per group"},
		Shape:  "single log cheaper: multi-log writes seek between log heads (§3.4)",
	}
	n := s.Rows / 2
	val := value(s.ValueSize, 21)
	hold := true
	for _, groups := range []int{2, 4, 8} {
		dir, err := tempDir("abl-lpg")
		if err != nil {
			return t, err
		}
		fx, err := newFixture(dir)
		if err != nil {
			return t, err
		}
		single, err := wal.Open(fx.fs, "single", wal.Options{SegmentSize: 16 << 20})
		if err != nil {
			return t, err
		}
		_, singleDisk, err := fx.timed(func() error {
			for i := 0; i < n; i++ {
				g := fmt.Sprintf("cg%d", i%groups)
				if _, err := single.Append(&wal.Record{Kind: wal.KindWrite, Group: g, Key: key(i), TS: int64(i), Value: val}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}
		multi := make([]*wal.Log, groups)
		for g := range multi {
			if multi[g], err = wal.Open(fx.fs, fmt.Sprintf("multi-%d", g), wal.Options{SegmentSize: 16 << 20}); err != nil {
				return t, err
			}
		}
		_, multiDisk, err := fx.timed(func() error {
			for i := 0; i < n; i++ {
				l := multi[i%groups]
				if _, err := l.Append(&wal.Record{Kind: wal.KindWrite, Key: key(i), TS: int64(i), Value: val}); err != nil {
					return err
				}
			}
			return nil
		})
		os.RemoveAll(dir)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(groups), ms(singleDisk), ms(multiDisk)})
		if singleDisk > multiDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// AblationCachePolicy compares read-buffer replacement strategies under
// a skewed read workload — the paper makes the strategy pluggable
// (§3.6.2); this shows why LRU is the default.
func AblationCachePolicy(s Scale) (Table, error) {
	t := Table{
		ID:     "abl-cache-policy",
		Title:  "Read-buffer replacement policy (hit rate under skewed reads)",
		Header: []string{"policy", "hits", "misses", "hit rate"},
		Shape:  "LRU and CLOCK beat FIFO on skewed access",
	}
	policies := []func() cache.Policy{cache.NewLRU, cache.NewClock, cache.NewFIFO}
	rates := map[string]float64{}
	for _, mk := range policies {
		p := mk()
		c := cache.New(int64(s.Rows/10)*int64(s.ValueSize), p)
		// 90/10 skew over s.Rows keys, cache sized for 10%.
		seed := uint64(12345)
		next := func(mod int) int {
			seed = seed*6364136223846793005 + 1442695040888963407
			return int(seed>>33) % mod
		}
		for i := 0; i < s.Ops*4; i++ {
			var k int
			if next(10) != 0 {
				k = next(s.Rows / 10) // hot 10%
			} else {
				k = next(s.Rows)
			}
			ck := fmt.Sprintf("k%08d", k)
			if _, ok := c.Get(ck); !ok {
				c.Put(ck, value(s.ValueSize, 22))
			}
		}
		st := c.Stats()
		rate := float64(st.Hits) / float64(st.Hits+st.Misses)
		rates[p.Name()] = rate
		t.Rows = append(t.Rows, []string{
			p.Name(), fmt.Sprint(st.Hits), fmt.Sprint(st.Misses), fmt.Sprintf("%.3f", rate),
		})
	}
	t.Hold = rates["lru"] >= rates["fifo"] && rates["clock"] >= rates["fifo"]*0.95
	return t, nil
}

// AblationGroupCommit measures the §3.7.2 optimisation: batching commit
// and log records amortises the per-append persistence round trip. The
// deterministic signal is DFS write operations per 1000 records — each
// DFS write is a replicated round trip in a real deployment, and group
// commit's whole point is issuing fewer of them. Wall time is reported
// for reference (on fast local files it is dominated by the batching
// delay, not the per-op cost the paper's HDFS pays).
func AblationGroupCommit(s Scale) (Table, error) {
	t := Table{
		ID:     "abl-group-commit",
		Title:  "Group commit batch size (64 concurrent writers)",
		Header: []string{"max batch", "DFS writes /1k records", "wall ms"},
		Shape:  "DFS write ops per record fall as the batch grows (fewer persistence round trips)",
	}
	const writers = 64
	n := s.Ops
	var opsPerK []float64
	for _, batch := range []int{1, 8, 64} {
		dir, err := tempDir("abl-gc")
		if err != nil {
			return t, err
		}
		fx, err := newFixture(dir)
		if err != nil {
			return t, err
		}
		log, err := wal.Open(fx.fs, "log", wal.Options{SegmentSize: 16 << 20})
		if err != nil {
			return t, err
		}
		b := wal.NewBatcher(log, batch, 100*time.Microsecond)
		val := value(s.ValueSize, 23)
		fx.resetStats()
		start := time.Now()
		var wg sync.WaitGroup
		per := n / writers
		errCh := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := b.Append(&wal.Record{Kind: wal.KindWrite, Key: key(w*per + i), TS: int64(i), Value: val}); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.Close() // stop the collector goroutine before the next config
		close(errCh)
		for err := range errCh {
			return t, err
		}
		wall := time.Since(start)
		var writeOps int64
		for i := 0; i < fx.fs.NumDataNodes(); i++ {
			writeOps += fx.fs.DataNode(i).Disk().Stats().WriteOps
		}
		os.RemoveAll(dir)
		total := per * writers
		perK := float64(writeOps) / float64(total) * 1000
		opsPerK = append(opsPerK, perK)
		t.Rows = append(t.Rows, []string{fmt.Sprint(batch), fmt.Sprintf("%.0f", perK), ms(wall)})
	}
	t.Hold = len(opsPerK) == 3 && opsPerK[1] < opsPerK[0] && opsPerK[2] < opsPerK[1]
	return t, nil
}
