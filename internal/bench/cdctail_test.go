package bench

import "testing"

// TestCDCTailShape pins the changefeed cost model: catch-up pays real
// modelled disk (it sweeps segments), the live tail stays within the
// enforced ceiling of bare writes (the publish path never touches
// disk), and every phase delivers its full event count.
func TestCDCTailShape(t *testing.T) {
	ops, err := CDCTailKeyOps(Scale{Rows: 800, Ops: 400, ValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]KeyOp{}
	for _, op := range ops {
		byName[op.Name] = op
	}
	catch, ok := byName["cdc-catchup"]
	if !ok || catch.Ops != 801 { // history rows + the fixture's warm-up write
		t.Fatalf("cdc-catchup = %+v, want 801 events", catch)
	}
	if catch.DiskUSPerOp <= 0 {
		t.Errorf("catch-up reported zero modelled disk — it must sweep segments")
	}
	tail, base := byName["cdc-tail"], byName["cdc-writes-base"]
	if tail.Ops != 400 || base.Ops != 400 {
		t.Fatalf("tail/base ops = %d/%d, want 400", tail.Ops, base.Ops)
	}
	// CDCTailKeyOps already enforces the ceiling; re-state it here so
	// the test names the contract.
	if base.DiskUSPerOp > 0 && tail.DiskUSPerOp > base.DiskUSPerOp*(1+cdcTailTolerance) {
		t.Errorf("live tail %.2f vs bare writes %.2f disk us/op: subscriber is paying I/O",
			tail.DiskUSPerOp, base.DiskUSPerOp)
	}
}
