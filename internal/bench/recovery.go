package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/lrs"
	"repro/internal/simdisk"
	"repro/internal/ycsb"
)

// Fig17Checkpoint reproduces Figure 17: cost to write and to reload a
// checkpoint at growing data sizes. Paper shape: writing is cheaper
// than reloading (HDFS is write-optimised), both grow with data size.
// The paper's 250 MB–1 GB thresholds scale down with Scale.Rows.
func Fig17Checkpoint(s Scale) (Table, error) {
	t := Table{
		ID:     "fig17",
		Title:  "Checkpoint cost (wall ms)",
		Header: []string{"data (rows)", "write checkpoint", "reload checkpoint"},
		// The paper's write<reload asymmetry is a property of its
		// testbed (HDFS "optimized for high write throughput" across
		// real machines); this substrate writes all replicas on one
		// host and inverts it. Assessed here: both costs grow with data
		// size and the checkpoint verifiably recovers everything.
		Shape: "both costs grow with data size (the paper's write<reload asymmetry is HDFS-testbed-specific; see EXPERIMENTS.md)",
	}
	hold := true
	for _, n := range []int{s.Rows / 4, s.Rows / 2, s.Rows} {
		dir, err := tempDir("fig17")
		if err != nil {
			return t, err
		}
		fx, err := newFixture(dir)
		if err != nil {
			return t, err
		}
		lb, err := fx.newLogBase(0)
		if err != nil {
			return t, err
		}
		val := value(s.ValueSize, 6)
		for i := 0; i < n; i++ {
			if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
				return t, err
			}
		}
		wStart := time.Now()
		if err := lb.Checkpoint(); err != nil {
			return t, err
		}
		writeCost := time.Since(wStart)

		// Reload: fresh server over the same DFS.
		lb2, err := core.NewServer(fx.fs, "lb", core.Config{SegmentSize: 16 << 20})
		if err != nil {
			return t, err
		}
		lb2.AddTablet(benchTablet(), []string{benchGroup})
		rStart := time.Now()
		st, err := lb2.Recover()
		if err != nil {
			return t, err
		}
		reloadCost := time.Since(rStart)
		if !st.UsedCheckpoint || st.EntriesRestored < n {
			return t, fmt.Errorf("fig17: recovery incomplete: %+v", st)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(writeCost), ms(reloadCost)})
		os.RemoveAll(dir)
	}
	// Growth check across sizes, for both columns; parse-free compare
	// works because ms() is fixed-point and sizes quadruple.
	if len(t.Rows) == 3 {
		if atof(t.Rows[0][1]) > atof(t.Rows[2][1]) || atof(t.Rows[0][2]) > atof(t.Rows[2][2]) {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

func atof(s string) float64 {
	var f float64
	fmt.Sscanf(s, "%f", &f) //nolint:errcheck // bench-internal fixed format
	return f
}

// Fig18Recovery reproduces Figure 18: recovery time when a server is
// killed at growing data sizes, with a checkpoint taken at the halfway
// threshold versus no checkpoint at all. Paper shape: with-checkpoint
// recovery is much faster and grows only with the post-checkpoint tail;
// without-checkpoint recovery scans the whole log.
func Fig18Recovery(s Scale) (Table, error) {
	t := Table{
		ID:     "fig18",
		Title:  "Recovery time (wall ms)",
		Header: []string{"data (rows)", "with checkpoint", "without checkpoint"},
		Shape:  "checkpointed recovery much faster; gap widens with data size",
	}
	checkpointAt := s.Rows / 2
	hold := true
	for _, n := range []int{s.Rows * 6 / 10, s.Rows * 7 / 10, s.Rows * 8 / 10, s.Rows * 9 / 10} {
		run := func(withCheckpoint bool) (time.Duration, core.RecoveryStats, error) {
			dir, err := tempDir("fig18")
			if err != nil {
				return 0, core.RecoveryStats{}, err
			}
			defer os.RemoveAll(dir)
			fx, err := newFixture(dir)
			if err != nil {
				return 0, core.RecoveryStats{}, err
			}
			lb, err := fx.newLogBase(0)
			if err != nil {
				return 0, core.RecoveryStats{}, err
			}
			val := value(s.ValueSize, 7)
			for i := 0; i < n; i++ {
				if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
					return 0, core.RecoveryStats{}, err
				}
				if withCheckpoint && i == checkpointAt {
					if err := lb.Checkpoint(); err != nil {
						return 0, core.RecoveryStats{}, err
					}
				}
			}
			// Kill and restart.
			lb2, err := core.NewServer(fx.fs, "lb", core.Config{SegmentSize: 16 << 20})
			if err != nil {
				return 0, core.RecoveryStats{}, err
			}
			lb2.AddTablet(benchTablet(), []string{benchGroup})
			start := time.Now()
			st, err := lb2.Recover()
			if err != nil {
				return 0, core.RecoveryStats{}, err
			}
			if lb2.IndexLen(benchTabletID, benchGroup) != n {
				return 0, st, fmt.Errorf("fig18: recovered %d of %d entries (stats %+v)",
					lb2.IndexLen(benchTabletID, benchGroup), n, st)
			}
			return time.Since(start), st, nil
		}
		withCP, stCP, err := run(true)
		if err != nil {
			return t, err
		}
		withoutCP, stFull, err := run(false)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(withCP), ms(withoutCP)})
		// Deterministic mechanism check: checkpointed recovery replays
		// only the tail, full recovery replays everything. (Wall times,
		// reported above, track this at real scale but are noise-bound
		// when both are a few ms.)
		if !stCP.UsedCheckpoint || stCP.RecordsScanned >= stFull.RecordsScanned {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// lrsFixturePair builds a LogBase server and an LRS store side by side
// for Figures 19–21.
func lrsFixturePair(s Scale, id string) (*fixture, *core.Server, *fixture, *lrs.Store, func(), error) {
	dirL, err := tempDir(id + "l")
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	fxL, err := newFixture(dirL)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	lb, err := fxL.newLogBase(0)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	dirR, err := tempDir(id + "r")
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	fxR, err := newFixture(dirR)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	lr, err := fxR.newLRS(int64(s.Rows) * int64(s.ValueSize))
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dirL); os.RemoveAll(dirR) }
	return fxL, lb, fxR, lr, cleanup, nil
}

// Fig19LRSWrite reproduces Figure 19: sequential write, LogBase vs LRS.
// Paper shape: LRS only slightly slower (LevelDB's write buffer keeps
// index inserts cheap).
func Fig19LRSWrite(s Scale) (Table, error) {
	t := Table{
		ID:     "fig19",
		Title:  "Sequential write: LogBase vs LRS (modelled disk ms)",
		Header: []string{"tuples", "LogBase", "LRS"},
		Shape:  "LRS slightly slower than LogBase (index runs flushed to disk)",
	}
	hold := true
	for _, n := range []int{s.Rows / 4, s.Rows / 2, s.Rows} {
		fxL, lb, fxR, lr, cleanup, err := lrsFixturePair(s, "fig19")
		if err != nil {
			return t, err
		}
		val := value(s.ValueSize, 8)
		_, lbDisk, err := fxL.timed(func() error {
			for i := 0; i < n; i++ {
				if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			cleanup()
			return t, err
		}
		_, lrDisk, err := fxR.timed(func() error {
			for i := 0; i < n; i++ {
				if err := lr.Put(key(i), int64(i+1), val); err != nil {
					return err
				}
			}
			return nil
		})
		cleanup()
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(lbDisk), ms(lrDisk)})
		// "Only slightly lower than LogBase": near-parity at small sizes
		// (the index fits its write buffer) and LRS strictly costlier
		// once index runs spill.
		if lrDisk < lbDisk*98/100 {
			hold = false
		}
		if n == s.Rows && lrDisk <= lbDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig20LRSRead reproduces Figure 20: random reads without cache,
// LogBase vs LRS. Paper shape: LRS slightly slower (index lookups may
// touch on-disk runs).
func Fig20LRSRead(s Scale) (Table, error) {
	t := Table{
		ID:     "fig20",
		Title:  "Random read (no cache): LogBase vs LRS (modelled disk ms)",
		Header: []string{"reads", "LogBase", "LRS"},
		Shape:  "LRS at or slightly above LogBase (LSM index lookups add I/O)",
	}
	fxL, lb, fxR, lr, cleanup, err := lrsFixturePair(s, "fig20")
	if err != nil {
		return t, err
	}
	defer cleanup()
	val := value(s.ValueSize, 9)
	for i := 0; i < s.Rows; i++ {
		if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
			return t, err
		}
		if err := lr.Put(key(i), int64(i+1), val); err != nil {
			return t, err
		}
	}
	hold := true
	for _, reads := range []int{s.Ops / 16, s.Ops / 8, s.Ops / 4, s.Ops / 2} {
		order := make([]int, reads)
		h := fnv.New32a()
		for i := range order {
			fmt.Fprintf(h, "%d", i)
			order[i] = int(h.Sum32()) % s.Rows
			if order[i] < 0 {
				order[i] = -order[i]
			}
		}
		_, lbDisk, err := fxL.timed(func() error {
			for _, i := range order {
				if _, err := lb.Get(benchTabletID, benchGroup, key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}
		_, lrDisk, err := fxR.timed(func() error {
			for _, i := range order {
				if _, err := lr.GetLatest(key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(reads), ms(lbDisk), ms(lrDisk)})
		if lrDisk < lbDisk/2 {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig21LRSScan reproduces Figure 21: sequential scan, LogBase vs LRS.
// Paper shape: LogBase faster — LRS pays an index (LSM) lookup per
// scanned record for the version check, LogBase a memory probe.
func Fig21LRSScan(s Scale) (Table, error) {
	t := Table{
		ID:     "fig21",
		Title:  "Sequential scan: LogBase vs LRS (modelled disk ms)",
		Header: []string{"tuples", "LogBase", "LRS"},
		Shape:  "LogBase faster: version checks hit memory, LRS's hit the LSM index",
	}
	hold := true
	for _, n := range []int{s.Rows / 4, s.Rows / 2, s.Rows} {
		fxL, lb, fxR, lr, cleanup, err := lrsFixturePair(s, "fig21")
		if err != nil {
			return t, err
		}
		val := value(s.ValueSize, 10)
		for i := 0; i < n; i++ {
			lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val)
			lr.Put(key(i), int64(i+1), val)
		}
		_, lbDisk, err := fxL.timed(func() error {
			count := 0
			err := lb.FullScan(context.Background(), benchTabletID, benchGroup, func(core.Row) bool { count++; return true })
			if err == nil && count != n {
				return fmt.Errorf("lb scan saw %d of %d", count, n)
			}
			return err
		})
		if err != nil {
			cleanup()
			return t, err
		}
		_, lrDisk, err := fxR.timed(func() error {
			count := 0
			err := lr.FullScan(func(lrs.Row) bool { count++; return true })
			if err == nil && count != n {
				return fmt.Errorf("lrs scan saw %d of %d", count, n)
			}
			return err
		})
		cleanup()
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(lbDisk), ms(lrDisk)})
		// Near-parity while the index fits in memory; strictly costlier
		// once version checks hit on-disk index runs.
		if lrDisk < lbDisk*96/100 {
			hold = false
		}
		if n == s.Rows && lrDisk <= lbDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// lrsCluster adapts per-node LRS stores to ycsb.DB for Figure 22.
type lrsCluster struct {
	stores []*lrs.Store
	clock  atomic.Int64
	clock2 *simdisk.Clock // modelled disk time
}

func dfsNew(dir string, n int, clock *simdisk.Clock) (*dfs.DFS, error) {
	return dfs.New(dir, dfs.Config{NumDataNodes: n, BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: clock})
}

func newLRSCluster(n int) (*lrsCluster, string, error) {
	dir, err := tempDir("lrs-cluster")
	if err != nil {
		return nil, "", err
	}
	clock := &simdisk.Clock{}
	fs, err := dfsNew(dir, n, clock)
	if err != nil {
		return nil, "", err
	}
	lc := &lrsCluster{clock2: clock}
	for i := 0; i < n; i++ {
		st, err := lrs.Open(fs, fmt.Sprintf("lrs%02d", i), lrs.Config{SegmentSize: 16 << 20})
		if err != nil {
			return nil, "", err
		}
		lc.stores = append(lc.stores, st)
	}
	return lc, dir, nil
}

func (l *lrsCluster) route(key []byte) *lrs.Store {
	h := fnv.New32a()
	h.Write(key)
	return l.stores[int(h.Sum32())%len(l.stores)]
}

func (l *lrsCluster) Insert(key, value []byte) error {
	return l.route(key).Put(key, l.clock.Add(1), value)
}
func (l *lrsCluster) Update(key, value []byte) error { return l.Insert(key, value) }
func (l *lrsCluster) Read(key []byte) error {
	_, err := l.route(key).GetLatest(key)
	return err
}

var _ ycsb.DB = (*lrsCluster)(nil)
