package bench

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/partition"
)

// AblationBloomFilter quantifies the bLSM idea the paper cites (§2.3):
// with several store files per region, bloom filters let a point read
// skip files that cannot contain the key, cutting the multi-file check
// that hurts the WAL+Data baseline's reads.
func AblationBloomFilter(s Scale) (Table, error) {
	t := Table{
		ID:     "abl-bloom",
		Title:  "Bloom filters on baseline store files (modelled disk ms, cold reads)",
		Header: []string{"store files", "no bloom", "bloom 10b/key"},
		Shape:  "blooms cut cold read cost once reads face multiple store files",
	}
	n := s.Rows / 2
	reads := s.Ops / 8
	hold := true
	for _, bloom := range []int{0, 10} {
		_ = bloom
	}
	run := func(bloomBits int) (files int, cost float64, err error) {
		dir, err := tempDir("abl-bloom")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		fx, err := newFixture(dir)
		if err != nil {
			return 0, 0, err
		}
		hb, err := fx.newHBaseWithBloom(int64(n)*int64(s.ValueSize), bloomBits)
		if err != nil {
			return 0, 0, err
		}
		val := value(s.ValueSize, 31)
		for i := 0; i < n; i++ {
			if err := hb.Put(key(i), int64(i+1), val); err != nil {
				return 0, 0, err
			}
		}
		hb.Flush()
		rng := rand.New(rand.NewSource(17))
		order := make([]int, reads)
		for i := range order {
			order[i] = rng.Intn(n)
		}
		_, disk, err := fx.timed(func() error {
			for _, i := range order {
				if _, err := hb.GetLatest(key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		return hb.NumStoreFiles(), float64(disk), err
	}
	filesOff, costOff, err := run(0)
	if err != nil {
		return t, err
	}
	filesOn, costOn, err := run(10)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{fmt.Sprint(filesOff), fmt.Sprintf("%.1f", costOff/1e6), "-"},
		[]string{fmt.Sprint(filesOn), "-", fmt.Sprintf("%.1f", costOn/1e6)},
	)
	if filesOff > 1 && costOn >= costOff {
		hold = false
	}
	t.Hold = hold
	return t, nil
}

// AblationVerticalPartition evaluates §3.2's workload-driven vertical
// partitioning with the deterministic I/O cost model: the optimizer's
// grouping versus all-columns-in-one-group and one-group-per-column, on
// a trace shaped like the paper's motivating webshop workload.
func AblationVerticalPartition(Scale) (Table, error) {
	t := Table{
		ID:     "abl-vertical",
		Title:  "Vertical partitioning I/O cost (bytes per workload unit)",
		Header: []string{"layout", "cost", "vs optimized"},
		Shape:  "workload-driven groups cost no more than single-group or fully-split layouts",
	}
	cols := []partition.ColumnSpec{
		{Name: "id", AvgBytes: 8},
		{Name: "price", AvgBytes: 8},
		{Name: "qty", AvgBytes: 8},
		{Name: "title", AvgBytes: 80},
		{Name: "description", AvgBytes: 900},
		{Name: "image", AvgBytes: 2000},
	}
	queries := []partition.Query{
		{Columns: []string{"price", "qty"}, Freq: 1000},        // order updates
		{Columns: []string{"id", "title", "price"}, Freq: 400}, // listings
		{Columns: []string{"description", "image"}, Freq: 50},  // product page
		{Columns: []string{"id", "price", "qty", "title"}, Freq: 100},
	}
	groups := partition.Optimize(cols, queries)
	var optimized [][]string
	for _, g := range groups {
		optimized = append(optimized, g.Columns)
	}
	single := [][]string{{"id", "price", "qty", "title", "description", "image"}}
	split := [][]string{{"id"}, {"price"}, {"qty"}, {"title"}, {"description"}, {"image"}}

	costOpt := partition.IOCost(cols, optimized, queries)
	costSingle := partition.IOCost(cols, single, queries)
	costSplit := partition.IOCost(cols, split, queries)
	rel := func(c float64) string { return fmt.Sprintf("%.2fx", c/costOpt) }
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("optimized (%d groups)", len(groups)), fmt.Sprintf("%.0f", costOpt), "1.00x"},
		[]string{"single group", fmt.Sprintf("%.0f", costSingle), rel(costSingle)},
		[]string{"one per column", fmt.Sprintf("%.0f", costSplit), rel(costSplit)},
	)
	t.Hold = costOpt <= costSingle && costOpt <= costSplit
	return t, nil
}
