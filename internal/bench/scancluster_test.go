package bench

import "testing"

// TestClusteredScan100k is the acceptance criterion at full scale: on a
// fully compacted 100k-row table, a FullScan through the clustered
// path must cost at least 2x less modelled disk time per row than the
// index-driven path, and the autocompact churn must hold
// SortedFraction >= 0.5 with no manual Compact.
func TestClusteredScan100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k acceptance run skipped in -short mode")
	}
	// 4 rounds x 25k rows = 100k rows on the compacted fixture.
	ops, err := ScanClusteredKeyOps(Scale{Rows: 25_000, ValueSize: 256})
	if err != nil {
		t.Fatal(err) // includes the >=2x floor
	}
	t.Logf("scan-clustered %.2f us/row vs scan-index %.2f us/row (%.1fx)",
		ops[0].DiskUSPerOp, ops[1].DiskUSPerOp, ops[1].DiskUSPerOp/ops[0].DiskUSPerOp)
}

// TestAutoCompactHoldsSortedFraction is the churn acceptance at a
// meaningful scale.
func TestAutoCompactHoldsSortedFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("autocompact churn skipped in -short mode")
	}
	ops, frac, err := AutoCompactKeyOps(Scale{Rows: 4000, ValueSize: 256})
	if err != nil {
		t.Fatal(err) // includes the SortedFraction >= 0.5 floor
	}
	t.Logf("autocompact: %d ops at %.2f disk us/op, final sorted fraction %.3f",
		ops[0].Ops, ops[0].DiskUSPerOp, frac)
}
