package bench

// cdc-tail: the changefeed's two cost regimes, measured off the log.
//
// Catch-up replays retained history by sweeping pinned segments —
// sequential reads whose modelled disk cost amortizes per event.
// The live tail is published straight from the append path: events
// cross a channel, never the disk, so a subscribed feed must add
// ~zero modelled disk over the writes themselves. That is the paper's
// "log is the only repository" claim applied to CDC — no second
// pipeline, no double write — and the gate enforces it: the write
// phase with a live subscriber may cost at most cdcTailTolerance more
// modelled disk than the identical phase with no subscriber.

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/simdisk"
)

// cdcTailTolerance caps the live tail's modelled-disk overhead over
// bare writes. The publish path touches no I/O, so any real delta is a
// wiring bug (e.g. the hub forcing log reads on delivery).
const cdcTailTolerance = 0.10

// cdcTailSegments is how many sealed, compacted segments the historical
// catch-up has to sweep.
const cdcTailSegments = 4

// cdcTailFixture loads n unique rows in cdcTailSegments rotated and
// compacted batches, so catch-up replays exactly n events from sorted
// segments. The segment size is large enough that the later live
// phases never rotate — both the subscribed and the bare write phase
// append into the same open segment, keeping their costs comparable.
func cdcTailFixture(n, valueSize int) (*core.Server, *simdisk.Clock, string, int64, error) {
	dir, err := tempDir("cdctail")
	if err != nil {
		return nil, nil, "", 0, err
	}
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{
		NumDataNodes: 2, BlockSize: 4 << 20,
		DiskModel: benchDiskModel(), Clock: clock,
	})
	if err != nil {
		return nil, nil, dir, 0, err
	}
	srv, err := core.NewServer(fs, "cdc", core.Config{SegmentSize: 16 << 20})
	if err != nil {
		return nil, nil, dir, 0, err
	}
	srv.AddTablet(benchTablet(), []string{benchGroup})
	val := value(valueSize, 11)
	ts := int64(0)
	per := n / cdcTailSegments
	for i := 0; i < n; i++ {
		ts++
		if err := srv.Write(benchTabletID, benchGroup, key(i), ts, val); err != nil {
			return nil, nil, dir, 0, err
		}
		if (i+1)%per == 0 {
			srv.Log().Rotate()
			var nums []uint32
			for _, si := range srv.Log().Segments() {
				if !si.Sorted {
					nums = append(nums, si.Num)
				}
			}
			if _, err := srv.CompactSegments(nums); err != nil {
				return nil, nil, dir, 0, err
			}
		}
	}
	// Warm the post-rotation head segment: the first append after a
	// Rotate pays the new-segment creation cost, which belongs to the
	// fixture, not to whichever measured phase happens to write first.
	ts++
	if err := srv.Write(benchTabletID, benchGroup, key(n), ts, val); err != nil {
		return nil, nil, dir, 0, err
	}
	return srv, clock, dir, ts, nil
}

// CDCTailKeyOps measures the three phases and enforces the live-tail
// ceiling. Returned ops: cdc-catchup (Watch from LSN 0 through the
// compacted history), cdc-tail (writes with a caught-up subscriber,
// events drained), cdc-writes-base (the identical writes, no
// subscriber).
func CDCTailKeyOps(s Scale) ([]KeyOp, error) {
	n, ops := s.Rows, s.Ops
	srv, clock, dir, ts, err := cdcTailFixture(n, s.ValueSize)
	if dir != "" {
		defer os.RemoveAll(dir)
	}
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	measured := func(name string, count int, fn func() error) (KeyOp, error) {
		clock.Reset()
		am := startAllocMeter()
		start := time.Now()
		if err := fn(); err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(int64(count))
		disk := clock.Elapsed()
		return KeyOp{
			Name:        name,
			Ops:         int64(count),
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(count),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(count),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	// Catch-up: open the feed at LSN 0 and drain the whole history. The
	// clock is reset before Watch so the feed goroutine's segment sweep
	// (which runs ahead of Next into the event buffer) is charged too.
	var feed *core.Feed
	drain := func(count int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		for i := 0; i < count; i++ {
			if _, err := feed.Next(ctx); err != nil {
				return fmt.Errorf("event %d/%d: %w", i, count, err)
			}
		}
		return nil
	}
	history := int(ts)
	catch, err := measured("cdc-catchup", history, func() error {
		// Buffer sized so the later live phase can run writes and drain
		// sequentially without overflowing.
		feed, err = srv.Watch(benchTable, benchGroup, nil, nil, 0, cdc.Options{Buffer: ops + 1024})
		if err != nil {
			return err
		}
		return drain(history)
	})
	if err != nil {
		return nil, err
	}
	defer feed.Close()

	val := value(s.ValueSize, 13)
	writes := func(count int) error {
		for i := 0; i < count; i++ {
			ts++
			if err := srv.Write(benchTabletID, benchGroup, key(n+int(ts)), ts, val); err != nil {
				return err
			}
		}
		return nil
	}

	// Transition: catch-up swept the active segment, so the next append
	// pays one modelled head seek back to the log's write position — a
	// per-Watch constant, not a per-event tail cost. Spend it between
	// the measured phases.
	ts++
	if err := srv.Write(benchTabletID, benchGroup, key(n+int(ts)), ts, val); err != nil {
		return nil, err
	}
	if err := drain(1); err != nil {
		return nil, err
	}

	// Live tail: the same write workload with the caught-up feed
	// subscribed, every event drained.
	tail, err := measured("cdc-tail", ops, func() error {
		if err := writes(ops); err != nil {
			return err
		}
		return drain(ops)
	})
	if err != nil {
		return nil, err
	}
	if err := feed.Close(); err != nil {
		return nil, err
	}

	// Baseline: identical writes into the same open segment, nobody
	// listening.
	base, err := measured("cdc-writes-base", ops, func() error { return writes(ops) })
	if err != nil {
		return nil, err
	}

	if base.DiskUSPerOp > 0 {
		if d := (tail.DiskUSPerOp - base.DiskUSPerOp) / base.DiskUSPerOp; d > cdcTailTolerance {
			return nil, fmt.Errorf("cdc live tail not free: subscribed writes %.2f vs bare %.2f disk us/op (%+.1f%%, limit %.0f%%)",
				tail.DiskUSPerOp, base.DiskUSPerOp, d*100, cdcTailTolerance*100)
		}
	}
	return []KeyOp{catch, tail, base}, nil
}

// CDCTail is the experiment-registry wrapper: modelled-disk µs/event
// for catch-up vs live tail, plus wall events/sec.
func CDCTail(s Scale) (Table, error) {
	t := Table{
		ID:     "cdc-tail",
		Title:  "Changefeed: historical catch-up vs live tail off the log",
		Header: []string{"phase", "events", "disk µs/event", "wall µs/event", "events/s (wall)"},
		Shape:  "live tail adds <= 10% modelled disk over bare writes; catch-up replays at sequential sweep cost",
	}
	ops, err := CDCTailKeyOps(Scale{Rows: s.Rows / 4, Ops: s.Ops / 2, ValueSize: s.ValueSize})
	if err != nil {
		// The enforced ceiling failing IS the experiment's answer.
		t.Rows = [][]string{{"-", "-", "-", "-", err.Error()}}
		t.Hold = false
		return t, nil
	}
	for _, op := range ops {
		rate := "-"
		if op.WallUSPerOp > 0 {
			rate = fmt.Sprintf("%.0f", 1e6/op.WallUSPerOp)
		}
		t.Rows = append(t.Rows, []string{
			op.Name,
			fmt.Sprint(op.Ops),
			fmt.Sprintf("%.2f", op.DiskUSPerOp),
			fmt.Sprintf("%.2f", op.WallUSPerOp),
			rate,
		})
	}
	t.Hold = true
	return t, nil
}
