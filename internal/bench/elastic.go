package bench

// The elasticity scenario: a skewed YCSB workload whose hot band lands
// inside ONE key-range tablet (every "userNNN" key shares a prefix, so
// the uniform CreateTable cut pins the whole table to one server — the
// exact pathology the balancer exists to fix). The static phase runs on
// the frozen topology; the elastic phase interleaves workload rounds
// with deterministic balancer ticks, letting the master split the hot
// tablet and migrate the pieces, then measures post-rebalance
// throughput on the converged topology.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/ycsb"
)

const elasticServers = 4

// hotRangeWorkload is the skewed mix: 90% of ops land on the first
// eighth of the key domain, half reads half updates.
func hotRangeWorkload(records int64, valueSize int) ycsb.Workload {
	return ycsb.Workload{
		Records:        records,
		UpdateFraction: 0.5,
		ValueSize:      valueSize,
		Dist:           ycsb.HotRange{N: records, Lo: 0, Hi: records / 8, Hot: 0.9},
	}
}

// workloadSpread counts the distinct servers serving the POPULATED key
// range. Every YCSB key shares the "user" prefix, so the static uniform
// cut pins the whole workload to one server; the balancer's splits and
// migrations are what raise this above 1.
func workloadSpread(c *cluster.Cluster, records int64) int {
	router, err := c.Router("usertable")
	if err != nil {
		return 0
	}
	asg, _ := c.RoutingSnapshot()
	owners := map[string]bool{}
	for _, tab := range router.Overlapping(ycsb.Key(0), ycsb.Key(records)) {
		owners[asg[tab.ID]] = true
	}
	return len(owners)
}

// ElasticHotRange reproduces the balancer acceptance scenario: static
// topology vs balancer-on, same skewed workload.
func ElasticHotRange(s Scale) (Table, error) {
	t := Table{
		ID:     "elastic-hotrange",
		Title:  "Elasticity: hot-range YCSB, static topology vs master balancer",
		Header: []string{"phase", "ops/sec", "disk ms", "tablets", "workload servers", "splits", "moves"},
		Shape:  "balancer splits + migrates the hot tablet; hot range served by >1 server; post-rebalance throughput not below static",
	}
	records := int64(s.Rows)
	ops := int64(s.Ops)
	w := hotRangeWorkload(records, s.ValueSize)

	runPhase := func(c *cluster.Cluster, db ycsb.DB, n int64, seed int64) (ycsb.Result, time.Duration, error) {
		c.Clock().Reset()
		res, err := ycsb.Run(db, w, n, elasticServers, seed)
		return res, c.Clock().Elapsed(), err
	}
	tabletCount := func(c *cluster.Cluster) int {
		router, err := c.Router("usertable")
		if err != nil {
			return 0
		}
		return len(router.Tablets())
	}

	// Phase 1: static topology (the seed behaviour).
	c1, dir1, err := newYCSBCluster(elasticServers)
	if err != nil {
		return t, err
	}
	db1 := &StoreDB{St: logbase.NewClusterClient(c1), Table: "usertable", Group: "f0"}
	if _, err := ycsb.Load(db1, records, s.ValueSize, elasticServers, 1); err != nil {
		return t, err
	}
	resStatic, diskStatic, err := runPhase(c1, db1, ops, 2)
	spreadStatic := workloadSpread(c1, records)
	tabStatic := tabletCount(c1)
	c1.Close()
	os.RemoveAll(dir1)
	if err != nil {
		return t, err
	}

	// Phase 2: same cluster shape with the balancer driving topology.
	c2, dir2, err := newYCSBCluster(elasticServers)
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir2)
	defer c2.Close()
	db2 := &StoreDB{St: logbase.NewClusterClient(c2), Table: "usertable", Group: "f0"}
	if _, err := ycsb.Load(db2, records, s.ValueSize, elasticServers, 1); err != nil {
		return t, err
	}
	b := c2.StartBalancer(cluster.BalancerConfig{
		Interval: time.Hour, // ticked manually: deterministic rounds
		MinOps:   64,
		Cooldown: 2,
	})
	// Warm-up rounds: workload slices interleaved with balancer ticks,
	// so the master sees settled load windows between actions.
	for round := 0; round < 10; round++ {
		if _, err := ycsb.Run(db2, w, ops/5, elasticServers, int64(100+round)); err != nil {
			return t, err
		}
		b.Tick()
	}
	resElastic, diskElastic, err := runPhase(c2, db2, ops, 2)
	if err != nil {
		return t, err
	}
	st := b.Stats()
	b.Stop()
	spreadElastic := workloadSpread(c2, records)
	tabElastic := tabletCount(c2)

	t.Rows = append(t.Rows,
		[]string{"static", fmt.Sprintf("%.0f", resStatic.Throughput), ms(diskStatic),
			fmt.Sprint(tabStatic), fmt.Sprint(spreadStatic), "0", "0"},
		[]string{"balanced", fmt.Sprintf("%.0f", resElastic.Throughput), ms(diskElastic),
			fmt.Sprint(tabElastic), fmt.Sprint(spreadElastic),
			fmt.Sprint(st.Splits), fmt.Sprint(st.Moves)},
	)
	t.Hold = st.Splits >= 1 && st.Moves >= 1 && spreadElastic > spreadStatic
	// The throughput claim needs real parallel cores; on starved hosts
	// the deterministic topology assertions above carry the check.
	if runtime.NumCPU() >= elasticServers && resElastic.Throughput < resStatic.Throughput {
		t.Hold = false
	}
	t.Shape += fmt.Sprintf(" (throughput assessed with >=%d CPUs; this host has %d)",
		elasticServers, runtime.NumCPU())
	return t, nil
}

// elasticSmoke is a tiny correctness pass used by tests: it runs the
// elastic phase only and verifies no acknowledged write is lost.
func elasticSmoke(rows, opsPerRound int64, rounds int) error {
	c, dir, err := newYCSBCluster(2)
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	st := logbase.NewClusterClient(c)
	db := &StoreDB{St: st, Table: "usertable", Group: "f0"}
	if _, err := ycsb.Load(db, rows, 64, 2, 1); err != nil {
		return err
	}
	b := c.StartBalancer(cluster.BalancerConfig{Interval: time.Hour, MinOps: 32, Cooldown: 1})
	defer b.Stop()
	w := hotRangeWorkload(rows, 64)
	for r := 0; r < rounds; r++ {
		if _, err := ycsb.Run(db, w, opsPerRound, 2, int64(r)); err != nil {
			return err
		}
		b.Tick()
	}
	// Every loaded row still readable.
	for i := int64(0); i < rows; i++ {
		if _, err := st.Get(context.Background(), "usertable", "f0", ycsb.Key(i)); err != nil {
			return fmt.Errorf("row %d lost after balancing: %w", i, err)
		}
	}
	return nil
}
