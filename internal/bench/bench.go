// Package bench is the reproduction harness for the paper's evaluation
// (§4): one experiment function per figure, each returning a Table with
// the same rows/series the paper plots, plus ablation benches for the
// design choices DESIGN.md calls out.
//
// Measurements report two numbers: wall-clock time of the in-process
// run, and modelled disk time from the simdisk virtual clock (seek +
// transfer charges for every DFS access). The virtual clock is the one
// to compare against the paper's shapes: it is deterministic and
// reflects the spinning-disk cost model the paper's arguments rest on,
// while wall time on a modern machine compresses seek effects.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/hbase"
	"repro/internal/lrs"
	"repro/internal/lsm"
	"repro/internal/partition"
	"repro/internal/simdisk"
	"repro/internal/wal"
)

// Scale shrinks the paper's workloads to laptop size. Factor 1 is the
// default benchmark scale; the full-paper scale is Factor ~50 (1M rows
// per node) and takes correspondingly longer.
type Scale struct {
	// Rows is the base row count per node ("1M" in the paper).
	Rows int
	// Ops is the number of operations per mixed-workload run.
	Ops int
	// ValueSize is the record payload (1 KB in the paper).
	ValueSize int
	// Nodes are the cluster sizes swept (3/6/12/24 in the paper).
	Nodes []int
	// Workers is the client parallelism per run.
	Workers int
}

// DefaultScale keeps every figure under a few seconds.
func DefaultScale() Scale {
	return Scale{Rows: 20_000, Ops: 8_000, ValueSize: 1024, Nodes: []int{3, 6, 12, 24}, Workers: 4}
}

// SmallScale is used by testing.B wrappers.
func SmallScale() Scale {
	return Scale{Rows: 2_000, Ops: 1_000, ValueSize: 256, Nodes: []int{2, 4}, Workers: 2}
}

// Table is one reproduced figure.
type Table struct {
	ID     string // e.g. "fig06"
	Title  string
	Header []string
	Rows   [][]string
	// Shape states the paper's qualitative claim this table should
	// reproduce; Check reports whether it held in this run.
	Shape string
	Hold  bool
}

// Render formats the table for terminal output.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	held := "HELD"
	if !t.Hold {
		held = "NOT HELD"
	}
	fmt.Fprintf(&b, "shape: %s [%s]\n", t.Shape, held)
	return b.String()
}

// Experiment is one registered figure reproduction.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Scale) (Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig06", "Sequential write: LogBase vs HBase", Fig06SequentialWrite},
		{"fig07", "Random read without cache: LogBase vs HBase", Fig07RandomReadNoCache},
		{"fig08", "Random read with cache: LogBase vs HBase", Fig08RandomReadCache},
		{"fig09", "Sequential scan: LogBase vs HBase", Fig09SequentialScan},
		{"fig10", "Range scan: LogBase pre/post-compaction vs HBase", Fig10RangeScan},
		{"fig11", "YCSB parallel load time vs cluster size", Fig11YCSBLoad},
		{"fig12", "YCSB mixed throughput (75%/95% update)", Fig12MixedThroughput},
		{"fig13", "YCSB update latency", Fig13UpdateLatency},
		{"fig14", "YCSB read latency", Fig14ReadLatency},
		{"fig15", "TPC-W transaction latency", Fig15TPCWLatency},
		{"fig16", "TPC-W transaction throughput", Fig16TPCWThroughput},
		{"fig17", "Checkpoint write/reload cost", Fig17Checkpoint},
		{"fig18", "Recovery time with/without checkpoint", Fig18Recovery},
		{"fig19", "Sequential write: LogBase vs LRS", Fig19LRSWrite},
		{"fig20", "Random read: LogBase vs LRS", Fig20LRSRead},
		{"fig21", "Sequential scan: LogBase vs LRS", Fig21LRSScan},
		{"fig22", "Throughput across nodes: LogBase vs LRS", Fig22LRSThroughput},
		{"abl-log-per-group", "Ablation: single log vs log per column group", AblationLogPerGroup},
		{"abl-cache-policy", "Ablation: read-buffer replacement policy", AblationCachePolicy},
		{"abl-group-commit", "Ablation: group commit batch size", AblationGroupCommit},
		{"abl-bloom", "Ablation: bloom filters on baseline store files", AblationBloomFilter},
		{"abl-vertical", "Ablation: workload-driven vertical partitioning", AblationVerticalPartition},
		{"analytic-scan", "Analytic scan: serial FullScan vs snapshot-parallel aggregate", AnalyticScan},
		{"analytic-mix", "YCSB-style scan-heavy mix on serial vs parallel scan path", AnalyticScanMix},
		{"bulk-load", "Bulk load: per-record Put vs WriteBatch append sweeps", BulkLoad},
		{"elastic-hotrange", "Elasticity: balancer splits/migrates a hot key-range tablet", ElasticHotRange},
		{"scan-clustered", "Clustered scan fast path vs index-driven path on a compacted log", ScanClustered},
		{"autocompact", "Background incremental compaction holds SortedFraction under churn", AutoCompactChurn},
		{"obs-overhead", "Observability overhead: instrumented vs disabled Put/Scan", ObsOverhead},
		{"fault-overhead", "Fault-injection overhead: wired-but-disarmed registry vs nil", FaultOverhead},
		{"cdc-tail", "Changefeed: historical catch-up vs live tail off the log", CDCTail},
		{"join-greedy", "Three-table equi-join: greedy planned vs worst-order naive", JoinGreedy},
		{"replica-scan", "Read replicas: pinned scan offload vs primary scan under writes", ReplicaScan},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ms renders a duration as milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }

// benchDiskModel is the spinning-disk model used by all micro-benches:
// the paper's testbed disks (commodity 7200 RPM).
func benchDiskModel() simdisk.Model { return simdisk.DefaultModel() }

// fixture bundles one engine instance on its own modelled DFS.
type fixture struct {
	fs    *dfs.DFS
	clock *simdisk.Clock
}

func newFixture(dir string) (*fixture, error) {
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{
		NumDataNodes:      3,
		ReplicationFactor: 3,
		BlockSize:         4 << 20,
		DiskModel:         benchDiskModel(),
		Clock:             clock,
	})
	if err != nil {
		return nil, err
	}
	return &fixture{fs: fs, clock: clock}, nil
}

// timed runs fn and returns (wall, virtual-disk) elapsed time.
func (f *fixture) timed(fn func() error) (time.Duration, time.Duration, error) {
	f.clock.Reset()
	f.resetStats()
	start := time.Now()
	err := fn()
	return time.Since(start), f.clock.Elapsed(), err
}

// resetStats zeroes per-datanode I/O counters.
func (f *fixture) resetStats() {
	for i := 0; i < f.fs.NumDataNodes(); i++ {
		f.fs.DataNode(i).Disk().ResetStats()
	}
}

// bytesRead sums bytes read across all datanodes since the last reset.
func (f *fixture) bytesRead() int64 {
	var n int64
	for i := 0; i < f.fs.NumDataNodes(); i++ {
		n += f.fs.DataNode(i).Disk().Stats().BytesRead
	}
	return n
}

// newLogBase builds a single LogBase tablet server on the fixture.
func (f *fixture) newLogBase(cacheBytes int64) (*core.Server, error) {
	srv, err := core.NewServer(f.fs, "lb", core.Config{
		SegmentSize:    16 << 20,
		ReadCacheBytes: cacheBytes,
	})
	if err != nil {
		return nil, err
	}
	srv.AddTablet(benchTablet(), []string{benchGroup})
	return srv, nil
}

const (
	benchTable    = "bench"
	benchTabletID = "bench/0000"
	benchGroup    = "cg"
)

func benchTablet() partition.Tablet {
	return partition.Tablet{ID: benchTabletID, Table: benchTable}
}

// newHBase builds one HBase region store on the fixture. The memtable
// threshold scales with the workload so flushes happen a handful of
// times per run (as 64 MB does against 1 GB in the paper).
func (f *fixture) newHBase(dataBytes int64, blockCache int64) (*hbase.Store, error) {
	memtable := dataBytes / 16
	if memtable < 64<<10 {
		memtable = 64 << 10
	}
	return hbase.Open(f.fs, "hb", hbase.Config{
		MemtableBytes:   memtable,
		BlockSize:       64 << 10,
		BlockCacheBytes: blockCache,
		SegmentSize:     16 << 20,
	})
}

// newHBaseWithBloom is newHBase with a small memtable (many store
// files) and configurable bloom filters, for the bloom ablation.
func (f *fixture) newHBaseWithBloom(dataBytes int64, bloomBits int) (*hbase.Store, error) {
	memtable := dataBytes / 8
	if memtable < 32<<10 {
		memtable = 32 << 10
	}
	return hbase.Open(f.fs, "hb-bloom", hbase.Config{
		MemtableBytes:   memtable,
		BlockSize:       64 << 10,
		MaxStoreFiles:   32, // keep files un-merged so multi-file reads happen
		BloomBitsPerKey: bloomBits,
		SegmentSize:     16 << 20,
	})
}

// newLRS builds one LRS store with a deliberately small index memtable
// so the index spills to disk runs (the "memory is scarce" scenario of
// §4.6).
func (f *fixture) newLRS(dataBytes int64) (*lrs.Store, error) {
	return lrs.Open(f.fs, "lrs", lrs.Config{
		SegmentSize: 16 << 20,
		Index:       lrsIndexOptions(dataBytes),
	})
}

func lrsIndexOptions(dataBytes int64) (o lsmOptions) {
	// The paper keeps LevelDB's 4 MB write buffer against 1 GB/node of
	// data, so the index spills to disk runs. At bench scale the same
	// absolute buffer would hold the whole index in memory and erase
	// the very cost LRS exists to measure; scale it with the data to
	// preserve the spill ratio.
	o.MemtableBytes = dataBytes / 64
	if o.MemtableBytes < 32<<10 {
		o.MemtableBytes = 32 << 10
	}
	o.BlockSize = 8 << 10
	// The paper's LRS keeps LevelDB's read buffer ("4 MB and 8 MB
	// respectively", §4.6): index blocks are cached, so lookups touch
	// disk only for cold blocks.
	o.BlockCache = cache.New(8<<20, nil)
	return o
}

// lsmOptions aliases lsm.Options to keep the import local to one spot.
type lsmOptions = lsm.Options

// key renders row i as a fixed-width key.
func key(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// value builds a payload of the scale's record size.
func value(size int, seed byte) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = seed + byte(i%31)
	}
	return v
}

// checkWAL keeps the wal import (Ptr types appear in ablations).
var _ wal.Ptr
