package bench

// Bulk-load experiment for the WriteBatch path: the same rows are
// ingested once as per-record Puts (one durable log append each — the
// paper's single-row auto-commit write) and once as batched append
// sweeps of increasing size (core.Server.ApplyBatch, the mechanism
// under logbase.WriteBatch / cluster.Client.ApplyBatch). On a
// sequential-log engine the per-append persistence cost (seek + sync
// charge in the disk model) dominates small writes, so batching should
// raise throughput monotonically with batch size until transfer time
// dominates.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

// BulkLoad compares per-record Put against WriteBatch-style append
// sweeps at ~100k rows (5x the scale's base row count).
func BulkLoad(s Scale) (Table, error) {
	t := Table{
		ID:     "bulk-load",
		Title:  "Bulk load: per-record Put vs WriteBatch append sweeps",
		Header: []string{"mode", "rows", "wall ms", "disk ms", "krows/s"},
		Shape:  "batched sweeps beat per-record Put throughput (fewer, larger appends)",
	}
	n := 5 * s.Rows // 100_000 at DefaultScale
	val := value(s.ValueSize, 9)

	run := func(batch int) (time.Duration, time.Duration, error) {
		dir, err := tempDir("bulk")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		fx, err := newFixture(dir)
		if err != nil {
			return 0, 0, err
		}
		srv, err := fx.newLogBase(0)
		if err != nil {
			return 0, 0, err
		}
		wall, disk, err := fx.timed(func() error {
			if batch <= 1 {
				for i := 0; i < n; i++ {
					if err := srv.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
						return err
					}
				}
				return nil
			}
			writes := make([]core.BatchWrite, 0, batch)
			flush := func() error {
				if len(writes) == 0 {
					return nil
				}
				err := srv.ApplyBatch(writes)
				writes = writes[:0]
				return err
			}
			for i := 0; i < n; i++ {
				writes = append(writes, core.BatchWrite{
					Tablet: benchTabletID, Group: benchGroup,
					Key: key(i), TS: int64(i + 1), Value: val,
				})
				if len(writes) == batch {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return flush()
		})
		if err != nil {
			return 0, 0, err
		}
		if got := srv.IndexLen(benchTabletID, benchGroup); got != n {
			return 0, 0, fmt.Errorf("bulk load indexed %d of %d rows", got, n)
		}
		return wall, disk, nil
	}

	type line struct {
		mode  string
		batch int
	}
	lines := []line{
		{"per-record Put", 1},
		{"WriteBatch 256", 256},
		{"WriteBatch 1024", 1024},
		{"WriteBatch 4096", 4096},
	}
	var putWall, bestBatchWall time.Duration
	for _, ln := range lines {
		wall, disk, err := run(ln.batch)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			ln.mode, fmt.Sprint(n), ms(wall), ms(disk),
			fmt.Sprintf("%.0f", float64(n)/1000/wall.Seconds()),
		})
		if ln.batch <= 1 {
			putWall = wall
		} else if bestBatchWall == 0 || wall < bestBatchWall {
			bestBatchWall = wall
		}
	}
	// The acceptance check is wall throughput: the disk model charges
	// streaming transfer identically either way (the log is sequential
	// in both modes — that is the engine's whole point), so the batched
	// win is per-append overhead (framing, locking, replica fan-out),
	// which only wall time sees. Disk time is reported to show the
	// transfer cost staying flat. The fastest batched mode is compared
	// so one noisy run of a single batch size cannot flip the verdict.
	t.Hold = bestBatchWall < putWall
	return t, nil
}
