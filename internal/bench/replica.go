package bench

// Read replicas: the offload and shipping-overhead claims, measured.
//
// A WAL-shipping replica serves pinned analytical scans from ITS OWN
// log copy, so the primary's disks see none of the scan — that is the
// whole point of log-replication read scaling on a log-only store. Two
// gates pin it down: (1) the pinned scan on the replica charges ZERO
// modelled disk to the primary; (2) a caught-up replica draining the
// live tail adds at most replShipTolerance modelled disk to the
// primary's write path, because the tail ships from the append path's
// in-memory hub, never from a second read of the log. The historical
// catch-up — the one phase that DOES read the primary's segments — is
// reported separately at its sequential-sweep cost.

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/repl"
	"repro/internal/simdisk"
)

// replShipTolerance caps the live-shipping overhead on the primary's
// write path (same ceiling as the changefeed tail: the publish path is
// memory-only, so any real delta is a wiring bug).
const replShipTolerance = 0.10

// replicaFixture builds the primary on its own modelled DFS and loads n
// sorted rows of history for the replica to catch up over.
func replicaFixture(n, valueSize int) (*core.Server, *simdisk.Clock, string, *atomic.Int64, error) {
	dir, err := tempDir("replica")
	if err != nil {
		return nil, nil, "", nil, err
	}
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{
		NumDataNodes: 2, BlockSize: 4 << 20,
		DiskModel: benchDiskModel(), Clock: clock,
	})
	if err != nil {
		return nil, nil, dir, nil, err
	}
	srv, err := core.NewServer(fs, "prim", core.Config{SegmentSize: 16 << 20})
	if err != nil {
		return nil, nil, dir, nil, err
	}
	srv.AddTablet(benchTablet(), []string{benchGroup})
	ts := &atomic.Int64{}
	val := value(valueSize, 17)
	for i := 0; i < n; i++ {
		if err := srv.Write(benchTabletID, benchGroup, key(i), ts.Add(1), val); err != nil {
			return nil, nil, dir, nil, err
		}
	}
	srv.Log().Rotate()
	var nums []uint32
	for _, si := range srv.Log().Segments() {
		if !si.Sorted {
			nums = append(nums, si.Num)
		}
	}
	if _, err := srv.CompactSegments(nums); err != nil {
		return nil, nil, dir, nil, err
	}
	return srv, clock, dir, ts, nil
}

// ReplicaKeyOps measures the replication phases and enforces the two
// ceilings. Returned ops: repl-writes-base (primary writes, nobody
// shipping), repl-catchup (replica bootstrap replay of the retained
// history; disk is primary sweep + replica re-append), repl-writes-
// shipped (the identical writes with a caught-up replica draining the
// live tail — gated against base), replica-scan (pinned scan served by
// the replica; gated to charge the primary nothing), and
// primary-scan-under-writes (the same pinned scan paid by the primary's
// own disks).
func ReplicaKeyOps(s Scale) ([]KeyOp, error) {
	n, ops := s.Rows, s.Ops
	primary, pclock, dir, ts, err := replicaFixture(n, s.ValueSize)
	if dir != "" {
		defer os.RemoveAll(dir)
	}
	if err != nil {
		return nil, err
	}
	defer primary.Close()

	measured := func(name string, count int, clocks []*simdisk.Clock, fn func() error) (KeyOp, error) {
		for _, c := range clocks {
			c.Reset()
		}
		am := startAllocMeter()
		start := time.Now()
		if err := fn(); err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(int64(count))
		var disk time.Duration
		for _, c := range clocks {
			disk += c.Elapsed()
		}
		return KeyOp{
			Name:        name,
			Ops:         int64(count),
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(count),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(count),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	val := value(s.ValueSize, 19)
	next := n
	writes := func(count int) error {
		for i := 0; i < count; i++ {
			if err := primary.Write(benchTabletID, benchGroup, key(next), ts.Add(1), val); err != nil {
				return err
			}
			next++
		}
		return nil
	}

	// Baseline: the primary's write path with nobody shipping.
	base, err := measured("repl-writes-base", ops, []*simdisk.Clock{pclock}, func() error {
		return writes(ops)
	})
	if err != nil {
		return nil, err
	}

	// Bootstrap: the replica (on its own modelled disks) replays the
	// retained history — the primary pays a sequential segment sweep,
	// the replica pays the re-append of every record.
	rdir, err := tempDir("replica-standby")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(rdir)
	rclock := &simdisk.Clock{}
	rfs, err := dfs.New(rdir, dfs.Config{
		NumDataNodes: 2, BlockSize: 4 << 20,
		DiskModel: benchDiskModel(), Clock: rclock,
	})
	if err != nil {
		return nil, err
	}
	rep, err := repl.New(rfs, primary, "prim.r0", repl.Config{
		LastTS: ts.Load,
		Server: core.Config{SegmentSize: 16 << 20},
		Buffer: 1 << 16,
	})
	if err != nil {
		return nil, err
	}
	rep.AddTablet(benchTablet(), []string{benchGroup})
	defer rep.Close()
	catch, err := measured("repl-catchup", n+ops, []*simdisk.Clock{pclock, rclock}, func() error {
		if err := rep.Start(); err != nil {
			return err
		}
		return rep.WaitForTS(ts.Load(), 2*time.Minute)
	})
	if err != nil {
		return nil, err
	}

	// Transition: catch-up swept the primary's segments, so the next
	// append pays one modelled head seek back to the log's write
	// position — a per-bootstrap constant, not a shipping cost. Spend
	// it between the measured phases (same treatment as cdc-tail).
	if err := writes(1); err != nil {
		return nil, err
	}
	if err := rep.WaitForTS(ts.Load(), 2*time.Minute); err != nil {
		return nil, err
	}

	// Live shipping: the identical write workload with the caught-up
	// replica attached and fully drained. Only the primary's clock is
	// charged — the tail crosses a channel, not the primary's disks.
	shipped, err := measured("repl-writes-shipped", ops, []*simdisk.Clock{pclock}, func() error {
		if err := writes(ops); err != nil {
			return err
		}
		return rep.WaitForTS(ts.Load(), 2*time.Minute)
	})
	if err != nil {
		return nil, err
	}
	if base.DiskUSPerOp > 0 {
		if d := (shipped.DiskUSPerOp - base.DiskUSPerOp) / base.DiskUSPerOp; d > replShipTolerance {
			return nil, fmt.Errorf("log shipping not free on the write path: shipped %.2f vs bare %.2f disk us/op (%+.1f%%, limit %.0f%%)",
				shipped.DiskUSPerOp, base.DiskUSPerOp, d*100, replShipTolerance*100)
		}
	}

	// The analytical read, both ways, pinned at the same snapshot over
	// history + the freshly shipped (unsorted) tail.
	pin := ts.Load()
	total := n + 2*ops + 1 // fixture + both write phases + transition row
	ctx := context.Background()
	scan := func(srv *core.Server) (int, error) {
		rows := 0
		err := srv.Scan(ctx, benchTabletID, benchGroup, nil, nil, pin, func(core.Row) bool {
			rows++
			return true
		})
		return rows, err
	}
	pclock.Reset() // so the offload check below sees only scan-phase charges
	rscan, err := measured("replica-scan", total, []*simdisk.Clock{rclock}, func() error {
		rows, err := scan(rep.Server())
		if err != nil {
			return err
		}
		if rows != total {
			return fmt.Errorf("replica scan saw %d rows, want %d", rows, total)
		}
		// The offload claim, enforced: the replica served the whole scan
		// from its own log copy.
		if leak := pclock.Elapsed(); leak > 0 {
			return fmt.Errorf("replica scan charged %v modelled disk to the primary, want 0", leak)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pscan, err := measured("primary-scan-under-writes", total, []*simdisk.Clock{pclock}, func() error {
		rows, err := scan(primary)
		if err != nil {
			return err
		}
		if rows != total {
			return fmt.Errorf("primary scan saw %d rows, want %d", rows, total)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []KeyOp{base, catch, shipped, rscan, pscan}, nil
}

// ReplicaScan is the experiment-registry wrapper: modelled-disk µs/op
// for each replication phase and the scan pair.
func ReplicaScan(s Scale) (Table, error) {
	t := Table{
		ID:     "replica-scan",
		Title:  "Read replicas: pinned scan offload vs primary scan under writes",
		Header: []string{"phase", "ops", "disk µs/op", "wall µs/op"},
		Shape:  "replica scan charges zero primary disk; live shipping adds <= 10% to the write path",
	}
	ops, err := ReplicaKeyOps(Scale{Rows: s.Rows / 4, Ops: s.Ops / 4, ValueSize: s.ValueSize})
	if err != nil {
		// A violated ceiling IS the experiment's answer.
		t.Rows = [][]string{{"-", "-", "-", err.Error()}}
		t.Hold = false
		return t, nil
	}
	for _, op := range ops {
		t.Rows = append(t.Rows, []string{
			op.Name,
			fmt.Sprint(op.Ops),
			fmt.Sprintf("%.2f", op.DiskUSPerOp),
			fmt.Sprintf("%.2f", op.WallUSPerOp),
		})
	}
	t.Hold = true
	return t, nil
}
