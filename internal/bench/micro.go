package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/hbase"
)

// tempDir makes a unique scratch directory for one experiment run.
func tempDir(id string) (string, error) {
	return os.MkdirTemp("", "logbase-bench-"+id+"-")
}

// Fig06SequentialWrite reproduces Figure 6: time to insert N tuples,
// LogBase vs HBase. Paper shape: LogBase ~50% faster (one write into
// the log vs log + memtable flush into data files).
func Fig06SequentialWrite(s Scale) (Table, error) {
	t := Table{
		ID:     "fig06",
		Title:  "Sequential write (modelled disk ms / wall ms)",
		Header: []string{"tuples", "LogBase disk", "HBase disk", "LogBase wall", "HBase wall"},
		Shape:  "LogBase outperforms HBase by ~50% (single write vs WAL+Data double write)",
	}
	counts := []int{s.Rows / 4, s.Rows / 2, s.Rows}
	hold := true
	for _, n := range counts {
		dir, err := tempDir("fig06")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dir)
		fx, err := newFixture(dir)
		if err != nil {
			return t, err
		}
		lb, err := fx.newLogBase(0)
		if err != nil {
			return t, err
		}
		val := value(s.ValueSize, 1)
		lbWall, lbDisk, err := fx.timed(func() error {
			for i := 0; i < n; i++ {
				if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}

		fx2dir, err := tempDir("fig06h")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(fx2dir)
		fx2, err := newFixture(fx2dir)
		if err != nil {
			return t, err
		}
		hb, err := fx2.newHBase(int64(n)*int64(s.ValueSize), 0)
		if err != nil {
			return t, err
		}
		hbWall, hbDisk, err := fx2.timed(func() error {
			for i := 0; i < n; i++ {
				if err := hb.Put(key(i), int64(i+1), val); err != nil {
					return err
				}
			}
			return hb.Flush() // data files must be persisted eventually
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(lbDisk), ms(hbDisk), ms(lbWall), ms(hbWall),
		})
		if lbDisk >= hbDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig07RandomReadNoCache reproduces Figure 7: random point reads with
// all caches off. Paper shape: LogBase far faster — the dense in-memory
// index finds each record with one log seek, while HBase fetches and
// scans whole blocks from (possibly several) store files.
func Fig07RandomReadNoCache(s Scale) (Table, error) {
	t := Table{
		ID:     "fig07",
		Title:  "Random read, no cache (modelled disk ms / wall ms)",
		Header: []string{"reads", "LogBase disk", "HBase disk", "LogBase wall", "HBase wall"},
		Shape:  "LogBase superior: one seek via dense index vs block fetch + scan per store file",
	}
	loaded := s.Rows
	dirL, err := tempDir("fig07l")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dirL)
	fxL, err := newFixture(dirL)
	if err != nil {
		return t, err
	}
	lb, err := fxL.newLogBase(0) // read buffer disabled
	if err != nil {
		return t, err
	}
	dirH, err := tempDir("fig07h")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dirH)
	fxH, err := newFixture(dirH)
	if err != nil {
		return t, err
	}
	hb, err := fxH.newHBase(int64(loaded)*int64(s.ValueSize), 0) // no block cache
	if err != nil {
		return t, err
	}
	val := value(s.ValueSize, 2)
	for i := 0; i < loaded; i++ {
		if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
			return t, err
		}
		if err := hb.Put(key(i), int64(i+1), val); err != nil {
			return t, err
		}
	}
	hb.Flush()

	hold := true
	for _, reads := range []int{s.Ops / 16, s.Ops / 8, s.Ops / 4, s.Ops / 2} {
		rng := rand.New(rand.NewSource(7))
		order := make([]int, reads)
		for i := range order {
			order[i] = rng.Intn(loaded)
		}
		lbWall, lbDisk, err := fxL.timed(func() error {
			for _, i := range order {
				if _, err := lb.Get(benchTabletID, benchGroup, key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}
		hbWall, hbDisk, err := fxH.timed(func() error {
			for _, i := range order {
				if _, err := hb.GetLatest(key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(reads), ms(lbDisk), ms(hbDisk), ms(lbWall), ms(hbWall),
		})
		if lbDisk >= hbDisk {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig08RandomReadCache reproduces Figure 8: random reads with caches on
// and a skewed (Zipfian-ish) access pattern. Paper shape: the gap
// between LogBase and HBase narrows (block-cache hits avoid HBase's
// block fetches).
func Fig08RandomReadCache(s Scale) (Table, error) {
	t := Table{
		ID:     "fig08",
		Title:  "Random read, cache on (modelled disk ms / wall ms)",
		Header: []string{"reads", "LogBase disk", "HBase disk", "gap(x)", "no-cache gap(x)"},
		Shape:  "performance gap reduces vs Figure 7 once HBase's block cache absorbs repeat blocks",
	}
	loaded := s.Rows / 2
	cacheBytes := int64(loaded) * int64(s.ValueSize) / 4 // 20%-heap-style cache

	build := func(withCache bool) (lbDisk, hbDisk time.Duration, err error) {
		dirL, err := tempDir("fig08l")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dirL)
		fxL, err := newFixture(dirL)
		if err != nil {
			return 0, 0, err
		}
		var lbCache int64
		var hbCache int64
		if withCache {
			lbCache, hbCache = cacheBytes, cacheBytes
		}
		lb, err := fxL.newLogBase(lbCache)
		if err != nil {
			return 0, 0, err
		}
		dirH, err := tempDir("fig08h")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dirH)
		fxH, err := newFixture(dirH)
		if err != nil {
			return 0, 0, err
		}
		hb, err := fxH.newHBase(int64(loaded)*int64(s.ValueSize), hbCache)
		if err != nil {
			return 0, 0, err
		}
		val := value(s.ValueSize, 3)
		for i := 0; i < loaded; i++ {
			if err := lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val); err != nil {
				return 0, 0, err
			}
			if err := hb.Put(key(i), int64(i+1), val); err != nil {
				return 0, 0, err
			}
		}
		hb.Flush()
		// Skewed access: 90% of reads hit 10% of keys.
		rng := rand.New(rand.NewSource(11))
		reads := s.Ops / 4
		order := make([]int, reads)
		for i := range order {
			if rng.Float64() < 0.9 {
				order[i] = rng.Intn(loaded / 10)
			} else {
				order[i] = rng.Intn(loaded)
			}
		}
		_, lbDisk, err = fxL.timed(func() error {
			for _, i := range order {
				if _, err := lb.Get(benchTabletID, benchGroup, key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		_, hbDisk, err = fxH.timed(func() error {
			for _, i := range order {
				if _, err := hb.GetLatest(key(i)); err != nil {
					return err
				}
			}
			return nil
		})
		return lbDisk, hbDisk, err
	}

	lbCold, hbCold, err := build(false)
	if err != nil {
		return t, err
	}
	lbWarm, hbWarm, err := build(true)
	if err != nil {
		return t, err
	}
	gapCold := float64(hbCold) / float64(lbCold+1)
	gapWarm := float64(hbWarm) / float64(lbWarm+1)
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(s.Ops / 4), ms(lbWarm), ms(hbWarm),
		fmt.Sprintf("%.1f", gapWarm), fmt.Sprintf("%.1f", gapCold),
	})
	t.Hold = gapWarm < gapCold
	return t, nil
}

// Fig09SequentialScan reproduces Figure 9: full-table scan. Paper
// shape: LogBase slightly slower — log entries carry metadata (table,
// group, tablet) that store files do not, so the log is bigger than the
// equivalent data files.
func Fig09SequentialScan(s Scale) (Table, error) {
	t := Table{
		ID:     "fig09",
		Title:  "Sequential scan (modelled disk ms / bytes read)",
		Header: []string{"tuples", "LogBase disk", "HBase disk", "LogBase bytes", "HBase bytes"},
		Shape:  "LogBase slightly slower: the log it scans carries extra metadata per entry, so it reads more bytes than HBase's data files",
	}
	hold := true
	for _, n := range []int{s.Rows / 4, s.Rows / 2, s.Rows} {
		dirL, err := tempDir("fig09l")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dirL)
		fxL, err := newFixture(dirL)
		if err != nil {
			return t, err
		}
		lb, err := fxL.newLogBase(0)
		if err != nil {
			return t, err
		}
		dirH, err := tempDir("fig09h")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dirH)
		fxH, err := newFixture(dirH)
		if err != nil {
			return t, err
		}
		hb, err := fxH.newHBase(int64(n)*int64(s.ValueSize), 0)
		if err != nil {
			return t, err
		}
		val := value(s.ValueSize, 4)
		for i := 0; i < n; i++ {
			lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val)
			hb.Put(key(i), int64(i+1), val)
		}
		hb.Flush()
		_, lbDisk, err := fxL.timed(func() error {
			count := 0
			err := lb.FullScan(context.Background(), benchTabletID, benchGroup, func(core_Row) bool { count++; return true })
			if count != n {
				return fmt.Errorf("logbase scan saw %d of %d", count, n)
			}
			return err
		})
		if err != nil {
			return t, err
		}
		lbBytes := fxL.bytesRead()
		_, hbDisk, err := fxH.timed(func() error {
			count := 0
			err := hb.FullScan(func(hbase_Row) bool { count++; return true })
			if count != n {
				return fmt.Errorf("hbase scan saw %d of %d", count, n)
			}
			return err
		})
		if err != nil {
			return t, err
		}
		hbBytes := fxH.bytesRead()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(lbDisk), ms(hbDisk),
			fmt.Sprint(lbBytes), fmt.Sprint(hbBytes),
		})
		// The mechanism behind "slightly slower": LogBase reads more
		// bytes (log metadata) but within a small factor. At bench scale
		// seek counts can favour either side, so the byte ratio is the
		// deterministic check.
		ratio := float64(lbBytes) / float64(hbBytes+1)
		if ratio < 1.0 || ratio > 3.0 {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Fig10RangeScan reproduces Figure 10: short range scans. Paper shape:
// LogBase before compaction is worst (random log reads per row); after
// compaction it beats HBase (clustered data + dense index).
func Fig10RangeScan(s Scale) (Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "Range scan latency (modelled disk ms)",
		Header: []string{"tuples", "LB pre-compaction", "LB post-compaction", "HBase"},
		Shape:  "LB pre-compaction worst; post-compaction at or below HBase",
	}
	n := s.Rows / 2
	dirL, err := tempDir("fig10l")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dirL)
	fxL, err := newFixture(dirL)
	if err != nil {
		return t, err
	}
	lb, err := fxL.newLogBase(0)
	if err != nil {
		return t, err
	}
	dirH, err := tempDir("fig10h")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dirH)
	fxH, err := newFixture(dirH)
	if err != nil {
		return t, err
	}
	hb, err := fxH.newHBase(int64(n)*int64(s.ValueSize), 0)
	if err != nil {
		return t, err
	}
	// Insert in shuffled order so the log has no accidental clustering.
	rng := rand.New(rand.NewSource(13))
	perm := rng.Perm(n)
	val := value(s.ValueSize, 5)
	for _, i := range perm {
		lb.Write(benchTabletID, benchGroup, key(i), int64(i+1), val)
		hb.Put(key(i), int64(i+1), val)
	}
	hb.Flush()

	scanLB := func(rows int) (time.Duration, error) {
		start := rng.Intn(n - rows)
		_, disk, err := fxL.timed(func() error {
			count := 0
			err := lb.Scan(context.Background(), benchTabletID, benchGroup, key(start), key(start+rows), 1<<60, func(core_Row) bool {
				count++
				return true
			})
			if err == nil && count != rows {
				return fmt.Errorf("scan saw %d of %d", count, rows)
			}
			return err
		})
		return disk, err
	}
	scanHB := func(rows int) (time.Duration, error) {
		start := rng.Intn(n - rows)
		_, disk, err := fxH.timed(func() error {
			count := 0
			err := hb.Scan(key(start), key(start+rows), 1<<62, func(hbase_Row) bool {
				count++
				return true
			})
			if err == nil && count != rows {
				return fmt.Errorf("scan saw %d of %d", count, rows)
			}
			return err
		})
		return disk, err
	}

	sizes := []int{20, 40, 80, 160}
	pre := make([]time.Duration, len(sizes))
	for i, rows := range sizes {
		if pre[i], err = scanLB(rows); err != nil {
			return t, err
		}
	}
	if _, err := lb.Compact(); err != nil {
		return t, err
	}
	hold := true
	for i, rows := range sizes {
		post, err := scanLB(rows)
		if err != nil {
			return t, err
		}
		hbd, err := scanHB(rows)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rows), ms(pre[i]), ms(post), ms(hbd),
		})
		if !(pre[i] > hbd && post <= hbd*2) {
			hold = false
		}
	}
	t.Hold = hold
	return t, nil
}

// Row aliases keep callback signatures short above.
type core_Row = core.Row
type hbase_Row = hbase.Row
