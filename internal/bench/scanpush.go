package bench

// The scan-pushdown experiment for the CI perf gate: a limited +
// key-filtered cluster scan executed twice — once with the options
// pushed down to the tablet servers (the Store read path), once the
// old way (stream everything, filter client-side, stop at the limit).
// Both report modelled disk µs per DELIVERED row and the rows actually
// fetched from the log on the servers (the "shipped" count): push-down
// effectiveness regressions show up as either number creeping toward
// the client-filter baseline.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/readopt"
)

// scanPushLimit is the row budget of the gated scans.
const scanPushLimit = 100

// scanPushPred is the selective key predicate: ycsb keys containing
// "77" (a few percent of the keyspace).
func scanPushPred() *readopt.Predicate { return readopt.Contains([]byte("77")) }

// ScanPushdownKeyOps measures the gated scan-pushdown pair against a
// cluster already loaded with rows in [0, rows). Runs single-threaded
// on the deterministic fixture, like every gated op.
func ScanPushdownKeyOps(c *cluster.Cluster, table, group string) ([]KeyOp, error) {
	cl := c.NewClient()
	ctx := context.Background()

	logReads := func() int64 {
		var n int64
		for _, id := range c.LiveServers() {
			n += c.Server(id).Stats().LogReads.Load()
		}
		return n
	}

	var out []KeyOp
	measure := func(name string, fn func() (int, error)) error {
		c.Clock().Reset()
		before := logReads()
		am := startAllocMeter()
		start := time.Now()
		rows, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// At the gate scale the predicate always has >= limit matches;
		// smaller test fixtures deliver every match instead.
		if rows == 0 {
			return fmt.Errorf("%s delivered no rows", name)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(int64(rows))
		disk := c.Clock().Elapsed()
		out = append(out, KeyOp{
			Name:        name,
			Ops:         int64(rows),
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(rows),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(rows),
			RowsShipped: logReads() - before,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		})
		return nil
	}

	// Push-down: limit + key predicate evaluated at the tablet servers;
	// the scan fetches ~limit rows from the log, total.
	if err := measure("scan-pushdown", func() (int, error) {
		rows := 0
		err := cl.ScanOpts(ctx, table, group, nil, nil,
			readopt.Options{Limit: scanPushLimit, Key: scanPushPred()},
			func(core.Row) bool { rows++; return true })
		return rows, err
	}); err != nil {
		return nil, err
	}

	// Client-side baseline: the pre-pushdown shape — every row streams
	// out of the servers, the client filters and truncates.
	if err := measure("scan-clientfilter", func() (int, error) {
		pred := scanPushPred()
		rows := 0
		err := cl.ScanOpts(ctx, table, group, nil, nil, readopt.Options{},
			func(r core.Row) bool {
				if !pred.Match(r.Key) {
					return true
				}
				rows++
				return rows < scanPushLimit
			})
		return rows, err
	}); err != nil {
		return nil, err
	}
	return out, nil
}
