package bench

// Analytic-scan experiment: the HTAP read path added on top of the
// paper's engine. It measures (a) the speedup of the snapshot-parallel
// aggregate scan over the serial log-order FullScan the paper evaluates
// in §4.4, and (b) snapshot consistency under a concurrent write
// stream — the LogBase claim that analytics over the multiversion log
// needs no copy and takes no locks.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// analyticValue encodes row i as a parseable decimal of roughly
// ValueSize bytes ("<i mod 1000>.000...0"), so SUM/AVG have real work.
func analyticValue(i, size int) []byte {
	pad := size - 8
	if pad < 1 {
		pad = 1
	}
	return []byte(fmt.Sprintf("%d.%0*d", i%1000, pad, 0))
}

// AnalyticScan reproduces the analytic read path comparison: serial
// FullScan (log order, one pass over every record) vs the
// snapshot-parallel aggregation pipeline at 1..Workers workers, plus an
// HTAP row running the same aggregate while a writer keeps committing.
func AnalyticScan(s Scale) (Table, error) {
	t := Table{
		ID:     "analytic-scan",
		Title:  "Analytic scan: serial FullScan vs snapshot-parallel aggregate",
		Header: []string{"mode", "wall ms", "disk ms", "rows", "sum", "speedup"},
		Shape:  "all modes agree on the aggregate; the pinned snapshot is immune to concurrent writes",
	}
	dir, err := tempDir("analytic")
	if err != nil {
		return t, err
	}
	fx, err := newFixture(dir)
	if err != nil {
		return t, err
	}
	srv, err := fx.newLogBase(int64(s.Rows) * int64(s.ValueSize) / 4)
	if err != nil {
		return t, err
	}
	n := s.Rows
	for i := 0; i < n; i++ {
		if err := srv.Write(benchTabletID, benchGroup, key(i), int64(i+1), analyticValue(i, s.ValueSize)); err != nil {
			return t, err
		}
	}
	// Overwrite a tenth so the log carries stale versions the FullScan
	// must wade through and the index must hide.
	for i := 0; i < n; i += 10 {
		if err := srv.Write(benchTabletID, benchGroup, key(i), int64(n+i+1), analyticValue(i, s.ValueSize)); err != nil {
			return t, err
		}
	}
	ts := int64(2*n + 1)

	type measure struct {
		rows int64
		sum  float64
	}
	agree := true
	var ref measure
	var serialWall time.Duration
	record := func(mode string, wall, disk time.Duration, m measure, first bool) {
		speedup := "1.00x"
		if !first && wall > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(serialWall)/float64(wall))
		}
		t.Rows = append(t.Rows, []string{
			mode, ms(wall), ms(disk),
			fmt.Sprintf("%d", m.rows), fmt.Sprintf("%.0f", m.sum), speedup,
		})
		if first {
			ref = m
			serialWall = wall
		} else if m.rows != ref.rows || m.sum != ref.sum {
			agree = false
		}
	}

	// Serial baseline: the paper's batch-analytics path.
	var fs measure
	wall, disk, err := fx.timed(func() error {
		return srv.FullScan(context.Background(), benchTabletID, benchGroup, func(r core.Row) bool {
			fs.rows++
			if v, ok := query.FloatValue(r); ok {
				fs.sum += v
			}
			return true
		})
	})
	if err != nil {
		return t, err
	}
	record("fullscan serial", wall, disk, fs, true)

	q := query.Query{
		Aggs: []query.Agg{{Kind: query.Sum, Extract: query.FloatValue}},
	}
	snap := query.NewSnapshot(ts, query.Target{Source: srv, Tablet: benchTabletID})
	for _, workers := range []int{1, s.Workers} {
		q.Workers = workers
		var res query.Result
		wall, disk, err := fx.timed(func() error {
			var rerr error
			res, rerr = snap.Run(context.Background(), benchGroup, q)
			return rerr
		})
		if err != nil {
			return t, err
		}
		record(fmt.Sprintf("snapshot scan x%d", workers), wall, disk,
			measure{res.Rows, res.Value(0, query.Sum)}, false)
	}

	// HTAP row: same aggregate with a concurrent writer hammering the
	// table. The pinned snapshot must return the exact same answer.
	stop := make(chan struct{})
	var writes atomic.Int64
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.Write(benchTabletID, benchGroup, key(i%n), ts+int64(i+1), analyticValue(i+7, s.ValueSize)); err != nil {
				return
			}
			writes.Add(1)
		}
	}()
	q.Workers = s.Workers
	var res query.Result
	wall, disk, err = fx.timed(func() error {
		var rerr error
		res, rerr = snap.Run(context.Background(), benchGroup, q)
		return rerr
	})
	close(stop)
	if err != nil {
		return t, err
	}
	record(fmt.Sprintf("snapshot under %d writes", writes.Load()), wall, disk,
		measure{res.Rows, res.Value(0, query.Sum)}, false)

	t.Hold = agree
	return t, nil
}

// AnalyticScanMix is the YCSB-style scan-heavy mix (workload E shape:
// 95% short range scans, 5% inserts): the same operation stream is run
// once with scans on the serial key-ordered Scan path and once on the
// snapshot-parallel path, so the mix throughput difference isolates the
// executor.
func AnalyticScanMix(s Scale) (Table, error) {
	t := Table{
		ID:     "analytic-mix",
		Title:  "Scan-heavy mix (95% range scans of 100 rows, 5% inserts)",
		Header: []string{"scan path", "ops", "wall ms", "disk ms", "ops/s"},
		Shape:  "both paths complete the mix; rows scanned agree",
	}
	run := func(parallel bool) (time.Duration, time.Duration, int64, error) {
		dir, err := tempDir("analytic-mix")
		if err != nil {
			return 0, 0, 0, err
		}
		fx, err := newFixture(dir)
		if err != nil {
			return 0, 0, 0, err
		}
		srv, err := fx.newLogBase(int64(s.Rows) * int64(s.ValueSize) / 8)
		if err != nil {
			return 0, 0, 0, err
		}
		n := s.Rows
		for i := 0; i < n; i++ {
			if err := srv.Write(benchTabletID, benchGroup, key(i), int64(i+1), analyticValue(i, s.ValueSize)); err != nil {
				return 0, 0, 0, err
			}
		}
		next := n
		var scanned int64
		wall, disk, err := fx.timed(func() error {
			for op := 0; op < s.Ops; op++ {
				if op%20 == 19 { // 5% inserts
					if err := srv.Write(benchTabletID, benchGroup, key(next), int64(next+1), analyticValue(next, s.ValueSize)); err != nil {
						return err
					}
					next++
					continue
				}
				start := (op * 7919) % (n - 100)
				lo, hi := key(start), key(start+100)
				ts := int64(next + 1)
				if parallel {
					err := srv.ParallelScan(context.Background(), benchTabletID, benchGroup, core.ScanOptions{
						Start: lo, End: hi, TS: ts, Workers: s.Workers,
					}, func(rows []core.Row) error {
						scanned += int64(len(rows))
						return nil
					})
					if err != nil {
						return err
					}
				} else {
					err := srv.Scan(context.Background(), benchTabletID, benchGroup, lo, hi, ts, func(core.Row) bool {
						scanned++
						return true
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		})
		return wall, disk, scanned, err
	}

	var counts [2]int64
	for i, parallel := range []bool{false, true} {
		wall, disk, scanned, err := run(parallel)
		if err != nil {
			return t, err
		}
		counts[i] = scanned
		mode := "serial Scan"
		if parallel {
			mode = fmt.Sprintf("ParallelScan x%d", s.Workers)
		}
		opsPerSec := float64(s.Ops) / wall.Seconds()
		t.Rows = append(t.Rows, []string{
			mode, fmt.Sprintf("%d", s.Ops), ms(wall), ms(disk), fmt.Sprintf("%.0f", opsPerSec),
		})
	}
	t.Hold = counts[0] == counts[1] && counts[0] > 0
	return t, nil
}
