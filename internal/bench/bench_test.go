package bench

import (
	"strconv"
	"testing"
)

// tinyScale keeps the full registry smoke test fast.
func tinyScale() Scale {
	return Scale{Rows: 800, Ops: 400, ValueSize: 128, Nodes: []int{2, 3}, Workers: 2}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every paper figure 6..22 must be present.
	for f := 6; f <= 22; f++ {
		id := "fig" + pad2(f)
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Find("fig06"); !ok {
		t.Error("Find(fig06) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func pad2(n int) string {
	s := strconv.Itoa(n)
	if len(s) == 1 {
		return "0" + s
	}
	return s
}

// TestAllExperimentsRun executes the complete registry at tiny scale:
// every figure must produce a non-empty table without error. Shape
// flags are logged (asserted individually below for the robust ones).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short mode")
	}
	s := tinyScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			t.Logf("%s shape held: %v\n%s", e.ID, tab.Hold, tab.Render())
		})
	}
}

// The deterministic (virtual-disk-time) shapes must hold even at tiny
// scale; wall-clock shapes are allowed to wobble in CI.
func TestDeterministicShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	s := tinyScale()
	for _, id := range []string{"fig06", "fig07", "fig10", "abl-log-per-group"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		tab, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !tab.Hold {
			t.Errorf("%s: paper shape did not hold:\n%s", id, tab.Render())
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Shape:  "demo shape", Hold: true,
	}
	out := tab.Render()
	if out == "" || len(out) < 20 {
		t.Errorf("Render output too small: %q", out)
	}
}

// TestElasticBalancerNoLostRows runs the balancer-on hot-range phase
// and checks every loaded row survives the splits and migrations.
func TestElasticBalancerNoLostRows(t *testing.T) {
	if err := elasticSmoke(500, 300, 6); err != nil {
		t.Fatal(err)
	}
}

// TestKeyOps pins the CI perf gate's measurement harness: every gated
// op reports, with deterministic positive modelled disk time for the
// I/O-bound ops.
func TestKeyOps(t *testing.T) {
	if testing.Short() {
		t.Skip("keyops skipped in -short mode")
	}
	ops, err := KeyOps(Scale{Rows: 400, Ops: 300, ValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"put": true, "writebatch": true, "fullscan": true, "query": true,
		"scan-pushdown": true, "scan-clientfilter": true, "hotrange": true,
		"scan-clustered": true, "scan-index": true, "autocompact": true,
		"cdc-catchup": true, "cdc-tail": true, "cdc-writes-base": true,
	}
	for _, op := range ops {
		delete(want, op.Name)
		if op.Ops <= 0 {
			t.Errorf("%s measured %d ops", op.Name, op.Ops)
		}
		if op.DiskUSPerOp < 0 {
			t.Errorf("%s negative disk time", op.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing key ops: %v", want)
	}
	for _, name := range []string{"put", "writebatch"} {
		for _, op := range ops {
			if op.Name == name && op.DiskUSPerOp == 0 {
				t.Errorf("%s reported zero modelled disk time", name)
			}
		}
	}
}
