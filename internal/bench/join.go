package bench

// The join-planner experiment for the CI perf gate (cmd/benchgate) and
// the registry: one TPC-W-ish three-table equi-join statement
// (lineitems over a narrow order range ⋈ customers ⋈ items) executed
// twice on the same deterministic modelled-disk cluster — once by the
// real engine (greedy join order, set-predicate broadcast, select
// push-down) and once as the worst-order naive plan (forced
// customers × items cartesian first, full scans, every filter applied
// client-side). Both runs must produce identical results; the harness
// additionally asserts the greedy plan stays >= 2x cheaper in modelled
// disk time, so planner-order or broadcast regressions fail the gate
// even before the baseline tolerance trips.

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/simdisk"
)

// joinFixture loads the three relations: every lineitem references its
// customer (value field 0) and item (value field 1).
func joinFixture(s Scale) (*cluster.Cluster, string, int64, error) {
	dir, err := tempDir("joinops")
	if err != nil {
		return nil, "", 0, err
	}
	c, err := cluster.New(dir, cluster.Config{
		NumServers: 2,
		Tables: []cluster.TableSpec{
			{Name: "lineitems", Groups: []string{"ref"}},
			{Name: "customers", Groups: []string{"info"}},
			{Name: "items", Groups: []string{"price"}},
		},
		Server: core.Config{SegmentSize: 16 << 20},
		// Small DFS blocks so the fact table spans many blocks: the
		// experiment measures which plan moves fewer log blocks, which a
		// single-block fixture cannot distinguish.
		DFS: dfs.Config{BlockSize: 64 << 10, DiskModel: benchDiskModel(), Clock: &simdisk.Clock{}},
	})
	if err != nil {
		return nil, dir, 0, err
	}
	st := logbase.NewClusterClient(c)
	ctx := context.Background()
	lineitems := int64(s.Rows)
	customers := lineitems / 40
	if customers < 4 {
		customers = 4
	}
	const items = 16
	b := st.Batch()
	for i := int64(0); i < customers; i++ {
		b.Put("customers", "info", []byte(fmt.Sprintf("c%05d", i)), []byte(fmt.Sprint(10+i%90)))
	}
	for i := int64(0); i < items; i++ {
		b.Put("items", "price", []byte(fmt.Sprintf("i%02d", i)), []byte(fmt.Sprint(5*(i+1))))
	}
	// Fact rows carry the reference pair plus payload padding to
	// s.ValueSize (extra comma-separated fields are ignored by the join
	// exprs), so full scans pay real transfer.
	pad := value(s.ValueSize, 11)
	for i := int64(0); i < lineitems; i++ {
		ref := fmt.Sprintf("c%05d,i%02d,%s", i%customers, i%items, pad)
		b.Put("lineitems", "ref", []byte(fmt.Sprintf("o%08d", i)), []byte(ref))
		if b.Len() >= 1024 {
			if err := b.Flush(ctx); err != nil {
				return nil, dir, 0, err
			}
		}
	}
	if err := b.Flush(ctx); err != nil {
		return nil, dir, 0, err
	}
	return c, dir, customers, nil
}

// joinStatement is the gated statement: a ~5% slice of the lineitems
// keyspace joined to both dimension tables, counting tuples and
// summing item prices. span is the number of qualifying lineitems.
func joinStatement(s Scale) (*logbase.Statement, int64) {
	span := int64(s.Rows) / 20
	if span < 8 {
		span = 8
	}
	stmt := logbase.Q("lineitems").Group("ref").
		Range([]byte("o00000000"), []byte(fmt.Sprintf("o%08d", span))).
		Join("customers", "info", logbase.On{Left: logbase.ValField(0), Right: logbase.KeyExpr()}).
		Join("items", "price", logbase.On{LeftTable: "lineitems", Left: logbase.ValField(1), Right: logbase.KeyExpr()}).
		Agg(logbase.Count).
		AggOf(logbase.Sum, "items", logbase.ValExpr())
	return stmt, span
}

// joinKeyOpsPair measures the gated pair and checks both plans agree
// row for row.
func joinKeyOpsPair(s Scale) (greedy, naive KeyOp, err error) {
	c, dir, _, err := joinFixture(s)
	if dir != "" {
		defer os.RemoveAll(dir)
	}
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	defer c.Close()
	st := logbase.NewClusterClient(c)
	ctx := context.Background()

	logReads := func() int64 {
		var n int64
		for _, id := range c.LiveServers() {
			n += c.Server(id).Stats().LogReads.Load()
		}
		return n
	}

	var results []logbase.QueryResult
	measure := func(name string, span int64, run func() (logbase.QueryResult, error)) (KeyOp, error) {
		c.Clock().Reset()
		before := logReads()
		am := startAllocMeter()
		start := time.Now()
		res, err := run()
		if err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		if res.Rows != span {
			return KeyOp{}, fmt.Errorf("%s joined %d tuples, want %d", name, res.Rows, span)
		}
		results = append(results, res)
		wall := time.Since(start)
		allocs, bytes := am.perOp(span)
		disk := c.Clock().Elapsed()
		return KeyOp{
			Name:        name,
			Ops:         span,
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(span),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(span),
			RowsShipped: logReads() - before,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	stmt, span := joinStatement(s)
	if greedy, err = measure("join-greedy", span, func() (logbase.QueryResult, error) {
		return st.Exec(ctx, stmt)
	}); err != nil {
		return
	}
	// The worst-order naive plan: the cartesian product of both
	// dimension tables first, the fact table last, nothing pushed down,
	// nothing broadcast — the data movement a statistics-free planner
	// risks without the bound-attribute ordering rule.
	stmt, span = joinStatement(s)
	if naive, err = measure("join-naive", span, func() (logbase.QueryResult, error) {
		return logbase.ExecWith(ctx, st, stmt, logbase.ExecOptions{
			Order: []int{1, 2, 0}, NoBroadcast: true, NoPushdown: true,
		})
	}); err != nil {
		return
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		return greedy, naive, fmt.Errorf("greedy and naive plans disagree: %+v vs %+v", results[0], results[1])
	}
	return greedy, naive, nil
}

// JoinKeyOps runs the gated pair and enforces the acceptance floor:
// the greedy plan must cost at most half the worst-order naive plan's
// modelled disk time. The floor is only enforced at scales where the
// fact table dwarfs the joined slice — tiny smoke scales still
// measure, they just don't gate the ratio.
func JoinKeyOps(s Scale) ([]KeyOp, error) {
	greedy, naive, err := joinKeyOpsPair(s)
	if err != nil {
		return nil, err
	}
	if s.Rows >= 1000 && greedy.DiskUSPerOp*2 > naive.DiskUSPerOp {
		return nil, fmt.Errorf("greedy join not >=2x cheaper: greedy %.2f vs naive %.2f disk us/op",
			greedy.DiskUSPerOp, naive.DiskUSPerOp)
	}
	return []KeyOp{greedy, naive}, nil
}

// JoinGreedy is the registry experiment form of the gated pair.
func JoinGreedy(s Scale) (Table, error) {
	t := Table{
		ID:     "join-greedy",
		Title:  "Three-table equi-join: greedy planned vs worst-order naive",
		Header: []string{"tuples", "greedy disk µs/tuple", "naive disk µs/tuple", "greedy shipped", "naive shipped", "speedup"},
		Shape:  "greedy order + broadcast push-down >= 2x cheaper modelled disk than worst-order naive",
	}
	greedy, naive, err := joinKeyOpsPair(s)
	if err != nil {
		return t, err
	}
	speedup := 0.0
	if greedy.DiskUSPerOp > 0 {
		speedup = naive.DiskUSPerOp / greedy.DiskUSPerOp
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(greedy.Ops),
		fmt.Sprintf("%.2f", greedy.DiskUSPerOp),
		fmt.Sprintf("%.2f", naive.DiskUSPerOp),
		fmt.Sprint(greedy.RowsShipped),
		fmt.Sprint(naive.RowsShipped),
		fmt.Sprintf("%.1fx", speedup),
	})
	t.Hold = speedup >= 2
	return t, nil
}
