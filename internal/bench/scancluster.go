package bench

// The clustered-scan and auto-compaction experiments for the CI perf
// gate (cmd/benchgate) and the registry.
//
// scan-clustered vs scan-index: the same rows on the same fully
// compacted log (SortedFraction == 1.0 after incremental compaction
// has produced several overlapping sorted segments — the steady state
// the background compactor maintains), full-table-scanned twice: once
// through the clustered fast path (sequential segment streams, k-way
// merged), once forced onto the index-driven path (per-key index
// resolution + batched log fetches). On the modelled disk the index
// path pays a head seek whenever consecutive keys resolve to different
// overlapping segments; the clustered path pays transfer plus one seek
// per read-ahead refill. The gate asserts the clustered path costs at
// most HALF the index path's modelled disk time per row.
//
// autocompact: a sustained write+scan mix with NO manual Compact —
// only the incremental background compactor (driven by deterministic
// ticks, exactly what the Interval loop runs). The experiment fails if
// the compactor cannot hold SortedFraction >= 0.5, i.e. if the
// clustered read path would disengage under sustained load.

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/partition"
	"repro/internal/simdisk"
)

const (
	clusterScanRounds = 4
	autoCompactRounds = 8
)

// clusteredFixture is one embedded tablet server over a modelled DFS,
// loaded with rounds x perRound rows in an interleaved key pattern and
// incrementally compacted after each round, so the log ends fully
// sorted as `rounds` overlapping sorted segments.
func clusteredFixture(id string, perRound, valueSize int, noClustered bool) (*core.Server, *simdisk.Clock, string, int, error) {
	dir, err := tempDir(id)
	if err != nil {
		return nil, nil, "", 0, err
	}
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{
		NumDataNodes: 2, BlockSize: 4 << 20,
		DiskModel: benchDiskModel(), Clock: clock,
	})
	if err != nil {
		return nil, nil, dir, 0, err
	}
	srv, err := core.NewServer(fs, "cs", core.Config{SegmentSize: 16 << 20, NoClusteredScan: noClustered})
	if err != nil {
		return nil, nil, dir, 0, err
	}
	srv.AddTablet(benchTablet(), []string{benchGroup})
	val := value(valueSize, 9)
	ts := int64(0)
	for r := 0; r < clusterScanRounds; r++ {
		for i := 0; i < perRound; i++ {
			// Interleaved: round r writes keys r, R+r, 2R+r, ... so each
			// round's sorted segment spans the whole keyspace — the
			// overlapping layout incremental compaction produces under
			// uniformly distributed writes.
			k := i*clusterScanRounds + r
			ts++
			if err := srv.Write(benchTabletID, benchGroup, key(k), ts, val); err != nil {
				return nil, nil, dir, 0, err
			}
		}
		srv.Log().Rotate()
		var nums []uint32
		for _, si := range srv.Log().Segments() {
			if !si.Sorted {
				nums = append(nums, si.Num)
			}
		}
		if _, err := srv.CompactSegments(nums); err != nil {
			return nil, nil, dir, 0, err
		}
	}
	if f := srv.SortedFraction(); f < 0.999 {
		return nil, nil, dir, 0, fmt.Errorf("fixture not fully compacted: sorted fraction %.3f", f)
	}
	return srv, clock, dir, clusterScanRounds * perRound, nil
}

// scanClusteredPair measures the gated pair and returns
// (clustered, index) modelled disk microseconds per row.
func scanClusteredPair(s Scale) (cl, idx KeyOp, err error) {
	measure := func(name, id string, noClustered bool, scan func(*core.Server, int) (int, error)) (KeyOp, error) {
		srv, clock, dir, n, err := clusteredFixture(id, s.Rows, s.ValueSize, noClustered)
		if dir != "" {
			defer os.RemoveAll(dir)
		}
		if err != nil {
			return KeyOp{}, err
		}
		defer srv.Close()
		before := srv.Stats().LogReads.Load()
		clock.Reset()
		am := startAllocMeter()
		start := time.Now()
		rows, err := scan(srv, n)
		if err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		if rows != n {
			return KeyOp{}, fmt.Errorf("%s saw %d rows, want %d", name, rows, n)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(int64(rows))
		disk := clock.Elapsed()
		return KeyOp{
			Name:        name,
			Ops:         int64(rows),
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(rows),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(rows),
			RowsShipped: srv.Stats().LogReads.Load() - before,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	ctx := context.Background()
	fullScan := func(srv *core.Server, _ int) (int, error) {
		rows := 0
		err := srv.FullScan(ctx, benchTabletID, benchGroup, func(core.Row) bool { rows++; return true })
		return rows, err
	}
	indexScan := func(srv *core.Server, n int) (int, error) {
		rows := 0
		err := srv.ParallelScan(ctx, benchTabletID, benchGroup,
			core.ScanOptions{TS: int64(4 * n), Workers: 1},
			func(rs []core.Row) error { rows += len(rs); return nil })
		return rows, err
	}

	if cl, err = measure("scan-clustered", "scancl", false, fullScan); err != nil {
		return
	}
	idx, err = measure("scan-index", "scanidx", true, indexScan)
	return
}

// ScanClusteredKeyOps runs the gated pair and enforces the acceptance
// floor: the clustered path must cost at most half the index-driven
// path's modelled disk time per row on the same fully compacted log.
// The floor is only enforced when the fixture carries enough data for
// per-row costs to dominate the handful of fixed segment-open seeks —
// tiny smoke scales still measure, they just don't gate the ratio.
func ScanClusteredKeyOps(s Scale) ([]KeyOp, error) {
	cl, idx, err := scanClusteredPair(s)
	if err != nil {
		return nil, err
	}
	if dataBytes := int64(cl.Ops) * int64(s.ValueSize); dataBytes >= 2<<20 && cl.DiskUSPerOp*2 > idx.DiskUSPerOp {
		return nil, fmt.Errorf("clustered scan not >=2x cheaper: clustered %.2f vs index %.2f disk us/op",
			cl.DiskUSPerOp, idx.DiskUSPerOp)
	}
	return []KeyOp{cl, idx}, nil
}

// AutoCompactKeyOps runs the sustained write+scan churn with only the
// background compactor's tick keeping the log clustered, and fails if
// SortedFraction drops below 0.5 — the "stays fast without a manual
// vacuum" contract.
func AutoCompactKeyOps(s Scale) ([]KeyOp, float64, error) {
	dir, err := tempDir("autocompact")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	clock := &simdisk.Clock{}
	fs, err := dfs.New(dir, dfs.Config{
		NumDataNodes: 2, BlockSize: 4 << 20,
		DiskModel: benchDiskModel(), Clock: clock,
	})
	if err != nil {
		return nil, 0, err
	}
	srv, err := core.NewServer(fs, "ac", core.Config{
		SegmentSize:         1 << 20,
		CompactKeepVersions: 2,
		AutoCompact:         core.AutoCompactConfig{GarbageRatio: 0.30, MaxSegmentsPerRun: 4},
	})
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()
	srv.AddTablet(benchTablet(), []string{benchGroup})

	ctx := context.Background()
	n := s.Rows
	val := value(s.ValueSize, 3)
	ts := int64(0)
	put := func(i int) error {
		ts++
		return srv.Write(benchTabletID, benchGroup, key(i), ts, val)
	}
	var ops int64
	clock.Reset()
	start := time.Now()
	// Initial load.
	for i := 0; i < n; i++ {
		if err := put(i); err != nil {
			return nil, 0, err
		}
		ops++
	}
	live := n
	for round := 0; round < autoCompactRounds; round++ {
		// Sustained churn: overwrite a rotating quarter of the keyspace
		// (creating beyond-retention garbage), delete and re-create a
		// sliver, and scan everything — all while ONLY the background
		// compactor's tick runs.
		lo := (round * n / 4) % n
		for i := 0; i < n/4; i++ {
			if err := put((lo + i) % n); err != nil {
				return nil, 0, err
			}
			ops++
		}
		for i := 0; i < n/32; i++ {
			k := (lo + i) % n
			ts++
			if err := srv.Delete(benchTabletID, benchGroup, key(k), ts); err != nil {
				return nil, 0, err
			}
			ops++
			if err := put(k); err != nil {
				return nil, 0, err
			}
			ops++
		}
		rows := 0
		if err := srv.FullScan(ctx, benchTabletID, benchGroup, func(core.Row) bool { rows++; return true }); err != nil {
			return nil, 0, err
		}
		if rows != live {
			return nil, 0, fmt.Errorf("autocompact round %d: scan saw %d rows, want %d", round, rows, live)
		}
		ops += int64(rows)
		if _, _, err := srv.AutoCompactTick(); err != nil {
			return nil, 0, err
		}
	}
	wall := time.Since(start)
	disk := clock.Elapsed()
	frac := srv.SortedFraction()
	if frac < 0.5 {
		return nil, frac, fmt.Errorf("autocompact: sorted fraction %.3f < 0.5 — background compaction not keeping up", frac)
	}
	return []KeyOp{{
		Name:        "autocompact",
		Ops:         ops,
		DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(ops),
		WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(ops),
	}}, frac, nil
}

// ScanClustered is the registry experiment form of the gated pair.
func ScanClustered(s Scale) (Table, error) {
	t := Table{
		ID:     "scan-clustered",
		Title:  "Clustered scan fast path vs index-driven path (fully compacted log)",
		Header: []string{"rows", "clustered disk µs/row", "index disk µs/row", "speedup"},
		Shape:  "clustered full scan >= 2x cheaper modelled disk than index-driven path",
	}
	cl, idx, err := scanClusteredPair(Scale{Rows: s.Rows / 2, ValueSize: s.ValueSize})
	if err != nil {
		return t, err
	}
	speedup := 0.0
	if cl.DiskUSPerOp > 0 {
		speedup = idx.DiskUSPerOp / cl.DiskUSPerOp
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(cl.Ops),
		fmt.Sprintf("%.2f", cl.DiskUSPerOp),
		fmt.Sprintf("%.2f", idx.DiskUSPerOp),
		fmt.Sprintf("%.1fx", speedup),
	})
	t.Hold = speedup >= 2
	return t, nil
}

// AutoCompactChurn is the registry experiment form of the autocompact
// gate.
func AutoCompactChurn(s Scale) (Table, error) {
	t := Table{
		ID:     "autocompact",
		Title:  "Background incremental compaction under write+scan churn",
		Header: []string{"ops", "disk µs/op", "final sorted fraction"},
		Shape:  "SortedFraction stays >= 0.5 with no manual Compact",
	}
	ops, frac, err := AutoCompactKeyOps(Scale{Rows: s.Rows / 4, ValueSize: s.ValueSize})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(ops[0].Ops),
		fmt.Sprintf("%.2f", ops[0].DiskUSPerOp),
		fmt.Sprintf("%.3f", frac),
	})
	t.Hold = frac >= 0.5
	return t, nil
}

// keep partition import local: benchTablet uses it via bench.go.
var _ partition.Tablet
