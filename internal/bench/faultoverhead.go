package bench

// Fault-registry-overhead experiment: the same Put and Scan workloads
// run twice — once with a fault.Registry wired through the disk, DFS
// and WAL hook points (but with nothing armed: the production
// disabled path) and once with a nil registry. Every hook is a
// nil-receiver check or one mutex-guarded map probe, never extra I/O,
// so the wired run must stay within 5% on the modelled disk cost; any
// disk delta means an injection point leaked into the I/O path
// itself. Wall-clock deltas are reported for humans but not enforced.

import (
	"context"
	"fmt"
	"os"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/fault"
	"repro/internal/simdisk"
)

// faultOverheadTolerance is the enforced ceiling on the wired-registry
// modelled-disk cost relative to the nil-registry run.
const faultOverheadTolerance = 0.05

// newFaultOverheadCluster is the keyops fixture with a disarmed fault
// registry either threaded through every hook point or absent.
func newFaultOverheadCluster(id string, wired bool) (*cluster.Cluster, string, error) {
	dir, err := tempDir("fault-" + id)
	if err != nil {
		return nil, "", err
	}
	var reg *fault.Registry
	if wired {
		reg = fault.New(1) // present at every hook, nothing armed
	}
	cfg := cluster.Config{
		NumServers: 2,
		Tables:     []cluster.TableSpec{{Name: "usertable", Groups: []string{"f0"}}},
		Server:     core.Config{SegmentSize: 16 << 20, Faults: reg},
		DFS:        dfs.Config{BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: &simdisk.Clock{}, Faults: reg},
	}
	c, err := cluster.New(dir, cfg)
	return c, dir, err
}

// faultOverheadVariant runs the Put-then-Scan workload on one fixture
// and returns the two measurements.
func faultOverheadVariant(id string, wired bool, s Scale) (put, scan KeyOp, err error) {
	c, dir, err := newFaultOverheadCluster(id, wired)
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	st := logbase.NewClusterClient(c)
	ctx := context.Background()
	n := int64(s.Rows)
	val := value(s.ValueSize, 11)

	measure := func(name string, ops int64, fn func() error) (KeyOp, error) {
		c.Clock().Reset()
		am := startAllocMeter()
		start := time.Now()
		if err := fn(); err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(ops)
		disk := c.Clock().Elapsed()
		return KeyOp{
			Name:        name,
			Ops:         ops,
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(ops),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(ops),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	put, err = measure("put-"+id, n, func() error {
		for i := int64(0); i < n; i++ {
			if err := st.Put(ctx, "usertable", "f0", key(int(i)), val); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	scan, err = measure("scan-"+id, n, func() error {
		it := st.Scan(ctx, "usertable", "f0", nil, nil)
		defer it.Close()
		rows := int64(0)
		for it.Next() {
			rows++
		}
		if err := it.Err(); err != nil {
			return err
		}
		if rows != n {
			return fmt.Errorf("scan saw %d rows, want %d", rows, n)
		}
		return it.Close()
	})
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	return put, scan, nil
}

// faultOverheadDelta is the fractional modelled-disk overhead of the
// wired-registry run over the nil-registry one.
func faultOverheadDelta(wired, plain KeyOp) float64 {
	if plain.DiskUSPerOp <= 0 {
		return 0
	}
	return (wired.DiskUSPerOp - plain.DiskUSPerOp) / plain.DiskUSPerOp
}

// FaultOverheadKeyOps measures wired-vs-nil fault registry Put and Scan
// and enforces the <=5% modelled-disk ceiling. Called from KeyOps, so
// the per-PR benchgate run fails when an injection hook leaks into the
// I/O path.
func FaultOverheadKeyOps(s Scale) ([]KeyOp, error) {
	putWired, scanWired, err := faultOverheadVariant("wired", true, s)
	if err != nil {
		return nil, err
	}
	putPlain, scanPlain, err := faultOverheadVariant("nil", false, s)
	if err != nil {
		return nil, err
	}
	for _, pair := range []struct {
		op           string
		wired, plain KeyOp
	}{{"put", putWired, putPlain}, {"scan", scanWired, scanPlain}} {
		if d := faultOverheadDelta(pair.wired, pair.plain); d > faultOverheadTolerance {
			return nil, fmt.Errorf("fault-registry overhead on %s: wired %.2f vs nil %.2f disk us/op (%+.1f%%, limit %.0f%%)",
				pair.op, pair.wired.DiskUSPerOp, pair.plain.DiskUSPerOp, d*100, faultOverheadTolerance*100)
		}
	}
	return []KeyOp{putWired, putPlain, scanWired, scanPlain}, nil
}

// FaultOverhead is the experiment-registry wrapper around the same
// measurement.
func FaultOverhead(s Scale) (Table, error) {
	ops, err := FaultOverheadKeyOps(s)
	hold := err == nil
	t := Table{
		ID:     "fault-overhead",
		Title:  "Fault-injection overhead: wired-but-disarmed registry vs nil",
		Header: []string{"op", "ops", "nil disk µs/op", "wired disk µs/op", "disk Δ%", "wall Δ%"},
		Shape:  "a disarmed fault registry adds <= 5% modelled disk cost on Put and Scan",
	}
	if err != nil {
		// The enforced ceiling failing IS the experiment's answer; report
		// it as a shape miss rather than an error.
		t.Rows = [][]string{{"-", "-", "-", "-", err.Error(), "-"}}
		t.Hold = false
		return t, nil
	}
	for i := 0; i+1 < len(ops); i += 2 {
		wired, plain := ops[i], ops[i+1]
		wallDelta := 0.0
		if plain.WallUSPerOp > 0 {
			wallDelta = (wired.WallUSPerOp - plain.WallUSPerOp) / plain.WallUSPerOp * 100
		}
		t.Rows = append(t.Rows, []string{
			wired.Name,
			fmt.Sprint(wired.Ops),
			fmt.Sprintf("%.2f", plain.DiskUSPerOp),
			fmt.Sprintf("%.2f", wired.DiskUSPerOp),
			fmt.Sprintf("%+.1f", faultOverheadDelta(wired, plain)*100),
			fmt.Sprintf("%+.1f", wallDelta),
		})
	}
	t.Hold = hold
	return t, nil
}
