package bench

// Observability-overhead experiment: the same Put and Scan workloads
// run twice — once fully instrumented (metrics registry recording,
// every operation traced at threshold 0 and rendered to a discarding
// slow-op sink: the worst case) and once with Config.DisableMetrics and
// no tracer. The instrumentation must stay within 5% on the modelled
// disk cost: it touches atomics and span structs, never the I/O path,
// so any disk delta is a wiring bug (e.g. tracing forcing extra log
// reads). Wall-clock deltas are reported for humans but not enforced —
// they wobble with runner load.

import (
	"context"
	"fmt"
	"os"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/simdisk"
)

// obsOverheadTolerance is the enforced ceiling on the instrumented
// modelled-disk cost relative to the disabled run.
const obsOverheadTolerance = 0.05

// newObsOverheadCluster is the keyops fixture with observability either
// fully on (metrics + threshold-0 tracing) or fully off.
func newObsOverheadCluster(id string, instrumented bool) (*cluster.Cluster, string, error) {
	dir, err := tempDir("obs-" + id)
	if err != nil {
		return nil, "", err
	}
	cfg := cluster.Config{
		NumServers: 2,
		Tables:     []cluster.TableSpec{{Name: "usertable", Groups: []string{"f0"}}},
		Server:     core.Config{SegmentSize: 16 << 20, DisableMetrics: !instrumented},
		DFS:        dfs.Config{BlockSize: 4 << 20, DiskModel: benchDiskModel(), Clock: &simdisk.Clock{}},
	}
	if instrumented {
		cfg.SlowOpLog = func(string) {} // trace everything, discard the trees
		cfg.SlowOpThreshold = 0
	}
	c, err := cluster.New(dir, cfg)
	return c, dir, err
}

// obsOverheadVariant runs the Put-then-Scan workload on one fixture and
// returns the two measurements.
func obsOverheadVariant(id string, instrumented bool, s Scale) (put, scan KeyOp, err error) {
	c, dir, err := newObsOverheadCluster(id, instrumented)
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	defer os.RemoveAll(dir)
	defer c.Close()
	st := logbase.NewClusterClient(c)
	ctx := context.Background()
	n := int64(s.Rows)
	val := value(s.ValueSize, 7)

	measure := func(name string, ops int64, fn func() error) (KeyOp, error) {
		c.Clock().Reset()
		am := startAllocMeter()
		start := time.Now()
		if err := fn(); err != nil {
			return KeyOp{}, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		allocs, bytes := am.perOp(ops)
		disk := c.Clock().Elapsed()
		return KeyOp{
			Name:        name,
			Ops:         ops,
			DiskUSPerOp: float64(disk) / float64(time.Microsecond) / float64(ops),
			WallUSPerOp: float64(wall) / float64(time.Microsecond) / float64(ops),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}, nil
	}

	put, err = measure("put-"+id, n, func() error {
		for i := int64(0); i < n; i++ {
			if err := st.Put(ctx, "usertable", "f0", key(int(i)), val); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	scan, err = measure("scan-"+id, n, func() error {
		it := st.Scan(ctx, "usertable", "f0", nil, nil)
		defer it.Close()
		rows := int64(0)
		for it.Next() {
			rows++
		}
		if err := it.Err(); err != nil {
			return err
		}
		if rows != n {
			return fmt.Errorf("scan saw %d rows, want %d", rows, n)
		}
		return it.Close()
	})
	if err != nil {
		return KeyOp{}, KeyOp{}, err
	}
	return put, scan, nil
}

// obsOverheadDelta is the fractional modelled-disk overhead of the
// instrumented run over the disabled one.
func obsOverheadDelta(instr, plain KeyOp) float64 {
	if plain.DiskUSPerOp <= 0 {
		return 0
	}
	return (instr.DiskUSPerOp - plain.DiskUSPerOp) / plain.DiskUSPerOp
}

// ObsOverheadKeyOps measures instrumented-vs-disabled Put and Scan and
// enforces the <=5% modelled-disk ceiling. Called from KeyOps, so the
// per-PR benchgate run fails when instrumentation leaks into the I/O
// path.
func ObsOverheadKeyOps(s Scale) ([]KeyOp, error) {
	putObs, scanObs, err := obsOverheadVariant("obs", true, s)
	if err != nil {
		return nil, err
	}
	putPlain, scanPlain, err := obsOverheadVariant("plain", false, s)
	if err != nil {
		return nil, err
	}
	for _, pair := range []struct {
		op           string
		instr, plain KeyOp
	}{{"put", putObs, putPlain}, {"scan", scanObs, scanPlain}} {
		if d := obsOverheadDelta(pair.instr, pair.plain); d > obsOverheadTolerance {
			return nil, fmt.Errorf("observability overhead on %s: instrumented %.2f vs disabled %.2f disk us/op (%+.1f%%, limit %.0f%%)",
				pair.op, pair.instr.DiskUSPerOp, pair.plain.DiskUSPerOp, d*100, obsOverheadTolerance*100)
		}
	}
	return []KeyOp{putObs, putPlain, scanObs, scanPlain}, nil
}

// ObsOverhead is the experiment-registry wrapper around the same
// measurement.
func ObsOverhead(s Scale) (Table, error) {
	ops, err := ObsOverheadKeyOps(s)
	hold := err == nil
	t := Table{
		ID:     "obs-overhead",
		Title:  "Observability overhead: instrumented vs disabled Put/Scan",
		Header: []string{"op", "ops", "disabled disk µs/op", "instrumented disk µs/op", "disk Δ%", "wall Δ%"},
		Shape:  "metrics + threshold-0 tracing add <= 5% modelled disk cost on Put and Scan",
	}
	if err != nil {
		// The enforced ceiling failing IS the experiment's answer; report
		// it as a shape miss rather than an error.
		t.Rows = [][]string{{"-", "-", "-", "-", err.Error(), "-"}}
		t.Hold = false
		return t, nil
	}
	for i := 0; i+1 < len(ops); i += 2 {
		instr, plain := ops[i], ops[i+1]
		wallDelta := 0.0
		if plain.WallUSPerOp > 0 {
			wallDelta = (instr.WallUSPerOp - plain.WallUSPerOp) / plain.WallUSPerOp * 100
		}
		t.Rows = append(t.Rows, []string{
			instr.Name,
			fmt.Sprint(instr.Ops),
			fmt.Sprintf("%.2f", plain.DiskUSPerOp),
			fmt.Sprintf("%.2f", instr.DiskUSPerOp),
			fmt.Sprintf("%+.1f", obsOverheadDelta(instr, plain)*100),
			fmt.Sprintf("%+.1f", wallDelta),
		})
	}
	t.Hold = hold
	return t, nil
}
