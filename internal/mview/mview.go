// Package mview maintains materialized aggregate views incrementally
// from a changefeed. A view is the declarative aggregate-query shape
// the wire protocol speaks — COUNT/SUM/MIN/MAX/AVG over a key range of
// one column group, optionally grouped by a key prefix — bootstrapped
// from a snapshot scan and then kept fresh by applying Put/Delete
// events, instead of re-scanning the log per query.
//
// Updates are idempotent and order-tolerant per key: every applied row
// or event carries its commit timestamp, and a mutation is applied iff
// it is newer than the state the view already holds for that key. That
// one guard absorbs the snapshot/feed overlap during bootstrap, replays
// after cluster failover or migration, and cross-server interleaving —
// the same reason multiversion timestamps make the log the database.
//
// COUNT and SUM (and AVG = SUM/COUNT) are maintained in O(1) per
// event. MIN/MAX can shrink when the extremal row is overwritten or
// deleted; the group is then marked dirty and the extrema recomputed
// lazily from the per-key state at the next read.
package mview

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/query"
)

// Spec declares a materialized view: the declarative aggregate query it
// answers. Start/End bound the key range (nil = open); GroupPrefix > 0
// groups rows by that many leading key bytes (the wire protocol's
// "BY n"); Aggs are the aggregate kinds maintained. Numeric aggregates
// read the row value as decimal ASCII (query.FloatValue); rows that do
// not parse count toward COUNT but are skipped by SUM/MIN/MAX/AVG,
// exactly like the scan path.
type Spec struct {
	Name        string
	Table       string
	Group       string
	Start, End  []byte
	GroupPrefix int
	Aggs        []query.AggKind
}

// Validate reports whether the spec is well-formed.
func (sp Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("mview: view needs a name")
	}
	if sp.Table == "" || sp.Group == "" {
		return fmt.Errorf("mview: view %s needs a table and column group", sp.Name)
	}
	if len(sp.Aggs) == 0 {
		return fmt.Errorf("mview: view %s needs at least one aggregate", sp.Name)
	}
	if sp.GroupPrefix < 0 {
		return fmt.Errorf("mview: view %s: negative group prefix", sp.Name)
	}
	return nil
}

// Has reports whether the view maintains aggregate kind k.
func (sp Spec) Has(k query.AggKind) bool {
	for _, a := range sp.Aggs {
		if a == k {
			return true
		}
	}
	return false
}

// Stats is a view's observability snapshot.
type Stats struct {
	Spec Spec
	// WatermarkLSN is the highest feed cursor applied; WatermarkTS the
	// highest commit timestamp applied (snapshot rows included). The
	// view's Result is exact as of this watermark.
	WatermarkLSN uint64
	WatermarkTS  int64
	// Events counts feed events consumed; SnapshotRows counts bootstrap
	// rows; Skipped counts updates absorbed by the per-key timestamp
	// guard (replays, snapshot/feed overlap, stale versions).
	Events       uint64
	SnapshotRows uint64
	Skipped      uint64
	// Groups and Keys size the view's state (tombstones included in
	// Keys — they guard against out-of-order replays).
	Groups int
	Keys   int
}

// keyRec is the per-key state: the newest mutation's timestamp, its
// numeric projection, and whether the key is live (false = tombstone).
type keyRec struct {
	ts      int64
	val     float64
	numeric bool
	live    bool
}

// groupState is one output group's incrementally maintained partial.
type groupState struct {
	keys map[string]keyRec
	rows int64 // live keys

	// Numeric partial over live keys whose value parses: count/sum are
	// exact under removal; min/max are valid only when !dirty.
	numCount int64
	numSum   float64
	min, max float64
	dirty    bool
}

// View is an incrementally maintained materialized aggregate. Safe for
// concurrent use.
type View struct {
	spec Spec

	mu     sync.Mutex
	groups map[string]*groupState
	keys   int

	wmLSN    uint64
	wmTS     int64
	events   uint64
	snapRows uint64
	skipped  uint64
}

// New creates an empty view for spec.
func New(spec Spec) *View {
	spec.Start = append([]byte(nil), spec.Start...)
	spec.End = append([]byte(nil), spec.End...)
	spec.Aggs = append([]query.AggKind(nil), spec.Aggs...)
	return &View{spec: spec, groups: make(map[string]*groupState)}
}

// Spec returns the view's declaration.
func (v *View) Spec() Spec { return v.spec }

// groupKey mirrors the wire protocol's BY-prefix grouping (and the
// scan-path GroupBy the server adapter builds): the first GroupPrefix
// bytes of the key, the whole key when shorter, "" when ungrouped.
func (v *View) groupKey(key []byte) string {
	p := v.spec.GroupPrefix
	if p <= 0 {
		return ""
	}
	if len(key) <= p {
		return string(key)
	}
	return string(key[:p])
}

// ApplyEvent folds one changefeed event into the view and advances the
// watermark. Events older than the per-key state are absorbed.
func (v *View) ApplyEvent(ev cdc.Event) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.events++
	if ev.Cursor > v.wmLSN {
		v.wmLSN = ev.Cursor
	}
	if ev.TS > v.wmTS {
		v.wmTS = ev.TS
	}
	v.apply(ev.Key, ev.Value, ev.TS, ev.Kind == cdc.Delete)
}

// ApplySnapshotRow folds one bootstrap-scan row into the view. Rows
// already superseded by applied feed events are absorbed by the
// timestamp guard.
func (v *View) ApplySnapshotRow(r core.Row) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.snapRows++
	if r.TS > v.wmTS {
		v.wmTS = r.TS
	}
	v.apply(r.Key, r.Value, r.TS, false)
}

// apply is the guarded state transition; the caller holds v.mu.
func (v *View) apply(key, value []byte, ts int64, del bool) {
	gk := v.groupKey(key)
	g := v.groups[gk]
	if g == nil {
		g = &groupState{keys: make(map[string]keyRec)}
		v.groups[gk] = g
	}
	k := string(key)
	old, had := g.keys[k]
	if had && ts <= old.ts {
		v.skipped++
		return
	}
	// Retract the superseded contribution.
	if had && old.live {
		g.rows--
		if old.numeric {
			g.numCount--
			g.numSum -= old.val
			if !g.dirty && (old.val == g.min || old.val == g.max) {
				g.dirty = true
			}
		}
	}
	if del {
		// Keep the tombstone: it guards against an older Put for the
		// same key arriving later (cluster replay interleaving).
		g.keys[k] = keyRec{ts: ts}
		if !had {
			v.keys++
		}
		return
	}
	val, numeric := query.FloatValue(core.Row{Value: value})
	g.keys[k] = keyRec{ts: ts, val: val, numeric: numeric, live: true}
	if !had {
		v.keys++
	}
	g.rows++
	if numeric {
		if g.numCount == 0 {
			g.min, g.max = val, val
		} else if !g.dirty {
			if val < g.min {
				g.min = val
			}
			if val > g.max {
				g.max = val
			}
		}
		g.numCount++
		g.numSum += val
	}
}

// recompute rebuilds a dirty group's extrema from per-key state; the
// caller holds v.mu.
func (g *groupState) recompute() {
	if !g.dirty {
		return
	}
	g.min, g.max = 0, 0
	first := true
	for _, rec := range g.keys {
		if !rec.live || !rec.numeric {
			continue
		}
		if first {
			g.min, g.max = rec.val, rec.val
			first = false
			continue
		}
		if rec.val < g.min {
			g.min = rec.val
		}
		if rec.val > g.max {
			g.max = rec.val
		}
	}
	g.dirty = false
}

// state materialises one group's AggState for kind; caller holds v.mu
// and has recomputed the group. COUNT mirrors the scan path's
// nil-Extract shape (every live row folded as 0); the numeric kinds
// mirror FloatValue extraction (non-numeric rows skipped).
func (g *groupState) state(kind query.AggKind) query.AggState {
	if kind == query.Count {
		return query.AggState{Count: g.rows}
	}
	return query.AggState{Count: g.numCount, Sum: g.numSum, Min: g.min, Max: g.max}
}

// Result materialises the view as a query.Result holding every spec
// aggregate per group, stamped with the watermark timestamp. Groups
// with no live rows are omitted, and groups sort by key, matching the
// scan-path executor.
func (v *View) Result() query.Result {
	return v.result(v.spec.Aggs)
}

// ResultFor materialises the view for a single aggregate kind — the
// shape the declarative wire query returns. ok is false when the view
// does not maintain kind, or when ts pins a snapshot other than the
// view's watermark (0 = latest = the watermark).
func (v *View) ResultFor(kind query.AggKind, ts int64) (query.Result, bool) {
	if !v.spec.Has(kind) {
		return query.Result{}, false
	}
	v.mu.Lock()
	wm := v.wmTS
	v.mu.Unlock()
	if ts != 0 && ts != wm {
		return query.Result{}, false
	}
	return v.result([]query.AggKind{kind}), true
}

func (v *View) result(kinds []query.AggKind) query.Result {
	v.mu.Lock()
	defer v.mu.Unlock()
	res := query.Result{TS: v.wmTS}
	for gk, g := range v.groups {
		if g.rows == 0 {
			continue
		}
		g.recompute()
		gr := query.GroupResult{Key: gk, Rows: g.rows, Aggs: make([]query.AggState, len(kinds))}
		for i, kind := range kinds {
			gr.Aggs[i] = g.state(kind)
		}
		res.Rows += g.rows
		res.Groups = append(res.Groups, gr)
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	return res
}

// Watermark returns the view's applied high-water marks: the highest
// feed cursor and commit timestamp folded in so far.
func (v *View) Watermark() (lsn uint64, ts int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wmLSN, v.wmTS
}

// Stats snapshots the view's counters.
func (v *View) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	groups := 0
	for _, g := range v.groups {
		if g.rows > 0 {
			groups++
		}
	}
	return Stats{
		Spec:         v.spec,
		WatermarkLSN: v.wmLSN,
		WatermarkTS:  v.wmTS,
		Events:       v.events,
		SnapshotRows: v.snapRows,
		Skipped:      v.skipped,
		Groups:       groups,
		Keys:         v.keys,
	}
}
