package cluster

// Read replicas, cluster side: every tablet server gets Config.Replicas
// WAL-shipping standbys (internal/repl), registered in the coordination
// service under ephemeral /replicas/<id> nodes. The read router
// (client.go, query.go) sends pinned snapshot reads whose timestamp a
// replica's watermark covers to that replica, round-robin, falling back
// to the primary on the first staleness or failure; topology changes
// (split, migration, failover) mirror to the affected replicas so their
// tablet layout tracks the primary's. When a primary dies, the master
// promotes its most caught-up replica into a first-class tablet server
// instead of scattering the tablets (see promoteReplica).

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/readopt"
	"repro/internal/repl"
	"repro/internal/wal"
)

// replicaState pairs a running replica with its coordination-service
// registration.
type replicaState struct {
	rep  *repl.Replica
	sess *coord.Session
}

// newReplicas creates (but does not start) Config.Replicas standbys per
// tablet server. Runs before any table exists so CreateTable's mirror
// loop reaches them; startReplicas launches shipping once the initial
// tables are declared.
func (c *Cluster) newReplicas() error {
	ids := make([]string, 0, len(c.servers))
	for id := range c.servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := c.servers[id]
		for j := 0; j < c.cfg.Replicas; j++ {
			base := fmt.Sprintf("%s.r%d", id, j)
			rep, err := repl.New(c.fs, st.srv, base, repl.Config{
				LastTS: c.svc.LastTimestamp,
				Server: c.cfg.Server,
			})
			if err != nil {
				return fmt.Errorf("cluster: replica %s: %w", base, err)
			}
			sess := c.svc.NewSession()
			if err := sess.CreateEphemeral("/replicas/"+base, []byte(id)); err != nil {
				return err
			}
			st.replicas = append(st.replicas, &replicaState{rep: rep, sess: sess})
		}
	}
	return nil
}

// startReplicas launches every replica's shipping loop.
func (c *Cluster) startReplicas() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, st := range c.servers {
		for _, rp := range st.replicas {
			if err := rp.rep.Start(); err != nil {
				return err
			}
		}
	}
	return nil
}

// replicasOf snapshots a server's replica list.
func (c *Cluster) replicasOf(serverID string) []*replicaState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.servers[serverID]
	if !ok {
		return nil
	}
	return append([]*replicaState(nil), st.replicas...)
}

// Replicas returns a server's read replicas (nil if it has none).
func (c *Cluster) Replicas(serverID string) []*repl.Replica {
	states := c.replicasOf(serverID)
	out := make([]*repl.Replica, len(states))
	for i, rp := range states {
		out[i] = rp.rep
	}
	return out
}

// ReplicaStats snapshots every replica's shipping state, keyed by the
// primary server id.
func (c *Cluster) ReplicaStats() map[string][]repl.Stats {
	c.mu.RLock()
	type pair struct {
		id   string
		reps []*replicaState
	}
	pairs := make([]pair, 0, len(c.servers))
	for id, st := range c.servers {
		if len(st.replicas) > 0 {
			pairs = append(pairs, pair{id, append([]*replicaState(nil), st.replicas...)})
		}
	}
	c.mu.RUnlock()
	out := make(map[string][]repl.Stats, len(pairs))
	for _, p := range pairs {
		stats := make([]repl.Stats, len(p.reps))
		for i, rp := range p.reps {
			stats[i] = rp.rep.Stats()
		}
		out[p.id] = stats
	}
	return out
}

// replicaCount returns how many replicas a server has (balancer
// capacity weighting).
func (c *Cluster) replicaCount(serverID string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if st, ok := c.servers[serverID]; ok {
		return len(st.replicas)
	}
	return 0
}

// replicaFor picks a replica of the named primary able to serve a read
// pinned at ts under the resolved options (round-robin), or nil when
// the read must stay on the primary: latest-timestamp reads, explicit
// Primary, no replica caught up to ts, or every caught-up replica
// beyond the MaxLag bound. The pick's reads-served counter is bumped.
func (c *Cluster) replicaFor(primaryID string, ts int64, ro readopt.Options) *repl.Replica {
	if ts <= 0 || ro.Primary {
		return nil
	}
	c.mu.RLock()
	st, ok := c.servers[primaryID]
	if !ok || len(st.replicas) == 0 {
		c.mu.RUnlock()
		return nil
	}
	reps := st.replicas
	n := len(reps)
	start := int(c.replRR.Add(1)-1) % n
	var pick *repl.Replica
	for i := 0; i < n; i++ {
		r := reps[(start+i)%n].rep
		if r.Err() != nil || r.WatermarkTS() < ts {
			continue
		}
		if ro.MaxLag > 0 && r.Stats().LagRecords > uint64(ro.MaxLag) {
			continue
		}
		// A replica whose circuit breaker is open is shedding reads
		// until a probe succeeds; round-robin on to the next candidate.
		if !c.breakers.allow("replica:" + r.BaseID()) {
			continue
		}
		pick = r
		break
	}
	c.mu.RUnlock()
	if pick != nil {
		pick.NoteRead(1)
	}
	return pick
}

// WaitForReplicaTS blocks until every healthy replica's watermark
// covers ts (test and example synchronisation).
func (c *Cluster) WaitForReplicaTS(ts int64, timeout time.Duration) error {
	c.mu.RLock()
	var all []*repl.Replica
	for _, st := range c.servers {
		for _, rp := range st.replicas {
			all = append(all, rp.rep)
		}
	}
	c.mu.RUnlock()
	for _, r := range all {
		if r.Err() != nil {
			continue
		}
		if err := r.WaitForTS(ts, timeout); err != nil {
			return err
		}
	}
	return nil
}

// SetRetention installs a per-table retention policy on every tablet
// server (live and dead — a dead server's log still feeds recoveries)
// and every replica: keep the newest KeepVersions per key, drop
// versions older than KeepFor, or both. Enforced by compaction; see
// core.Server.SetRetention. Tighter retention also shortens how far a
// changefeed or replication cursor may lag before resumption fails with
// cdc.ErrCursorTruncated.
func (c *Cluster) SetRetention(table string, p core.RetentionPolicy) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.tableGroups[table]; !ok {
		return fmt.Errorf("cluster: no table %s", table)
	}
	for _, st := range c.servers {
		st.srv.SetRetention(table, p)
		for _, rp := range st.replicas {
			rp.rep.Server().SetRetention(table, p)
		}
	}
	return nil
}

// promoteReplica is the replica-aware half of failover: the dead
// server's most caught-up healthy replica already holds everything
// through its shipping cursor in its OWN log and indexes, so promotion
// is a ReplaySession over the dead primary's log with the high-water
// set to that cursor — only the unshipped delta replays — followed by a
// first-class registration (ephemeral /servers node, assignment flip,
// epoch bump). Every tablet keeps ONE owner; the dead server's other
// replicas are closed (their primary is gone). Returns false when the
// dead server has no usable replica, sending the caller down the
// scatter-recovery path. Caller holds topoMu and failMu.
func (m *Master) promoteReplica(deadID string) (bool, error) {
	c := m.c
	c.mu.Lock()
	deadSt, ok := c.servers[deadID]
	if !ok || len(deadSt.replicas) == 0 {
		c.mu.Unlock()
		return false, nil
	}
	var best *replicaState
	var rest []*replicaState
	for _, rp := range deadSt.replicas {
		if rp.rep.Err() == nil && (best == nil || rp.rep.AppliedLSN() > best.rep.AppliedLSN()) {
			if best != nil {
				rest = append(rest, best)
			}
			best = rp
		} else {
			rest = append(rest, rp)
		}
	}
	if best == nil {
		c.mu.Unlock()
		return false, nil
	}
	deadSt.replicas = nil
	var orphans []string
	for tab, owner := range c.assignments {
		if owner == deadID {
			orphans = append(orphans, tab)
		}
	}
	sort.Strings(orphans)
	specs := make([]partition.Tablet, 0, len(orphans))
	for _, tab := range orphans {
		specs = append(specs, c.tabletSpecs[tab])
	}
	deadSrv := deadSt.srv
	c.mu.Unlock()

	// Shipping stops; the replica's server survives under our control.
	srv := best.rep.Detach()
	hw := best.rep.AppliedLSN()
	if len(specs) > 0 {
		rs, err := srv.NewReplaySession(deadSrv.Log(), wal.Position{}, specs)
		if err != nil {
			return true, fmt.Errorf("cluster: promote %s: %w", srv.ID(), err)
		}
		rs.SetHighWater(hw)
		if _, err := rs.CatchUp(); err != nil {
			return true, fmt.Errorf("cluster: promote %s: replay delta past LSN %d: %w", srv.ID(), hw, err)
		}
	}

	newID := srv.ID()
	sess := c.svc.NewSession()
	if err := sess.CreateEphemeral("/servers/"+newID, []byte(newID)); err != nil {
		return true, err
	}
	best.sess.Close() // drops the ephemeral /replicas node
	for _, rp := range rest {
		rp.rep.Close()
		rp.sess.Close()
	}
	c.mu.Lock()
	c.servers[newID] = &serverState{srv: srv, sess: sess, alive: true}
	for _, tab := range orphans {
		c.assignments[tab] = newID
	}
	c.epoch++
	c.mu.Unlock()
	return true, nil
}
