// Package cluster assembles LogBase's distributed architecture (paper
// §3.3) in one process: N tablet servers over a shared DFS, a master
// (elected through the coordination service) that assigns tablets and
// handles tablet-server failures by reassigning and recovering their
// tablets, and clients that route by key through cached metadata.
//
// The in-process substitution keeps every architectural interaction —
// registration via ephemeral nodes, master election, tablet assignment,
// log-split failover, stale routing caches — while replacing RPC with
// method calls plus an injectable per-call latency.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/simdisk"
	"repro/internal/txn"
	"repro/internal/wal"
)

// TableSpec declares a table with its column groups and tablet count.
type TableSpec struct {
	Name    string
	Groups  []string
	Tablets int // zero = one per server
}

// Config configures a simulated cluster.
type Config struct {
	// NumServers is the number of tablet servers (the paper's 3–24).
	NumServers int
	// Tables created at startup.
	Tables []TableSpec
	// Server is applied to every tablet server.
	Server core.Config
	// DFS overrides the file-system geometry; NumDataNodes defaults to
	// NumServers (each machine runs a datanode and a tablet server,
	// §4.1) and BlockSize to 4 MB.
	DFS dfs.Config
	// RPCLatency, when > 0, is slept on every client call to model the
	// network hop.
	RPCLatency time.Duration
	// Replicas is the number of WAL-shipping read replicas per tablet
	// server (internal/repl). Pinned snapshot reads whose timestamp a
	// replica's watermark covers are served by the replica instead of
	// the primary; a dead primary's most caught-up replica is promoted
	// to first-class tablet server on failover. 0 disables replication.
	Replicas int
	// Metrics is the registry shared by every tablet server (each
	// registers under its own {server: tsNN} label). Nil creates one;
	// Server.Metrics, when set, takes precedence so callers can inject
	// the registry either way.
	Metrics *obs.Registry
	// SlowOpLog enables request tracing: client operations mint trace
	// trees spanning the scatter-gather, and completed roots taking at
	// least SlowOpThreshold are rendered to this sink (threshold 0 =
	// every traced op).
	SlowOpLog       func(tree string)
	SlowOpThreshold time.Duration
	// Retry is the unified client retry policy (stale-routing retries,
	// scan resumes, batch re-routes). Zero fields take the defaults in
	// retry.go.
	Retry RetryPolicy
	// BreakerThreshold and BreakerProbeAfter tune the client circuit
	// breaker: after BreakerThreshold consecutive routing failures a
	// server/replica stops receiving traffic for BreakerProbeAfter,
	// then one probe decides whether it reopens. Zero = defaults.
	BreakerThreshold  int
	BreakerProbeAfter time.Duration
}

// ErrServerDown is returned for operations routed to a killed server.
var ErrServerDown = errors.New("cluster: tablet server down")

// Cluster is a running simulated LogBase deployment.
type Cluster struct {
	cfg Config
	fs  *dfs.DFS
	svc *coord.Service

	// topoMu serialises topology changes — server failover, tablet
	// split, live migration — against each other. It is held for the
	// whole multi-step operation (lock order: topoMu, then failMu, then
	// mu) and never taken by readers.
	topoMu sync.Mutex

	// failMu is write-held for the full duration of a server failover
	// (reassignment AND log recovery). Assignments and Epoch take it
	// shared, so callers never observe routing that points at heirs
	// still replaying the dead server's log.
	failMu sync.RWMutex

	mu          sync.RWMutex
	servers     map[string]*serverState
	assignments map[string]string            // tabletID -> serverID
	tabletSpecs map[string]partition.Tablet  // tabletID -> spec
	tableGroups map[string][]string          // table -> column groups
	routers     map[string]*partition.Router // table -> router
	tabletSeq   map[string]int               // table -> next tablet number (split children)
	epoch       int64                        // bumped on reassignment; invalidates client caches
	master      *Master

	txns     *txn.Manager
	balancer *Balancer
	replRR   atomic.Uint32 // round-robin cursor for replica reads

	metrics *obs.Registry
	tracer  *obs.Tracer
	// scatter-gather client counters (shared by all clients).
	obsStaleRetries  *obs.Counter
	obsScanResumes   *obs.Counter
	obsRetryAttempts *obs.Counter

	// retry is the resolved client retry policy; breakers the shared
	// circuit-breaker table; clientSeq seeds each client's jitter rng.
	retry     RetryPolicy
	breakers  *breakers
	clientSeq atomic.Int64

	secMu     sync.RWMutex
	secondary map[string]secondaryReg // index name -> registration
}

// secondaryReg records a cluster-wide secondary index registration so
// clients can resolve the table it covers.
type secondaryReg struct {
	table   string
	group   string
	extract core.Extractor
}

type serverState struct {
	srv      *core.Server
	sess     *coord.Session
	alive    bool
	replicas []*replicaState
}

// New builds and starts a cluster under dir.
func New(dir string, cfg Config) (*Cluster, error) {
	if cfg.NumServers <= 0 {
		return nil, errors.New("cluster: need at least one server")
	}
	dcfg := cfg.DFS
	if dcfg.NumDataNodes == 0 {
		dcfg.NumDataNodes = cfg.NumServers
	}
	if dcfg.BlockSize == 0 {
		dcfg.BlockSize = 4 << 20
	}
	fs, err := dfs.New(dir, dcfg)
	if err != nil {
		return nil, err
	}
	// One registry for the whole cluster: servers distinguish their
	// series with a {server} label, and the client-side counters live
	// beside them.
	if cfg.Server.Metrics == nil {
		if cfg.Metrics == nil {
			cfg.Metrics = obs.NewRegistry()
		}
		cfg.Server.Metrics = cfg.Metrics
	} else {
		cfg.Metrics = cfg.Server.Metrics
	}
	c := &Cluster{
		cfg:         cfg,
		fs:          fs,
		svc:         coord.New(),
		servers:     make(map[string]*serverState),
		assignments: make(map[string]string),
		tabletSpecs: make(map[string]partition.Tablet),
		tableGroups: make(map[string][]string),
		routers:     make(map[string]*partition.Router),
		tabletSeq:   make(map[string]int),
	}
	c.metrics = cfg.Metrics
	c.obsStaleRetries = c.metrics.Counter("logbase_client_stale_retries_total",
		"client operations retried on stale routing (split/move/failover)", nil)
	c.obsScanResumes = c.metrics.Counter("logbase_client_scan_resumes_total",
		"scatter-gather scans resumed by range after a routing change", nil)
	c.obsRetryAttempts = c.metrics.Counter("logbase_retry_attempts_total",
		"client attempts retried under the unified backoff policy", nil)
	c.retry = cfg.Retry.withDefaults()
	c.breakers = newBreakers(cfg.BreakerThreshold, cfg.BreakerProbeAfter)
	c.metrics.GaugeFunc("logbase_breaker_open", "circuit breakers currently open or probing", nil,
		func() float64 { return float64(c.breakers.openCount()) })
	if cfg.SlowOpLog != nil {
		c.tracer = &obs.Tracer{
			Threshold: cfg.SlowOpThreshold,
			Sink:      cfg.SlowOpLog,
			SlowOps:   c.metrics.Counter("logbase_slow_ops_total", "trace trees emitted to the slow-op log", nil),
		}
	}
	for i := 0; i < cfg.NumServers; i++ {
		id := fmt.Sprintf("ts%02d", i)
		srv, err := core.NewServer(fs, id, cfg.Server)
		if err != nil {
			return nil, err
		}
		sess := c.svc.NewSession()
		if err := sess.CreateEphemeral("/servers/"+id, []byte(id)); err != nil {
			return nil, err
		}
		c.servers[id] = &serverState{srv: srv, sess: sess, alive: true}
	}
	// Replicas exist before the initial tables (CreateTable mirrors
	// tablet specs to them) but start shipping after, so no record ever
	// precedes its tablet declaration.
	if cfg.Replicas > 0 {
		if err := c.newReplicas(); err != nil {
			return nil, err
		}
	}
	c.master = newMaster(c)
	if err := c.master.start(); err != nil {
		return nil, err
	}
	for _, ts := range cfg.Tables {
		if err := c.CreateTable(ts); err != nil {
			return nil, err
		}
	}
	if cfg.Replicas > 0 {
		if err := c.startReplicas(); err != nil {
			return nil, err
		}
	}
	c.txns = txn.NewManager(c.svc, txn.ResolverFunc(c.ServerFor))
	return c, nil
}

// FS returns the cluster's DFS.
func (c *Cluster) FS() *dfs.DFS { return c.fs }

// Coord returns the coordination service (timestamp authority etc.).
func (c *Cluster) Coord() *coord.Service { return c.svc }

// TxnManager returns the cluster-wide transaction manager.
func (c *Cluster) TxnManager() *txn.Manager { return c.txns }

// Clock returns the shared virtual disk clock, if one was configured.
func (c *Cluster) Clock() *simdisk.Clock { return c.cfg.DFS.Clock }

// Metrics returns the registry shared by the cluster's servers and
// clients.
func (c *Cluster) Metrics() *obs.Registry { return c.metrics }

// Tracer returns the cluster's slow-op tracer (nil unless
// Config.SlowOpLog was set).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// StatsViews returns each live server's mutually-consistent counter
// snapshot (core.Server.StatsView), keyed by server id.
func (c *Cluster) StatsViews() map[string]core.StatsView {
	out := make(map[string]core.StatsView)
	for _, id := range c.LiveServers() {
		out[id] = c.Server(id).StatsView()
	}
	return out
}

// CreateTable declares a table and assigns its tablets round-robin over
// live servers (the master's metadata duty, §3.3). Idempotent: a table
// that already exists with the same column groups is a no-op (the
// check runs under the cluster lock, so concurrent CreateTable races —
// e.g. two protocol sessions — are safe); declaring it with different
// groups is an error.
func (c *Cluster) CreateTable(ts TableSpec) error {
	n := ts.Tablets
	if n <= 0 {
		n = c.cfg.NumServers
	}
	tablets := partition.MakeTablets(ts.Name, partition.SplitUniform(n))

	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.tableGroups[ts.Name]; ok {
		if len(existing) == len(ts.Groups) {
			same := true
			for i, g := range existing {
				if ts.Groups[i] != g {
					same = false
					break
				}
			}
			if same {
				return nil
			}
		}
		return fmt.Errorf("cluster: table %s exists with different column groups", ts.Name)
	}
	c.tableGroups[ts.Name] = append([]string(nil), ts.Groups...)
	c.routers[ts.Name] = partition.NewRouter(tablets)
	c.tabletSeq[ts.Name] = len(tablets)
	live := c.liveServerIDsLocked()
	if len(live) == 0 {
		return errors.New("cluster: no live servers")
	}
	for i, tab := range tablets {
		owner := live[i%len(live)]
		c.tabletSpecs[tab.ID] = tab
		c.assignments[tab.ID] = owner
		c.servers[owner].srv.AddTablet(tab, ts.Groups)
		// Mirror to the owner's replicas in the same critical section:
		// the router installs below, so no record for this tablet can
		// ship before the replicas have it declared.
		for _, rp := range c.servers[owner].replicas {
			rp.rep.AddTablet(tab, ts.Groups)
		}
	}
	c.epoch++
	return nil
}

func (c *Cluster) liveServerIDsLocked() []string {
	var ids []string
	for id, st := range c.servers {
		if st.alive {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// LiveServers returns the ids of live tablet servers.
func (c *Cluster) LiveServers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.liveServerIDsLocked()
}

// Server returns the named server (nil if unknown), dead or alive —
// benches inspect stats on dead servers too.
func (c *Cluster) Server(id string) *core.Server {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if st, ok := c.servers[id]; ok {
		return st.srv
	}
	return nil
}

// ServerFor resolves the live server owning a tablet; the transaction
// manager and clients route through this.
func (c *Cluster) ServerFor(tablet string) (*core.Server, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	owner, ok := c.assignments[tablet]
	if !ok {
		// Wrap ErrUnknownTablet: an id a caller learned from a stale
		// router legitimately vanishes when its tablet splits, and
		// clients must treat that as retryable stale routing.
		return nil, fmt.Errorf("cluster: tablet %s unassigned: %w", tablet, core.ErrUnknownTablet)
	}
	st := c.servers[owner]
	if !st.alive {
		c.breakers.failure("server:" + owner)
		return nil, fmt.Errorf("%w: %s (tablet %s)", ErrServerDown, owner, tablet)
	}
	// An open breaker sheds routing to a server that kept failing even
	// though it is nominally alive, until a probe attempt succeeds.
	if !c.breakers.allow("server:" + owner) {
		return nil, fmt.Errorf("%w: %s (circuit open, tablet %s)", ErrServerDown, owner, tablet)
	}
	return st.srv, nil
}

// Router returns the key router for a table.
func (c *Cluster) Router(table string) (*partition.Router, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.routers[table]
	if !ok {
		return nil, fmt.Errorf("cluster: no table %s", table)
	}
	return r, nil
}

// Groups returns the column groups of a table.
func (c *Cluster) Groups(table string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.tableGroups[table]...)
}

// Epoch returns the routing epoch; it changes whenever assignments do.
// It blocks while a server failover is mid-flight (failMu), so the
// returned epoch never describes routing whose heirs are still
// replaying the dead server's log.
func (c *Cluster) Epoch() int64 {
	c.failMu.RLock()
	defer c.failMu.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Assignments returns a copy of tablet -> server routing. Like Epoch it
// waits out an in-flight failover, so the snapshot never names a heir
// that has not yet recovered its adopted tablets.
func (c *Cluster) Assignments() map[string]string {
	m, _ := c.RoutingSnapshot()
	return m
}

// RoutingSnapshot returns the assignments and the epoch they belong to
// as one consistent pair (the two single-value accessors can tear
// across a concurrent reassignment).
func (c *Cluster) RoutingSnapshot() (map[string]string, int64) {
	c.failMu.RLock()
	defer c.failMu.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]string, len(c.assignments))
	for k, v := range c.assignments {
		out[k] = v
	}
	return out, c.epoch
}

// tabletIndexName is the per-tablet slice of a cluster-wide secondary
// index: each server indexes only the tablets it serves, under a name
// derived from the logical index name.
func tabletIndexName(name, tabletID string) string { return name + "@" + tabletID }

// RegisterSecondaryIndex creates a secondary index over a table's
// column group on every tablet server owning a piece of the table
// (backfilling existing rows), closing the embedded-vs-cluster feature
// gap: clients then use LookupSecondary / ScanSecondaryRange exactly
// like the embedded DB. Tablets reassigned by a later failover are not
// re-indexed automatically; re-register after KillServer.
func (c *Cluster) RegisterSecondaryIndex(name, table, group string, extract core.Extractor) error {
	router, err := c.Router(table)
	if err != nil {
		return err
	}
	for _, tab := range router.Tablets() {
		srv, err := c.ServerFor(tab.ID)
		if err != nil {
			return err
		}
		if err := srv.RegisterSecondaryIndex(tabletIndexName(name, tab.ID), tab.ID, group, extract); err != nil {
			return err
		}
	}
	c.secMu.Lock()
	if c.secondary == nil {
		c.secondary = make(map[string]secondaryReg)
	}
	c.secondary[name] = secondaryReg{table: table, group: group, extract: extract}
	c.secMu.Unlock()
	return nil
}

func (c *Cluster) secondaryRegistration(name string) (secondaryReg, error) {
	c.secMu.RLock()
	defer c.secMu.RUnlock()
	reg, ok := c.secondary[name]
	if !ok {
		return secondaryReg{}, fmt.Errorf("cluster: no secondary index %q", name)
	}
	return reg, nil
}

// KillServer simulates a tablet-server machine failure: the server's
// session expires (its ephemeral node vanishes, waking the master) and
// the master reassigns and recovers its tablets from the shared DFS.
// The co-located datanode is NOT killed (the paper treats those
// failures separately; use FS().KillDataNode for that).
func (c *Cluster) KillServer(id string) error {
	// Serialise against splits, migrations and other failovers.
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	c.mu.Lock()
	st, ok := c.servers[id]
	if !ok || !st.alive {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no live server %s", id)
	}
	st.alive = false
	sess := st.sess
	master := c.master
	c.mu.Unlock()
	sess.Close() // fires the master's watch in real deployments
	return master.handleServerFailure(id)
}

// Close releases every tablet server's background resources (group-
// commit batcher goroutines) and stops the balancer if one is running.
// The cluster is not usable afterwards.
func (c *Cluster) Close() error {
	c.mu.Lock()
	b := c.balancer
	c.balancer = nil
	c.mu.Unlock()
	if b != nil {
		b.Stop()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, st := range c.servers {
		for _, rp := range st.replicas {
			rp.rep.Close()
			rp.sess.Close()
		}
		st.srv.Close()
	}
	return nil
}

// Checkpoint checkpoints every live server.
func (c *Cluster) Checkpoint() error {
	for _, id := range c.LiveServers() {
		if err := c.Server(id).Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// ScrubAll scrubs every live tablet server's log against its DFS
// replicas (core.Server.Scrub), keyed by server id. The first I/O
// error aborts the sweep; per-server corruption findings are in the
// reports, not the error.
func (c *Cluster) ScrubAll() (map[string]core.ScrubReport, error) {
	out := make(map[string]core.ScrubReport)
	for _, id := range c.LiveServers() {
		rep, err := c.Server(id).Scrub()
		if err != nil {
			return out, err
		}
		out[id] = rep
	}
	return out, nil
}

// CompactAll runs whole-log compaction on every live server.
func (c *Cluster) CompactAll() error {
	for _, id := range c.LiveServers() {
		if _, err := c.Server(id).Compact(); err != nil {
			return err
		}
	}
	return nil
}

// AutoCompactTick runs one incremental compaction pass on every live
// server — the deterministic form of the background loop that
// Config.Server.AutoCompact.Interval starts on each tablet server.
func (c *Cluster) AutoCompactTick() error {
	for _, id := range c.LiveServers() {
		if _, _, err := c.Server(id).AutoCompactTick(); err != nil {
			return err
		}
	}
	return nil
}

// CompactionInfos returns each live server's compaction counters and
// storage layout, keyed by server id (the STATS observability surface).
func (c *Cluster) CompactionInfos() map[string]core.CompactionInfo {
	out := make(map[string]core.CompactionInfo)
	for _, id := range c.LiveServers() {
		out[id] = c.Server(id).CompactionInfo()
	}
	return out
}

// MinSortedFraction reports the lowest sorted-log fraction across live
// servers — the cluster-wide "is compaction keeping up" gauge.
func (c *Cluster) MinSortedFraction() float64 {
	min := 1.0
	first := true
	for _, id := range c.LiveServers() {
		f := c.Server(id).SortedFraction()
		if first || f < min {
			min, first = f, false
		}
	}
	if first {
		return 0
	}
	return min
}

// Master is the cluster's metadata/failover authority. Multiple
// instances can run; one wins the election and the rest stand by
// (paper §3.3).
type Master struct {
	c      *Cluster
	sess   *coord.Session
	leader bool
}

func newMaster(c *Cluster) *Master {
	return &Master{c: c, sess: c.svc.NewSession()}
}

func (m *Master) start() error {
	won, err := m.sess.Elect("/master", []byte("master"))
	if err != nil {
		return err
	}
	m.leader = won
	return nil
}

// IsLeader reports whether this master won the election.
func (m *Master) IsLeader() bool { return m.leader }

// handleServerFailure reassigns a dead server's tablets across the
// survivors and recovers their data by scanning the dead server's log
// in the shared DFS (paper §3.8 failover). The caller holds topoMu;
// failMu is write-held for the WHOLE failover — reassignment and log
// recovery — so Assignments/Epoch readers never observe routing whose
// heirs have not finished replaying.
func (m *Master) handleServerFailure(deadID string) error {
	c := m.c
	c.failMu.Lock()
	defer c.failMu.Unlock()
	// A dead server with a usable replica is not scattered at all: the
	// replica already holds (nearly) everything in its own log and
	// indexes, so the master promotes it and replays only the unshipped
	// delta (see promoteReplica).
	if done, err := m.promoteReplica(deadID); done {
		return err
	}
	c.mu.Lock()
	var orphans []string
	for tab, owner := range c.assignments {
		if owner == deadID {
			orphans = append(orphans, tab)
		}
	}
	sort.Strings(orphans)
	live := c.liveServerIDsLocked()
	if len(live) == 0 {
		c.mu.Unlock()
		return errors.New("cluster: no survivors to adopt tablets")
	}
	// Plan: orphan i goes to survivor i%len(live).
	plan := make(map[string][]string) // heirID -> tablets
	for i, tab := range orphans {
		heir := live[i%len(live)]
		plan[heir] = append(plan[heir], tab)
		c.assignments[tab] = heir
	}
	c.epoch++
	specs := make(map[string]partition.Tablet, len(orphans))
	groupsOf := make(map[string][]string, len(orphans))
	for _, tab := range orphans {
		spec := c.tabletSpecs[tab]
		specs[tab] = spec
		groupsOf[tab] = c.tableGroups[spec.Table]
	}
	c.mu.Unlock()

	for heirID, tabs := range plan {
		heir := c.Server(heirID)
		// Declare the adopted tablets on the heir's replicas FIRST: once
		// the heir serves them, every write ships, and a record arriving
		// before its tablet declaration would be skipped for good. The
		// open topology sync holds each replica's public watermark at 0
		// until the dead log's history is installed below.
		heirReps := c.replicasOf(heirID)
		for _, rp := range heirReps {
			rp.rep.BeginTopologySync()
			for _, tab := range tabs {
				rp.rep.AddTablet(specs[tab], groupsOf[tab])
			}
		}
		for _, tab := range tabs {
			heir.AddTablet(specs[tab], groupsOf[tab])
		}
		if _, err := heir.RecoverTablets(deadID, wal.Position{}, tabs); err != nil {
			return fmt.Errorf("cluster: recover tablets from %s on %s: %w", deadID, heirID, err)
		}
		// The replicas adopt the same history from the dead log; the
		// foreign mark pins them to it (no re-bootstrap can rebuild it
		// from the heir's log alone).
		for _, rp := range heirReps {
			if _, err := rp.rep.Server().RecoverTablets(deadID, wal.Position{}, tabs); err != nil {
				rp.rep.MarkFailed(fmt.Errorf("cluster: replica adoption of %v from %s: %w", tabs, deadID, err))
			} else {
				rp.rep.MarkForeign()
			}
			rp.rep.EndTopologySync()
		}
	}
	return nil
}

// FailoverMaster simulates the active master dying: a standby master is
// created, notices the vacancy, and wins the election.
func (c *Cluster) FailoverMaster() *Master {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	c.mu.Lock()
	old := c.master
	c.mu.Unlock()
	old.sess.Close()
	standby := newMaster(c)
	standby.start() //nolint:errcheck // election on fresh session cannot fail here
	c.mu.Lock()
	c.master = standby
	c.mu.Unlock()
	return standby
}

// Master returns the current (possibly failed-over) master.
func (c *Cluster) Master() *Master {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.master
}
