package cluster

// The load balancer is the Master's elasticity duty (paper §3.3 gives
// the master "the load balance of the system" next to tablet
// assignment): tablet servers publish windowed per-tablet load reports
// into the coordination service, and the balancer — gated on master
// leadership — reads them back, finds the hot server, and picks ONE
// action per tick:
//
//   - move the hottest tablet that improves the hot/cold spread, or
//   - split the hot server's dominant tablet when no move helps (a
//     single hot tablet cannot be shed whole; its halves can).
//
// One action per tick plus a per-tablet cooldown keeps decisions on
// settled windows and prevents thrash; the routing epoch bump in each
// action is what drags client caches along.

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
)

// BalancerConfig tunes the Master's balancer loop. Zero values take the
// documented defaults.
type BalancerConfig struct {
	// Interval between ticks (default 100ms).
	Interval time.Duration
	// MinOps: below this many windowed ops on the hottest server the
	// cluster is idle and no action is taken (default 512).
	MinOps int64
	// MoveRatio: hottest/coldest server op ratio above which the
	// cluster counts as imbalanced (default 2.0).
	MoveRatio float64
	// SplitShare: share of its server's ops a single tablet must carry
	// to be split when no migration helps (default 0.5).
	SplitShare float64
	// Cooldown: ticks a tablet (or a split's children) rests after an
	// action, letting load windows resettle (default 4).
	Cooldown int64
}

func (cfg BalancerConfig) withDefaults() BalancerConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MinOps <= 0 {
		cfg.MinOps = 512
	}
	if cfg.MoveRatio <= 1 {
		cfg.MoveRatio = 2.0
	}
	if cfg.SplitShare <= 0 || cfg.SplitShare > 1 {
		cfg.SplitShare = 0.5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 4
	}
	return cfg
}

// BalancerStats counts what the balancer did.
type BalancerStats struct {
	Ticks, Splits, Moves, Errors int64
}

// Balancer is the background rebalancing loop. Create via
// Cluster.StartBalancer; Stop (or Cluster.Close) ends it.
type Balancer struct {
	c    *Cluster
	cfg  BalancerConfig
	sess *coord.Session

	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once

	ticks, splits, moves, errs atomic.Int64

	mu       sync.Mutex
	tick     int64
	cooldown map[string]int64 // tablet id -> tick until which it rests
}

// StartBalancer launches the balancer loop. Only one balancer per
// cluster; a second call returns the running one.
func (c *Cluster) StartBalancer(cfg BalancerConfig) *Balancer {
	c.mu.Lock()
	if c.balancer != nil {
		b := c.balancer
		c.mu.Unlock()
		return b
	}
	b := &Balancer{
		c:        c,
		cfg:      cfg.withDefaults(),
		sess:     c.svc.NewSession(),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		cooldown: make(map[string]int64),
	}
	c.balancer = b
	c.mu.Unlock()
	go b.loop()
	return b
}

// Stop ends the balancer loop and waits for it to exit. Idempotent.
func (b *Balancer) Stop() {
	b.stopOnce.Do(func() { close(b.stopCh) })
	<-b.doneCh
}

// Stats returns the balancer's counters.
func (b *Balancer) Stats() BalancerStats {
	return BalancerStats{
		Ticks:  b.ticks.Load(),
		Splits: b.splits.Load(),
		Moves:  b.moves.Load(),
		Errors: b.errs.Load(),
	}
}

func (b *Balancer) loop() {
	defer close(b.doneCh)
	ticker := time.NewTicker(b.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopCh:
			return
		case <-ticker.C:
			b.Tick()
		}
	}
}

// loadNode is the coord path carrying one server's load report.
func loadNode(serverID string) string { return "/load/" + serverID }

// encodeLoads renders a load report for a coord node (one tablet per
// line; fields are \x1f-separated since tablet ids contain '/').
func encodeLoads(loads []core.TabletLoad) []byte {
	var buf bytes.Buffer
	for _, l := range loads {
		fmt.Fprintf(&buf, "%s\x1f%s\x1f%d\x1f%d\x1f%d\n", l.Tablet, l.Table, l.Ops, l.Rows, l.Bytes)
	}
	return buf.Bytes()
}

// decodeLoads parses a load report read back from coord.
func decodeLoads(data []byte) ([]core.TabletLoad, error) {
	var out []core.TabletLoad
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		parts := bytes.Split(sc.Bytes(), []byte{0x1f})
		if len(parts) != 5 {
			return nil, fmt.Errorf("cluster: bad load report line %q", sc.Text())
		}
		var l core.TabletLoad
		l.Tablet, l.Table = string(parts[0]), string(parts[1])
		if _, err := fmt.Sscanf(string(parts[2]), "%d", &l.Ops); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(string(parts[3]), "%d", &l.Rows); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(string(parts[4]), "%d", &l.Bytes); err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, sc.Err()
}

// serverLoad aggregates one server's report.
type serverLoad struct {
	id      string
	ops     int64
	tablets []core.TabletLoad
}

// Tick runs one balancing round: publish every live server's load
// report to its coord node, read the reports back through coord, and
// take at most one split or move. Exported so tests and benches can
// drive the balancer deterministically instead of racing a timer.
func (b *Balancer) Tick() {
	b.ticks.Add(1)
	if !b.c.Master().IsLeader() {
		return
	}
	b.mu.Lock()
	b.tick++
	now := b.tick
	b.mu.Unlock()

	// Report phase: each tablet server samples its load window and
	// publishes the report under its own coord session.
	c := b.c
	c.mu.RLock()
	type srvRef struct {
		id   string
		srv  *core.Server
		sess *coord.Session
	}
	var refs []srvRef
	for id, st := range c.servers {
		if st.alive {
			refs = append(refs, srvRef{id, st.srv, st.sess})
		}
	}
	c.mu.RUnlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	for _, r := range refs {
		if err := r.sess.SetOrCreate(loadNode(r.id), encodeLoads(r.srv.SampleLoad())); err != nil {
			b.errs.Add(1)
		}
	}

	// Gather phase: the master reads the reports back from coord.
	loads := make([]serverLoad, 0, len(refs))
	for _, r := range refs {
		data, err := b.sess.Get(loadNode(r.id))
		if err != nil {
			b.errs.Add(1)
			continue
		}
		tablets, err := decodeLoads(data)
		if err != nil {
			b.errs.Add(1)
			continue
		}
		sl := serverLoad{id: r.id, tablets: tablets}
		for _, t := range tablets {
			sl.ops += t.Ops
		}
		// Read replicas are scan capacity: pinned analytical reads that
		// would land on this primary are absorbed by its standbys, so a
		// server with R replicas weighs in at 1/(1+R) of its reported
		// ops — it takes proportionally more load before the balancer
		// calls it hot.
		if n := b.c.replicaCount(r.id); n > 0 {
			sl.ops /= int64(1 + n)
		}
		loads = append(loads, sl)
	}
	if act := b.decide(loads, now); act != nil {
		act()
	}
}

// decide picks at most one action from the gathered reports.
func (b *Balancer) decide(loads []serverLoad, now int64) func() {
	if len(loads) < 2 {
		return nil
	}
	hot, cold := loads[0], loads[0]
	for _, sl := range loads[1:] {
		if sl.ops > hot.ops {
			hot = sl
		}
		if sl.ops < cold.ops {
			cold = sl
		}
	}
	if hot.ops < b.cfg.MinOps {
		return nil // idle cluster
	}
	if float64(hot.ops) <= b.cfg.MoveRatio*float64(cold.ops) {
		return nil // balanced enough
	}
	tablets := append([]core.TabletLoad(nil), hot.tablets...)
	sort.Slice(tablets, func(i, j int) bool { return tablets[i].Ops > tablets[j].Ops })

	// Cooldown bookkeeping happens here under b.mu; the returned action
	// closure runs lock-free (rest() re-acquires for split children).
	b.mu.Lock()
	defer b.mu.Unlock()
	cooling := func(id string) bool { return b.cooldown[id] > now }

	// Prefer a migration that strictly improves the hot/cold spread.
	for _, t := range tablets {
		if t.Ops == 0 {
			break
		}
		if cooling(t.Tablet) {
			continue
		}
		if cold.ops+t.Ops < hot.ops {
			tabletID, destID := t.Tablet, cold.id
			b.cooldown[tabletID] = now + b.cfg.Cooldown
			return func() {
				if err := b.c.MoveTablet(tabletID, destID); err != nil {
					b.errs.Add(1)
					return
				}
				b.moves.Add(1)
			}
		}
	}
	// No move helps: the hot server is dominated by one hot tablet.
	// Split it so the halves can be separated on a later tick.
	top := tablets[0]
	if cooling(top.Tablet) || float64(top.Ops) < b.cfg.SplitShare*float64(hot.ops) {
		return nil
	}
	b.cooldown[top.Tablet] = now + b.cfg.Cooldown
	return func() {
		leftID, rightID, err := b.c.SplitTablet(top.Tablet)
		if err != nil {
			b.errs.Add(1)
			return
		}
		b.splits.Add(1)
		b.rest(leftID, rightID)
	}
}

// rest puts tablets on cooldown for the configured number of ticks.
func (b *Balancer) rest(ids ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range ids {
		b.cooldown[id] = b.tick + b.cfg.Cooldown
	}
}
