package cluster

// Cluster-wide changefeeds: a scatter-gather over the per-server feeds
// in internal/core. Every tablet server's log is an independent LSN
// space, and topology changes — failover, live migration — REPLAY
// records into destination logs (new LSNs, original commit
// timestamps), so a cluster feed cannot merge by LSN or resume by one.
// Instead it subscribes every live server from the beginning of its
// retained log and deduplicates at the cluster level with a per-key
// commit-timestamp watermark: an event is delivered iff its TS is
// newer than the last delivered TS for that (group, key). Replayed
// copies carry their original TS and are absorbed; a server that joins
// (or adopts tablets through failover) is picked up by a supervisor
// that re-subscribes it from LSN 0, with the watermark suppressing the
// history the consumer has already seen.
//
// Ordering contract: per-key events arrive in commit-timestamp order;
// there is no total order across keys (feeds from different servers
// interleave arbitrarily). Event.Cursor/LSN are the origin server's
// values and are NOT usable as a cluster-wide resume point — a cluster
// Watch always starts from 0 and is bootstrapped via the watermark.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cdc"
	"repro/internal/core"
)

// feedPollInterval paces the supervisor's topology poll. The in-process
// "RPC" makes this cheap; it only bounds how quickly a feed notices a
// newly live server or a failover heir.
const feedPollInterval = 10 * time.Millisecond

// Watch subscribes a cluster-wide changefeed over table: committed
// Put/Delete events for keys in [start, end) (nil = open; group "" =
// every column group), each key's events in commit-timestamp order.
// The feed spans topology changes — tablet splits, live migrations and
// server failovers — re-subscribing heirs as the supervisor notices
// them and absorbing replayed history through the timestamp watermark.
// Close the feed (or cancel ctx passed to Next) to release the
// per-server subscriptions.
func (c *Cluster) Watch(ctx context.Context, table, group string, start, end []byte, opts cdc.Options) (cdc.Feed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.RLock()
	groups, ok := c.tableGroups[table]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no table %s", table)
	}
	if group != "" {
		found := false
		for _, g := range groups {
			if g == group {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: table %s has no column group %s", table, group)
		}
	}
	o := opts.WithDefaults()
	fctx, cancel := context.WithCancel(context.Background())
	f := &clusterFeed{
		c:      c,
		table:  table,
		group:  group,
		start:  append([]byte(nil), start...),
		end:    append([]byte(nil), end...),
		opts:   o,
		events: make(chan cdc.Event, o.Buffer),
		done:   make(chan struct{}),
		ctx:    fctx,
		cancel: cancel,
		feeds:  make(map[string]*core.Feed),
		marks:  make(map[string]int64),
	}
	// Subscribe the current live set synchronously so the feed's
	// boundary covers every write committed before Watch returned.
	f.resubscribe()
	f.wg.Add(1)
	go f.supervise()
	return f, nil
}

// clusterFeed implements cdc.Feed over per-server core feeds.
type clusterFeed struct {
	c            *Cluster
	table, group string
	start, end   []byte
	opts         cdc.Options

	events chan cdc.Event
	done   chan struct{}
	ctx    context.Context // cancelled on close; unblocks pump Next calls
	cancel context.CancelFunc
	once   sync.Once
	wg     sync.WaitGroup

	mu    sync.Mutex
	err   error                 // terminal error, set before done closes
	feeds map[string]*core.Feed // serverID -> live subscription
	marks map[string]int64      // group \x00 key -> highest delivered TS
}

var _ cdc.Feed = (*clusterFeed)(nil)

// supervise polls the live-server set, subscribing servers that have no
// feed (new servers; heirs whose earlier feed died with their source).
func (f *clusterFeed) supervise() {
	defer f.wg.Done()
	t := time.NewTicker(feedPollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-t.C:
			f.resubscribe()
		}
	}
}

// resubscribe opens a per-server feed (from LSN 0 — the watermark
// absorbs replayed history) for every live server that lacks one.
func (f *clusterFeed) resubscribe() {
	select {
	case <-f.done:
		return
	default:
	}
	for _, id := range f.c.LiveServers() {
		f.mu.Lock()
		_, have := f.feeds[id]
		f.mu.Unlock()
		if have {
			continue
		}
		srv := f.c.Server(id)
		if srv == nil {
			continue
		}
		feed, err := srv.Watch(f.table, f.group, f.start, f.end, 0, f.opts)
		if err != nil {
			continue // server mid-shutdown; next poll retries
		}
		f.mu.Lock()
		f.feeds[id] = feed
		f.mu.Unlock()
		f.wg.Add(1)
		go f.pump(id, feed)
	}
}

// pump drains one server's feed into the merged stream.
func (f *clusterFeed) pump(id string, feed *core.Feed) {
	defer f.wg.Done()
	defer feed.Close()
	for {
		ev, err := feed.Next(f.ctx)
		if err != nil {
			f.mu.Lock()
			delete(f.feeds, id)
			f.mu.Unlock()
			if errors.Is(err, cdc.ErrSlowConsumer) {
				// The server-side buffer overflowed: events were lost and
				// a cluster feed has no LSN cursor to replay them from,
				// so the whole feed is terminally broken.
				f.fail(err)
			}
			return
		}
		if !f.admit(ev) {
			continue
		}
		select {
		case f.events <- ev:
		case <-f.done:
			return
		}
	}
}

// admit applies the cluster-level dedupe: deliver iff this event's TS
// advances the per-key watermark. Replayed copies (same TS) and stale
// versions arriving after a newer one from another server are dropped.
func (f *clusterFeed) admit(ev cdc.Event) bool {
	k := ev.Group + "\x00" + string(ev.Key)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.TS <= f.marks[k] {
		return false
	}
	f.marks[k] = ev.TS
	return true
}

// fail records the terminal error (first wins) and shuts the feed down.
func (f *clusterFeed) fail(err error) {
	f.once.Do(func() {
		f.mu.Lock()
		f.err = err
		f.mu.Unlock()
		f.cancel()
		close(f.done)
	})
}

// Next returns the next deduplicated event, blocking until one is
// available, ctx is done, or the feed is closed.
func (f *clusterFeed) Next(ctx context.Context) (cdc.Event, error) {
	select {
	case <-f.done:
		return cdc.Event{}, f.feedErr()
	default:
	}
	select {
	case ev := <-f.events:
		return ev, nil
	case <-ctx.Done():
		return cdc.Event{}, ctx.Err()
	case <-f.done:
		return cdc.Event{}, f.feedErr()
	}
}

func (f *clusterFeed) feedErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	return cdc.ErrFeedClosed
}

// Close tears down every per-server subscription and waits for the
// supervisor and pumps to exit. Idempotent.
func (f *clusterFeed) Close() error {
	f.fail(nil)
	f.wg.Wait()
	return nil
}
