package cluster

// Scatter-gather analytics (the HTAP path over the distributed
// deployment): one query fans out to every tablet server owning a
// piece of the table, each server executes it against its own
// multiversion indexes and log at the SAME pinned global timestamp, and
// the mergeable partial aggregates are gathered into one exact answer.
// No data is copied out of the transactional store, and the OLTP write
// path is never blocked — writes that commit during the query are
// simply newer than the snapshot and invisible to it.
//
// Every fan-out takes a context.Context: cancelling it propagates
// through each per-server executor into the shard scan loops, so an
// abandoned cluster query stops doing I/O within one batch boundary on
// every server and leaves no goroutine behind (the gather always joins
// its scatter goroutines before returning).

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/readopt"
)

// Query executes an analytical query over a table's column group at
// the latest globally issued timestamp (a consistent cluster-wide
// snapshot: the timestamp authority is the single source of commit
// timestamps).
func (c *Cluster) Query(ctx context.Context, table, group string, q query.Query) (query.Result, error) {
	return c.QueryAt(ctx, table, group, c.svc.LastTimestamp(), q)
}

// ClusterQuery is Query under its architectural name (the scatter-
// gather operator the evaluation refers to).
func (c *Cluster) ClusterQuery(ctx context.Context, table, group string, q query.Query) (query.Result, error) {
	return c.Query(ctx, table, group, q)
}

// QueryAt executes q pinned at snapshot ts: time travel over the whole
// cluster, as cheap as a current-time query because the log keeps every
// version.
func (c *Cluster) QueryAt(ctx context.Context, table, group string, ts int64, q query.Query) (query.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ts == 0 {
		// ts 0 means "latest" on every query surface (a snapshot at
		// literal timestamp 0 sees nothing).
		ts = c.svc.LastTimestamp()
	}
	// One root span covers planning, every scatter attempt, and the
	// gather; re-planned attempts show up as repeated query.server
	// children plus a retry label.
	ctx, sp := c.tracer.Root(ctx, "cluster.query")
	sp.Label("table", table)
	defer sp.Finish()
	// A balancer split/migration racing the query invalidates the plan
	// (a tablet id vanishes between the router read and the scan). The
	// whole scatter is side-effect free and pinned at ts, so re-planning
	// with fresh metadata and re-running yields the identical answer.
	var res query.Result
	var err error
	pol := c.retry
	for attempt := 0; ; attempt++ {
		res, err = c.queryAtOnce(ctx, table, group, ts, q, attempt == 0)
		if err == nil || !retryableRouting(err) || attempt >= pol.MaxAttempts {
			return res, err
		}
		sp.Label("retry", err.Error())
		c.obsRetryAttempts.Inc()
		if serr := pol.sleep(ctx, attempt+1, nil); serr != nil {
			return res, serr
		}
	}
}

func (c *Cluster) queryAtOnce(ctx context.Context, table, group string, ts int64, q query.Query, useReplicas bool) (query.Result, error) {
	router, err := c.Router(table)
	if err != nil {
		return query.Result{}, err
	}
	// Only tablets intersecting the key range participate (the router is
	// the first push-down: whole servers can drop out of the scatter).
	tabs := router.Overlapping(q.Filter.Start, q.Filter.End)

	type shard struct {
		server  *core.Server
		targets []query.Target
	}
	plan := make(map[string]*shard)
	for _, tab := range tabs {
		srv, err := c.ServerFor(tab.ID)
		if err != nil {
			return query.Result{}, err
		}
		// The query is pinned at ts, so a replica whose watermark covers
		// ts answers identically; re-planned attempts stay on primaries.
		if useReplicas {
			if rep := c.replicaFor(srv.ID(), ts, readopt.Options{}); rep != nil {
				srv = rep.Server()
			}
		}
		sh, ok := plan[srv.ID()]
		if !ok {
			sh = &shard{server: srv}
			plan[srv.ID()] = sh
		}
		sh.targets = append(sh.targets, query.Target{Source: srv, Tablet: tab.ID})
	}

	// Scatter: one executor per server over its local tablets. All
	// goroutines are joined before returning — cancellation makes them
	// finish fast (each shard loop checks ctx per batch), not leak.
	// The first failing server cancels its siblings the same way.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partials := make([]query.Result, 0, len(plan))
	errs := make([]error, 0, len(plan))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range plan {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sctx, sp := obs.StartSpan(cctx, "query.server")
			sp.Label("server", sh.server.ID())
			sp.LabelInt("tablets", int64(len(sh.targets)))
			defer sp.Finish()
			snap := query.NewSnapshot(ts, sh.targets...)
			res, err := snap.Run(sctx, group, q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				cancel()
				return
			}
			partials = append(partials, res)
		}(sh)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return query.Result{}, err
	}
	if err := query.JoinFanoutErrs(errs); err != nil {
		return query.Result{}, err
	}

	// Gather: merge the mergeable partials.
	res := query.Result{TS: ts}
	for _, p := range partials {
		res.Merge(p)
	}
	return res, nil
}

// SnapshotAt pins a cluster-wide snapshot at ts (0 = now) covering
// every tablet of the table; the returned handle can run repeated
// queries and ordered scans against the exact same version set.
func (c *Cluster) SnapshotAt(table string, ts int64) (*query.Snapshot, error) {
	if ts == 0 {
		ts = c.svc.LastTimestamp()
	}
	// Plan building retries through topology changes like QueryAt. The
	// returned handle resolves servers eagerly: like a snapshot taken
	// across a server failover, one taken across a later split or
	// migration may error — snapshots are short-lived read handles, not
	// topology-change-proof cursors.
	pol := c.retry
	for attempt := 0; ; attempt++ {
		router, err := c.Router(table)
		if err != nil {
			return nil, err
		}
		var targets []query.Target
		stale := false
		for _, tab := range router.Tablets() {
			srv, err := c.ServerFor(tab.ID)
			if err != nil {
				if !retryableRouting(err) || attempt >= pol.MaxAttempts {
					return nil, err
				}
				stale = true
				break
			}
			if attempt == 0 {
				if rep := c.replicaFor(srv.ID(), ts, readopt.Options{}); rep != nil {
					srv = rep.Server()
				}
			}
			targets = append(targets, query.Target{Source: srv, Tablet: tab.ID})
		}
		if !stale {
			return query.NewSnapshot(ts, targets...), nil
		}
		c.obsRetryAttempts.Inc()
		pol.sleep(nil, attempt+1, nil)
	}
}
