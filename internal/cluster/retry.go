package cluster

// Unified client retry machinery. Every routing loop in the client —
// point-op stale retries, scan resume-by-range, secondary-index
// gathers, batch re-routing — shares ONE RetryPolicy (context-aware
// exponential backoff with jitter and a per-operation attempt budget)
// and one circuit-breaker table that stops routing to a server or read
// replica after consecutive failures until a probe succeeds. Before
// this lived here, each loop carried its own ad-hoc linear sleep.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy governs one client operation's retry loop.
type RetryPolicy struct {
	// MaxAttempts is the per-operation attempt budget, including the
	// first try.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the fraction of each delay that is randomised (0..1):
	// the slept time is uniform in [d*(1-Jitter), d]. Jitter breaks the
	// convoy of many clients retrying a moved tablet in lockstep.
	Jitter float64
}

// defaultRetryPolicy preserves the pre-unification totals: 12 attempts
// with sub-millisecond early backoff, so a migration-cutover window
// (typically < 10ms) is ridden out without adding visible latency to
// the common one-retry case.
var defaultRetryPolicy = RetryPolicy{
	MaxAttempts: 12,
	BaseDelay:   250 * time.Microsecond,
	MaxDelay:    8 * time.Millisecond,
	Jitter:      0.25,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetryPolicy.MaxDelay
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = defaultRetryPolicy.Jitter
	}
	return p
}

// delay returns the backoff before retry `attempt` (1-based):
// exponential from BaseDelay, capped at MaxDelay, jittered via rng.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		cut := time.Duration(p.Jitter * float64(d) * rng.Float64())
		d -= cut
	}
	return d
}

// sleep blocks for delay(attempt), honouring ctx's deadline and
// cancellation: an op whose context expires mid-backoff stops retrying
// immediately and returns ctx.Err().
func (p RetryPolicy) sleep(ctx context.Context, attempt int, rng *rand.Rand) error {
	d := p.delay(attempt, rng)
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- circuit breaker ----------------------------------------------------

// Breaker defaults: breakerThreshold consecutive failures open a
// target's breaker; an open breaker rejects routing for
// breakerProbeAfter, then admits ONE probe (half-open) — a probe
// success closes it, a probe failure re-opens the window.
const (
	defaultBreakerThreshold  = 5
	defaultBreakerProbeAfter = 2 * time.Millisecond
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breakerEntry struct {
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

// breakers is the per-target circuit-breaker table, shared by every
// client of a cluster. Targets are names like "server:ts01" or
// "replica:ts01.r0".
type breakers struct {
	mu         sync.Mutex
	threshold  int
	probeAfter time.Duration
	m          map[string]*breakerEntry
}

func newBreakers(threshold int, probeAfter time.Duration) *breakers {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if probeAfter <= 0 {
		probeAfter = defaultBreakerProbeAfter
	}
	return &breakers{threshold: threshold, probeAfter: probeAfter, m: make(map[string]*breakerEntry)}
}

// allow reports whether routing to target is admitted. An open breaker
// rejects until probeAfter has elapsed, then transitions to half-open
// and admits exactly one probe; further calls reject until the probe's
// outcome is reported.
func (b *breakers) allow(target string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[target]
	if e == nil {
		return true
	}
	switch e.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(e.openedAt) >= b.probeAfter {
			e.state = breakerHalfOpen
			e.openedAt = time.Now()
			return true
		}
		return false
	default:
		// Half-open: a probe is in flight. If its outcome is never
		// reported (the caller bailed before issuing the call), admit
		// another probe after a further window rather than wedging the
		// target out of rotation forever.
		if time.Since(e.openedAt) >= b.probeAfter {
			e.openedAt = time.Now()
			return true
		}
		return false
	}
}

// success reports a successful call to target: closes its breaker and
// clears the failure streak.
func (b *breakers) success(target string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.m[target]; e != nil {
		e.state = breakerClosed
		e.fails = 0
	}
}

// failure reports a failed call to target: extends the streak, opening
// the breaker at the threshold; a failed half-open probe re-opens
// immediately.
func (b *breakers) failure(target string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[target]
	if e == nil {
		e = &breakerEntry{}
		b.m[target] = e
	}
	switch e.state {
	case breakerHalfOpen:
		e.state = breakerOpen
		e.openedAt = time.Now()
	case breakerClosed:
		if e.fails++; e.fails >= b.threshold {
			e.state = breakerOpen
			e.openedAt = time.Now()
		}
	}
}

// openCount reports how many targets are currently open or probing —
// the breaker-state gauge.
func (b *breakers) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.m {
		if e.state != breakerClosed {
			n++
		}
	}
	return n
}

// note folds an op outcome into target's breaker: nil errors and
// non-routing errors (the target responded) count as success; routing
// errors (down/unknown — the target is unreachable or shedding) count
// as failure.
func (b *breakers) note(target string, err error) {
	if err == nil || !retryableRouting(err) {
		b.success(target)
	} else {
		b.failure(target)
	}
}

// noteServer folds an op outcome into a SERVER breaker. Unlike replica
// breakers, only ErrServerDown counts against a server: a tablet-level
// routing error (moved, split, frozen) is the server responding
// correctly about a tablet it no longer owns, and must not shed
// traffic for the tablets it still serves.
func (b *breakers) noteServer(id string, err error) {
	if err != nil && errors.Is(err, ErrServerDown) {
		b.failure("server:" + id)
	} else {
		b.success("server:" + id)
	}
}
