package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/txn"
)

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(t.TempDir(), Config{
		NumServers: n,
		Tables: []TableSpec{
			{Name: "users", Groups: []string{"profile", "activity"}},
		},
		Server: core.Config{SegmentSize: 1 << 20},
		DFS:    dfs.Config{BlockSize: 1 << 16},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c
}

func TestPutGetAcrossServers(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	// Keys spread over the whole keyspace → all servers participate.
	for i := 0; i < 200; i++ {
		key := []byte{byte(i * 256 / 200), byte(i)}
		if err := cl.Put("users", "profile", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		key := []byte{byte(i * 256 / 200), byte(i)}
		row, err := cl.Get("users", "profile", key)
		if err != nil || string(row.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %d = %+v err=%v", i, row, err)
		}
	}
	// Every server must have seen writes (round-robin tablet spread).
	busy := 0
	for _, id := range c.LiveServers() {
		if c.Server(id).Stats().Writes.Load() > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Errorf("only %d/4 servers received writes", busy)
	}
}

func TestGetRowReconstruction(t *testing.T) {
	c := newTestCluster(t, 2)
	cl := c.NewClient()
	key := []byte("user-1")
	cl.Put("users", "profile", key, []byte("alice"))
	cl.Put("users", "activity", key, []byte("clicked"))
	row, err := cl.GetRow("users", key)
	if err != nil {
		t.Fatalf("GetRow: %v", err)
	}
	if string(row["profile"].Value) != "alice" || string(row["activity"].Value) != "clicked" {
		t.Errorf("GetRow = %v", row)
	}
}

func TestScanSpansTablets(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	for b := 0; b < 256; b += 4 {
		cl.Put("users", "profile", []byte{byte(b)}, []byte("v"))
	}
	var keys [][]byte
	err := cl.Scan(context.Background(), "users", "profile", []byte{0x20}, []byte{0xE0}, func(r core.Row) bool {
		keys = append(keys, r.Key)
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := (0xE0 - 0x20) / 4
	if len(keys) != want {
		t.Errorf("scan saw %d keys, want %d", len(keys), want)
	}
	for i := 1; i < len(keys); i++ {
		if string(keys[i-1]) >= string(keys[i]) {
			t.Fatal("cross-tablet scan out of key order")
		}
	}
}

func TestFullScan(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	for i := 0; i < 90; i++ {
		cl.Put("users", "profile", []byte{byte(i * 256 / 90), byte(i)}, []byte("v"))
	}
	n := 0
	if err := cl.FullScan(context.Background(), "users", "profile", func(core.Row) bool { n++; return true }); err != nil {
		t.Fatalf("FullScan: %v", err)
	}
	if n != 90 {
		t.Errorf("full scan saw %d rows, want 90", n)
	}
}

func TestServerFailover(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	const n = 120
	for i := 0; i < n; i++ {
		key := []byte{byte(i * 256 / n), byte(i)}
		cl.Put("users", "profile", key, []byte(fmt.Sprintf("v%d", i)))
	}
	victim := c.LiveServers()[1]
	before := c.Assignments()
	victimTablets := 0
	for _, owner := range before {
		if owner == victim {
			victimTablets++
		}
	}
	if victimTablets == 0 {
		t.Fatal("victim owned no tablets; test setup broken")
	}
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	// All data must remain readable through stale-cache retries.
	for i := 0; i < n; i++ {
		key := []byte{byte(i * 256 / n), byte(i)}
		row, err := cl.Get("users", "profile", key)
		if err != nil || string(row.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %d after failover = %+v err=%v", i, row, err)
		}
	}
	// No tablet may still be assigned to the dead server.
	for tab, owner := range c.Assignments() {
		if owner == victim {
			t.Errorf("tablet %s still assigned to dead server", tab)
		}
	}
	// Writes to moved tablets keep working.
	for i := 0; i < n; i++ {
		key := []byte{byte(i * 256 / n), byte(i)}
		if err := cl.Put("users", "profile", key, []byte("post-failover")); err != nil {
			t.Fatalf("post-failover Put: %v", err)
		}
	}
}

func TestStaleClientCacheRefreshes(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	cl.Put("users", "profile", []byte{0x10}, []byte("v"))
	refreshesBefore := cl.Refreshes
	victim := ""
	for tab, owner := range c.Assignments() {
		router, _ := c.Router("users")
		if t2, ok := router.Lookup([]byte{0x10}); ok && t2.ID == tab {
			victim = owner
		}
	}
	if err := c.KillServer(victim); err != nil {
		t.Fatalf("KillServer: %v", err)
	}
	if _, err := cl.Get("users", "profile", []byte{0x10}); err != nil {
		t.Fatalf("Get after move: %v", err)
	}
	if cl.Refreshes == refreshesBefore {
		t.Error("client served moved tablet without refreshing its cache")
	}
}

func TestTransactionsThroughCluster(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	keyA := []byte{0x01, 'a'} // different tablets with high probability
	keyB := []byte{0xF0, 'b'}
	tabA, err := cl.TabletFor("users", keyA)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := cl.TabletFor("users", keyB)
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunTxn(func(tx *txn.Txn) error {
		if err := tx.Put(tabA, "profile", keyA, []byte("1")); err != nil {
			return err
		}
		return tx.Put(tabB, "profile", keyB, []byte("2"))
	})
	if err != nil {
		t.Fatalf("RunTxn: %v", err)
	}
	rowA, err := cl.Get("users", "profile", keyA)
	if err != nil || string(rowA.Value) != "1" {
		t.Errorf("a = %+v err=%v", rowA, err)
	}
	rowB, err := cl.Get("users", "profile", keyB)
	if err != nil || string(rowB.Value) != "2" {
		t.Errorf("b = %+v err=%v", rowB, err)
	}
	if rowA.TS != rowB.TS {
		t.Errorf("transaction writes carry different commit timestamps: %d vs %d", rowA.TS, rowB.TS)
	}
}

func TestMasterFailover(t *testing.T) {
	c := newTestCluster(t, 2)
	if !c.master.IsLeader() {
		t.Fatal("initial master not leader")
	}
	standby := c.FailoverMaster()
	if !standby.IsLeader() {
		t.Error("standby did not take over after master death")
	}
	// Cluster still works: server failover handled by the new master.
	cl := c.NewClient()
	cl.Put("users", "profile", []byte{0x05}, []byte("v"))
	if err := c.KillServer(c.LiveServers()[0]); err != nil {
		t.Fatalf("KillServer under new master: %v", err)
	}
	if _, err := cl.Get("users", "profile", []byte{0x05}); err != nil {
		t.Errorf("data lost across master+server failover: %v", err)
	}
}

func TestConcurrentClientsScale(t *testing.T) {
	c := newTestCluster(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient()
			for i := 0; i < 100; i++ {
				key := []byte{byte((w*100 + i) % 256), byte(i)}
				if err := cl.Put("users", "activity", key, []byte("x")); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Get("users", "activity", key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCheckpointAndRecoverAllServers(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	for i := 0; i < 60; i++ {
		cl.Put("users", "profile", []byte{byte(i * 4), byte(i)}, []byte("v"))
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := c.CompactAll(); err != nil {
		t.Fatalf("CompactAll: %v", err)
	}
	for i := 0; i < 60; i++ {
		if _, err := cl.Get("users", "profile", []byte{byte(i * 4), byte(i)}); err != nil {
			t.Fatalf("Get %d after compact: %v", i, err)
		}
	}
}

func TestKillLastServerFails(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.KillServer("ts00"); err == nil {
		t.Error("killing the only server should fail (no survivors)")
	}
}

func TestUnknownTableErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	cl := c.NewClient()
	if err := cl.Put("nope", "g", []byte("k"), nil); err == nil {
		t.Error("Put to unknown table succeeded")
	}
	if err := c.CreateTable(TableSpec{Name: "users", Groups: []string{"x"}}); err == nil {
		t.Error("duplicate CreateTable succeeded")
	}
}
