package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRetryPolicyDelaySchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}.withDefaults()
	// No jitter (rng nil): pure doubling capped at MaxDelay.
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if d := p.delay(i+1, nil); d != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5}.withDefaults()
	rng := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 6; attempt++ {
		full := p.delay(attempt, nil)
		for i := 0; i < 50; i++ {
			d := p.delay(attempt, rng)
			if d > full || d < full/2 {
				t.Fatalf("jittered delay(%d) = %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

func TestRetryPolicyDeterministicWithSeed(t *testing.T) {
	p := defaultRetryPolicy
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 12; attempt++ {
		if da, db := p.delay(attempt, a), p.delay(attempt, b); da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, da, db)
		}
	}
}

func TestRetrySleepHonoursContext(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: time.Second}.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.sleep(ctx, 1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sleep under expired deadline returned %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("sleep ignored the deadline, blocked %v", took)
	}
}

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	b := newBreakers(3, 10*time.Millisecond)
	const target = "server:ts99"
	if !b.allow(target) {
		t.Fatal("fresh target disallowed")
	}
	b.failure(target)
	b.failure(target)
	if !b.allow(target) {
		t.Fatal("breaker opened below threshold")
	}
	b.failure(target) // third consecutive failure: opens
	if b.allow(target) {
		t.Fatal("breaker did not open at threshold")
	}
	if n := b.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}
	// Before the probe window: still rejected.
	if b.allow(target) {
		t.Fatal("open breaker admitted before probeAfter")
	}
	time.Sleep(12 * time.Millisecond)
	// Probe window elapsed: exactly one probe admitted.
	if !b.allow(target) {
		t.Fatal("no probe admitted after probeAfter")
	}
	if b.allow(target) {
		t.Fatal("second probe admitted while first in flight")
	}
	// Failed probe re-opens; successful probe closes.
	b.failure(target)
	if b.allow(target) {
		t.Fatal("failed probe did not re-open")
	}
	time.Sleep(12 * time.Millisecond)
	if !b.allow(target) {
		t.Fatal("no probe after re-open window")
	}
	b.success(target)
	if !b.allow(target) || b.openCount() != 0 {
		t.Fatal("successful probe did not close the breaker")
	}
	// Closed again: a single failure does not re-open (streak reset).
	b.failure(target)
	if !b.allow(target) {
		t.Fatal("one failure after close re-opened the breaker")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreakers(3, time.Millisecond)
	const target = "replica:ts00.r0"
	b.failure(target)
	b.failure(target)
	b.success(target)
	b.failure(target)
	b.failure(target)
	if !b.allow(target) {
		t.Fatal("streak not reset by interleaved success")
	}
}

func TestBreakerNoteClassifiesErrors(t *testing.T) {
	b := newBreakers(1, time.Minute)
	// Routing errors count as failure...
	b.note("replica:x", ErrServerDown)
	if b.allow("replica:x") {
		t.Fatal("ErrServerDown did not open (threshold 1)")
	}
	// ...but app-level errors mean the target responded.
	b.note("replica:y", core.ErrNotFound)
	if !b.allow("replica:y") {
		t.Fatal("ErrNotFound treated as target failure")
	}
	// Server breakers additionally forgive tablet-level routing errors:
	// ErrUnknownTablet is the server answering about a moved tablet.
	b.noteServer("z", core.ErrUnknownTablet)
	if !b.allow("server:z") {
		t.Fatal("ErrUnknownTablet counted against the server breaker")
	}
	b.noteServer("z", ErrServerDown)
	if b.allow("server:z") {
		t.Fatal("ErrServerDown did not count against the server breaker")
	}
}

// setServerAlive simulates the window between a server's session
// expiring and the master completing failover — routing still points
// at the server, but it is unreachable (ServerFor → ErrServerDown).
// KillServer can't model this: it runs the whole failover
// synchronously.
func setServerAlive(c *Cluster, id string, alive bool) {
	c.mu.Lock()
	c.servers[id].alive = alive
	c.mu.Unlock()
}

func ownerOf(t *testing.T, c *Cluster, cl *Client, key []byte) string {
	t.Helper()
	tab, err := cl.TabletFor("users", key)
	if err != nil {
		t.Fatalf("TabletFor: %v", err)
	}
	owner, ok := c.Assignments()[tab]
	if !ok {
		t.Fatalf("tablet %s unassigned", tab)
	}
	return owner
}

// TestBreakerOpensAgainstUnreachableServer drives the integrated path:
// an unreachable-but-still-assigned server opens its breaker through
// real failed routing attempts (gauge observable); once it heals, a
// probe closes the breaker and ops converge.
func TestBreakerOpensAgainstUnreachableServer(t *testing.T) {
	c := newTestCluster(t, 3)
	defer c.Close()
	cl := c.NewClient()
	key := []byte("user00")
	if err := cl.Put("users", "profile", key, []byte("v0")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	owner := ownerOf(t, c, cl, key)

	setServerAlive(c, owner, false)
	// A cold-cache client must resolve the owner through ServerFor,
	// where every attempt fails ErrServerDown; the retry loop exhausts
	// its budget and the breaker accumulates the failures (default
	// threshold 5 < default 12 attempts). The first client's cached
	// *core.Server handle would bypass routing entirely — in-process
	// servers don't stop serving, only routing observes liveness.
	cl = c.NewClient()
	if _, err := cl.Get("users", "profile", key); !errors.Is(err, ErrServerDown) {
		t.Fatalf("Get against unreachable server = %v, want ErrServerDown", err)
	}
	if n := c.breakers.openCount(); n == 0 {
		t.Fatal("breaker gauge still zero after routed attempts against an unreachable server")
	}

	// Server heals: the probe admitted after the window succeeds,
	// closes the breaker, and the row is readable again. The retry
	// loop's later backoffs (cap 8ms) outlast the probe window (2ms),
	// so one op converges.
	setServerAlive(c, owner, true)
	row, err := cl.Get("users", "profile", key)
	if err != nil || string(row.Value) != "v0" {
		t.Fatalf("Get after heal = %+v err=%v", row, err)
	}
	deadline := time.Now().Add(time.Second)
	for c.breakers.openCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker still open (%d) after successful ops", c.breakers.openCount())
		}
		cl.Get("users", "profile", key)
		time.Sleep(time.Millisecond)
	}
}

func TestRetryAttemptCounterAdvances(t *testing.T) {
	c := newTestCluster(t, 2)
	defer c.Close()
	cl := c.NewClient()
	key := []byte("user02")
	if err := cl.Put("users", "profile", key, []byte("v0")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	owner := ownerOf(t, c, cl, key)

	before := findCounter(t, c, "logbase_retry_attempts_total")
	setServerAlive(c, owner, false)
	cl = c.NewClient()              // cold cache: routing observes the outage
	cl.Get("users", "profile", key) // exhausts the attempt budget
	setServerAlive(c, owner, true)
	after := findCounter(t, c, "logbase_retry_attempts_total")
	if after <= before {
		t.Fatalf("logbase_retry_attempts_total did not advance: %v -> %v", before, after)
	}
}

// findCounter reads a metric value from the cluster registry dump.
func findCounter(t *testing.T, c *Cluster, name string) float64 {
	t.Helper()
	for _, m := range c.Metrics().Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}
