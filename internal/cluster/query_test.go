package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

func newQueryCluster(t *testing.T, servers int) *Cluster {
	t.Helper()
	c, err := New(t.TempDir(), Config{
		NumServers: servers,
		Tables:     []TableSpec{{Name: "metrics", Groups: []string{"v"}}},
		Server:     core.Config{SegmentSize: 1 << 20},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c
}

func loadMetrics(t *testing.T, c *Cluster, n int) {
	t.Helper()
	cl := c.NewClient()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("m%06d", (i*7919)%n)) // spread across tablets
		if err := cl.Put("metrics", "v", key, []byte(strconv.Itoa(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
}

// ClusterQuery must return identical aggregates to a serial single-node
// style scan at the same timestamp — the acceptance check for the
// scatter-gather path.
func TestClusterQueryMatchesSerialScan(t *testing.T) {
	c := newQueryCluster(t, 4)
	const n = 2000
	loadMetrics(t, c, n)
	ts := c.Coord().LastTimestamp()

	// Serial reference: ordered scan over every tablet at the same ts.
	var refRows int64
	var refSum float64
	cl := c.NewClient()
	if err := cl.Scan(context.Background(), "metrics", "v", nil, nil, func(r core.Row) bool {
		refRows++
		v, _ := strconv.ParseFloat(string(r.Value), 64)
		refSum += v
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if refRows != n {
		t.Fatalf("reference scan saw %d rows, want %d", refRows, n)
	}

	res, err := c.ClusterQuery(context.Background(), "metrics", "v", query.Query{
		Aggs:    []query.Agg{{Kind: query.Count}, {Kind: query.Sum, Extract: query.FloatValue}},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("ClusterQuery: %v", err)
	}
	if res.TS != ts {
		t.Fatalf("res.TS = %d, want %d", res.TS, ts)
	}
	if res.Rows != refRows || res.Value(0, query.Count) != float64(refRows) || res.Value(1, query.Sum) != refSum {
		t.Fatalf("scatter-gather rows=%d sum=%g, serial rows=%d sum=%g",
			res.Rows, res.Value(1, query.Sum), refRows, refSum)
	}
}

func TestClusterQueryAtTimeTravel(t *testing.T) {
	c := newQueryCluster(t, 3)
	loadMetrics(t, c, 600)
	ts := c.Coord().LastTimestamp()

	q := query.Query{Aggs: []query.Agg{{Kind: query.Sum, Extract: query.FloatValue}}}
	before, err := c.QueryAt(context.Background(), "metrics", "v", ts, q)
	if err != nil {
		t.Fatalf("QueryAt: %v", err)
	}

	// Keep writing after the pin; the pinned query must not move.
	cl := c.NewClient()
	for i := 0; i < 200; i++ {
		if err := cl.Put("metrics", "v", []byte(fmt.Sprintf("m%06d", i)), []byte("1000000")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	again, err := c.QueryAt(context.Background(), "metrics", "v", ts, q)
	if err != nil {
		t.Fatalf("QueryAt: %v", err)
	}
	if again.Rows != before.Rows || again.Value(0, query.Sum) != before.Value(0, query.Sum) {
		t.Fatalf("time travel drifted: %v vs %v", again, before)
	}
	now, err := c.Query(context.Background(), "metrics", "v", q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if now.Value(0, query.Sum) <= before.Value(0, query.Sum) {
		t.Fatalf("current query sum %g not greater than pinned %g", now.Value(0, query.Sum), before.Value(0, query.Sum))
	}
}

func TestClusterQueryGroupByAcrossServers(t *testing.T) {
	c := newQueryCluster(t, 3)
	const n = 900
	loadMetrics(t, c, n)
	res, err := c.Query(context.Background(), "metrics", "v", query.Query{
		GroupBy: func(r core.Row) string { return string(r.Key[:2]) }, // "m0".."m8" bucket by leading digit
		Aggs:    []query.Agg{{Kind: query.Count}},
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var total int64
	for _, g := range res.Groups {
		total += g.Rows
	}
	if total != n || res.Rows != n {
		t.Fatalf("group rows total %d, want %d", total, n)
	}
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i-1].Key >= res.Groups[i].Key {
			t.Fatalf("groups unsorted: %q >= %q", res.Groups[i-1].Key, res.Groups[i].Key)
		}
	}
}

func TestClusterQueryKeyRangeRouting(t *testing.T) {
	c := newQueryCluster(t, 4)
	const n = 1000
	loadMetrics(t, c, n)
	res, err := c.Query(context.Background(), "metrics", "v", query.Query{
		Filter: query.Filter{Start: []byte("m000100"), End: []byte("m000200")},
		Aggs:   []query.Agg{{Kind: query.Count}},
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rows != 100 {
		t.Fatalf("range query rows = %d, want 100", res.Rows)
	}
}

func TestClusterSnapshotScan(t *testing.T) {
	c := newQueryCluster(t, 3)
	loadMetrics(t, c, 300)
	snap, err := c.SnapshotAt("metrics", 0)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	seen := 0
	if err := snap.Scan(context.Background(), "v", query.Filter{}, func(core.Row) bool { seen++; return true }); err != nil {
		t.Fatalf("snap.Scan: %v", err)
	}
	if seen != 300 {
		t.Fatalf("snapshot scan saw %d rows, want 300", seen)
	}
}

// Group commit enabled on the cluster path: concurrent clients batch
// into shared log writes, and everything they wrote is durable,
// readable, and visible to the analytic path.
func TestClusterGroupCommitPath(t *testing.T) {
	c, err := New(t.TempDir(), Config{
		NumServers: 3,
		Tables:     []TableSpec{{Name: "metrics", Groups: []string{"v"}}},
		Server: core.Config{
			SegmentSize:      1 << 20,
			GroupCommit:      true,
			GroupCommitBatch: 16,
			GroupCommitDelay: 50 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := cl.Put("metrics", "v", key, []byte("1")); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent Put: %v", err)
	}

	cl := c.NewClient()
	for w := 0; w < writers; w++ {
		key := []byte(fmt.Sprintf("w%02d-%04d", w, per-1))
		if _, err := cl.Get("metrics", "v", key); err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
	}
	res, err := c.Query(context.Background(), "metrics", "v", query.Query{Aggs: []query.Agg{{Kind: query.Count}}})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rows != writers*per {
		t.Fatalf("count = %d, want %d", res.Rows, writers*per)
	}
}
