package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/readopt"
	"repro/internal/txn"
)

// Client is a routing client: it caches the tablet map and refreshes it
// when stale (paper §3.3 — metadata "cached for later use and hence only
// need to be looked up for the first time or when the cache is stale").
// Clients are cheap; create one per benchmark worker.
type Client struct {
	c *Cluster

	// cached routing state.
	epoch   int64
	routers map[string]*partition.Router
	owners  map[string]*core.Server

	// Refreshes counts metadata cache refreshes (tests observe it).
	Refreshes int

	// span, when set, receives routing annotations (stale retries) for
	// the operation in flight. Point ops carry no context, so the owner
	// parks the active request span here around each call; clients are
	// used by one goroutine at a time, which makes this safe.
	span *obs.Span

	// rng drives backoff jitter. Seeded deterministically per client
	// (cluster-wide sequence), so retry schedules replay under a fixed
	// fault seed; single-goroutine use makes the unlocked source safe.
	rng *rand.Rand
}

// SetSpan parks the active request span for routing annotations; call
// with nil when the operation completes.
func (cl *Client) SetSpan(sp *obs.Span) { cl.span = sp }

// Tracer returns the cluster's slow-op tracer (nil when tracing is
// off).
func (cl *Client) Tracer() *obs.Tracer { return cl.c.tracer }

// NewClient creates a client with a warm metadata cache.
func (c *Cluster) NewClient() *Client {
	cl := &Client{
		c:   c,
		rng: rand.New(rand.NewSource(0x6c6f67 ^ c.clientSeq.Add(1))),
	}
	cl.refresh()
	return cl
}

func (cl *Client) refresh() {
	cl.epoch = cl.c.Epoch()
	cl.routers = make(map[string]*partition.Router)
	cl.owners = make(map[string]*core.Server)
	cl.Refreshes++
}

func (cl *Client) rpc() {
	if d := cl.c.cfg.RPCLatency; d > 0 {
		time.Sleep(d)
	}
}

// route resolves (table, key) to the owning server and tablet id via
// the cached metadata, refreshing once on staleness.
func (cl *Client) route(table string, key []byte) (*core.Server, string, error) {
	for attempt := 0; ; attempt++ {
		r, ok := cl.routers[table]
		if !ok {
			router, err := cl.c.Router(table)
			if err != nil {
				return nil, "", err
			}
			cl.routers[table] = router
			r = router
		}
		tab, ok := r.Lookup(key)
		if !ok {
			return nil, "", errors.New("cluster: key outside table keyspace")
		}
		srv, ok := cl.owners[tab.ID]
		if !ok {
			s, err := cl.c.ServerFor(tab.ID)
			if err != nil {
				return nil, "", err
			}
			cl.owners[tab.ID] = s
			srv = s
		}
		// Stale cache: the tablet moved since we cached its owner.
		if cl.epoch != cl.c.Epoch() && attempt == 0 {
			cl.refresh()
			continue
		}
		return srv, tab.ID, nil
	}
}

// readTarget substitutes a qualifying read replica of the resolved
// primary for a pinned snapshot read (Cluster.replicaFor): watermark
// covers ts, healthy, within any MaxLag bound, breaker admitting.
// Callers only consult it on the first attempt — every retry goes
// straight to the primary, the always-correct fallback. The returned
// note func MUST be called with the read's outcome so the chosen
// target's circuit breaker observes it.
func (cl *Client) readTarget(srv *core.Server, ts int64, ro readopt.Options) (*core.Server, func(error)) {
	if rep := cl.c.replicaFor(srv.ID(), ts, ro); rep != nil {
		target := "replica:" + rep.BaseID()
		return rep.Server(), func(err error) { cl.c.breakers.note(target, err) }
	}
	id := srv.ID()
	return srv, func(err error) { cl.c.breakers.noteServer(id, err) }
}

// retryableRouting reports whether err means "routing metadata is
// stale or about to change": a moved/split tablet, a dead server, or a
// tablet frozen for a migration cutover (ErrTabletFrozen wraps
// ErrUnknownTablet).
func retryableRouting(err error) bool {
	return errors.Is(err, core.ErrUnknownTablet) || errors.Is(err, ErrServerDown)
}

// retryStale runs op under the cluster's unified RetryPolicy,
// refreshing the metadata cache and backing off (exponential,
// jittered) while the op keeps hitting a moved/frozen tablet or a dead
// server. A split or failover invalidates the cache instantly (one
// refresh suffices), but a live-migration cutover has a window where
// the source already rejects mutations (ErrTabletFrozen) and the
// routing flip has not landed yet — backoff rides that window out.
// Each op outcome feeds the owning server's circuit breaker.
func (cl *Client) retryStale(table string, key []byte, op func(srv *core.Server, tablet string) error) error {
	pol := cl.c.retry
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			cl.refresh()
			cl.c.obsStaleRetries.Inc()
			cl.c.obsRetryAttempts.Inc()
			cl.span.Label("retry", fmt.Sprintf("attempt=%d err=%v", attempt, err))
			pol.sleep(nil, attempt, cl.rng)
		}
		var srv *core.Server
		var tab string
		srv, tab, err = cl.route(table, key)
		if err == nil {
			err = op(srv, tab)
			cl.c.breakers.noteServer(srv.ID(), err)
		}
		if err == nil || !retryableRouting(err) {
			return err
		}
	}
	return err
}

// Put writes a row version into a column group (auto-commit); the
// version timestamp comes from the global timestamp authority.
func (cl *Client) Put(table, group string, key, value []byte) error {
	cl.rpc()
	ts := cl.c.svc.NextTimestamp()
	return cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		return srv.Write(tablet, group, key, ts, value)
	})
}

// Get reads the latest version of a row in a column group.
func (cl *Client) Get(table, group string, key []byte) (core.Row, error) {
	cl.rpc()
	var row core.Row
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		r, err := srv.Get(tablet, group, key)
		row = r
		return err
	})
	return row, err
}

// GetAt reads the row version visible at snapshot ts. A replica whose
// watermark covers ts serves it (first attempt; any routing failure
// falls back to the primary).
func (cl *Client) GetAt(table, group string, key []byte, ts int64) (core.Row, error) {
	cl.rpc()
	var row core.Row
	first := true
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		if first {
			first = false
			if rep := cl.c.replicaFor(srv.ID(), ts, readopt.Options{}); rep != nil {
				r, rerr := rep.Server().GetAt(tablet, group, key, ts)
				cl.c.breakers.note("replica:"+rep.BaseID(), rerr)
				if !retryableRouting(rerr) {
					row = r
					return rerr
				}
			}
		}
		r, err := srv.GetAt(tablet, group, key, ts)
		row = r
		return err
	})
	return row, err
}

// GetRow reconstructs a full tuple by collecting the row from every
// column group using the primary key (paper §3.2 tuple reconstruction).
func (cl *Client) GetRow(table string, key []byte) (map[string]core.Row, error) {
	out := make(map[string]core.Row)
	for _, g := range cl.c.Groups(table) {
		row, err := cl.Get(table, g, key)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				continue
			}
			return nil, err
		}
		out[g] = row
	}
	if len(out) == 0 {
		return nil, core.ErrNotFound
	}
	return out, nil
}

// Versions returns all stored versions of a row, oldest first, from
// the tablet server owning the key (multiversion access has no
// embedded-only privilege: the cluster keeps every version too).
func (cl *Client) Versions(table, group string, key []byte) ([]core.Row, error) {
	cl.rpc()
	var rows []core.Row
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		r, err := srv.Versions(tablet, group, key)
		rows = r
		return err
	})
	return rows, err
}

// Delete removes a row from a column group.
func (cl *Client) Delete(table, group string, key []byte) error {
	cl.rpc()
	ts := cl.c.svc.NextTimestamp()
	return cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		return srv.Delete(tablet, group, key, ts)
	})
}

// Scan streams the latest version of each key in [start, end) across
// all tablets the range spans, in key order (sub-ranges execute
// per-server, paper §3.6.4). Cancelling ctx aborts the scan within one
// batch boundary and returns ctx.Err(). It is the no-options adapter
// over ScanOpts.
func (cl *Client) Scan(ctx context.Context, table, group string, start, end []byte, fn func(core.Row) bool) error {
	return cl.ScanOpts(ctx, table, group, start, end, readopt.Options{}, fn)
}

// errStopScan signals "fn asked to stop": a clean early end, not a
// failure.
var errStopScan = errors.New("cluster: scan consumer stopped")

// ScanOpts streams the rows of [start, end) matching the push-down
// options across every tablet the range spans. The options are
// evaluated INSIDE each tablet server (core.ReadScanOptions): a
// limited or filtered scan ships only surviving rows, and stops
// issuing log reads once the cross-tablet limit is satisfied.
//
// Row order is ascending key order — descending with ro.Reverse, which
// visits tablets in reverse range order and walks each tablet's index
// backwards. The snapshot is pinned once up front (ro.Snapshot, 0 =
// latest), so the stream is consistent even across stale-routing
// retries: like Scan, a tablet-start routing error (split/move/
// failover between the router read and the scan) retries the REMAINING
// range with fresh metadata — resuming at the failing tablet's range
// start (its range end for reverse scans), so completed tablets are
// never re-streamed and the limit never double-counts.
func (cl *Client) ScanOpts(ctx context.Context, table, group string, start, end []byte, ro readopt.Options, fn func(core.Row) bool) error {
	cl.rpc()
	ts := ro.Snapshot
	if ts == 0 {
		ts = cl.c.svc.LastTimestamp()
	}
	// Fold the prefix into the routing bounds once; per-server options
	// then re-clamp harmlessly.
	start, end = ro.ClampRange(start, end)
	ro.Prefix = nil
	remaining := ro.Limit
	pol := cl.c.retry
	for attempt := 0; ; attempt++ {
		router, err := cl.c.Router(table)
		if err != nil {
			return err
		}
		tabs := router.Overlapping(start, end)
		if ro.Reverse {
			slices.Reverse(tabs)
		}
		stale := false
		for _, tab := range tabs {
			perTablet := ro
			perTablet.Limit = remaining
			srv, err := cl.c.ServerFor(tab.ID)
			if err == nil {
				target, note := srv, func(e error) { cl.c.breakers.noteServer(srv.ID(), e) }
				if attempt == 0 {
					// Pinned scans are replica territory; retries stay on
					// the primary.
					target, note = cl.readTarget(srv, ts, ro)
				}
				sent := 0
				err = target.ParallelScan(ctx, tab.ID, group, core.ReadScanOptions(start, end, ts, perTablet), func(rows []core.Row) error {
					for _, r := range rows {
						if !fn(r) {
							return errStopScan
						}
						sent++
					}
					return nil
				})
				note(err)
				if remaining > 0 {
					if remaining -= sent; remaining <= 0 && err == nil {
						return nil
					}
				}
				if err == nil {
					continue
				}
				if errors.Is(err, errStopScan) {
					return nil
				}
			}
			if !retryableRouting(err) || attempt >= pol.MaxAttempts {
				return err
			}
			// Resume from this tablet's slice of the request range:
			// forward scans have fully streamed every tablet before it,
			// reverse scans every tablet above it.
			cl.c.obsScanResumes.Inc()
			cl.c.obsRetryAttempts.Inc()
			obs.FromContext(ctx).Label("resume", fmt.Sprintf("tablet=%s attempt=%d err=%v", tab.ID, attempt, err))
			if ro.Reverse {
				if tab.Range.End != nil && (end == nil || bytes.Compare(tab.Range.End, end) < 0) {
					end = tab.Range.End
				}
			} else if len(tab.Range.Start) > 0 && (len(start) == 0 || bytes.Compare(tab.Range.Start, start) > 0) {
				start = tab.Range.Start
			}
			stale = true
			break
		}
		if !stale {
			return nil
		}
		if err := pol.sleep(ctx, attempt+1, cl.rng); err != nil {
			return err
		}
	}
}

// Read is the unified point read evaluated at the owning tablet server
// (core.Server.ReadRow): the visible version at ro.Snapshot, or every
// version with ro.AllVersions, filtered and limited server-side. Reads
// pinned with ro.Snapshot route to a caught-up replica of the owner
// (first attempt only); latest-timestamp reads — ro.Snapshot 0,
// resolved inside the server — always hit the primary.
func (cl *Client) Read(table, group string, key []byte, ro readopt.Options) ([]core.Row, error) {
	cl.rpc()
	var rows []core.Row
	first := true
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		if first {
			first = false
			if rep := cl.c.replicaFor(srv.ID(), ro.Snapshot, ro); rep != nil {
				r, rerr := rep.Server().ReadRow(tablet, group, key, ro)
				cl.c.breakers.note("replica:"+rep.BaseID(), rerr)
				if !retryableRouting(rerr) {
					rows = r
					return rerr
				}
			}
		}
		r, err := srv.ReadRow(tablet, group, key, ro)
		rows = r
		return err
	})
	return rows, err
}

// FullScan streams every live row of a table's column group; tablets
// are scanned sequentially here, and the bench harness fans out one
// goroutine per server for the parallel-scan experiments. Cancelling
// ctx aborts the scan within one batch boundary. It is the no-options
// adapter over FullScanOpts.
func (cl *Client) FullScan(ctx context.Context, table, group string, fn func(core.Row) bool) error {
	return cl.FullScanOpts(ctx, table, group, readopt.Options{}, fn)
}

// FullScanOpts streams live rows of the table's column group in log
// order per tablet, with the push-down options (snapshot pinning,
// prefix/key/value predicates, limit) evaluated inside each tablet
// server (core.Server.FullScanOpts). The limit is tracked across
// tablets, so the sweep stops as soon as enough surviving rows have
// streamed cluster-wide.
func (cl *Client) FullScanOpts(ctx context.Context, table, group string, ro readopt.Options, fn func(core.Row) bool) error {
	cl.rpc()
	if ro.Snapshot == 0 {
		// Pin now so stale-routing retries replay the same snapshot.
		ro.Snapshot = cl.c.svc.LastTimestamp()
	}
	remaining := ro.Limit
	// Coverage-tracking retry: on a tablet-start routing error the
	// router is re-read, and tablets whose key range is already covered
	// by a completed per-tablet scan are skipped — a tablet that split
	// mid-iteration re-appears as children, which are each contained in
	// (and so deduplicated against) the scanned parent range.
	var done []partition.Range
	pol := cl.c.retry
	for attempt := 0; ; attempt++ {
		router, err := cl.c.Router(table)
		if err != nil {
			return err
		}
		tablets := router.Tablets()
		sort.Slice(tablets, func(i, j int) bool { return tablets[i].ID < tablets[j].ID })
		stale := false
		for _, tab := range tablets {
			if rangeCovered(done, tab.Range) {
				continue
			}
			perTablet := ro
			perTablet.Limit = remaining
			srv, err := cl.c.ServerFor(tab.ID)
			if err == nil {
				target, note := srv, func(e error) { cl.c.breakers.noteServer(srv.ID(), e) }
				if attempt == 0 {
					target, note = cl.readTarget(srv, ro.Snapshot, ro)
				}
				stop, sent := false, 0
				err = target.FullScanOpts(ctx, tab.ID, group, perTablet, func(r core.Row) bool {
					if !fn(r) {
						stop = true
						return false
					}
					sent++
					return true
				})
				note(err)
				if err == nil {
					if remaining > 0 {
						if remaining -= sent; remaining <= 0 {
							return nil
						}
					}
					if stop {
						return nil
					}
					done = append(done, tab.Range)
					continue
				}
			}
			if !retryableRouting(err) || attempt >= pol.MaxAttempts {
				return err
			}
			cl.c.obsScanResumes.Inc()
			cl.c.obsRetryAttempts.Inc()
			obs.FromContext(ctx).Label("resume", fmt.Sprintf("tablet=%s attempt=%d err=%v", tab.ID, attempt, err))
			stale = true
			break
		}
		if !stale {
			return nil
		}
		if err := pol.sleep(ctx, attempt+1, cl.rng); err != nil {
			return err
		}
	}
}

// rangeCovered reports whether r is contained in one of the covered
// ranges. Topology only changes by splitting and moving, so a fresh
// tablet's range is either contained in a previously scanned range or
// disjoint from it — single-range containment is a complete check.
func rangeCovered(covered []partition.Range, r partition.Range) bool {
	for _, c := range covered {
		startOK := len(c.Start) == 0 || (len(r.Start) > 0 && bytes.Compare(c.Start, r.Start) <= 0)
		endOK := c.End == nil || (r.End != nil && bytes.Compare(r.End, c.End) <= 0)
		if startOK && endOK {
			return true
		}
	}
	return false
}

// LookupSecondary returns rows of a cluster-registered secondary index
// (Cluster.RegisterSecondaryIndex) whose extracted attribute equals
// secKey, in primary-key order. Each tablet's slice of the index lives
// on its owning server; Router.Tablets() returns tablets in key order,
// so concatenating per-tablet results keeps the global order.
func (cl *Client) LookupSecondary(name string, secKey []byte) ([]core.Row, error) {
	cl.rpc()
	reg, err := cl.c.secondaryRegistration(name)
	if err != nil {
		return nil, err
	}
	// The gather restarts on stale routing (a tablet split or moved
	// mid-iteration): per-tablet results are buffered, so a restart
	// never emits duplicates.
	pol := cl.c.retry
	for attempt := 0; ; attempt++ {
		router, err := cl.c.Router(reg.table)
		if err != nil {
			return nil, err
		}
		var out []core.Row
		stale := false
		for _, tab := range router.Tablets() {
			srv, err := cl.c.ServerFor(tab.ID)
			if err == nil {
				var rows []core.Row
				rows, err = srv.LookupSecondary(tabletIndexName(name, tab.ID), secKey)
				cl.c.breakers.noteServer(srv.ID(), err)
				if err == nil {
					out = append(out, rows...)
					continue
				}
			}
			if !retryableRouting(err) || attempt >= pol.MaxAttempts {
				return nil, err
			}
			stale = true
			break
		}
		if !stale {
			return out, nil
		}
		cl.c.obsRetryAttempts.Inc()
		pol.sleep(nil, attempt+1, cl.rng)
	}
}

// ScanSecondaryRange streams rows whose extracted attribute falls in
// [start, end), ordered by (attribute, primary key) across the whole
// cluster. Per-tablet streams interleave arbitrarily in attribute
// order, so every match in the range is gathered from every tablet and
// sorted before fn sees the first row — an early stop saves the
// remaining callbacks, not the per-tablet scans. Bound the attribute
// range for large indexes.
func (cl *Client) ScanSecondaryRange(name string, start, end []byte, fn func(secKey []byte, r core.Row) bool) error {
	cl.rpc()
	reg, err := cl.c.secondaryRegistration(name)
	if err != nil {
		return err
	}
	type secRow struct {
		sec []byte
		row core.Row
	}
	var all []secRow
	// Like LookupSecondary, the gather restarts with fresh metadata on
	// stale routing; rows only reach fn after the full gather, so a
	// restart never duplicates.
	pol := cl.c.retry
	for attempt := 0; ; attempt++ {
		router, err := cl.c.Router(reg.table)
		if err != nil {
			return err
		}
		all = all[:0]
		stale := false
		for _, tab := range router.Tablets() {
			srv, err := cl.c.ServerFor(tab.ID)
			if err == nil {
				err = srv.ScanSecondaryRange(tabletIndexName(name, tab.ID), start, end, func(sec []byte, r core.Row) bool {
					all = append(all, secRow{sec: append([]byte(nil), sec...), row: r})
					return true
				})
				cl.c.breakers.noteServer(srv.ID(), err)
			}
			if err != nil {
				if !retryableRouting(err) || attempt >= pol.MaxAttempts {
					return err
				}
				stale = true
				break
			}
		}
		if !stale {
			break
		}
		cl.c.obsRetryAttempts.Inc()
		pol.sleep(nil, attempt+1, cl.rng)
	}
	sort.Slice(all, func(i, j int) bool {
		if c := bytes.Compare(all[i].sec, all[j].sec); c != 0 {
			return c < 0
		}
		return bytes.Compare(all[i].row.Key, all[j].row.Key) < 0
	})
	for _, sr := range all {
		if !fn(sr.sec, sr.row) {
			return nil
		}
	}
	return nil
}

// BatchOp is one mutation of a client-side write batch.
type BatchOp struct {
	Table string
	Group string
	Key   []byte
	Value []byte
	// Delete marks an invalidation instead of a write.
	Delete bool
}

// ApplyBatch routes every mutation to its owning tablet server and
// applies them as ONE append sweep per server (core.Server.ApplyBatch)
// — the cluster bulk-load path. Each mutation gets its own timestamp
// from the global authority; there is no cross-server atomicity (use
// transactions for that). On stale routing only the mutations whose
// sub-batches failed are re-routed and retried once — sub-batches that
// already landed are never re-applied (a blanket retry would append
// duplicate versions). On error, the returned indices identify the
// ops (positions in the input slice) that were NOT durably applied,
// so the caller can retry exactly those; nil indices with a nil error
// means everything applied.
func (cl *Client) ApplyBatch(ops []BatchOp) ([]int, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cl.rpc()
	remaining := make([]int, len(ops))
	for i := range ops {
		remaining[i] = i
	}
	pol := cl.c.retry
	for attempt := 0; ; attempt++ {
		byServer := make(map[*core.Server][]core.BatchWrite)
		idxOf := make(map[*core.Server][]int)
		var order []*core.Server
		var failed []int
		var lastErr error
		for _, oi := range remaining {
			op := ops[oi]
			srv, tab, err := cl.route(op.Table, op.Key)
			if err != nil {
				if retryableRouting(err) {
					failed = append(failed, oi)
					lastErr = err
					continue
				}
				// Non-retryable routing error before anything was applied
				// this attempt: all of remaining is still pending.
				return remaining, err
			}
			if _, ok := byServer[srv]; !ok {
				order = append(order, srv)
			}
			byServer[srv] = append(byServer[srv], core.BatchWrite{
				Tablet: tab, Group: op.Group, Key: op.Key, Value: op.Value,
				TS: cl.c.svc.NextTimestamp(), Delete: op.Delete,
			})
			idxOf[srv] = append(idxOf[srv], oi)
		}
		for j, srv := range order {
			err := srv.ApplyBatch(byServer[srv])
			cl.c.breakers.noteServer(srv.ID(), err)
			if err != nil {
				if retryableRouting(err) {
					failed = append(failed, idxOf[srv]...)
					lastErr = err
					continue
				}
				// Non-retryable: this server's ops plus every not-yet-
				// visited server's ops are unapplied.
				for _, s2 := range order[j:] {
					failed = append(failed, idxOf[s2]...)
				}
				sort.Ints(failed)
				return failed, err
			}
		}
		if len(failed) == 0 {
			return nil, nil
		}
		if attempt >= pol.MaxAttempts-1 {
			sort.Ints(failed)
			return failed, lastErr
		}
		cl.refresh()
		cl.c.obsRetryAttempts.Inc()
		pol.sleep(nil, attempt+1, cl.rng)
		sort.Ints(failed)
		remaining = failed
	}
}

// Txn begins a cluster-wide transaction.
func (cl *Client) Txn() *txn.Txn { return cl.c.txns.Begin() }

// RunTxn executes fn transactionally with conflict retries.
func (cl *Client) RunTxn(fn func(*txn.Txn) error) error {
	return cl.c.txns.RunTxn(20, fn)
}

// TabletFor exposes routing for tests and the transaction examples
// (transactions address tablets directly).
func (cl *Client) TabletFor(table string, key []byte) (string, error) {
	_, tab, err := cl.route(table, key)
	return tab, err
}
