package cluster

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/txn"
)

// Client is a routing client: it caches the tablet map and refreshes it
// when stale (paper §3.3 — metadata "cached for later use and hence only
// need to be looked up for the first time or when the cache is stale").
// Clients are cheap; create one per benchmark worker.
type Client struct {
	c *Cluster

	// cached routing state.
	epoch   int64
	routers map[string]*partition.Router
	owners  map[string]*core.Server

	// Refreshes counts metadata cache refreshes (tests observe it).
	Refreshes int
}

// NewClient creates a client with a warm metadata cache.
func (c *Cluster) NewClient() *Client {
	cl := &Client{c: c}
	cl.refresh()
	return cl
}

func (cl *Client) refresh() {
	cl.epoch = cl.c.Epoch()
	cl.routers = make(map[string]*partition.Router)
	cl.owners = make(map[string]*core.Server)
	cl.Refreshes++
}

func (cl *Client) rpc() {
	if d := cl.c.cfg.RPCLatency; d > 0 {
		time.Sleep(d)
	}
}

// route resolves (table, key) to the owning server and tablet id via
// the cached metadata, refreshing once on staleness.
func (cl *Client) route(table string, key []byte) (*core.Server, string, error) {
	for attempt := 0; ; attempt++ {
		r, ok := cl.routers[table]
		if !ok {
			router, err := cl.c.Router(table)
			if err != nil {
				return nil, "", err
			}
			cl.routers[table] = router
			r = router
		}
		tab, ok := r.Lookup(key)
		if !ok {
			return nil, "", errors.New("cluster: key outside table keyspace")
		}
		srv, ok := cl.owners[tab.ID]
		if !ok {
			s, err := cl.c.ServerFor(tab.ID)
			if err != nil {
				return nil, "", err
			}
			cl.owners[tab.ID] = s
			srv = s
		}
		// Stale cache: the tablet moved since we cached its owner.
		if cl.epoch != cl.c.Epoch() && attempt == 0 {
			cl.refresh()
			continue
		}
		return srv, tab.ID, nil
	}
}

// retryStale runs op, refreshing the metadata cache and retrying once
// if the op hit a moved tablet or a dead server.
func (cl *Client) retryStale(table string, key []byte, op func(srv *core.Server, tablet string) error) error {
	srv, tab, err := cl.route(table, key)
	if err == nil {
		err = op(srv, tab)
	}
	if err != nil && (errors.Is(err, core.ErrUnknownTablet) || errors.Is(err, ErrServerDown)) {
		cl.refresh()
		srv, tab, err = cl.route(table, key)
		if err != nil {
			return err
		}
		return op(srv, tab)
	}
	return err
}

// Put writes a row version into a column group (auto-commit); the
// version timestamp comes from the global timestamp authority.
func (cl *Client) Put(table, group string, key, value []byte) error {
	cl.rpc()
	ts := cl.c.svc.NextTimestamp()
	return cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		return srv.Write(tablet, group, key, ts, value)
	})
}

// Get reads the latest version of a row in a column group.
func (cl *Client) Get(table, group string, key []byte) (core.Row, error) {
	cl.rpc()
	var row core.Row
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		r, err := srv.Get(tablet, group, key)
		row = r
		return err
	})
	return row, err
}

// GetAt reads the row version visible at snapshot ts.
func (cl *Client) GetAt(table, group string, key []byte, ts int64) (core.Row, error) {
	cl.rpc()
	var row core.Row
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		r, err := srv.GetAt(tablet, group, key, ts)
		row = r
		return err
	})
	return row, err
}

// GetRow reconstructs a full tuple by collecting the row from every
// column group using the primary key (paper §3.2 tuple reconstruction).
func (cl *Client) GetRow(table string, key []byte) (map[string]core.Row, error) {
	out := make(map[string]core.Row)
	for _, g := range cl.c.Groups(table) {
		row, err := cl.Get(table, g, key)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				continue
			}
			return nil, err
		}
		out[g] = row
	}
	if len(out) == 0 {
		return nil, core.ErrNotFound
	}
	return out, nil
}

// Versions returns all stored versions of a row, oldest first, from
// the tablet server owning the key (multiversion access has no
// embedded-only privilege: the cluster keeps every version too).
func (cl *Client) Versions(table, group string, key []byte) ([]core.Row, error) {
	cl.rpc()
	var rows []core.Row
	err := cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		r, err := srv.Versions(tablet, group, key)
		rows = r
		return err
	})
	return rows, err
}

// Delete removes a row from a column group.
func (cl *Client) Delete(table, group string, key []byte) error {
	cl.rpc()
	ts := cl.c.svc.NextTimestamp()
	return cl.retryStale(table, key, func(srv *core.Server, tablet string) error {
		return srv.Delete(tablet, group, key, ts)
	})
}

// Scan streams the latest version of each key in [start, end) across
// all tablets the range spans, in key order (sub-ranges execute
// per-server, paper §3.6.4). Cancelling ctx aborts the scan within one
// batch boundary and returns ctx.Err().
func (cl *Client) Scan(ctx context.Context, table, group string, start, end []byte, fn func(core.Row) bool) error {
	cl.rpc()
	router, err := cl.c.Router(table)
	if err != nil {
		return err
	}
	snapshot := cl.c.svc.LastTimestamp()
	for _, tab := range router.Overlapping(start, end) {
		srv, err := cl.c.ServerFor(tab.ID)
		if err != nil {
			return err
		}
		stop := false
		if err := srv.Scan(ctx, tab.ID, group, start, end, snapshot, func(r core.Row) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// FullScan streams every live row of a table's column group; tablets
// are scanned sequentially here, and the bench harness fans out one
// goroutine per server for the parallel-scan experiments. Cancelling
// ctx aborts the scan within one batch boundary.
func (cl *Client) FullScan(ctx context.Context, table, group string, fn func(core.Row) bool) error {
	cl.rpc()
	router, err := cl.c.Router(table)
	if err != nil {
		return err
	}
	tablets := router.Tablets()
	sort.Slice(tablets, func(i, j int) bool { return tablets[i].ID < tablets[j].ID })
	for _, tab := range tablets {
		srv, err := cl.c.ServerFor(tab.ID)
		if err != nil {
			return err
		}
		stop := false
		if err := srv.FullScan(ctx, tab.ID, group, func(r core.Row) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// LookupSecondary returns rows of a cluster-registered secondary index
// (Cluster.RegisterSecondaryIndex) whose extracted attribute equals
// secKey, in primary-key order. Each tablet's slice of the index lives
// on its owning server; Router.Tablets() returns tablets in key order,
// so concatenating per-tablet results keeps the global order.
func (cl *Client) LookupSecondary(name string, secKey []byte) ([]core.Row, error) {
	cl.rpc()
	reg, err := cl.c.secondaryRegistration(name)
	if err != nil {
		return nil, err
	}
	router, err := cl.c.Router(reg.table)
	if err != nil {
		return nil, err
	}
	var out []core.Row
	for _, tab := range router.Tablets() {
		srv, err := cl.c.ServerFor(tab.ID)
		if err != nil {
			return nil, err
		}
		rows, err := srv.LookupSecondary(tabletIndexName(name, tab.ID), secKey)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// ScanSecondaryRange streams rows whose extracted attribute falls in
// [start, end), ordered by (attribute, primary key) across the whole
// cluster. Per-tablet streams interleave arbitrarily in attribute
// order, so every match in the range is gathered from every tablet and
// sorted before fn sees the first row — an early stop saves the
// remaining callbacks, not the per-tablet scans. Bound the attribute
// range for large indexes.
func (cl *Client) ScanSecondaryRange(name string, start, end []byte, fn func(secKey []byte, r core.Row) bool) error {
	cl.rpc()
	reg, err := cl.c.secondaryRegistration(name)
	if err != nil {
		return err
	}
	router, err := cl.c.Router(reg.table)
	if err != nil {
		return err
	}
	type secRow struct {
		sec []byte
		row core.Row
	}
	var all []secRow
	for _, tab := range router.Tablets() {
		srv, err := cl.c.ServerFor(tab.ID)
		if err != nil {
			return err
		}
		err = srv.ScanSecondaryRange(tabletIndexName(name, tab.ID), start, end, func(sec []byte, r core.Row) bool {
			all = append(all, secRow{sec: append([]byte(nil), sec...), row: r})
			return true
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if c := bytes.Compare(all[i].sec, all[j].sec); c != 0 {
			return c < 0
		}
		return bytes.Compare(all[i].row.Key, all[j].row.Key) < 0
	})
	for _, sr := range all {
		if !fn(sr.sec, sr.row) {
			return nil
		}
	}
	return nil
}

// BatchOp is one mutation of a client-side write batch.
type BatchOp struct {
	Table string
	Group string
	Key   []byte
	Value []byte
	// Delete marks an invalidation instead of a write.
	Delete bool
}

// ApplyBatch routes every mutation to its owning tablet server and
// applies them as ONE append sweep per server (core.Server.ApplyBatch)
// — the cluster bulk-load path. Each mutation gets its own timestamp
// from the global authority; there is no cross-server atomicity (use
// transactions for that). On stale routing only the mutations whose
// sub-batches failed are re-routed and retried once — sub-batches that
// already landed are never re-applied (a blanket retry would append
// duplicate versions). On error, the returned indices identify the
// ops (positions in the input slice) that were NOT durably applied,
// so the caller can retry exactly those; nil indices with a nil error
// means everything applied.
func (cl *Client) ApplyBatch(ops []BatchOp) ([]int, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cl.rpc()
	remaining := make([]int, len(ops))
	for i := range ops {
		remaining[i] = i
	}
	for attempt := 0; ; attempt++ {
		byServer := make(map[*core.Server][]core.BatchWrite)
		idxOf := make(map[*core.Server][]int)
		var order []*core.Server
		var failed []int
		var lastErr error
		for _, oi := range remaining {
			op := ops[oi]
			srv, tab, err := cl.route(op.Table, op.Key)
			if err != nil {
				if errors.Is(err, core.ErrUnknownTablet) || errors.Is(err, ErrServerDown) {
					failed = append(failed, oi)
					lastErr = err
					continue
				}
				// Non-retryable routing error before anything was applied
				// this attempt: all of remaining is still pending.
				return remaining, err
			}
			if _, ok := byServer[srv]; !ok {
				order = append(order, srv)
			}
			byServer[srv] = append(byServer[srv], core.BatchWrite{
				Tablet: tab, Group: op.Group, Key: op.Key, Value: op.Value,
				TS: cl.c.svc.NextTimestamp(), Delete: op.Delete,
			})
			idxOf[srv] = append(idxOf[srv], oi)
		}
		for j, srv := range order {
			if err := srv.ApplyBatch(byServer[srv]); err != nil {
				if errors.Is(err, core.ErrUnknownTablet) || errors.Is(err, ErrServerDown) {
					failed = append(failed, idxOf[srv]...)
					lastErr = err
					continue
				}
				// Non-retryable: this server's ops plus every not-yet-
				// visited server's ops are unapplied.
				for _, s2 := range order[j:] {
					failed = append(failed, idxOf[s2]...)
				}
				sort.Ints(failed)
				return failed, err
			}
		}
		if len(failed) == 0 {
			return nil, nil
		}
		if attempt >= 1 {
			sort.Ints(failed)
			return failed, lastErr
		}
		cl.refresh()
		sort.Ints(failed)
		remaining = failed
	}
}

// Txn begins a cluster-wide transaction.
func (cl *Client) Txn() *txn.Txn { return cl.c.txns.Begin() }

// RunTxn executes fn transactionally with conflict retries.
func (cl *Client) RunTxn(fn func(*txn.Txn) error) error {
	return cl.c.txns.RunTxn(20, fn)
}

// TabletFor exposes routing for tests and the transaction examples
// (transactions address tablets directly).
func (cl *Client) TabletFor(table string, key []byte) (string, error) {
	_, tab, err := cl.route(table, key)
	return tab, err
}
