package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
)

func TestRPCLatencyInjection(t *testing.T) {
	c, err := New(t.TempDir(), Config{
		NumServers: 2,
		Tables:     []TableSpec{{Name: "t", Groups: []string{"g"}}},
		Server:     core.Config{SegmentSize: 1 << 20},
		DFS:        dfs.Config{BlockSize: 1 << 16},
		RPCLatency: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cl := c.NewClient()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := cl.Put("t", "g", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("5 RPCs with 2ms injected latency took %v", elapsed)
	}
}

func TestScanEarlyStopAcrossTablets(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	for b := 0; b < 256; b += 2 {
		cl.Put("users", "profile", []byte{byte(b)}, []byte("v"))
	}
	n := 0
	err := cl.Scan(context.Background(), "users", "profile", nil, nil, func(core.Row) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 10 {
		t.Errorf("early stop visited %d rows", n)
	}
}

func TestFailoverPreservesMultiversionHistory(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	key := []byte{0x42, 'h'}
	for i := 0; i < 5; i++ {
		cl.Put("users", "profile", key, []byte(fmt.Sprintf("v%d", i)))
	}
	row, err := cl.Get("users", "profile", key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	beforeTS := row.TS

	// Find and kill the owner.
	router, _ := c.Router("users")
	tab, _ := router.Lookup(key)
	owner := c.Assignments()[tab.ID]
	if err := c.KillServer(owner); err != nil {
		t.Fatalf("KillServer: %v", err)
	}

	// Latest version survives with its timestamp.
	row, err = cl.Get("users", "profile", key)
	if err != nil || string(row.Value) != "v4" {
		t.Fatalf("after failover: %+v err=%v", row, err)
	}
	if row.TS != beforeTS {
		t.Errorf("version timestamp changed across failover: %d -> %d", beforeTS, row.TS)
	}
	// Historical versions survive too (RecoverTablets copies the full
	// history, not only the latest version).
	old, err := cl.GetAt("users", "profile", key, beforeTS-1)
	if err != nil || string(old.Value) != "v3" {
		t.Errorf("historical read after failover = %+v err=%v", old, err)
	}
}

func TestGroupsAndEpoch(t *testing.T) {
	c := newTestCluster(t, 2)
	groups := c.Groups("users")
	if len(groups) != 2 {
		t.Errorf("Groups = %v", groups)
	}
	e1 := c.Epoch()
	if err := c.CreateTable(TableSpec{Name: "t2", Groups: []string{"g"}}); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if c.Epoch() == e1 {
		t.Error("epoch unchanged after table creation")
	}
}

func TestClientTabletForStable(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	key := []byte{0x33}
	tab1, err := cl.TabletFor("users", key)
	if err != nil {
		t.Fatalf("TabletFor: %v", err)
	}
	tab2, _ := cl.TabletFor("users", key)
	if tab1 != tab2 {
		t.Errorf("routing unstable: %s vs %s", tab1, tab2)
	}
}
