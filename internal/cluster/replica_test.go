package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/readopt"
)

func newReplicatedCluster(t *testing.T, servers, replicas int) *Cluster {
	t.Helper()
	c, err := New(t.TempDir(), Config{
		NumServers: servers,
		Replicas:   replicas,
		Tables:     []TableSpec{{Name: "t", Groups: []string{"g"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func primaryLogReads(c *Cluster) map[string]int64 {
	out := make(map[string]int64)
	for _, id := range c.LiveServers() {
		out[id] = c.Server(id).Stats().LogReads.Load()
	}
	return out
}

// TestClusterReplicaServesPinnedReads is the cluster half of the
// acceptance criterion: a pinned scan/Query at ts <= watermark is
// served ENTIRELY by replicas (every primary's log-read counter stays
// flat) and returns results identical to the primaries'.
func TestClusterReplicaServesPinnedReads(t *testing.T) {
	c := newReplicatedCluster(t, 2, 1)
	cl := c.NewClient()
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := cl.Put("t", "g", k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Coord().LastTimestamp()
	if err := c.WaitForReplicaTS(ts, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Writes after the pin: replicas must not serve them at ts.
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := cl.Put("t", "g", k, []byte("overwritten")); err != nil {
			t.Fatal(err)
		}
	}

	before := primaryLogReads(c)

	// Pinned scatter scan: replicas must serve every tablet's slice.
	var got []string
	if err := cl.ScanOpts(ctx, "t", "g", nil, nil, readopt.Options{Snapshot: ts}, func(r core.Row) bool {
		got = append(got, string(r.Key)+"="+string(r.Value))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("pinned scan rows = %d, want 200", len(got))
	}
	for i, kv := range got {
		if want := fmt.Sprintf("k%04d=v%d", i, i); kv != want {
			t.Fatalf("row %d = %q, want %q (replica served post-pin state?)", i, kv, want)
		}
	}

	// Pinned scatter-gather query too.
	res, err := c.QueryAt(ctx, "t", "g", ts, query.Query{Aggs: []query.Agg{{Kind: query.Count}}})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Value(0, query.Count); n != 200 {
		t.Fatalf("pinned COUNT = %v, want 200", n)
	}

	for id, n := range primaryLogReads(c) {
		if n != before[id] {
			t.Fatalf("primary %s log reads moved %d -> %d; pinned reads were not served by its replica", id, before[id], n)
		}
	}
	var served int64
	for id, stats := range c.ReplicaStats() {
		for _, st := range stats {
			served += st.ReadsServed
			if st.WatermarkTS < ts {
				t.Fatalf("replica %s of %s watermark %d below pinned ts %d", st.BaseID, id, st.WatermarkTS, ts)
			}
		}
	}
	if served == 0 {
		t.Fatal("no replica served any read")
	}

	// Primary opt-out: the same pinned scan with Primary set moves the
	// primaries' counters.
	if err := cl.ScanOpts(ctx, "t", "g", nil, nil, readopt.Options{Snapshot: ts, Primary: true}, func(core.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	moved := false
	for id, n := range primaryLogReads(c) {
		if n != before[id] {
			moved = true
			_ = id
		}
	}
	if !moved {
		t.Fatal("Primary-pinned scan did not hit any primary")
	}
}

// TestClusterReplicaPromotion kills a primary while pinned reads are in
// flight: the master promotes the dead server's caught-up replica
// (replaying only the unshipped delta), routing flips to it, and the
// pinned snapshot keeps answering identically throughout.
func TestClusterReplicaPromotion(t *testing.T) {
	c := newReplicatedCluster(t, 2, 1)
	cl := c.NewClient()
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := cl.Put("t", "g", k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Coord().LastTimestamp()
	if err := c.WaitForReplicaTS(ts, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Readers hammer the pinned snapshot while the failover runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rcl := c.NewClient()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("k%04d", i%300))
			row, err := rcl.GetAt("t", "g", k, ts)
			if err != nil {
				select {
				case readErr <- fmt.Errorf("GetAt(%s) during failover: %w", k, err):
				default:
				}
				return
			}
			if want := fmt.Sprintf("v%d", i%300); string(row.Value) != want {
				select {
				case readErr <- fmt.Errorf("GetAt(%s) = %q, want %q", k, row.Value, want):
				default:
				}
				return
			}
		}
	}()

	if err := c.KillServer("ts00"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	// The replica was promoted, not scattered: ts00's tablets now belong
	// to its replica's server, registered first-class.
	assign := c.Assignments()
	promoted := false
	for tab, owner := range assign {
		if owner == "ts00" {
			t.Fatalf("tablet %s still assigned to dead ts00", tab)
		}
		if owner == "ts00.r0" {
			promoted = true
		}
	}
	if !promoted {
		t.Fatalf("no tablet promoted to ts00.r0; assignments: %v", assign)
	}
	found := false
	for _, id := range c.LiveServers() {
		if id == "ts00.r0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("promoted server ts00.r0 not live: %v", c.LiveServers())
	}

	// Full pinned result set survives the promotion, including rows
	// whose records only the dead primary's log holds (the delta replay).
	var rows int
	if err := cl.ScanOpts(ctx, "t", "g", nil, nil, readopt.Options{Snapshot: ts}, func(r core.Row) bool {
		rows++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 300 {
		t.Fatalf("post-promotion pinned scan rows = %d, want 300", rows)
	}
	// And writes keep flowing to the promoted owner.
	if err := cl.Put("t", "g", []byte("k0000"), []byte("after")); err != nil {
		t.Fatalf("Put after promotion: %v", err)
	}
	row, err := cl.Get("t", "g", []byte("k0000"))
	if err != nil || string(row.Value) != "after" {
		t.Fatalf("Get after promotion = %q, %v", row.Value, err)
	}
}

// TestClusterReplicaSplitAndMoveMirror drives a tablet split and a live
// migration under replication: replicas mirror the new layout and a
// pinned scan at a pre-split timestamp still answers identically from
// the replicas.
func TestClusterReplicaSplitAndMoveMirror(t *testing.T) {
	c := newReplicatedCluster(t, 2, 1)
	cl := c.NewClient()
	ctx := context.Background()
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := cl.Put("t", "g", k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Coord().LastTimestamp()
	if err := c.WaitForReplicaTS(ts, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Split one tablet, then migrate one of the children.
	var tab string
	for id, owner := range c.Assignments() {
		if owner == "ts00" {
			tab = id
			break
		}
	}
	leftID, _, err := c.SplitTablet(tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MoveTablet(leftID, "ts01"); err != nil {
		t.Fatal(err)
	}

	// ts01's replica adopted the migrated tablet's history from ts00's
	// log; wait until its watermark covers the pin again.
	if err := c.WaitForReplicaTS(ts, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	before := primaryLogReads(c)
	var rows int
	if err := cl.ScanOpts(ctx, "t", "g", nil, nil, readopt.Options{Snapshot: ts}, func(r core.Row) bool {
		rows++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 400 {
		t.Fatalf("pinned scan rows after split+move = %d, want 400", rows)
	}
	for id, n := range primaryLogReads(c) {
		if n != before[id] {
			t.Fatalf("primary %s log reads moved %d -> %d after split+move; replicas did not serve", id, before[id], n)
		}
	}
}
