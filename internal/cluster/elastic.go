package cluster

// Elastic tablet management, cluster side: online tablet split, live
// migration, and the routing-epoch protocol that lets clients converge.
//
// Both operations follow the same shape: do the slow work (index
// partition / log replay) while clients keep routing to the old owner,
// then flip the routing metadata and bump the epoch in one critical
// section under the cluster lock. A client that raced the flip gets
// ErrUnknownTablet/ErrTabletFrozen from the old owner, refreshes its
// metadata cache, and retries against the new routing — the paper's
// §3.3 stale-cache protocol doing elasticity duty.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrTabletTooSmall is returned by SplitTablet when the tablet's index
// cannot yield an interior split key.
var ErrTabletTooSmall = errors.New("cluster: tablet too small to split")

// nextTabletIDLocked allocates a fresh tablet id for a table. Callers
// hold c.mu.
func (c *Cluster) nextTabletIDLocked(table string) string {
	n := c.tabletSeq[table]
	c.tabletSeq[table] = n + 1
	return fmt.Sprintf("%s/%04d", table, n)
}

// rebuildRouterLocked rebuilds a table's router from tabletSpecs.
// Callers hold c.mu.
func (c *Cluster) rebuildRouterLocked(table string) {
	var tablets []partition.Tablet
	for _, spec := range c.tabletSpecs {
		if spec.Table == table {
			tablets = append(tablets, spec)
		}
	}
	c.routers[table] = partition.NewRouter(tablets)
}

// SplitTablet cuts a served tablet in two at a data-driven midpoint
// (the population midpoint of its largest column-group index) and
// installs the children atomically against the routing metadata: the
// server-side index partition and the router/assignment/epoch update
// happen in one critical section, so clients either route to the parent
// (and retry on ErrUnknownTablet after it vanishes) or to a child. No
// log data is copied — both children keep pointing at the parent's
// records in the owner's log.
func (c *Cluster) SplitTablet(tabletID string) (leftID, rightID string, err error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.RLock()
	spec, ok := c.tabletSpecs[tabletID]
	owner := c.assignments[tabletID]
	st := c.servers[owner]
	c.mu.RUnlock()
	if !ok {
		return "", "", fmt.Errorf("cluster: unknown tablet %s", tabletID)
	}
	if st == nil || !st.alive {
		return "", "", fmt.Errorf("%w: %s (tablet %s)", ErrServerDown, owner, tabletID)
	}
	srv := st.srv
	mid, ok := srv.SplitKey(tabletID)
	if !ok {
		return "", "", fmt.Errorf("%w: %s", ErrTabletTooSmall, tabletID)
	}
	lr, rr, err := spec.Range.Split(mid)
	if err != nil {
		return "", "", err
	}

	// Atomic install: server-side index partition plus metadata flip
	// under the cluster lock. The tablet server drains in-flight
	// mutations itself (install latch); holding c.mu across that is a
	// bounded stall for routing lookups, the price of no window where a
	// client can see the child in the router but not on the server.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.assignments[tabletID] != owner { // lost a race with failover
		return "", "", fmt.Errorf("cluster: tablet %s reassigned during split", tabletID)
	}
	left := partition.Tablet{ID: c.nextTabletIDLocked(spec.Table), Table: spec.Table, Range: lr}
	right := partition.Tablet{ID: c.nextTabletIDLocked(spec.Table), Table: spec.Table, Range: rr}
	if err := srv.SplitTablet(tabletID, left, right); err != nil {
		return "", "", err
	}
	delete(c.tabletSpecs, tabletID)
	delete(c.assignments, tabletID)
	c.tabletSpecs[left.ID] = left
	c.tabletSpecs[right.ID] = right
	c.assignments[left.ID] = owner
	c.assignments[right.ID] = owner
	c.rebuildRouterLocked(spec.Table)
	c.epoch++
	// Mirror the split to the owner's replicas inside the same critical
	// section, so a read routed at the new epoch finds the child tablet
	// ids on the replica too. A failed mirror poisons that replica (it
	// stops serving reads); the primary split stands.
	for _, rp := range c.servers[owner].replicas {
		rp.rep.SplitTablet(tabletID, left, right) //nolint:errcheck // poisons the replica itself
	}
	// Cluster-wide secondary indexes are sliced per tablet id; the
	// children need their own slices or lookups on the table break.
	if err := c.reregisterSecondaries(spec.Table, srv, left.ID, right.ID); err != nil {
		return left.ID, right.ID, fmt.Errorf("cluster: split installed but secondary reindex failed: %w", err)
	}
	return left.ID, right.ID, nil
}

// reregisterSecondaries installs the per-tablet slices of every
// registered secondary index covering the table on srv for the given
// tablets, backfilling from the current primary indexes.
func (c *Cluster) reregisterSecondaries(table string, srv *core.Server, tabletIDs ...string) error {
	type namedReg struct {
		name string
		reg  secondaryReg
	}
	c.secMu.RLock()
	var regs []namedReg
	for name, reg := range c.secondary {
		if reg.table == table {
			regs = append(regs, namedReg{name, reg})
		}
	}
	c.secMu.RUnlock()
	for _, r := range regs {
		for _, id := range tabletIDs {
			if err := srv.RegisterSecondaryIndex(tabletIndexName(r.name, id), id, r.reg.group, r.reg.extract); err != nil {
				return err
			}
		}
	}
	return nil
}

// moveCatchupRounds bounds the bulk phase of a live migration; each
// round replays the source log tail appended since the previous round.
const moveCatchupRounds = 16

// moveCutoverLag is the applied-records-per-round threshold below which
// the migration proceeds to cutover: the destination is close enough
// that the frozen tail will be tiny.
const moveCutoverLag = 64

// MoveTablet live-migrates a tablet to another server. The destination
// replays the source's log through a ReplaySession while writes keep
// landing on the source (catch-up rounds); once the destination is
// nearly caught up the source tablet is frozen (mutations drain, then
// fail as retryable stale routing), the final tail is replayed, and the
// routing flips with an epoch bump. Reads are served by the source
// until the flip; writers that hit the freeze window converge on the
// destination through the client's stale-routing retry.
func (c *Cluster) MoveTablet(tabletID, destID string) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.RLock()
	spec, ok := c.tabletSpecs[tabletID]
	srcID := c.assignments[tabletID]
	srcSt := c.servers[srcID]
	destSt := c.servers[destID]
	var groups []string
	if ok {
		groups = append([]string(nil), c.tableGroups[spec.Table]...)
	}
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: unknown tablet %s", tabletID)
	}
	if destID == srcID {
		return nil
	}
	if srcSt == nil || !srcSt.alive {
		return fmt.Errorf("%w: source %s (tablet %s)", ErrServerDown, srcID, tabletID)
	}
	if destSt == nil || !destSt.alive {
		return fmt.Errorf("%w: destination %s", ErrServerDown, destID)
	}
	src, dest := srcSt.srv, destSt.srv

	dest.AddTablet(spec, groups)
	// The destination's replicas declare the tablet before the routing
	// flip: the first post-flip write ships immediately, and a record
	// arriving before its tablet declaration would be skipped for good.
	// Their watermark reads 0 (open topology sync) until the tablet's
	// pre-move history — which lives in the SOURCE's log — is replayed
	// onto them after the flip.
	destReps := c.replicasOf(destID)
	for _, rp := range destReps {
		rp.rep.BeginTopologySync()
		rp.rep.AddTablet(spec, groups)
	}
	abort := func(err error) error {
		src.UnfreezeTablet(tabletID) //nolint:errcheck // rollback; tablet may not be frozen yet
		dest.RemoveTablet(tabletID)
		for _, rp := range destReps {
			rp.rep.RemoveTablet(tabletID)
			rp.rep.EndTopologySync()
		}
		return err
	}
	rs, err := dest.NewReplaySession(src.Log(), wal.Position{}, []partition.Tablet{spec})
	if err != nil {
		return abort(err)
	}
	// Bulk phase: writes keep landing on the source.
	lag := 0
	for i := 0; i < moveCatchupRounds; i++ {
		n, err := rs.CatchUp()
		if err != nil {
			return abort(err)
		}
		lag = n
		if n < moveCutoverLag {
			break
		}
	}
	// Refuse to freeze behind an unbounded tail: if the writer outran
	// every bulk round, a cutover would block mutations for longer than
	// the clients' retry budget. Give up; the balancer will try again
	// on a later tick (or pick a different action).
	if lag >= moveCutoverLag*4 {
		return abort(fmt.Errorf("cluster: migration of %s not converging (%d records in final bulk round)", tabletID, lag))
	}
	// Cutover: drain and block mutations, replay the frozen tail, flip.
	if err := src.FreezeTablet(tabletID); err != nil {
		return abort(err)
	}
	if _, err := rs.CatchUp(); err != nil {
		return abort(err)
	}
	// A cross-server transaction prepared on the source but not yet
	// committed would lose its commit record to the replay bound (2PC
	// commits on a frozen tablet are refused and retried). Live prepared
	// transactions still hold their validation write locks — abort the
	// cutover and let the balancer try again; orphaned prepare records
	// (locks long released) don't block migration.
	if rs.PendingLive(func(tablet, group string, key []byte) bool {
		return c.svc.LockHeld(txn.LockKey(tablet, group, key))
	}) {
		return abort(fmt.Errorf("cluster: tablet %s has in-flight prepared transactions; migration aborted", tabletID))
	}
	// Install the destination's secondary-index slices before the flip,
	// so there is no window where lookups route to an unregistered
	// server (pre-flip lookups still hit the source's slices).
	if err := c.reregisterSecondaries(spec.Table, dest, tabletID); err != nil {
		return abort(err)
	}
	c.mu.Lock()
	if c.assignments[tabletID] != srcID { // lost a race with failover
		c.mu.Unlock()
		return abort(fmt.Errorf("cluster: tablet %s reassigned during migration", tabletID))
	}
	c.assignments[tabletID] = destID
	c.epoch++
	c.mu.Unlock()
	src.RemoveTablet(tabletID)
	// Install the tablet's pre-move history on the destination's
	// replicas from the source's log (frozen above, so one replay covers
	// it all); post-flip writes ship through the destination's feed with
	// disjoint, newer timestamps. The foreign mark pins each replica to
	// the source log's lifetime (no re-bootstrap can rebuild this).
	for _, rp := range destReps {
		rs2, err := rp.rep.Server().NewReplaySession(src.Log(), wal.Position{}, []partition.Tablet{spec})
		if err == nil {
			_, err = rs2.CatchUp()
		}
		if err != nil {
			rp.rep.MarkFailed(fmt.Errorf("cluster: replica backfill of %s from %s: %w", tabletID, srcID, err))
		} else {
			rp.rep.MarkForeign()
		}
		rp.rep.EndTopologySync()
	}
	for _, rp := range c.replicasOf(srcID) {
		rp.rep.RemoveTablet(tabletID)
	}
	return nil
}

// TabletLoads returns every live server's windowed per-tablet load,
// rolling each server's sampling window forward (see
// core.Server.SampleLoad). The balancer is the intended caller; tests
// may use it but should not run a balancer at the same time.
func (c *Cluster) TabletLoads() map[string][]core.TabletLoad {
	out := make(map[string][]core.TabletLoad)
	for _, id := range c.LiveServers() {
		out[id] = c.Server(id).SampleLoad()
	}
	return out
}
