package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/txn"
)

// hotKey renders keys that all land in the low half of the keyspace
// ("u" < 0x80), concentrating load on one tablet of a 2-way table.
func hotKey(i int) []byte { return []byte(fmt.Sprintf("user%06d", i)) }

func newElasticCluster(t *testing.T, servers, tablets int) *Cluster {
	t.Helper()
	c, err := New(t.TempDir(), Config{
		NumServers: servers,
		Tables: []TableSpec{
			{Name: "users", Groups: []string{"profile"}, Tablets: tablets},
		},
		Server: core.Config{SegmentSize: 1 << 20},
		DFS:    dfs.Config{BlockSize: 1 << 16},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSplitTabletOnline(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	cl := c.NewClient()
	const n = 500
	for i := 0; i < n; i++ {
		if err := cl.Put("users", "profile", hotKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := cl.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := c.Epoch()
	left, right, err := c.SplitTablet(hot)
	if err != nil {
		t.Fatalf("SplitTablet: %v", err)
	}
	if c.Epoch() <= epochBefore {
		t.Error("split did not bump the routing epoch")
	}
	asg, _ := c.RoutingSnapshot()
	if _, ok := asg[hot]; ok {
		t.Error("parent tablet still assigned after split")
	}
	if asg[left] == "" || asg[right] == "" {
		t.Fatalf("children unassigned: %v", asg)
	}
	// The STALE client (cached pre-split routing) converges on its own.
	for i := 0; i < n; i++ {
		row, err := cl.Get("users", "profile", hotKey(i))
		if err != nil || string(row.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %d after split = %+v err=%v", i, row, err)
		}
	}
	// Writes through a stale client land in the right child.
	if err := cl.Put("users", "profile", hotKey(n), []byte("post-split")); err != nil {
		t.Fatalf("stale Put after split: %v", err)
	}
	// Ordered scans see every key exactly once across the children.
	seen := map[string]int{}
	fresh := c.NewClient()
	if err := fresh.Scan(context.Background(), "users", "profile", nil, nil, func(r core.Row) bool {
		seen[string(r.Key)]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n+1 {
		t.Fatalf("scan saw %d keys, want %d", len(seen), n+1)
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %s scanned %d times", k, cnt)
		}
	}
}

func TestMoveTabletLiveMigration(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	cl := c.NewClient()
	for i := 0; i < 300; i++ {
		if err := cl.Put("users", "profile", hotKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := cl.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}
	asg, _ := c.RoutingSnapshot()
	src := asg[hot]
	var dest string
	for _, id := range c.LiveServers() {
		if id != src {
			dest = id
		}
	}
	if err := c.MoveTablet(hot, dest); err != nil {
		t.Fatalf("MoveTablet: %v", err)
	}
	asg, _ = c.RoutingSnapshot()
	if asg[hot] != dest {
		t.Fatalf("tablet %s assigned to %s, want %s", hot, asg[hot], dest)
	}
	if got := c.Server(src).Tablets(); containsString(got, hot) {
		t.Errorf("source still serves %s after migration", hot)
	}
	// Stale client converges; data intact with exactly one version each.
	for i := 0; i < 300; i++ {
		vs, err := cl.Versions("users", "profile", hotKey(i))
		if err != nil {
			t.Fatalf("Versions %d after move: %v", i, err)
		}
		if len(vs) != 1 {
			t.Fatalf("key %d has %d versions after move (lost or duplicated)", i, len(vs))
		}
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestConcurrentWritersDuringSplitAndMigration is the convergence test
// the issue asks for: writers hammer one key range while the tablet
// under them is split and then migrated; afterwards every acknowledged
// write must be present exactly once. Run under -race in CI.
func TestConcurrentWritersDuringSplitAndMigration(t *testing.T) {
	c := newElasticCluster(t, 3, 2)
	seedCl := c.NewClient()
	for i := 0; i < 200; i++ {
		if err := seedCl.Put("users", "profile", hotKey(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := seedCl.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 300
	var next atomic.Int64
	next.Store(1000) // fresh key space per acknowledged write
	var acked sync.Map
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.NewClient()
			for i := 0; i < perWriter; i++ {
				k := next.Add(1)
				if err := cl.Put("users", "profile", hotKey(int(k)), []byte("w")); err != nil {
					errCh <- fmt.Errorf("put %d: %w", k, err)
					return
				}
				acked.Store(int(k), true)
			}
		}()
	}

	// Split the hot tablet mid-stream, then migrate one child.
	time.Sleep(2 * time.Millisecond)
	left, right, err := c.SplitTablet(hot)
	if err != nil {
		t.Fatalf("SplitTablet under load: %v", err)
	}
	asg, _ := c.RoutingSnapshot()
	owner := asg[right]
	var dest string
	for _, id := range c.LiveServers() {
		if id != owner {
			dest = id
		}
	}
	if err := c.MoveTablet(right, dest); err != nil {
		t.Fatalf("MoveTablet under load: %v", err)
	}
	_ = left
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acknowledged write present exactly once.
	check := c.NewClient()
	acked.Range(func(key, _ any) bool {
		k := key.(int)
		vs, err := check.Versions("users", "profile", hotKey(k))
		if err != nil {
			t.Errorf("key %d lost after split+migration: %v", k, err)
			return false
		}
		if len(vs) != 1 {
			t.Errorf("key %d has %d versions (duplicated)", k, len(vs))
			return false
		}
		return true
	})
	// And the seed rows survived both topology changes.
	for i := 0; i < 200; i++ {
		if _, err := check.Get("users", "profile", hotKey(i)); err != nil {
			t.Fatalf("seed key %d lost: %v", i, err)
		}
	}
}

// TestAssignmentsEpochSafeDuringFailover is the regression test for the
// locking satellite: Assignments/Epoch readers must never observe
// routing that points at a failover heir that has not finished
// recovering the dead server's log. The readers hammer the accessors
// while KillServer runs; whenever a snapshot shows the dead server
// fully replaced, the heirs must already serve the data.
func TestAssignmentsEpochSafeDuringFailover(t *testing.T) {
	c := newElasticCluster(t, 3, 3)
	cl := c.NewClient()
	keys := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		k := []byte{byte(i), 'k'}
		keys = append(keys, k)
		if err := cl.Put("users", "profile", k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.LiveServers()[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				asg, _ := c.RoutingSnapshot()
				moved := false
				for _, owner := range asg {
					if owner == victim {
						moved = false
						break
					}
					moved = true
				}
				if !moved {
					continue
				}
				// Snapshot shows the failover landed: every tablet's
				// owner must serve its data NOW.
				for tab, owner := range asg {
					srv := c.Server(owner)
					if srv == nil || !containsString(srv.Tablets(), tab) {
						violations.Add(1)
						return
					}
				}
			}
		}()
	}
	if err := c.KillServer(victim); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d routing snapshots named heirs that were not serving yet", v)
	}
	// Data fully readable after failover through a stale client.
	for _, k := range keys {
		if _, err := cl.Get("users", "profile", k); err != nil {
			t.Fatalf("key %v lost in failover: %v", k, err)
		}
	}
}

// TestBalancerSplitsAndMovesHotTablet drives a skewed workload and
// ticks the balancer deterministically: it must split the hot tablet
// and migrate load until the hot range is served by more than one
// server.
func TestBalancerSplitsAndMovesHotTablet(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	b := c.StartBalancer(BalancerConfig{
		Interval: time.Hour, // ticked manually
		MinOps:   100,
	})
	defer b.Stop()
	cl := c.NewClient()
	written := 0
	drive := func(n int) {
		for i := 0; i < n; i++ {
			if err := cl.Put("users", "profile", hotKey(written%2000), []byte("v")); err != nil {
				t.Fatal(err)
			}
			written++
		}
	}
	for round := 0; round < 12; round++ {
		drive(600)
		b.Tick()
	}
	st := b.Stats()
	if st.Splits < 1 {
		t.Fatalf("balancer never split the hot tablet: %+v", st)
	}
	if st.Moves < 1 {
		t.Fatalf("balancer never migrated a tablet: %+v", st)
	}
	// The hot key range is now served by more than one server.
	servers := map[string]bool{}
	asg, _ := c.RoutingSnapshot()
	router, err := c.Router("users")
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range router.Overlapping([]byte("user"), []byte("uses")) {
		servers[asg[tab.ID]] = true
	}
	if len(servers) < 2 {
		t.Fatalf("hot range still pinned to one server after balancing: %v", asg)
	}
	// All data still present through a stale client.
	maxKey := written
	if maxKey > 2000 {
		maxKey = 2000
	}
	for i := 0; i < maxKey; i++ {
		if _, err := cl.Get("users", "profile", hotKey(i)); err != nil {
			t.Fatalf("key %d lost after balancing: %v", i, err)
		}
	}
	if st.Errors > 0 {
		t.Logf("balancer recorded %d benign errors", st.Errors)
	}
}

// TestColdOwnerCacheSurvivesSplit pins the ServerFor classification: a
// client whose router cache predates a split (but whose owner cache is
// cold for the parent) must converge instead of failing with a plain
// "unassigned" error.
func TestColdOwnerCacheSurvivesSplit(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	seed := c.NewClient()
	for i := 0; i < 300; i++ {
		if err := seed.Put("users", "profile", hotKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the ROUTER cache only: route a key from the other tablet
	// (first byte >= 0x80) so the hot tablet's owner is never cached.
	cl := c.NewClient()
	if err := cl.Put("users", "profile", []byte{0xF0, 'x'}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	hot, err := seed.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SplitTablet(hot); err != nil {
		t.Fatal(err)
	}
	// The stale-router/cold-owner client must retry through the split.
	if err := cl.Put("users", "profile", hotKey(5), []byte("post")); err != nil {
		t.Fatalf("cold-owner client did not converge after split: %v", err)
	}
	if _, err := cl.Get("users", "profile", hotKey(10)); err != nil {
		t.Fatalf("cold-owner Get after split: %v", err)
	}
}

// TestSecondaryIndexSurvivesSplitAndMove pins the re-registration of
// per-tablet secondary index slices across topology changes.
func TestSecondaryIndexSurvivesSplitAndMove(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	cl := c.NewClient()
	val := func(i int) []byte { return []byte(fmt.Sprintf("city=%c", 'a'+i%5)) }
	for i := 0; i < 200; i++ {
		if err := cl.Put("users", "profile", hotKey(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	extract := func(v []byte) []byte {
		if len(v) > 5 {
			return v[5:]
		}
		return nil
	}
	if err := c.RegisterSecondaryIndex("by-city", "users", "profile", extract); err != nil {
		t.Fatal(err)
	}
	wantRows := func(label string) {
		t.Helper()
		rows, err := cl.LookupSecondary("by-city", []byte("a"))
		if err != nil {
			t.Fatalf("%s: LookupSecondary: %v", label, err)
		}
		if len(rows) != 40 {
			t.Fatalf("%s: LookupSecondary returned %d rows, want 40", label, len(rows))
		}
	}
	wantRows("before")

	hot, err := cl.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}
	_, right, err := c.SplitTablet(hot)
	if err != nil {
		t.Fatal(err)
	}
	wantRows("after split")

	asg, _ := c.RoutingSnapshot()
	var dest string
	for _, id := range c.LiveServers() {
		if id != asg[right] {
			dest = id
		}
	}
	if err := c.MoveTablet(right, dest); err != nil {
		t.Fatal(err)
	}
	wantRows("after move")
}

// TestMigrationRefusesLivePrepared2PC pins the cutover/2PC interlock:
// a tablet with a prepared-but-uncommitted cross-server transaction
// (validation write locks still held) must not migrate — its commit
// record would land past the replay bound and vanish. Once the locks
// are gone (orphaned prepare), migration proceeds.
func TestMigrationRefusesLivePrepared2PC(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	cl := c.NewClient()
	for i := 0; i < 150; i++ {
		if err := cl.Put("users", "profile", hotKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := cl.TabletFor("users", hotKey(0))
	if err != nil {
		t.Fatal(err)
	}
	asg, _ := c.RoutingSnapshot()
	src := asg[hot]
	var dest string
	for _, id := range c.LiveServers() {
		if id != src {
			dest = id
		}
	}

	// Simulate a transaction caught between prepare and commit: the
	// prepared records are durable on the source and the validation
	// write lock is held.
	key := hotKey(3)
	writes := []core.TxnWrite{{Tablet: hot, Group: "profile", Key: key, Value: []byte("2pc")}}
	prepared, err := c.Server(src).PrepareTxn(999, 12345, writes)
	if err != nil {
		t.Fatalf("PrepareTxn: %v", err)
	}
	sess := c.Coord().NewSession()
	lk := txn.LockKey(hot, "profile", key)
	if err := sess.Lock(lk); err != nil {
		t.Fatal(err)
	}

	if err := c.MoveTablet(hot, dest); err == nil {
		t.Fatal("migration proceeded over a live prepared transaction")
	}
	// The cutover rollback must leave the tablet writable on the source.
	if err := cl.Put("users", "profile", hotKey(4), []byte("post-abort")); err != nil {
		t.Fatalf("tablet unusable after aborted migration: %v", err)
	}
	// The prepared transaction can still commit.
	if err := c.Server(src).CommitTxn(999, 12345, prepared); err != nil {
		t.Fatalf("CommitTxn after aborted migration: %v", err)
	}
	sess.Unlock(lk)

	// Now nothing is in flight: migration succeeds and the committed
	// write survives it.
	if err := c.MoveTablet(hot, dest); err != nil {
		t.Fatalf("MoveTablet after locks released: %v", err)
	}
	row, err := cl.Get("users", "profile", key)
	if err != nil || string(row.Value) != "2pc" {
		t.Fatalf("2PC write lost in migration: %+v err=%v", row, err)
	}
}

// TestTransactionsDuringBalancing runs cross-tablet read-modify-write
// transactions while the balancer reshapes the topology; every
// successfully committed increment must be durable and the counters
// consistent.
func TestTransactionsDuringBalancing(t *testing.T) {
	c := newElasticCluster(t, 2, 2)
	cl := c.NewClient()
	for i := 0; i < 400; i++ {
		if err := cl.Put("users", "profile", hotKey(i), []byte("0")); err != nil {
			t.Fatal(err)
		}
	}
	b := c.StartBalancer(BalancerConfig{Interval: time.Hour, MinOps: 64, Cooldown: 1})
	defer b.Stop()

	commits := 0
	for round := 0; round < 8; round++ {
		for i := 0; i < 100; i++ {
			k := hotKey(i % 50)
			err := c.TxnManager().RunTxn(20, func(tx *txn.Txn) error {
				tab, err := cl.TabletFor("users", k)
				if err != nil {
					return err
				}
				cur, err := tx.Get(tab, "profile", k)
				if err != nil {
					return err
				}
				n, _ := strconv.Atoi(string(cur))
				return tx.Put(tab, "profile", k, []byte(strconv.Itoa(n+1)))
			})
			if err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
			commits++
		}
		b.Tick()
	}
	// 8 rounds x 100 txns over 50 keys -> each key incremented 16 times.
	for i := 0; i < 50; i++ {
		row, err := cl.Get("users", "profile", hotKey(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if string(row.Value) != "16" {
			t.Fatalf("key %d = %s, want 16 (lost transactional writes)", i, row.Value)
		}
	}
	if st := b.Stats(); st.Splits == 0 {
		t.Logf("balancer stats: %+v (no split this run)", st)
	}
}
