package sstable

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/dfs"
)

func newFS(t *testing.T) *dfs.DFS {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	return fs
}

func buildTable(t *testing.T, fs *dfs.DFS, path string, opts WriterOptions, entries []Entry) {
	t.Helper()
	w, err := NewWriter(fs, path, opts)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		return Compare(entries[i].Key, entries[i].TS, entries[j].Key, entries[j].TS) < 0
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	var entries []Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, Entry{
			Key:   []byte(fmt.Sprintf("key-%05d", i)),
			TS:    10,
			Value: []byte(fmt.Sprintf("value-%d", i)),
		})
	}
	buildTable(t, fs, "sst/1", WriterOptions{BlockSize: 512}, entries)

	r, err := OpenReader(fs, "sst/1", nil)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if r.Count() != 1000 {
		t.Errorf("Count = %d", r.Count())
	}
	for _, probe := range []int{0, 1, 499, 999} {
		e, ok, err := r.Get(entries[probe].Key, math.MaxInt64)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", entries[probe].Key, ok, err)
		}
		if !bytes.Equal(e.Value, entries[probe].Value) {
			t.Errorf("Get(%s) = %q", entries[probe].Key, e.Value)
		}
	}
	if _, ok, _ := r.Get([]byte("missing"), math.MaxInt64); ok {
		t.Error("Get of absent key succeeded")
	}
}

func TestVersionsNewestFirst(t *testing.T) {
	fs := newFS(t)
	entries := []Entry{
		{Key: []byte("k"), TS: 30, Value: []byte("v30")},
		{Key: []byte("k"), TS: 20, Value: []byte("v20")},
		{Key: []byte("k"), TS: 10, Value: []byte("v10")},
	}
	buildTable(t, fs, "sst/v", WriterOptions{}, entries)
	r, err := OpenReader(fs, "sst/v", nil)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	cases := []struct {
		at   int64
		want string
		ok   bool
	}{{5, "", false}, {10, "v10", true}, {25, "v20", true}, {100, "v30", true}}
	for _, c := range cases {
		e, ok, err := r.Get([]byte("k"), c.at)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if ok != c.ok || (ok && string(e.Value) != c.want) {
			t.Errorf("Get(k,%d) = %q,%v want %q,%v", c.at, e.Value, ok, c.want, c.ok)
		}
	}
}

func TestTombstone(t *testing.T) {
	fs := newFS(t)
	entries := []Entry{
		{Key: []byte("k"), TS: 20, Tombstone: true},
		{Key: []byte("k"), TS: 10, Value: []byte("old")},
	}
	buildTable(t, fs, "sst/t", WriterOptions{}, entries)
	r, _ := OpenReader(fs, "sst/t", nil)
	e, ok, err := r.Get([]byte("k"), math.MaxInt64)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !e.Tombstone {
		t.Error("newest version should be a tombstone")
	}
	if e.Value != nil {
		t.Errorf("tombstone carries value %q", e.Value)
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	fs := newFS(t)
	w, _ := NewWriter(fs, "sst/bad", WriterOptions{})
	if err := w.Add(Entry{Key: []byte("b"), TS: 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := w.Add(Entry{Key: []byte("a"), TS: 1}); err == nil {
		t.Error("out-of-order Add accepted")
	}
	// Same key older-ts is fine (ts descending), newer-ts is not.
	if err := w.Add(Entry{Key: []byte("b"), TS: 5}); err == nil {
		t.Error("ascending-ts Add accepted")
	}
}

func TestBloomFilterSkipsMisses(t *testing.T) {
	fs := newFS(t)
	var entries []Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("present-%04d", i)), TS: 1, Value: []byte("v")})
	}
	buildTable(t, fs, "sst/bloom", WriterOptions{BloomBitsPerKey: 10}, entries)
	r, err := OpenReader(fs, "sst/bloom", nil)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	for i := 0; i < 500; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("present-%04d", i))) {
			t.Fatalf("bloom false negative on present-%04d", i)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if r.MayContain([]byte(fmt.Sprintf("absent-%04d", i))) {
			fp++
		}
	}
	if fp > 100 { // 10 bits/key ≈ <2% FP; allow generous slack
		t.Errorf("bloom false positive rate %d/1000 too high", fp)
	}
}

func TestIteratorFullAndSeek(t *testing.T) {
	fs := newFS(t)
	var entries []Entry
	for i := 0; i < 300; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("%04d", i)), TS: 2, Value: []byte("x")})
	}
	buildTable(t, fs, "sst/it", WriterOptions{BlockSize: 256}, entries)
	r, _ := OpenReader(fs, "sst/it", nil)

	it := r.NewIterator(nil)
	n := 0
	var prev Entry
	for it.Next() {
		e := it.Entry()
		if n > 0 && Compare(prev.Key, prev.TS, e.Key, e.TS) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = e
		n++
	}
	if it.Err() != nil {
		t.Fatalf("iterator error: %v", it.Err())
	}
	if n != 300 {
		t.Errorf("full scan saw %d, want 300", n)
	}

	it = r.NewIterator([]byte("0100"))
	n = 0
	for it.Next() {
		if n == 0 && string(it.Entry().Key) != "0100" {
			t.Errorf("seek landed on %s", it.Entry().Key)
		}
		n++
	}
	if n != 200 {
		t.Errorf("seek scan saw %d, want 200", n)
	}

	// Seek past the end.
	it = r.NewIterator([]byte("9999"))
	if it.Next() {
		t.Error("iterator past end returned entries")
	}
}

func TestBlockCacheHits(t *testing.T) {
	fs := newFS(t)
	var entries []Entry
	for i := 0; i < 200; i++ {
		entries = append(entries, Entry{Key: []byte(fmt.Sprintf("%04d", i)), TS: 1, Value: make([]byte, 50)})
	}
	buildTable(t, fs, "sst/c", WriterOptions{BlockSize: 512}, entries)
	bc := cache.New(1<<20, nil)
	r, _ := OpenReader(fs, "sst/c", bc)
	r.Get([]byte("0001"), math.MaxInt64)
	r.Get([]byte("0002"), math.MaxInt64) // same block → cache hit
	st := bc.Stats()
	if st.Hits == 0 {
		t.Errorf("no block cache hits: %+v", st)
	}
}

func TestQuickRandomTables(t *testing.T) {
	fs := newFS(t)
	seq := 0
	f := func(keys []uint16, probe uint16) bool {
		seq++
		seen := map[string]bool{}
		var entries []Entry
		for _, k := range keys {
			key := fmt.Sprintf("k%05d", k)
			if seen[key] {
				continue
			}
			seen[key] = true
			entries = append(entries, Entry{Key: []byte(key), TS: int64(k % 7), Value: []byte(key)})
		}
		sortEntries(entries)
		path := fmt.Sprintf("sst/q%d", seq)
		w, err := NewWriter(fs, path, WriterOptions{BlockSize: 128})
		if err != nil {
			return false
		}
		for _, e := range entries {
			if err := w.Add(e); err != nil {
				return false
			}
		}
		if err := w.Finish(); err != nil {
			return false
		}
		r, err := OpenReader(fs, path, nil)
		if err != nil {
			return false
		}
		probeKey := fmt.Sprintf("k%05d", probe)
		e, ok, err := r.Get([]byte(probeKey), math.MaxInt64)
		if err != nil {
			return false
		}
		if seen[probeKey] != ok {
			return false
		}
		return !ok || string(e.Value) == probeKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeIterator(t *testing.T) {
	a := []Entry{
		{Key: []byte("a"), TS: 2, Value: []byte("a2-new")},
		{Key: []byte("c"), TS: 1, Value: []byte("c1")},
	}
	b := []Entry{
		{Key: []byte("a"), TS: 2, Value: []byte("a2-old")}, // shadowed by a
		{Key: []byte("a"), TS: 1, Value: []byte("a1")},
		{Key: []byte("b"), TS: 1, Value: []byte("b1")},
	}
	m := NewMergeIterator(NewSliceSource(a), NewSliceSource(b))
	var got []string
	for m.Next() {
		e := m.Entry()
		got = append(got, fmt.Sprintf("%s@%d=%s", e.Key, e.TS, e.Value))
	}
	if m.Err() != nil {
		t.Fatalf("merge error: %v", m.Err())
	}
	want := []string{"a@2=a2-new", "a@1=a1", "b@1=b1", "c@1=c1"}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merge[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestMergeAcrossTables(t *testing.T) {
	fs := newFS(t)
	rng := rand.New(rand.NewSource(3))
	var t1, t2 []Entry
	for i := 0; i < 200; i++ {
		e := Entry{Key: []byte(fmt.Sprintf("%05d", rng.Intn(1000))), TS: int64(i), Value: []byte("v")}
		if i%2 == 0 {
			t1 = append(t1, e)
		} else {
			t2 = append(t2, e)
		}
	}
	sortEntries(t1)
	sortEntries(t2)
	// Dedup exact (key,ts) dupes within each slice.
	dedup := func(in []Entry) []Entry {
		var out []Entry
		for _, e := range in {
			if len(out) > 0 && Compare(out[len(out)-1].Key, out[len(out)-1].TS, e.Key, e.TS) == 0 {
				continue
			}
			out = append(out, e)
		}
		return out
	}
	t1, t2 = dedup(t1), dedup(t2)
	buildTable(t, fs, "sst/m1", WriterOptions{BlockSize: 256}, t1)
	buildTable(t, fs, "sst/m2", WriterOptions{BlockSize: 256}, t2)
	r1, _ := OpenReader(fs, "sst/m1", nil)
	r2, _ := OpenReader(fs, "sst/m2", nil)
	m := NewMergeIterator(r1.NewIterator(nil), r2.NewIterator(nil))
	n := 0
	var prev Entry
	for m.Next() {
		e := m.Entry()
		if n > 0 && Compare(prev.Key, prev.TS, e.Key, e.TS) >= 0 {
			t.Fatal("merged stream out of order")
		}
		prev = e
		n++
	}
	if n != len(t1)+len(t2) {
		t.Errorf("merged %d entries, want %d", n, len(t1)+len(t2))
	}
}

func TestEmptyTable(t *testing.T) {
	fs := newFS(t)
	buildTable(t, fs, "sst/empty", WriterOptions{}, nil)
	r, err := OpenReader(fs, "sst/empty", nil)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if _, ok, _ := r.Get([]byte("x"), math.MaxInt64); ok {
		t.Error("empty table returned an entry")
	}
	if r.NewIterator(nil).Next() {
		t.Error("empty table iterator returned entries")
	}
}

func TestCorruptFooter(t *testing.T) {
	fs := newFS(t)
	w, _ := fs.Create("sst/garbage")
	w.Write(bytes.Repeat([]byte{0xAB}, 200))
	if _, err := OpenReader(fs, "sst/garbage", nil); err == nil {
		t.Error("OpenReader accepted garbage")
	}
}
