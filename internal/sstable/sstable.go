// Package sstable implements immutable sorted string tables: the
// on-disk data files of the WAL+Data baseline (HBase's HFiles) and the
// runs of the LSM-tree used by the LRS baseline.
//
// Layout (all little-endian):
//
//	data blocks | sparse index | bloom filter | footer
//
// Data blocks hold entries sorted by (key ascending, timestamp
// descending) so the first version met for a key is the newest. The
// sparse index stores only the first key of each block — reads must
// fetch and scan an entire block, which is exactly the extra I/O the
// paper charges HBase against LogBase's dense in-memory index (§4.2.2).
// A bloom filter (as in bLSM) short-circuits misses.
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/cache"
	"repro/internal/dfs"
)

// Entry is one key version in a table.
type Entry struct {
	Key       []byte
	TS        int64
	Value     []byte
	Tombstone bool
}

// Compare orders entries by key ascending, then timestamp descending
// (newest version first).
func Compare(aKey []byte, aTS int64, bKey []byte, bTS int64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aTS > bTS:
		return -1
	case aTS < bTS:
		return 1
	default:
		return 0
	}
}

var tableMagic = []byte{'L', 'B', 'S', 'S', 'T', 1}

const (
	footerSize    = 6 + 8*4 + 8 + 4 // magic + idx off/len + bloom off/len + count + crc
	tombstoneMark = math.MaxUint32
)

// ErrBadTable reports a malformed table file.
var ErrBadTable = errors.New("sstable: bad table")

// WriterOptions configures table building.
type WriterOptions struct {
	// BlockSize is the target uncompressed data-block size. Zero means
	// 8 KB (scaled down from HBase's 64 KB to match simulation sizes).
	BlockSize int
	// BloomBitsPerKey sizes the bloom filter; zero disables it.
	BloomBitsPerKey int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 8 << 10
	}
	return o
}

// Writer builds one table. Entries must be added in Compare order.
type Writer struct {
	w    *dfs.Writer
	opts WriterOptions

	block    bytes.Buffer
	firstKey []byte
	firstTS  int64
	index    []indexEntry
	keys     [][]byte // for bloom
	count    uint64
	off      int64
	lastKey  []byte
	lastTS   int64
	started  bool
}

type indexEntry struct {
	key []byte
	ts  int64
	off int64
	len int64
}

// NewWriter creates path in fs and returns a Writer.
func NewWriter(fs *dfs.DFS, path string, opts WriterOptions) (*Writer, error) {
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{w: w, opts: opts.withDefaults()}, nil
}

// Add appends one entry; entries must arrive sorted and unique.
func (t *Writer) Add(e Entry) error {
	if t.started && Compare(e.Key, e.TS, t.lastKey, t.lastTS) <= 0 {
		return fmt.Errorf("sstable: out-of-order add: (%q,%d) after (%q,%d)", e.Key, e.TS, t.lastKey, t.lastTS)
	}
	t.started = true
	t.lastKey = append(t.lastKey[:0], e.Key...)
	t.lastTS = e.TS
	if t.block.Len() == 0 {
		t.firstKey = append([]byte(nil), e.Key...)
		t.firstTS = e.TS
	}
	var rec []byte
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(e.Key)))
	rec = append(rec, e.Key...)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(e.TS))
	if e.Tombstone {
		rec = binary.LittleEndian.AppendUint32(rec, tombstoneMark)
	} else {
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(e.Value)))
		rec = append(rec, e.Value...)
	}
	t.block.Write(rec)
	t.count++
	if t.opts.BloomBitsPerKey > 0 {
		t.keys = append(t.keys, append([]byte(nil), e.Key...))
	}
	if t.block.Len() >= t.opts.BlockSize {
		return t.flushBlock()
	}
	return nil
}

func (t *Writer) flushBlock() error {
	if t.block.Len() == 0 {
		return nil
	}
	n := t.block.Len()
	if _, err := t.w.Write(t.block.Bytes()); err != nil {
		return err
	}
	t.index = append(t.index, indexEntry{key: t.firstKey, ts: t.firstTS, off: t.off, len: int64(n)})
	t.off += int64(n)
	t.block.Reset()
	return nil
}

// Finish writes the index, bloom filter and footer and closes the file.
func (t *Writer) Finish() error {
	if err := t.flushBlock(); err != nil {
		return err
	}
	// Sparse index.
	var idx bytes.Buffer
	binary.Write(&idx, binary.LittleEndian, uint32(len(t.index))) //nolint:errcheck
	for _, ie := range t.index {
		binary.Write(&idx, binary.LittleEndian, uint16(len(ie.key))) //nolint:errcheck
		idx.Write(ie.key)
		binary.Write(&idx, binary.LittleEndian, uint64(ie.ts))  //nolint:errcheck
		binary.Write(&idx, binary.LittleEndian, uint64(ie.off)) //nolint:errcheck
		binary.Write(&idx, binary.LittleEndian, uint64(ie.len)) //nolint:errcheck
	}
	idxOff := t.off
	if _, err := t.w.Write(idx.Bytes()); err != nil {
		return err
	}
	t.off += int64(idx.Len())

	// Bloom filter.
	var bloomBytes []byte
	if t.opts.BloomBitsPerKey > 0 && len(t.keys) > 0 {
		b := newBloom(len(t.keys), t.opts.BloomBitsPerKey)
		for _, k := range t.keys {
			b.add(k)
		}
		bloomBytes = b.marshal()
	}
	bloomOff := t.off
	if len(bloomBytes) > 0 {
		if _, err := t.w.Write(bloomBytes); err != nil {
			return err
		}
		t.off += int64(len(bloomBytes))
	}

	var footer []byte
	footer = append(footer, tableMagic...)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(idxOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(idx.Len()))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(bloomOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(bloomBytes)))
	footer = binary.LittleEndian.AppendUint64(footer, t.count)
	footer = binary.LittleEndian.AppendUint32(footer, crc32.ChecksumIEEE(footer))
	if _, err := t.w.Write(footer); err != nil {
		return err
	}
	return t.w.Close()
}

// Count returns entries added so far.
func (t *Writer) Count() uint64 { return t.count }

// Reader serves point and range reads from one table.
type Reader struct {
	fs    *dfs.DFS
	path  string
	r     *dfs.Reader
	index []indexEntry
	bloom *bloom
	count uint64
	// blocks caches decoded blocks; shared across readers (HBase's
	// block cache).
	blocks *cache.Cache
	// idxOff/idxLen locate the sparse index in the file. Without a
	// block cache nothing is memory-resident, so every lookup re-reads
	// the index region from disk — the paper's "both application data
	// and index blocks need to be fetched from disk-resident files"
	// (§3.5). With a cache the index is assumed pinned.
	idxOff, idxLen int64
}

// OpenReader opens a finished table. blockCache may be nil (no caching),
// reproducing the paper's "without cache" micro-benchmarks.
func OpenReader(fs *dfs.DFS, path string, blockCache *cache.Cache) (*Reader, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := r.Size()
	if err != nil {
		return nil, err
	}
	if size < footerSize {
		return nil, fmt.Errorf("%w: %s: too small", ErrBadTable, path)
	}
	f := make([]byte, footerSize)
	if _, err := r.ReadAt(f, size-footerSize); err != nil && err != io.EOF {
		return nil, err
	}
	if !bytes.Equal(f[:6], tableMagic) {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrBadTable, path)
	}
	if crc32.ChecksumIEEE(f[:footerSize-4]) != binary.LittleEndian.Uint32(f[footerSize-4:]) {
		return nil, fmt.Errorf("%w: %s: footer crc", ErrBadTable, path)
	}
	idxOff := int64(binary.LittleEndian.Uint64(f[6:]))
	idxLen := int64(binary.LittleEndian.Uint64(f[14:]))
	bloomOff := int64(binary.LittleEndian.Uint64(f[22:]))
	bloomLen := int64(binary.LittleEndian.Uint64(f[30:]))
	count := binary.LittleEndian.Uint64(f[38:])

	t := &Reader{fs: fs, path: path, r: r, count: count, blocks: blockCache, idxOff: idxOff, idxLen: idxLen}
	idxBuf := make([]byte, idxLen)
	if _, err := r.ReadAt(idxBuf, idxOff); err != nil && err != io.EOF {
		return nil, err
	}
	if len(idxBuf) < 4 {
		return nil, fmt.Errorf("%w: %s: index truncated", ErrBadTable, path)
	}
	n := binary.LittleEndian.Uint32(idxBuf)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+2 > len(idxBuf) {
			return nil, fmt.Errorf("%w: %s: index truncated", ErrBadTable, path)
		}
		kl := int(binary.LittleEndian.Uint16(idxBuf[off:]))
		off += 2
		if off+kl+24 > len(idxBuf) {
			return nil, fmt.Errorf("%w: %s: index truncated", ErrBadTable, path)
		}
		key := append([]byte(nil), idxBuf[off:off+kl]...)
		off += kl
		ts := int64(binary.LittleEndian.Uint64(idxBuf[off:]))
		boff := int64(binary.LittleEndian.Uint64(idxBuf[off+8:]))
		blen := int64(binary.LittleEndian.Uint64(idxBuf[off+16:]))
		off += 24
		t.index = append(t.index, indexEntry{key: key, ts: ts, off: boff, len: blen})
	}
	if bloomLen > 0 {
		bb := make([]byte, bloomLen)
		if _, err := r.ReadAt(bb, bloomOff); err != nil && err != io.EOF {
			return nil, err
		}
		b, err := unmarshalBloom(bb)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		t.bloom = b
	}
	return t, nil
}

// Count returns the number of entries in the table.
func (t *Reader) Count() uint64 { return t.count }

// Path returns the table's DFS path.
func (t *Reader) Path() string { return t.path }

// MayContain reports whether key can be present (bloom filter check);
// always true without a filter.
func (t *Reader) MayContain(key []byte) bool {
	if t.bloom == nil {
		return true
	}
	return t.bloom.mayContain(key)
}

// blockFor returns the decoded entries of block i, via the block cache
// when present.
func (t *Reader) blockFor(i int) ([]Entry, error) {
	ie := t.index[i]
	cacheKey := fmt.Sprintf("%s#%d", t.path, ie.off)
	var raw []byte
	if t.blocks != nil {
		if b, ok := t.blocks.Get(cacheKey); ok {
			raw = b
		}
	}
	if raw == nil {
		raw = make([]byte, ie.len)
		if _, err := t.r.ReadAt(raw, ie.off); err != nil && err != io.EOF {
			return nil, err
		}
		if t.blocks != nil {
			t.blocks.Put(cacheKey, raw)
		}
	}
	return decodeBlock(raw)
}

func decodeBlock(raw []byte) ([]Entry, error) {
	var out []Entry
	off := 0
	for off < len(raw) {
		if off+2 > len(raw) {
			return nil, fmt.Errorf("%w: block truncated", ErrBadTable)
		}
		kl := int(binary.LittleEndian.Uint16(raw[off:]))
		off += 2
		if off+kl+12 > len(raw) {
			return nil, fmt.Errorf("%w: block truncated", ErrBadTable)
		}
		key := append([]byte(nil), raw[off:off+kl]...)
		off += kl
		ts := int64(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
		vl := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		e := Entry{Key: key, TS: ts}
		if vl == tombstoneMark {
			e.Tombstone = true
		} else {
			if off+int(vl) > len(raw) {
				return nil, fmt.Errorf("%w: block truncated", ErrBadTable)
			}
			e.Value = append([]byte(nil), raw[off:off+int(vl)]...)
			off += int(vl)
		}
		out = append(out, e)
	}
	return out, nil
}

// seekBlock returns the index of the block that may contain (key, ts).
func (t *Reader) seekBlock(key []byte, ts int64) int {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(t.index[mid].key, t.index[mid].ts, key, ts) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// chargeIndexRead models fetching the sparse-index blocks from disk
// when no cache keeps them resident.
func (t *Reader) chargeIndexRead() {
	if t.blocks != nil || t.idxLen == 0 {
		return
	}
	buf := make([]byte, t.idxLen)
	t.r.ReadAt(buf, t.idxOff) //nolint:errcheck // cost model only; content already parsed
}

// Get returns the newest version of key with TS <= ts. Found reports
// presence; a found tombstone is returned with Tombstone set.
func (t *Reader) Get(key []byte, ts int64) (Entry, bool, error) {
	if len(t.index) == 0 || !t.MayContain(key) {
		return Entry{}, false, nil
	}
	t.chargeIndexRead()
	// Entries are (key asc, ts desc): the newest version <= ts sorts at
	// or after (key, ts) position.
	bi := t.seekBlock(key, ts)
	for ; bi < len(t.index); bi++ {
		if bytes.Compare(t.index[bi].key, key) > 0 {
			break
		}
		entries, err := t.blockFor(bi)
		if err != nil {
			return Entry{}, false, err
		}
		for _, e := range entries {
			c := bytes.Compare(e.Key, key)
			if c > 0 {
				return Entry{}, false, nil
			}
			if c == 0 && e.TS <= ts {
				return e, true, nil
			}
		}
	}
	return Entry{}, false, nil
}

// Iterator walks a table in Compare order.
type Iterator struct {
	t       *Reader
	bi      int
	entries []Entry
	ei      int
	cur     Entry
	err     error
}

// NewIterator returns an iterator positioned at the first entry with
// key >= start (nil start = beginning).
func (t *Reader) NewIterator(start []byte) *Iterator {
	it := &Iterator{t: t}
	if len(t.index) == 0 {
		it.bi = 0
		return it
	}
	if start != nil {
		it.bi = t.seekBlock(start, math.MaxInt64)
		entries, err := t.blockFor(it.bi)
		if err != nil {
			it.err = err
			return it
		}
		it.entries = entries
		for it.ei < len(entries) && bytes.Compare(entries[it.ei].Key, start) < 0 {
			it.ei++
		}
		if it.ei == len(entries) {
			it.entries = nil
			it.ei = 0
			it.bi++
		}
		return it
	}
	return it
}

// Next advances and reports whether an entry is available.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for it.entries == nil || it.ei >= len(it.entries) {
		if it.entries != nil {
			it.bi++
			it.ei = 0
			it.entries = nil
		}
		if it.bi >= len(it.t.index) {
			return false
		}
		entries, err := it.t.blockFor(it.bi)
		if err != nil {
			it.err = err
			return false
		}
		it.entries = entries
	}
	it.cur = it.entries[it.ei]
	it.ei++
	return true
}

// Entry returns the current entry.
func (it *Iterator) Entry() Entry { return it.cur }

// Err returns the first error.
func (it *Iterator) Err() error { return it.err }
