package sstable

import "container/heap"

// MergeIterator merges several sorted sources into one Compare-ordered
// stream. Sources earlier in the slice shadow later ones for identical
// (key, ts) pairs — callers pass newer tables first, matching LSM and
// HBase store-file precedence.
type MergeIterator struct {
	h       mergeHeap
	cur     Entry
	started bool
	err     error
}

// Source is anything that yields entries in Compare order.
type Source interface {
	Next() bool
	Entry() Entry
	Err() error
}

type mergeItem struct {
	src  Source
	e    Entry
	rank int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := Compare(h[i].e.Key, h[i].e.TS, h[j].e.Key, h[j].e.TS)
	if c != 0 {
		return c < 0
	}
	return h[i].rank < h[j].rank
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewMergeIterator builds a merged stream over sources (newest first).
func NewMergeIterator(sources ...Source) *MergeIterator {
	m := &MergeIterator{}
	for rank, s := range sources {
		if s.Next() {
			m.h = append(m.h, mergeItem{src: s, e: s.Entry(), rank: rank})
		} else if err := s.Err(); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

// Next advances, deduplicating identical (key, ts) pairs in favour of
// the lowest-rank (newest) source.
func (m *MergeIterator) Next() bool {
	if m.err != nil {
		return false
	}
	for m.h.Len() > 0 {
		it := m.h[0]
		if it.src.Next() {
			m.h[0].e = it.src.Entry()
			heap.Fix(&m.h, 0)
		} else {
			if err := it.src.Err(); err != nil {
				m.err = err
				return false
			}
			heap.Pop(&m.h)
		}
		if m.started && Compare(it.e.Key, it.e.TS, m.cur.Key, m.cur.TS) == 0 {
			continue // shadowed duplicate
		}
		m.cur = it.e
		m.started = true
		return true
	}
	return false
}

// Entry returns the current entry.
func (m *MergeIterator) Entry() Entry { return m.cur }

// Err returns the first error encountered.
func (m *MergeIterator) Err() error { return m.err }

// SliceSource adapts an in-memory sorted slice to a Source.
type SliceSource struct {
	entries []Entry
	i       int
}

// NewSliceSource wraps entries (already in Compare order).
func NewSliceSource(entries []Entry) *SliceSource { return &SliceSource{entries: entries} }

// Next advances the slice cursor.
func (s *SliceSource) Next() bool {
	if s.i >= len(s.entries) {
		return false
	}
	s.i++
	return true
}

// Entry returns the current entry.
func (s *SliceSource) Entry() Entry { return s.entries[s.i-1] }

// Err always returns nil.
func (s *SliceSource) Err() error { return nil }
