package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// bloom is a standard double-hashing Bloom filter (Kirsch–Mitzenmacher):
// h_i(k) = h1(k) + i*h2(k). The paper cites bLSM's use of Bloom filters
// to improve LSM read performance; the HBase baseline and the LRS
// index runs both use it.
type bloom struct {
	bits   []byte
	nbits  uint64
	hashes int
}

func newBloom(nkeys, bitsPerKey int) *bloom {
	nbits := uint64(nkeys * bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloom{bits: make([]byte, (nbits+7)/8), nbits: nbits, hashes: k}
}

func bloomHashes(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31 // derived second hash
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func (b *bloom) marshal() []byte {
	out := make([]byte, 0, 12+len(b.bits))
	out = binary.LittleEndian.AppendUint64(out, b.nbits)
	out = binary.LittleEndian.AppendUint32(out, uint32(b.hashes))
	return append(out, b.bits...)
}

func unmarshalBloom(raw []byte) (*bloom, error) {
	if len(raw) < 12 {
		return nil, fmt.Errorf("%w: bloom truncated", ErrBadTable)
	}
	nbits := binary.LittleEndian.Uint64(raw)
	hashes := int(binary.LittleEndian.Uint32(raw[8:]))
	bits := raw[12:]
	if uint64(len(bits))*8 < nbits {
		return nil, fmt.Errorf("%w: bloom bits truncated", ErrBadTable)
	}
	return &bloom{bits: bits, nbits: nbits, hashes: hashes}, nil
}
