package tpcw

import (
	"context"
	"repro/internal/core"
	"testing"
)

func TestShoppingMixBetweenBrowsingAndOrdering(t *testing.T) {
	_, st := newCluster(t, 2)
	if err := Load(st, 150, 75, 2); err != nil {
		t.Fatalf("Load: %v", err)
	}
	var tputs [3]float64
	for i, mix := range Mixes {
		res, err := Run(st, mix, 150, 75, 300, 2, int64(i))
		if err != nil {
			t.Fatalf("Run %s: %v", mix.Name, err)
		}
		if res.Txns != 300 {
			t.Errorf("%s completed %d txns", mix.Name, res.Txns)
		}
		tputs[i] = res.Throughput
	}
	// Read-mostly mixes must not be slower than the write-heavy one by
	// a wide margin (the paper's browsing > shopping > ordering trend,
	// asserted loosely against wall-clock noise).
	if tputs[0] < tputs[2]*0.5 {
		t.Errorf("browsing (%v) much slower than ordering (%v)", tputs[0], tputs[2])
	}
}

func TestRunReportsLatency(t *testing.T) {
	_, st := newCluster(t, 2)
	if err := Load(st, 50, 25, 1); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(st, Shopping, 50, 25, 100, 2, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency.Count() != 100 {
		t.Errorf("latency samples = %d", res.Latency.Count())
	}
	if res.Latency.Mean() <= 0 {
		t.Error("zero mean latency")
	}
	if p99 := res.Latency.Percentile(0.99); p99 < res.Latency.Percentile(0.5) {
		t.Error("p99 < p50")
	}
}

func TestOrdersAccumulateAcrossRuns(t *testing.T) {
	c, st := newCluster(t, 2)
	if err := Load(st, 60, 30, 1); err != nil {
		t.Fatalf("Load: %v", err)
	}
	count := func() int {
		cl := c.NewClient()
		n := 0
		cl.Scan(context.Background(), "orders", "order", nil, nil, func(r core.Row) bool { n++; return true })
		return n
	}
	if _, err := Run(st, Ordering, 60, 30, 100, 2, 1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	first := count()
	if _, err := Run(st, Ordering, 60, 30, 100, 2, 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if second := count(); second <= first {
		t.Errorf("orders did not accumulate: %d then %d", first, second)
	}
}
