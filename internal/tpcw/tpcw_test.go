package tpcw

import (
	"context"
	"testing"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
)

func newCluster(t *testing.T, n int) (*cluster.Cluster, logbase.Store) {
	t.Helper()
	c, err := cluster.New(t.TempDir(), cluster.Config{
		NumServers: n,
		Tables:     Tables(),
		Server:     core.Config{SegmentSize: 1 << 20},
		DFS:        dfs.Config{BlockSize: 1 << 16},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c, logbase.NewClusterClient(c)
}

func TestLoadPopulatesTables(t *testing.T) {
	c, st := newCluster(t, 2)
	if err := Load(st, 100, 50, 2); err != nil {
		t.Fatalf("Load: %v", err)
	}
	cl := c.NewClient()
	if _, err := cl.Get("item", "detail", itemKey(0)); err != nil {
		t.Errorf("item 0 missing: %v", err)
	}
	if _, err := cl.Get("item", "detail", itemKey(99)); err != nil {
		t.Errorf("item 99 missing: %v", err)
	}
	if _, err := cl.Get("customer", "cart", customerKey(49)); err != nil {
		t.Errorf("customer 49 missing: %v", err)
	}
}

func TestBrowsingMixMostlyReads(t *testing.T) {
	c, st := newCluster(t, 2)
	if err := Load(st, 200, 100, 2); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(st, Browsing, 200, 100, 400, 2, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Txns != 400 {
		t.Errorf("completed %d txns, want 400", res.Txns)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	// ~5% updates → few orders written.
	cl := c.NewClient()
	orders := 0
	cl.Scan(context.Background(), "orders", "order", nil, nil, func(core.Row) bool { orders++; return true })
	if orders == 0 || orders > 60 {
		t.Errorf("browsing mix wrote %d orders, want ~20 of 400", orders)
	}
}

func TestOrderingMixWritesOrders(t *testing.T) {
	c, st := newCluster(t, 2)
	if err := Load(st, 100, 50, 2); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(st, Ordering, 100, 50, 300, 3, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Txns != 300 {
		t.Errorf("completed %d txns", res.Txns)
	}
	cl := c.NewClient()
	orders := 0
	cl.Scan(context.Background(), "orders", "order", nil, nil, func(core.Row) bool { orders++; return true })
	if orders < 100 {
		t.Errorf("ordering mix wrote only %d orders of ~150 expected", orders)
	}
	// Orders must embed the cart read by the same transaction.
	found := false
	cl.Scan(context.Background(), "orders", "order", nil, nil, func(r core.Row) bool {
		found = true
		if string(r.Value[:13]) != `{"from-cart":` {
			t.Errorf("order row %q lacks cart payload", r.Value)
		}
		return false
	})
	if !found {
		t.Error("no order rows to inspect")
	}
}

func TestMixesOrderedByUpdateFraction(t *testing.T) {
	if !(Browsing.UpdateFrac < Shopping.UpdateFrac && Shopping.UpdateFrac < Ordering.UpdateFrac) {
		t.Error("mix fractions out of order")
	}
	if Browsing.UpdateFrac != 0.05 || Shopping.UpdateFrac != 0.20 || Ordering.UpdateFrac != 0.50 {
		t.Errorf("mix fractions = %v %v %v, want paper's 5/20/50%%",
			Browsing.UpdateFrac, Shopping.UpdateFrac, Ordering.UpdateFrac)
	}
}

func TestEntityGroupKeysAvoid2PC(t *testing.T) {
	// A customer's orders share the customer's key prefix, so cart and
	// order rows map to the same key range.
	ck := customerKey(7)
	ok := orderKey(7, 1)
	if string(ok[:len(ck)]) != string(ck) {
		t.Errorf("order key %q does not extend customer key %q", ok, ck)
	}
}

// The driver is written against logbase.Store, so it must also run on
// the embedded backend: declare the schema through CreateTables, load,
// and run a mix on a plain *logbase.DB.
func TestEmbeddedBackendRunsSameDriver(t *testing.T) {
	db, err := logbase.Open(t.TempDir(), logbase.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if err := CreateTables(db); err != nil {
		t.Fatalf("CreateTables: %v", err)
	}
	if err := Load(db, 60, 30, 2); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(db, Shopping, 60, 30, 100, 2, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Txns != 100 {
		t.Errorf("completed %d txns, want 100", res.Txns)
	}
	orders := 0
	if err := db.FullScanFunc(context.Background(), "orders", "order", func(logbase.Row) bool { orders++; return true }); err != nil {
		t.Fatalf("FullScanFunc: %v", err)
	}
	if orders == 0 {
		t.Error("shopping mix wrote no orders on the embedded backend")
	}
}
