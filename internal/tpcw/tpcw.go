// Package tpcw models the TPC-W webshop workload slice the paper uses
// (§4.4): three mixes — browsing (5% update transactions), shopping
// (20%) and ordering (50%) — where a read-only transaction queries one
// product's details from the item table and an update transaction
// bundles a read of the user's shopping cart with a write into the
// orders table.
//
// The driver is written once against the unified logbase.Store
// interface, so the exact same workload code exercises the embedded
// *logbase.DB and the cluster *logbase.ClusterClient.
package tpcw

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	logbase "repro"
	"repro/internal/cluster"
	"repro/internal/ycsb"
)

// Mix names a TPC-W transaction mix.
type Mix struct {
	Name       string
	UpdateFrac float64
}

// The paper's three mixes.
var (
	Browsing = Mix{Name: "browsing", UpdateFrac: 0.05}
	Shopping = Mix{Name: "shopping", UpdateFrac: 0.20}
	Ordering = Mix{Name: "ordering", UpdateFrac: 0.50}
)

// Mixes lists them in the paper's order.
var Mixes = []Mix{Browsing, Shopping, Ordering}

// Tables returns the schema the workload needs; pass these to
// cluster.Config.Tables (or create them via Store.CreateTable on an
// embedded DB).
func Tables() []cluster.TableSpec {
	return []cluster.TableSpec{
		{Name: "item", Groups: []string{"detail"}},
		{Name: "customer", Groups: []string{"cart"}},
		{Name: "orders", Groups: []string{"order"}},
	}
}

// CreateTables declares the schema through the Store interface (for
// backends whose tables were not pre-declared at cluster start).
func CreateTables(st logbase.Store) error {
	for _, ts := range Tables() {
		if err := st.CreateTable(ts.Name, ts.Groups...); err != nil {
			return err
		}
	}
	return nil
}

func itemKey(i int64) []byte     { return []byte(fmt.Sprintf("item%010d", i)) }
func customerKey(c int64) []byte { return []byte(fmt.Sprintf("cust%010d", c)) }
func orderKey(c, seq int64) []byte {
	return []byte(fmt.Sprintf("cust%010d/order%08d", c, seq))
}

// Load bulk-loads items and customers (the paper loads 1M products and
// customers per node; scale down via counts). Each worker buffers rows
// in a WriteBatch and flushes in sweeps — the bulk-load path.
func Load(st logbase.Store, items, customers int64, workers int) error {
	if workers <= 0 {
		workers = 1
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 2*workers)
	loadRange := func(n int64, put func(b *logbase.WriteBatch, i int64)) {
		per := n / int64(workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch := st.Batch()
				lo := int64(w) * per
				hi := lo + per
				if w == workers-1 {
					hi = n
				}
				for i := lo; i < hi; i++ {
					put(batch, i)
					if batch.Len() >= 256 {
						if err := batch.Flush(ctx); err != nil {
							errCh <- err
							return
						}
					}
				}
				if err := batch.Flush(ctx); err != nil {
					errCh <- err
				}
			}(w)
		}
	}
	detail := []byte(`{"title":"product","price":9.99,"stock":100}`)
	cart := []byte(`{"items":[],"total":0}`)
	loadRange(items, func(b *logbase.WriteBatch, i int64) {
		b.Put("item", "detail", itemKey(i), detail)
	})
	loadRange(customers, func(b *logbase.WriteBatch, i int64) {
		b.Put("customer", "cart", customerKey(i), cart)
	})
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// Result summarises one mix run.
type Result struct {
	Mix        Mix
	Txns       int64
	Elapsed    time.Duration
	Throughput float64 // transactions/sec
	Latency    *ycsb.Histogram
	Aborted    int64
}

// Run stress-tests the store with one client thread per worker
// continuously submitting transactions of the mix (§4.4).
func Run(st logbase.Store, mix Mix, items, customers, txns int64, workers int, seed int64) (Result, error) {
	if workers <= 0 {
		workers = 1
	}
	res := Result{Mix: mix, Latency: &ycsb.Histogram{}}
	var wg sync.WaitGroup
	var aborted int64
	var abortedMu sync.Mutex
	errCh := make(chan error, workers)
	itemDist := ycsb.NewZipfian(items, 0.99)
	per := txns / int64(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 104729*int64(w)))
			n := per
			if w == workers-1 {
				n = txns - per*int64(workers-1)
			}
			for i := int64(0); i < n; i++ {
				txStart := time.Now()
				var err error
				if rng.Float64() < mix.UpdateFrac {
					err = orderRequest(st, rng.Int63n(customers), i, w)
				} else {
					err = productDetail(st, itemDist.Next(rng))
				}
				if err != nil {
					if errors.Is(err, logbase.ErrConflict) {
						abortedMu.Lock()
						aborted++
						abortedMu.Unlock()
						continue
					}
					errCh <- err
					return
				}
				res.Latency.Record(time.Since(txStart))
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return res, err
	}
	res.Elapsed = time.Since(start)
	res.Txns = res.Latency.Count()
	res.Aborted = aborted
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Txns) / res.Elapsed.Seconds()
	}
	return res, nil
}

// productDetail is the read-only transaction: one read of a product's
// details.
func productDetail(st logbase.Store, item int64) error {
	ctx := context.Background()
	return logbase.RunTx(ctx, st, func(tx logbase.Tx) error {
		_, err := tx.Get(ctx, "item", "detail", itemKey(item))
		return err
	})
}

// orderRequest is the update transaction: read the customer's shopping
// cart, then write one row into the orders table. The order key shares
// the customer's prefix, so both rows usually land on one tablet (the
// entity-group partitioning of §3.2) and commit without 2PC.
func orderRequest(st logbase.Store, customer, seq int64, worker int) error {
	ctx := context.Background()
	return logbase.RunTx(ctx, st, func(tx logbase.Tx) error {
		cart, err := tx.Get(ctx, "customer", "cart", customerKey(customer))
		if err != nil {
			return err
		}
		oKey := orderKey(customer, seq*1000+int64(worker))
		order := append([]byte(`{"from-cart":`), cart...)
		order = append(order, '}')
		return tx.Put("orders", "order", oKey, order)
	})
}
