package textproto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/readopt"
)

// fakeStore is an in-memory Store for protocol tests.
type fakeStore struct {
	tables   map[string]map[string]map[string][]versioned // table -> group -> key
	clock    int64
	reg      *obs.Registry // nil = backend without a registry
	events   []cdc.Event   // every committed mutation, in LSN order
	views    map[string]*fakeView
	replicas []ReplicaStat   // attached to the STATS snapshot
	scrubs   []ScrubSnapshot // SCRUB reply; nil = nothing scrubbed
	scrubErr error
}

// fakeView records an MVIEW CREATE; queries are computed live from the
// table state (the fake has no incremental maintenance to test).
type fakeView struct {
	table, group string
	start, end   []byte
	aggs         []string
	prefix       int
}

type versioned struct {
	ts  int64
	val []byte
}

func newFake() *fakeStore {
	return &fakeStore{tables: map[string]map[string]map[string][]versioned{}}
}

func (f *fakeStore) CreateTable(name string, groups ...string) error {
	if len(groups) == 0 {
		return errors.New("need groups")
	}
	if _, ok := f.tables[name]; !ok {
		f.tables[name] = map[string]map[string][]versioned{}
		for _, g := range groups {
			f.tables[name][g] = map[string][]versioned{}
		}
	}
	return nil
}

func (f *fakeStore) groupMap(table, group string) (map[string][]versioned, error) {
	t, ok := f.tables[table]
	if !ok {
		return nil, fmt.Errorf("no table %s", table)
	}
	g, ok := t[group]
	if !ok {
		return nil, fmt.Errorf("no group %s", group)
	}
	return g, nil
}

func (f *fakeStore) Put(_ context.Context, table, group string, key, value []byte) error {
	g, err := f.groupMap(table, group)
	if err != nil {
		return err
	}
	f.clock++
	g[string(key)] = append(g[string(key)], versioned{f.clock, append([]byte(nil), value...)})
	f.record(cdc.Put, table, group, key, value)
	return nil
}

// record appends a changefeed event mirroring a committed mutation.
func (f *fakeStore) record(kind cdc.EventKind, table, group string, key, value []byte) {
	lsn := uint64(len(f.events) + 1)
	f.events = append(f.events, cdc.Event{
		Kind:   kind,
		Table:  table,
		Group:  group,
		Key:    append([]byte(nil), key...),
		Value:  append([]byte(nil), value...),
		TS:     f.clock,
		LSN:    lsn,
		Cursor: lsn,
	})
}

func (f *fakeStore) Get(_ context.Context, table, group string, key []byte) (Row, error) {
	g, err := f.groupMap(table, group)
	if err != nil {
		return Row{}, err
	}
	vs := g[string(key)]
	if len(vs) == 0 {
		return Row{}, errors.New("not found")
	}
	last := vs[len(vs)-1]
	return Row{Key: key, TS: last.ts, Value: last.val}, nil
}

func (f *fakeStore) GetAt(_ context.Context, table, group string, key []byte, ts int64) (Row, error) {
	g, err := f.groupMap(table, group)
	if err != nil {
		return Row{}, err
	}
	var best *versioned
	for i := range g[string(key)] {
		v := &g[string(key)][i]
		if v.ts <= ts && (best == nil || v.ts > best.ts) {
			best = v
		}
	}
	if best == nil {
		return Row{}, errors.New("not found")
	}
	return Row{Key: key, TS: best.ts, Value: best.val}, nil
}

func (f *fakeStore) Versions(_ context.Context, table, group string, key []byte) ([]Row, error) {
	g, err := f.groupMap(table, group)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, v := range g[string(key)] {
		out = append(out, Row{Key: key, TS: v.ts, Value: v.val})
	}
	return out, nil
}

func (f *fakeStore) Delete(_ context.Context, table, group string, key []byte) error {
	g, err := f.groupMap(table, group)
	if err != nil {
		return err
	}
	delete(g, string(key))
	f.record(cdc.Delete, table, group, key, nil)
	return nil
}

func (f *fakeStore) Scan(ctx context.Context, table, group string, start, end []byte, opt readopt.Options) Iterator {
	g, err := f.groupMap(table, group)
	if err != nil {
		return &sliceIter{err: err}
	}
	start, end = opt.ClampRange(start, end)
	ts := opt.Snapshot
	if ts == 0 {
		ts = f.clock
	}
	var keys []string
	for k := range g {
		if len(start) > 0 && k < string(start) {
			continue
		}
		if end != nil && k >= string(end) {
			continue
		}
		if !opt.Key.Match([]byte(k)) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if opt.Reverse {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	it := &sliceIter{}
	for _, k := range keys {
		row, rerr := f.GetAt(ctx, table, group, []byte(k), ts)
		if rerr != nil || !opt.Value.Match(row.Value) {
			continue
		}
		it.rows = append(it.rows, row)
		if opt.Limit > 0 && len(it.rows) >= opt.Limit {
			break
		}
	}
	return it
}

// sliceIter is a trivial in-memory Iterator for the fake store.
type sliceIter struct {
	rows []Row
	pos  int
	err  error
}

func (it *sliceIter) Next() bool {
	if it.err != nil || it.pos >= len(it.rows) {
		return false
	}
	it.pos++
	return true
}

func (it *sliceIter) Row() Row     { return it.rows[it.pos-1] }
func (it *sliceIter) Err() error   { return it.err }
func (it *sliceIter) Close() error { return it.err }

// Exec runs a query statement through the real relational executor
// (internal/query) over the fake's in-memory state, so protocol tests
// exercise joins, grouping and multi-aggregate statements end to end.
func (f *fakeStore) Exec(ctx context.Context, stmt *query.Statement) (QueryReply, error) {
	if err := stmt.Validate(); err != nil {
		return QueryReply{}, err
	}
	for _, r := range stmt.Rels() {
		if _, err := f.groupMap(r.Table, r.Group); err != nil {
			return QueryReply{}, err
		}
	}
	ts := stmt.AtTS
	if ts == 0 {
		ts = f.clock
	}
	res, err := query.ExecStatement(ctx, stmt, ts, &fakeFetcher{f: f, rels: stmt.Rels(), ts: ts}, query.ExecOptions{})
	if err != nil {
		return QueryReply{}, err
	}
	rep := QueryReply{TS: res.TS}
	for _, a := range stmt.Aggs {
		name := a.Name
		if name == "" {
			name = a.Kind.String()
		}
		rep.Aggs = append(rep.Aggs, name)
	}
	for _, g := range res.Groups {
		qg := QueryGroup{Key: g.Key, Rows: g.Rows}
		for i, a := range stmt.Aggs {
			qg.Values = append(qg.Values, g.Aggs[i].Value(a.Kind))
		}
		rep.Groups = append(rep.Groups, qg)
	}
	return rep, nil
}

// fakeFetcher adapts the fake's Scan to the join executor's storage
// surface (one relation fetch under a push-down filter).
type fakeFetcher struct {
	f    *fakeStore
	rels []query.Rel
	ts   int64
}

func (ff *fakeFetcher) Fetch(ctx context.Context, rel int, flt query.Filter) ([]core.Row, error) {
	r := ff.rels[rel]
	it := ff.f.Scan(ctx, r.Table, r.Group, flt.Start, flt.End, readopt.Options{
		Snapshot: ff.ts, Key: flt.Key, Value: flt.Value,
	})
	defer it.Close()
	var rows []core.Row
	for it.Next() {
		row := it.Row()
		rows = append(rows, core.Row{Key: row.Key, TS: row.TS, Value: row.Value})
	}
	return rows, it.Err()
}

func (ff *fakeFetcher) FetchSecondary(context.Context, int, string, [][]byte) ([]core.Row, error) {
	return nil, errors.New("fake store has no secondary indexes")
}

func (f *fakeStore) Checkpoint() error { return nil }

func (f *fakeStore) Compact(context.Context) error { return nil }

func (f *fakeStore) Scrub(context.Context) ([]ScrubSnapshot, error) {
	return f.scrubs, f.scrubErr
}

func (f *fakeStore) Stats(context.Context) ([]StatsSnapshot, error) {
	return []StatsSnapshot{{Server: "fake", Writes: 7, SortedFraction: 0.5, Segments: 2, Replicas: f.replicas}}, nil
}

func (f *fakeStore) Metrics() *obs.Registry { return f.reg }

// Watch replays the recorded events matching the filter and then ends
// the feed — a finite stream, so WATCH sessions terminate with END.
func (f *fakeStore) Watch(_ context.Context, table, group string, start, end []byte, fromLSN uint64) (cdc.Feed, error) {
	if _, ok := f.tables[table]; !ok {
		return nil, fmt.Errorf("no table %s", table)
	}
	ff := &fakeFeed{}
	for _, ev := range f.events {
		if ev.Table != table || ev.Cursor < fromLSN {
			continue
		}
		if group != "" && ev.Group != group {
			continue
		}
		if len(start) > 0 && string(ev.Key) < string(start) {
			continue
		}
		if len(end) > 0 && string(ev.Key) >= string(end) {
			continue
		}
		ff.events = append(ff.events, ev)
	}
	return ff, nil
}

// fakeFeed is a finite replay of recorded events.
type fakeFeed struct {
	events []cdc.Event
	pos    int
	closed bool
}

func (ff *fakeFeed) Next(ctx context.Context) (cdc.Event, error) {
	if err := ctx.Err(); err != nil {
		return cdc.Event{}, err
	}
	if ff.closed || ff.pos >= len(ff.events) {
		return cdc.Event{}, cdc.ErrFeedClosed
	}
	ev := ff.events[ff.pos]
	ff.pos++
	return ev, nil
}

func (ff *fakeFeed) Close() error {
	ff.closed = true
	return nil
}

func (f *fakeStore) MViewCreate(_ context.Context, name, table, group string, start, end []byte, aggs []string, groupPrefix int) error {
	if _, err := f.groupMap(table, group); err != nil {
		return err
	}
	if _, exists := f.views[name]; exists {
		return fmt.Errorf("view %s already exists", name)
	}
	if f.views == nil {
		f.views = map[string]*fakeView{}
	}
	f.views[name] = &fakeView{table: table, group: group, start: start, end: end, aggs: aggs, prefix: groupPrefix}
	return nil
}

func (f *fakeStore) MViewQuery(ctx context.Context, name string) (MViewReply, error) {
	v, ok := f.views[name]
	if !ok {
		return MViewReply{}, fmt.Errorf("no view %s", name)
	}
	rep := MViewReply{TS: f.clock, Aggs: v.aggs}
	for i, agg := range v.aggs {
		kind, err := query.ParseAggKind(agg)
		if err != nil {
			return MViewReply{}, err
		}
		stmt := query.NewStatement(v.table).Group(v.group).Range(v.start, v.end)
		if kind == query.Count {
			stmt.Agg(kind)
		} else {
			stmt.AggOf(kind, v.table, query.ValExpr())
		}
		if v.prefix > 0 {
			stmt.GroupBy(v.prefix)
		}
		qr, err := f.Exec(ctx, stmt)
		if err != nil {
			return MViewReply{}, err
		}
		for j, g := range qr.Groups {
			if i == 0 {
				rep.Groups = append(rep.Groups, MViewGroup{Key: g.Key, Rows: g.Rows})
			}
			rep.Groups[j].Values = append(rep.Groups[j].Values, g.Values[0])
		}
	}
	return rep, nil
}

func (f *fakeStore) MViewStats(_ context.Context, name string) (MViewStatsReply, error) {
	v, ok := f.views[name]
	if !ok {
		return MViewStatsReply{}, fmt.Errorf("no view %s", name)
	}
	return MViewStatsReply{
		Name: name, Table: v.table, Group: v.group,
		WatermarkLSN: uint64(len(f.events)), WatermarkTS: f.clock,
		Events: uint64(len(f.events)), Groups: 1, Keys: 1,
	}, nil
}

// session runs a script through Serve and returns response lines.
func session(t *testing.T, db Store, script ...string) []string {
	t.Helper()
	var out bytes.Buffer
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader(strings.Join(script, "\n") + "\n"), &out}
	if err := Serve(context.Background(), rw, db); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	return lines
}

func TestBasicSession(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE users profile",
		"PUT users profile alice hello world",
		"GET users profile alice",
		"DEL users profile alice",
		"GET users profile alice",
		"QUIT",
	)
	want := []string{"OK table users", "OK", "VAL 1 hello world", "OK", "ERR not found", "OK bye"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestVersionsAndGetAt(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE t g",
		"PUT t g k v1",
		"PUT t g k v2",
		"VERSIONS t g k",
		"GETAT t g k 1",
		"GETAT t g k nonsense",
	)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ROW k 1 v1") || !strings.Contains(joined, "ROW k 2 v2") {
		t.Errorf("versions missing: %v", lines)
	}
	if !strings.Contains(joined, "END 2") {
		t.Errorf("no END marker: %v", lines)
	}
	if !strings.Contains(joined, "VAL 1 v1") {
		t.Errorf("GETAT failed: %v", lines)
	}
	if !strings.Contains(joined, `ERR bad timestamp`) {
		t.Errorf("bad ts not rejected: %v", lines)
	}
}

func TestScanWithLimit(t *testing.T) {
	db := newFake()
	script := []string{"CREATE t g"}
	for i := 0; i < 10; i++ {
		script = append(script, fmt.Sprintf("PUT t g k%d v%d", i, i))
	}
	script = append(script, "SCAN t g k0 k9 3")
	lines := session(t, db, script...)
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "ROW ") {
			rows++
		}
	}
	if rows != 3 {
		t.Errorf("limit ignored: %d rows", rows)
	}
	if lines[len(lines)-1] != "END 3" {
		t.Errorf("last line = %q", lines[len(lines)-1])
	}
}

func TestMalformedCommands(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"BOGUS",
		"PUT onlytwo args",
		"GET t",
		"",
		"CHECKPOINT",
	)
	errCount := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "ERR ") {
			errCount++
		}
	}
	if errCount != 3 {
		t.Errorf("%d ERR lines, want 3: %v", errCount, lines)
	}
	if lines[len(lines)-1] != "OK checkpoint" {
		t.Errorf("checkpoint reply = %q", lines[len(lines)-1])
	}
}

func TestQueryCommand(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE m v",
		"PUT m v a1 10",
		"PUT m v a2 20",
		"PUT m v b1 5",
		"QUERY m v COUNT",
		"QUERY m v SUM a *",
		"QUERY m v SUM a b",
		"QUERY m v COUNT * * BY 1",
		"QUERY m v MEDIAN",
		"QUERY m v SUM AT",
		"QUERY m v SUM AT 2 b1",
		"QUERY m v SUM a b c",
		"QUIT",
	)
	want := []string{
		"OK table m",
		"OK", "OK", "OK",
		"AGG - COUNT 3 rows=3", "END 1 3",
		"AGG - SUM 35 rows=3", "END 1 3",
		"AGG - SUM 30 rows=2", "END 1 3",
		"AGG a COUNT 2 rows=2", "AGG b COUNT 1 rows=1", "END 2 3",
		`ERR query: unknown aggregate "MEDIAN"`,
		"ERR query: AT needs a timestamp",
		`ERR query: unexpected token "b1"`,
		`ERR query: unexpected token "c"`,
		"OK bye",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestQueryJoinCommand(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE orders g",
		"CREATE customers g",
		"PUT customers g c1 east",
		"PUT customers g c2 west",
		"PUT orders g o1 c1,10",
		"PUT orders g o2 c1,20",
		"PUT orders g o3 c2,5",
		"QUERY orders g COUNT JOIN customers g ON orders VAL[0] KEY BY customers KEY 2 AGG SUM orders VAL[1]",
		"QUERY orders g COUNT JOIN customers g ON orders VAL[0] KEY FILTER VAL CONTAINS east",
		"QUERY orders g JOIN customers g ON orders VAL[0] KEY BY customers KEY 2 AGG COUNT orders * AGG SUM orders VAL[1]",
		"QUERY orders g FROM o2 AGG COUNT orders *",
		"QUERY orders g COUNT JOIN missing g ON orders VAL[0] KEY",
		"QUIT",
	)
	want := []string{
		"OK table orders", "OK table customers",
		"OK", "OK", "OK", "OK", "OK",
		// Two groups (customer key), two aggregates each, statement
		// order: the positional COUNT first, then the extra SUM.
		"AGG c1 COUNT 2 rows=2", "AGG c1 SUM 30 rows=2",
		"AGG c2 COUNT 1 rows=1", "AGG c2 SUM 5 rows=1",
		"END 2 5",
		// Value push-down on the joined relation keeps only the east
		// customer's orders.
		"AGG - COUNT 2 rows=2", "END 1 5",
		// The pure statement form (no positional aggregate) answers the
		// same join.
		"AGG c1 COUNT 2 rows=2", "AGG c1 SUM 30 rows=2",
		"AGG c2 COUNT 1 rows=1", "AGG c2 SUM 5 rows=1",
		"END 2 5",
		// Pure form, join-free: FROM right after the group.
		"AGG - COUNT 2 rows=2", "END 1 5",
		"ERR no table missing",
		"OK bye",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestQueryCommandHistorical(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE m v",
		"PUT m v k 1",
		"PUT m v k 100",
		"QUERY m v SUM * * AT 1",
		"QUERY m v SUM",
		"QUIT",
	)
	want := []string{
		"OK table m", "OK", "OK",
		"AGG - SUM 1 rows=1", "END 1 1",
		"AGG - SUM 100 rows=1", "END 1 2",
		"OK bye",
	}
	for i := range want {
		if i >= len(lines) || lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q (all: %v)", i, lines[i], want[i], lines)
		}
	}
}

func TestScanPushdownOperands(t *testing.T) {
	db := newFake()
	script := []string{"CREATE t g"}
	for i := 0; i < 10; i++ {
		script = append(script, fmt.Sprintf("PUT t g a%d v%d", i, i))
		script = append(script, fmt.Sprintf("PUT t g b%d w%d", i, i))
	}
	lines := session(t, db, script...)
	_ = lines

	rows := func(lines []string) []string {
		var out []string
		for _, l := range lines {
			if strings.HasPrefix(l, "ROW ") {
				out = append(out, l)
			}
		}
		return out
	}

	// LIMIT + REVERSE: last 3 keys, descending.
	got := rows(session(t, db, "SCAN t g * * LIMIT 3 REVERSE"))
	if len(got) != 3 || !strings.HasPrefix(got[0], "ROW b9 ") || !strings.HasPrefix(got[2], "ROW b7 ") {
		t.Fatalf("LIMIT+REVERSE rows = %v", got)
	}

	// PREFIX narrows to the a-keys.
	got = rows(session(t, db, "SCAN t g * * PREFIX a LIMIT 100"))
	if len(got) != 10 || !strings.HasPrefix(got[0], "ROW a0 ") {
		t.Fatalf("PREFIX rows = %v", got)
	}

	// FILTER VAL CONTAINS.
	got = rows(session(t, db, "SCAN t g * * FILTER VAL CONTAINS w7"))
	if len(got) != 1 || !strings.HasPrefix(got[0], "ROW b7 ") {
		t.Fatalf("FILTER VAL rows = %v", got)
	}

	// FILTER KEY RANGE with open bound.
	got = rows(session(t, db, "SCAN t g * * FILTER KEY RANGE b8 *"))
	if len(got) != 2 || !strings.HasPrefix(got[0], "ROW b8 ") {
		t.Fatalf("FILTER KEY RANGE rows = %v", got)
	}

	// AT pins a historical snapshot: overwrite a0, read it back old.
	session(t, db, "PUT t g a0 fresh")
	got = rows(session(t, db, "SCAN t g a0 a1 AT 1"))
	if len(got) != 1 || got[0] != "ROW a0 1 v0" {
		t.Fatalf("AT rows = %v", got)
	}

	// Legacy bare-number limit still works.
	got = rows(session(t, db, "SCAN t g a0 a9 2"))
	if len(got) != 2 {
		t.Fatalf("legacy limit rows = %v", got)
	}

	// Malformed operands produce ERR, not a hang.
	for _, bad := range []string{
		"SCAN t g * * LIMIT",
		"SCAN t g * * FILTER NOPE PREFIX x",
		"SCAN t g * * FILTER KEY BOGUS x",
		"SCAN t g * * WAT",
	} {
		ls := session(t, db, bad)
		if len(ls) != 1 || !strings.HasPrefix(ls[0], "ERR ") {
			t.Fatalf("%q replied %v, want ERR", bad, ls)
		}
	}
}

// TestStatsAndCompact covers the observability commands: STATS streams
// one STAT line per tablet server plus END, COMPACT acknowledges.
func TestStatsAndCompact(t *testing.T) {
	db := newFake()
	lines := session(t, db, "STATS", "COMPACT")
	if len(lines) != 3 {
		t.Fatalf("replies = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "STAT fake ") {
		t.Fatalf("STATS line = %q", lines[0])
	}
	for _, want := range []string{"writes=7", "sorted_frac=0.500", "segments=2", "garbage_frac=0.000"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("STATS line %q missing %q", lines[0], want)
		}
	}
	if lines[1] != "END 1" {
		t.Fatalf("STATS terminator = %q", lines[1])
	}
	if lines[2] != "OK compact" {
		t.Fatalf("COMPACT reply = %q", lines[2])
	}
}

func TestScrubCommand(t *testing.T) {
	db := newFake()
	db.scrubs = []ScrubSnapshot{
		{Server: "ts00", Segments: 3, Blocks: 12, ReplicasRead: 36, RepairedBlocks: 1},
		{Server: "ts01", Segments: 2, Blocks: 8, ReplicasRead: 24,
			Unrecoverable: []string{"segment 4 offset 128: bad record crc"}},
	}
	lines := session(t, db, "SCRUB")
	want := []string{
		"SCRUB ts00 segments=3 blocks=12 replicas_read=36 repaired=1 unrecoverable=0",
		"SCRUB ts01 segments=2 blocks=8 replicas_read=24 repaired=0 unrecoverable=1",
		"DEFECT ts01 segment 4 offset 128: bad record crc",
		"END repaired=1 unrecoverable=1",
	}
	if len(lines) != len(want) {
		t.Fatalf("SCRUB replies = %v", lines)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("SCRUB line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestScrubCommandError(t *testing.T) {
	db := newFake()
	db.scrubErr = errors.New("dfs unavailable")
	lines := session(t, db, "SCRUB")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Fatalf("SCRUB error replies = %v", lines)
	}
}

// TestStatsMetricLines covers the expanded STATS command: a backend
// with a registry streams the whole registry as METRIC lines behind
// the STAT lines, and END counts every emitted line.
func TestStatsMetricLines(t *testing.T) {
	db := newFake()
	db.reg = obs.NewRegistry()
	db.reg.Counter("ops_total", "", obs.Labels{"server": "fake"}).Add(3)
	db.reg.GaugeFunc("frac", "", nil, func() float64 { return 0.25 })
	h := db.reg.Histogram("lat_seconds", "", nil)
	h.ObserveValue(1e9) // 1s in ns: scaled to seconds on the wire
	lines := session(t, db, "STATS")
	want := []string{
		"STAT fake ",
		`METRIC ops_total{server="fake"} 3`,
		"METRIC frac 0.25",
		"METRIC lat_seconds count=1 p50=1",
		"END 4",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i, w := range want {
		if !strings.HasPrefix(lines[i], w) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], w)
		}
	}
}

func TestParseStatLine(t *testing.T) {
	srv, kv, ok := ParseStatLine("STAT ts03 writes=12 sorted_frac=0.750 bogus garbage=x")
	if !ok || srv != "ts03" {
		t.Fatalf("ParseStatLine: ok=%v srv=%q", ok, srv)
	}
	if kv["writes"] != 12 || kv["sorted_frac"] != 0.75 {
		t.Errorf("kv = %v", kv)
	}
	if _, bad := kv["garbage"]; bad {
		t.Errorf("malformed pair kept: %v", kv)
	}
	if _, _, ok := ParseStatLine("METRIC x 1"); ok {
		t.Error("non-STAT line accepted")
	}
	if _, _, ok := ParseStatLine(""); ok {
		t.Error("empty line accepted")
	}
}

func TestWatchCommand(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE pages views",
		"PUT pages views /a 1",
		"PUT pages views /b 2",
		"DEL pages views /a",
		"WATCH pages views * *",
	)
	want := []string{
		"OK table pages",
		"OK", "OK", "OK",
		"EVENT PUT views /a 1 1 1 1",
		"EVENT PUT views /b 2 2 2 2",
		"EVENT DELETE views /a 2 3 3",
		"END 3",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestWatchFromAndLimit(t *testing.T) {
	db := newFake()
	setup := []string{
		"CREATE pages views",
		"PUT pages views /a 1",
		"PUT pages views /b 2",
		"DEL pages views /a",
	}

	// FROM resumes after a cursor: only events with cursor >= 2.
	lines := session(t, db, append(setup, "WATCH pages * * * FROM 2")...)
	tail := lines[len(setup):]
	want := []string{
		"EVENT PUT views /b 2 2 2 2",
		"EVENT DELETE views /a 2 3 3",
		"END 2",
	}
	if len(tail) != len(want) {
		t.Fatalf("FROM 2: got %v, want %v", tail, want)
	}
	for i := range want {
		if tail[i] != want[i] {
			t.Errorf("FROM 2 line %d = %q, want %q", i, tail[i], want[i])
		}
	}

	// LIMIT bounds the stream.
	lines = session(t, newFakeFrom(t, setup), "WATCH pages * * * LIMIT 1")
	if len(lines) != 2 || lines[0] != "EVENT PUT views /a 1 1 1 1" || lines[1] != "END 1" {
		t.Errorf("LIMIT 1: got %v", lines)
	}

	// Key-range filter.
	lines = session(t, newFakeFrom(t, setup), "WATCH pages * /b *")
	if len(lines) != 2 || lines[0] != "EVENT PUT views /b 2 2 2 2" || lines[1] != "END 1" {
		t.Errorf("range [/b, nil): got %v", lines)
	}

	// Malformed operand and unknown table are ERRs, not stream output.
	lines = session(t, newFakeFrom(t, setup), "WATCH pages * * * FROM x")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Errorf("bad FROM: got %v", lines)
	}
	lines = session(t, newFakeFrom(t, setup), "WATCH nosuch * * *")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Errorf("unknown table: got %v", lines)
	}
}

// newFakeFrom builds a fresh fake store pre-loaded via a script.
func newFakeFrom(t *testing.T, script []string) *fakeStore {
	t.Helper()
	db := newFake()
	session(t, db, script...)
	return db
}

func TestMViewCommands(t *testing.T) {
	db := newFake()
	lines := session(t, db,
		"CREATE pages views",
		"PUT pages views /a/x 1",
		"PUT pages views /a/y 2",
		"PUT pages views /b/z 3",
		"MVIEW CREATE pv pages views COUNT,SUM * * BY 2",
		"MVIEW QUERY pv",
		"MVIEW STATS pv",
	)
	want := []string{
		"OK table pages",
		"OK", "OK", "OK",
		"OK view pv",
		"AGG /a COUNT 2 rows=2",
		"AGG /a SUM 3 rows=2",
		"AGG /b COUNT 1 rows=1",
		"AGG /b SUM 3 rows=1",
		"END 2 3",
		"STAT pv watermark_lsn=3 watermark_ts=3 events=3 snapshot_rows=0 skipped=0 groups=1 keys=1",
		"END 1",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}

	// Duplicate name, unknown view, malformed subcommand.
	lines = session(t, db, "MVIEW CREATE pv pages views COUNT")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Errorf("duplicate view: got %v", lines)
	}
	lines = session(t, db, "MVIEW QUERY nada")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Errorf("unknown view: got %v", lines)
	}
	lines = session(t, db, "MVIEW BOGUS pv")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR ") {
		t.Errorf("bad subcommand: got %v", lines)
	}
}

// TestStatsReplicaLines covers the replication half of STATS: each
// replica rides behind its primary's STAT line as one "STAT <replica>
// replica_*" line that ParseStatLine (and thereby the CLI's watch mode)
// decodes like any other.
func TestStatsReplicaLines(t *testing.T) {
	db := newFake()
	db.replicas = []ReplicaStat{{
		Replica: "fake.r0", Generation: 1, AppliedLSN: 90, SourceLSN: 100,
		LagRecords: 10, LagSeconds: 0.5, WatermarkTS: 42, ReadsServed: 7,
	}}
	lines := session(t, db, "STATS")
	if len(lines) != 3 {
		t.Fatalf("replies = %v", lines)
	}
	if !strings.HasPrefix(lines[1], "STAT fake.r0 ") {
		t.Fatalf("replica line = %q", lines[1])
	}
	srv, kv, ok := ParseStatLine(lines[1])
	if !ok || srv != "fake.r0" {
		t.Fatalf("ParseStatLine(%q) = %q, %v", lines[1], srv, ok)
	}
	for k, want := range map[string]float64{
		"replica_generation": 1, "replica_applied_lsn": 90, "replica_source_lsn": 100,
		"replica_lag_records": 10, "replica_lag_seconds": 0.5,
		"replica_watermark_ts": 42, "replica_reads_served": 7,
	} {
		if kv[k] != want {
			t.Errorf("%s = %v, want %v", k, kv[k], want)
		}
	}
	if lines[2] != "END 2" {
		t.Fatalf("terminator = %q (replica line not counted?)", lines[2])
	}
}

// TestScanReplicaOptions covers the PRIMARY and MAXLAG scan operands:
// they decode onto the readopt routing fields and reject malformed
// values like every other option.
func TestScanReplicaOptions(t *testing.T) {
	opt, msg := parseScanOptions([]string{"AT", "5", "PRIMARY"})
	if msg != "" || !opt.Primary || opt.Snapshot != 5 {
		t.Fatalf("PRIMARY parse = %+v, %q", opt, msg)
	}
	opt, msg = parseScanOptions([]string{"MAXLAG", "64", "LIMIT", "3"})
	if msg != "" || opt.MaxLag != 64 || opt.Limit != 3 {
		t.Fatalf("MAXLAG parse = %+v, %q", opt, msg)
	}
	for _, bad := range [][]string{{"MAXLAG"}, {"MAXLAG", "x"}, {"MAXLAG", "0"}} {
		if _, msg := parseScanOptions(bad); msg == "" {
			t.Fatalf("parseScanOptions(%v) accepted, want error", bad)
		}
	}
	// And on the wire: a replicated-options scan still answers (the fake
	// has no replicas; the options must be harmless pass-through).
	db := newFake()
	lines := session(t, db, "CREATE t g", "PUT t g k v", "SCAN t g * * PRIMARY MAXLAG 8")
	last := lines[len(lines)-2]
	if !strings.HasPrefix(last, "ROW k ") {
		t.Fatalf("replicated-option scan rows = %v", lines)
	}
	if ls := session(t, db, "SCAN t g * * MAXLAG"); len(ls) != 1 || !strings.HasPrefix(ls[0], "ERR ") {
		t.Fatalf("bare MAXLAG replied %v, want ERR", ls)
	}
}
