// Package textproto implements the line-oriented protocol spoken by
// cmd/logbase-server and cmd/logbase-cli: one command per line, one or
// more response lines ("OK ...", "VAL <ts> <value>", "ROW <key> <ts>
// <value>", "AGG <group> <op> <value> rows=<n>", "END <n>", "ERR
// <msg>"). It exists as a package so the protocol is unit-testable
// without sockets.
//
// SCAN carries the push-down read options on the wire:
//
//	SCAN <table> <group> [start|*] [end|*] [LIMIT n] [REVERSE]
//	     [AT ts] [PREFIX p] [FILTER KEY|VAL <predicate>]
//	     [PRIMARY] [MAXLAG n]
//
// where <predicate> is the serializable set from internal/readopt
// (PREFIX <op> | CONTAINS <op> | RANGE <lo|*> <hi|*>, operands
// %-escaped). Everything after the positional bounds is evaluated at
// the tablet server, not in the session loop; a bare number in place
// of LIMIT n is accepted for compatibility with the old
// "SCAN t g start end [limit]" form. PRIMARY forces the read onto the
// primary even when a caught-up replica could serve it; MAXLAG n
// allows a replica only if its shipping cursor trails the primary log
// by at most n records (both map onto internal/readopt options and are
// meaningful only with AT on a replicated deployment).
//
// STATS streams one "STAT <server> k=v ..." line per tablet server —
// operation counters, read-buffer hits, and the compaction gauges
// (sorted_frac, garbage_frac, per-run drops/reclaims) operators watch
// to confirm background compaction is keeping up. A server with WAL-
// shipping read replicas is followed by one "STAT <replica> replica_*"
// line per replica (applied/source LSN, lag in records and seconds,
// watermark timestamp, reads served, re-bootstrap generation), which
// is how `logbase-cli stats --watch` renders per-replica lag deltas.
// COMPACT forces a whole-log compaction on every server.
//
// SCRUB verifies every server's log segments against all DFS
// replicas (record frames and sorted-segment footer CRCs): one
// "SCRUB <server> segments=.. blocks=.. replicas_read=.. repaired=..
// unrecoverable=.." line per tablet server, a "DEFECT <server>
// segment <n> offset <m>: <why>" line per range no replica
// assignment can decode, then "END repaired=<r> unrecoverable=<u>".
// Corrupt replica blocks are repaired in place from a healthy peer;
// a clean second SCRUB confirms the repair.
//
// WATCH subscribes a changefeed and streams it down the session:
//
//	WATCH <table> <group|*> <start|*> <end|*> [FROM lsn] [LIMIT n]
//
// One "EVENT <PUT|DELETE> <group> <key> <ts> <lsn> <cursor> [value]"
// line per committed mutation — historical catch-up from the retained
// log first, then a live tail. FROM resumes after a previously
// observed cursor (embedded backend; pass cursor+1). The stream ends
// with "END <n>" after LIMIT events; without LIMIT it runs until the
// client disconnects. A resume below the compaction reclaim horizon
// fails with an ERR naming the truncation — re-subscribe from 0.
//
// QUERY runs one compiled query statement per line — the legacy
// positional aggregate form, now extended with the statement grammar
// (select push-down, multi-table equi-joins, expression grouping,
// extra aggregates):
//
//	QUERY <table> <group> [<agg> [start|*] [end|*]]
//	      [FROM k] [TO k] [FILTER KEY|VAL <predicate>]*
//	      [JOIN <table> <group> ON <ltable> <lexpr> <rexpr> [VIA index]
//	           [FROM k] [TO k] [FILTER KEY|VAL <predicate>]*]*
//	      [AT ts] [BY n | BY <table> <expr> <n>]
//	      [AGG <agg> <table> <expr|*>]*
//
// where <expr> is KEY, VAL, KEY[i] or VAL[i] (comma-separated field i)
// and FROM/TO operands are %-escaped. The whole line is translated
// onto the serializable statement wire form (internal/query) and
// executed as ONE statement. In the legacy positional prefix the
// <agg> becomes the first aggregate (COUNT counts tuples, others
// aggregate the row value) and the raw [start] [end] bounds are
// escaped for the caller; a statement keyword in the <agg> position
// means the pure statement form (bring your own AGG clauses, escape
// your own FROM/TO operands). The legacy "BY n" shorthand groups on
// an n-byte base-key prefix in either form. Join order is chosen
// greedily by the engine. The reply is one "AGG <group|-> <op>
// <value> rows=<n>" line per group × aggregate, then "END <groups>
// <ts>".
//
// MVIEW manages materialized aggregate views:
//
//	MVIEW CREATE <name> <table> <group> <agg[,agg...]> [start|*] [end|*] [BY n]
//	MVIEW QUERY <name>
//	MVIEW STATS <name>
//
// CREATE bootstraps the view (snapshot scan + changefeed) and returns
// once it is registered; QUERY answers "AGG <group> <op> <value>
// rows=<n>" per group × aggregate from the incrementally maintained
// state (no scan), ending "END <groups> <watermark-ts>"; STATS reports
// the view's watermark and apply counters as one STAT line.
package textproto

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cdc"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/readopt"
)

// Store is the engine surface the protocol drives. It mirrors the root
// package's logbase.Store (context-aware methods, pull-based iterator
// scans) with nominal Row/Iterator types, so cmd/logbase-server adapts
// either backend — embedded *logbase.DB or *logbase.ClusterClient —
// with pure type conversions.
type Store interface {
	CreateTable(name string, groups ...string) error
	Put(ctx context.Context, table, group string, key, value []byte) error
	Get(ctx context.Context, table, group string, key []byte) (Row, error)
	GetAt(ctx context.Context, table, group string, key []byte, ts int64) (Row, error)
	Versions(ctx context.Context, table, group string, key []byte) ([]Row, error)
	Delete(ctx context.Context, table, group string, key []byte) error
	// Scan returns a pull-based iterator over the visible version of
	// each key in [start, end) with the push-down options applied at
	// the storage layer; the session streams it to exhaustion (opt
	// carries the row limit) and Closes it.
	Scan(ctx context.Context, table, group string, start, end []byte, opt readopt.Options) Iterator
	// Exec runs one compiled query statement (the QUERY command):
	// snapshot-consistent aggregates, select push-down, key-prefix or
	// expression grouping, and multi-table equi-joins, at AtTS (0 =
	// latest). The reply carries one value per statement aggregate per
	// group.
	Exec(ctx context.Context, stmt *query.Statement) (QueryReply, error)
	Checkpoint() error
	// Stats returns one observability snapshot per tablet server (the
	// STATS command): operation counters, read-buffer hit rates, and
	// the compaction/storage-layout gauges operators watch to see the
	// background compactor keeping up. Each snapshot must be mutually
	// consistent (taken in one pass, not counter-by-counter).
	Stats(ctx context.Context) ([]StatsSnapshot, error)
	// Metrics returns the engine's metrics registry, or nil when the
	// backend exposes none. A non-nil registry makes STATS stream the
	// whole registry as METRIC lines after the per-server STAT lines.
	Metrics() *obs.Registry
	// Compact runs whole-log compaction on every tablet server (the
	// COMPACT command).
	Compact(ctx context.Context) error
	// Scrub verifies every tablet server's log segments against all
	// DFS replicas — record frames and sorted-segment footer CRCs —
	// repairing corrupt replica blocks from healthy peers and
	// reporting unrecoverable ranges (the SCRUB command). One snapshot
	// per tablet server.
	Scrub(ctx context.Context) ([]ScrubSnapshot, error)
	// Watch subscribes a changefeed (the WATCH command): committed
	// Put/Delete events for keys in [start, end) (nil = open; group ""
	// = all column groups) from fromLSN (0 = beginning of the retained
	// log). The session streams the feed and Closes it.
	Watch(ctx context.Context, table, group string, start, end []byte, fromLSN uint64) (cdc.Feed, error)
	// MViewCreate registers and bootstraps a materialized aggregate
	// view (aggs named like QUERY operators; groupPrefix mirrors BY).
	MViewCreate(ctx context.Context, name, table, group string, start, end []byte, aggs []string, groupPrefix int) error
	// MViewQuery materialises a registered view without scanning.
	MViewQuery(ctx context.Context, name string) (MViewReply, error)
	// MViewStats reports a view's watermark and apply counters.
	MViewStats(ctx context.Context, name string) (MViewStatsReply, error)
}

// MViewReply is a materialized view's current result: the watermark
// timestamp it is exact at, the aggregate operator names in view
// order, and one entry per group carrying a value per aggregate.
type MViewReply struct {
	TS     int64
	Aggs   []string
	Groups []MViewGroup
}

// MViewGroup is one group of an MViewReply; Values aligns with
// MViewReply.Aggs.
type MViewGroup struct {
	Key    string
	Rows   int64
	Values []float64
}

// MViewStatsReply is the MVIEW STATS snapshot.
type MViewStatsReply struct {
	Name         string
	Table        string
	Group        string
	WatermarkLSN uint64
	WatermarkTS  int64
	Events       uint64
	SnapshotRows uint64
	Skipped      uint64
	Groups       int
	Keys         int
}

// StatsSnapshot is one tablet server's STATS line.
type StatsSnapshot struct {
	Server  string
	Writes  int64
	Reads   int64
	Deletes int64
	// LogReads counts rows fetched from the log to serve reads/scans.
	LogReads int64
	// CacheHits/CacheMisses are read-buffer counters.
	CacheHits   int64
	CacheMisses int64
	// Compactions/CompactDropped/BytesReclaimed accumulate across
	// compaction runs (manual and background).
	Compactions    int64
	CompactDropped int64
	BytesReclaimed int64
	// SortedFraction is the fraction of live log bytes in sorted
	// segments; GarbageRatio is known-superseded bytes / live bytes.
	SortedFraction float64
	GarbageRatio   float64
	Segments       int
	LogBytes       int64
	// Replicas lists the server's WAL-shipping read replicas, if any;
	// each is rendered as its own "STAT <replica> replica_*" line.
	Replicas []ReplicaStat
}

// ScrubSnapshot is one tablet server's SCRUB result line: walk
// counters, repairs performed, and any ranges no replica assignment
// could decode (rendered as DEFECT lines).
type ScrubSnapshot struct {
	Server         string
	Segments       int
	Blocks         int
	ReplicasRead   int
	RepairedBlocks int
	// Unrecoverable describes ranges where every replica is corrupt,
	// one human-readable "segment N offset M: why" string each.
	Unrecoverable []string
}

// ReplicaStat is one read replica's shipping state on the STATS wire.
type ReplicaStat struct {
	// Replica is the replica's id (e.g. "ts00.r0").
	Replica string
	// Generation counts truncation-forced re-bootstraps.
	Generation int
	// AppliedLSN is the shipping cursor; SourceLSN the primary log tip;
	// LagRecords their distance.
	AppliedLSN uint64
	SourceLSN  uint64
	LagRecords uint64
	// LagSeconds is how long the replica has continuously trailed the
	// tip (0 when caught up).
	LagSeconds float64
	// WatermarkTS is the snapshot-consistency frontier (reads pinned at
	// or below it may be served here).
	WatermarkTS int64
	// ReadsServed counts reads routed to this replica.
	ReadsServed int64
}

// Iterator is the pull-based row stream the protocol consumes; it
// mirrors logbase.Iterator.
type Iterator interface {
	Next() bool
	Row() Row
	Err() error
	Close() error
}

// QueryReply is the result of a Store.Exec: the pinned snapshot
// timestamp, the aggregate column names in statement order, and one
// entry per group (a single group keyed "" when no grouping was
// requested). It mirrors MViewReply so the QUERY response generalises
// to multi-aggregate join statements.
type QueryReply struct {
	TS     int64
	Aggs   []string
	Groups []QueryGroup
}

// QueryGroup is one aggregated group; Values aligns with
// QueryReply.Aggs.
type QueryGroup struct {
	Key    string
	Rows   int64
	Values []float64
}

// Row mirrors logbase.Row without importing the root package (which
// would create a cycle through tests).
type Row struct {
	Key   []byte
	TS    int64
	Value []byte
}

// Serve reads commands from r and writes responses to w until EOF or
// QUIT. Errors writing to w abort the session; cancelling ctx makes
// in-flight scans and queries fail promptly with an ERR reply.
func Serve(ctx context.Context, rw io.ReadWriter, db Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(rw)
	reply := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(out, format+"\n", args...); err != nil {
			return err
		}
		return out.Flush()
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 6)
		cmd := strings.ToUpper(fields[0])
		var err error
		switch {
		case cmd == "QUIT":
			return reply("OK bye")
		case cmd == "CREATE" && len(fields) >= 3:
			if cerr := db.CreateTable(fields[1], fields[2:]...); cerr != nil {
				err = reply("ERR %v", cerr)
			} else {
				err = reply("OK table %s", fields[1])
			}
		case cmd == "PUT" && len(fields) >= 5:
			if perr := db.Put(ctx, fields[1], fields[2], []byte(fields[3]), []byte(strings.Join(fields[4:], " "))); perr != nil {
				err = reply("ERR %v", perr)
			} else {
				err = reply("OK")
			}
		case cmd == "GET" && len(fields) >= 4:
			row, gerr := db.Get(ctx, fields[1], fields[2], []byte(fields[3]))
			if gerr != nil {
				err = reply("ERR %v", gerr)
			} else {
				err = reply("VAL %d %s", row.TS, row.Value)
			}
		case cmd == "GETAT" && len(fields) >= 5:
			ts, perr := strconv.ParseInt(fields[4], 10, 64)
			if perr != nil {
				err = reply("ERR bad timestamp %q", fields[4])
				break
			}
			row, gerr := db.GetAt(ctx, fields[1], fields[2], []byte(fields[3]), ts)
			if gerr != nil {
				err = reply("ERR %v", gerr)
			} else {
				err = reply("VAL %d %s", row.TS, row.Value)
			}
		case cmd == "VERSIONS" && len(fields) >= 4:
			rows, verr := db.Versions(ctx, fields[1], fields[2], []byte(fields[3]))
			if verr != nil {
				err = reply("ERR %v", verr)
				break
			}
			for _, r := range rows {
				if err = reply("ROW %s %d %s", r.Key, r.TS, r.Value); err != nil {
					break
				}
			}
			if err == nil {
				err = reply("END %d", len(rows))
			}
		case cmd == "DEL" && len(fields) >= 4:
			if derr := db.Delete(ctx, fields[1], fields[2], []byte(fields[3])); derr != nil {
				err = reply("ERR %v", derr)
			} else {
				err = reply("OK")
			}
		case cmd == "SCAN" && len(fields) >= 5:
			// SCAN <table> <group> <start|*> <end|*> [LIMIT n] [REVERSE]
			// [AT ts] [PREFIX p] [FILTER KEY|VAL <pred>] — options are
			// pushed down to the tablet server. Re-split the full line
			// (like QUERY) since SCAN takes open-ended operands.
			args := strings.Fields(line)
			var start, end []byte
			if args[3] != "*" {
				start = []byte(args[3])
			}
			if args[4] != "*" {
				end = []byte(args[4])
			}
			opt, bad := parseScanOptions(args[5:])
			if bad != "" {
				err = reply("ERR %s", bad)
				break
			}
			if opt.Limit <= 0 {
				opt.Limit = 100 // protocol guard: never stream unbounded
			}
			n := 0
			it := db.Scan(ctx, fields[1], fields[2], start, end, opt)
			for it.Next() {
				r := it.Row()
				if err = reply("ROW %s %d %s", r.Key, r.TS, r.Value); err != nil {
					break
				}
				n++
			}
			it.Close() // write error: release the scan
			if err == nil {
				if serr := it.Err(); serr != nil {
					err = reply("ERR %v", serr)
				} else {
					err = reply("END %d", n)
				}
			}
		case cmd == "QUERY" && len(fields) >= 4:
			// QUERY <table> <group> <agg> [start|*] [end|*] followed by
			// the statement grammar (FILTER/JOIN/AT/BY/AGG — see the
			// package doc). The legacy positional prefix is translated
			// onto the statement wire form and the whole line compiles to
			// ONE statement executed by Store.Exec. Re-split the full
			// line: QUERY takes more operands than the common commands.
			args := strings.Fields(line)
			tokens := []string{args[1], args[2]}
			rest := args[3:]
			// A statement keyword right after the group means the pure
			// statement form: no positional aggregate or bounds, the
			// operands already follow the statement wire grammar.
			if !stmtKeyword(args[3]) {
				rest = args[4:]
				// Positional bounds first ("*" = open); any statement
				// keyword ends the positional section so a dangling keyword
				// can never be swallowed as a key bound. Raw bounds are
				// escaped so they round-trip through the statement parser's
				// unescape.
				for pos := 0; pos < 2 && len(rest) > 0; pos++ {
					if stmtKeyword(rest[0]) {
						break
					}
					if rest[0] != "*" {
						kw := "FROM"
						if pos == 1 {
							kw = "TO"
						}
						tokens = append(tokens, kw, readopt.EscapeOperand([]byte(rest[0])))
					}
					rest = rest[1:]
				}
				// The positional aggregate becomes the statement's first
				// AGG: COUNT counts tuples, everything else aggregates the
				// row value parsed as a decimal number.
				aggExpr := "VAL"
				if strings.ToUpper(args[3]) == "COUNT" {
					aggExpr = "*"
				}
				tokens = append(tokens, "AGG", strings.ToUpper(args[3]), args[1], aggExpr)
			}
			for len(rest) > 0 {
				// Legacy "BY <n>" is shorthand for grouping on an n-byte
				// prefix of the base relation's key.
				if strings.EqualFold(rest[0], "BY") && len(rest) >= 2 {
					if _, aerr := strconv.Atoi(rest[1]); aerr == nil {
						tokens = append(tokens, "BY", args[1], "KEY", rest[1])
						rest = rest[2:]
						continue
					}
				}
				tokens = append(tokens, rest[0])
				rest = rest[1:]
			}
			stmt, perr := query.ParseStatementTokens(tokens)
			if perr != nil {
				err = reply("ERR %v", perr)
				break
			}
			rep, qerr := db.Exec(ctx, stmt)
			if qerr != nil {
				err = reply("ERR %v", qerr)
				break
			}
			for _, g := range rep.Groups {
				key := g.Key
				if key == "" {
					key = "-"
				}
				for i, op := range rep.Aggs {
					if err = reply("AGG %s %s %g rows=%d", key, op, g.Values[i], g.Rows); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
			if err == nil {
				err = reply("END %d %d", len(rep.Groups), rep.TS)
			}
		case cmd == "WATCH" && len(fields) >= 5:
			// WATCH <table> <group|*> <start|*> <end|*> [FROM lsn] [LIMIT n]
			// streams one EVENT line per committed mutation: catch-up
			// through the retained log, then the live tail. Without LIMIT
			// the stream runs until the client disconnects (each EVENT is
			// flushed, so a closed peer surfaces as a write error).
			args := strings.Fields(line)
			group := args[2]
			if group == "*" {
				group = ""
			}
			var start, end []byte
			if args[3] != "*" {
				start = []byte(args[3])
			}
			if args[4] != "*" {
				end = []byte(args[4])
			}
			var fromLSN uint64
			limit := 0
			bad := ""
			rest := args[5:]
			for len(rest) > 0 && bad == "" {
				switch kw := strings.ToUpper(rest[0]); kw {
				case "FROM", "LIMIT":
					if len(rest) < 2 {
						bad = kw + " needs a value"
						break
					}
					v, perr := strconv.ParseUint(rest[1], 10, 64)
					if perr != nil {
						bad = "bad " + kw + " value " + rest[1]
						break
					}
					if kw == "FROM" {
						fromLSN = v
					} else {
						limit = int(v)
					}
					rest = rest[2:]
				default:
					bad = "unexpected operand " + rest[0]
				}
			}
			if bad != "" {
				err = reply("ERR %s", bad)
				break
			}
			feed, werr := db.Watch(ctx, args[1], group, start, end, fromLSN)
			if werr != nil {
				err = reply("ERR %v", werr)
				break
			}
			n := 0
			var ferr error
			for limit <= 0 || n < limit {
				var ev cdc.Event
				if ev, ferr = feed.Next(ctx); ferr != nil {
					break
				}
				if ev.Kind == cdc.Delete {
					err = reply("EVENT DELETE %s %s %d %d %d", ev.Group, ev.Key, ev.TS, ev.LSN, ev.Cursor)
				} else {
					err = reply("EVENT PUT %s %s %d %d %d %s", ev.Group, ev.Key, ev.TS, ev.LSN, ev.Cursor, ev.Value)
				}
				if err != nil {
					break
				}
				n++
			}
			feed.Close()
			if err == nil {
				if ferr != nil && !errors.Is(ferr, cdc.ErrFeedClosed) {
					err = reply("ERR %v", ferr)
				} else {
					err = reply("END %d", n)
				}
			}
		case cmd == "MVIEW" && len(fields) >= 3:
			args := strings.Fields(line)
			switch sub := strings.ToUpper(args[1]); {
			case sub == "CREATE" && len(args) >= 6:
				// MVIEW CREATE <name> <table> <group> <agg[,agg...]>
				// [start|*] [end|*] [BY n]
				name, table, group := args[2], args[3], args[4]
				aggs := strings.Split(strings.ToUpper(args[5]), ",")
				var start, end []byte
				prefix := 0
				rest := args[6:]
				bad := ""
				for pos := 0; pos < 2 && len(rest) > 0; pos++ {
					if strings.ToUpper(rest[0]) == "BY" {
						break
					}
					if rest[0] != "*" {
						if pos == 0 {
							start = []byte(rest[0])
						} else {
							end = []byte(rest[0])
						}
					}
					rest = rest[1:]
				}
				if len(rest) > 0 && strings.ToUpper(rest[0]) == "BY" {
					if len(rest) < 2 {
						bad = "BY needs a value"
					} else if v, perr := strconv.Atoi(rest[1]); perr != nil {
						bad = "bad prefix length " + rest[1]
					} else {
						prefix = v
						rest = rest[2:]
					}
				}
				if bad == "" && len(rest) > 0 {
					bad = "unexpected operand " + rest[0]
				}
				if bad != "" {
					err = reply("ERR %s", bad)
					break
				}
				if cerr := db.MViewCreate(ctx, name, table, group, start, end, aggs, prefix); cerr != nil {
					err = reply("ERR %v", cerr)
				} else {
					err = reply("OK view %s", name)
				}
			case sub == "QUERY" && len(args) >= 3:
				rep, qerr := db.MViewQuery(ctx, args[2])
				if qerr != nil {
					err = reply("ERR %v", qerr)
					break
				}
				for _, g := range rep.Groups {
					key := g.Key
					if key == "" {
						key = "-"
					}
					for i, op := range rep.Aggs {
						if err = reply("AGG %s %s %g rows=%d", key, op, g.Values[i], g.Rows); err != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				if err == nil {
					err = reply("END %d %d", len(rep.Groups), rep.TS)
				}
			case sub == "STATS" && len(args) >= 3:
				st, serr := db.MViewStats(ctx, args[2])
				if serr != nil {
					err = reply("ERR %v", serr)
					break
				}
				if err = reply("STAT %s watermark_lsn=%d watermark_ts=%d events=%d snapshot_rows=%d skipped=%d groups=%d keys=%d",
					st.Name, st.WatermarkLSN, st.WatermarkTS, st.Events, st.SnapshotRows, st.Skipped, st.Groups, st.Keys); err == nil {
					err = reply("END 1")
				}
			default:
				err = reply("ERR unknown or malformed MVIEW subcommand %q", line)
			}
		case cmd == "CHECKPOINT":
			if cerr := db.Checkpoint(); cerr != nil {
				err = reply("ERR %v", cerr)
			} else {
				err = reply("OK checkpoint")
			}
		case cmd == "COMPACT":
			if cerr := db.Compact(ctx); cerr != nil {
				err = reply("ERR %v", cerr)
			} else {
				err = reply("OK compact")
			}
		case cmd == "SCRUB":
			snaps, serr := db.Scrub(ctx)
			if serr != nil {
				err = reply("ERR %v", serr)
				break
			}
			repaired, unrecoverable := 0, 0
			for _, sn := range snaps {
				if err = reply("SCRUB %s segments=%d blocks=%d replicas_read=%d repaired=%d unrecoverable=%d",
					sn.Server, sn.Segments, sn.Blocks, sn.ReplicasRead,
					sn.RepairedBlocks, len(sn.Unrecoverable)); err != nil {
					break
				}
				repaired += sn.RepairedBlocks
				unrecoverable += len(sn.Unrecoverable)
				for _, d := range sn.Unrecoverable {
					if err = reply("DEFECT %s %s", sn.Server, d); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
			if err == nil {
				err = reply("END repaired=%d unrecoverable=%d", repaired, unrecoverable)
			}
		case cmd == "STATS":
			snaps, serr := db.Stats(ctx)
			if serr != nil {
				err = reply("ERR %v", serr)
				break
			}
			lines := 0
			for _, sn := range snaps {
				if err = reply("STAT %s writes=%d reads=%d deletes=%d log_reads=%d cache_hits=%d cache_misses=%d "+
					"compactions=%d dropped=%d reclaimed=%d sorted_frac=%.3f garbage_frac=%.3f segments=%d log_bytes=%d",
					sn.Server, sn.Writes, sn.Reads, sn.Deletes, sn.LogReads, sn.CacheHits, sn.CacheMisses,
					sn.Compactions, sn.CompactDropped, sn.BytesReclaimed, sn.SortedFraction, sn.GarbageRatio,
					sn.Segments, sn.LogBytes); err != nil {
					break
				}
				lines++
				for _, rs := range sn.Replicas {
					if err = reply("STAT %s replica_generation=%d replica_applied_lsn=%d replica_source_lsn=%d "+
						"replica_lag_records=%d replica_lag_seconds=%.3f replica_watermark_ts=%d replica_reads_served=%d",
						rs.Replica, rs.Generation, rs.AppliedLSN, rs.SourceLSN,
						rs.LagRecords, rs.LagSeconds, rs.WatermarkTS, rs.ReadsServed); err != nil {
						break
					}
					lines++
				}
				if err != nil {
					break
				}
			}
			// The expanded registry rides behind the legacy STAT lines so
			// old clients keep parsing; histograms ship their quantile
			// snapshot, _seconds series scaled to seconds.
			if reg := db.Metrics(); err == nil && reg != nil {
				for _, m := range reg.Snapshot() {
					if m.Kind == "histogram" {
						scale := 1.0
						if strings.HasSuffix(m.Name, "_seconds") {
							scale = 1e-9
						}
						err = reply("METRIC %s%s count=%d p50=%g p95=%g p99=%g max=%g",
							m.Name, m.Labels, m.Hist.Count,
							float64(m.Hist.P50)*scale, float64(m.Hist.P95)*scale,
							float64(m.Hist.P99)*scale, float64(m.Hist.Max)*scale)
					} else {
						err = reply("METRIC %s%s %g", m.Name, m.Labels, m.Value)
					}
					if err != nil {
						break
					}
					lines++
				}
			}
			if err == nil {
				err = reply("END %d", lines)
			}
		default:
			err = reply("ERR unknown or malformed command %q", line)
		}
		if err != nil {
			return err
		}
	}
	return sc.Err()
}

// stmtKeyword reports whether tok opens a statement clause — the words
// that end QUERY's legacy positional bounds section.
func stmtKeyword(tok string) bool {
	switch strings.ToUpper(tok) {
	case "AT", "BY", "JOIN", "FILTER", "FROM", "TO", "AGG":
		return true
	}
	return false
}

// parseScanOptions decodes the SCAN option operands (everything after
// the positional bounds) into the wire-level option set. A non-empty
// second return is the protocol error message.
func parseScanOptions(rest []string) (readopt.Options, string) {
	var opt readopt.Options
	for len(rest) > 0 {
		switch kw := strings.ToUpper(rest[0]); kw {
		case "LIMIT", "AT":
			if len(rest) < 2 {
				return opt, kw + " needs a value"
			}
			v, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil {
				return opt, "bad " + kw + " value " + rest[1]
			}
			if kw == "LIMIT" {
				opt.Limit = int(v)
			} else {
				opt.Snapshot = v
			}
			rest = rest[2:]
		case "REVERSE":
			opt.Reverse = true
			rest = rest[1:]
		case "PRIMARY":
			opt.Primary = true
			rest = rest[1:]
		case "MAXLAG":
			if len(rest) < 2 {
				return opt, "MAXLAG needs a value"
			}
			v, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil || v <= 0 {
				return opt, "bad MAXLAG value " + rest[1]
			}
			opt.MaxLag = v
			rest = rest[2:]
		case "PREFIX":
			if len(rest) < 2 {
				return opt, "PREFIX needs a value"
			}
			p, err := readopt.UnescapeOperand(rest[1])
			if err != nil {
				return opt, err.Error()
			}
			opt.Prefix = p
			rest = rest[2:]
		case "FILTER":
			if len(rest) < 2 {
				return opt, "FILTER needs KEY or VAL"
			}
			target := strings.ToUpper(rest[1])
			if target != "KEY" && target != "VAL" {
				return opt, "FILTER target must be KEY or VAL, not " + rest[1]
			}
			pred, tail, err := readopt.ParsePredicate(rest[2:])
			if err != nil {
				return opt, err.Error()
			}
			if target == "KEY" {
				opt.Key = pred
			} else {
				opt.Value = pred
			}
			rest = tail
		default:
			// Bare number: the legacy "SCAN t g start end <limit>" form.
			if n, err := strconv.Atoi(rest[0]); err == nil {
				opt.Limit = n
				rest = rest[1:]
				continue
			}
			return opt, "unexpected operand " + rest[0]
		}
	}
	return opt, ""
}

// ParseStatLine decodes one "STAT <server> k=v ..." response line into
// the server id and its counter map (values parsed as floats; malformed
// pairs are skipped). ok is false for lines that are not STAT lines —
// callers polling STATS feed every response line through and keep the
// hits, which is how logbase-cli's watch mode computes deltas.
func ParseStatLine(line string) (server string, kv map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "STAT" {
		return "", nil, false
	}
	kv = make(map[string]float64, len(fields)-2)
	for _, f := range fields[2:] {
		k, v, found := strings.Cut(f, "=")
		if !found {
			continue
		}
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		kv[k] = n
	}
	return fields[1], kv, true
}
