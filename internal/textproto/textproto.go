// Package textproto implements the line-oriented protocol spoken by
// cmd/logbase-server and cmd/logbase-cli: one command per line, one or
// more response lines ("OK ...", "VAL <ts> <value>", "ROW <key> <ts>
// <value>", "AGG <group> <op> <value> rows=<n>", "END <n>", "ERR
// <msg>"). It exists as a package so the protocol is unit-testable
// without sockets.
package textproto

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Store is the engine surface the protocol drives. It mirrors the root
// package's logbase.Store (context-aware methods, pull-based iterator
// scans) with nominal Row/Iterator types, so cmd/logbase-server adapts
// either backend — embedded *logbase.DB or *logbase.ClusterClient —
// with pure type conversions.
type Store interface {
	CreateTable(name string, groups ...string) error
	Put(ctx context.Context, table, group string, key, value []byte) error
	Get(ctx context.Context, table, group string, key []byte) (Row, error)
	GetAt(ctx context.Context, table, group string, key []byte, ts int64) (Row, error)
	Versions(ctx context.Context, table, group string, key []byte) ([]Row, error)
	Delete(ctx context.Context, table, group string, key []byte) error
	// Scan returns a pull-based iterator over the latest version of
	// each key in [start, end); the session Closes it after streaming
	// up to the client's row limit.
	Scan(ctx context.Context, table, group string, start, end []byte) Iterator
	// Query runs a snapshot-consistent aggregate (COUNT/SUM/MIN/MAX/AVG;
	// values parsed as decimal numbers) over [start, end); nil bounds
	// are open. ts 0 means "latest"; groupPrefix > 0 groups rows by that
	// many leading key bytes.
	Query(ctx context.Context, table, group, agg string, start, end []byte, ts int64, groupPrefix int) (QueryReply, error)
	Checkpoint() error
}

// Iterator is the pull-based row stream the protocol consumes; it
// mirrors logbase.Iterator.
type Iterator interface {
	Next() bool
	Row() Row
	Err() error
	Close() error
}

// QueryReply is the result of a Store.Query: the pinned snapshot
// timestamp and one line per group (a single group keyed "" when no
// grouping was requested).
type QueryReply struct {
	TS     int64
	Groups []QueryGroup
}

// QueryGroup is one aggregated group.
type QueryGroup struct {
	Key   string
	Rows  int64
	Value float64
}

// Row mirrors logbase.Row without importing the root package (which
// would create a cycle through tests).
type Row struct {
	Key   []byte
	TS    int64
	Value []byte
}

// Serve reads commands from r and writes responses to w until EOF or
// QUIT. Errors writing to w abort the session; cancelling ctx makes
// in-flight scans and queries fail promptly with an ERR reply.
func Serve(ctx context.Context, rw io.ReadWriter, db Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(rw)
	reply := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(out, format+"\n", args...); err != nil {
			return err
		}
		return out.Flush()
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 6)
		cmd := strings.ToUpper(fields[0])
		var err error
		switch {
		case cmd == "QUIT":
			return reply("OK bye")
		case cmd == "CREATE" && len(fields) >= 3:
			if cerr := db.CreateTable(fields[1], fields[2:]...); cerr != nil {
				err = reply("ERR %v", cerr)
			} else {
				err = reply("OK table %s", fields[1])
			}
		case cmd == "PUT" && len(fields) >= 5:
			if perr := db.Put(ctx, fields[1], fields[2], []byte(fields[3]), []byte(strings.Join(fields[4:], " "))); perr != nil {
				err = reply("ERR %v", perr)
			} else {
				err = reply("OK")
			}
		case cmd == "GET" && len(fields) >= 4:
			row, gerr := db.Get(ctx, fields[1], fields[2], []byte(fields[3]))
			if gerr != nil {
				err = reply("ERR %v", gerr)
			} else {
				err = reply("VAL %d %s", row.TS, row.Value)
			}
		case cmd == "GETAT" && len(fields) >= 5:
			ts, perr := strconv.ParseInt(fields[4], 10, 64)
			if perr != nil {
				err = reply("ERR bad timestamp %q", fields[4])
				break
			}
			row, gerr := db.GetAt(ctx, fields[1], fields[2], []byte(fields[3]), ts)
			if gerr != nil {
				err = reply("ERR %v", gerr)
			} else {
				err = reply("VAL %d %s", row.TS, row.Value)
			}
		case cmd == "VERSIONS" && len(fields) >= 4:
			rows, verr := db.Versions(ctx, fields[1], fields[2], []byte(fields[3]))
			if verr != nil {
				err = reply("ERR %v", verr)
				break
			}
			for _, r := range rows {
				if err = reply("ROW %s %d %s", r.Key, r.TS, r.Value); err != nil {
					break
				}
			}
			if err == nil {
				err = reply("END %d", len(rows))
			}
		case cmd == "DEL" && len(fields) >= 4:
			if derr := db.Delete(ctx, fields[1], fields[2], []byte(fields[3])); derr != nil {
				err = reply("ERR %v", derr)
			} else {
				err = reply("OK")
			}
		case cmd == "SCAN" && len(fields) >= 5:
			limit := 100
			if len(fields) >= 6 {
				if n, aerr := strconv.Atoi(fields[5]); aerr == nil {
					limit = n
				}
			}
			n := 0
			it := db.Scan(ctx, fields[1], fields[2], []byte(fields[3]), []byte(fields[4]))
			for n < limit && it.Next() {
				r := it.Row()
				if err = reply("ROW %s %d %s", r.Key, r.TS, r.Value); err != nil {
					break
				}
				n++
			}
			it.Close() // limit reached or write error: release the scan
			if err == nil {
				if serr := it.Err(); serr != nil {
					err = reply("ERR %v", serr)
				} else {
					err = reply("END %d", n)
				}
			}
		case cmd == "QUERY" && len(fields) >= 4:
			// QUERY <table> <group> <agg> [start|*] [end|*] [AT ts] [BY n]
			// runs a snapshot aggregate; AT pins a historical timestamp,
			// BY groups on an n-byte key prefix. Re-split the full line:
			// QUERY takes more operands than the common commands.
			args := strings.Fields(line)
			agg := strings.ToUpper(args[3])
			var start, end []byte
			var ts int64
			prefix := 0
			rest := args[4:]
			bad := ""
			// Positional bounds first ("*" = open); the AT/BY keywords end
			// the positional section so a dangling keyword can never be
			// swallowed as a key bound.
			for pos := 0; pos < 2 && len(rest) > 0; pos++ {
				kw := strings.ToUpper(rest[0])
				if kw == "AT" || kw == "BY" {
					break
				}
				if rest[0] != "*" {
					if pos == 0 {
						start = []byte(rest[0])
					} else {
						end = []byte(rest[0])
					}
				}
				rest = rest[1:]
			}
			for len(rest) > 0 && bad == "" {
				switch kw := strings.ToUpper(rest[0]); kw {
				case "AT", "BY":
					if len(rest) < 2 {
						bad = kw + " needs a value"
						break
					}
					if kw == "AT" {
						v, aerr := strconv.ParseInt(rest[1], 10, 64)
						if aerr != nil {
							bad = "bad timestamp " + rest[1]
						}
						ts = v
					} else {
						v, aerr := strconv.Atoi(rest[1])
						if aerr != nil {
							bad = "bad prefix length " + rest[1]
						}
						prefix = v
					}
					rest = rest[2:]
				default:
					bad = "unexpected operand " + rest[0]
				}
			}
			if bad != "" {
				err = reply("ERR %s", bad)
				break
			}
			rep, qerr := db.Query(ctx, fields[1], fields[2], agg, start, end, ts, prefix)
			if qerr != nil {
				err = reply("ERR %v", qerr)
				break
			}
			for _, g := range rep.Groups {
				key := g.Key
				if key == "" {
					key = "-"
				}
				if err = reply("AGG %s %s %g rows=%d", key, agg, g.Value, g.Rows); err != nil {
					break
				}
			}
			if err == nil {
				err = reply("END %d %d", len(rep.Groups), rep.TS)
			}
		case cmd == "CHECKPOINT":
			if cerr := db.Checkpoint(); cerr != nil {
				err = reply("ERR %v", cerr)
			} else {
				err = reply("OK checkpoint")
			}
		default:
			err = reply("ERR unknown or malformed command %q", line)
		}
		if err != nil {
			return err
		}
	}
	return sc.Err()
}
