// Package repl is the WAL-shipping read-replica subsystem. Because the
// log is LogBase's ONLY data repository (paper §3.1), replication needs
// no second pipeline: a standby is just another tablet server whose
// multiversion indexes are built by replaying the primary's committed
// log stream. The Replica rides the same resumable cursor engine as
// changefeeds (core.Server.SubscribeRecords): historical catch-up from
// the pinned segments, then the live append tail, in commit order,
// exactly once.
//
// Contract:
//
//   - Records apply in feed order with their ORIGINAL commit
//     timestamps, so the replica's multiversion state at any timestamp
//     at or below its watermark is byte-identical to the primary's.
//   - The watermark (WatermarkTS) is the snapshot-consistency frontier:
//     a read pinned at ts <= watermark served by the replica returns
//     exactly what the primary would. It advances by the T-before-E
//     protocol: sample T = the coordinator's last issued timestamp,
//     THEN observe the primary log tip E; once the feed has drained
//     through E, every commit at or below T is applied and the
//     watermark may rise to T.
//   - The applied cursor is made durable (a small DFS file) every
//     cursorFlushEvery records and on Close, always lagging what was
//     actually applied; a restarted replica recovers its own log
//     (core.Recover) and resumes the feed from the durable cursor —
//     the overlap re-applies idempotently.
//   - A slow replica that overflows the live tail resumes from its
//     cursor (cdc.ErrSlowConsumer is internal; consumers never see a
//     gap). If compaction on the primary has meanwhile reclaimed
//     records past that cursor (cdc.ErrCursorTruncated — see the
//     retention policy knob, core.SetRetention), resumption is
//     impossible: the replica re-bootstraps into a FRESH server
//     (generation-bumped id) from LSN 0, because replaying coalesced
//     history over existing state could resurrect vacuumed deletes.
//     The watermark drops to 0 for the duration, routing reads back to
//     the primary.
//
// Promotion (failover) lives with the cluster master: a caught-up
// replica already holds everything through its applied cursor, so
// promoting it is a ReplaySession over the dead primary's log with
// SetHighWater(appliedLSN) — only the delta past the shipping cursor
// replays.
package repl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/partition"
)

// Config tunes a replica.
type Config struct {
	// LastTS returns the coordinator's last issued timestamp
	// (coord.Service.LastTimestamp). Required: it is the T of the
	// watermark protocol.
	LastTS func() int64
	// Server configures the replica's own tablet server (segment size,
	// caches, auto-compaction...). Replicas usually run without
	// auto-compaction: their log is already the primary's committed
	// stream.
	Server core.Config
	// Buffer sizes the shipping feed's live-tail channel; <= 0 uses
	// cdc.DefaultBuffer.
	Buffer int
	// PollInterval paces the apply loop's idle ticks (watermark
	// refresh, cursor flush); <= 0 defaults to 1ms.
	PollInterval time.Duration
}

// cursorFlushEvery is how many applied records may pass between
// durable-cursor flushes (each flush is a small DFS write).
const cursorFlushEvery = 256

// tabletSpec remembers a mirrored tablet so a re-bootstrap can re-add
// it to the fresh server.
type tabletSpec struct {
	tab    partition.Tablet
	groups []string
}

// Replica is one WAL-shipping standby of one primary tablet server.
type Replica struct {
	base    string // stable identity; generations suffix it
	fs      *dfs.DFS
	primary *core.Server
	cfg     Config

	mu    sync.RWMutex
	srv   *core.Server
	feed  *core.RecordFeed
	specs map[string]tabletSpec
	gen   int

	appliedLSN  atomic.Uint64
	watermark   atomic.Int64
	syncing     atomic.Int32 // open topology syncs gate the public watermark
	foreign     atomic.Bool  // carries peer-recovered history (see MarkForeign)
	applied     atomic.Int64 // records applied
	skipped     atomic.Int64 // records outside every mirrored tablet
	reads       atomic.Int64 // reads served from this replica (NoteRead)
	rebootstrap atomic.Int64 // truncation-forced fresh starts
	lastCaught  atomic.Int64 // unix nanos of the last drained observation

	resumeLSN uint64 // durable cursor loaded by New; 0 = fresh
	recovered bool   // Start must Recover the reopened server first

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	runErr atomic.Value // error
}

// New prepares a replica of primary under the stable id base (e.g.
// "ts00.r0"). If a durable cursor exists on fs the replica reopens its
// previous incarnation's server (recovery itself runs in Start, after
// the caller has re-declared tablets via AddTablet). Start begins
// shipping.
func New(fs *dfs.DFS, primary *core.Server, base string, cfg Config) (*Replica, error) {
	if cfg.LastTS == nil {
		return nil, errors.New("repl: Config.LastTS is required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Millisecond
	}
	r := &Replica{
		base:    base,
		fs:      fs,
		primary: primary,
		cfg:     cfg,
		specs:   make(map[string]tabletSpec),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	gen, lsn, found, err := r.loadCursor()
	if err != nil {
		return nil, err
	}
	if found {
		r.gen, r.resumeLSN, r.recovered = gen, lsn, true
		r.appliedLSN.Store(lsn)
	}
	srv, err := core.NewServer(fs, r.serverID(r.gen), cfg.Server)
	if err != nil {
		return nil, err
	}
	r.srv = srv
	r.lastCaught.Store(time.Now().UnixNano())
	return r, nil
}

// serverID derives the generation's server id (and thereby its log
// directory): the base id for generation 0, base.g<n> after n
// truncation re-bootstraps.
func (r *Replica) serverID(gen int) string {
	if gen == 0 {
		return r.base
	}
	return fmt.Sprintf("%s.g%d", r.base, gen)
}

// BaseID returns the replica's stable identity.
func (r *Replica) BaseID() string { return r.base }

// ID returns the current generation's server id.
func (r *Replica) ID() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.srv.ID()
}

// Server returns the replica's current tablet server — the read target.
// A truncation re-bootstrap swaps it; route each read through a fresh
// call.
func (r *Replica) Server() *core.Server {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.srv
}

// Primary returns the replicated-from server.
func (r *Replica) Primary() *core.Server { return r.primary }

// AddTablet declares a mirrored tablet (same specs as on the primary).
// Shipping applies only records that resolve to a declared tablet;
// call it for every tablet the primary serves, and again as splits and
// migrations change the layout.
func (r *Replica) AddTablet(tab partition.Tablet, groups []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specs[tab.ID] = tabletSpec{tab: tab, groups: append([]string(nil), groups...)}
	r.srv.AddTablet(tab, groups)
}

// RemoveTablet stops mirroring a tablet (migrated away from the
// primary).
func (r *Replica) RemoveTablet(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.specs, id)
	r.srv.RemoveTablet(id)
}

// SplitTablet mirrors a primary-side tablet split: the replica's index
// partitions under the same child specs, so reads addressed by child
// tablet id resolve here exactly as on the primary. Records still in
// flight under the parent id resolve to the children by range. A
// mirror failure poisons the replica (MarkFailed) — serving with a
// diverged tablet layout would silently drop shipped records.
func (r *Replica) SplitTablet(parentID string, left, right partition.Tablet) error {
	r.mu.Lock()
	sp, ok := r.specs[parentID]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	delete(r.specs, parentID)
	r.specs[left.ID] = tabletSpec{tab: left, groups: sp.groups}
	r.specs[right.ID] = tabletSpec{tab: right, groups: sp.groups}
	srv := r.srv
	r.mu.Unlock()
	if err := srv.SplitTablet(parentID, left, right); err != nil {
		err = fmt.Errorf("repl: %s mirror split of %s: %w", r.base, parentID, err)
		r.MarkFailed(err)
		return err
	}
	return nil
}

// BeginTopologySync and EndTopologySync bracket a cluster topology
// change that installs history from ANOTHER server's log on this
// replica (failover adoption, live migration). While a sync is open the
// public watermark reads 0, keeping the read router on the primary: the
// shipping stream alone no longer covers every mirrored tablet until
// the peer replay lands.
func (r *Replica) BeginTopologySync() { r.syncing.Add(1) }

// EndTopologySync closes a BeginTopologySync bracket.
func (r *Replica) EndTopologySync() { r.syncing.Add(-1) }

// MarkForeign records that this replica now carries peer-recovered
// history (an adopted or migrated-in tablet replayed from another
// server's log). A truncation re-bootstrap replays only the PRIMARY's
// retained log, which cannot reconstruct that history — so a foreign-
// backed replica fails on truncation instead of serving silently
// incomplete state.
func (r *Replica) MarkForeign() { r.foreign.Store(true) }

// MarkFailed poisons the replica: Err returns err and the read router
// skips it. Shipping may continue but the replica never serves reads
// again; used when a topology mirror failed and the replica's layout
// can no longer be trusted.
func (r *Replica) MarkFailed(err error) { r.runErr.Store(err) }

// Detach stops shipping and hands the replica's tablet server to the
// caller WITHOUT closing it — the promotion path: the cluster master
// turns a caught-up replica into a first-class tablet server. A later
// Close is a no-op.
func (r *Replica) Detach() *core.Server {
	r.once.Do(func() {
		r.cancel()
		r.wg.Wait()
		r.flushCursor()
	})
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.srv
}

// Start launches the shipping loop. Call after declaring tablets: a
// restarted replica first recovers its own log into the declared
// tablets, then resumes the feed from its durable cursor.
func (r *Replica) Start() error {
	if r.recovered {
		if _, err := r.srv.Recover(); err != nil {
			return fmt.Errorf("repl: recover %s: %w", r.srv.ID(), err)
		}
		r.recovered = false
	}
	r.wg.Add(1)
	go r.run()
	return nil
}

// Close stops shipping, flushes the durable cursor, and closes the
// replica's server. Idempotent.
func (r *Replica) Close() error {
	r.once.Do(func() {
		r.cancel()
		r.wg.Wait()
		r.flushCursor()
		r.mu.RLock()
		srv := r.srv
		r.mu.RUnlock()
		srv.Close()
	})
	return nil
}

// Err returns the terminal shipping error, if the loop died (nil while
// healthy or cleanly closed).
func (r *Replica) Err() error {
	if v := r.runErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// run is the shipping loop: subscribe, consume, and on recoverable
// stream loss (overflow, truncation) re-subscribe or re-bootstrap.
func (r *Replica) run() {
	defer r.wg.Done()
	fromLSN := uint64(0)
	if r.resumeLSN > 0 {
		fromLSN = r.resumeLSN + 1
	}
	for r.ctx.Err() == nil {
		feed, err := r.primary.SubscribeRecords(fromLSN, r.cfg.Buffer)
		if errors.Is(err, cdc.ErrCursorTruncated) {
			// The primary compacted past our cursor (retention policy):
			// the gap is unrecoverable in place. Fresh server, full
			// replay — the retained log reconstructs current state.
			if err := r.freshGeneration(); err != nil {
				r.runErr.Store(err)
				return
			}
			fromLSN = 0
			continue
		}
		if err != nil {
			r.runErr.Store(err)
			return
		}
		r.mu.Lock()
		r.feed = feed
		r.mu.Unlock()
		err = r.consume(feed)
		feed.Close()
		switch {
		case errors.Is(err, cdc.ErrSlowConsumer):
			// The live tail overflowed; the cursor is exact, so resume
			// (the gap replays from the primary's segments). May hit
			// truncation above if retention already reclaimed it.
			fromLSN = r.appliedLSN.Load() + 1
		case err == nil || errors.Is(err, context.Canceled):
			return
		default:
			r.runErr.Store(err)
			return
		}
	}
}

// consume applies the feed until it breaks or the replica closes.
func (r *Replica) consume(feed *core.RecordFeed) error {
	r.mu.RLock()
	srv := r.srv
	r.mu.RUnlock()
	sinceFlush := 0
	for {
		ctx, cancel := context.WithTimeout(r.ctx, r.cfg.PollInterval)
		ev, err := feed.Next(ctx)
		cancel()
		if err != nil {
			if r.ctx.Err() != nil {
				return context.Canceled
			}
			if errors.Is(err, context.DeadlineExceeded) {
				// Idle tick: no event, but the stream may have silently
				// caught up (commit-only tail, no writes at all).
				r.refreshWatermark(feed)
				if sinceFlush > 0 {
					r.flushCursor()
					sinceFlush = 0
				}
				continue
			}
			return err
		}
		applied, err := srv.ApplyReplicated(&ev.Rec)
		if err != nil {
			return err
		}
		if applied {
			r.applied.Add(1)
		} else {
			r.skipped.Add(1)
		}
		r.appliedLSN.Store(ev.Cursor)
		r.refreshWatermark(feed)
		if sinceFlush++; sinceFlush >= cursorFlushEvery {
			r.flushCursor()
			sinceFlush = 0
		}
	}
}

// refreshWatermark runs the T-before-E protocol. Only the shipping
// goroutine calls it (feed.Drained is exact only between Next calls).
func (r *Replica) refreshWatermark(feed *core.RecordFeed) {
	t := r.cfg.LastTS()
	e := r.sourceTip()
	if !feed.Drained(e) {
		return
	}
	// Everything committed at or below T was durably appended before E
	// was observed, and the feed has drained through E: the replica's
	// state covers every snapshot at ts <= T.
	for {
		cur := r.watermark.Load()
		if t <= cur || r.watermark.CompareAndSwap(cur, t) {
			break
		}
	}
	r.lastCaught.Store(time.Now().UnixNano())
}

// sourceTip returns the primary log's last assigned LSN.
func (r *Replica) sourceTip() uint64 {
	return r.primary.Log().NextLSN() - 1
}

// WatermarkTS is the snapshot-consistency frontier: reads pinned at
// ts <= WatermarkTS served by this replica return exactly what the
// primary would. 0 means not yet caught up (re-bootstrapping, or a
// topology sync is installing peer history).
func (r *Replica) WatermarkTS() int64 {
	if r.syncing.Load() > 0 {
		return 0
	}
	return r.watermark.Load()
}

// AppliedLSN returns the shipping cursor (the promotion high-water).
func (r *Replica) AppliedLSN() uint64 { return r.appliedLSN.Load() }

// NoteRead records n reads served from this replica (router-side
// accounting surfaced in Stats).
func (r *Replica) NoteRead(n int64) { r.reads.Add(n) }

// WaitForTS blocks until the watermark reaches ts (snapshot reads at
// ts can then be served here), the timeout passes, or shipping dies.
func (r *Replica) WaitForTS(ts int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for r.WatermarkTS() < ts {
		if err := r.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: %s watermark %d still below %d after %v",
				r.base, r.WatermarkTS(), ts, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// freshGeneration replaces the replica's server with an empty one under
// a generation-bumped id, for a from-zero replay after truncation.
func (r *Replica) freshGeneration() error {
	if r.foreign.Load() {
		// Peer-recovered history (adoption/migration) is not in the
		// primary's log; a from-zero replay would silently lose it.
		return fmt.Errorf("repl: %s carries peer-recovered tablets; cannot re-bootstrap after truncation", r.base)
	}
	r.mu.Lock()
	old := r.srv
	r.gen++
	srv, err := core.NewServer(r.fs, r.serverID(r.gen), r.cfg.Server)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	for _, sp := range r.specs {
		srv.AddTablet(sp.tab, sp.groups)
	}
	r.srv = srv
	r.mu.Unlock()
	// Readers routed here between the swap and catch-up see watermark 0
	// and go to the primary instead.
	r.watermark.Store(0)
	r.appliedLSN.Store(0)
	r.rebootstrap.Add(1)
	r.flushCursor()
	old.Close()
	return nil
}

// Stats is a point-in-time view of one replica's shipping state.
type Stats struct {
	BaseID   string
	ServerID string
	// Generation counts truncation-forced re-bootstraps.
	Generation int
	// AppliedLSN is the shipping cursor; SourceLSN the primary log tip;
	// LagRecords their distance in log records.
	AppliedLSN uint64
	SourceLSN  uint64
	LagRecords uint64
	// LagSeconds is how long the replica has continuously trailed the
	// tip (0 when caught up).
	LagSeconds float64
	// WatermarkTS is the snapshot-consistency frontier.
	WatermarkTS int64
	// Applied/Skipped count shipped records applied vs outside every
	// mirrored tablet; ReadsServed counts reads routed here.
	Applied     int64
	Skipped     int64
	ReadsServed int64
}

// Stats snapshots the replica's shipping state.
func (r *Replica) Stats() Stats {
	r.mu.RLock()
	srv, feed, gen := r.srv, r.feed, r.gen
	r.mu.RUnlock()
	st := Stats{
		BaseID:      r.base,
		ServerID:    srv.ID(),
		Generation:  gen,
		AppliedLSN:  r.appliedLSN.Load(),
		SourceLSN:   r.sourceTip(),
		WatermarkTS: r.WatermarkTS(),
		Applied:     r.applied.Load(),
		Skipped:     r.skipped.Load(),
		ReadsServed: r.reads.Load(),
	}
	var processed uint64
	if feed != nil {
		processed = feed.ProcessedLSN()
	}
	if st.SourceLSN > processed {
		st.LagRecords = st.SourceLSN - processed
	}
	if st.LagRecords > 0 {
		st.LagSeconds = time.Since(time.Unix(0, r.lastCaught.Load())).Seconds()
	}
	return st
}

// ---- durable cursor ----------------------------------------------------

// cursorPath is the replica's durable-cursor file on the shared DFS.
func (r *Replica) cursorPath() string { return "repl/" + r.base + "/cursor" }

// flushCursor persists (generation, applied cursor). It always runs
// AFTER the records it covers were applied, so a restart's resume can
// only over-replay — and re-applying the overlap is idempotent (same
// keys, same timestamps).
func (r *Replica) flushCursor() {
	// Crash point: records were applied but the cursor flush never
	// lands — a restart resumes from the PREVIOUS durable cursor and
	// re-applies up to cursorFlushEvery records (idempotently).
	if err := r.cfg.Server.Faults.FireErr("crash.repl.pre-cursor-flush"); err != nil {
		return
	}
	r.mu.RLock()
	gen := r.gen
	r.mu.RUnlock()
	line := fmt.Sprintf("v1 %d %d\n", gen, r.appliedLSN.Load())
	tmp := r.cursorPath() + ".tmp"
	_ = r.fs.Delete(tmp)
	w, err := r.fs.Create(tmp)
	if err != nil {
		return
	}
	if _, err := w.Write([]byte(line)); err != nil {
		return
	}
	w.Close()
	_ = r.fs.Delete(r.cursorPath())
	_ = r.fs.Rename(tmp, r.cursorPath())
}

// loadCursor reads the durable cursor, if any.
func (r *Replica) loadCursor() (gen int, lsn uint64, found bool, err error) {
	if !r.fs.Exists(r.cursorPath()) {
		return 0, 0, false, nil
	}
	rd, err := r.fs.Open(r.cursorPath())
	if err != nil {
		return 0, 0, false, err
	}
	defer rd.Close()
	size, err := rd.Size()
	if err != nil {
		return 0, 0, false, err
	}
	buf := make([]byte, size)
	if _, err := rd.ReadAt(buf, 0); err != nil {
		return 0, 0, false, err
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(string(buf)), "v%d %d %d", &v, &gen, &lsn); err != nil || v != 1 {
		return 0, 0, false, fmt.Errorf("repl: bad cursor file %s: %q", r.cursorPath(), buf)
	}
	return gen, lsn, true, nil
}
