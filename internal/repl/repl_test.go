package repl

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/fault"
	"repro/internal/partition"
)

const (
	testTablet = "t/0000"
	testGroup  = "g"
)

// harness is one primary plus a logical-timestamp authority (the unit
// tests run without a coordination service; a counter is the same
// contract: monotone, sampled-before-tip).
type harness struct {
	fs      *dfs.DFS
	primary *core.Server
	ts      atomic.Int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewServer(fs, "ts0", core.Config{SegmentSize: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	p.AddTablet(partition.Tablet{ID: testTablet, Table: "t"}, []string{testGroup})
	t.Cleanup(func() { p.Close() })
	return &harness{fs: fs, primary: p}
}

func (h *harness) put(t *testing.T, i int, val string) int64 {
	t.Helper()
	ts := h.ts.Add(1)
	k := []byte(fmt.Sprintf("k%05d", i))
	if err := h.primary.Write(testTablet, testGroup, k, ts, []byte(val)); err != nil {
		t.Fatal(err)
	}
	return ts
}

func (h *harness) newReplica(t *testing.T, buffer int) *Replica {
	t.Helper()
	r, err := New(h.fs, h.primary, "ts0.r0", Config{
		LastTS: h.ts.Load,
		Server: core.Config{SegmentSize: 1 << 18},
		Buffer: buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.AddTablet(partition.Tablet{ID: testTablet, Table: "t"}, []string{testGroup})
	return r
}

func wantRow(t *testing.T, srv *core.Server, i int, ts int64, val string) {
	t.Helper()
	k := []byte(fmt.Sprintf("k%05d", i))
	row, err := srv.GetAt(testTablet, testGroup, k, ts)
	if err != nil {
		t.Fatalf("GetAt(%s@%d): %v", k, ts, err)
	}
	if string(row.Value) != val {
		t.Fatalf("GetAt(%s@%d) = %q, want %q", k, ts, row.Value, val)
	}
}

// TestReplSlowConsumerResume floods a replica whose live tail holds a
// single event: overflows resume from the exact cursor, so the replica
// still converges to the complete state.
func TestReplSlowConsumerResume(t *testing.T) {
	h := newHarness(t)
	rep := h.newReplica(t, 1)
	defer rep.Close()
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}
	ts := h.ts.Load()
	if err := rep.WaitForTS(ts, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		wantRow(t, rep.Server(), i, ts, fmt.Sprintf("v%d", i))
	}
	st := rep.Stats()
	if st.Applied != n {
		t.Fatalf("applied %d records, want %d (a resume gap dropped records?)", st.Applied, n)
	}
	if st.Generation != 0 {
		t.Fatalf("generation %d, want 0 (overflow must resume, not re-bootstrap)", st.Generation)
	}
}

// TestReplRestartResumesFromDurableCursor closes a caught-up replica,
// keeps writing, and reopens it under the same base id: it recovers its
// own log and resumes shipping from the durable cursor — same
// generation, no re-bootstrap, complete state.
func TestReplRestartResumesFromDurableCursor(t *testing.T) {
	h := newHarness(t)
	rep := h.newReplica(t, 0)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}
	mid := h.ts.Load()
	if err := rep.WaitForTS(mid, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	cursor := rep.AppliedLSN()
	rep.Close()
	if cursor == 0 {
		t.Fatal("caught-up replica closed with zero cursor")
	}

	// The primary keeps committing while the replica is down.
	for i := 150; i < 300; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}

	rep2 := h.newReplica(t, 0)
	defer rep2.Close()
	if got := rep2.AppliedLSN(); got != cursor {
		t.Fatalf("reopened cursor = %d, want durable %d", got, cursor)
	}
	if err := rep2.Start(); err != nil {
		t.Fatal(err)
	}
	ts := h.ts.Load()
	if err := rep2.WaitForTS(ts, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st := rep2.Stats()
	if st.Generation != 0 {
		t.Fatalf("generation %d after clean restart, want 0", st.Generation)
	}
	// Rows from before the outage (recovered from the replica's own log)
	// and from during it (shipped on resume) are both present.
	wantRow(t, rep2.Server(), 0, ts, "v0")
	wantRow(t, rep2.Server(), 149, ts, "v149")
	wantRow(t, rep2.Server(), 150, ts, "v150")
	wantRow(t, rep2.Server(), 299, ts, "v299")
	// And the pre-outage snapshot still answers at its own timestamp.
	wantRow(t, rep2.Server(), 0, mid, "v0")
}

// TestReplTruncationRebootstrap compacts the primary past a downed
// replica's cursor: resuming is impossible, so the replica re-bootstraps
// into a fresh generation and full-replays the retained log.
func TestReplTruncationRebootstrap(t *testing.T) {
	h := newHarness(t)
	rep := h.newReplica(t, 0)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}
	if err := rep.WaitForTS(h.ts.Load(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep.Close()

	// While the replica is down: more commits, then a whole-log
	// compaction — the prune horizon jumps past every assigned LSN,
	// including the replica's cursor.
	for i := 100; i < 200; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}
	if _, err := h.primary.Compact(); err != nil {
		t.Fatal(err)
	}

	rep2 := h.newReplica(t, 0)
	defer rep2.Close()
	if err := rep2.Start(); err != nil {
		t.Fatal(err)
	}
	ts := h.ts.Load()
	if err := rep2.WaitForTS(ts, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	st := rep2.Stats()
	if st.Generation != 1 {
		t.Fatalf("generation %d after truncation, want 1 (re-bootstrap)", st.Generation)
	}
	if !strings.HasSuffix(st.ServerID, ".g1") {
		t.Fatalf("server id %q, want generation-bumped .g1 suffix", st.ServerID)
	}
	wantRow(t, rep2.Server(), 0, ts, "v0")
	wantRow(t, rep2.Server(), 199, ts, "v199")
}

// TestReplForeignReplicaFailsOnTruncation: a replica carrying
// peer-recovered history (adoption/migration) cannot re-bootstrap from
// the primary's log alone — truncation must fail it, not silently serve
// incomplete state.
func TestReplForeignReplicaFailsOnTruncation(t *testing.T) {
	h := newHarness(t)
	rep := h.newReplica(t, 0)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h.put(t, i, fmt.Sprintf("v%d", i))
	}
	if err := rep.WaitForTS(h.ts.Load(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep.Close()

	h.put(t, 50, "v50")
	if _, err := h.primary.Compact(); err != nil {
		t.Fatal(err)
	}

	rep2 := h.newReplica(t, 0)
	defer rep2.Close()
	rep2.MarkForeign()
	if err := rep2.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rep2.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("foreign replica did not fail on truncation")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rep2.Err(); !strings.Contains(err.Error(), "peer-recovered") {
		t.Fatalf("err = %v, want peer-recovered refusal", err)
	}
	if wm := rep2.WatermarkTS(); wm != 0 {
		t.Fatalf("failed foreign replica advertises watermark %d, want 0", wm)
	}
}

// TestReplShippingModel is the shipping-layer model check: random
// puts/deletes churn the primary while the replica applies, with a
// mid-stream tablet split (mirrored) and a mid-stream replica restart
// (resuming from the durable cursor). After every round the replica's
// pinned point reads must match a naive oracle at every pin taken so
// far — delete-drops-history semantics included.
func TestReplShippingModel(t *testing.T) {
	scenario := func(seed int64) bool {
		h := newHarness(t)
		rep := h.newReplica(t, 0)
		closed := false
		defer func() {
			if !closed {
				rep.Close()
			}
		}()
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		type ver struct {
			ts  int64
			val string
		}
		oracle := map[int][]ver{}
		var pins []int64
		const keySpace = 80
		// tabFor routes a write to the primary's serving tablet: the
		// parent before the round-0 split, the covering child after.
		split := false
		tabFor := func(k int) string {
			if !split {
				return testTablet
			}
			if k < keySpace/2 {
				return "t/l"
			}
			return "t/r"
		}
		for round := 0; round < 4; round++ {
			for i := 0; i < 150; i++ {
				k := rng.Intn(keySpace)
				key := []byte(fmt.Sprintf("k%05d", k))
				if rng.Intn(12) == 0 {
					ts := h.ts.Add(1)
					if err := h.primary.Delete(tabFor(k), testGroup, key, ts); err != nil {
						t.Fatal(err)
					}
					delete(oracle, k) // a delete drops the key's whole history
				} else {
					v := fmt.Sprintf("val-%d-%d", round, i)
					ts := h.ts.Add(1)
					if err := h.primary.Write(tabFor(k), testGroup, key, ts, []byte(v)); err != nil {
						t.Fatal(err)
					}
					oracle[k] = append(oracle[k], ver{ts: ts, val: v})
				}
			}
			switch round {
			case 0:
				// Mirror a primary-side split mid-stream: records still in
				// flight under the parent id must keep resolving.
				mid := []byte(fmt.Sprintf("k%05d", keySpace/2))
				left := partition.Tablet{ID: "t/l", Table: "t", Range: partition.Range{End: mid}}
				right := partition.Tablet{ID: "t/r", Table: "t", Range: partition.Range{Start: mid}}
				if err := rep.SplitTablet(testTablet, left, right); err != nil {
					t.Fatal(err)
				}
				if err := h.primary.SplitTablet(testTablet, left, right); err != nil {
					t.Fatal(err)
				}
				split = true
			case 1:
				// Restart the replica mid-stream: resume from the durable
				// cursor, same generation.
				rep.Close()
				r2, err := New(h.fs, h.primary, "ts0.r0", Config{
					LastTS: h.ts.Load,
					Server: core.Config{SegmentSize: 1 << 18},
				})
				if err != nil {
					t.Fatal(err)
				}
				mid := []byte(fmt.Sprintf("k%05d", keySpace/2))
				r2.AddTablet(partition.Tablet{ID: "t/l", Table: "t", Range: partition.Range{End: mid}}, []string{testGroup})
				r2.AddTablet(partition.Tablet{ID: "t/r", Table: "t", Range: partition.Range{Start: mid}}, []string{testGroup})
				if err := r2.Start(); err != nil {
					t.Fatal(err)
				}
				rep = r2
			}
			pin := h.ts.Load()
			if err := rep.WaitForTS(pin, 10*time.Second); err != nil {
				t.Fatal(err)
			}
			pins = append(pins, pin)
			if g := rep.Stats().Generation; g != 0 {
				t.Fatalf("seed %d round %d: generation %d, want 0 (no truncation happened)", seed, round, g)
			}
			for _, p := range pins {
				for i := 0; i < 25; i++ {
					k := rng.Intn(keySpace)
					key := []byte(fmt.Sprintf("k%05d", k))
					// Every pin check runs post-split: address by child range.
					tab := "t/l"
					if string(key) >= fmt.Sprintf("k%05d", keySpace/2) {
						tab = "t/r"
					}
					row, err := rep.Server().GetAt(tab, testGroup, key, p)
					var want string
					found := false
					for _, v := range oracle[k] {
						if v.ts <= p {
							want, found = v.val, true
						}
					}
					if found {
						if err != nil || string(row.Value) != want {
							t.Logf("seed %d pin %d key %s: got %q, %v; oracle %q", seed, p, key, row.Value, err, want)
							return false
						}
					} else if err == nil {
						t.Logf("seed %d pin %d key %s: got %q, oracle not-found", seed, p, key, row.Value)
						return false
					}
				}
			}
		}
		rep.Close()
		closed = true
		return true
	}
	if err := quick.Check(scenario, &quick.Config{MaxCount: 3, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// TestReplCrashReplayIdempotent is the cursor-staleness half of crash
// safety: the durable cursor lands at most every cursorFlushEvery
// applies, so a replica that dies between apply and flush re-applies
// up to cursorFlushEvery-1 already-applied records on restart. The
// replay must be invisible: ApplyReplicated installs each (key, ts)
// version at most once (the index's LSN-gated overwrite), values stay
// correct, the watermark never moves backwards, and no truncation
// re-bootstrap (generation bump) is triggered.
func TestReplCrashReplayIdempotent(t *testing.T) {
	h := newHarness(t)
	reg := fault.New(0xbad5eed)
	rep, err := New(h.fs, h.primary, "ts0.r0", Config{
		LastTS: h.ts.Load,
		Server: core.Config{SegmentSize: 1 << 18, Faults: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.AddTablet(partition.Tablet{ID: testTablet, Table: "t"}, []string{testGroup})
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: 300 rows, shipped and durably checkpointed (the idle
	// tick flushes the cursor once the replica catches up).
	firstTS := make([]int64, 300)
	for i := range firstTS {
		firstTS[i] = h.put(t, i, fmt.Sprintf("v%d", i))
	}
	if err := rep.WaitForTS(h.ts.Load(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var durable uint64
	for deadline := time.Now().Add(2 * time.Second); ; {
		if _, lsn, found, err := rep.loadCursor(); err == nil && found {
			durable = lsn
		}
		if durable == rep.AppliedLSN() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor never flushed: durable=%d applied=%d", durable, rep.AppliedLSN())
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 2: suppress every further cursor flush (including the one
	// in Close), overwrite 200 existing keys, then "crash". Disk keeps
	// the applied records; the cursor stays 200 records stale.
	reg.Arm("crash.repl.pre-cursor-flush", fault.Policy{})
	secondTS := make([]int64, 200)
	for i := range secondTS {
		secondTS[i] = h.put(t, i, fmt.Sprintf("u%d", i))
	}
	if err := rep.WaitForTS(h.ts.Load(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	crashApplied := rep.AppliedLSN()
	wmBefore := rep.WatermarkTS()
	if crashApplied <= durable {
		t.Fatalf("no replay window: applied %d <= durable cursor %d", crashApplied, durable)
	}
	rep.Close()
	if _, lsn, _, err := rep.loadCursor(); err != nil || lsn != durable {
		t.Fatalf("cursor moved despite armed crash point: lsn=%d err=%v, want %d", lsn, err, durable)
	}

	// Restart as a fresh process: clean fault registry, stale cursor.
	rep2, err := New(h.fs, h.primary, "ts0.r0", Config{
		LastTS: h.ts.Load,
		Server: core.Config{SegmentSize: 1 << 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep2.AppliedLSN(); got != durable {
		t.Fatalf("reopened replica resumes at LSN %d, want stale durable cursor %d", got, durable)
	}
	rep2.AddTablet(partition.Tablet{ID: testTablet, Table: "t"}, []string{testGroup})
	if err := rep2.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()

	// Catch up while checking the watermark never moves backwards.
	target := h.ts.Load()
	prev := int64(-1)
	for deadline := time.Now().Add(5 * time.Second); ; {
		w := rep2.WatermarkTS()
		if w < prev {
			t.Fatalf("watermark moved backwards during replay: %d -> %d", prev, w)
		}
		prev = w
		if w >= target {
			break
		}
		if err := rep2.Err(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at watermark %d, want %d", w, target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if wm := rep2.WatermarkTS(); wm < wmBefore {
		t.Fatalf("post-restart watermark %d below pre-crash %d", wm, wmBefore)
	}
	if gen := rep2.Stats().Generation; gen != 0 {
		t.Fatalf("replay triggered a re-bootstrap: generation = %d, want 0", gen)
	}

	// Every key must hold exactly the versions the primary holds — the
	// replayed suffix must not have installed duplicates.
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("k%05d", i))
		got, err := rep2.Server().Versions(testTablet, testGroup, key)
		if err != nil {
			t.Fatal(err)
		}
		want, err := h.primary.Versions(testTablet, testGroup, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("key %s: %d versions on replica, %d on primary", key, len(got), len(want))
		}
		wantN := 1
		if i < 200 {
			wantN = 2
		}
		if len(got) != wantN {
			t.Fatalf("key %s: %d versions, want %d (duplicate from replay?)", key, len(got), wantN)
		}
		for j := range got {
			if got[j].TS != want[j].TS || string(got[j].Value) != string(want[j].Value) {
				t.Fatalf("key %s version %d: replica (ts=%d, %q) != primary (ts=%d, %q)",
					key, j, got[j].TS, got[j].Value, want[j].TS, want[j].Value)
			}
		}
		latest := fmt.Sprintf("v%d", i)
		if i < 200 {
			latest = fmt.Sprintf("u%d", i)
		}
		wantRow(t, rep2.Server(), i, h.ts.Load(), latest)
	}
}
