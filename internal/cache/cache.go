// Package cache implements LogBase's read buffer (paper §3.6.2): an
// optional, size-bounded cache of recently written and recently read
// record versions. Unlike HBase's memtable, the read buffer never holds
// the only copy of data — evictions are free, which is exactly why the
// log-only design has no flush bottleneck.
//
// The replacement strategy is an abstracted interface (the paper calls
// this out explicitly) with LRU as the default; CLOCK and FIFO are
// provided as alternatives and exercised by the cache-policy ablation
// bench.
package cache

import (
	"container/list"
	"sync"
)

// Policy decides which resident key to evict. Implementations are
// driven under the cache's lock and must not call back into the cache.
type Policy interface {
	// Touch notes that key was accessed (hit or insert).
	Touch(key string)
	// Add notes that key became resident.
	Add(key string)
	// Evict picks and removes the victim. It is only called when at
	// least one key is resident.
	Evict() string
	// Remove notes that key was explicitly invalidated.
	Remove(key string)
	// Name identifies the policy in bench output.
	Name() string
}

// Cache is a byte-budgeted record cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	items    map[string][]byte
	policy   Policy

	hits   int64
	misses int64
}

// Stats reports hit/miss counters.
type Stats struct {
	Hits, Misses int64
	Used         int64
	Items        int
}

// New creates a cache holding at most capacity bytes of values. A nil
// policy means LRU. Capacity <= 0 disables the cache (every Get
// misses, Put is a no-op) — this is the "read buffer is optional"
// configuration.
func New(capacity int64, policy Policy) *Cache {
	if policy == nil {
		policy = NewLRU()
	}
	return &Cache{capacity: capacity, items: make(map[string][]byte), policy: policy}
}

// Get returns the cached value and whether it was present.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.policy.Touch(key)
	return v, true
}

// Put inserts or replaces a value, evicting as needed. Values larger
// than the whole capacity are not cached.
func (c *Cache) Put(key string, value []byte) {
	if c.capacity <= 0 || int64(len(value)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		c.used -= int64(len(old))
		c.items[key] = value
		c.used += int64(len(value))
		c.policy.Touch(key)
	} else {
		c.items[key] = value
		c.used += int64(len(value))
		c.policy.Add(key)
	}
	for c.used > c.capacity && len(c.items) > 0 {
		victim := c.policy.Evict()
		if v, ok := c.items[victim]; ok {
			c.used -= int64(len(v))
			delete(c.items, victim)
		}
	}
}

// Invalidate removes a key (e.g. on delete).
func (c *Cache) Invalidate(key string) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.items[key]; ok {
		c.used -= int64(len(v))
		delete(c.items, key)
		c.policy.Remove(key)
	}
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Used: c.used, Items: len(c.items)}
}

// lru is the default policy: discard the least recently used key.
type lru struct {
	ll  *list.List
	pos map[string]*list.Element
}

// NewLRU returns the default least-recently-used policy.
func NewLRU() Policy {
	return &lru{ll: list.New(), pos: make(map[string]*list.Element)}
}

func (p *lru) Name() string { return "lru" }

func (p *lru) Touch(key string) {
	if e, ok := p.pos[key]; ok {
		p.ll.MoveToFront(e)
	}
}

func (p *lru) Add(key string) { p.pos[key] = p.ll.PushFront(key) }

func (p *lru) Evict() string {
	e := p.ll.Back()
	key := e.Value.(string)
	p.ll.Remove(e)
	delete(p.pos, key)
	return key
}

func (p *lru) Remove(key string) {
	if e, ok := p.pos[key]; ok {
		p.ll.Remove(e)
		delete(p.pos, key)
	}
}

// fifo evicts in insertion order regardless of access.
type fifo struct {
	ll  *list.List
	pos map[string]*list.Element
}

// NewFIFO returns a first-in-first-out policy.
func NewFIFO() Policy {
	return &fifo{ll: list.New(), pos: make(map[string]*list.Element)}
}

func (p *fifo) Name() string   { return "fifo" }
func (p *fifo) Touch(string)   {}
func (p *fifo) Add(key string) { p.pos[key] = p.ll.PushFront(key) }
func (p *fifo) Evict() string {
	e := p.ll.Back()
	key := e.Value.(string)
	p.ll.Remove(e)
	delete(p.pos, key)
	return key
}
func (p *fifo) Remove(key string) {
	if e, ok := p.pos[key]; ok {
		p.ll.Remove(e)
		delete(p.pos, key)
	}
}

// clock is the classic second-chance approximation of LRU.
type clock struct {
	ring []clockSlot
	pos  map[string]int
	hand int
}

type clockSlot struct {
	key  string
	ref  bool
	live bool
}

// NewClock returns a CLOCK (second chance) policy.
func NewClock() Policy {
	return &clock{pos: make(map[string]int)}
}

func (p *clock) Name() string { return "clock" }

func (p *clock) Touch(key string) {
	if i, ok := p.pos[key]; ok {
		p.ring[i].ref = true
	}
}

func (p *clock) Add(key string) {
	// Reuse a dead slot if the hand is on one; otherwise grow.
	for i := range p.ring {
		if !p.ring[i].live {
			p.ring[i] = clockSlot{key: key, ref: true, live: true}
			p.pos[key] = i
			return
		}
	}
	p.ring = append(p.ring, clockSlot{key: key, ref: true, live: true})
	p.pos[key] = len(p.ring) - 1
}

func (p *clock) Evict() string {
	for {
		s := &p.ring[p.hand%len(p.ring)]
		i := p.hand % len(p.ring)
		p.hand++
		if !s.live {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		s.live = false
		delete(p.pos, s.key)
		_ = i
		return s.key
	}
}

func (p *clock) Remove(key string) {
	if i, ok := p.pos[key]; ok {
		p.ring[i].live = false
		delete(p.pos, key)
	}
}
