package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1024, nil)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", []byte("value"))
	v, ok := c.Get("a")
	if !ok || string(v) != "value" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplaceUpdatesBudget(t *testing.T) {
	c := New(100, nil)
	c.Put("k", make([]byte, 80))
	c.Put("k", make([]byte, 10))
	if st := c.Stats(); st.Used != 10 || st.Items != 1 {
		t.Errorf("stats after replace = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30, NewLRU())
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	c.Get("a") // a becomes most recent
	c.Put("d", make([]byte, 10))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU kept b; should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("LRU evicted %s", k)
		}
	}
}

func TestFIFOEvictionIgnoresAccess(t *testing.T) {
	c := New(30, NewFIFO())
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	c.Get("a")
	c.Put("d", make([]byte, 10))
	if _, ok := c.Get("a"); ok {
		t.Error("FIFO kept a despite insertion order")
	}
}

func TestClockSecondChance(t *testing.T) {
	c := New(30, NewClock())
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	// All have ref bits set; inserting d sweeps and evicts the first
	// slot after bits are cleared.
	c.Put("d", make([]byte, 10))
	if st := c.Stats(); st.Items != 3 || st.Used != 30 {
		t.Errorf("stats = %+v", st)
	}
	// d must survive its own insertion.
	if _, ok := c.Get("d"); !ok {
		t.Error("clock evicted the newly inserted key")
	}
}

func TestDisabledCache(t *testing.T) {
	c := New(0, nil)
	c.Put("a", []byte("v"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored data")
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := New(10, nil)
	c.Put("huge", make([]byte, 100))
	if st := c.Stats(); st.Items != 0 {
		t.Errorf("oversize value cached: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewClock()} {
		c := New(100, p)
		c.Put("a", []byte("1"))
		c.Put("b", []byte("2"))
		c.Invalidate("a")
		if _, ok := c.Get("a"); ok {
			t.Errorf("%s: invalidated key still cached", p.Name())
		}
		if _, ok := c.Get("b"); !ok {
			t.Errorf("%s: invalidate removed the wrong key", p.Name())
		}
		// Eviction after invalidation must not return the dead key.
		c.Put("c", make([]byte, 60))
		c.Put("d", make([]byte, 60)) // forces eviction
		if st := c.Stats(); st.Used > 100 {
			t.Errorf("%s: over budget: %+v", p.Name(), st)
		}
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewClock()} {
		c := New(1000, p)
		for i := 0; i < 500; i++ {
			c.Put(fmt.Sprintf("k%d", i%50), make([]byte, 1+i%200))
			if st := c.Stats(); st.Used > 1000 {
				t.Fatalf("%s: used %d exceeds capacity", p.Name(), st.Used)
			}
		}
	}
}

func TestConcurrent(t *testing.T) {
	c := New(10_000, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*500+i)%100)
				if i%3 == 0 {
					c.Put(key, make([]byte, 50))
				} else if i%7 == 0 {
					c.Invalidate(key)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Used > 10_000 {
		t.Errorf("over budget after concurrency: %+v", st)
	}
}
