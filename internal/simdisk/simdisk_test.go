package simdisk

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func newTestDisk(t *testing.T, m Model) *Disk {
	t.Helper()
	d, err := New(t.TempDir(), m, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestCreateWriteRead(t *testing.T) {
	d := newTestDisk(t, NullModel())
	f, err := d.Create("a/b/file1")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()

	data := []byte("hello simdisk")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q, want %q", got, data)
	}
}

func TestAppendReturnsOffsets(t *testing.T) {
	d := newTestDisk(t, NullModel())
	f, err := d.Create("log")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()

	var want int64
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, i+1)
		off, err := f.Append(chunk)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if off != want {
			t.Errorf("append %d at offset %d, want %d", i, off, want)
		}
		want += int64(len(chunk))
	}
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != want {
		t.Errorf("size = %d, want %d", size, want)
	}
}

func TestReadAtEOF(t *testing.T) {
	d := newTestDisk(t, NullModel())
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Append([]byte("abc")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF && err != nil && n != 3 {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	if n != 3 {
		t.Errorf("short read n=%d, want 3", n)
	}
}

func TestSequentialVsRandomCost(t *testing.T) {
	m := Model{SeekLatency: time.Millisecond, ReadBytesPerSec: 1 << 30, WriteBytesPerSec: 1 << 30}
	d := newTestDisk(t, m)
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()

	// Lay down 100 records of 100 bytes sequentially.
	rec := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 100; i++ {
		if _, err := f.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Sequential appends after the create incur exactly one seek (the
	// create resets the head to 0 and appends continue from there).
	seqSeeks := d.Stats().Seeks
	if seqSeeks > 1 {
		t.Errorf("sequential writes took %d seeks, want <=1", seqSeeks)
	}
	d.ResetStats()
	d.Clock().Reset()

	// Random reads: every access jumps, so every access seeks.
	buf := make([]byte, 100)
	order := []int64{90, 10, 50, 30, 70}
	for _, i := range order {
		if _, err := f.ReadAt(buf, i*100); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
	}
	if got := d.Stats().Seeks; got != int64(len(order)) {
		t.Errorf("random reads took %d seeks, want %d", got, len(order))
	}
	if elapsed := d.Clock().Elapsed(); elapsed < time.Duration(len(order))*time.Millisecond {
		t.Errorf("virtual time %v too small for %d seeks", elapsed, len(order))
	}
}

func TestContiguousReadNoSeek(t *testing.T) {
	m := Model{SeekLatency: time.Millisecond}
	d := newTestDisk(t, m)
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Append(bytes.Repeat([]byte("y"), 1000)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	d.ResetStats()

	buf := make([]byte, 100)
	for off := int64(0); off < 1000; off += 100 {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
	}
	// First read seeks (head was at end-of-append), the other 9 are contiguous.
	if got := d.Stats().Seeks; got != 1 {
		t.Errorf("contiguous scan took %d seeks, want 1", got)
	}
}

func TestListAndRemove(t *testing.T) {
	d := newTestDisk(t, NullModel())
	for _, name := range []string{"seg/000001", "seg/000002", "idx/cp1"} {
		f, err := d.Create(name)
		if err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
		if _, err := f.Append([]byte(name)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		f.Close()
	}
	names, err := d.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 3 {
		t.Fatalf("List returned %v, want 3 entries", names)
	}
	if err := d.Remove("seg/000001"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if d.Exists("seg/000001") {
		t.Error("file still exists after Remove")
	}
	if !d.Exists("seg/000002") {
		t.Error("sibling file vanished")
	}
}

func TestStatsCounters(t *testing.T) {
	d := newTestDisk(t, NullModel())
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Append(make([]byte, 128)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	st := d.Stats()
	if st.BytesWritten != 128 || st.WriteOps != 1 {
		t.Errorf("write stats = %+v", st)
	}
	if st.BytesRead != 64 || st.ReadOps != 1 {
		t.Errorf("read stats = %+v", st)
	}
}

func TestSharedClock(t *testing.T) {
	clock := &Clock{}
	m := Model{SeekLatency: time.Millisecond}
	dir := t.TempDir()
	d1, err := New(dir+"/d1", m, clock)
	if err != nil {
		t.Fatalf("New d1: %v", err)
	}
	d2, err := New(dir+"/d2", m, clock)
	if err != nil {
		t.Fatalf("New d2: %v", err)
	}
	for i, d := range []*Disk{d1, d2} {
		f, err := d.Create(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := f.WriteAt([]byte("z"), 100); err != nil { // non-zero offset forces a seek
			t.Fatalf("WriteAt: %v", err)
		}
		f.Close()
	}
	if clock.Elapsed() < 2*time.Millisecond {
		t.Errorf("shared clock %v, want >= 2ms", clock.Elapsed())
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newTestDisk(t, Model{SeekLatency: time.Microsecond})
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if _, err := f.Append(make([]byte, 4096)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < 100; i++ {
				if _, err := f.ReadAt(buf, int64((g*100+i)%4000)); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := d.Stats().ReadOps; got != 800 {
		t.Errorf("ReadOps = %d, want 800", got)
	}
}

func TestSleepRealisesCost(t *testing.T) {
	m := Model{SeekLatency: 2 * time.Millisecond, Sleep: true, SleepScale: 1.0}
	d := newTestDisk(t, m)
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.WriteAt([]byte("a"), 512); err != nil { // forced seek
		t.Fatalf("WriteAt: %v", err)
	}
	if wall := time.Since(start); wall < 2*time.Millisecond {
		t.Errorf("sleep mode wall time %v, want >= 2ms", wall)
	}
}
