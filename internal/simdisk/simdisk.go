// Package simdisk models the cost asymmetry between sequential and random
// disk I/O that the LogBase paper's evaluation relies on.
//
// The paper's headline results are seek-count arguments: a log-only store
// pays one sequential append per write, while a WAL+Data store pays the
// append plus an eventual random flush; a dense in-memory index finds a
// record with a single seek, while a sparse block index must fetch a whole
// block. This package charges exactly those costs.
//
// A Disk wraps a directory of ordinary files. Every read or write is
// charged virtual time: a seek penalty whenever the access is not
// contiguous with the previous access to the same file, plus a transfer
// cost proportional to the number of bytes moved. Costs accumulate in a
// Clock. When Model.Sleep is true the cost is additionally realised as
// wall-clock sleep so that wall-time benchmarks exhibit the modelled
// shape; unit tests leave Sleep off and assert on virtual time instead.
package simdisk

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Model holds the cost parameters of a simulated spinning disk.
type Model struct {
	// SeekLatency is charged whenever an access does not start where the
	// previous access to the same file ended.
	SeekLatency time.Duration
	// ReadBytesPerSec and WriteBytesPerSec are sequential bandwidths.
	ReadBytesPerSec  int64
	WriteBytesPerSec int64
	// Sleep realises charged costs as wall-clock sleeps (scaled by
	// SleepScale) in addition to advancing the virtual clock.
	Sleep bool
	// SleepScale scales realised sleeps; 1.0 sleeps the full modelled
	// cost. Zero means 1.0.
	SleepScale float64
}

// DefaultModel approximates a 7200 RPM commodity disk: 8 ms average seek,
// 100 MB/s sequential transfer.
func DefaultModel() Model {
	return Model{
		SeekLatency:      8 * time.Millisecond,
		ReadBytesPerSec:  100 << 20,
		WriteBytesPerSec: 100 << 20,
	}
}

// NullModel charges nothing; used by tests that only care about bytes.
func NullModel() Model { return Model{} }

// Stats are cumulative I/O counters for one Disk.
type Stats struct {
	Seeks        int64
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
}

// Clock accumulates virtual I/O time.
type Clock struct {
	ns atomic.Int64
}

// Advance adds d to the clock.
func (c *Clock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Elapsed reports total accumulated virtual time.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.ns.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// Disk is a directory of files with modelled access costs. It is safe for
// concurrent use.
type Disk struct {
	dir   string
	model Model
	clock *Clock

	// faults, when non-nil, is consulted on every file read and write
	// at points "<faultPrefix>.read" / "<faultPrefix>.write".
	faults      *fault.Registry
	faultPrefix string

	mu sync.Mutex
	// One head per spindle: an access seeks unless it starts exactly
	// where the previous access (to any file) ended. This is what makes
	// interleaved writes to multiple logs on one disk more expensive
	// than one sequential log — the §3.4 argument.
	headFile string
	headOff  int64
	headSet  bool
	stats    Stats
}

// New creates (or reuses) the directory dir and returns a Disk over it.
// If clock is nil a private clock is allocated.
func New(dir string, model Model, clock *Clock) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simdisk: create %s: %w", dir, err)
	}
	if clock == nil {
		clock = &Clock{}
	}
	return &Disk{dir: dir, model: model, clock: clock}, nil
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

// SetFaults attaches a fault registry. Reads fire "<prefix>.read" and
// writes "<prefix>.write"; injected Delay advances the virtual clock
// like a modelled cost. Call before issuing I/O.
func (d *Disk) SetFaults(reg *fault.Registry, prefix string) {
	d.faults = reg
	d.faultPrefix = prefix
}

// Clock returns the disk's virtual clock.
func (d *Disk) Clock() *Clock { return d.clock }

// Stats returns a snapshot of the cumulative counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the clock is left untouched).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// charge computes and applies the cost of an access of n bytes at offset
// off in file name. write selects the write bandwidth.
func (d *Disk) charge(name string, off, n int64, write bool) {
	d.mu.Lock()
	seek := !d.headSet || d.headFile != name || d.headOff != off
	d.headFile, d.headOff, d.headSet = name, off+n, true
	if seek {
		d.stats.Seeks++
	}
	if write {
		d.stats.WriteOps++
		d.stats.BytesWritten += n
	} else {
		d.stats.ReadOps++
		d.stats.BytesRead += n
	}
	m := d.model
	d.mu.Unlock()

	var cost time.Duration
	if seek {
		cost += m.SeekLatency
	}
	bw := m.ReadBytesPerSec
	if write {
		bw = m.WriteBytesPerSec
	}
	if bw > 0 {
		cost += time.Duration(float64(n) / float64(bw) * float64(time.Second))
	}
	if cost == 0 {
		return
	}
	d.clock.Advance(cost)
	if m.Sleep {
		scale := m.SleepScale
		if scale == 0 {
			scale = 1.0
		}
		time.Sleep(time.Duration(float64(cost) * scale))
	}
}

func (d *Disk) path(name string) string { return filepath.Join(d.dir, name) }

// File is a handle to one simulated file.
type File struct {
	d    *Disk
	name string
	f    *os.File
}

// Create creates or truncates a file.
func (d *Disk) Create(name string) (*File, error) {
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("simdisk: mkdir for %s: %w", name, err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("simdisk: create %s: %w", name, err)
	}
	return &File{d: d, name: name, f: f}, nil
}

// Open opens an existing file for reading and appending.
func (d *Disk) Open(name string) (*File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("simdisk: open %s: %w", name, err)
	}
	return &File{d: d, name: name, f: f}, nil
}

// Remove deletes a file.
func (d *Disk) Remove(name string) error {
	if err := os.Remove(d.path(name)); err != nil {
		return fmt.Errorf("simdisk: remove %s: %w", name, err)
	}
	return nil
}

// Exists reports whether the named file exists.
func (d *Disk) Exists(name string) bool {
	_, err := os.Stat(d.path(name))
	return err == nil
}

// List returns the names of all files under the disk, relative to its
// root, in lexical order.
func (d *Disk) List() ([]string, error) {
	var names []string
	err := filepath.Walk(d.dir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			rel, rerr := filepath.Rel(d.dir, p)
			if rerr != nil {
				return rerr
			}
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("simdisk: list: %w", err)
	}
	return names, nil
}

// Size returns the current size of the named file.
func (d *Disk) Size(name string) (int64, error) {
	st, err := os.Stat(d.path(name))
	if err != nil {
		return 0, fmt.Errorf("simdisk: stat %s: %w", name, err)
	}
	return st.Size(), nil
}

// Name returns the file's disk-relative name.
func (f *File) Name() string { return f.name }

// Size returns the file's current size.
func (f *File) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("simdisk: stat %s: %w", f.name, err)
	}
	return st.Size(), nil
}

// WriteAt writes p at offset off, charging seek + transfer cost.
// Injected faults can tear the write (a prefix reaches disk, then an
// error), flip a bit of the payload on its way down, add latency, or
// fail it outright.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if o := f.d.faults.Fire(f.d.faultPrefix + ".write"); o.Injected() {
		if o.Delay > 0 {
			f.d.clock.Advance(o.Delay)
		}
		if o.FlipBit {
			corrupted := append([]byte(nil), p...)
			fault.Corrupt(corrupted, o.Token)
			p = corrupted
		}
		if o.Partial > 0 && o.Partial < 1 {
			n := int(float64(len(p)) * o.Partial)
			if _, werr := f.writeAt(p[:n], off); werr != nil {
				return 0, werr
			}
			err := o.Err
			if err == nil {
				err = fault.ErrInjected
			}
			return n, fmt.Errorf("simdisk: write %s@%d torn after %d/%d bytes: %w",
				f.name, off, n, len(p), err)
		}
		if o.Err != nil {
			return 0, fmt.Errorf("simdisk: write %s@%d: %w", f.name, off, o.Err)
		}
	}
	return f.writeAt(p, off)
}

func (f *File) writeAt(p []byte, off int64) (int, error) {
	f.d.charge(f.name, off, int64(len(p)), true)
	n, err := f.f.WriteAt(p, off)
	if err != nil {
		return n, fmt.Errorf("simdisk: write %s@%d: %w", f.name, off, err)
	}
	return n, nil
}

// Append writes p at the end of the file and returns the offset at which
// it was written.
func (f *File) Append(p []byte) (int64, error) {
	off, err := f.Size()
	if err != nil {
		return 0, err
	}
	if _, err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

// ReadAt reads len(p) bytes at offset off, charging seek + transfer cost.
// Injected faults can fail the read, delay it, or flip a bit of the
// returned data (the on-disk bytes stay intact — a transient read
// corruption, as opposed to a write-path flip which persists).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if o := f.d.faults.Fire(f.d.faultPrefix + ".read"); o.Injected() {
		if o.Delay > 0 {
			f.d.clock.Advance(o.Delay)
		}
		if o.Err != nil {
			return 0, fmt.Errorf("simdisk: read %s@%d: %w", f.name, off, o.Err)
		}
		if o.FlipBit {
			n, err := f.readAt(p, off)
			if n > 0 {
				fault.Corrupt(p[:n], o.Token)
			}
			return n, err
		}
	}
	return f.readAt(p, off)
}

func (f *File) readAt(p []byte, off int64) (int, error) {
	f.d.charge(f.name, off, int64(len(p)), false)
	n, err := f.f.ReadAt(p, off)
	if err != nil {
		return n, err // callers depend on io.EOF passing through
	}
	return n, nil
}

// Truncate cuts the file to size bytes. No transfer cost is charged:
// truncation is a metadata operation.
func (f *File) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return fmt.Errorf("simdisk: truncate %s: %w", f.name, err)
	}
	return nil
}

// Sync flushes the file to the underlying OS file.
func (f *File) Sync() error {
	if err := f.f.Sync(); err != nil {
		return fmt.Errorf("simdisk: sync %s: %w", f.name, err)
	}
	return nil
}

// Close closes the handle.
func (f *File) Close() error {
	if err := f.f.Close(); err != nil {
		return fmt.Errorf("simdisk: close %s: %w", f.name, err)
	}
	return nil
}
