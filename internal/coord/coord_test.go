package coord

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestTimestampOracleMonotonic(t *testing.T) {
	svc := New()
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts := svc.NextTimestamp()
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate timestamp %d", ts)
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 8000 {
		t.Errorf("issued %d distinct timestamps, want 8000", len(seen))
	}
	if svc.LastTimestamp() != 8000 {
		t.Errorf("LastTimestamp = %d", svc.LastTimestamp())
	}
}

func TestCreateGetSetDelete(t *testing.T) {
	svc := New()
	s := svc.NewSession()
	if err := s.Create("/a", []byte("1")); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := s.Create("/a", []byte("2")); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate Create err = %v", err)
	}
	v, err := s.Get("/a")
	if err != nil || string(v) != "1" {
		t.Errorf("Get = %q, %v", v, err)
	}
	if err := s.Set("/a", []byte("2")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, _ = s.Get("/a")
	if string(v) != "2" {
		t.Errorf("after Set, Get = %q", v)
	}
	if err := s.Delete("/a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("/a"); !errors.Is(err, ErrNoNode) {
		t.Errorf("Get after delete err = %v", err)
	}
}

func TestEphemeralRemovedOnClose(t *testing.T) {
	svc := New()
	s1 := svc.NewSession()
	s2 := svc.NewSession()
	s1.CreateEphemeral("/servers/s1", []byte("addr"))
	s1.Create("/persistent", []byte("stays"))
	if !s2.Exists("/servers/s1") {
		t.Fatal("ephemeral not visible to other session")
	}
	s1.Close()
	if s2.Exists("/servers/s1") {
		t.Error("ephemeral survived session close")
	}
	if !s2.Exists("/persistent") {
		t.Error("persistent node removed on close")
	}
	if err := s1.Create("/x", nil); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("closed session Create err = %v", err)
	}
}

func TestList(t *testing.T) {
	svc := New()
	s := svc.NewSession()
	s.Create("/servers/a", nil)
	s.Create("/servers/b", nil)
	s.Create("/other", nil)
	got := s.List("/servers/")
	want := []string{"/servers/a", "/servers/b"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("List = %v", got)
	}
}

func TestWatchFires(t *testing.T) {
	svc := New()
	s1 := svc.NewSession()
	s2 := svc.NewSession()
	ch := s2.Watch("/node")
	s1.Create("/node", []byte("x"))
	select {
	case ev := <-ch:
		if ev.Type != EventCreated || ev.Path != "/node" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no create event")
	}
	s1.Set("/node", []byte("y"))
	if ev := <-ch; ev.Type != EventChanged {
		t.Errorf("event = %+v, want changed", ev)
	}
	s1.Delete("/node")
	if ev := <-ch; ev.Type != EventDeleted {
		t.Errorf("event = %+v, want deleted", ev)
	}
}

func TestWatchEphemeralDeath(t *testing.T) {
	svc := New()
	master := svc.NewSession()
	standby := svc.NewSession()
	master.CreateEphemeral("/master", []byte("m1"))
	ch := standby.Watch("/master")
	master.Close()
	select {
	case ev := <-ch:
		if ev.Type != EventDeleted {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no deletion event after session death")
	}
	// Standby can now win the election.
	won, err := standby.Elect("/master", []byte("m2"))
	if err != nil || !won {
		t.Errorf("standby election: won=%v err=%v", won, err)
	}
}

func TestElectionSingleWinner(t *testing.T) {
	svc := New()
	const n = 10
	var winners int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := svc.NewSession()
			won, err := s.Elect("/master", []byte{byte(i)})
			if err != nil {
				t.Errorf("Elect: %v", err)
			}
			if won {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if winners != 1 {
		t.Errorf("%d election winners, want exactly 1", winners)
	}
}

func TestTryLock(t *testing.T) {
	svc := New()
	a := svc.NewSession()
	b := svc.NewSession()
	ok, _ := a.TryLock("k")
	if !ok {
		t.Fatal("first TryLock failed")
	}
	// Re-entrant for the same session.
	if ok, _ := a.TryLock("k"); !ok {
		t.Error("re-entrant TryLock failed")
	}
	if ok, _ := b.TryLock("k"); ok {
		t.Error("TryLock on held lock succeeded")
	}
	a.Unlock("k")
	if ok, _ := b.TryLock("k"); !ok {
		t.Error("TryLock after unlock failed")
	}
}

func TestLockBlocksAndFIFO(t *testing.T) {
	svc := New()
	holder := svc.NewSession()
	holder.Lock("k")

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := svc.NewSession()
			s.Lock("k")
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(time.Millisecond)
			s.Unlock("k")
		}(i)
		time.Sleep(20 * time.Millisecond) // deterministic queueing order
	}
	holder.Unlock("k")
	wg.Wait()
	if !sort.IntsAreSorted(order) {
		t.Errorf("lock grant order %v, want FIFO", order)
	}
}

func TestLocksReleasedOnSessionClose(t *testing.T) {
	svc := New()
	a := svc.NewSession()
	b := svc.NewSession()
	a.Lock("x")
	a.Lock("y")
	if svc.HeldLocks(a.ID()) != 2 {
		t.Fatalf("HeldLocks = %d", svc.HeldLocks(a.ID()))
	}
	done := make(chan struct{})
	go func() {
		b.Lock("x")
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("lock not released by session close")
	}
	if svc.HeldLocks(a.ID()) != 0 {
		t.Error("dead session still holds locks")
	}
}

func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	// Two transactions locking overlapping key sets in sorted order
	// (the paper's deadlock-avoidance rule) must always complete.
	svc := New()
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := svc.NewSession()
			defer s.Close()
			for iter := 0; iter < 50; iter++ {
				subset := keys[g%2 : 2+g%2] // overlapping slices, still sorted
				for _, k := range subset {
					s.Lock(k)
				}
				for _, k := range subset {
					s.Unlock(k)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock despite ordered acquisition")
	}
}
