// Package coord is the reproduction's ZooKeeper (paper §3.3, §3.7): an
// in-process coordination service providing the four facilities LogBase
// delegates to ZooKeeper — ephemeral registration with watches (server
// liveness and discovery), master election, a distributed lock service
// (MVOCC validation-phase write locks), and a timestamp authority that
// issues globally ordered commit timestamps.
//
// Only the semantics matter for the reproduction, not the wire
// protocol, so the service is a small, strictly synchronised state
// machine. Sessions mirror ZooKeeper sessions: closing one removes its
// ephemeral nodes and releases its locks, which is what drives failover.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EventType describes a watch notification.
type EventType int

const (
	// EventCreated fires when a watched path appears.
	EventCreated EventType = iota
	// EventDeleted fires when a watched path disappears.
	EventDeleted
	// EventChanged fires when a watched path's data changes.
	EventChanged
)

// Event is a watch notification.
type Event struct {
	Type EventType
	Path string
}

// ErrNodeExists is returned when creating an existing path.
var ErrNodeExists = errors.New("coord: node exists")

// ErrNoNode is returned for operations on a missing path.
var ErrNoNode = errors.New("coord: no such node")

// ErrSessionClosed is returned for operations on a closed session.
var ErrSessionClosed = errors.New("coord: session closed")

type znode struct {
	data  []byte
	owner int64 // session id for ephemerals; 0 = persistent
}

// Service is the coordination service. One instance serves a whole
// simulated cluster.
type Service struct {
	mu       sync.Mutex
	nodes    map[string]*znode
	watches  map[string][]chan Event
	sessions map[int64]*Session
	locks    map[string]*lockState

	nextSession atomic.Int64
	clock       atomic.Int64
}

// New creates an empty coordination service.
func New() *Service {
	return &Service{
		nodes:    make(map[string]*znode),
		watches:  make(map[string][]chan Event),
		sessions: make(map[int64]*Session),
		locks:    make(map[string]*lockState),
	}
}

// NextTimestamp issues the next globally ordered timestamp. LogBase
// uses this as the commit-timestamp authority establishing a total
// order over committed update transactions (paper §3.7.1).
func (s *Service) NextTimestamp() int64 { return s.clock.Add(1) }

// LastTimestamp returns the most recently issued timestamp (a safe
// read-snapshot bound).
func (s *Service) LastTimestamp() int64 { return s.clock.Load() }

// AdvanceTo raises the clock to at least ts. Recovery seeds a fresh
// oracle past every committed timestamp it restored, so "latest"
// snapshot reads on a reopened instance see the recovered data instead
// of an empty pre-history.
func (s *Service) AdvanceTo(ts int64) {
	for {
		cur := s.clock.Load()
		if cur >= ts || s.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Session is one client's connection to the service.
type Session struct {
	svc    *Service
	id     int64
	closed atomic.Bool
}

// NewSession opens a session.
func (s *Service) NewSession() *Session {
	sess := &Session{svc: s, id: s.nextSession.Add(1)}
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	return sess
}

// ID returns the session's id.
func (s *Session) ID() int64 { return s.id }

// Close expires the session: its ephemeral nodes vanish (firing
// watches) and its locks are released, exactly as when a ZooKeeper
// client dies.
func (s *Session) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	svc := s.svc
	svc.mu.Lock()
	delete(svc.sessions, s.id)
	var dead []string
	for path, n := range svc.nodes {
		if n.owner == s.id {
			dead = append(dead, path)
		}
	}
	for _, path := range dead {
		delete(svc.nodes, path)
	}
	var unlock []string
	for key, ls := range svc.locks {
		if ls.owner == s.id {
			unlock = append(unlock, key)
		}
	}
	svc.mu.Unlock()
	for _, path := range dead {
		svc.notify(path, EventDeleted)
	}
	for _, key := range unlock {
		svc.unlock(s.id, key)
	}
}

func (s *Session) check() error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	return nil
}

// Create creates a persistent node.
func (s *Session) Create(path string, data []byte) error {
	return s.create(path, data, 0)
}

// CreateEphemeral creates a node tied to the session's lifetime.
func (s *Session) CreateEphemeral(path string, data []byte) error {
	return s.create(path, data, s.id)
}

func (s *Session) create(path string, data []byte, owner int64) error {
	if err := s.check(); err != nil {
		return err
	}
	svc := s.svc
	svc.mu.Lock()
	if _, ok := svc.nodes[path]; ok {
		svc.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNodeExists, path)
	}
	svc.nodes[path] = &znode{data: append([]byte(nil), data...), owner: owner}
	svc.mu.Unlock()
	svc.notify(path, EventCreated)
	return nil
}

// Set replaces a node's data.
func (s *Session) Set(path string, data []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	svc := s.svc
	svc.mu.Lock()
	n, ok := svc.nodes[path]
	if !ok {
		svc.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	n.data = append([]byte(nil), data...)
	svc.mu.Unlock()
	svc.notify(path, EventChanged)
	return nil
}

// SetOrCreate writes a node's data, creating the node if it does not
// exist (persistent when created here). Load-report publication uses
// this: the first report creates /load/<server>, later reports update
// it in place, and each write fires EventChanged/EventCreated watches.
func (s *Session) SetOrCreate(path string, data []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	svc := s.svc
	svc.mu.Lock()
	n, ok := svc.nodes[path]
	if ok {
		n.data = append([]byte(nil), data...)
	} else {
		svc.nodes[path] = &znode{data: append([]byte(nil), data...)}
	}
	svc.mu.Unlock()
	if ok {
		svc.notify(path, EventChanged)
	} else {
		svc.notify(path, EventCreated)
	}
	return nil
}

// Get reads a node's data.
func (s *Session) Get(path string) ([]byte, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	svc := s.svc
	svc.mu.Lock()
	defer svc.mu.Unlock()
	n, ok := svc.nodes[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), nil
}

// Delete removes a node.
func (s *Session) Delete(path string) error {
	if err := s.check(); err != nil {
		return err
	}
	svc := s.svc
	svc.mu.Lock()
	if _, ok := svc.nodes[path]; !ok {
		svc.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	delete(svc.nodes, path)
	svc.mu.Unlock()
	svc.notify(path, EventDeleted)
	return nil
}

// Exists reports whether a path exists.
func (s *Session) Exists(path string) bool {
	svc := s.svc
	svc.mu.Lock()
	defer svc.mu.Unlock()
	_, ok := svc.nodes[path]
	return ok
}

// List returns sorted paths with the given prefix.
func (s *Session) List(prefix string) []string {
	svc := s.svc
	svc.mu.Lock()
	defer svc.mu.Unlock()
	var out []string
	for p := range svc.nodes {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Watch registers for events on path. The returned channel is buffered;
// slow consumers drop events (ZooKeeper watches are one-shot and lossy
// too — consumers must re-read state).
func (s *Session) Watch(path string) <-chan Event {
	ch := make(chan Event, 16)
	svc := s.svc
	svc.mu.Lock()
	svc.watches[path] = append(svc.watches[path], ch)
	svc.mu.Unlock()
	return ch
}

func (s *Service) notify(path string, t EventType) {
	s.mu.Lock()
	chans := append([]chan Event(nil), s.watches[path]...)
	s.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- Event{Type: t, Path: path}:
		default:
		}
	}
}

// Elect attempts to become leader for path by creating an ephemeral
// node carrying data. It reports whether this session won; losers can
// watch the path for EventDeleted and retry.
func (s *Session) Elect(path string, data []byte) (bool, error) {
	err := s.CreateEphemeral(path, data)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNodeExists) {
		return false, nil
	}
	return false, err
}

// lockState holds a lock's owner and FIFO waiter queue.
type lockState struct {
	owner   int64
	waiters []chan struct{}
}

// TryLock attempts to acquire the named lock without blocking. Locks
// are re-entrant per session (a session already holding it succeeds).
func (s *Session) TryLock(key string) (bool, error) {
	if err := s.check(); err != nil {
		return false, err
	}
	svc := s.svc
	svc.mu.Lock()
	defer svc.mu.Unlock()
	ls, ok := svc.locks[key]
	if !ok || ls.owner == 0 {
		svc.locks[key] = &lockState{owner: s.id}
		return true, nil
	}
	if ls.owner == s.id {
		return true, nil
	}
	return false, nil
}

// Lock blocks until the named lock is acquired (FIFO order among
// waiters). MVOCC acquires locks in sorted key order, which prevents
// deadlock (paper §3.7.1), so the service itself does not detect them.
func (s *Session) Lock(key string) error {
	for {
		if err := s.check(); err != nil {
			return err
		}
		svc := s.svc
		svc.mu.Lock()
		ls, ok := svc.locks[key]
		if !ok || ls.owner == 0 {
			if !ok {
				ls = &lockState{}
				svc.locks[key] = ls
			}
			ls.owner = s.id
			svc.mu.Unlock()
			return nil
		}
		if ls.owner == s.id {
			svc.mu.Unlock()
			return nil
		}
		wait := make(chan struct{})
		ls.waiters = append(ls.waiters, wait)
		svc.mu.Unlock()
		<-wait
	}
}

// Unlock releases the named lock if held by this session.
func (s *Session) Unlock(key string) {
	s.svc.unlock(s.id, key)
}

func (s *Service) unlock(session int64, key string) {
	s.mu.Lock()
	ls, ok := s.locks[key]
	if !ok || ls.owner != session {
		s.mu.Unlock()
		return
	}
	ls.owner = 0
	var next chan struct{}
	if len(ls.waiters) > 0 {
		next = ls.waiters[0]
		ls.waiters = ls.waiters[1:]
	} else {
		delete(s.locks, key)
	}
	s.mu.Unlock()
	if next != nil {
		close(next)
	}
}

// LockHeld reports whether any session currently holds the named lock.
// The migration cutover uses this to distinguish live prepared
// transactions (write locks still held through the commit phase) from
// orphaned prepare records whose transaction already unwound.
func (s *Service) LockHeld(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.locks[key]
	return ok && ls.owner != 0
}

// HeldLocks reports how many locks the session holds (for tests).
func (s *Service) HeldLocks(session int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ls := range s.locks {
		if ls.owner == session {
			n++
		}
	}
	return n
}
