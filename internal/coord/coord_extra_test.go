package coord

import (
	"sync"
	"testing"
	"time"
)

func TestMultipleWatchersAllNotified(t *testing.T) {
	svc := New()
	s := svc.NewSession()
	const watchers = 5
	chans := make([]<-chan Event, watchers)
	for i := range chans {
		chans[i] = svc.NewSession().Watch("/x")
	}
	s.Create("/x", []byte("v"))
	for i, ch := range chans {
		select {
		case ev := <-ch:
			if ev.Type != EventCreated {
				t.Errorf("watcher %d got %+v", i, ev)
			}
		case <-time.After(time.Second):
			t.Fatalf("watcher %d never notified", i)
		}
	}
}

func TestSlowWatcherDropsNotBlocks(t *testing.T) {
	svc := New()
	s := svc.NewSession()
	svc.NewSession().Watch("/hot") // never drained
	done := make(chan struct{})
	go func() {
		s.Create("/hot", nil)
		for i := 0; i < 100; i++ {
			s.Set("/hot", []byte{byte(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("undrained watcher blocked the writer")
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	svc := New()
	s := svc.NewSession()
	s.CreateEphemeral("/e", nil)
	s.Close()
	s.Close() // must be a no-op
}

func TestTryLockAfterOwnerDies(t *testing.T) {
	svc := New()
	a := svc.NewSession()
	b := svc.NewSession()
	a.Lock("k")
	if ok, _ := b.TryLock("k"); ok {
		t.Fatal("TryLock on held lock")
	}
	a.Close()
	if ok, _ := b.TryLock("k"); !ok {
		t.Error("lock not freed by owner death")
	}
}

func TestConcurrentElectionsDistinctPaths(t *testing.T) {
	svc := New()
	var wg sync.WaitGroup
	wins := make([]int, 4)
	var mu sync.Mutex
	for p := 0; p < 4; p++ {
		for c := 0; c < 5; c++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				s := svc.NewSession()
				won, err := s.Elect("/master-"+string(rune('a'+p)), nil)
				if err != nil {
					t.Errorf("Elect: %v", err)
					return
				}
				if won {
					mu.Lock()
					wins[p]++
					mu.Unlock()
				}
			}(p)
		}
	}
	wg.Wait()
	for p, n := range wins {
		if n != 1 {
			t.Errorf("path %d had %d winners", p, n)
		}
	}
}

func TestSetOrCreate(t *testing.T) {
	svc := New()
	sess := svc.NewSession()
	watcher := svc.NewSession()
	ch := watcher.Watch("/load/ts00")

	if err := sess.SetOrCreate("/load/ts00", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.Type != EventCreated {
		t.Fatalf("first write fired %v, want EventCreated", ev.Type)
	}
	if err := sess.SetOrCreate("/load/ts00", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ev := <-ch; ev.Type != EventChanged {
		t.Fatalf("second write fired %v, want EventChanged", ev.Type)
	}
	got, err := sess.Get("/load/ts00")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Nodes created this way are persistent: they survive the writer's
	// session (a server's last load report outlives the server).
	sess.Close()
	if !watcher.Exists("/load/ts00") {
		t.Fatal("SetOrCreate node vanished with its session")
	}
	if err := sess.SetOrCreate("/load/ts00", nil); err == nil {
		t.Fatal("closed session SetOrCreate should fail")
	}
}
