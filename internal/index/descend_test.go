package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/wal"
)

// buildTree inserts versions versions of n keys in shuffled order so
// the tree has real internal structure (n*versions >> fanout).
func buildTree(t *testing.T, n, versions int, seed int64) *Tree {
	t.Helper()
	tr := New()
	rng := rand.New(rand.NewSource(seed))
	type kv struct {
		key []byte
		ts  int64
	}
	var all []kv
	for i := 0; i < n; i++ {
		for v := 1; v <= versions; v++ {
			all = append(all, kv{key: []byte(fmt.Sprintf("key-%05d", i)), ts: int64(v * 10)})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for lsn, e := range all {
		tr.Put(Entry{Key: e.key, TS: e.ts, Ptr: wal.Ptr{Off: int64(lsn)}, LSN: uint64(lsn + 1)})
	}
	return tr
}

func TestDescendRangeIsReverseOfAscendRange(t *testing.T) {
	tr := buildTree(t, 300, 3, 1)
	bounds := [][2][]byte{
		{nil, nil},
		{[]byte("key-00050"), []byte("key-00100")},
		{[]byte("key-00000"), []byte("key-00001")},
		{[]byte("a"), []byte("z")},
		{[]byte("key-00299"), nil},
		{[]byte("zzz"), nil}, // empty range
	}
	for _, b := range bounds {
		var fwd, rev []Entry
		tr.AscendRange(b[0], b[1], func(e Entry) bool { fwd = append(fwd, e); return true })
		tr.DescendRange(b[0], b[1], func(e Entry) bool { rev = append(rev, e); return true })
		if len(fwd) != len(rev) {
			t.Fatalf("range [%q,%q): ascend %d entries, descend %d", b[0], b[1], len(fwd), len(rev))
		}
		for i := range fwd {
			r := rev[len(rev)-1-i]
			if !bytes.Equal(fwd[i].Key, r.Key) || fwd[i].TS != r.TS {
				t.Fatalf("range [%q,%q): mismatch at %d: %q@%d vs %q@%d",
					b[0], b[1], i, fwd[i].Key, fwd[i].TS, r.Key, r.TS)
			}
		}
	}
}

func TestDescendRangeEarlyStop(t *testing.T) {
	tr := buildTree(t, 200, 2, 2)
	var got []Entry
	tr.DescendRange(nil, nil, func(e Entry) bool {
		got = append(got, e)
		return len(got) < 5
	})
	if len(got) != 5 {
		t.Fatalf("early stop delivered %d entries, want 5", len(got))
	}
	if want := []byte("key-00199"); !bytes.Equal(got[0].Key, want) {
		t.Fatalf("first reverse entry %q, want %q", got[0].Key, want)
	}
	if got[0].TS != 20 || got[1].TS != 10 {
		t.Fatalf("versions not descending: ts %d, %d", got[0].TS, got[1].TS)
	}
}

func TestRangeLatestRevMatchesRangeLatest(t *testing.T) {
	tr := buildTree(t, 250, 3, 3)
	for _, ts := range []int64{5, 10, 15, 25, 30, 1 << 60} {
		var fwd, rev []Entry
		tr.RangeLatest(nil, nil, ts, func(e Entry) bool { fwd = append(fwd, e); return true })
		tr.RangeLatestRev(nil, nil, ts, func(e Entry) bool { rev = append(rev, e); return true })
		if len(fwd) != len(rev) {
			t.Fatalf("ts %d: forward %d keys, reverse %d", ts, len(fwd), len(rev))
		}
		for i := range fwd {
			r := rev[len(rev)-1-i]
			if !bytes.Equal(fwd[i].Key, r.Key) || fwd[i].TS != r.TS {
				t.Fatalf("ts %d: mismatch at %d: %q@%d vs %q@%d", ts, i, fwd[i].Key, fwd[i].TS, r.Key, r.TS)
			}
		}
	}
}

func TestRangeLatestRevBounded(t *testing.T) {
	tr := buildTree(t, 100, 2, 4)
	var keys [][]byte
	tr.RangeLatestRev([]byte("key-00010"), []byte("key-00020"), 1<<60, func(e Entry) bool {
		keys = append(keys, e.Key)
		if e.TS != 20 {
			t.Fatalf("key %q: visible ts %d, want 20", e.Key, e.TS)
		}
		return true
	})
	if len(keys) != 10 {
		t.Fatalf("bounded reverse scan saw %d keys, want 10", len(keys))
	}
	if !bytes.Equal(keys[0], []byte("key-00019")) || !bytes.Equal(keys[9], []byte("key-00010")) {
		t.Fatalf("bounded reverse scan order wrong: first %q last %q", keys[0], keys[9])
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i], keys[i-1]) >= 0 {
			t.Fatalf("keys not strictly descending at %d: %q then %q", i, keys[i-1], keys[i])
		}
	}
}
