package index

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/wal"
)

func TestSplitKeys(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(Entry{Key: []byte(fmt.Sprintf("k%06d", i)), TS: 1, Ptr: wal.Ptr{Seg: 1}, LSN: uint64(i + 1)})
	}

	for _, workers := range []int{2, 4, 8} {
		splits := tr.SplitKeys(nil, nil, workers)
		if len(splits) == 0 || len(splits) > workers-1 {
			t.Fatalf("workers=%d: got %d splits", workers, len(splits))
		}
		for i := 1; i < len(splits); i++ {
			if bytes.Compare(splits[i-1], splits[i]) >= 0 {
				t.Fatalf("splits not strictly increasing: %q >= %q", splits[i-1], splits[i])
			}
		}
		// Shards must tile the keyspace with roughly even population.
		bounds := append([][]byte{nil}, splits...)
		bounds = append(bounds, nil)
		total := 0
		for i := 0; i+1 < len(bounds); i++ {
			cnt := 0
			tr.AscendRange(bounds[i], bounds[i+1], func(Entry) bool { cnt++; return true })
			if cnt == 0 {
				t.Fatalf("workers=%d: shard %d empty", workers, i)
			}
			total += cnt
		}
		if total != n {
			t.Fatalf("workers=%d: shards cover %d entries, want %d", workers, total, n)
		}
	}
}

func TestSplitKeysRespectsRange(t *testing.T) {
	tr := New()
	for i := 0; i < 3000; i++ {
		tr.Put(Entry{Key: []byte(fmt.Sprintf("k%06d", i)), TS: 1, LSN: uint64(i + 1)})
	}
	start, end := []byte("k001000"), []byte("k002000")
	splits := tr.SplitKeys(start, end, 4)
	for _, s := range splits {
		if bytes.Compare(s, start) <= 0 || bytes.Compare(s, end) >= 0 {
			t.Fatalf("split %q outside (%q, %q)", s, start, end)
		}
	}
}

func TestSplitKeysSmallTree(t *testing.T) {
	tr := New()
	if got := tr.SplitKeys(nil, nil, 4); len(got) != 0 {
		t.Fatalf("empty tree: got %v", got)
	}
	for i := 0; i < 10; i++ {
		tr.Put(Entry{Key: []byte(fmt.Sprintf("k%d", i)), TS: 1, LSN: uint64(i + 1)})
	}
	// One leaf: no interior boundaries to sample — serial scan is fine.
	if got := tr.SplitKeys(nil, nil, 4); len(got) != 0 {
		t.Fatalf("single leaf: got %v", got)
	}
	if got := tr.SplitKeys(nil, nil, 1); got != nil {
		t.Fatalf("n=1: got %v", got)
	}
}
