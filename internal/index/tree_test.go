package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
	"repro/internal/wal"
)

func mkEntry(key string, ts int64, lsn uint64) Entry {
	return Entry{Key: []byte(key), TS: ts, Ptr: wal.Ptr{Seg: 1, Off: int64(lsn), Len: 10}, LSN: lsn}
}

func TestPutGet(t *testing.T) {
	tr := New()
	if !tr.Put(mkEntry("a", 1, 1)) {
		t.Fatal("Put returned false")
	}
	e, ok := tr.Get([]byte("a"), 1)
	if !ok || e.LSN != 1 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := tr.Get([]byte("a"), 2); ok {
		t.Error("Get of absent version succeeded")
	}
	if _, ok := tr.Get([]byte("b"), 1); ok {
		t.Error("Get of absent key succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestPutRedoRule(t *testing.T) {
	tr := New()
	tr.Put(mkEntry("k", 5, 10))
	// Lower LSN must not overwrite (recovery redo rule).
	if tr.Put(mkEntry("k", 5, 3)) {
		t.Error("lower-LSN Put overwrote entry")
	}
	e, _ := tr.Get([]byte("k"), 5)
	if e.LSN != 10 {
		t.Errorf("entry LSN = %d, want 10", e.LSN)
	}
	// Higher LSN replaces.
	if !tr.Put(mkEntry("k", 5, 20)) {
		t.Error("higher-LSN Put rejected")
	}
	e, _ = tr.Get([]byte("k"), 5)
	if e.LSN != 20 {
		t.Errorf("entry LSN = %d, want 20", e.LSN)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after in-place update", tr.Len())
	}
}

func TestLatestAndLatestAt(t *testing.T) {
	tr := New()
	for _, ts := range []int64{2, 8, 18} {
		tr.Put(mkEntry("a", ts, uint64(ts)))
	}
	tr.Put(mkEntry("b", 5, 100))

	e, ok := tr.Latest([]byte("a"))
	if !ok || e.TS != 18 {
		t.Errorf("Latest(a) = %+v, %v", e, ok)
	}
	cases := []struct {
		at   int64
		want int64
		ok   bool
	}{
		{1, 0, false}, {2, 2, true}, {3, 2, true}, {8, 8, true},
		{17, 8, true}, {18, 18, true}, {1000, 18, true},
	}
	for _, c := range cases {
		e, ok := tr.LatestAt([]byte("a"), c.at)
		if ok != c.ok || (ok && e.TS != c.want) {
			t.Errorf("LatestAt(a,%d) = (%d,%v), want (%d,%v)", c.at, e.TS, ok, c.want, c.ok)
		}
	}
	if _, ok := tr.LatestAt([]byte("zz"), 100); ok {
		t.Error("LatestAt of absent key succeeded")
	}
}

func TestVersionsClustered(t *testing.T) {
	tr := New()
	// Interleave many keys so versions span leaves.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%03d", i%20)
		tr.Put(mkEntry(key, int64(i), uint64(i+1)))
	}
	got := tr.Versions([]byte("k007"), nil)
	if len(got) != 25 {
		t.Fatalf("Versions(k007) returned %d entries, want 25", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS <= got[i-1].TS {
			t.Errorf("versions out of order: %d after %d", got[i].TS, got[i-1].TS)
		}
	}
}

func TestDeleteKey(t *testing.T) {
	tr := New()
	for ts := int64(1); ts <= 30; ts++ {
		tr.Put(mkEntry("dead", ts, uint64(ts)))
		tr.Put(mkEntry("live", ts, uint64(ts+100)))
	}
	if n := tr.DeleteKey([]byte("dead")); n != 30 {
		t.Errorf("DeleteKey removed %d, want 30", n)
	}
	if _, ok := tr.Latest([]byte("dead")); ok {
		t.Error("deleted key still visible")
	}
	if e, ok := tr.Latest([]byte("live")); !ok || e.TS != 30 {
		t.Errorf("unrelated key damaged: %+v %v", e, ok)
	}
	if tr.Len() != 30 {
		t.Errorf("Len = %d, want 30", tr.Len())
	}
	if n := tr.DeleteKey([]byte("dead")); n != 0 {
		t.Errorf("second DeleteKey removed %d", n)
	}
}

func TestDeleteVersion(t *testing.T) {
	tr := New()
	tr.Put(mkEntry("k", 1, 1))
	tr.Put(mkEntry("k", 2, 2))
	if !tr.DeleteVersion([]byte("k"), 1) {
		t.Fatal("DeleteVersion failed")
	}
	if tr.DeleteVersion([]byte("k"), 1) {
		t.Error("double delete succeeded")
	}
	if e, ok := tr.Latest([]byte("k")); !ok || e.TS != 2 {
		t.Errorf("Latest after delete = %+v %v", e, ok)
	}
}

func TestAscendOrdered(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	n := 2000
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Put(mkEntry(fmt.Sprintf("key-%05d", i/4), int64(i%4), uint64(i+1)))
	}
	var prev Entry
	first := true
	count := 0
	tr.Ascend(func(e Entry) bool {
		if !first && compare(prev.Key, prev.TS, e.Key, e.TS) >= 0 {
			t.Errorf("out of order: (%s,%d) then (%s,%d)", prev.Key, prev.TS, e.Key, e.TS)
		}
		prev, first = e, false
		count++
		return true
	})
	if count != n {
		t.Errorf("Ascend visited %d, want %d", count, n)
	}
	if d := tr.depth(); d < 2 {
		t.Errorf("tree depth %d; splits never happened?", d)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(mkEntry(fmt.Sprintf("%03d", i), 1, uint64(i+1)))
	}
	var keys []string
	tr.AscendRange([]byte("020"), []byte("030"), func(e Entry) bool {
		keys = append(keys, string(e.Key))
		return true
	})
	if len(keys) != 10 || keys[0] != "020" || keys[9] != "029" {
		t.Errorf("range [020,030) = %v", keys)
	}
	// Open-ended range.
	count := 0
	tr.AscendRange([]byte("095"), nil, func(e Entry) bool { count++; return true })
	if count != 5 {
		t.Errorf("open range returned %d", count)
	}
	// Early stop.
	count = 0
	tr.AscendRange(nil, nil, func(e Entry) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestRangeLatest(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		for ts := int64(1); ts <= 5; ts++ {
			tr.Put(mkEntry(key, ts*10, uint64(i*10)+uint64(ts)))
		}
	}
	// Snapshot at ts=35 sees version 30 of each key.
	var got []Entry
	tr.RangeLatest([]byte("k2"), []byte("k5"), 35, func(e Entry) bool {
		got = append(got, e)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("RangeLatest returned %d keys, want 3", len(got))
	}
	for _, e := range got {
		if e.TS != 30 {
			t.Errorf("key %s snapshot version = %d, want 30", e.Key, e.TS)
		}
	}
	// Snapshot before any version: no results.
	n := 0
	tr.RangeLatest(nil, nil, 5, func(Entry) bool { n++; return true })
	if n != 0 {
		t.Errorf("pre-history snapshot returned %d keys", n)
	}
}

func TestQuickTreeMatchesSortedMap(t *testing.T) {
	type op struct {
		Key byte
		TS  int8
	}
	f := func(ops []op) bool {
		tr := New()
		model := map[string]Entry{}
		lsn := uint64(0)
		for _, o := range ops {
			lsn++
			key := fmt.Sprintf("k%02d", o.Key%32)
			ts := int64(o.TS%8) + 8
			e := mkEntry(key, ts, lsn)
			tr.Put(e)
			model[fmt.Sprintf("%s@%d", key, ts)] = e
		}
		if tr.Len() != len(model) {
			return false
		}
		// Every model entry must be found with the latest LSN.
		for _, e := range model {
			got, ok := tr.Get(e.Key, e.TS)
			if !ok || got.LSN != e.LSN {
				return false
			}
		}
		// Ascend must be sorted and complete.
		var all []Entry
		tr.Ascend(func(e Entry) bool { all = append(all, e); return true })
		if len(all) != len(model) {
			return false
		}
		return sort.SliceIsSorted(all, func(i, j int) bool {
			return compare(all[i].Key, all[i].TS, all[j].Key, all[j].TS) < 0
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLatestAt(t *testing.T) {
	f := func(tss []uint8, q uint8) bool {
		tr := New()
		seen := map[int64]bool{}
		for i, u := range tss {
			ts := int64(u % 64)
			seen[ts] = true
			tr.Put(mkEntry("k", ts, uint64(i+1)))
		}
		want := int64(-1)
		for ts := range seen {
			if ts <= int64(q%64) && ts > want {
				want = ts
			}
		}
		e, ok := tr.LatestAt([]byte("k"), int64(q%64))
		if want < 0 {
			return !ok
		}
		return ok && e.TS == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(mkEntry(fmt.Sprintf("k%04d", i), 1, uint64(i+1)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("k%04d", rng.Intn(1000)))
				if _, ok := tr.Latest(key); !ok {
					t.Errorf("key %s vanished", key)
					return
				}
			}
		}(r)
	}
	for i := 1000; i < 3000; i++ {
		tr.Put(mkEntry(fmt.Sprintf("k%04d", i), 1, uint64(i+1)))
	}
	close(stop)
	wg.Wait()
	if tr.Len() != 3000 {
		t.Errorf("Len = %d, want 3000", tr.Len())
	}
}

func TestMemBytes(t *testing.T) {
	tr := New()
	if tr.MemBytes() != 0 {
		t.Errorf("empty tree mem = %d", tr.MemBytes())
	}
	tr.Put(mkEntry("12345678", 1, 1)) // 8B key + 32B fixed
	if got := tr.MemBytes(); got != 40 {
		t.Errorf("MemBytes = %d, want 40 (paper's ~24B + key)", got)
	}
	tr.DeleteKey([]byte("12345678"))
	if tr.MemBytes() != 0 {
		t.Errorf("mem after delete = %d", tr.MemBytes())
	}
}

func TestFlushLoadRoundTrip(t *testing.T) {
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	tr := New()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		tr.Put(mkEntry(fmt.Sprintf("key-%05d", rng.Intn(800)), int64(i), uint64(i+1)))
	}
	n, err := tr.Flush(fs, "idx/cg0")
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n != tr.Len() {
		t.Errorf("Flush wrote %d, tree has %d", n, tr.Len())
	}

	got, err := Load(fs, "idx/cg0")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded %d entries, want %d", got.Len(), tr.Len())
	}
	var want, have []Entry
	tr.Ascend(func(e Entry) bool { want = append(want, e); return true })
	got.Ascend(func(e Entry) bool { have = append(have, e); return true })
	for i := range want {
		if !bytes.Equal(want[i].Key, have[i].Key) || want[i].TS != have[i].TS ||
			want[i].Ptr != have[i].Ptr || want[i].LSN != have[i].LSN {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, want[i], have[i])
		}
	}
	// The loaded tree must be fully functional.
	e, ok := got.Latest(want[0].Key)
	if !ok {
		t.Error("Latest on loaded tree failed")
	}
	_ = e
	got.Put(mkEntry("zzz-new", 1, 99999))
	if got.Len() != tr.Len()+1 {
		t.Error("Put on loaded tree failed")
	}
}

func TestFlushOverwrites(t *testing.T) {
	fs, _ := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	tr := New()
	tr.Put(mkEntry("a", 1, 1))
	if _, err := tr.Flush(fs, "idx/f"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr.Put(mkEntry("b", 2, 2))
	if _, err := tr.Flush(fs, "idx/f"); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
	got, err := Load(fs, "idx/f")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != 2 {
		t.Errorf("loaded %d entries, want 2", got.Len())
	}
}

func TestLoadCorrupt(t *testing.T) {
	fs, _ := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	w, _ := fs.Create("idx/bad")
	w.Write([]byte("this is not an index file at all"))
	if _, err := Load(fs, "idx/bad"); err == nil {
		t.Error("Load of garbage succeeded")
	}
}

func TestBulkEmpty(t *testing.T) {
	tr := Bulk(nil)
	if tr.Len() != 0 {
		t.Errorf("Bulk(nil) Len = %d", tr.Len())
	}
	if _, ok := tr.Latest([]byte("x")); ok {
		t.Error("empty tree found a key")
	}
	tr.Put(mkEntry("x", 1, 1))
	if tr.Len() != 1 {
		t.Error("Put on empty bulk tree failed")
	}
}

func TestBulkLarge(t *testing.T) {
	var entries []Entry
	for i := 0; i < 10000; i++ {
		entries = append(entries, mkEntry(fmt.Sprintf("k%06d", i/3), int64(i%3), uint64(i+1)))
	}
	tr := Bulk(entries)
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, probe := range []int{0, 1, 4999, 9999} {
		e := entries[probe]
		got, ok := tr.Get(e.Key, e.TS)
		if !ok || got.LSN != e.LSN {
			t.Errorf("probe %d: Get(%s,%d) = %+v %v", probe, e.Key, e.TS, got, ok)
		}
	}
	// Range over loaded tree crosses many leaves.
	count := 0
	tr.AscendRange([]byte("k000100"), []byte("k000200"), func(Entry) bool { count++; return true })
	if count != 300 {
		t.Errorf("range count = %d, want 300", count)
	}
}
