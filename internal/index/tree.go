// Package index implements LogBase's in-memory multiversion index
// (paper §3.5): a B-tree keyed by the composite (primary key, timestamp)
// whose entries point at record locations in the log.
//
// Historical versions of a key are adjacent (ordered by ascending
// timestamp), so "current version" and "latest version at time t"
// lookups are a prefix descent plus a bounded walk, and the multiversion
// concurrency control layer can read record versions straight from the
// index during validation.
//
// The node layout follows the B-link tree the paper cites (right-sibling
// links and high keys on every node, enabling range scans that walk the
// leaf chain). Latching is deliberately coarse — one RWMutex for the
// tree — which preserves the properties the paper exercises (ordered
// range search, concurrent readers, version adjacency) while keeping
// the structure easy to verify; writers are serialised upstream by the
// log append mutex in any case. Deletions are lazy (no rebalancing), as
// compaction rebuilds indexes wholesale.
package index

import (
	"bytes"
	"sync"

	"repro/internal/wal"
)

// Entry is one index entry: composite key (Key, TS) mapping to the
// record's location and the LSN that produced it. The LSN drives the
// recovery redo rule (paper §3.8): an index entry is only overwritten by
// a log record with a greater LSN.
type Entry struct {
	Key []byte
	TS  int64
	Ptr wal.Ptr
	LSN uint64
}

// compare orders composite keys: primary key lexicographic, then
// timestamp ascending.
func compare(aKey []byte, aTS int64, bKey []byte, bTS int64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aTS < bTS:
		return -1
	case aTS > bTS:
		return 1
	default:
		return 0
	}
}

const fanout = 64 // max entries per leaf / children per internal node

type node struct {
	leaf bool

	// Leaf: entries, sorted by composite key.
	entries []Entry

	// Internal: keys[i] is the high key of children[i]; len(children) ==
	// len(keys). A descent picks the first child whose key bounds the
	// target.
	keys     []Entry // only Key+TS used
	children []*node

	// right links nodes at the same level (B-link layout); the leaf
	// chain drives range scans.
	right *node
	// high is the node's high key (inclusive upper bound). Nil for the
	// rightmost node of a level.
	high *Entry
}

// Tree is a multiversion index for one column group of one tablet.
// Safe for concurrent use.
type Tree struct {
	mu   sync.RWMutex
	root *node
	n    int
	mem  int64
}

// New returns an empty index.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// MemBytes estimates resident memory: the paper budgets ~24 bytes per
// entry (8B key + 8B ts + 8B ptr) plus key material.
func (t *Tree) MemBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem
}

func entryMem(e Entry) int64 { return int64(len(e.Key)) + 8 + 16 + 8 }

// findLeaf descends to the leaf that should contain (key, ts),
// following right links where the high key is exceeded.
func (t *Tree) findLeaf(key []byte, ts int64) *node {
	n := t.root
	for !n.leaf {
		i := 0
		for i < len(n.keys)-1 && compare(key, ts, n.keys[i].Key, n.keys[i].TS) > 0 {
			i++
		}
		n = n.children[i]
		for n.high != nil && compare(key, ts, n.high.Key, n.high.TS) > 0 && n.right != nil {
			n = n.right
		}
	}
	return n
}

// search returns the index of the first entry >= (key, ts) in the leaf.
func searchLeaf(n *node, key []byte, ts int64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compare(n.entries[mid].Key, n.entries[mid].TS, key, ts) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Put inserts or overwrites the entry for (e.Key, e.TS). An existing
// entry is only replaced when e.LSN is greater or equal (the redo rule).
// It reports whether the tree changed.
func (t *Tree) Put(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(e.Key, e.TS)
	i := searchLeaf(leaf, e.Key, e.TS)
	if i < len(leaf.entries) && compare(leaf.entries[i].Key, leaf.entries[i].TS, e.Key, e.TS) == 0 {
		if e.LSN < leaf.entries[i].LSN {
			return false
		}
		t.mem += entryMem(e) - entryMem(leaf.entries[i])
		leaf.entries[i] = e
		return true
	}
	leaf.entries = append(leaf.entries, Entry{})
	copy(leaf.entries[i+1:], leaf.entries[i:])
	leaf.entries[i] = e
	t.n++
	t.mem += entryMem(e)
	if len(leaf.entries) > fanout {
		t.splitLeaf(leaf)
	}
	return true
}

// splitLeaf splits an overfull leaf and propagates upward.
func (t *Tree) splitLeaf(leaf *node) {
	mid := len(leaf.entries) / 2
	rightEntries := make([]Entry, len(leaf.entries)-mid)
	copy(rightEntries, leaf.entries[mid:])
	r := &node{leaf: true, entries: rightEntries, right: leaf.right, high: leaf.high}
	leaf.entries = leaf.entries[:mid]
	hk := leaf.entries[mid-1]
	leaf.high = &Entry{Key: hk.Key, TS: hk.TS}
	leaf.right = r
	t.insertParent(leaf, r)
}

// insertParent threads a freshly split (left,right) pair into the
// parent, splitting internal nodes as needed. With the coarse latch we
// can simply re-descend from the root to find each parent.
func (t *Tree) insertParent(left, right *node) {
	if t.root == left {
		t.root = &node{
			keys:     []Entry{*left.high, {}},
			children: []*node{left, right},
		}
		// The rightmost child is unbounded; keys[last] is a sentinel
		// never compared (descend stops at len(keys)-1).
		return
	}
	parent := t.findParent(t.root, left)
	// Replace left's slot high key and splice right in after it.
	for i, c := range parent.children {
		if c == left {
			parent.keys = append(parent.keys, Entry{})
			parent.children = append(parent.children, nil)
			copy(parent.keys[i+1:], parent.keys[i:])
			copy(parent.children[i+1:], parent.children[i:])
			parent.keys[i] = *left.high
			parent.children[i+1] = right
			// right inherits left's previous upper bound slot (already
			// shifted into position i+1).
			break
		}
	}
	if len(parent.children) > fanout {
		t.splitInternal(parent)
	}
}

func (t *Tree) splitInternal(n *node) {
	mid := len(n.children) / 2
	rKeys := make([]Entry, len(n.keys)-mid)
	copy(rKeys, n.keys[mid:])
	rChildren := make([]*node, len(n.children)-mid)
	copy(rChildren, n.children[mid:])
	r := &node{keys: rKeys, children: rChildren, right: n.right, high: n.high}
	sep := n.keys[mid-1]
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	n.high = &Entry{Key: sep.Key, TS: sep.TS}
	n.right = r
	t.insertParent(n, r)
}

// findParent locates the parent of target by structural descent.
func (t *Tree) findParent(from, target *node) *node {
	if from.leaf {
		return nil
	}
	for _, c := range from.children {
		if c == target {
			return from
		}
	}
	// Descend toward target's high key (or +inf for rightmost chains).
	var n *node
	if target.high != nil {
		i := 0
		for i < len(from.keys)-1 && compare(target.high.Key, target.high.TS, from.keys[i].Key, from.keys[i].TS) > 0 {
			i++
		}
		n = from.children[i]
	} else {
		n = from.children[len(from.children)-1]
	}
	for n != nil {
		if p := t.findParent(n, target); p != nil {
			return p
		}
		n = n.right
	}
	return nil
}

// Get returns the entry with exactly (key, ts).
func (t *Tree) Get(key []byte, ts int64) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key, ts)
	i := searchLeaf(leaf, key, ts)
	if i < len(leaf.entries) && compare(leaf.entries[i].Key, leaf.entries[i].TS, key, ts) == 0 {
		return leaf.entries[i], true
	}
	return Entry{}, false
}

// Latest returns the entry with the greatest timestamp for key.
func (t *Tree) Latest(key []byte) (Entry, bool) {
	return t.LatestAt(key, int64(^uint64(0)>>1))
}

// LatestAt returns the entry for key with the greatest timestamp <= ts
// — the read path for snapshot reads and historical queries (Get with
// an attached timestamp, paper §3.6.2).
func (t *Tree) LatestAt(key []byte, ts int64) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key, ts)
	i := searchLeaf(leaf, key, ts)
	// The candidate is the entry just before the first entry > (key,ts).
	if i < len(leaf.entries) && compare(leaf.entries[i].Key, leaf.entries[i].TS, key, ts) == 0 {
		return leaf.entries[i], true
	}
	prev := func(n *node, i int) (Entry, bool) {
		if i > 0 {
			e := n.entries[i-1]
			if bytes.Equal(e.Key, key) {
				return e, true
			}
		}
		return Entry{}, false
	}
	if e, ok := prev(leaf, i); ok {
		return e, ok
	}
	// (key, ts) may sort to the start of a leaf whose left sibling holds
	// the versions; since leaves have no left links, re-descend with
	// ts = -inf and walk the chain.
	first := t.findLeaf(key, -1<<62)
	j := searchLeaf(first, key, -1<<62)
	var best Entry
	found := false
	for n := first; n != nil; n = n.right {
		for ; j < len(n.entries); j++ {
			e := n.entries[j]
			if !bytes.Equal(e.Key, key) {
				if found {
					return best, true
				}
				if bytes.Compare(e.Key, key) > 0 {
					return Entry{}, false
				}
				continue
			}
			if e.TS > ts {
				if found {
					return best, true
				}
				return Entry{}, false
			}
			best, found = e, true
		}
		j = 0
	}
	return best, found
}

// NthFromNewest returns the entry n positions below key's newest
// version (n=0 is the newest), walking the version chain with a small
// ring instead of materializing the whole history — the write path's
// retention-boundary probe.
func (t *Tree) NthFromNewest(key []byte, n int) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ring := make([]Entry, n+1)
	count := 0
	leaf := t.findLeaf(key, -1<<62)
	i := searchLeaf(leaf, key, -1<<62)
	for nd := leaf; nd != nil; nd = nd.right {
		for ; i < len(nd.entries); i++ {
			e := nd.entries[i]
			c := bytes.Compare(e.Key, key)
			if c > 0 {
				nd = nil
				break
			}
			if c == 0 {
				ring[count%(n+1)] = e
				count++
			}
		}
		if nd == nil {
			break
		}
		i = 0
	}
	if count <= n {
		return Entry{}, false
	}
	// Versions arrive ascending; the ring's oldest slot is the entry n
	// below the newest.
	return ring[count%(n+1)], true
}

// Versions appends all entries for key (ascending timestamp) to dst.
func (t *Tree) Versions(key []byte, dst []Entry) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key, -1<<62)
	i := searchLeaf(leaf, key, -1<<62)
	for n := leaf; n != nil; n = n.right {
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			c := bytes.Compare(e.Key, key)
			if c > 0 {
				return dst
			}
			if c == 0 {
				dst = append(dst, e)
			}
		}
		i = 0
	}
	return dst
}

// DeleteKey removes every version of key, returning how many entries
// were removed (paper §3.6.3 step one of Delete).
func (t *Tree) DeleteKey(key []byte) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for {
		leaf := t.findLeaf(key, -1<<62)
		i := searchLeaf(leaf, key, -1<<62)
		found := false
		for n := leaf; n != nil && !found; n = n.right {
			for ; i < len(n.entries); i++ {
				c := bytes.Compare(n.entries[i].Key, key)
				if c > 0 {
					return removed
				}
				if c == 0 {
					t.mem -= entryMem(n.entries[i])
					n.entries = append(n.entries[:i], n.entries[i+1:]...)
					t.n--
					removed++
					found = true // restart: slices shifted
					break
				}
			}
			i = 0
		}
		if !found {
			return removed
		}
	}
}

// DeleteKeyBelow removes the versions of key whose LSN is strictly
// below lsn, returning how many entries were removed. Recovery and
// replay use it to apply invalidation records order-independently: a
// tombstone only kills versions written before it, so replaying a
// compaction-relocated (old-LSN) tombstone after a newer write cannot
// destroy the newer data.
func (t *Tree) DeleteKeyBelow(key []byte, lsn uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for {
		leaf := t.findLeaf(key, -1<<62)
		i := searchLeaf(leaf, key, -1<<62)
		found := false
		for n := leaf; n != nil && !found; n = n.right {
			for ; i < len(n.entries); i++ {
				c := bytes.Compare(n.entries[i].Key, key)
				if c > 0 {
					return removed
				}
				if c == 0 && n.entries[i].LSN < lsn {
					t.mem -= entryMem(n.entries[i])
					n.entries = append(n.entries[:i], n.entries[i+1:]...)
					t.n--
					removed++
					found = true // restart: slices shifted
					break
				}
			}
			i = 0
		}
		if !found {
			return removed
		}
	}
}

// Repoint atomically redirects the entry for (key, ts) from old to new,
// provided the entry still exists with exactly that LSN and location.
// Incremental compaction uses it to install rewritten record locations:
// an entry deleted or superseded since the rewrite began simply fails
// the match and keeps the tree authoritative.
func (t *Tree) Repoint(key []byte, ts int64, lsn uint64, old, new wal.Ptr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key, ts)
	i := searchLeaf(leaf, key, ts)
	if i < len(leaf.entries) && compare(leaf.entries[i].Key, leaf.entries[i].TS, key, ts) == 0 {
		e := &leaf.entries[i]
		if e.LSN == lsn && e.Ptr == old {
			e.Ptr = new
			return true
		}
	}
	return false
}

// DeleteVersion removes the exact (key, ts) entry.
func (t *Tree) DeleteVersion(key []byte, ts int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key, ts)
	i := searchLeaf(leaf, key, ts)
	if i < len(leaf.entries) && compare(leaf.entries[i].Key, leaf.entries[i].TS, key, ts) == 0 {
		t.mem -= entryMem(leaf.entries[i])
		leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
		t.n--
		return true
	}
	return false
}

// Ascend calls fn for every entry in composite-key order, stopping if fn
// returns false. It runs under the read latch: fn must not call back
// into the tree.
func (t *Tree) Ascend(fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.right {
		for _, e := range n.entries {
			if !fn(e) {
				return
			}
		}
	}
}

// AscendRange calls fn for entries with start <= Key < end (all
// versions), in order. A nil end means "to the end of the keyspace".
func (t *Tree) AscendRange(start, end []byte, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(start, -1<<62)
	i := searchLeaf(leaf, start, -1<<62)
	for n := leaf; n != nil; n = n.right {
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if end != nil && bytes.Compare(e.Key, end) >= 0 {
				return
			}
			if !fn(e) {
				return
			}
		}
		i = 0
	}
}

// DescendRange calls fn for entries with start <= Key < end (all
// versions), in REVERSE composite-key order (descending key, and
// descending timestamp within a key). A nil end means "from the end of
// the keyspace"; empty start means "down to the first key". Because
// leaves only link rightward, the walk is a parent-guided descent:
// children are visited in reverse under the read latch, pruning
// subtrees wholly outside the range — the descending-traversal
// primitive behind reverse scans.
func (t *Tree) DescendRange(start, end []byte, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.descendNode(t.root, start, end, fn)
}

// descendNode visits n's entries in reverse order, reporting whether
// the caller should keep descending (false = fn stopped the walk or the
// walk went below start).
func (t *Tree) descendNode(n *node, start, end []byte, fn func(Entry) bool) bool {
	if n.leaf {
		for i := len(n.entries) - 1; i >= 0; i-- {
			e := n.entries[i]
			if end != nil && bytes.Compare(e.Key, end) >= 0 {
				continue
			}
			if len(start) > 0 && bytes.Compare(e.Key, start) < 0 {
				return false
			}
			if !fn(e) {
				return false
			}
		}
		return true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		// keys[i-1] is child i-1's inclusive high key, so child i holds
		// only keys greater than it: skip the child when that low bound
		// already reaches end, stop entirely once it falls below start
		// (children to the left are smaller still).
		if i > 0 && end != nil && bytes.Compare(n.keys[i-1].Key, end) >= 0 {
			continue
		}
		if !t.descendNode(n.children[i], start, end, fn) {
			return false
		}
		if i > 0 && len(start) > 0 && bytes.Compare(n.keys[i-1].Key, start) < 0 {
			return false
		}
	}
	return true
}

// RangeLatestRev iterates the range [start, end) in DESCENDING key
// order and reports, per key, the latest version visible at snapshot
// ts — the reverse-scan read path. Within one key, versions arrive in
// descending timestamp order, so the first version with TS <= ts is the
// visible one.
func (t *Tree) RangeLatestRev(start, end []byte, ts int64, fn func(Entry) bool) {
	var lastKey []byte
	haveKey, emitted := false, false
	t.DescendRange(start, end, func(e Entry) bool {
		if !haveKey || !bytes.Equal(e.Key, lastKey) {
			lastKey, haveKey, emitted = e.Key, true, false
		}
		if emitted || e.TS > ts {
			return true
		}
		emitted = true
		return fn(e)
	})
}

// SplitKeys returns up to n-1 keys that partition [start, end) into
// roughly equal-population shards, by sampling the first key of each
// leaf intersecting the range (leaves hold bounded entry counts, so
// leaf boundaries are an even-population sample). The returned keys are
// strictly increasing and strictly inside (start, end); fewer than n-1
// keys (possibly none) come back when the range spans few leaves.
func (t *Tree) SplitKeys(start, end []byte, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var bounds [][]byte
	leaf := t.findLeaf(start, -1<<62)
	// Sample from the second intersecting leaf on: the first leaf's first
	// key may sit at (or before) start, which would make an empty shard.
	for nd := leaf.right; nd != nil; nd = nd.right {
		if len(nd.entries) == 0 {
			continue
		}
		first := nd.entries[0].Key
		if end != nil && bytes.Compare(first, end) >= 0 {
			break
		}
		if bytes.Compare(first, start) <= 0 {
			continue
		}
		// Versions of one key can span a leaf boundary; skip duplicates so
		// every shard is non-empty.
		if len(bounds) > 0 && bytes.Equal(bounds[len(bounds)-1], first) {
			continue
		}
		bounds = append(bounds, append([]byte(nil), first...))
	}
	if len(bounds) <= n-1 {
		return bounds
	}
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		k := bounds[i*len(bounds)/n]
		if len(out) > 0 && bytes.Equal(out[len(out)-1], k) {
			continue
		}
		out = append(out, k)
	}
	return out
}

// RangeLatest iterates the range [start, end) and reports, per key, the
// latest version visible at snapshot ts. This is the range-scan read
// path (paper §3.6.4).
func (t *Tree) RangeLatest(start, end []byte, ts int64, fn func(Entry) bool) {
	var cur Entry
	have := false
	t.AscendRange(start, end, func(e Entry) bool {
		if have && !bytes.Equal(cur.Key, e.Key) {
			if !fn(cur) {
				have = false
				return false
			}
			have = false
		}
		if e.TS <= ts {
			cur = e
			have = true
		}
		return true
	})
	if have {
		fn(cur)
	}
}

// depth returns the tree height (for tests).
func (t *Tree) depth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
