package index

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
)

func TestFlushLoadEmpty(t *testing.T) {
	fs, _ := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 4096})
	tr := New()
	n, err := tr.Flush(fs, "idx/empty")
	if err != nil || n != 0 {
		t.Fatalf("Flush empty: n=%d err=%v", n, err)
	}
	got, err := Load(fs, "idx/empty")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("loaded %d entries from empty flush", got.Len())
	}
	got.Put(mkEntry("x", 1, 1))
	if got.Len() != 1 {
		t.Error("loaded-empty tree not writable")
	}
}

func TestDeleteKeySpanningLeaves(t *testing.T) {
	tr := New()
	// One hot key with enough versions to span several leaves, plus
	// neighbours on both sides.
	tr.Put(mkEntry("aaa", 1, 1))
	for ts := int64(1); ts <= 500; ts++ {
		tr.Put(mkEntry("hot", ts, uint64(ts+10)))
	}
	tr.Put(mkEntry("zzz", 1, 2))
	if n := tr.DeleteKey([]byte("hot")); n != 500 {
		t.Fatalf("DeleteKey removed %d, want 500", n)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	for _, k := range []string{"aaa", "zzz"} {
		if _, ok := tr.Latest([]byte(k)); !ok {
			t.Errorf("neighbour %s lost", k)
		}
	}
}

func TestQuickRangeLatestMatchesModel(t *testing.T) {
	f := func(puts []uint16, snapshot uint8) bool {
		tr := New()
		model := map[string]int64{} // key -> latest ts <= snapshot
		snap := int64(snapshot%32) + 1
		for i, p := range puts {
			key := fmt.Sprintf("k%02d", p%24)
			ts := int64(p/24%32) + 1
			tr.Put(mkEntry(key, ts, uint64(i+1)))
			if ts <= snap && ts > model[key] {
				model[key] = ts
			}
		}
		got := map[string]int64{}
		tr.RangeLatest(nil, nil, snap, func(e Entry) bool {
			got[string(e.Key)] = e.TS
			return true
		})
		visible := 0
		for k, ts := range model {
			if ts == 0 {
				continue
			}
			visible++
			if got[k] != ts {
				return false
			}
		}
		return len(got) == visible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAscendRangeVersionBoundaries(t *testing.T) {
	tr := New()
	for _, k := range []string{"b", "c", "d"} {
		for ts := int64(1); ts <= 3; ts++ {
			tr.Put(mkEntry(k, ts, uint64(ts)))
		}
	}
	// Range [c, d) must include all of c's versions and none of d's.
	var got []string
	tr.AscendRange([]byte("c"), []byte("d"), func(e Entry) bool {
		got = append(got, fmt.Sprintf("%s@%d", e.Key, e.TS))
		return true
	})
	want := []string{"c@1", "c@2", "c@3"}
	if len(got) != 3 {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range[%d] = %s", i, got[i])
		}
	}
}

func TestPutAfterBulk(t *testing.T) {
	var entries []Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, mkEntry(fmt.Sprintf("k%04d", i), 1, uint64(i+1)))
	}
	tr := Bulk(entries)
	// Inserts into a bulk-loaded tree must split correctly.
	for i := 0; i < 500; i++ {
		tr.Put(mkEntry(fmt.Sprintf("k%04d", i), 2, uint64(2000+i)))
	}
	if tr.Len() != 1500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	e, ok := tr.Latest([]byte("k0250"))
	if !ok || e.TS != 2 {
		t.Errorf("Latest(k0250) = %+v %v", e, ok)
	}
	// Order intact.
	var prev Entry
	first := true
	tr.Ascend(func(e Entry) bool {
		if !first && compare(prev.Key, prev.TS, e.Key, e.TS) >= 0 {
			t.Fatal("order broken after post-bulk inserts")
		}
		prev, first = e, false
		return true
	})
}
