package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/dfs"
	"repro/internal/wal"
)

// Index files persist a tree snapshot to the DFS so recovery can reload
// indexes instead of scanning the whole log (paper §3.8). Format:
//
//	magic "LBIDX\x01" | u32 count | entries... | u32 crc(entries)
//	entry: u16 keyLen | key | i64 ts | u32 seg | i64 off | u32 len | u64 lsn
var idxMagic = []byte{'L', 'B', 'I', 'D', 'X', 1}

// ErrBadIndexFile reports a malformed or corrupt persisted index.
var ErrBadIndexFile = errors.New("index: bad index file")

// Flush writes a point-in-time snapshot of the tree to path (replacing
// any existing file) and returns the number of entries written.
func (t *Tree) Flush(fs *dfs.DFS, path string) (int, error) {
	var body bytes.Buffer
	count := 0
	t.Ascend(func(e Entry) bool {
		var rec []byte
		rec = binary.LittleEndian.AppendUint16(rec, uint16(len(e.Key)))
		rec = append(rec, e.Key...)
		rec = binary.LittleEndian.AppendUint64(rec, uint64(e.TS))
		rec = binary.LittleEndian.AppendUint32(rec, e.Ptr.Seg)
		rec = binary.LittleEndian.AppendUint64(rec, uint64(e.Ptr.Off))
		rec = binary.LittleEndian.AppendUint32(rec, e.Ptr.Len)
		rec = binary.LittleEndian.AppendUint64(rec, e.LSN)
		body.Write(rec)
		count++
		return true
	})

	tmp := path + ".tmp"
	if fs.Exists(tmp) {
		if err := fs.Delete(tmp); err != nil {
			return 0, err
		}
	}
	w, err := fs.Create(tmp)
	if err != nil {
		return 0, err
	}
	var hdr []byte
	hdr = append(hdr, idxMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(count))
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return 0, err
	}
	var crc []byte
	crc = binary.LittleEndian.AppendUint32(crc, crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(crc); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	if fs.Exists(path) {
		if err := fs.Delete(path); err != nil {
			return 0, err
		}
	}
	if err := fs.Rename(tmp, path); err != nil {
		return 0, err
	}
	return count, nil
}

// Load reads a persisted index file and bulk-builds a tree from it.
func Load(fs *dfs.DFS, path string) (*Tree, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	size, err := r.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	if len(buf) < len(idxMagic)+8 || !bytes.Equal(buf[:len(idxMagic)], idxMagic) {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrBadIndexFile, path)
	}
	count := binary.LittleEndian.Uint32(buf[len(idxMagic):])
	body := buf[len(idxMagic)+4 : len(buf)-4]
	wantCRC := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: %s: crc mismatch", ErrBadIndexFile, path)
	}

	entries := make([]Entry, 0, count)
	off := 0
	for i := uint32(0); i < count; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("%w: %s: truncated", ErrBadIndexFile, path)
		}
		kl := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+kl+32 > len(body) {
			return nil, fmt.Errorf("%w: %s: truncated entry", ErrBadIndexFile, path)
		}
		key := make([]byte, kl)
		copy(key, body[off:])
		off += kl
		ts := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		seg := binary.LittleEndian.Uint32(body[off:])
		off += 4
		poff := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		plen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		lsn := binary.LittleEndian.Uint64(body[off:])
		off += 8
		entries = append(entries, Entry{Key: key, TS: ts, Ptr: wal.Ptr{Seg: seg, Off: poff, Len: plen}, LSN: lsn})
	}
	return Bulk(entries), nil
}

// Bulk builds a tree from entries already sorted by composite key
// (Flush writes them in order, so Load can rebuild bottom-up).
func Bulk(entries []Entry) *Tree {
	t := New()
	if len(entries) == 0 {
		return t
	}
	// Build leaves at ~2/3 fill.
	per := fanout * 2 / 3
	var leaves []*node
	var mem int64
	for i := 0; i < len(entries); i += per {
		j := i + per
		if j > len(entries) {
			j = len(entries)
		}
		chunk := make([]Entry, j-i)
		copy(chunk, entries[i:j])
		leaves = append(leaves, &node{leaf: true, entries: chunk})
		for _, e := range chunk {
			mem += entryMem(e)
		}
	}
	level := linkLevel(leaves)
	for len(level) > 1 {
		var parents []*node
		for i := 0; i < len(level); i += per {
			j := i + per
			if j > len(level) {
				j = len(level)
			}
			p := &node{}
			for _, c := range level[i:j] {
				var hk Entry
				if c.high != nil {
					hk = *c.high
				}
				p.keys = append(p.keys, hk)
				p.children = append(p.children, c)
			}
			parents = append(parents, p)
		}
		level = linkLevel(parents)
	}
	t.root = level[0]
	t.n = len(entries)
	t.mem = mem
	return t
}

// linkLevel sets right links and high keys across one level.
func linkLevel(nodes []*node) []*node {
	for i, n := range nodes {
		if i+1 < len(nodes) {
			n.right = nodes[i+1]
			var hk Entry
			if n.leaf {
				last := n.entries[len(n.entries)-1]
				hk = Entry{Key: last.Key, TS: last.TS}
			} else {
				hk = n.keys[len(n.keys)-1]
			}
			n.high = &hk
		}
	}
	return nodes
}
