package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-scale histogram: fixed sub-bucketed power-of-two buckets over
// non-negative int64 values (latencies are recorded in nanoseconds,
// sizes as plain counts). Values below 8 get exact buckets; above that
// each power-of-two octave is split into 4 sub-buckets, so a recorded
// value lands in a bucket whose width is at most 25% of its magnitude
// — quantile estimates are within that bound of the true sample
// quantile (histogram_test.go checks this against a sorted-sample
// oracle). Recording is four atomic operations and allocation-free,
// cheap enough for per-operation hot paths.

// histBuckets is the fixed bucket count: 8 exact small-value buckets
// plus 4 sub-buckets for each octave 2^3..2^62.
const histBuckets = 8 + 60*4

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 (durations can only go negative on clock steps; losing them
// to the smallest bucket is fine).
func bucketOf(v int64) int {
	if v < 8 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v < 2^(exp+1)
	sub := int(v>>(uint(exp)-2)) & 3 // which quarter of the octave
	b := 8 + (exp-3)*4 + sub
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper returns the exclusive upper bound of bucket b — the
// value reported for quantiles that land in it.
func bucketUpper(b int) int64 {
	if b < 8 {
		return int64(b) + 1
	}
	if b >= histBuckets-1 {
		// The top bucket's nominal bound (2^63) overflows int64.
		return math.MaxInt64
	}
	exp := (b-8)/4 + 3
	sub := (b - 8) % 4
	return 1<<uint(exp) + int64(sub+1)<<(uint(exp)-2)
}

// Histogram is a concurrency-safe log-scale histogram.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one duration (stored in nanoseconds).
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records one raw value.
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistSnapshot is a point-in-time summary of a histogram. Quantile
// values are bucket upper bounds (within 25% of the true sample
// quantile); units match what was observed (nanoseconds for Observe).
type HistSnapshot struct {
	Count int64
	Sum   int64
	Max   int64
	P50   int64
	P95   int64
	P99   int64
	// Buckets holds the non-empty (upper bound, cumulative count)
	// pairs, for Prometheus-text export.
	Buckets []HistBucket
}

// HistBucket is one cumulative histogram bucket.
type HistBucket struct {
	Upper int64
	Count int64
}

// Mean returns the snapshot's average value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarises the histogram. Concurrent Observe calls may or
// may not be included; the snapshot is internally consistent enough
// for monitoring (quantiles are computed from one pass over the bucket
// counts).
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	snap := HistSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	if total == 0 {
		return snap
	}
	quantile := func(q float64) int64 {
		rank := int64(q*float64(total) + 0.5)
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= rank {
				return bucketUpper(i)
			}
		}
		return bucketUpper(histBuckets - 1)
	}
	snap.P50 = quantile(0.50)
	snap.P95 = quantile(0.95)
	snap.P99 = quantile(0.99)
	var cum int64
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		snap.Buckets = append(snap.Buckets, HistBucket{Upper: bucketUpper(i), Count: cum})
	}
	return snap
}
