package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("logbase_writes_total", "writes", Labels{"server": "ts00"}).Add(9)

	ms, err := ListenAndServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), `logbase_writes_total{server="ts00"} 9`) {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}

	// pprof index must be mounted on the same listener.
	resp, err = http.Get("http://" + ms.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
