package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing model: a Tracer mints root spans at Store entry points; the
// span rides the request's context.Context so every layer it passes
// through (cluster scatter-gather, tablet servers, WAL reads) can hang
// child spans and labels off it. When the root finishes, the whole
// tree is rendered and handed to the tracer's sink iff the root took
// at least Threshold — that sink is the slow-op log. With Threshold 0
// every traced op is emitted, which is how tests and ad-hoc debugging
// retrieve complete trees.
//
// Everything is nil-safe: a nil *Tracer mints no spans, a context
// without a span yields nil children, and all *Span methods accept a
// nil receiver. Code instruments unconditionally and pays one pointer
// check when tracing is off.

// Tracer mints trace IDs and receives finished root spans.
type Tracer struct {
	// Threshold is the minimum root-span duration for emission to Sink.
	// Zero emits every completed trace.
	Threshold time.Duration
	// Sink receives one rendered trace tree per slow op. A nil Sink
	// disables tracing entirely (Root returns nil spans).
	Sink func(tree string)

	ids atomic.Uint64
	// SlowOps, when non-nil, counts emitted traces.
	SlowOps *Counter
}

// Span is one timed region of a trace. Fields are written by the
// goroutine that owns the span; children/labels are mutex-guarded so
// scatter-gather fan-out can attach concurrently.
type Span struct {
	tracer  *Tracer
	TraceID uint64
	Name    string
	Start   time.Time

	parent *Span

	mu       sync.Mutex
	dur      time.Duration
	labels   []spanLabel
	children []*Span
}

type spanLabel struct{ k, v string }

type spanCtxKey struct{}

// Root starts a new trace rooted at name and stores it in the returned
// context. Returns (ctx, nil) when the tracer is nil or has no sink.
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || t.Sink == nil {
		return ctx, nil
	}
	s := &Span{
		tracer:  t,
		TraceID: t.ids.Add(1),
		Name:    name,
		Start:   time.Now(),
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context carrying the child. With no active span it returns (ctx,
// nil) without allocating — instrumentation points call this
// unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tracer:  parent.tracer,
		TraceID: parent.TraceID,
		Name:    name,
		Start:   time.Now(),
		parent:  parent,
	}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Label attaches a key=value annotation. Repeated keys are kept in
// order (useful for retry loops).
func (s *Span) Label(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.labels = append(s.labels, spanLabel{k, v})
	s.mu.Unlock()
}

// LabelInt attaches a key=integer annotation.
func (s *Span) LabelInt(k string, v int64) {
	if s == nil {
		return
	}
	s.Label(k, fmt.Sprintf("%d", v))
}

// Finish stamps the span's duration. Finishing a root span renders the
// trace tree and emits it to the tracer sink when the duration is at
// or over the threshold.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
	if s.parent != nil || s.tracer == nil {
		return
	}
	if d >= s.tracer.Threshold && s.tracer.Sink != nil {
		s.tracer.SlowOps.Inc()
		s.tracer.Sink(s.Render())
	}
}

// Duration returns the finished span's duration (0 before Finish).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Render formats the span and its descendants as an indented tree, one
// span per line:
//
//	trace=000000000000002a slowop dur=1.2ms scan table=t [tablets=3]
//	  tablet.scan dur=400µs [server=ts01 rows=120]
//	    wal.readbatch dur=90µs [entries=40]
//
// Children are sorted by start time so concurrently-attached tablet
// spans render deterministically.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%016x slowop ", s.TraceID)
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	dur := s.dur
	labels := append([]spanLabel(nil), s.labels...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	if depth > 0 {
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("  ", depth))
	}
	fmt.Fprintf(b, "%s dur=%s", s.Name, dur)
	if len(labels) > 0 {
		b.WriteString(" [")
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(l.k)
			b.WriteByte('=')
			b.WriteString(l.v)
		}
		b.WriteByte(']')
	}
	sort.SliceStable(children, func(i, j int) bool { return children[i].Start.Before(children[j].Start) })
	for _, c := range children {
		c.render(b, depth+1)
	}
}
