// Package obs is the repo-local observability kit: a dependency-free
// metrics registry (atomic counters, gauges, log-scale latency
// histograms with quantile snapshots), lightweight request tracing
// carried through context.Context, and a Prometheus-text + pprof HTTP
// endpoint. Everything here is stdlib-only so the storage layers can
// depend on it without pulling third-party code into the module.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the dimension values attached to a metric. The zero/nil
// value means "no labels".
type Labels map[string]string

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n should be >= 0 for a counter).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type registered struct {
	name   string
	help   string
	labels string // rendered {k="v",...}, "" when unlabelled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds named metrics. Get-or-create accessors are keyed by
// (name, labels) so multiple servers can share one registry with a
// `server` label distinguishing their series. All methods are safe for
// concurrent use; reads of metric values are lock-free (the registry
// lock only guards the name table).
type Registry struct {
	mu      sync.Mutex
	byID    map[string]*registered
	ordered []*registered // insertion order, for stable export
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*registered)}
}

// renderLabels produces the canonical `{k="v",...}` form with keys
// sorted, used both as the identity key and in Prometheus output.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// get returns the metric registered under (name, labels), creating it
// with mk when absent. Re-registering the same identity with a
// different kind panics: that is a programming error, not a runtime
// condition.
func (r *Registry) get(name, help string, labels Labels, kind metricKind, mk func(*registered)) *registered {
	id := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic("obs: metric " + id + " re-registered with a different kind")
		}
		return m
	}
	m := &registered{name: name, help: help, labels: renderLabels(labels), kind: kind}
	mk(m)
	r.byID[id] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter for (name, labels), creating it if
// needed.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.get(name, help, labels, kindCounter, func(m *registered) { m.counter = &Counter{} }).counter
}

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.get(name, help, labels, kindGauge, func(m *registered) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers fn as the source for (name, labels); fn is
// called at snapshot/export time, so existing atomic counters can be
// surfaced with zero hot-path cost. Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	m := r.get(name, help, labels, kindGaugeFunc, func(m *registered) {})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), creating it if
// needed. Histograms record int64 values (nanoseconds by convention
// for names ending in _seconds, raw counts otherwise).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.get(name, help, labels, kindHistogram, func(m *registered) { m.hist = &Histogram{} }).hist
}

// Metric is one exported time series in a Snapshot. Exactly one of
// Value / Hist is meaningful, per Kind.
type Metric struct {
	Name   string
	Labels string // canonical {k="v",...} or ""
	Kind   string // "counter", "gauge", "histogram"
	Value  float64
	Hist   HistSnapshot
}

// Snapshot returns every registered metric with its current value, in
// registration order. Values are read in one pass, so series derived
// from the same atomics are as consistent as individually-atomic reads
// allow.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	metrics := make([]*registered, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()

	out := make([]Metric, 0, len(metrics))
	for _, m := range metrics {
		e := Metric{Name: m.name, Labels: m.labels}
		switch m.kind {
		case kindCounter:
			e.Kind = "counter"
			e.Value = float64(m.counter.Load())
		case kindGauge:
			e.Kind = "gauge"
			e.Value = float64(m.gauge.Load())
		case kindGaugeFunc:
			e.Kind = "gauge"
			if m.fn != nil {
				e.Value = m.fn()
			}
		case kindHistogram:
			e.Kind = "histogram"
			e.Hist = m.hist.Snapshot()
		}
		out = append(out, e)
	}
	return out
}

// secondsScaled reports whether series name carries nanosecond values
// that should be exported as seconds (Prometheus base-unit
// convention).
func secondsScaled(name string) bool { return strings.HasSuffix(name, "_seconds") }

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Histograms whose names end in _seconds were
// recorded in nanoseconds and are scaled to seconds on the way out.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*registered, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()

	typed := make(map[string]bool)
	header := func(m *registered, typ string) {
		if typed[m.name] {
			return
		}
		typed[m.name] = true
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ)
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			header(m, "counter")
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter.Load())
		case kindGauge:
			header(m, "gauge")
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.gauge.Load())
		case kindGaugeFunc:
			header(m, "gauge")
			var v float64
			if m.fn != nil {
				v = m.fn()
			}
			fmt.Fprintf(w, "%s%s %g\n", m.name, m.labels, v)
		case kindHistogram:
			header(m, "histogram")
			snap := m.hist.Snapshot()
			scale := 1.0
			if secondsScaled(m.name) {
				scale = 1e-9
			}
			for _, b := range snap.Buckets {
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", fmt.Sprintf("%g", float64(b.Upper)*scale)), b.Count)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", "+Inf"), snap.Count)
			fmt.Fprintf(w, "%s_sum%s %g\n", m.name, m.labels, float64(snap.Sum)*scale)
			fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, snap.Count)
		}
	}
	return nil
}

// withLabel splices one extra label pair into an already-rendered
// label set.
func withLabel(rendered, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}
