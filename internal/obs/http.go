package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry as
// Prometheus-text at /metrics plus the standard net/http/pprof
// endpoints under /debug/pprof/. It builds its own mux rather than
// touching http.DefaultServeMux so embedding processes keep control of
// their global handler space.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running /metrics + pprof HTTP listener.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServeMetrics binds addr (":0" picks a free port) and serves
// Handler(reg) in a background goroutine until Close.
func ListenAndServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the bound address (host:port).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the listener down.
func (m *MetricsServer) Close() error { return m.srv.Close() }
