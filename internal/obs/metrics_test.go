package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", Labels{"server": "ts00", "op": "put"})
	b := r.Counter("ops_total", "ops", Labels{"op": "put", "server": "ts00"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter regardless of map order")
	}
	c := r.Counter("ops_total", "ops", Labels{"server": "ts01", "op": "put"})
	if a == c {
		t.Fatal("different labels must be distinct series")
	}
	a.Add(3)
	c.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 series, got %d", len(snap))
	}
	if snap[0].Value != 3 || snap[1].Value != 1 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("logbase_writes_total", "total writes", Labels{"server": "ts00"}).Add(7)
	r.Gauge("logbase_segments", "open segments", nil).Set(4)
	r.GaugeFunc("logbase_garbage_ratio", "garbage fraction", nil, func() float64 { return 0.25 })
	h := r.Histogram("logbase_op_duration_seconds", "op latency", Labels{"op": "put"})
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE logbase_writes_total counter",
		`logbase_writes_total{server="ts00"} 7`,
		"# TYPE logbase_segments gauge",
		"logbase_segments 4",
		"logbase_garbage_ratio 0.25",
		"# TYPE logbase_op_duration_seconds histogram",
		`logbase_op_duration_seconds_count{op="put"} 2`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Duration histograms are recorded in ns but exported in seconds:
	// the sum of 1ms + 2ms must show as 0.003.
	if !strings.Contains(out, `logbase_op_duration_seconds_sum{op="put"} 0.003`) {
		t.Errorf("histogram sum not scaled to seconds:\n%s", out)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(time.Second)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}
