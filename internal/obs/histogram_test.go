package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Small values get exact buckets; larger ones land in a bucket whose
// bounds bracket them.
func TestBucketBoundaries(t *testing.T) {
	for v := int64(0); v < 8; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact bucket", v, got)
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
	// Every value must fall inside [lower, upper) of its bucket, where
	// lower is the previous bucket's upper bound.
	probe := []int64{8, 9, 15, 16, 17, 100, 1023, 1024, 1025, 1 << 20, 1<<40 + 12345, 1<<62 + 99}
	for _, v := range probe {
		b := bucketOf(v)
		upper := bucketUpper(b)
		var lower int64
		if b > 0 {
			lower = bucketUpper(b - 1)
		}
		if v < lower || v >= upper {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d)", v, b, lower, upper)
		}
	}
}

// bucketOf must be monotone and bucketUpper strictly increasing, or
// quantile walks would misorder.
func TestBucketMonotone(t *testing.T) {
	for b := 1; b < histBuckets; b++ {
		if bucketUpper(b) <= bucketUpper(b-1) {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", b, bucketUpper(b), bucketUpper(b-1))
		}
	}
	prev := 0
	for v := int64(0); v < 1<<16; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

// Quantile snapshots must agree with a sorted-sample oracle to within
// the bucket's 25% relative-error guarantee.
func TestQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread across 6 decades, like latencies.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		h.ObserveValue(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	if snap.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	if snap.Max != samples[len(samples)-1] {
		t.Fatalf("max = %d, want %d", snap.Max, samples[len(samples)-1])
	}
	check := func(name string, got int64, q float64) {
		oracle := samples[int(q*float64(len(samples)-1))]
		rel := float64(got-oracle) / float64(oracle)
		if rel < -0.26 || rel > 0.26 {
			t.Errorf("%s = %d, oracle %d, relative error %.3f exceeds bucket bound", name, got, oracle, rel)
		}
	}
	check("p50", snap.P50, 0.50)
	check("p95", snap.P95, 0.95)
	check("p99", snap.P99, 0.99)
}

// Concurrent recording must be race-free and lose no observations.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1 << 30)))
			}
		}(int64(w))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	var cum int64
	for _, b := range snap.Buckets {
		if b.Count <= cum {
			t.Fatalf("bucket counts must be cumulative and increasing: %v", snap.Buckets)
		}
		cum = b.Count
	}
	if cum != snap.Count {
		t.Fatalf("last cumulative bucket %d != count %d", cum, snap.Count)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.Mean() != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", snap)
	}
}
