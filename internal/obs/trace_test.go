package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	var got []string
	tr := &Tracer{Sink: func(s string) { got = append(got, s) }}

	ctx, root := tr.Root(context.Background(), "scan")
	if root == nil {
		t.Fatal("tracer with sink must mint a root span")
	}
	root.Label("table", "t")
	cctx, child := StartSpan(ctx, "tablet.scan")
	child.Label("server", "ts00")
	_, grand := StartSpan(cctx, "wal.readbatch")
	grand.LabelInt("entries", 12)
	grand.Finish()
	child.Finish()
	root.Finish()

	if len(got) != 1 {
		t.Fatalf("threshold 0 must emit every trace, got %d", len(got))
	}
	tree := got[0]
	for _, want := range []string{"slowop", "scan", "table=t", "\n  tablet.scan", "server=ts00", "\n    wal.readbatch", "entries=12"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing %q:\n%s", want, tree)
		}
	}
	if !strings.HasPrefix(tree, "trace=") {
		t.Errorf("tree must lead with the trace id: %q", tree)
	}
}

func TestTraceThresholdFilters(t *testing.T) {
	emitted := 0
	tr := &Tracer{Threshold: time.Hour, Sink: func(string) { emitted++ }}
	_, root := tr.Root(context.Background(), "fast")
	root.Finish()
	if emitted != 0 {
		t.Fatal("sub-threshold op must not hit the slow-op log")
	}
	if root.Duration() <= 0 {
		t.Fatal("finished span must have a duration")
	}
}

func TestTraceDisabled(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Root(context.Background(), "x")
	if root != nil {
		t.Fatal("nil tracer must not mint spans")
	}
	if FromContext(ctx) != nil {
		t.Fatal("no span should be stored")
	}
	// Child helpers and span methods must be no-ops on nil.
	cctx, child := StartSpan(ctx, "child")
	if child != nil || FromContext(cctx) != nil {
		t.Fatal("StartSpan without an active span must return nil")
	}
	child.Label("k", "v")
	child.Finish()

	enabled := &Tracer{} // no sink
	if _, s := enabled.Root(ctx, "x"); s != nil {
		t.Fatal("tracer without a sink must not mint spans")
	}
}

// Scatter-gather attaches children from many goroutines at once.
func TestTraceConcurrentChildren(t *testing.T) {
	var trees []string
	tr := &Tracer{Sink: func(s string) { trees = append(trees, s) }}
	ctx, root := tr.Root(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "branch")
			sp.Label("k", "v")
			sp.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if len(trees) != 1 || strings.Count(trees[0], "branch") != 16 {
		t.Fatalf("want one tree with 16 branches:\n%v", trees)
	}
}

func TestTraceSlowOpCounter(t *testing.T) {
	var c Counter
	tr := &Tracer{Sink: func(string) {}, SlowOps: &c}
	_, root := tr.Root(context.Background(), "op")
	root.Finish()
	if c.Load() != 1 {
		t.Fatalf("slow-op counter = %d, want 1", c.Load())
	}
}
