package hbase

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/dfs"
)

func newStore(t *testing.T, cfg Config) (*Store, *dfs.DFS) {
	t.Helper()
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = 1 << 20
	}
	s, err := Open(fs, "region0", cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, fs
}

func TestPutGet(t *testing.T) {
	s, _ := newStore(t, Config{})
	s.Put([]byte("k"), 1, []byte("v"))
	row, err := s.GetLatest([]byte("k"))
	if err != nil || string(row.Value) != "v" {
		t.Errorf("Get = %+v err=%v", row, err)
	}
	if _, err := s.GetLatest([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
}

func TestDoubleWriteAmplification(t *testing.T) {
	// The paper's core contrast: HBase persists data twice — once in the
	// WAL and once in flushed store files.
	s, _ := newStore(t, Config{MemtableBytes: 4 << 10})
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), 1, make([]byte, 100))
	}
	s.Flush()
	writes, flushes, _, flushBytes := s.StatsSnapshot()
	if writes != 200 {
		t.Errorf("writes = %d", writes)
	}
	if flushes == 0 || flushBytes == 0 {
		t.Error("no flushes despite small memtable: double write not exercised")
	}
	walBytes := s.WAL().Size()
	if walBytes == 0 {
		t.Error("WAL empty: durability path missing")
	}
	// Total persisted ≈ WAL + store files ≈ 2x the data.
	if flushBytes < walBytes/2 {
		t.Errorf("flushed %d vs wal %d; flush path suspiciously small", flushBytes, walBytes)
	}
}

func TestVersionsAndSnapshotReads(t *testing.T) {
	s, _ := newStore(t, Config{MemtableBytes: 1 << 10})
	for ts := int64(1); ts <= 10; ts++ {
		s.Put([]byte("k"), ts*10, []byte(fmt.Sprintf("v%d", ts)))
		s.Put([]byte(fmt.Sprintf("filler%d", ts)), 1, make([]byte, 200)) // force flushes
	}
	row, err := s.Get([]byte("k"), 35)
	if err != nil || string(row.Value) != "v3" {
		t.Errorf("Get@35 = %+v err=%v", row, err)
	}
	row, err = s.GetLatest([]byte("k"))
	if err != nil || string(row.Value) != "v10" {
		t.Errorf("latest = %+v err=%v", row, err)
	}
}

func TestDeleteTombstones(t *testing.T) {
	s, _ := newStore(t, Config{})
	s.Put([]byte("k"), 1, []byte("v"))
	s.Delete([]byte("k"), 2)
	if _, err := s.GetLatest([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key err = %v", err)
	}
	s.Flush()
	if _, err := s.GetLatest([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Error("tombstone lost in flush")
	}
}

func TestMinorCompactionBoundsStoreFiles(t *testing.T) {
	s, _ := newStore(t, Config{MemtableBytes: 1 << 10, MaxStoreFiles: 3})
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), 1, make([]byte, 64))
	}
	if n := s.NumStoreFiles(); n > 4 {
		t.Errorf("store files = %d, minor compaction not bounding", n)
	}
	_, _, compactions, _ := s.StatsSnapshot()
	if compactions == 0 {
		t.Error("no minor compactions ran")
	}
	for _, i := range []int{0, 250, 499} {
		if _, err := s.GetLatest([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Errorf("k%04d lost: %v", i, err)
		}
	}
}

func TestScanSortedAcrossSources(t *testing.T) {
	s, _ := newStore(t, Config{MemtableBytes: 2 << 10})
	for i := 399; i >= 0; i-- {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), 1, []byte("v"))
	}
	var keys []string
	err := s.Scan([]byte("k0100"), []byte("k0200"), math.MaxInt64, func(r Row) bool {
		keys = append(keys, string(r.Key))
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(keys) != 100 || keys[0] != "k0100" || keys[99] != "k0199" {
		t.Errorf("scan: %d keys, first %s last %s", len(keys), keys[0], keys[len(keys)-1])
	}
	n := 0
	if err := s.FullScan(func(Row) bool { n++; return true }); err != nil {
		t.Fatalf("FullScan: %v", err)
	}
	if n != 400 {
		t.Errorf("full scan = %d rows", n)
	}
}

func TestScanSkipsTombstonesAndOldVersions(t *testing.T) {
	s, _ := newStore(t, Config{})
	s.Put([]byte("a"), 1, []byte("a1"))
	s.Put([]byte("a"), 2, []byte("a2"))
	s.Put([]byte("b"), 1, []byte("b1"))
	s.Delete([]byte("b"), 2)
	s.Put([]byte("c"), 5, []byte("c5"))
	var got []string
	s.Scan(nil, nil, math.MaxInt64, func(r Row) bool {
		got = append(got, fmt.Sprintf("%s=%s", r.Key, r.Value))
		return true
	})
	if len(got) != 2 || got[0] != "a=a2" || got[1] != "c=c5" {
		t.Errorf("scan = %v", got)
	}
	// Snapshot scan sees b@1.
	got = nil
	s.Scan(nil, nil, 1, func(r Row) bool {
		got = append(got, fmt.Sprintf("%s=%s", r.Key, r.Value))
		return true
	})
	if len(got) != 2 || got[0] != "a=a1" || got[1] != "b=b1" {
		t.Errorf("snapshot scan = %v", got)
	}
}

func TestRecoverReplaysWAL(t *testing.T) {
	fs, err := dfs.New(t.TempDir(), dfs.Config{NumDataNodes: 3, BlockSize: 1 << 16})
	if err != nil {
		t.Fatalf("dfs.New: %v", err)
	}
	s, err := Open(fs, "region0", Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), int64(i+1), []byte("v"))
	}
	s.Delete([]byte("k00"), 100)

	// Crash: reopen over the same DFS, replay the WAL.
	s2, err := Open(fs, "region0", Config{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	n, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 51 {
		t.Errorf("replayed %d records, want 51", n)
	}
	for i := 1; i < 50; i++ {
		if _, err := s2.GetLatest([]byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost after recovery: %v", i, err)
		}
	}
	if _, err := s2.GetLatest([]byte("k00")); !errors.Is(err, ErrNotFound) {
		t.Error("delete lost after recovery")
	}
}

func TestBlockCacheReducesReads(t *testing.T) {
	s, _ := newStore(t, Config{MemtableBytes: 1 << 10, BlockCacheBytes: 1 << 20})
	for i := 0; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), 1, make([]byte, 64))
	}
	s.Flush()
	s.GetLatest([]byte("k0001"))
	s.GetLatest([]byte("k0002"))
	if st := s.BlockCacheStats(); st.Hits == 0 {
		t.Errorf("no block cache hits: %+v", st)
	}
}
