// Package hbase implements the WAL+Data baseline the paper compares
// against (HBase 0.90.3, §4): every write goes to a write-ahead log AND
// a memtable; full memtables are flushed into immutable store files
// (SSTables) with sparse block indexes; reads consult the memtable and
// every store file (whole blocks are fetched, optionally via a block
// cache); minor compaction merges store files.
//
// The contrasts the paper measures all live here: the double write
// (log + flush) halves write throughput versus log-only; the sparse
// index forces block fetches on cache misses where LogBase's dense
// in-memory index costs one seek; writes stall while a full memtable
// flushes; and sorted store files make range scans cheap without any
// log compaction.
package hbase

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cache"
	"repro/internal/dfs"
	"repro/internal/lsm"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// Config tunes the store.
type Config struct {
	// MemtableBytes is the flush threshold (HBase default 64 MB; scale
	// down in simulations).
	MemtableBytes int64
	// BlockSize is the store-file block size (HBase default 64 KB).
	BlockSize int
	// BlockCacheBytes bounds the block cache; zero disables it.
	BlockCacheBytes int64
	// MaxStoreFiles triggers a minor compaction when exceeded.
	MaxStoreFiles int
	// BloomBitsPerKey enables store-file bloom filters (0 = off,
	// matching HBase 0.90 defaults).
	BloomBitsPerKey int
	// SegmentSize is the WAL segment size.
	SegmentSize int64
}

func (c Config) withDefaults() Config {
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 64 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 10
	}
	if c.MaxStoreFiles <= 0 {
		c.MaxStoreFiles = 8
	}
	return c
}

// ErrNotFound is returned for absent keys.
var ErrNotFound = errors.New("hbase: not found")

// Row is one record version.
type Row struct {
	Key   []byte
	TS    int64
	Value []byte
}

// Store is one region store (the paper's unit of comparison): a WAL, a
// memtable and a set of store files in the DFS. Safe for concurrent
// use.
type Store struct {
	fs  *dfs.DFS
	dir string
	cfg Config
	wal *wal.Log
	bc  *cache.Cache

	mu       sync.RWMutex
	flushMu  sync.Mutex // serialises Flush and minor compaction
	mem      *lsm.Memtable
	files    []*sstable.Reader // newest first
	nextFile int

	stats Stats
}

// Stats counts store activity.
type Stats struct {
	mu          sync.Mutex
	Writes      int64
	Flushes     int64
	Compactions int64
	FlushBytes  int64
}

// Open creates a store under dir.
func Open(fs *dfs.DFS, dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	w, err := wal.Open(fs, dir+"/wal", wal.Options{SegmentSize: cfg.SegmentSize})
	if err != nil {
		return nil, err
	}
	var bc *cache.Cache
	if cfg.BlockCacheBytes > 0 {
		bc = cache.New(cfg.BlockCacheBytes, nil)
	}
	return &Store{fs: fs, dir: dir, cfg: cfg, wal: w, bc: bc, mem: lsm.NewMemtable(), nextFile: 1}, nil
}

// WAL exposes the store's log for test inspection.
func (s *Store) WAL() *wal.Log { return s.wal }

// StatsSnapshot returns activity counters.
func (s *Store) StatsSnapshot() (writes, flushes, compactions, flushBytes int64) {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return s.stats.Writes, s.stats.Flushes, s.stats.Compactions, s.stats.FlushBytes
}

// Put writes a row version: first the WAL (durability), then the
// memtable; a full memtable is flushed synchronously — the write stall
// the paper observes ("the write has to wait until the memtable is
// persisted successfully into HDFS", §4.3).
func (s *Store) Put(key []byte, ts int64, value []byte) error {
	if _, err := s.wal.Append(&wal.Record{Kind: wal.KindWrite, Key: key, TS: ts, Value: value}); err != nil {
		return err
	}
	s.mu.Lock()
	s.mem.Put(sstable.Entry{Key: key, TS: ts, Value: value})
	s.stats.mu.Lock()
	s.stats.Writes++
	s.stats.mu.Unlock()
	full := s.mem.ApproxBytes() >= s.cfg.MemtableBytes
	s.mu.Unlock()
	if full {
		return s.Flush()
	}
	return nil
}

// Delete writes a tombstone.
func (s *Store) Delete(key []byte, ts int64) error {
	if _, err := s.wal.Append(&wal.Record{Kind: wal.KindDelete, Key: key, TS: ts}); err != nil {
		return err
	}
	s.mu.Lock()
	s.mem.Put(sstable.Entry{Key: key, TS: ts, Tombstone: true})
	full := s.mem.ApproxBytes() >= s.cfg.MemtableBytes
	s.mu.Unlock()
	if full {
		return s.Flush()
	}
	return nil
}

// Flush persists the memtable as a new store file.
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	mem := s.mem
	if mem.Len() == 0 {
		s.mu.Unlock()
		return nil
	}
	s.mem = lsm.NewMemtable()
	num := s.nextFile
	s.nextFile++
	s.mu.Unlock()

	path := fmt.Sprintf("%s/hfile-%06d", s.dir, num)
	w, err := sstable.NewWriter(s.fs, path, sstable.WriterOptions{BlockSize: s.cfg.BlockSize, BloomBitsPerKey: s.cfg.BloomBitsPerKey})
	if err != nil {
		return err
	}
	it := mem.Iterator(nil)
	var bytesOut int64
	for it.Next() {
		e := it.Entry()
		if err := w.Add(e); err != nil {
			return err
		}
		bytesOut += int64(len(e.Key) + len(e.Value) + 16)
	}
	if err := w.Finish(); err != nil {
		return err
	}
	r, err := sstable.OpenReader(s.fs, path, s.bc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.files = append([]*sstable.Reader{r}, s.files...)
	tooMany := len(s.files) > s.cfg.MaxStoreFiles
	s.mu.Unlock()
	s.stats.mu.Lock()
	s.stats.Flushes++
	s.stats.FlushBytes += bytesOut
	s.stats.mu.Unlock()
	if tooMany {
		return s.compactFilesLocked()
	}
	return nil
}

// compactFiles is the minor compaction: merge all store files into one.
func (s *Store) compactFiles() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.compactFilesLocked()
}

// compactFilesLocked requires flushMu held.
func (s *Store) compactFilesLocked() error {
	s.mu.Lock()
	inputs := append([]*sstable.Reader(nil), s.files...)
	num := s.nextFile
	s.nextFile++
	s.mu.Unlock()
	if len(inputs) <= 1 {
		return nil
	}
	sources := make([]sstable.Source, len(inputs))
	for i, r := range inputs {
		sources[i] = r.NewIterator(nil)
	}
	merged := sstable.NewMergeIterator(sources...)
	path := fmt.Sprintf("%s/hfile-%06d", s.dir, num)
	w, err := sstable.NewWriter(s.fs, path, sstable.WriterOptions{BlockSize: s.cfg.BlockSize, BloomBitsPerKey: s.cfg.BloomBitsPerKey})
	if err != nil {
		return err
	}
	for merged.Next() {
		if err := w.Add(merged.Entry()); err != nil {
			return err
		}
	}
	if err := merged.Err(); err != nil {
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	r, err := sstable.OpenReader(s.fs, path, s.bc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.files = []*sstable.Reader{r}
	s.mu.Unlock()
	for _, o := range inputs {
		s.fs.Delete(o.Path()) //nolint:errcheck // best-effort GC
	}
	s.stats.mu.Lock()
	s.stats.Compactions++
	s.stats.mu.Unlock()
	return nil
}

// Get returns the newest version of key visible at ts. Every store file
// may need checking ("the tablet server in HBase has to check its
// multiple data files", §4.2.2); version timestamps are caller-supplied
// so all sources are consulted and the max-TS candidate wins.
func (s *Store) Get(key []byte, ts int64) (Row, error) {
	var best sstable.Entry
	found := false
	consider := func(e sstable.Entry) {
		if !found || e.TS > best.TS {
			best, found = e, true
		}
	}
	s.mu.RLock()
	if e, ok := s.mem.Get(key, ts); ok {
		consider(e)
	}
	files := append([]*sstable.Reader(nil), s.files...)
	s.mu.RUnlock()
	for _, f := range files {
		e, ok, err := f.Get(key, ts)
		if err != nil {
			return Row{}, err
		}
		if ok {
			consider(e)
		}
	}
	if !found || best.Tombstone {
		return Row{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return Row{Key: best.Key, TS: best.TS, Value: best.Value}, nil
}

// GetLatest returns the newest version of key.
func (s *Store) GetLatest(key []byte) (Row, error) { return s.Get(key, math.MaxInt64) }

// Scan streams the newest visible version (at ts) of each key in
// [start, end) in key order — cheap in HBase because memtable and store
// files are already sorted (§4.2.3).
func (s *Store) Scan(start, end []byte, ts int64, fn func(Row) bool) error {
	s.mu.RLock()
	sources := []sstable.Source{s.mem.Iterator(start)}
	for _, f := range s.files {
		sources = append(sources, f.NewIterator(start))
	}
	s.mu.RUnlock()
	merged := sstable.NewMergeIterator(sources...)
	var curKey []byte
	var bestE sstable.Entry
	haveBest := false
	emit := func() bool {
		if !haveBest || bestE.Tombstone {
			return true
		}
		return fn(Row{Key: bestE.Key, TS: bestE.TS, Value: bestE.Value})
	}
	for merged.Next() {
		e := merged.Entry()
		if end != nil && string(e.Key) >= string(end) {
			break
		}
		if curKey == nil || string(e.Key) != string(curKey) {
			if !emit() {
				return nil
			}
			curKey = append(curKey[:0], e.Key...)
			haveBest = false
		}
		if e.TS <= ts && (!haveBest || e.TS > bestE.TS) {
			bestE = e
			haveBest = true
		}
	}
	if err := merged.Err(); err != nil {
		return err
	}
	emit()
	return nil
}

// FullScan streams every key's newest version.
func (s *Store) FullScan(fn func(Row) bool) error {
	return s.Scan(nil, nil, math.MaxInt64, fn)
}

// Recover rebuilds the memtable from the WAL (store files are already
// durable). The paper's point is that this replay-and-rebuild step —
// plus flushing replayed data back out — delays HBase's recovery
// relative to LogBase's index-only rebuild; the reproduction replays
// the full WAL, conservative for HBase.
func (s *Store) Recover() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem = lsm.NewMemtable()
	n := 0
	sc := s.wal.NewScanner(wal.Position{})
	maxLSN := uint64(0)
	for sc.Next() {
		rec := sc.Record()
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		switch rec.Kind {
		case wal.KindWrite:
			s.mem.Put(sstable.Entry{Key: rec.Key, TS: rec.TS, Value: rec.Value})
		case wal.KindDelete:
			s.mem.Put(sstable.Entry{Key: rec.Key, TS: rec.TS, Tombstone: true})
		default:
			continue
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	s.wal.SetNextLSN(maxLSN + 1)
	return n, nil
}

// NumStoreFiles reports the current store-file count.
func (s *Store) NumStoreFiles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// BlockCacheStats returns block-cache counters (zero stats when
// disabled).
func (s *Store) BlockCacheStats() cache.Stats {
	if s.bc == nil {
		return cache.Stats{}
	}
	return s.bc.Stats()
}
