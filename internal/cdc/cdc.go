// Package cdc defines LogBase's change-data-capture surface: the event
// model and feed contract shared by the per-server changefeed engine
// (internal/core), the cluster scatter-gather feed (internal/cluster),
// and everything stacked on top (materialized views, the wire
// protocol, the CLI).
//
// The design falls out of the paper's central claim — the log is the
// ONLY data repository (arXiv:1207.0140). Every committed mutation is
// already durable, LSN-ordered, and addressable in the WAL, so a
// changefeed needs no second pipeline: it is a resumable cursor over
// committed log records. Historical catch-up is a sequential sweep of
// pinned segments; the live tail is published straight from the append
// path. The only genuinely new state is the cursor itself.
package cdc

import (
	"context"
	"errors"
	"fmt"
)

// EventKind discriminates changefeed events.
type EventKind uint8

const (
	// Put is an insert or update of one row/column-group version.
	Put EventKind = iota + 1
	// Delete is a row invalidation (tombstone).
	Delete
)

func (k EventKind) String() string {
	switch k {
	case Put:
		return "PUT"
	case Delete:
		return "DELETE"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one committed mutation, in the order it entered the log.
type Event struct {
	Kind  EventKind
	Table string
	Group string
	Key   []byte
	// Value is the written content; nil for Delete.
	Value []byte
	// TS is the version timestamp (commit timestamp for transactional
	// writes). Timestamps are globally ordered across the cluster, which
	// is what lets consumers deduplicate re-deliveries after a tablet
	// migrates (migration replays records into the destination log under
	// new LSNs but original timestamps).
	TS int64
	// LSN is the record's log sequence number in the serving server's
	// log. Within one server the feed is strictly LSN-ascending.
	LSN uint64
	// Cursor is the resume point: reopening the feed at FromLSN =
	// Cursor+1 continues exactly after this event. For auto-commit
	// mutations Cursor == LSN; for transactional mutations it is the
	// commit record's LSN (the transaction only became visible there, so
	// resuming past it must skip the whole transaction).
	Cursor uint64
}

// ErrCursorTruncated reports that a feed's resume LSN has fallen behind
// the log's reclaim horizon: compaction has dropped records above the
// requested position, so resuming there could silently miss mutations.
// The consumer must re-bootstrap (snapshot scan + fresh feed), or
// restart from LSN 0 to replay the retained (coalesced) history.
var ErrCursorTruncated = errors.New("cdc: cursor behind compaction horizon; re-bootstrap required")

// ErrFeedClosed reports a Next call on a closed feed.
var ErrFeedClosed = errors.New("cdc: feed closed")

// Feed is a pull-based event iterator. Next blocks until an event is
// available, the context is cancelled, or the feed fails; after a
// non-nil error the feed is dead (Close is still required).
type Feed interface {
	// Next returns the next event in feed order.
	Next(ctx context.Context) (Event, error)
	// Close releases the feed's resources (segment pins, live-tail
	// subscription). Idempotent.
	Close() error
}

// Options configures a Watch.
type Options struct {
	// Buffer is the live-tail buffer capacity in events; a consumer that
	// falls further behind than this blocks the flush path is NOT an
	// option in LogBase, so the feed instead fails with ErrSlowConsumer.
	// Zero means DefaultBuffer.
	Buffer int
}

// DefaultBuffer is the live-tail buffer capacity when Options.Buffer is
// zero.
const DefaultBuffer = 4096

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	return o
}

// ErrSlowConsumer reports that a live feed's buffer overflowed: the
// consumer fell too far behind the write rate. The cursor of the last
// delivered event is still valid — resume from there (the gap replays
// from the log).
var ErrSlowConsumer = errors.New("cdc: consumer too slow; resume from last cursor")
