package partition

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestIOCost(t *testing.T) {
	cols := []ColumnSpec{{"a", 10}, {"b", 20}, {"c", 30}}
	queries := []Query{{Columns: []string{"a"}, Freq: 1}}
	// One group per column: query reads only column a plus one seek.
	if c := IOCost(cols, [][]string{{"a"}, {"b"}, {"c"}}, queries); c != 10+GroupSeekOverhead {
		t.Errorf("split cost = %v, want %v", c, 10+GroupSeekOverhead)
	}
	// All in one group: query pays for the whole row plus one seek.
	if c := IOCost(cols, [][]string{{"a", "b", "c"}}, queries); c != 60+GroupSeekOverhead {
		t.Errorf("merged cost = %v, want %v", c, 60+GroupSeekOverhead)
	}
}

func TestOptimizeGroupsCoAccessedColumns(t *testing.T) {
	cols := []ColumnSpec{{"id", 8}, {"price", 8}, {"qty", 8}, {"bio", 500}}
	queries := []Query{
		{Columns: []string{"price", "qty"}, Freq: 100}, // hot pair
		{Columns: []string{"bio"}, Freq: 1},
	}
	groups := Optimize(cols, queries)
	var priceGroup, qtyGroup, bioGroup string
	for _, g := range groups {
		for _, c := range g.Columns {
			switch c {
			case "price":
				priceGroup = g.Name
			case "qty":
				qtyGroup = g.Name
			case "bio":
				bioGroup = g.Name
			}
		}
	}
	if priceGroup != qtyGroup {
		t.Errorf("price and qty split across %s/%s despite co-access", priceGroup, qtyGroup)
	}
	if bioGroup == priceGroup {
		t.Error("cold wide column merged into hot group")
	}
}

func TestOptimizeNeverWorseThanAllSplit(t *testing.T) {
	f := func(freqs [4]uint8) bool {
		cols := []ColumnSpec{{"a", 10}, {"b", 20}, {"c", 5}, {"d", 40}}
		queries := []Query{
			{Columns: []string{"a", "b"}, Freq: float64(freqs[0])},
			{Columns: []string{"c"}, Freq: float64(freqs[1])},
			{Columns: []string{"b", "d"}, Freq: float64(freqs[2])},
			{Columns: []string{"a", "b", "c", "d"}, Freq: float64(freqs[3])},
		}
		groups := Optimize(cols, queries)
		var asLists [][]string
		seen := map[string]bool{}
		for _, g := range groups {
			asLists = append(asLists, g.Columns)
			for _, c := range g.Columns {
				if seen[c] {
					return false // column in two groups
				}
				seen[c] = true
			}
		}
		if len(seen) != 4 {
			return false // lost a column
		}
		split := [][]string{{"a"}, {"b"}, {"c"}, {"d"}}
		return IOCost(cols, asLists, queries) <= IOCost(cols, split, queries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Start: []byte("b"), End: []byte("m")}
	cases := []struct {
		key  string
		want bool
	}{{"a", false}, {"b", true}, {"g", true}, {"m", false}, {"z", false}}
	for _, c := range cases {
		if got := r.Contains([]byte(c.key)); got != c.want {
			t.Errorf("Contains(%q) = %v", c.key, got)
		}
	}
	open := Range{}
	if !open.Contains([]byte("anything")) || !open.Contains([]byte{}) {
		t.Error("open range rejected a key")
	}
}

func TestSplitUniformCoversKeyspace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 24} {
		ranges := SplitUniform(n)
		if len(ranges) != n {
			t.Fatalf("SplitUniform(%d) returned %d ranges", n, len(ranges))
		}
		if ranges[0].Start != nil && len(ranges[0].Start) != 0 {
			t.Errorf("n=%d: first range start = %v", n, ranges[0].Start)
		}
		if ranges[n-1].End != nil {
			t.Errorf("n=%d: last range end = %v", n, ranges[n-1].End)
		}
		for i := 1; i < n; i++ {
			if !bytes.Equal(ranges[i].Start, ranges[i-1].End) {
				t.Errorf("n=%d: gap between range %d and %d", n, i-1, i)
			}
		}
	}
}

func TestRouterLookup(t *testing.T) {
	tablets := MakeTablets("users", SplitUniform(4))
	r := NewRouter(tablets)
	// Every byte value must land in exactly one tablet.
	counts := map[string]int{}
	for b := 0; b < 256; b++ {
		tab, ok := r.Lookup([]byte{byte(b), 'x'})
		if !ok {
			t.Fatalf("Lookup(%d) found no tablet", b)
		}
		counts[tab.ID]++
	}
	if len(counts) != 4 {
		t.Errorf("keys landed in %d tablets, want 4: %v", len(counts), counts)
	}
	for id, c := range counts {
		if c != 64 {
			t.Errorf("tablet %s got %d byte values, want 64", id, c)
		}
	}
}

func TestRouterOverlapping(t *testing.T) {
	tablets := MakeTablets("t", SplitUniform(4)) // cuts at 0x40, 0x80, 0xC0
	r := NewRouter(tablets)
	got := r.Overlapping([]byte{0x50}, []byte{0x90})
	if len(got) != 2 {
		t.Fatalf("Overlapping returned %d tablets, want 2", len(got))
	}
	if got[0].ID != "t/0001" || got[1].ID != "t/0002" {
		t.Errorf("Overlapping = %v, %v", got[0].ID, got[1].ID)
	}
	// Full scan touches all tablets.
	if n := len(r.Overlapping(nil, nil)); n != 4 {
		t.Errorf("full-range overlap = %d tablets", n)
	}
}

func TestQuickRouterTotalAndUnique(t *testing.T) {
	r := NewRouter(MakeTablets("t", SplitUniform(7)))
	f := func(key []byte) bool {
		tab, ok := r.Lookup(key)
		if !ok {
			return false
		}
		return tab.Range.Contains(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEntityKeyClustering(t *testing.T) {
	r := NewRouter(MakeTablets("t", SplitUniform(8)))
	// All rows of one entity must land on the same tablet.
	base, ok := r.Lookup(EntityKey("user42", "cart"))
	if !ok {
		t.Fatal("lookup failed")
	}
	for _, suffix := range []string{"orders/1", "orders/2", "profile"} {
		tab, ok := r.Lookup(EntityKey("user42", suffix))
		if !ok || tab.ID != base.ID {
			t.Errorf("entity row %q routed to %v, want %v", suffix, tab.ID, base.ID)
		}
	}
}

func TestMakeTabletsIDs(t *testing.T) {
	tablets := MakeTablets("orders", SplitUniform(3))
	for i, tab := range tablets {
		want := fmt.Sprintf("orders/%04d", i)
		if tab.ID != want || tab.Table != "orders" {
			t.Errorf("tablet %d = %+v, want ID %s", i, tab, want)
		}
	}
}

func TestSplitUniformEdgeCases(t *testing.T) {
	// n <= 1 (including zero and negative) is the whole keyspace as one
	// unbounded range — the "empty keyspace cut" case.
	for _, n := range []int{-3, 0, 1} {
		ranges := SplitUniform(n)
		if len(ranges) != 1 {
			t.Fatalf("SplitUniform(%d) = %d ranges, want 1", n, len(ranges))
		}
		if len(ranges[0].Start) != 0 || ranges[0].End != nil {
			t.Fatalf("SplitUniform(%d) = %+v, want unbounded", n, ranges[0])
		}
		if !ranges[0].Contains(nil) || !ranges[0].Contains([]byte("anything")) {
			t.Fatalf("SplitUniform(%d) range does not cover the keyspace", n)
		}
	}
}

func TestSplitUniformBeyond256(t *testing.T) {
	// The old single-byte-prefix cuts collapsed past n=256; two-byte
	// cuts must keep every range distinct and contiguous.
	for _, n := range []int{257, 300, 1000} {
		ranges := SplitUniform(n)
		if len(ranges) != n {
			t.Fatalf("SplitUniform(%d) returned %d ranges", n, len(ranges))
		}
		for i := 1; i < n; i++ {
			if !bytes.Equal(ranges[i].Start, ranges[i-1].End) {
				t.Fatalf("n=%d: gap between range %d and %d", n, i-1, i)
			}
			if bytes.Compare(ranges[i-1].Start, ranges[i-1].End) >= 0 && len(ranges[i-1].Start) > 0 {
				t.Fatalf("n=%d: empty range %d: %+v", n, i-1, ranges[i-1])
			}
		}
	}
}

func TestSplitAtArbitraryKeys(t *testing.T) {
	// Arbitrary multi-byte split keys, unsorted and with duplicates.
	keys := [][]byte{[]byte("user500"), []byte("m"), []byte("user500"), []byte("zzz/last"), nil}
	ranges := SplitAt(keys)
	if len(ranges) != 4 {
		t.Fatalf("SplitAt = %d ranges, want 4", len(ranges))
	}
	want := [][]byte{nil, []byte("m"), []byte("user500"), []byte("zzz/last")}
	for i, r := range ranges {
		if !bytes.Equal(r.Start, want[i]) {
			t.Errorf("range %d start = %q, want %q", i, r.Start, want[i])
		}
	}
	// Router over them covers everything with no overlap.
	r := NewRouter(MakeTablets("t", ranges))
	for _, k := range []string{"", "a", "m", "user499", "user500", "user501", "zzz/lastX"} {
		if _, ok := r.Lookup([]byte(k)); !ok {
			t.Errorf("Lookup(%q) found no tablet", k)
		}
	}
	if len(SplitAt(nil)) != 1 {
		t.Fatalf("SplitAt(nil) should be the single unbounded range")
	}
}

func TestRangeSplit(t *testing.T) {
	r := Range{Start: []byte("b"), End: []byte("x")}
	left, right, err := r.Split([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(left.Start, []byte("b")) || !bytes.Equal(left.End, []byte("m")) {
		t.Fatalf("left = %+v", left)
	}
	if !bytes.Equal(right.Start, []byte("m")) || !bytes.Equal(right.End, []byte("x")) {
		t.Fatalf("right = %+v", right)
	}
	if left.Contains([]byte("m")) || !right.Contains([]byte("m")) {
		t.Fatal("split key must belong to the right child")
	}
	// Keys outside or on the boundary are rejected (empty child).
	for _, bad := range [][]byte{nil, []byte("a"), []byte("b"), []byte("x"), []byte("z")} {
		if _, _, err := r.Split(bad); err == nil {
			t.Errorf("Split(%q) should fail", bad)
		}
	}
	// Splitting an unbounded range works with any interior key.
	if _, _, err := (Range{}).Split([]byte("k")); err != nil {
		t.Fatalf("unbounded split: %v", err)
	}
}
