// Package partition implements LogBase's two partitioning dimensions
// (paper §3.2): vertical partitioning of a table schema into column
// groups driven by a query-workload trace, and horizontal partitioning
// of each column group into key-range tablets with a router.
package partition

import (
	"bytes"
	"fmt"
	"sort"
)

// ColumnSpec describes one column for the vertical optimizer.
type ColumnSpec struct {
	Name string
	// AvgBytes is the column's average width, used by the I/O cost
	// model.
	AvgBytes int
}

// Query is one entry of a workload trace: the set of columns it touches
// and its relative frequency.
type Query struct {
	Columns []string
	Freq    float64
}

// Group is one column group.
type Group struct {
	Name    string
	Columns []string
}

// GroupSeekOverhead is the fixed per-group access cost in byte
// equivalents: each column group a query touches is a separate physical
// partition and costs an extra seek.
const GroupSeekOverhead = 32

// IOCost evaluates the workload's I/O cost under a grouping: each query
// reads, per row, every group it intersects in full (groups are stored
// separately, so touching one column of a group fetches the group's
// whole row fragment) plus a fixed seek overhead per touched group.
// This is the cost model the paper's workload-trace-driven partitioning
// minimises.
func IOCost(cols []ColumnSpec, groups [][]string, queries []Query) float64 {
	width := make(map[string]int, len(cols))
	for _, c := range cols {
		width[c.Name] = c.AvgBytes
	}
	groupOf := make(map[string]int)
	groupBytes := make([]int, len(groups))
	for gi, g := range groups {
		for _, c := range g {
			groupOf[c] = gi
			groupBytes[gi] += width[c]
		}
	}
	var cost float64
	for _, q := range queries {
		touched := map[int]bool{}
		for _, c := range q.Columns {
			if gi, ok := groupOf[c]; ok {
				touched[gi] = true
			}
		}
		var rowBytes int
		for gi := range touched {
			rowBytes += groupBytes[gi] + GroupSeekOverhead
		}
		cost += q.Freq * float64(rowBytes)
	}
	return cost
}

// Optimize picks column groups minimising IOCost via greedy
// agglomerative merging: start with one group per column and merge the
// pair that lowers cost most, until no merge helps. (Exhaustive
// enumeration of groupings is a Bell number; greedy matches the paper's
// "multiple ways ... are enumerated [and] the best assignment is
// selected" at tractable cost and is exact for the small schemas in the
// evaluation workloads.)
func Optimize(cols []ColumnSpec, queries []Query) []Group {
	groups := make([][]string, len(cols))
	for i, c := range cols {
		groups[i] = []string{c.Name}
	}
	cost := IOCost(cols, groups, queries)
	for {
		bestI, bestJ := -1, -1
		bestCost := cost
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				merged := mergeGroups(groups, i, j)
				if c := IOCost(cols, merged, queries); c < bestCost {
					bestCost, bestI, bestJ = c, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		groups = mergeGroups(groups, bestI, bestJ)
		cost = bestCost
	}
	out := make([]Group, len(groups))
	for i, g := range groups {
		sort.Strings(g)
		out[i] = Group{Name: fmt.Sprintf("cg%d", i), Columns: g}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Columns[0] < out[j].Columns[0] })
	for i := range out {
		out[i].Name = fmt.Sprintf("cg%d", i)
	}
	return out
}

func mergeGroups(groups [][]string, i, j int) [][]string {
	out := make([][]string, 0, len(groups)-1)
	merged := append(append([]string(nil), groups[i]...), groups[j]...)
	for k, g := range groups {
		if k == i {
			out = append(out, merged)
		} else if k != j {
			out = append(out, g)
		}
	}
	return out
}

// Range is a half-open key range [Start, End); nil End means +inf and
// nil/empty Start means -inf.
type Range struct {
	Start []byte
	End   []byte
}

// Contains reports whether key falls in the range.
func (r Range) Contains(key []byte) bool {
	if len(r.Start) > 0 && bytes.Compare(key, r.Start) < 0 {
		return false
	}
	if r.End != nil && bytes.Compare(key, r.End) >= 0 {
		return false
	}
	return true
}

// Tablet identifies one horizontal partition of one table.
type Tablet struct {
	ID    string
	Table string
	Range Range
}

// SplitUniform cuts the whole keyspace into n contiguous ranges of
// roughly equal width. Cut points are two-byte prefixes (one byte for
// n <= 256), so n is no longer capped at 256 and adjacent cuts never
// collapse for any practical n. Callers with known key distributions
// can construct ranges directly, or derive data-driven cuts and use
// SplitAt.
func SplitUniform(n int) []Range {
	if n <= 1 {
		return []Range{{}}
	}
	if n > 65536 {
		n = 65536
	}
	keys := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		if n <= 256 {
			keys = append(keys, []byte{byte(i * 256 / n)})
		} else {
			cut := i * 65536 / n
			keys = append(keys, []byte{byte(cut >> 8), byte(cut)})
		}
	}
	return SplitAt(keys)
}

// SplitAt cuts the whole keyspace at the given split keys, which may be
// arbitrary byte strings (data-driven cut points, e.g. index leaf
// boundaries). Keys are sorted and deduplicated; empty keys are
// ignored. SplitAt(nil) is the single unbounded range.
func SplitAt(keys [][]byte) []Range {
	sorted := make([][]byte, 0, len(keys))
	for _, k := range keys {
		if len(k) > 0 {
			sorted = append(sorted, k)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	var out []Range
	var prev []byte
	for _, k := range sorted {
		if prev != nil && bytes.Equal(prev, k) {
			continue
		}
		out = append(out, Range{Start: prev, End: k})
		prev = k
	}
	return append(out, Range{Start: prev})
}

// Split cuts the range in two at key, which must fall strictly inside
// it (otherwise one child would be empty).
func (r Range) Split(key []byte) (Range, Range, error) {
	if len(key) == 0 {
		return Range{}, Range{}, fmt.Errorf("partition: empty split key")
	}
	if !r.Contains(key) || (len(r.Start) > 0 && bytes.Equal(key, r.Start)) {
		return Range{}, Range{}, fmt.Errorf("partition: split key %q not strictly inside range", key)
	}
	cut := append([]byte(nil), key...)
	return Range{Start: r.Start, End: cut}, Range{Start: cut, End: r.End}, nil
}

// MakeTablets names one tablet per range for a table.
func MakeTablets(table string, ranges []Range) []Tablet {
	out := make([]Tablet, len(ranges))
	for i, r := range ranges {
		out[i] = Tablet{ID: fmt.Sprintf("%s/%04d", table, i), Table: table, Range: r}
	}
	return out
}

// Router maps keys to tablets for one table. Immutable once built;
// rebuild on reassignment (clients cache routing metadata and refresh
// when stale, per paper §3.3).
type Router struct {
	tablets []Tablet // sorted by Range.Start
}

// NewRouter builds a router over tablets (any order).
func NewRouter(tablets []Tablet) *Router {
	sorted := append([]Tablet(nil), tablets...)
	sort.Slice(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Range.Start, sorted[j].Range.Start) < 0
	})
	return &Router{tablets: sorted}
}

// Lookup returns the tablet owning key.
func (r *Router) Lookup(key []byte) (Tablet, bool) {
	lo, hi := 0, len(r.tablets)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.tablets[mid].Range.Start, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Tablet{}, false
	}
	t := r.tablets[lo-1]
	if !t.Range.Contains(key) {
		return Tablet{}, false
	}
	return t, true
}

// Overlapping returns the tablets intersecting [start, end) in key
// order — a cross-tablet range scan fans out to these (paper §3.6.4).
func (r *Router) Overlapping(start, end []byte) []Tablet {
	var out []Tablet
	for _, t := range r.tablets {
		if end != nil && len(t.Range.Start) > 0 && bytes.Compare(t.Range.Start, end) >= 0 {
			continue
		}
		if t.Range.End != nil && len(start) > 0 && bytes.Compare(start, t.Range.End) >= 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Tablets returns the router's tablets in key order.
func (r *Router) Tablets() []Tablet { return append([]Tablet(nil), r.tablets...) }

// EntityKey builds a key with an entity-group prefix (paper §3.2: "by
// cleverly designing the key of records, all data related to a user
// could have the same key prefix"), keeping a user's rows on one tablet
// so transactions avoid two-phase commit.
func EntityKey(entity, suffix string) []byte {
	return []byte(entity + "/" + suffix)
}
