package core

// The shared log-reader: one resumable cursor engine over committed WAL
// records, consumed by BOTH streaming subsystems built on the log — the
// changefeed (Watch, internal/cdc) and WAL-shipping replication
// (internal/repl). Because the log is the ONLY data repository, neither
// needs a second pipeline; both are exactly "replay the retained log
// from an LSN, then follow the append stream", and this file is the
// single implementation of that contract:
//
//   - Historical catch-up: a sequential sweep over the segments pinned
//     at subscribe time (pinning keeps compaction from reclaiming the
//     files mid-read). Segments are swept in file order and the
//     matching records sorted by LSN — compaction relocates records
//     into key-clustered segments, so file order is not LSN order.
//   - Live tail: records published from the append path itself (the
//     wal append hook fires under the log's append lock, so the live
//     stream is totally LSN-ordered across concurrent writers and both
//     the direct and group-commit paths).
//
// The handoff is exact: subscribing takes the install latch
// exclusively, which drains every in-flight mutation (they hold it
// shared from log append through index install), then snapshots the
// boundary LSN, pins the segments, and registers the live subscriber
// before any new append can start. Everything below the boundary is
// durable in the pinned segments; everything at or above it arrives
// through the hub. No record is missed or delivered twice.
//
// Transactional mutations become visible at their commit record, so
// their events carry Cursor = the commit's LSN (the resume point that
// cannot split a transaction); auto-commit events have Cursor == LSN.
// Records of transactions whose commit lies beyond the catch-up
// boundary are carried into the live phase and emitted when the commit
// arrives.
//
// Compaction cooperates through the prune horizon (pruneHorizon): any
// run that drops a record — or rewrites a committed transactional
// record as a plain write, which silently re-attributes its cursor —
// raises the horizon past the affected LSNs. A subscription resuming at
// or below the horizon gets cdc.ErrCursorTruncated and must
// re-bootstrap; fromLSN 0 is always served and replays the retained
// (coalesced but state-correct) history.

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cdc"
	"repro/internal/wal"
)

// RecordEvent is one committed mutation record in feed order.
type RecordEvent struct {
	// Rec is the raw log record (KindWrite or KindDelete).
	Rec wal.Record
	// Cursor is the resume point: re-subscribing at FromLSN = Cursor+1
	// continues exactly after this record. Auto-commit records carry
	// Cursor == Rec.LSN; transactional records carry their commit
	// record's LSN (the transaction only became visible there).
	Cursor uint64
}

// feedSub is one live-tail subscription registered with the hub.
type feedSub struct {
	// match selects the data records this subscriber observes (commit
	// records are always delivered; they carry no table).
	match func(*wal.Record) bool
	// ch carries matching data records plus every commit record. The
	// publisher never blocks on it: a full channel marks the subscriber
	// overflowed and closes it (the feed surfaces cdc.ErrSlowConsumer
	// and the consumer resumes from its last cursor).
	ch chan wal.Record
	// closed/overflow are guarded by the hub mutex; the channel close
	// is the publication barrier that lets the feed goroutine read
	// overflow afterwards.
	closed   bool
	overflow bool
	// cursor is the last cursor delivered to the consumer (feed-lag
	// metric).
	cursor atomic.Uint64
}

// cdcHub fans the append stream out to subscribers. publish runs under
// the wal append lock, so it must stay cheap: per-subscriber filtering
// and a non-blocking channel send.
type cdcHub struct {
	mu   sync.Mutex
	subs map[*feedSub]struct{}
}

func (h *cdcHub) add(sub *feedSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs == nil {
		h.subs = make(map[*feedSub]struct{})
	}
	h.subs[sub] = struct{}{}
}

// remove unregisters a subscriber, closing its channel so the feed
// goroutine drains and exits.
func (h *cdcHub) remove(sub *feedSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
}

// closeAll tears down every subscription (server shutdown).
func (h *cdcHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		delete(h.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
}

// count returns the number of live subscriptions (metrics).
func (h *cdcHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// maxLag returns the largest LSN distance between the log's last
// assigned LSN and any subscriber's delivered cursor (metrics).
func (h *cdcHub) maxLag(nextLSN uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var lag uint64
	for sub := range h.subs {
		c := sub.cursor.Load()
		if nextLSN > c+1 && nextLSN-1-c > lag {
			lag = nextLSN - 1 - c
		}
	}
	return lag
}

// publish fans an appended record batch out to subscribers. Invoked by
// the wal append hook while the append lock is held — publications are
// therefore strictly LSN-ordered. Commit records go to every
// subscriber (they carry no table and may commit records already
// buffered by the feed); checkpoint markers are dropped.
func (h *cdcHub) publish(recs []wal.Record) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	for sub := range h.subs {
		h.deliver(sub, recs)
	}
}

func (h *cdcHub) deliver(sub *feedSub, recs []wal.Record) {
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case wal.KindCommit, wal.KindCheckpoint:
			// Always delivered: commits resolve buffered transactional
			// records, and both double as progress beacons — without
			// them a feed could never report itself drained past a
			// trailing marker (RecordFeed.Drained).
		case wal.KindWrite, wal.KindDelete:
			if !sub.match(rec) {
				continue
			}
		default:
			continue
		}
		select {
		case sub.ch <- *rec:
		default:
			// Overflow: delivering later records would hide a gap, so
			// the subscription dies here. The consumer's cursor is
			// still exact — it resumes and replays the gap from the
			// log.
			sub.overflow = true
			sub.closed = true
			close(sub.ch)
			delete(h.subs, sub)
			return
		}
	}
}

// RecordFeed is a resumable cursor over this server's committed log
// records: historical catch-up from pinned segments, then the live
// append tail, in commit order with exactly-once handoff.
type RecordFeed struct {
	s   *Server
	sub *feedSub

	fromLSN  uint64
	boundary uint64   // first live LSN; catch-up covers [fromLSN, boundary)
	pinned   []uint32 // segments pinned for catch-up

	events chan RecordEvent
	done   chan struct{}
	err    error // set before events is closed
	once   sync.Once

	// pending buffers transactional records whose commit has not been
	// seen yet, keyed by TxnID; it hands over seamlessly from the
	// catch-up phase to the live phase.
	pending map[uint64][]wal.Record

	// processed is the highest LSN the feed goroutine has fully handled:
	// every record at or below it was emitted, buffered as pending, or
	// carried no data (commit/checkpoint markers). It advances only
	// after the corresponding emits complete, so processed >= L plus an
	// empty events channel means the consumer holds everything through
	// L. Replication's watermark protocol reads it via Drained.
	processed atomic.Uint64
}

// subscribeRecords opens a record feed: match selects the data records
// delivered (nil = every write/delete), fromLSN is the resume cursor
// (0 = full retained history), buffer sizes the live-tail channel.
// Resuming at or below the prune horizon fails with
// cdc.ErrCursorTruncated.
func (s *Server) subscribeRecords(match func(*wal.Record) bool, fromLSN uint64, buffer int) (*RecordFeed, error) {
	if match == nil {
		match = func(*wal.Record) bool { return true }
	}
	if buffer <= 0 {
		buffer = cdc.DefaultBuffer
	}
	sub := &feedSub{match: match, ch: make(chan wal.Record, buffer)}
	sub.cursor.Store(fromLSN)
	f := &RecordFeed{
		s:       s,
		sub:     sub,
		fromLSN: fromLSN,
		events:  make(chan RecordEvent, 256),
		done:    make(chan struct{}),
		pending: make(map[uint64][]wal.Record),
	}
	// Subscribe barrier: taking the install latch exclusively drains
	// every in-flight mutation (writers hold it shared from append
	// through index install, and group-commit flushes complete inside
	// that window). With writers excluded, the boundary LSN, the pinned
	// segment set, and the hub registration form one consistent cut of
	// the log.
	s.installMu.Lock()
	if fromLSN > 0 && fromLSN <= s.pruneHorizon.Load() {
		s.installMu.Unlock()
		return nil, cdc.ErrCursorTruncated
	}
	f.boundary = s.log.NextLSN()
	f.pinned = s.log.PinAll()
	s.cdc.add(sub)
	s.installMu.Unlock()
	go f.run()
	return f, nil
}

// SubscribeRecords opens the replication stream: every committed
// write/delete record on this server from fromLSN onward, in commit
// order. It shares the changefeed's cursor/pinning engine — same
// resume contract, same cdc.ErrCursorTruncated / cdc.ErrSlowConsumer
// semantics. buffer <= 0 uses cdc.DefaultBuffer.
func (s *Server) SubscribeRecords(fromLSN uint64, buffer int) (*RecordFeed, error) {
	return s.subscribeRecords(nil, fromLSN, buffer)
}

// Next returns the next committed record in feed order. It blocks until
// one arrives, ctx is cancelled, or the feed terminates
// (cdc.ErrSlowConsumer on live buffer overflow, cdc.ErrFeedClosed after
// Close).
func (f *RecordFeed) Next(ctx context.Context) (RecordEvent, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case ev, ok := <-f.events:
		if !ok {
			if f.err != nil {
				return RecordEvent{}, f.err
			}
			return RecordEvent{}, cdc.ErrFeedClosed
		}
		f.sub.cursor.Store(ev.Cursor)
		return ev, nil
	case <-ctx.Done():
		return RecordEvent{}, ctx.Err()
	case <-f.done:
		return RecordEvent{}, cdc.ErrFeedClosed
	}
}

// ProcessedLSN returns the highest LSN the feed has fully handled (see
// Drained). It lags the log tip by whatever sits in the live-tail
// buffer.
func (f *RecordFeed) ProcessedLSN() uint64 { return f.processed.Load() }

// Drained reports whether the consumer holds every committed record
// with LSN <= tip: the feed goroutine has processed past tip and the
// event buffer is empty. Only meaningful on an unfiltered feed
// (SubscribeRecords) — filtered records never reach the feed, so a
// filtered feed's mark can stall — and only exact when called from the
// consumer's own goroutine between Next calls (an event popped by a
// concurrent Next would be invisible to both checks). Replication's
// watermark protocol is the intended caller.
func (f *RecordFeed) Drained(tip uint64) bool {
	return f.processed.Load() >= tip && len(f.events) == 0
}

// Close releases the feed: the live subscription is unregistered, the
// catch-up's segment pins drop, and any blocked Next returns.
// Idempotent.
func (f *RecordFeed) Close() error {
	f.once.Do(func() {
		close(f.done)
		f.s.cdc.remove(f.sub)
	})
	return nil
}

// run is the feed's producer goroutine: historical catch-up, then the
// live tail.
func (f *RecordFeed) run() {
	defer close(f.events)
	if ok := f.catchUp(); !ok {
		return
	}
	f.live()
}

// emit hands one record to the consumer, honouring fromLSN filtering
// and feed shutdown. Returns false when the feed is closing.
func (f *RecordFeed) emit(ev RecordEvent) bool {
	if f.fromLSN > 0 && ev.Cursor < f.fromLSN {
		return true // resumed past it: already delivered in a previous feed
	}
	select {
	case f.events <- ev:
		return true
	case <-f.done:
		return false
	}
}

// catchUpCheckEvery bounds how many records are scanned between feed
// shutdown checks.
const catchUpCheckEvery = 1024

// catchUp sweeps the pinned segments for records below the boundary,
// resolves transactional visibility, and emits the survivors in commit
// order. Returns false when the feed shut down mid-way.
func (f *RecordFeed) catchUp() bool {
	defer func() {
		f.s.log.Unpin(f.pinned...)
		f.pinned = nil
	}()

	// Collect matching data records and every commit below the
	// boundary. Compaction can briefly leave a record live in both its
	// input and output segment (originals keep their LSNs), so the scan
	// deduplicates by LSN.
	var recs []wal.Record
	commits := make(map[uint64]wal.Record) // TxnID -> commit record
	seen := make(map[uint64]struct{})
	scanned := 0
	for _, num := range f.pinned {
		sc, err := f.s.log.OpenSegmentScanner(num, 0)
		if err != nil {
			f.err = err
			return false
		}
		for sc.Next() {
			scanned++
			if scanned%catchUpCheckEvery == 0 {
				select {
				case <-f.done:
					sc.Close()
					return false
				default:
				}
			}
			rec := sc.Record()
			if rec.LSN >= f.boundary {
				continue // appended after subscribe; the live tail has it
			}
			if _, dup := seen[rec.LSN]; dup {
				continue
			}
			switch rec.Kind {
			case wal.KindCommit:
				seen[rec.LSN] = struct{}{}
				commits[rec.TxnID] = rec
			case wal.KindWrite, wal.KindDelete:
				if !f.sub.match(&rec) {
					continue
				}
				seen[rec.LSN] = struct{}{}
				recs = append(recs, rec)
			}
		}
		err = sc.Err()
		sc.Close()
		if err != nil {
			f.err = err
			return false
		}
	}

	// Resolve visibility: auto-commit records stand alone; committed
	// transactional records adopt their commit's LSN as cursor; records
	// of transactions not committed below the boundary carry into the
	// live phase (their commit, if it ever lands, is at or above it).
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	evs := make([]RecordEvent, 0, len(recs))
	for i := range recs {
		rec := &recs[i]
		if rec.TxnID == 0 {
			evs = append(evs, RecordEvent{Rec: *rec, Cursor: rec.LSN})
			continue
		}
		if c, ok := commits[rec.TxnID]; ok {
			evs = append(evs, RecordEvent{Rec: *rec, Cursor: c.LSN})
			continue
		}
		f.pending[rec.TxnID] = append(f.pending[rec.TxnID], *rec)
	}
	// Commit order: by cursor, transactions internally by record LSN.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Cursor != evs[j].Cursor {
			return evs[i].Cursor < evs[j].Cursor
		}
		return evs[i].Rec.LSN < evs[j].Rec.LSN
	})
	for _, ev := range evs {
		if !f.emit(ev) {
			return false
		}
	}
	if f.boundary > 0 {
		f.processed.Store(f.boundary - 1)
	}
	return true
}

// live drains the hub subscription until the feed closes or the
// subscriber overflows.
func (f *RecordFeed) live() {
	for rec := range f.sub.ch {
		switch rec.Kind {
		case wal.KindCommit:
			// The transaction's buffered records become visible now, in
			// record order, all sharing the commit's cursor.
			if list, ok := f.pending[rec.TxnID]; ok {
				delete(f.pending, rec.TxnID)
				for i := range list {
					if !f.emit(RecordEvent{Rec: list[i], Cursor: rec.LSN}) {
						return
					}
				}
			}
		case wal.KindWrite, wal.KindDelete:
			if rec.TxnID != 0 {
				f.pending[rec.TxnID] = append(f.pending[rec.TxnID], rec)
				f.processed.Store(rec.LSN)
				continue
			}
			if !f.emit(RecordEvent{Rec: rec, Cursor: rec.LSN}) {
				return
			}
		}
		// Hub publications are strictly LSN-ordered and the emits above
		// completed, so everything through this record is now with the
		// consumer (or pending a future commit). Checkpoint markers land
		// here too — they carry no data but move the mark.
		f.processed.Store(rec.LSN)
	}
	// Channel closed: either the feed's own Close (err stays nil) or a
	// live-tail overflow.
	if f.sub.overflow {
		f.err = cdc.ErrSlowConsumer
	}
}
