package core

// Per-table retention policy (the PR-7 ROADMAP follow-up): how much
// version history a table keeps through compaction. The global
// Config.CompactKeepVersions remains the default; SetRetention
// overrides it per table with a version bound, an age bound, or both.
// Enforcement happens wherever versions are vacuumed — the whole-log
// Compact, the incremental CompactSegments, and the write-path garbage
// accounting (noteSuperseded) that triggers the auto-compactor.
//
// Consequence for cursors: the tighter a table's retention, the faster
// compaction raises the prune horizon past reclaimed LSNs, and the less
// far behind a lagging changefeed OR replication cursor may fall before
// resuming fails with cdc.ErrCursorTruncated and the consumer must
// re-bootstrap (snapshot + fresh feed from 0). Retention is the knob
// trading log size against cursor slack.
//
// Age bounds and logical timestamps: commit timestamps are logical
// (coord.Service counters), so a wall-clock KeepFor cannot be compared
// to them directly. The server keeps a small ring of (wall time, max
// committed TS) samples — recorded by the auto-compactor tick and by
// explicit SampleRetention calls — and resolves KeepFor to the newest
// sampled timestamp older than the deadline. No old-enough sample
// means no age pruning yet: the resolution is conservative, never
// dropping history younger than KeepFor.

import (
	"sync"
	"time"
)

// RetentionPolicy bounds a table's retained version history.
type RetentionPolicy struct {
	// KeepVersions is the number of newest versions kept per key;
	// <= 0 means no version bound from this policy. (A table without a
	// policy uses Config.CompactKeepVersions instead.)
	KeepVersions int
	// KeepFor drops versions older than this wall-clock age, except a
	// key's newest version, which is always kept; 0 means no age bound.
	KeepFor time.Duration
}

// retentionSample maps a wall-clock instant to the highest commit
// timestamp this server had applied by then.
type retentionSample struct {
	at    time.Time
	maxTS int64
}

// retentionMaxSamples bounds the sample ring (one sample per
// auto-compact tick; 512 covers hours at any sane interval).
const retentionMaxSamples = 512

// retentionState is the server's per-table policy table plus the
// wall-time→timestamp sample ring.
type retentionState struct {
	mu       sync.RWMutex
	policies map[string]RetentionPolicy
	samples  []retentionSample
}

// SetRetention installs (or replaces) a table's retention policy. The
// zero policy keeps everything — version pruning for the table stops
// even if Config.CompactKeepVersions is set. Takes effect at the next
// compaction; it does not retroactively restore already-vacuumed
// versions.
func (s *Server) SetRetention(table string, p RetentionPolicy) {
	s.ret.mu.Lock()
	defer s.ret.mu.Unlock()
	if s.ret.policies == nil {
		s.ret.policies = make(map[string]RetentionPolicy)
	}
	s.ret.policies[table] = p
}

// Retention returns the table's policy, if one was set.
func (s *Server) Retention(table string) (RetentionPolicy, bool) {
	s.ret.mu.RLock()
	defer s.ret.mu.RUnlock()
	p, ok := s.ret.policies[table]
	return p, ok
}

// noteTS tracks the highest committed timestamp applied to this server
// (a CAS max; the retention sampler reads it).
func (s *Server) noteTS(ts int64) {
	for {
		cur := s.maxAppliedTS.Load()
		if ts <= cur || s.maxAppliedTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// SampleRetention records one (now, max committed TS) sample, giving
// age-based policies a timestamp to resolve against. The auto-compact
// loop calls it every tick; call it directly when running without the
// loop.
func (s *Server) SampleRetention() {
	ts := s.maxAppliedTS.Load()
	if ts == 0 {
		return
	}
	s.ret.mu.Lock()
	defer s.ret.mu.Unlock()
	if n := len(s.ret.samples); n > 0 && s.ret.samples[n-1].maxTS == ts {
		s.ret.samples[n-1].at = time.Now() // no new commits: slide the sample
		return
	}
	s.ret.samples = append(s.ret.samples, retentionSample{at: time.Now(), maxTS: ts})
	if len(s.ret.samples) > retentionMaxSamples {
		s.ret.samples = append(s.ret.samples[:0], s.ret.samples[len(s.ret.samples)-retentionMaxSamples:]...)
	}
}

// retBounds is one table's resolved compaction-time bounds.
type retBounds struct {
	keep   int
	cutoff int64
}

// retentionBounds returns a memoised per-table bounds resolver for one
// compaction pass: each table's age cutoff is resolved once per pass,
// not once per record.
func (s *Server) retentionBounds() func(table string) retBounds {
	memo := make(map[string]retBounds)
	return func(table string) retBounds {
		b, ok := memo[table]
		if !ok {
			b.keep, b.cutoff = s.retentionFor(table)
			memo[table] = b
		}
		return b
	}
}

// retentionKeep resolves just the table's version bound (0 =
// unbounded) — the hot write path's share of the policy; age bounds are
// only evaluated by compaction passes (retentionFor).
func (s *Server) retentionKeep(table string) int {
	s.ret.mu.RLock()
	p, ok := s.ret.policies[table]
	s.ret.mu.RUnlock()
	if !ok {
		return s.cfg.CompactKeepVersions
	}
	if p.KeepVersions > 0 {
		return p.KeepVersions
	}
	return 0
}

// retentionFor resolves the table's effective bounds for a compaction
// pass: keep is the per-key version bound (0 = unbounded), cutoffTS the
// age cutoff (versions with TS < cutoffTS are beyond KeepFor; 0 = no
// age bound). Only versions BELOW a key's newest may be age-pruned —
// callers must keep the newest version regardless.
func (s *Server) retentionFor(table string) (keep int, cutoffTS int64) {
	s.ret.mu.RLock()
	p, ok := s.ret.policies[table]
	var samples []retentionSample
	if ok && p.KeepFor > 0 {
		samples = s.ret.samples
	}
	s.ret.mu.RUnlock()
	if !ok {
		return s.cfg.CompactKeepVersions, 0
	}
	if p.KeepVersions > 0 {
		keep = p.KeepVersions
	}
	if p.KeepFor > 0 {
		deadline := time.Now().Add(-p.KeepFor)
		for i := len(samples) - 1; i >= 0; i-- {
			if !samples[i].at.After(deadline) {
				cutoffTS = samples[i].maxTS + 1 // versions at or below the sample are older than KeepFor
				break
			}
		}
	}
	return keep, cutoffTS
}
