package core

// Server-side observability wiring: every tablet server owns a
// serverObs holding its latency histograms and planner/compaction
// counters, registered into an obs.Registry under a `server` label so
// a whole cluster can share one registry. The existing ServerStats /
// cache / compaction atomics are exposed through GaugeFuncs — they are
// read at scrape time only, so surfacing them costs the hot paths
// nothing. Latency recording is guarded by the enabled flag
// (Config.DisableMetrics): when off, timer starts return the zero
// time.Time and the observe helpers no-op, leaving one branch per
// operation on the hot path.

import (
	"time"

	"repro/internal/obs"
)

// serverObs bundles a server's registered metrics.
type serverObs struct {
	enabled bool
	reg     *obs.Registry

	// Per-operation latency histograms (logbase_op_duration_seconds).
	put, get, del, read   *obs.Histogram
	scan, fullscan        *obs.Histogram
	applyBatch, applyTxn  *obs.Histogram
	prepareTxn, commitTxn *obs.Histogram
	compact               *obs.Histogram
	walAppend             *obs.Histogram

	// Clustered-scan planner counters.
	clusteredScans    *obs.Counter
	clusteredSegments *obs.Counter
	overlayRows       *obs.Counter
	validationRejects *obs.Counter

	// Compaction counters beyond the ServerStats atomics.
	compactRepoints *obs.Counter
	compactStalls   *obs.Counter

	// Changefeed counters (events/sec derives from the counter at
	// scrape time; feed count and lag are scrape-time gauges).
	cdcEvents *obs.Counter

	// Scrub repairs (corrupt replica blocks rewritten from a healthy
	// peer).
	scrubRepaired *obs.Counter
}

// newServerObs registers the server's metrics into cfg.Metrics (or a
// private registry) under labels {server: id}.
func newServerObs(s *Server) *serverObs {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &serverObs{enabled: !s.cfg.DisableMetrics, reg: reg}
	id := s.id

	opHist := func(op string) *obs.Histogram {
		return reg.Histogram("logbase_op_duration_seconds", "per-operation latency",
			obs.Labels{"server": id, "op": op})
	}
	o.put = opHist("put")
	o.get = opHist("get")
	o.del = opHist("delete")
	o.read = opHist("read")
	o.scan = opHist("scan")
	o.fullscan = opHist("fullscan")
	o.applyBatch = opHist("apply_batch")
	o.applyTxn = opHist("apply_txn")
	o.prepareTxn = opHist("prepare_txn")
	o.commitTxn = opHist("commit_txn")
	o.compact = opHist("compact")
	o.walAppend = reg.Histogram("logbase_wal_append_seconds", "durable log append latency",
		obs.Labels{"server": id})

	sl := obs.Labels{"server": id}
	o.clusteredScans = reg.Counter("logbase_clustered_scans_total", "scans served by the clustered fast path", sl)
	o.clusteredSegments = reg.Counter("logbase_clustered_segments_total", "sorted segments merged by clustered scans", sl)
	o.overlayRows = reg.Counter("logbase_clustered_overlay_rows_total", "rows served from the index overlay during clustered scans", sl)
	o.validationRejects = reg.Counter("logbase_clustered_validation_rejects_total", "clustered-scan keys rejected by MVCC index validation", sl)
	o.compactRepoints = reg.Counter("logbase_compact_repoints_total", "index entries repointed by compaction", sl)
	o.compactStalls = reg.Counter("logbase_compact_stalls_total", "compaction ticks stalled waiting for index recovery", sl)
	o.cdcEvents = reg.Counter("logbase_cdc_events_total", "changefeed events delivered to consumers", sl)
	o.scrubRepaired = reg.Counter("logbase_scrub_repaired_total", "corrupt replica blocks repaired by scrub", sl)
	if s.cfg.Faults != nil {
		// The fault registry is shared across the layers it is wired into
		// (DFS, WAL, crash points); the gauge reports its cumulative
		// injection count at scrape time.
		faults := s.cfg.Faults
		reg.GaugeFunc("logbase_faults_injected_total", "faults injected by the deterministic registry", sl,
			func() float64 { return float64(faults.Injected()) })
	}

	// Existing atomics surfaced as scrape-time gauges: zero hot-path
	// cost, so these register even when latency recording is disabled.
	gauge := func(name, help string, fn func() float64) { reg.GaugeFunc(name, help, sl, fn) }
	gauge("logbase_server_writes", "cumulative write operations", func() float64 { return float64(s.stats.Writes.Load()) })
	gauge("logbase_server_reads", "cumulative read operations", func() float64 { return float64(s.stats.Reads.Load()) })
	gauge("logbase_server_deletes", "cumulative delete operations", func() float64 { return float64(s.stats.Deletes.Load()) })
	gauge("logbase_server_log_reads", "cumulative log record reads", func() float64 { return float64(s.stats.LogReads.Load()) })
	gauge("logbase_cache_hits", "read-buffer hits", func() float64 { return float64(s.readCache.Stats().Hits) })
	gauge("logbase_cache_misses", "read-buffer misses", func() float64 { return float64(s.readCache.Stats().Misses) })
	gauge("logbase_cache_used_bytes", "read-buffer bytes in use", func() float64 { return float64(s.readCache.Stats().Used) })
	gauge("logbase_compactions", "compaction runs", func() float64 { return float64(s.stats.Compactions.Load()) })
	gauge("logbase_compact_dropped_records", "records vacuumed by compaction", func() float64 { return float64(s.stats.CompactDropped.Load()) })
	gauge("logbase_compact_reclaimed_bytes", "log bytes reclaimed by compaction", func() float64 { return float64(s.stats.CompactReclaimed.Load()) })
	gauge("logbase_log_bytes", "total log size", func() float64 { return float64(s.logBytes()) })
	gauge("logbase_log_segments", "log segment count", func() float64 { return float64(len(s.log.Segments())) })
	gauge("logbase_sorted_fraction", "fraction of log bytes in sorted segments", func() float64 { return s.SortedFraction() })
	gauge("logbase_garbage_ratio", "garbage bytes / log bytes", func() float64 { return s.CompactionInfo().GarbageRatio })
	gauge("logbase_index_mem_bytes", "in-memory index bytes", func() float64 { return float64(s.IndexMemBytes()) })
	gauge("logbase_cdc_feeds", "open changefeed subscriptions", func() float64 { return float64(s.cdc.count()) })
	gauge("logbase_cdc_feed_lag_lsns", "largest LSN distance between the log tip and any feed's delivered cursor",
		func() float64 { return float64(s.cdc.maxLag(s.log.NextLSN())) })
	gauge("logbase_cdc_prune_horizon", "highest LSN at or below which compaction reclaimed records",
		func() float64 { return float64(s.pruneHorizon.Load()) })
	return o
}

// start returns the operation start time, or the zero time when latency
// recording is disabled — the paired observe helpers treat zero as
// "skip".
func (o *serverObs) start() time.Time {
	if o == nil || !o.enabled {
		return time.Time{}
	}
	return time.Now()
}

// since records t0's elapsed time into h (no-op for a zero t0).
func (o *serverObs) since(h *obs.Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

func (s *Server) logBytes() int64 {
	var n int64
	for _, si := range s.log.Segments() {
		n += si.Size
	}
	return n
}

// Metrics returns the registry this server's metrics live in (shared
// across servers when Config.Metrics was set).
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }

// StatsView is one mutually-consistent snapshot of the server's
// cumulative counters: it is taken under compactMu, so the compaction
// triple (Runs / Dropped / Reclaimed) and the segment-derived layout
// numbers can never be observed mid-tick — half-applied counter
// updates from a concurrent compaction run are impossible.
type StatsView struct {
	Writes, Reads, Deletes int64
	CacheHits, CacheMisses int64
	LogReads               int64
	Compactions            int64
	CompactDropped         int64
	BytesReclaimed         int64
	SortedFraction         float64
	GarbageRatio           float64
	LogBytes               int64
	Segments               int
}

// StatsView snapshots every cumulative counter in one pass. Op
// counters (writes/reads/...) are individually atomic and monotone;
// the compaction counters and layout numbers are read while holding
// compactMu so they are consistent with each other.
func (s *Server) StatsView() StatsView {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	cs := s.readCache.Stats()
	info := s.CompactionInfo()
	return StatsView{
		Writes:         s.stats.Writes.Load(),
		Reads:          s.stats.Reads.Load(),
		Deletes:        s.stats.Deletes.Load(),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		LogReads:       s.stats.LogReads.Load(),
		Compactions:    info.Runs,
		CompactDropped: info.RecordsDropped,
		BytesReclaimed: info.BytesReclaimed,
		SortedFraction: info.SortedFraction,
		GarbageRatio:   info.GarbageRatio,
		LogBytes:       info.LogBytes,
		Segments:       len(info.Segments),
	}
}
