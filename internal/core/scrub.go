package core

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/wal"
)

// ScrubDefect locates one unrecoverable range found by a scrub: no
// replica assignment of the segment's blocks yields a clean image, so
// the damage is in the data itself (every copy corrupt), not in a
// single replica.
type ScrubDefect struct {
	Segment uint32
	Off     int64  // byte offset of the first bad frame within the segment
	Detail  string // underlying decode failure
}

func (d ScrubDefect) String() string {
	return fmt.Sprintf("segment %d offset %d: %s", d.Segment, d.Off, d.Detail)
}

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	Segments       int // log segments examined
	Blocks         int // DFS blocks examined (across all segments)
	ReplicasRead   int // replica copies read and compared
	RepairedBlocks int // corrupt replica copies rewritten from a healthy peer
	Unrecoverable  []ScrubDefect
}

// Clean reports whether the scrub found nothing to repair and nothing
// unrecoverable.
func (r ScrubReport) Clean() bool {
	return r.RepairedBlocks == 0 && len(r.Unrecoverable) == 0
}

// scrubMaxAssignments bounds the replica-assignment search per segment.
// Only blocks whose copies diverge contribute choices, so the search is
// tiny unless many blocks of one segment are simultaneously corrupt.
const scrubMaxAssignments = 243 // 3^5

// Scrub walks every log segment, verifies record frames and (for
// sorted segments) footer CRCs against each DFS replica, repairs a
// corrupt replica from a verified-healthy one via re-replication, and
// reports ranges where every replica is corrupt (unrecoverable). A
// second scrub after a repair pass reports zero defects.
//
// The verifier works per replica ASSIGNMENT: it assembles the segment
// image from one chosen copy per block and runs wal.VerifySegment over
// it; an assignment that decodes cleanly end-to-end pins the corruption
// to the copies it excluded. This catches single-replica bit rot that a
// plain read would mask (the DFS serves whichever replica it likes).
func (s *Server) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	active := s.log.ActiveSegment()
	for _, si := range s.log.Segments() {
		if err := s.scrubSegment(&rep, si, si.Num == active); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scrubBlock is one DFS block of a segment with every readable replica
// copy, clamped to the segment-size snapshot.
type scrubBlock struct {
	idx    int   // block index within the file
	off    int64 // offset of the block within the segment
	nids   []int // datanodes whose copy was readable (parallel to copies)
	copies [][]byte
	// variants are the distinct byte-images among copies; variantOf[i]
	// maps copy i to its variant index.
	variants  [][]byte
	variantOf []int
}

func (s *Server) scrubSegment(rep *ScrubReport, si wal.SegmentInfo, activeTail bool) error {
	rep.Segments++
	path := s.log.SegmentPath(si.Num)
	size := si.Size
	infos, err := s.fs.Blocks(path)
	if err != nil {
		return fmt.Errorf("core: scrub %s: %w", path, err)
	}

	var blocks []scrubBlock
	for _, bi := range infos {
		if bi.Offset >= size {
			break // written after the size snapshot
		}
		need := bi.Size
		if bi.Offset+need > size {
			need = size - bi.Offset
		}
		sb := scrubBlock{idx: bi.Index, off: bi.Offset}
		for _, nid := range bi.Replicas {
			data, rerr := s.fs.ReadBlockReplica(path, bi.Index, nid)
			if rerr != nil || int64(len(data)) < need {
				// Dead node or a lagging partial copy: re-replication's
				// problem, not scrub's. Exclude it from the vote.
				continue
			}
			sb.nids = append(sb.nids, nid)
			sb.copies = append(sb.copies, data[:need])
			rep.ReplicasRead++
		}
		if len(sb.copies) == 0 {
			rep.Unrecoverable = append(rep.Unrecoverable, ScrubDefect{
				Segment: si.Num, Off: bi.Offset, Detail: "no readable replica",
			})
			return nil
		}
		for _, c := range sb.copies {
			v := -1
			for j, vb := range sb.variants {
				if bytes.Equal(c, vb) {
					v = j
					break
				}
			}
			if v < 0 {
				v = len(sb.variants)
				sb.variants = append(sb.variants, c)
			}
			sb.variantOf = append(sb.variantOf, v)
		}
		blocks = append(blocks, sb)
		rep.Blocks++
	}

	choice, verr := findCleanAssignment(blocks, size, si.Num, activeTail)
	if choice == nil {
		// Every assignment (or the only one) decodes dirty: the damage is
		// in the data, not one replica. Report, don't repair — a "repair"
		// would just pick one corrupt copy as truth.
		var ce *wal.CorruptionError
		if errors.As(verr, &ce) {
			rep.Unrecoverable = append(rep.Unrecoverable, ScrubDefect{
				Segment: ce.Segment, Off: ce.Off, Detail: ce.Err.Error(),
			})
			return nil
		}
		return verr // I/O error, not a verification verdict
	}

	// A clean assignment exists: every copy disagreeing with its block's
	// chosen variant is a corrupt replica — rewrite it from a healthy
	// peer holding the chosen bytes.
	for bi, sb := range blocks {
		healthy := choice[bi]
		var from int = -1
		for i, v := range sb.variantOf {
			if v == healthy {
				from = sb.nids[i]
				break
			}
		}
		for i, v := range sb.variantOf {
			if v == healthy {
				continue
			}
			if err := s.fs.RepairBlockReplica(path, sb.idx, from, sb.nids[i]); err != nil {
				return fmt.Errorf("core: scrub repair %s block %d dn%d: %w", path, sb.idx, sb.nids[i], err)
			}
			rep.RepairedBlocks++
			s.obs.scrubRepaired.Add(1)
		}
	}
	return nil
}

// findCleanAssignment searches per-block variant choices for one whose
// assembled segment image verifies clean. Returns the chosen variant
// index per block, or (nil, firstError) when none verifies.
func findCleanAssignment(blocks []scrubBlock, size int64, seg uint32, activeTail bool) ([]int, error) {
	choice := make([]int, len(blocks))
	verify := func() error {
		img := make([]byte, 0, size)
		for bi, sb := range blocks {
			img = append(img, sb.variants[choice[bi]]...)
		}
		return wal.VerifySegment(bytes.NewReader(img), int64(len(img)), seg, activeTail)
	}
	firstErr := verify()
	if firstErr == nil {
		return choice, nil
	}
	// Enumerate assignments over the divergent blocks only (single-
	// variant blocks have no alternatives), bounded by
	// scrubMaxAssignments.
	var divergent []int
	for bi, sb := range blocks {
		if len(sb.variants) > 1 {
			divergent = append(divergent, bi)
		}
	}
	if len(divergent) == 0 {
		return nil, firstErr
	}
	tried := 1
	var walk func(d int) ([]int, bool)
	walk = func(d int) ([]int, bool) {
		if d == len(divergent) {
			if tried >= scrubMaxAssignments {
				return nil, false
			}
			tried++
			if verify() == nil {
				out := make([]int, len(choice))
				copy(out, choice)
				return out, true
			}
			return nil, false
		}
		bi := divergent[d]
		for v := range blocks[bi].variants {
			choice[bi] = v
			if out, ok := walk(d + 1); ok {
				return out, true
			}
		}
		choice[bi] = 0
		return nil, false
	}
	if out, ok := walk(0); ok {
		return out, nil
	}
	return nil, firstErr
}
